module muzha

go 1.22
