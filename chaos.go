package muzha

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// ChaosOptions configures a chaos sweep: Runs randomized scenarios are
// generated from Seed (scenario i uses Seed+i) and executed, each with
// its own topology, flow mix, optional mobility and background load,
// and a randomized fault schedule. With Verify set, every scenario runs
// twice and the two Results must match bit-for-bit — any divergence is
// a determinism bug in the simulator itself.
type ChaosOptions struct {
	// Seed is the base scenario seed.
	Seed int64
	// Runs is how many scenarios to generate (default 10).
	Runs int
	// Duration is the simulated time per scenario (default 3s).
	Duration time.Duration
	// Verify re-runs each scenario and compares full Results (default
	// off; the muzhasim -chaos mode turns it on).
	Verify bool
	// Sweep supervises the sweep: worker parallelism, per-run guards,
	// and the resumable journal. The zero value runs serial and
	// unguarded.
	Sweep SweepOptions
}

// ChaosRun is one chaos scenario's outcome.
type ChaosRun struct {
	// Seed regenerates the scenario via ChaosScenario.
	Seed int64
	// Scenario is a short human-readable description.
	Scenario string
	// Result is the run's outcome; nil when Err is set.
	Result *Result
	// Err holds a run failure — recovered engine panics, guard aborts
	// (deadline, event budget, livelock) and scenario-generation errors
	// included. Classify(Err) names the failure class.
	Err error
	// NonDeterministic is set when Verify found the second run's Result
	// differing from the first, or the automatic failure replay diverged
	// from the first attempt.
	NonDeterministic bool
	// Coverage lists the Sometimes assertions the run reached (sorted).
	// Historically the invariant report was only inspected on failure;
	// surfacing it per run lets any caller — not just the
	// coverage-guided loop — see which interesting states a sweep
	// actually explored. Empty when the run produced no Result.
	Coverage []string
	// Resumed is set when the outcome came from the sweep journal
	// instead of a fresh run.
	Resumed bool
}

// Failed reports whether the scenario hit any chaos-failure condition:
// an error (or panic), an Always-invariant violation, or
// non-determinism.
func (r ChaosRun) Failed() bool {
	if r.Err != nil || r.NonDeterministic {
		return true
	}
	return r.Result != nil && r.Result.InvariantViolations > 0
}

// FailureClass names the run's failure class — ClassPanic,
// ClassLivelock, ClassEventBudget, ClassDeadline, ClassNonDeterministic,
// ClassInvariant or ClassError — or "" for a healthy run.
func (r ChaosRun) FailureClass() string {
	switch {
	case r.NonDeterministic:
		return ClassNonDeterministic
	case r.Err != nil:
		return Classify(r.Err)
	case r.Result != nil && r.Result.InvariantViolations > 0:
		return ClassInvariant
	}
	return ""
}

// ChaosScenario deterministically generates one randomized scenario
// from a seed: a topology (chain, cross, grid or random placement), one
// to three TCP flows cycling through the variant set, optional DSR,
// RED, delayed ACKs, random loss, background CBR load and mobility, and
// zero to four scheduled faults. The same seed always yields the same
// Config.
func ChaosScenario(seed int64, duration time.Duration) (Config, string, error) {
	if duration < time.Second {
		duration = 3 * time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	var desc strings.Builder

	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = duration

	// Topology.
	var (
		top Topology
		err error
	)
	switch rng.Intn(4) {
	case 0:
		top, err = ChainTopology(3 + rng.Intn(5))
	case 1:
		top, err = CrossTopology(4 + 2*rng.Intn(2))
	case 2:
		top, err = GridTopology(3, 3)
	default:
		top, err = RandomTopology(6+rng.Intn(5), 1000, 1000, seed+1)
	}
	if err != nil {
		return Config{}, "", fmt.Errorf("muzha: chaos topology: %w", err)
	}
	cfg.Topology = top
	n := top.Nodes()
	fmt.Fprintf(&desc, "%s", top.Name())

	// Flows: conventional endpoints first, then random distinct pairs,
	// cycling the variant set so every flavour gets chaos coverage.
	//
	// The pool is frozen at the ten historical variants: ChaosScenario's
	// seed->scenario mapping is pinned by the committed golden fixtures
	// (testdata/golden_hashes.json "chaos-seed7"), so growing
	// muzha.Variants() must not reshuffle the draws. Later senders
	// (CUBIC, BBR-lite, ...) get their chaos coverage through the
	// coverage-guided loop (internal/chaoscov), whose spec generator
	// uses the full Variants() pool.
	vs := []Variant{Tahoe, Reno, NewReno, SACK, Vegas, Muzha, Veno, Westwood, Jersey, ECNNewReno}
	nflows := 1 + rng.Intn(3)
	fe := top.FlowEndpoints()
	for i := 0; i < nflows; i++ {
		var src, dst int
		if i < len(fe) {
			src, dst = fe[i][0], fe[i][1]
		} else {
			src = rng.Intn(n)
			dst = rng.Intn(n - 1)
			if dst >= src {
				dst++
			}
		}
		v := vs[(rng.Intn(len(vs))+i*3)%len(vs)]
		f := Flow{
			Src:     src,
			Dst:     dst,
			Variant: v,
			Start:   time.Duration(rng.Int63n(int64(duration / 4))),
			Window:  4 << rng.Intn(3),
		}
		cfg.Flows = append(cfg.Flows, f)
		fmt.Fprintf(&desc, " %s:%d->%d", f.Variant, f.Src, f.Dst)
	}

	// Stack knobs.
	if rng.Intn(4) == 0 {
		cfg.UseDSR = true
		desc.WriteString(" dsr")
	}
	if rng.Intn(4) == 0 {
		cfg.UseRED = true
		desc.WriteString(" red")
	}
	if rng.Intn(5) == 0 {
		cfg.DisableRTSCTS = true
		desc.WriteString(" nortscts")
	}
	if rng.Intn(4) == 0 {
		cfg.DelayedAck = 100 * time.Millisecond
		desc.WriteString(" delack")
	}
	if rng.Intn(4) == 0 {
		cfg.ResidualLossRate = 0.002 * float64(1+rng.Intn(5))
		fmt.Fprintf(&desc, " loss=%.3f", cfg.ResidualLossRate)
	}
	if rng.Intn(5) == 0 {
		cfg.PacketErrorRate = 0.01 * float64(1+rng.Intn(4))
		fmt.Fprintf(&desc, " per=%.2f", cfg.PacketErrorRate)
	}

	// Background CBR load.
	if rng.Intn(3) == 0 {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		cfg.Background = append(cfg.Background, BackgroundFlow{
			Src:     src,
			Dst:     dst,
			RateBps: float64(40000 + rng.Intn(80000)),
			Start:   duration / 5,
		})
		desc.WriteString(" cbr")
	}

	// Random-waypoint mobility on a small node subset.
	if rng.Intn(4) == 0 {
		mobile := []int{rng.Intn(n)}
		if n > 2 && rng.Intn(2) == 0 {
			other := rng.Intn(n - 1)
			if other >= mobile[0] {
				other++
			}
			mobile = append(mobile, other)
		}
		cfg.Mobility = &Mobility{
			Width:       1500,
			Height:      1500,
			MinSpeed:    1,
			MaxSpeed:    2 + float64(rng.Intn(8)),
			Pause:       time.Second,
			MobileNodes: mobile,
		}
		fmt.Fprintf(&desc, " mobile=%v", mobile)
	}

	// Fault schedule: one to four events in the middle of the run.
	nfaults := 1 + rng.Intn(4)
	for i := 0; i < nfaults; i++ {
		at := duration/10 + time.Duration(rng.Int63n(int64(duration/2)))
		window := duration/8 + time.Duration(rng.Int63n(int64(duration/4)))
		if rng.Intn(5) == 0 {
			window = 0 // until the end of the run
		}
		ev := FaultEvent{At: at, Duration: window}
		switch rng.Intn(4) {
		case 0:
			ev.Kind = FaultNodeCrash
			ev.Node = rng.Intn(n)
		case 1:
			ev.Kind = FaultLinkBlackout
			ev.LinkA = rng.Intn(n)
			ev.LinkB = rng.Intn(n - 1)
			if ev.LinkB >= ev.LinkA {
				ev.LinkB++
			}
			ev.OneWay = rng.Intn(3) == 0
		case 2:
			ev.Kind = FaultPartition
			k := 1 + rng.Intn(n-1)
			group := make([]int, k)
			for j := range group {
				group[j] = j
			}
			ev.Groups = [][]int{group}
		default:
			ev.Kind = FaultBurstLoss
			ev.BadLossRate = 0.5 + 0.4*rng.Float64()
			ev.MeanBurstFrames = float64(4 + rng.Intn(12))
			ev.MeanGapFrames = float64(100 + rng.Intn(200))
		}
		cfg.Faults = append(cfg.Faults, ev)
		fmt.Fprintf(&desc, " %s@%.1fs", ev.Kind, at.Seconds())
	}

	if err := cfg.validate(); err != nil {
		return Config{}, "", fmt.Errorf("muzha: chaos scenario seed %d invalid: %w", seed, err)
	}
	return cfg, desc.String(), nil
}

// chaosScenario is swappable in tests to exercise generation failures.
var chaosScenario = ChaosScenario

// ChaosSweep generates and executes opt.Runs chaos scenarios through
// the supervised worker pool. It returns one ChaosRun per scenario;
// inspect Failed or FailureClass on each. The sweep degrades gracefully
// — a scenario that fails to generate, panics, livelocks or blows its
// budget is recorded and the remaining seeds still run. The returned
// error reports only harness-level problems (an unusable journal).
func ChaosSweep(opt ChaosOptions) ([]ChaosRun, error) {
	if opt.Runs <= 0 {
		opt.Runs = 10
	}
	dur := opt.Duration
	if dur < time.Second {
		dur = 3 * time.Second // mirror ChaosScenario's default for stable journal keys
	}

	runs := make([]ChaosRun, opt.Runs)
	var units []runUnit
	var unitIdx []int // units[k] belongs to runs[unitIdx[k]]
	for i := 0; i < opt.Runs; i++ {
		seed := opt.Seed + int64(i)
		runs[i] = ChaosRun{Seed: seed}
		cfg, desc, err := chaosScenario(seed, dur)
		if err != nil {
			// A broken generator seed is one failed run, not a dead sweep.
			runs[i].Err = err
			continue
		}
		runs[i].Scenario = desc
		units = append(units, runUnit{
			Key: fmt.Sprintf("chaos/seed=%d/d=%s/verify=%t", seed, dur, opt.Verify),
			Cfg: cfg,
		})
		unitIdx = append(unitIdx, i)
	}

	outs, err := runPool(units, opt.Sweep, opt.Verify)
	if err != nil {
		return runs, err
	}
	for k, o := range outs {
		r := &runs[unitIdx[k]]
		r.Result = o.Result
		r.Resumed = o.Resumed
		if o.Class == ClassNonDeterministic {
			r.NonDeterministic = true
		} else {
			r.Err = o.Err
		}
		if o.Result != nil {
			r.Coverage = o.Result.SometimesCoverage()
		}
	}
	return runs, nil
}
