package muzha

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"

	"muzha/internal/harness"
)

// SweepOptions supervises a multi-run sweep: worker parallelism, a
// resumable journal, and per-run guards. The zero value reproduces the
// historical serial, unguarded, unjournaled behaviour.
type SweepOptions struct {
	// Parallel is the worker count; <= 1 runs serially, and any value
	// yields bit-for-bit identical per-run Results — each run is
	// single-threaded, workers only change wall-clock time.
	Parallel int
	// Journal is a JSONL file recording each run as it completes. A
	// restarted sweep pointed at the same journal skips the recorded
	// runs and merges their results, so a killed sweep loses only its
	// in-flight work. Empty disables journaling.
	Journal string
	// Guards bounds every run in the sweep (applied only to runs whose
	// Config carries no guards of its own).
	Guards RunGuards
	// Workers selects each run's engine (Config.Workers): zero keeps
	// the classic single-threaded engine, >= 1 enables the
	// spatial-domain decomposition inside every run whose Config does
	// not set its own width. Independent of Parallel, which schedules
	// whole runs. Because multi-domain runs sample different RNG
	// streams under decomposition, journal keys grow an engine-mode
	// suffix when this is set — a journal never mixes engine modes.
	Workers int
}

// SweepError summarizes a supervised sweep's failures. The sweep always
// finishes — failed runs are classified, not fatal — and drivers return
// the completed rows alongside a *SweepError describing what was lost.
// errors.Is against ErrPanic, ErrLivelock, ErrEventBudget, ErrDeadline,
// ErrNonDeterministic or ErrInvariant matches the most severe class
// present (and the first failure's own chain).
type SweepError struct {
	// Total and Failed count runs; Resumed counts journal hits.
	Total, Failed, Resumed int
	// Counts maps failure-class name (see Classify) to run count.
	Counts map[string]int
	// First is the first failed run's error, for context.
	First error
	// worst is the most severe class's sentinel.
	worst error
}

// Error renders e.g. "sweep: 3 of 12 runs failed [panic:1 livelock:2]; first: ...".
func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d of %d runs failed [", e.Failed, e.Total)
	classes := []string{ClassPanic, ClassLivelock, ClassEventBudget, ClassDeadline,
		ClassNonDeterministic, ClassInvariant, ClassError}
	first := true
	for _, c := range classes {
		if n := e.Counts[c]; n > 0 {
			if !first {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s:%d", c, n)
			first = false
		}
	}
	b.WriteByte(']')
	if e.First != nil {
		fmt.Fprintf(&b, "; first: %v", e.First)
	}
	return b.String()
}

// Unwrap exposes the worst class's sentinel and the first failure.
func (e *SweepError) Unwrap() []error {
	var out []error
	if e.worst != nil {
		out = append(out, e.worst)
	}
	if e.First != nil {
		out = append(out, e.First)
	}
	return out
}

// runUnit is one Run(cfg) job inside a sweep. Key must be stable across
// restarts — it identifies the run in the journal.
type runUnit struct {
	Key string
	Cfg Config
}

// runOutcome is one unit's terminal state.
type runOutcome struct {
	Result  *Result
	Err     error
	Class   string
	Resumed bool
}

// runPool executes the units on the supervised worker pool: panics are
// contained, failures replayed once to classify deterministic versus
// divergent, outcomes journaled and resumed. With verify set, each run
// executes twice and any Result divergence is ErrNonDeterministic. The
// returned error is only for harness plumbing (an unopenable or
// unwritable journal); per-run failures live in the outcomes.
func runPool(units []runUnit, opt SweepOptions, verify bool) ([]runOutcome, error) {
	var journal *harness.Journal
	if opt.Journal != "" {
		j, err := harness.OpenJournal(opt.Journal)
		if err != nil {
			return nil, err
		}
		journal = j
	}

	jobs := make([]harness.Job, len(units))
	for i, u := range units {
		cfg := u.Cfg
		if !cfg.Guards.enabled() {
			cfg.Guards = opt.Guards
		}
		key := u.Key
		if opt.Workers > 0 && cfg.Workers == 0 {
			cfg.Workers = opt.Workers
			// Decomposed multi-domain runs are a different (equally
			// valid) sample than classic runs; keying them apart keeps a
			// resumed journal from mixing engine modes. Classic-mode
			// sweeps keep their historical keys.
			key += "/engine=decomposed"
		}
		jobs[i] = harness.Job{Key: key, Fn: func() (any, error) {
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			if verify {
				again, err := Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("muzha: verify replay seed %d: %w", cfg.Seed, err)
				}
				if !reflect.DeepEqual(res, again) {
					return nil, fmt.Errorf("muzha: seed %d: %w: results differ between identical runs",
						cfg.Seed, harness.ErrNonDeterministic)
				}
			}
			return res, nil
		}}
	}

	workers := opt.Parallel
	if workers <= 0 {
		workers = 1
	}
	outs, _ := harness.Execute(jobs, harness.Options{
		Workers: workers,
		Journal: journal,
		Replay:  true,
	})

	result := make([]runOutcome, len(outs))
	for i, o := range outs {
		ro := runOutcome{Err: o.Err, Class: string(o.Class), Resumed: o.Resumed}
		switch {
		case o.Err != nil:
		case o.Resumed:
			var r Result
			if derr := json.Unmarshal(o.Raw, &r); derr != nil {
				ro.Err = fmt.Errorf("muzha: journal entry %q: %w", o.Key, derr)
				ro.Class = ClassError
			} else {
				ro.Result = &r
			}
		default:
			ro.Result = o.Value.(*Result)
		}
		result[i] = ro
	}

	if journal != nil {
		if cerr := journal.Close(); cerr != nil {
			return result, cerr
		}
	}
	return result, nil
}

// sweepError folds the outcomes' failures into a *SweepError, or nil
// when every run succeeded. A non-nil Result with Always-invariant
// violations counts as a ClassInvariant failure — the run completed,
// but its model state is untrustworthy.
func sweepError(outs []runOutcome) error {
	se := &SweepError{Total: len(outs), Counts: make(map[string]int)}
	classCounts := make(map[harness.Class]int)
	for _, o := range outs {
		if o.Resumed {
			se.Resumed++
		}
		cls := o.Class
		var oerr error
		switch {
		case o.Err != nil:
			oerr = o.Err
		case o.Result != nil && o.Result.InvariantViolations > 0:
			cls = ClassInvariant
			oerr = fmt.Errorf("muzha: %w: %d violations", ErrInvariant, o.Result.InvariantViolations)
		default:
			continue
		}
		se.Failed++
		se.Counts[cls]++
		classCounts[harness.Class(cls)]++
		if se.First == nil {
			se.First = oerr
		}
	}
	if se.Failed == 0 {
		return nil
	}
	if worst := harness.WorstOf(classCounts); worst != harness.ClassError {
		se.worst = harness.Sentinel(worst)
	}
	return se
}

// sweepOpt unpacks the optional trailing SweepOptions of the experiment
// drivers.
func sweepOpt(opts []SweepOptions) SweepOptions {
	if len(opts) > 0 {
		return opts[0]
	}
	return SweepOptions{}
}
