#!/bin/sh
# Regenerate BENCH_sim.json, the committed benchmark baseline that
# cmd/benchgate gates CI against.
#
# Usage:
#   scripts/bench.sh            # run gated benchmarks, compare against baseline
#   scripts/bench.sh -update    # run gated benchmarks, rewrite the baseline
#
# Run on an idle machine: events/s is wall-clock throughput. The
# "history" section of BENCH_sim.json is preserved across -update; add
# entries there by hand when recording a before/after milestone.
set -eu
cd "$(dirname "$0")/.."

GATED='^(BenchmarkScenario4HopChain|BenchmarkEventChurn|BenchmarkScheduleCancel|BenchmarkTimerRearm|BenchmarkTransmitFanout|BenchmarkTransmitMobile)$'
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

go test -run '^$' -bench "$GATED" -benchtime 2s . ./internal/sim ./internal/phy | tee "$OUT"
go run ./cmd/benchgate -baseline BENCH_sim.json "$@" "$OUT"
