#!/bin/sh
# Regenerate BENCH_sim.json, the committed benchmark baseline that
# cmd/benchgate gates CI against.
#
# Usage:
#   scripts/bench.sh            # run gated benchmarks, compare against baseline
#   scripts/bench.sh -update    # run gated benchmarks, rewrite the baseline
#   scripts/bench.sh -scaling   # run the multi-domain scaling benchmarks and
#                               # print the parallel speedup curve
#
# Run on an idle machine: events/s is wall-clock throughput. The
# "history" section of BENCH_sim.json is preserved across -update; add
# entries there by hand when recording a before/after milestone (the
# parallel scaling curve of a multicore machine belongs there).
set -eu
cd "$(dirname "$0")/.."

GATED='^(BenchmarkScenario4HopChain|BenchmarkScenarioGrid|BenchmarkScenarioLargeRandom|BenchmarkScenario1000Node|BenchmarkEventChurn|BenchmarkScheduleCancel|BenchmarkTimerRearm|BenchmarkTransmitFanout|BenchmarkTransmitMobile|BenchmarkSenderPacing)$'
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

if [ "${1:-}" = "-scaling" ]; then
    shift
    go test -run '^$' -bench '^(BenchmarkScenarioGrid|BenchmarkScenarioLargeRandom|BenchmarkScenario1000Node)$' -benchtime 2s . | tee "$OUT"
    go run ./cmd/benchgate -scaling BenchmarkScenarioGrid "$@" "$OUT"
    go run ./cmd/benchgate -scaling BenchmarkScenarioLargeRandom "$OUT"
    go run ./cmd/benchgate -scaling BenchmarkScenario1000Node "$OUT"
    exit 0
fi

go test -run '^$' -bench "$GATED" -benchtime 2s . ./internal/sim ./internal/phy ./internal/tcp | tee "$OUT"
go run ./cmd/benchgate -baseline BENCH_sim.json "$@" "$OUT"
