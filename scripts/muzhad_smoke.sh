#!/usr/bin/env bash
# End-to-end smoke test of the muzhad daemon, run by CI under -race:
#
#   1. submit a 4-hop chain run and wait for completion
#   2. submit the identical config again — must be a cache hit with
#      byte-identical result bytes
#   3. stream a fresh job over SSE — must end with a "done" event
#   4. muzhasim -remote must match the in-process run byte-for-byte
#   5. SIGKILL the daemon mid-job, restart it, and watch the journal
#      re-queue and finish the interrupted job
#   6. SIGTERM must drain and exit 0
#
# Usage: scripts/muzhad_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:7377
BASE="http://$ADDR"
WORK=$(mktemp -d)
DATA="$WORK/data"
BIN="$WORK/bin"
mkdir -p "$DATA" "$BIN"
DAEMON_PID=""

cleanup() {
  if [ -n "$DAEMON_PID" ]; then kill -9 "$DAEMON_PID" 2>/dev/null || true; fi
  rm -rf "$WORK"
}
trap cleanup EXIT

log() { echo "--- $*"; }

config() { # config <duration_ns> <seed>
  cat <<EOF
{"config": {
  "topology": {"name": "chain-4hop",
    "positions": [{"X":0,"Y":0},{"X":250,"Y":0},{"X":500,"Y":0},{"X":750,"Y":0},{"X":1000,"Y":0}],
    "flow_endpoints": [[0,4]]},
  "flows": [{"Src":0,"Dst":4,"Variant":"newreno"}],
  "duration_ns": $1, "seed": $2,
  "mss": 1460, "window": 32, "queue_limit": 50
}}
EOF
}

field() { # field <json> <name>  -> first string value of "name"
  sed -n "s/.*\"$2\":\"\([^\"]*\)\".*/\1/p" <<<"$1" | head -n1
}

start_daemon() {
  "$BIN/muzhad" -addr "$ADDR" -data "$DATA" -drain-grace 5s >>"$WORK/muzhad.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    if curl -fs "$BASE/v1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "daemon did not come up"
  cat "$WORK/muzhad.log"
  exit 1
}

wait_state() { # wait_state <id> <state> <tries>  (0.2 s per try)
  for _ in $(seq 1 "$3"); do
    local j
    j=$(curl -fs "$BASE/v1/jobs/$1" || true)
    if grep -q "\"state\":\"$2\"" <<<"$j"; then return 0; fi
    if [ "$2" != failed ] && grep -q '"state":"failed"' <<<"$j"; then
      echo "job $1 failed: $j"
      return 1
    fi
    sleep 0.2
  done
  return 1
}

log "build (race)"
go build -race -o "$BIN/muzhad" ./cmd/muzhad
go build -race -o "$BIN/muzhasim" ./cmd/muzhasim

log "start daemon"
start_daemon

log "submit 4-hop chain run"
RESP=$(config 5000000000 1 | curl -fs "$BASE/v1/jobs" -d @-)
ID=$(field "$RESP" id)
[ -n "$ID" ] || { echo "no job id in: $RESP"; exit 1; }
wait_state "$ID" done 300 || { echo "job $ID never finished:"; curl -fs "$BASE/v1/jobs/$ID"; exit 1; }
curl -fs "$BASE/v1/jobs/$ID/result" -o "$WORK/r1.json"

log "duplicate submission must hit the cache with identical bytes"
RESP2=$(config 5000000000 1 | curl -fs "$BASE/v1/jobs" -d @-)
grep -q '"cached":true' <<<"$RESP2" || { echo "no cache hit: $RESP2"; exit 1; }
ID2=$(field "$RESP2" id)
curl -fs "$BASE/v1/jobs/$ID2/result" -o "$WORK/r2.json"
cmp "$WORK/r1.json" "$WORK/r2.json"
curl -fs "$BASE/v1/stats" | grep -q '"cache_hits":1'

log "stream a fresh job over SSE"
RESP3=$(config 5000000000 2 | curl -fs "$BASE/v1/jobs" -d @-)
ID3=$(field "$RESP3" id)
curl -fsN --max-time 120 "$BASE/v1/jobs/$ID3/stream" -o "$WORK/stream.txt"
grep -q '^event: progress' "$WORK/stream.txt"
grep -q '^event: done' "$WORK/stream.txt"

log "muzhasim -remote matches the in-process run byte-for-byte"
"$BIN/muzhasim" -exp single -hops 2 -variants newreno -duration 2s -out "$WORK/local.json" >"$WORK/local.csv"
"$BIN/muzhasim" -exp single -hops 2 -variants newreno -duration 2s -out "$WORK/remote.json" -remote "$ADDR" >"$WORK/remote.csv"
cmp "$WORK/local.csv" "$WORK/remote.csv"
cmp "$WORK/local.json" "$WORK/remote.json"

log "SIGKILL mid-job, restart, journal must resume the interrupted job"
RESP4=$(config 600000000000 9 | curl -fs "$BASE/v1/jobs" -d @-) # 600 simulated seconds: wide mid-run window
ID4=$(field "$RESP4" id)
wait_state "$ID4" running 150 || { echo "long job never started"; exit 1; }
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
start_daemon
curl -fs "$BASE/v1/stats" | grep -q '"requeued":1'
wait_state "$ID4" done 1500 || { echo "recovered job never finished:"; curl -fs "$BASE/v1/jobs/$ID4"; exit 1; }

log "graceful shutdown"
kill -TERM "$DAEMON_PID"
RC=0
wait "$DAEMON_PID" || RC=$?
if [ "$RC" -ne 0 ]; then
  echo "daemon exited $RC"
  cat "$WORK/muzhad.log"
  exit 1
fi
DAEMON_PID=""

log "ok"
