#!/usr/bin/env bash
# End-to-end smoke test of muzhad fleet mode, run by CI under -race:
#
#   1. start a coordinator and three joined workers on localhost
#   2. submit a 6-config sweep to the coordinator
#   3. SIGKILL a worker mid-sweep — its leases must expire and the
#      jobs re-shard (asserted via the /v1/stats lease counters)
#   4. restart the worker, then SIGKILL the coordinator mid-sweep and
#      restart it — the journal must re-queue the unfinished jobs and
#      the workers must re-register and finish the sweep
#   5. every result must be byte-identical to the same sweep run on a
#      plain single-node daemon
#   6. submit the identical sweep to a fresh fourth worker — it must
#      complete with zero new simulations (peer cache hits == jobs)
#   7. SIGTERM must drain coordinator and workers to exit 0
#
# Usage: scripts/fleet_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

COORD=127.0.0.1:7390
W1=127.0.0.1:7391
W2=127.0.0.1:7392
W3=127.0.0.1:7393
W4=127.0.0.1:7394
SERIAL=127.0.0.1:7395
WORK=$(mktemp -d)
BIN="$WORK/bin"
mkdir -p "$BIN"
COORD_PID=""
W1_PID=""
W2_PID=""
W3_PID=""
W4_PID=""
SERIAL_PID=""

cleanup() {
  for pid in "$COORD_PID" "$W1_PID" "$W2_PID" "$W3_PID" "$W4_PID" "$SERIAL_PID"; do
    if [ -n "$pid" ]; then kill -9 "$pid" 2>/dev/null || true; fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

log() { echo "--- $*"; }

config() { # config <duration_ns> <seed>  -> one bare config object
  cat <<EOF
{"topology": {"name": "chain-4hop",
   "positions": [{"X":0,"Y":0},{"X":250,"Y":0},{"X":500,"Y":0},{"X":750,"Y":0},{"X":1000,"Y":0}],
   "flow_endpoints": [[0,4]]},
 "flows": [{"Src":0,"Dst":4,"Variant":"newreno"}],
 "duration_ns": $1, "seed": $2,
 "mss": 1460, "window": 32, "queue_limit": 50}
EOF
}

sweep_body() { # sweep_body <duration_ns> <seed...>
  local dur=$1 sep="" out='{"configs":['
  shift
  for s in "$@"; do
    out+="$sep$(config "$dur" "$s")"
    sep=","
  done
  echo "$out]}"
}

num() { # num <json> <field>  -> first integer value of "field"
  sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" <<<"$1" | head -n1
}

start_node() { # start_node <name> <addr> <extra flags...>; sets NODE_PID
  local name=$1 addr=$2
  shift 2
  mkdir -p "$WORK/$name"
  "$BIN/muzhad" -addr "$addr" -data "$WORK/$name" -workers 2 -drain-grace 5s "$@" \
    >>"$WORK/$name.log" 2>&1 &
  NODE_PID=$!
  for _ in $(seq 1 100); do
    if curl -fs "http://$addr/v1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "$name did not come up"
  cat "$WORK/$name.log"
  exit 1
}

wait_state() { # wait_state <addr> <id> <state> <tries>  (0.2 s per try)
  for _ in $(seq 1 "$4"); do
    local j
    j=$(curl -fs "http://$1/v1/jobs/$2" || true)
    if grep -q "\"state\":\"$3\"" <<<"$j"; then return 0; fi
    if [ "$3" != failed ] && grep -q '"state":"failed"' <<<"$j"; then
      echo "job $2 failed: $j"
      return 1
    fi
    sleep 0.2
  done
  return 1
}

wait_stat() { # wait_stat <addr> <field> <min> <tries>  (0.2 s per try)
  for _ in $(seq 1 "$4"); do
    local s v
    s=$(curl -fs "http://$1/v1/stats" || true)
    v=$(num "$s" "$2")
    if [ -n "$v" ] && [ "$v" -ge "$3" ]; then return 0; fi
    sleep 0.2
  done
  echo "stat $2 on $1 never reached $3; last stats:"
  curl -fs "http://$1/v1/stats" || true
  return 1
}

log "build (race)"
go build -race -o "$BIN/muzhad" ./cmd/muzhad

log "start coordinator and three workers"
start_node coord "$COORD" -coordinator -lease-ttl 2s -fleet-heartbeat 500ms
COORD_PID=$NODE_PID
start_node w1 "$W1" -join "http://$COORD" -fleet-id w1
W1_PID=$NODE_PID
start_node w2 "$W2" -join "http://$COORD" -fleet-id w2
W2_PID=$NODE_PID
start_node w3 "$W3" -join "http://$COORD" -fleet-id w3
W3_PID=$NODE_PID

log "submit a 6-config sweep to the coordinator"
DUR=20000000000 # 20 simulated seconds: a multi-second kill window per job
RESP=$(sweep_body $DUR 1 2 3 4 5 6 | curl -fs "http://$COORD/v1/sweeps" -d @-)
mapfile -t IDS < <(grep -o '"id":"[^"]*"' <<<"$RESP" | cut -d'"' -f4)
[ "${#IDS[@]}" -eq 6 ] || { echo "sweep admitted ${#IDS[@]} jobs: $RESP"; exit 1; }

log "SIGKILL worker w1 once it is computing leased jobs"
wait_stat "$W1" running 1 150 || exit 1
kill -9 "$W1_PID"
wait "$W1_PID" 2>/dev/null || true
W1_PID=""

log "dead worker's leases must expire and its jobs re-shard"
wait_stat "$COORD" leases_expired 1 150 || exit 1
wait_stat "$COORD" resharded 1 150 || exit 1

log "restart worker w1"
start_node w1 "$W1" -join "http://$COORD" -fleet-id w1
W1_PID=$NODE_PID

log "SIGKILL the coordinator mid-sweep and restart it"
kill -9 "$COORD_PID"
wait "$COORD_PID" 2>/dev/null || true
start_node coord "$COORD" -coordinator -lease-ttl 2s -fleet-heartbeat 500ms
COORD_PID=$NODE_PID
S=$(curl -fs "http://$COORD/v1/stats")
REQUEUED=$(num "$S" requeued)
[ -n "$REQUEUED" ] && [ "$REQUEUED" -ge 1 ] || { echo "restart requeued nothing: $S"; exit 1; }
echo "    coordinator restart requeued $REQUEUED job(s)"

log "the sweep must finish after both crashes"
for id in "${IDS[@]}"; do
  wait_state "$COORD" "$id" done 600 || { echo "job $id never finished:"; curl -fs "http://$COORD/v1/jobs/$id"; exit 1; }
done
for i in "${!IDS[@]}"; do
  curl -fs "http://$COORD/v1/jobs/${IDS[$i]}/result" -o "$WORK/fleet-$i.json"
done

log "fleet results must match a plain single-node daemon byte-for-byte"
start_node serial "$SERIAL"
SERIAL_PID=$NODE_PID
SRESP=$(sweep_body $DUR 1 2 3 4 5 6 | curl -fs "http://$SERIAL/v1/sweeps" -d @-)
mapfile -t SIDS < <(grep -o '"id":"[^"]*"' <<<"$SRESP" | cut -d'"' -f4)
[ "${#SIDS[@]}" -eq 6 ] || { echo "serial sweep admitted ${#SIDS[@]} jobs"; exit 1; }
for i in "${!SIDS[@]}"; do
  wait_state "$SERIAL" "${SIDS[$i]}" done 600 || { echo "serial job ${SIDS[$i]} never finished"; exit 1; }
  curl -fs "http://$SERIAL/v1/jobs/${SIDS[$i]}/result" -o "$WORK/serial-$i.json"
  cmp "$WORK/fleet-$i.json" "$WORK/serial-$i.json"
done

log "identical sweep on a fresh worker must be all peer cache hits"
start_node w4 "$W4" -join "http://$COORD" -fleet-id w4
W4_PID=$NODE_PID
PRESP=$(sweep_body $DUR 1 2 3 4 5 6 | curl -fs "http://$W4/v1/sweeps" -d @-)
mapfile -t PIDS2 < <(grep -o '"id":"[^"]*"' <<<"$PRESP" | cut -d'"' -f4)
[ "${#PIDS2[@]}" -eq 6 ] || { echo "peer sweep admitted ${#PIDS2[@]} jobs"; exit 1; }
for i in "${!PIDS2[@]}"; do
  wait_state "$W4" "${PIDS2[$i]}" done 300 || { echo "peer job ${PIDS2[$i]} never finished"; exit 1; }
  curl -fs "http://$W4/v1/jobs/${PIDS2[$i]}/result" -o "$WORK/peer-$i.json"
  cmp "$WORK/fleet-$i.json" "$WORK/peer-$i.json"
done
S=$(curl -fs "http://$W4/v1/stats")
HITS=$(num "$S" peer_cache_hits)
[ "$HITS" = 6 ] || { echo "peer cache hits = $HITS, want 6 (zero new runs): $S"; exit 1; }

log "graceful shutdown"
for pid in "$W4_PID" "$W3_PID" "$W2_PID" "$W1_PID" "$COORD_PID"; do
  kill -TERM "$pid"
done
RC=0
wait "$COORD_PID" || RC=$?
[ "$RC" -eq 0 ] || { echo "coordinator exited $RC"; cat "$WORK/coord.log"; exit 1; }
RC=0
wait "$W2_PID" || RC=$?
[ "$RC" -eq 0 ] || { echo "worker w2 exited $RC"; cat "$WORK/w2.log"; exit 1; }
wait "$W1_PID" 2>/dev/null || true
wait "$W3_PID" 2>/dev/null || true
wait "$W4_PID" 2>/dev/null || true
COORD_PID="" W1_PID="" W2_PID="" W3_PID="" W4_PID=""
kill -TERM "$SERIAL_PID" && wait "$SERIAL_PID" 2>/dev/null || true
SERIAL_PID=""

log "ok"
