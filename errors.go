package muzha

import "muzha/internal/harness"

// The supervised-sweep failure taxonomy, re-exported from the internal
// harness so callers can triage Run and sweep errors with errors.Is.
var (
	// ErrDeadline: the run exceeded Config.Guards.WallClock.
	ErrDeadline = harness.ErrDeadline
	// ErrEventBudget: the run executed more than Config.Guards.MaxEvents
	// events.
	ErrEventBudget = harness.ErrEventBudget
	// ErrLivelock: the virtual clock stopped advancing for
	// Config.Guards.LivelockWindow consecutive events (a zero-delay
	// event cycle).
	ErrLivelock = harness.ErrLivelock
	// ErrPanic: the engine panicked and Run recovered it.
	ErrPanic = harness.ErrPanic
	// ErrInvariant: an Always run-time invariant was violated.
	ErrInvariant = harness.ErrInvariant
	// ErrNonDeterministic: replaying the identical scenario diverged
	// from the first attempt — a determinism bug in the simulator.
	ErrNonDeterministic = harness.ErrNonDeterministic
	// ErrCanceled: the run was aborted by its Config.Cancel channel
	// (daemon drain, client abort).
	ErrCanceled = harness.ErrCanceled
)

// Failure-class names, as reported by Classify, ChaosRun.FailureClass
// and SweepError.Counts. The empty string means success.
const (
	ClassPanic            = string(harness.ClassPanic)
	ClassLivelock         = string(harness.ClassLivelock)
	ClassEventBudget      = string(harness.ClassEventBudget)
	ClassDeadline         = string(harness.ClassDeadline)
	ClassNonDeterministic = string(harness.ClassNonDeterministic)
	ClassInvariant        = string(harness.ClassInvariant)
	ClassCanceled         = string(harness.ClassCanceled)
	ClassError            = string(harness.ClassError)
)

// Classify maps an error from Run or a sweep to its failure-class name:
// "panic", "livelock", "event-budget", "deadline", "nondeterministic",
// "invariant", "error" for unclassified failures, or "" for nil.
func Classify(err error) string { return string(harness.Classify(err)) }
