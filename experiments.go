package muzha

import (
	"fmt"
	"time"
)

// This file packages the paper's Chapter 5 experiments as reusable
// drivers. Each function reproduces one table/figure family and returns
// the rows the paper plots; the bench harness (bench_test.go) and the CLI
// (cmd/muzhasim) are thin wrappers around these.
//
// Every driver executes its per-seed runs through the supervised worker
// pool (see SweepOptions): pass Parallel to fan the runs across cores,
// Journal to make an interrupted sweep resumable, and Guards to bound
// each run. Per-run Results are bit-for-bit identical at any worker
// count. A failed run no longer aborts the sweep — the surviving rows
// come back alongside a *SweepError naming what was lost, per class.

// ChainRow is one point of the Simulation 2 sweeps (Figures 5.8-5.13):
// a single flow over an h-hop chain at a given advertised window.
type ChainRow struct {
	Window          int
	Hops            int
	Variant         Variant
	ThroughputBps   float64
	Retransmissions float64
	Timeouts        float64
	Seeds           int
}

// ChainSweepConfig parameterizes ThroughputVsHops.
type ChainSweepConfig struct {
	Windows  []int
	Hops     []int
	Variants []Variant
	Duration time.Duration
	Seeds    []int64
	// Sweep supervises the runs (parallel workers, journal, guards).
	Sweep SweepOptions
}

// DefaultChainSweep mirrors Simulation 2: windows 4/8/32, hop counts 4 to
// 32, the four compared variants, 30-second runs.
func DefaultChainSweep() ChainSweepConfig {
	return ChainSweepConfig{
		Windows:  []int{4, 8, 32},
		Hops:     []int{4, 8, 12, 16, 24, 32},
		Variants: []Variant{NewReno, SACK, Vegas, Muzha},
		Duration: 30 * time.Second,
		Seeds:    []int64{1, 2, 3},
	}
}

// ThroughputVsHops runs the Simulation 2 sweep and returns one row per
// (window, hops, variant), averaged over the seeds that completed. With
// failures, the rows still come back (averaged over the surviving
// seeds, Seeds holding the survivor count) together with a *SweepError.
func ThroughputVsHops(sweep ChainSweepConfig) ([]ChainRow, error) {
	if len(sweep.Seeds) == 0 {
		sweep.Seeds = []int64{1}
	}
	var units []runUnit
	for _, w := range sweep.Windows {
		for _, hops := range sweep.Hops {
			top, err := ChainTopology(hops)
			if err != nil {
				return nil, err
			}
			for _, v := range sweep.Variants {
				for _, seed := range sweep.Seeds {
					cfg := DefaultConfig()
					cfg.Topology = top
					cfg.Duration = sweep.Duration
					cfg.Window = w
					cfg.Seed = seed
					cfg.Flows = []Flow{{Src: 0, Dst: hops, Variant: v}}
					units = append(units, runUnit{
						Key: fmt.Sprintf("chain/w=%d/h=%d/%s/seed=%d/d=%s", w, hops, v, seed, sweep.Duration),
						Cfg: cfg,
					})
				}
			}
		}
	}
	outs, err := runPool(units, sweep.Sweep, false)
	if err != nil {
		return nil, err
	}

	var rows []ChainRow
	i := 0
	for _, w := range sweep.Windows {
		for _, hops := range sweep.Hops {
			for _, v := range sweep.Variants {
				row := ChainRow{Window: w, Hops: hops, Variant: v}
				for range sweep.Seeds {
					if res := outs[i].Result; res != nil {
						row.Seeds++
						row.ThroughputBps += res.Flows[0].ThroughputBps
						row.Retransmissions += float64(res.Flows[0].Retransmissions)
						row.Timeouts += float64(res.Flows[0].Timeouts)
					}
					i++
				}
				if row.Seeds > 0 {
					n := float64(row.Seeds)
					row.ThroughputBps /= n
					row.Retransmissions /= n
					row.Timeouts /= n
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, sweepError(outs)
}

// CwndTraceResult is one Simulation 1 run (Figures 5.2-5.7): the
// congestion-window series of a single flow over an h-hop chain.
type CwndTraceResult struct {
	Hops    int
	Variant Variant
	Trace   []Sample
}

// CwndTraces reproduces Simulation 1: for each hop count and variant, a
// 10-second single-flow run with the congestion window recorded.
func CwndTraces(hops []int, variants []Variant, duration time.Duration, seed int64, opts ...SweepOptions) ([]CwndTraceResult, error) {
	var units []runUnit
	for _, h := range hops {
		top, err := ChainTopology(h)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			cfg := DefaultConfig()
			cfg.Topology = top
			cfg.Duration = duration
			cfg.Window = 32
			cfg.Seed = seed
			cfg.TraceCwnd = true
			cfg.Flows = []Flow{{Src: 0, Dst: h, Variant: v}}
			units = append(units, runUnit{
				Key: fmt.Sprintf("cwnd/h=%d/%s/seed=%d/d=%s", h, v, seed, duration),
				Cfg: cfg,
			})
		}
	}
	outs, err := runPool(units, sweepOpt(opts), false)
	if err != nil {
		return nil, err
	}

	var out []CwndTraceResult
	i := 0
	for _, h := range hops {
		for _, v := range variants {
			r := CwndTraceResult{Hops: h, Variant: v}
			if res := outs[i].Result; res != nil {
				r.Trace = res.Flows[0].CwndTrace
			}
			out = append(out, r)
			i++
		}
	}
	return out, sweepError(outs)
}

// SampleTrace downsamples a cwnd trace to fixed intervals (the value in
// force at each tick), for plotting and table output.
func SampleTrace(trace []Sample, step time.Duration, until time.Duration) []Sample {
	if step <= 0 || len(trace) == 0 {
		return nil
	}
	var out []Sample
	idx := 0
	last := trace[0].Value
	for at := time.Duration(0); at <= until; at += step {
		for idx < len(trace) && trace[idx].At <= at {
			last = trace[idx].Value
			idx++
		}
		out = append(out, Sample{At: at, Value: last})
	}
	return out
}

// FairnessRow is one Simulation 3A run (Figures 5.16-5.18): two crossing
// flows on an h-hop cross topology.
type FairnessRow struct {
	Hops          int
	Variants      [2]Variant
	ThroughputBps [2]float64
	JainIndex     float64
	Seeds         int
}

// CoexistenceFairness reproduces Simulation 3A: for each hop count and
// variant pairing, two crossing flows run for the given duration; returns
// per-flow throughput and Jain's index averaged over the completed seeds.
func CoexistenceFairness(hops []int, pairs [][2]Variant, duration time.Duration, seeds []int64, opts ...SweepOptions) ([]FairnessRow, error) {
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	var units []runUnit
	for _, h := range hops {
		top, err := CrossTopology(h)
		if err != nil {
			return nil, err
		}
		fe := top.FlowEndpoints()
		for _, pair := range pairs {
			for _, seed := range seeds {
				cfg := DefaultConfig()
				cfg.Topology = top
				cfg.Duration = duration
				cfg.Window = 8
				cfg.Seed = seed
				cfg.Flows = []Flow{
					{Src: fe[0][0], Dst: fe[0][1], Variant: pair[0]},
					{Src: fe[1][0], Dst: fe[1][1], Variant: pair[1]},
				}
				units = append(units, runUnit{
					Key: fmt.Sprintf("fairness/h=%d/%s+%s/seed=%d/d=%s", h, pair[0], pair[1], seed, duration),
					Cfg: cfg,
				})
			}
		}
	}
	outs, err := runPool(units, sweepOpt(opts), false)
	if err != nil {
		return nil, err
	}

	var rows []FairnessRow
	i := 0
	for _, h := range hops {
		for _, pair := range pairs {
			row := FairnessRow{Hops: h, Variants: pair}
			for range seeds {
				if res := outs[i].Result; res != nil {
					row.Seeds++
					row.ThroughputBps[0] += res.Flows[0].ThroughputBps
					row.ThroughputBps[1] += res.Flows[1].ThroughputBps
					row.JainIndex += res.JainIndex
				}
				i++
			}
			if row.Seeds > 0 {
				n := float64(row.Seeds)
				row.ThroughputBps[0] /= n
				row.ThroughputBps[1] /= n
				row.JainIndex /= n
			}
			rows = append(rows, row)
		}
	}
	return rows, sweepError(outs)
}

// DynamicsResult is one Simulation 3B run (Figures 5.19-5.22): three
// same-variant flows entering a 4-hop chain at 0, 10 and 20 seconds.
type DynamicsResult struct {
	Variant Variant
	// Series holds each flow's binned throughput (bit/s).
	Series [3][]Sample
}

// ThroughputDynamics reproduces Simulation 3B for each variant. The
// flows enter at 0, 10 and 20 seconds as in the paper; for durations
// other than 30 s the stagger scales to thirds of the run.
func ThroughputDynamics(variants []Variant, duration time.Duration, bin time.Duration, seed int64, opts ...SweepOptions) ([]DynamicsResult, error) {
	top, err := ChainTopology(4)
	if err != nil {
		return nil, err
	}
	var units []runUnit
	for _, v := range variants {
		cfg := DefaultConfig()
		cfg.Topology = top
		cfg.Duration = duration
		cfg.Window = 8
		cfg.Seed = seed
		cfg.ThroughputBin = bin
		cfg.Flows = []Flow{
			{Src: 0, Dst: 4, Variant: v},
			{Src: 0, Dst: 4, Variant: v, Start: duration / 3},
			{Src: 0, Dst: 4, Variant: v, Start: 2 * duration / 3},
		}
		units = append(units, runUnit{
			Key: fmt.Sprintf("dynamics/%s/seed=%d/d=%s/bin=%s", v, seed, duration, bin),
			Cfg: cfg,
		})
	}
	outs, err := runPool(units, sweepOpt(opts), false)
	if err != nil {
		return nil, err
	}

	var out []DynamicsResult
	for i, v := range variants {
		dr := DynamicsResult{Variant: v}
		if res := outs[i].Result; res != nil {
			for f := 0; f < 3; f++ {
				dr.Series[f] = res.Flows[f].ThroughputSeries
			}
		}
		out = append(out, dr)
	}
	return out, sweepError(outs)
}
