// Fairness: reproduce Simulation 3A (Figures 5.15-5.18). Two FTP flows
// cross at the centre of a cross topology; the example compares how
// fairly NewReno shares the medium with Vegas versus with Muzha, using
// Jain's fairness index.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"
	"time"

	"muzha"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pairs := [][2]muzha.Variant{
		{muzha.NewReno, muzha.Vegas},
		{muzha.NewReno, muzha.Muzha},
		{muzha.Muzha, muzha.Muzha},
	}

	fmt.Println("Two crossing flows on a 6-hop cross topology, 50 s, 3 seeds:")
	fmt.Println()
	rows, err := muzha.CoexistenceFairness([]int{6}, pairs, 50*time.Second, []int64{1, 2, 3})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  %-8s vs %-8s  %7.0f / %7.0f bit/s   Jain index %.3f\n",
			r.Variants[0], r.Variants[1],
			r.ThroughputBps[0], r.ThroughputBps[1], r.JainIndex)
	}
	fmt.Println()
	fmt.Println("Reno-style TCP steals bandwidth from the delay-sensing Vegas;")
	fmt.Println("Muzha's router-granted window resists the capture better, and")
	fmt.Println("two Muzha flows share the crossing almost evenly.")
	return nil
}
