// Quickstart: run one TCP Muzha flow over the paper's 4-hop chain
// (Figure 5.1) and print the headline metrics next to TCP NewReno's.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"muzha"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The 4-hop chain of Figure 5.1: five static nodes, 250 m apart,
	// 2 Mbps 802.11 radios, AODV routing, 50-packet drop-tail queues.
	topology, err := muzha.ChainTopology(4)
	if err != nil {
		return err
	}

	fmt.Println("TCP over a 4-hop wireless chain, 30 simulated seconds:")
	fmt.Println()
	for _, variant := range []muzha.Variant{muzha.NewReno, muzha.Muzha} {
		cfg := muzha.DefaultConfig()
		cfg.Topology = topology
		cfg.Duration = 30 * time.Second
		cfg.Window = 8 // the paper's window_ parameter
		cfg.Flows = []muzha.Flow{{Src: 0, Dst: 4, Variant: variant}}

		res, err := muzha.Run(cfg)
		if err != nil {
			return err
		}
		f := res.Flows[0]
		fmt.Printf("  %-8s  %7.0f bit/s   %2d retransmissions   %d timeouts\n",
			variant, f.ThroughputBps, f.Retransmissions, f.Timeouts)
	}
	fmt.Println()
	fmt.Println("TCP Muzha's router feedback (DRAI) avoids the overshooting")
	fmt.Println("losses that force NewReno into retransmissions and timeouts.")
	return nil
}
