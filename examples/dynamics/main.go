// Dynamics: reproduce Simulation 3B (Figures 5.19-5.22). Three flows of
// the same TCP variant enter a 4-hop chain at 0, 10 and 20 seconds; the
// example renders each flow's per-second throughput as an ASCII strip so
// the convergence behaviour is visible in a terminal.
//
//	go run ./examples/dynamics [variant]
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"muzha"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	variant := muzha.Muzha
	if len(args) > 0 {
		variant = muzha.Variant(strings.ToLower(args[0]))
	}

	results, err := muzha.ThroughputDynamics([]muzha.Variant{variant}, 30*time.Second, time.Second, 1)
	if err != nil {
		return err
	}
	dr := results[0]

	// Scale: find the peak bin across all flows.
	var peak float64
	for _, series := range dr.Series {
		for _, s := range series {
			if s.Value > peak {
				peak = s.Value
			}
		}
	}
	if peak == 0 {
		return fmt.Errorf("no traffic recorded")
	}

	fmt.Printf("Throughput dynamics, three %s flows on a 4-hop chain\n", dr.Variant)
	fmt.Printf("(flows start at 0 s, 10 s, 20 s; one column per second; peak %.0f kbit/s)\n\n", peak/1000)
	const width = 8 // characters of bar resolution
	ramp := []byte(" .:-=+*#")
	for fi, series := range dr.Series {
		var b strings.Builder
		fmt.Fprintf(&b, "  flow %d |", fi+1)
		for sec := 0; sec < 30; sec++ {
			v := 0.0
			for _, s := range series {
				if int(s.At/time.Second) == sec {
					v = s.Value
				}
			}
			idx := int(v / peak * float64(width-1))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteString("|")
		fmt.Println(b.String())
	}
	fmt.Println("          0s        10s       20s       30s")
	fmt.Println()

	// Fair-share summary over the final ten seconds, all three active.
	fmt.Println("Average share in the last 10 s (all three flows active):")
	for fi, series := range dr.Series {
		var sum float64
		n := 0
		for _, s := range series {
			if s.At >= 20*time.Second {
				sum += s.Value
				n++
			}
		}
		if n > 0 {
			sum /= float64(n)
		}
		fmt.Printf("  flow %d: %7.0f bit/s\n", fi+1, sum)
	}
	return nil
}
