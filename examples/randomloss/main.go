// Randomloss: demonstrate Section 4.7 — distinguishing random (channel)
// loss from congestion loss. The example sweeps an injected residual
// (post-ARQ) per-hop loss rate over a 4-hop chain and compares TCP
// NewReno (which halves its window on every loss) against TCP Muzha with
// and without its marked-dup-ACK discrimination.
//
//	go run ./examples/randomloss
package main

import (
	"fmt"
	"log"
	"time"

	"muzha"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topology, err := muzha.ChainTopology(4)
	if err != nil {
		return err
	}

	type setup struct {
		name         string
		variant      muzha.Variant
		discriminate bool
	}
	setups := []setup{
		{"newreno", muzha.NewReno, true},
		{"muzha", muzha.Muzha, true},
		{"muzha (no discrimination)", muzha.Muzha, false},
	}

	fmt.Println("Goodput (bit/s) on a 4-hop chain with residual random loss, 30 s, 3 seeds:")
	fmt.Println()
	fmt.Printf("%-28s", "residual loss rate:")
	rates := []float64{0, 0.005, 0.01, 0.02}
	for _, r := range rates {
		fmt.Printf("%8.1f%%", r*100)
	}
	fmt.Println()

	for _, su := range setups {
		fmt.Printf("%-28s", su.name)
		for _, rate := range rates {
			var thr float64
			const seeds = 3
			for seed := int64(1); seed <= seeds; seed++ {
				cfg := muzha.DefaultConfig()
				cfg.Topology = topology
				cfg.Duration = 30 * time.Second
				cfg.Window = 8
				cfg.Seed = seed
				cfg.ResidualLossRate = rate
				cfg.MuzhaLossDiscrimination = su.discriminate
				cfg.Flows = []muzha.Flow{{Src: 0, Dst: 4, Variant: su.variant}}
				res, err := muzha.Run(cfg)
				if err != nil {
					return err
				}
				thr += res.Flows[0].ThroughputBps / seeds
			}
			fmt.Printf("%10.0f", thr)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Muzha retransmits random losses without shrinking its window")
	fmt.Println("(unmarked duplicate ACKs), so goodput degrades more slowly than")
	fmt.Println("NewReno's loss-equals-congestion response.")
	return nil
}
