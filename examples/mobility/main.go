// Mobility: exercise the thesis' future-work scenario — a relay node of
// the 4-hop chain roams under the random-waypoint model, breaking and
// re-forming routes while a TCP flow runs. With no alternative path, the
// flow collapses: discovery fails while the relay is away, and TCP's
// exponentially backed-off retransmission timer keeps the connection
// silent long after connectivity returns. This "blackout" is exactly the
// pathology the paper's introduction blames on loss-probing TCP over
// MANETs.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"
	"time"

	"muzha"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 180 m spacing leaves the roaming relay some slack; at the paper's
	// exact 250 m spacing any movement severs the chain permanently.
	topology, err := muzha.ChainTopologySpaced(4, 180)
	if err != nil {
		return err
	}

	fmt.Println("4-hop chain (180 m spacing), 60 s NewReno flow; node 2 roams at 2-10 m/s:")
	fmt.Println()
	for _, mobile := range []bool{false, true} {
		cfg := muzha.DefaultConfig()
		cfg.Topology = topology
		cfg.Duration = 60 * time.Second
		cfg.Window = 8
		cfg.Flows = []muzha.Flow{{Src: 0, Dst: 4, Variant: muzha.NewReno}}
		if mobile {
			cfg.Mobility = &muzha.Mobility{
				Width: 800, Height: 200,
				MinSpeed: 2, MaxSpeed: 10,
				Pause:       5 * time.Second,
				MobileNodes: []int{2},
			}
		}
		res, err := muzha.Run(cfg)
		if err != nil {
			return err
		}
		var discoveries, linkFailures uint64
		for _, n := range res.Nodes {
			discoveries += n.Discoveries
			linkFailures += n.LinkFailures
		}
		label := "static"
		if mobile {
			label = "mobile"
		}
		fmt.Printf("  %-7s %7.0f bit/s   %2d timeouts   %2d route discoveries   %2d link failures\n",
			label, res.Flows[0].ThroughputBps, res.Flows[0].Timeouts, discoveries, linkFailures)
	}
	fmt.Println()
	fmt.Println("Motion severs the only path whenever node 2 drifts out of range.")
	fmt.Println("Route discovery fails while it is away, and TCP's backed-off RTO")
	fmt.Println("keeps the flow silent even after the relay returns — the blackout")
	fmt.Println("behaviour the paper's introduction describes. (The static run's")
	fmt.Println("link failures are contention-induced; its rediscoveries are cheap.)")
	return nil
}
