// Faults: crash the middle relay of a 4-hop chain while a TCP Muzha
// flow runs, then overlay a Gilbert–Elliott bursty-loss phase — and
// watch the run-time invariants hold through all of it. Every fault is
// an event on the simulation heap, so the whole faulty run replays
// bit-for-bit from the same Config and seed.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"
	"time"

	"muzha"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topology, err := muzha.ChainTopology(4)
	if err != nil {
		return err
	}

	cfg := muzha.DefaultConfig()
	cfg.Topology = topology
	cfg.Duration = 25 * time.Second
	cfg.Window = 8
	cfg.Flows = []muzha.Flow{{Src: 0, Dst: 4, Variant: muzha.Muzha}}
	cfg.Faults = []muzha.FaultEvent{
		// The only relay between 1 and 3 dies at t=5s and reboots cold
		// at t=10s: routes break, AODV re-discovers, TCP rides it out.
		{Kind: muzha.FaultNodeCrash, At: 5 * time.Second, Duration: 5 * time.Second, Node: 2},
		// A deep-fade phase: bursty frame loss across the channel.
		{Kind: muzha.FaultBurstLoss, At: 15 * time.Second, Duration: 5 * time.Second, BadLossRate: 0.7},
	}

	fmt.Println("Muzha over a 4-hop chain; relay 2 crashes 5-10 s, bursty loss 15-20 s:")
	fmt.Println()
	res, err := muzha.Run(cfg)
	if err != nil {
		return err
	}
	f := res.Flows[0]
	fmt.Printf("  throughput %.0f bit/s, %d retransmissions, %d timeouts\n",
		f.ThroughputBps, f.Retransmissions, f.Timeouts)
	fmt.Printf("  faults injected: %d crash, %d reboot, %d burst phases\n\n",
		res.Faults.Crashes, res.Faults.Reboots, res.Faults.BurstPhases)

	fmt.Println("Run-time invariants (Always must show ok; Sometimes shows coverage):")
	fmt.Print(res.InvariantReport())
	if res.InvariantViolations > 0 {
		return fmt.Errorf("invariant violations: %d", res.InvariantViolations)
	}
	return nil
}
