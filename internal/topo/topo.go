// Package topo builds the node layouts used by the paper's experiments:
// the h-hop chain (Figure 5.1) and the h-hop cross (Figure 5.15), plus
// grid and uniform-random layouts for wider testing, and a random-waypoint
// mobility model covering the thesis' "support of mobility" future work.
package topo

import (
	"fmt"
	"math"
	"math/rand"

	"muzha/internal/packet"
)

// Position is a point on the simulation plane, in metres.
type Position struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two positions in metres.
func Dist(a, b Position) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Hypot(dx, dy)
}

// DefaultSpacing is the inter-node distance used by the paper: exactly the
// 250 m transmission range, so each node reaches only its chain neighbours.
const DefaultSpacing = 250.0

// Topology is a set of node positions. Node IDs index the slice.
type Topology struct {
	Name      string
	Positions []Position

	// Endpoints of the flows this topology was built for, by convention
	// of the constructor (see Chain and Cross).
	FlowEndpoints [][2]packet.NodeID
}

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.Positions) }

// Chain returns the h-hop chain of Figure 5.1: h+1 nodes spaced at exactly
// the transmission range. The single flow endpoint pair is (0, h).
func Chain(hops int) (*Topology, error) {
	return ChainSpaced(hops, DefaultSpacing)
}

// ChainSpaced is Chain with configurable node spacing in metres.
func ChainSpaced(hops int, spacing float64) (*Topology, error) {
	if hops < 1 {
		return nil, fmt.Errorf("topo: chain needs at least 1 hop, got %d", hops)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("topo: spacing must be positive, got %g", spacing)
	}
	pos := make([]Position, hops+1)
	for i := range pos {
		pos[i] = Position{X: float64(i) * spacing}
	}
	return &Topology{
		Name:          fmt.Sprintf("chain-%dhop", hops),
		Positions:     pos,
		FlowEndpoints: [][2]packet.NodeID{{0, packet.NodeID(hops)}},
	}, nil
}

// Cross returns the h-hop cross of Figure 5.15: a horizontal h-hop chain
// and a vertical h-hop chain sharing their centre node (2h+1 nodes for
// even h; the paper's 4-hop cross has 9 nodes). Flow 1 runs horizontally
// (node 0 -> node h), flow 2 vertically (top -> bottom).
func Cross(hops int) (*Topology, error) {
	if hops < 2 || hops%2 != 0 {
		return nil, fmt.Errorf("topo: cross needs an even hop count >= 2, got %d", hops)
	}
	half := hops / 2
	// Horizontal chain: IDs 0..hops, centre at ID half.
	pos := make([]Position, 0, 2*hops+1)
	for i := 0; i <= hops; i++ {
		pos = append(pos, Position{X: float64(i) * DefaultSpacing})
	}
	centreX := float64(half) * DefaultSpacing
	// Vertical chain: IDs hops+1..2*hops, top to bottom, skipping the
	// shared centre.
	vTop := packet.NodeID(len(pos))
	for j := half; j >= -half; j-- {
		if j == 0 {
			continue // shared centre node
		}
		pos = append(pos, Position{X: centreX, Y: float64(j) * DefaultSpacing})
	}
	vBottom := packet.NodeID(len(pos) - 1)
	return &Topology{
		Name:      fmt.Sprintf("cross-%dhop", hops),
		Positions: pos,
		FlowEndpoints: [][2]packet.NodeID{
			{0, packet.NodeID(hops)}, // horizontal flow
			{vTop, vBottom},          // vertical flow
		},
	}, nil
}

// Grid returns a rows x cols lattice spaced at the transmission range,
// useful for stress tests beyond the paper's scenarios. The default flow
// endpoints are the two opposite corners.
func Grid(rows, cols int) (*Topology, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topo: grid needs positive dimensions, got %dx%d", rows, cols)
	}
	pos := make([]Position, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pos = append(pos, Position{X: float64(c) * DefaultSpacing, Y: float64(r) * DefaultSpacing})
		}
	}
	return &Topology{
		Name:          fmt.Sprintf("grid-%dx%d", rows, cols),
		Positions:     pos,
		FlowEndpoints: [][2]packet.NodeID{{0, packet.NodeID(rows*cols - 1)}},
	}, nil
}

// GridIslands lays out islands copies of a rows x cols lattice in a
// row, separated edge-to-edge by gap metres of empty space. With gap
// above the carrier-sense range the islands are independent interaction
// domains, which is exactly what the parallel engine's multi-domain
// benchmarks and golden tests need. The default flow endpoints are each
// island's opposite corners.
func GridIslands(islands, rows, cols int, gap float64) (*Topology, error) {
	if islands < 1 {
		return nil, fmt.Errorf("topo: grid-islands needs >= 1 island, got %d", islands)
	}
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topo: grid-islands needs positive dimensions, got %dx%d", rows, cols)
	}
	if gap <= 0 {
		return nil, fmt.Errorf("topo: grid-islands gap must be positive, got %g", gap)
	}
	islandW := float64(cols-1) * DefaultSpacing
	pos := make([]Position, 0, islands*rows*cols)
	flows := make([][2]packet.NodeID, 0, islands)
	for k := 0; k < islands; k++ {
		x0 := float64(k) * (islandW + gap)
		base := k * rows * cols
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				pos = append(pos, Position{X: x0 + float64(c)*DefaultSpacing, Y: float64(r) * DefaultSpacing})
			}
		}
		flows = append(flows, [2]packet.NodeID{packet.NodeID(base), packet.NodeID(base + rows*cols - 1)})
	}
	return &Topology{
		Name:          fmt.Sprintf("grid-islands-%dx%dx%d", islands, rows, cols),
		Positions:     pos,
		FlowEndpoints: flows,
	}, nil
}

// Random places n nodes uniformly at random in a width x height metre
// field using rng. Flow endpoints default to the most distant node pair.
func Random(n int, width, height float64, rng *rand.Rand) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: random topology needs >= 2 nodes, got %d", n)
	}
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("topo: field must have positive area, got %gx%g", width, height)
	}
	pos := make([]Position, n)
	for i := range pos {
		pos[i] = Position{X: rng.Float64() * width, Y: rng.Float64() * height}
	}
	var a, b int
	best := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := Dist(pos[i], pos[j]); d > best {
				best, a, b = d, i, j
			}
		}
	}
	return &Topology{
		Name:          fmt.Sprintf("random-%d", n),
		Positions:     pos,
		FlowEndpoints: [][2]packet.NodeID{{packet.NodeID(a), packet.NodeID(b)}},
	}, nil
}

// RandomGeometric places n nodes uniformly at random in a width x
// height metre field and picks flows source/destination pairs by
// seeded BFS: each flow's source is drawn from rng and its destination
// is the farthest node reachable at DefaultSpacing (lowest ID on
// ties), so every flow is multi-hop within its connected component.
// Unlike Random, endpoint selection is O(flows * (N + edges)) via the
// spatial grid index — no O(N^2) farthest-pair scan — which is what
// makes 1000-node generation practical.
func RandomGeometric(n int, width, height float64, flows int, rng *rand.Rand) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: random-geometric needs >= 2 nodes, got %d", n)
	}
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("topo: field must have positive area, got %gx%g", width, height)
	}
	if flows < 1 {
		return nil, fmt.Errorf("topo: random-geometric needs >= 1 flow, got %d", flows)
	}
	pos := make([]Position, n)
	for i := range pos {
		pos[i] = Position{X: rng.Float64() * width, Y: rng.Float64() * height}
	}
	t := &Topology{
		Name:      fmt.Sprintf("rgeo-%d", n),
		Positions: pos,
	}
	idx := newGridIndex(pos, DefaultSpacing)
	dist := make([]int, n)
	for f := 0; f < flows; f++ {
		src, dst := -1, -1
		// Draw sources until one has a reachable peer; a field dense
		// enough to simulate always has them, but bail deterministically
		// after one full sweep on pathological inputs.
		for attempt := 0; attempt < n; attempt++ {
			cand := (rng.Intn(n) + attempt) % n
			far := idx.farthestFrom(t, cand, dist)
			if far >= 0 {
				src, dst = cand, far
				break
			}
		}
		if src < 0 {
			return nil, fmt.Errorf("topo: random-geometric field %gx%g with %d nodes has no connected pair", width, height, n)
		}
		t.FlowEndpoints = append(t.FlowEndpoints, [2]packet.NodeID{packet.NodeID(src), packet.NodeID(dst)})
	}
	return t, nil
}

// GridIslandsFlows is GridIslands with flowsPerIsland seeded flow
// endpoint pairs per island instead of one corner-to-corner flow.
// Pairs are drawn from rng but constrained to at least half the
// island's diameter in Manhattan hops, so every flow exercises a
// multi-hop path. This is the 1000-node benchmark workhorse: islands
// are independent interaction domains, so the parallel engine's
// spatial decomposition fans out across them.
func GridIslandsFlows(islands, rows, cols int, gap float64, flowsPerIsland int, rng *rand.Rand) (*Topology, error) {
	t, err := GridIslands(islands, rows, cols, gap)
	if err != nil {
		return nil, err
	}
	if flowsPerIsland < 1 {
		return nil, fmt.Errorf("topo: grid-islands-flows needs >= 1 flow per island, got %d", flowsPerIsland)
	}
	minHops := (rows - 1 + cols - 1) / 2
	flows := make([][2]packet.NodeID, 0, islands*flowsPerIsland)
	for k := 0; k < islands; k++ {
		base := k * rows * cols
		for f := 0; f < flowsPerIsland; f++ {
			src, dst := 0, rows*cols-1
			for attempt := 0; attempt < 32; attempt++ {
				a, b := rng.Intn(rows*cols), rng.Intn(rows*cols)
				manhattan := abs(a/cols-b/cols) + abs(a%cols-b%cols)
				if manhattan >= minHops {
					src, dst = a, b
					break
				}
			}
			flows = append(flows, [2]packet.NodeID{packet.NodeID(base + src), packet.NodeID(base + dst)})
		}
	}
	t.Name = fmt.Sprintf("grid-islands-%dx%dx%d-f%d", islands, rows, cols, flowsPerIsland)
	t.FlowEndpoints = flows
	return t, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// gridIndex is a spatial hash over node positions with cell size equal
// to the transmission range: all neighbours of a node lie in its 3x3
// cell block, turning the O(N) per-node scans of Connected and
// HopDistance into O(k) local lookups.
type gridIndex struct {
	cell  float64
	cells map[[2]int][]int32
}

func newGridIndex(pos []Position, txRange float64) *gridIndex {
	g := &gridIndex{cell: txRange, cells: make(map[[2]int][]int32)}
	for i, p := range pos {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], int32(i))
	}
	return g
}

func (g *gridIndex) key(p Position) [2]int {
	return [2]int{int(math.Floor(p.X / g.cell)), int(math.Floor(p.Y / g.cell))}
}

// neighbors calls fn for every node within txRange of node u (itself
// excluded).
func (g *gridIndex) neighbors(t *Topology, u int, fn func(v int)) {
	k := g.key(t.Positions[u])
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for _, v := range g.cells[[2]int{k[0] + dx, k[1] + dy}] {
				if int(v) != u && Dist(t.Positions[u], t.Positions[v]) <= g.cell {
					fn(int(v))
				}
			}
		}
	}
}

// farthestFrom BFS-explores src's connected component and returns the
// node at maximum hop distance (lowest ID on ties), or -1 when src has
// no reachable peer. dist is scratch space of length N.
func (g *gridIndex) farthestFrom(t *Topology, src int, dist []int) int {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	far, farDist := -1, 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.neighbors(t, u, func(v int) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				if dist[v] > farDist || (dist[v] == farDist && v < far) {
					far, farDist = v, dist[v]
				}
				queue = append(queue, v)
			}
		})
	}
	return far
}

// Connected reports whether every node can reach every other node through
// hops of at most txRange metres. Used to validate generated topologies.
// The spatial grid index keeps this O(N + edges) instead of O(N^2).
func (t *Topology) Connected(txRange float64) bool {
	n := t.N()
	if n == 0 {
		return false
	}
	idx := newGridIndex(t.Positions, txRange)
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		idx.neighbors(t, u, func(v int) {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		})
	}
	return count == n
}

// HopDistance returns the minimum hop count between two nodes given a
// transmission range, or -1 if unreachable. Used by tests to validate the
// constructors against the paper's intended hop counts. BFS over the
// spatial grid index, O(N + edges).
func (t *Topology) HopDistance(src, dst packet.NodeID, txRange float64) int {
	n := t.N()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return -1
	}
	idx := newGridIndex(t.Positions, txRange)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []packet.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			return dist[u]
		}
		idx.neighbors(t, int(u), func(v int) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, packet.NodeID(v))
			}
		})
	}
	return -1
}
