package topo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

func TestChainLayout(t *testing.T) {
	c, err := Chain(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 5 {
		t.Fatalf("4-hop chain has %d nodes, want 5", c.N())
	}
	for i := 1; i < c.N(); i++ {
		if d := Dist(c.Positions[i-1], c.Positions[i]); d != DefaultSpacing {
			t.Fatalf("neighbour spacing %g, want %g", d, DefaultSpacing)
		}
	}
	if got := c.HopDistance(0, 4, DefaultSpacing); got != 4 {
		t.Fatalf("hop distance = %d, want 4", got)
	}
	if len(c.FlowEndpoints) != 1 || c.FlowEndpoints[0] != [2]packet.NodeID{0, 4} {
		t.Fatalf("flow endpoints = %v", c.FlowEndpoints)
	}
}

func TestChainErrors(t *testing.T) {
	if _, err := Chain(0); err == nil {
		t.Fatal("Chain(0) should error")
	}
	if _, err := ChainSpaced(4, -1); err == nil {
		t.Fatal("negative spacing should error")
	}
}

func TestChainNodesOnlyReachNeighbours(t *testing.T) {
	c, _ := Chain(8)
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.N(); j++ {
			reach := Dist(c.Positions[i], c.Positions[j]) <= DefaultSpacing
			wantReach := abs(i-j) <= 1
			if reach != wantReach {
				t.Fatalf("node %d reach node %d = %v, want %v", i, j, reach, wantReach)
			}
		}
	}
}

func TestCrossMatchesPaperFigure515(t *testing.T) {
	// The paper's 4-hop cross has 9 nodes and two 4-hop flows.
	c, err := Cross(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 9 {
		t.Fatalf("4-hop cross has %d nodes, want 9", c.N())
	}
	if len(c.FlowEndpoints) != 2 {
		t.Fatalf("cross should define 2 flows, got %d", len(c.FlowEndpoints))
	}
	for i, fe := range c.FlowEndpoints {
		if got := c.HopDistance(fe[0], fe[1], DefaultSpacing); got != 4 {
			t.Fatalf("flow %d hop distance = %d, want 4", i, got)
		}
	}
	if !c.Connected(DefaultSpacing) {
		t.Fatal("cross topology should be connected")
	}
}

func TestCrossSizes(t *testing.T) {
	for _, h := range []int{2, 4, 6, 8} {
		c, err := Cross(h)
		if err != nil {
			t.Fatal(err)
		}
		if c.N() != 2*h+1 {
			t.Fatalf("%d-hop cross has %d nodes, want %d", h, c.N(), 2*h+1)
		}
		for i, fe := range c.FlowEndpoints {
			if got := c.HopDistance(fe[0], fe[1], DefaultSpacing); got != h {
				t.Fatalf("%d-hop cross flow %d distance = %d", h, i, got)
			}
		}
	}
}

func TestCrossErrors(t *testing.T) {
	for _, h := range []int{0, 1, 3, -2} {
		if _, err := Cross(h); err == nil {
			t.Fatalf("Cross(%d) should error", h)
		}
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("grid nodes = %d, want 12", g.N())
	}
	if !g.Connected(DefaultSpacing) {
		t.Fatal("grid should be connected at default spacing")
	}
	// Manhattan corner-to-corner distance: (rows-1)+(cols-1) hops.
	if got := g.HopDistance(0, 11, DefaultSpacing); got != 5 {
		t.Fatalf("grid corner distance = %d, want 5", got)
	}
	if _, err := Grid(0, 3); err == nil {
		t.Fatal("Grid(0,3) should error")
	}
}

func TestRandomTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r, err := Random(20, 1000, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 20 {
		t.Fatalf("random nodes = %d", r.N())
	}
	for _, p := range r.Positions {
		if p.X < 0 || p.X > 1000 || p.Y < 0 || p.Y > 1000 {
			t.Fatalf("node out of field: %+v", p)
		}
	}
	fe := r.FlowEndpoints[0]
	// The chosen endpoints must be the most distant pair.
	want := Dist(r.Positions[fe[0]], r.Positions[fe[1]])
	for i := 0; i < r.N(); i++ {
		for j := i + 1; j < r.N(); j++ {
			if Dist(r.Positions[i], r.Positions[j]) > want+1e-9 {
				t.Fatal("flow endpoints are not the most distant pair")
			}
		}
	}
	if _, err := Random(1, 100, 100, rng); err == nil {
		t.Fatal("Random(1) should error")
	}
	if _, err := Random(5, 0, 100, rng); err == nil {
		t.Fatal("zero-width field should error")
	}
}

func TestRandomGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Dense enough that the field is essentially connected.
	g, err := RandomGeometric(200, 2000, 2000, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 || len(g.FlowEndpoints) != 10 {
		t.Fatalf("nodes=%d flows=%d", g.N(), len(g.FlowEndpoints))
	}
	for i, fe := range g.FlowEndpoints {
		if fe[0] == fe[1] {
			t.Fatalf("flow %d is a self-loop", i)
		}
		h := g.HopDistance(fe[0], fe[1], DefaultSpacing)
		if h < 1 {
			t.Fatalf("flow %d endpoints unreachable (hops=%d)", i, h)
		}
		// The destination is the farthest node from the source, so no
		// other node in the component may be farther.
		for v := 0; v < g.N(); v++ {
			hv := g.HopDistance(fe[0], packet.NodeID(v), DefaultSpacing)
			if hv > h {
				t.Fatalf("flow %d: node %d at %d hops beats chosen dst at %d", i, v, hv, h)
			}
		}
	}
	// Determinism: same seed, same topology.
	g2, err := RandomGeometric(200, 2000, 2000, 10, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Positions {
		if g.Positions[i] != g2.Positions[i] {
			t.Fatal("same seed produced different positions")
		}
	}
	for i := range g.FlowEndpoints {
		if g.FlowEndpoints[i] != g2.FlowEndpoints[i] {
			t.Fatal("same seed produced different flow endpoints")
		}
	}
}

func TestRandomGeometricErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomGeometric(1, 100, 100, 1, rng); err == nil {
		t.Fatal("n=1 should error")
	}
	if _, err := RandomGeometric(5, 0, 100, 1, rng); err == nil {
		t.Fatal("zero-width field should error")
	}
	if _, err := RandomGeometric(5, 100, 100, 0, rng); err == nil {
		t.Fatal("zero flows should error")
	}
	// Two nodes too far apart to ever connect.
	if _, err := RandomGeometric(2, 100_000, 100_000, 1, rand.New(rand.NewSource(3))); err == nil {
		t.Fatal("disconnected dust field should error")
	}
}

func TestGridIslandsFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, err := GridIslandsFlows(4, 5, 5, 1500, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 || len(g.FlowEndpoints) != 12 {
		t.Fatalf("nodes=%d flows=%d, want 100/12", g.N(), len(g.FlowEndpoints))
	}
	minHops := (4 + 4) / 2
	for i, fe := range g.FlowEndpoints {
		island := int(fe[0]) / 25
		if int(fe[1])/25 != island {
			t.Fatalf("flow %d crosses islands: %v", i, fe)
		}
		if h := g.HopDistance(fe[0], fe[1], DefaultSpacing); h < minHops {
			t.Fatalf("flow %d spans only %d hops, want >= %d", i, h, minHops)
		}
	}
	if _, err := GridIslandsFlows(2, 3, 3, 1500, 0, rng); err == nil {
		t.Fatal("zero flows per island should error")
	}
}

// The grid-index BFS must agree with hop counts known in closed form.
func TestGridIndexMatchesBruteForce(t *testing.T) {
	g, _ := Grid(6, 7)
	for _, tc := range [][3]int{{0, 41, 11}, {0, 6, 6}, {3, 38, 5}} {
		if got := g.HopDistance(packet.NodeID(tc[0]), packet.NodeID(tc[1]), DefaultSpacing); got != tc[2] {
			t.Fatalf("HopDistance(%d,%d) = %d, want %d", tc[0], tc[1], got, tc[2])
		}
	}
	if !g.Connected(DefaultSpacing) {
		t.Fatal("grid should be connected")
	}
	// Diagonal spacing exceeds the range: tighter range disconnects rows.
	if g.Connected(DefaultSpacing - 1) {
		t.Fatal("sub-spacing range should disconnect the lattice")
	}
}

func TestHopDistanceUnreachable(t *testing.T) {
	tp := &Topology{Positions: []Position{{X: 0}, {X: 10000}}}
	if got := tp.HopDistance(0, 1, DefaultSpacing); got != -1 {
		t.Fatalf("unreachable hop distance = %d, want -1", got)
	}
	if tp.Connected(DefaultSpacing) {
		t.Fatal("disconnected topology reported connected")
	}
	if got := tp.HopDistance(0, 5, DefaultSpacing); got != -1 {
		t.Fatal("out-of-range node should be unreachable")
	}
}

// Property: chain hop distance between i and j is |i-j| at default spacing.
func TestQuickChainHopDistance(t *testing.T) {
	c, _ := Chain(16)
	f := func(a, b uint8) bool {
		i, j := int(a%17), int(b%17)
		return c.HopDistance(packet.NodeID(i), packet.NodeID(j), DefaultSpacing) == abs(i-j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

type recordingSetter struct {
	updates map[int][]Position
}

func (r *recordingSetter) SetPosition(node int, pos Position) {
	if r.updates == nil {
		r.updates = make(map[int][]Position)
	}
	r.updates[node] = append(r.updates[node], pos)
}

func TestWaypointMovesNodesWithinField(t *testing.T) {
	s := sim.New(3)
	rec := &recordingSetter{}
	w, err := NewWaypoint(s, rec, WaypointConfig{
		Width: 500, Height: 500,
		MinSpeed: 10, MaxSpeed: 20,
		Pause:            sim.Second,
		UpdateInterval:   100 * sim.Millisecond,
		MobileNodes:      []int{0, 1},
		InitialPositions: []Position{{X: 0, Y: 0}, {X: 250, Y: 250}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	s.Run(30 * sim.Second)

	for _, id := range []int{0, 1} {
		ups := rec.updates[id]
		if len(ups) == 0 {
			t.Fatalf("node %d never moved", id)
		}
		for _, p := range ups {
			if p.X < 0 || p.X > 500 || p.Y < 0 || p.Y > 500 {
				t.Fatalf("node %d left the field: %+v", id, p)
			}
		}
	}
	// Speed bound: consecutive updates 100 ms apart can move at most
	// MaxSpeed*0.1 m (plus float slack).
	for id, ups := range rec.updates {
		prev := Position{X: 0, Y: 0}
		if id == 1 {
			prev = Position{X: 250, Y: 250}
		}
		for _, p := range ups {
			if d := Dist(prev, p); d > 20*0.1+1e-6 {
				t.Fatalf("node %d moved %g m in one update, exceeds max speed", id, d)
			}
			prev = p
		}
	}
}

func TestWaypointValidation(t *testing.T) {
	s := sim.New(1)
	rec := &recordingSetter{}
	bad := []WaypointConfig{
		{Width: 0, Height: 100, MinSpeed: 1, MaxSpeed: 2},
		{Width: 100, Height: 100, MinSpeed: 0, MaxSpeed: 2},
		{Width: 100, Height: 100, MinSpeed: 3, MaxSpeed: 2},
		{Width: 100, Height: 100, MinSpeed: 1, MaxSpeed: 2, MobileNodes: []int{5}},
	}
	for i, cfg := range bad {
		if _, err := NewWaypoint(s, rec, cfg); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestDist(t *testing.T) {
	if d := Dist(Position{X: 0, Y: 0}, Position{X: 3, Y: 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist = %g, want 5", d)
	}
}
