package topo

import (
	"math"
	"reflect"
	"testing"

	"muzha/internal/sim"
)

// recorder captures every position pushed into the PHY seam.
type recorder struct {
	updates map[int][]Position
}

func (r *recorder) SetPosition(node int, pos Position) {
	if r.updates == nil {
		r.updates = make(map[int][]Position)
	}
	r.updates[node] = append(r.updates[node], pos)
}

func TestManhattanValidation(t *testing.T) {
	s := sim.New(1)
	bad := []ManhattanConfig{
		{Width: 0, Height: 500, MinSpeed: 1, MaxSpeed: 2},
		{Width: 500, Height: 500, MinSpeed: 0, MaxSpeed: 2},
		{Width: 500, Height: 500, MinSpeed: 3, MaxSpeed: 2},
		{Width: 500, Height: 500, MinSpeed: 1, MaxSpeed: 2,
			MobileNodes: []int{5}, InitialPositions: []Position{{X: 0}}},
	}
	for i, cfg := range bad {
		if _, err := NewManhattan(s, &recorder{}, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestManhattanStaysOnStreets runs the model for a while and checks
// every pushed position lies on a street line (x or y a multiple of the
// spacing) inside the field, and that the node actually travels.
func TestManhattanStaysOnStreets(t *testing.T) {
	const spacing = 100.0
	s := sim.New(7)
	rec := &recorder{}
	m, err := NewManhattan(s, rec, ManhattanConfig{
		Width: 500, Height: 300, Spacing: spacing,
		MinSpeed: 5, MaxSpeed: 15,
		MobileNodes:      []int{0, 1},
		InitialPositions: []Position{{X: 137, Y: 42}, {X: 460, Y: 280}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	s.Run(60 * sim.Second)

	onStreet := func(p Position) bool {
		const eps = 1e-6
		mod := func(v float64) float64 {
			r := math.Mod(v, spacing)
			return math.Min(r, spacing-r)
		}
		return mod(p.X) < eps || mod(p.Y) < eps
	}
	for id, ups := range rec.updates {
		if len(ups) < 100 {
			t.Fatalf("node %d got only %d updates", id, len(ups))
		}
		travelled := 0.0
		prev := ups[0]
		for i, p := range ups {
			if !onStreet(p) {
				t.Fatalf("node %d update %d left the street grid: %+v", id, i, p)
			}
			if p.X < 0 || p.X > 500 || p.Y < 0 || p.Y > 300 {
				t.Fatalf("node %d update %d left the field: %+v", id, i, p)
			}
			travelled += Dist(prev, p)
			prev = p
		}
		// 60s at >= 5 m/s must cover serious ground.
		if travelled < 200 {
			t.Fatalf("node %d travelled only %.1f m in 60s", id, travelled)
		}
	}
}

// TestManhattanSnapsToNearestStreet pins the off-street start: the
// initial position lands on the closer of the two candidate streets.
func TestManhattanSnapsToNearestStreet(t *testing.T) {
	s := sim.New(1)
	m, err := NewManhattan(s, &recorder{}, ManhattanConfig{
		Width: 500, Height: 500, Spacing: 100, MinSpeed: 1, MaxSpeed: 1,
		MobileNodes: []int{0, 1},
		// Node 0: x=130 is 30 from street x=100, y=190 is 10 from
		// y=200 -> horizontal street wins. Node 1: the reverse.
		InitialPositions: []Position{{X: 130, Y: 190}, {X: 290, Y: 140}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Positions()
	if want := (Position{X: 130, Y: 200}); got[0] != want {
		t.Errorf("node 0 snapped to %+v, want %+v", got[0], want)
	}
	if want := (Position{X: 300, Y: 140}); got[1] != want {
		t.Errorf("node 1 snapped to %+v, want %+v", got[1], want)
	}
}

// TestManhattanDeterministic pins the model to the simulator's seeded
// RNG: the same seed yields the same trajectory, a different seed a
// different one.
func TestManhattanDeterministic(t *testing.T) {
	run := func(seed int64) map[int][]Position {
		s := sim.New(seed)
		rec := &recorder{}
		m, err := NewManhattan(s, rec, ManhattanConfig{
			Width: 600, Height: 600, Spacing: 150, MinSpeed: 2, MaxSpeed: 10,
			MobileNodes:      []int{0},
			InitialPositions: []Position{{X: 300, Y: 300}},
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		s.Run(30 * sim.Second)
		return rec.updates
	}
	a, b := run(5), run(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different trajectories")
	}
	if c := run(6); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical trajectories")
	}
}
