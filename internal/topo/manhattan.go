package topo

import (
	"fmt"
	"math"
	"math/rand"

	"muzha/internal/sim"
)

// ManhattanConfig parameterizes the Manhattan-grid mobility model:
// nodes move along the streets of a city grid (vertical streets at
// x = i*Spacing, horizontal at y = j*Spacing) and draw turn decisions
// at intersections — straight 50%, left 25%, right 25% — with a fresh
// speed per street segment. It complements the random-waypoint model
// for MANET scenarios where motion is road-constrained.
type ManhattanConfig struct {
	Width, Height    float64  // field bounds in metres
	Spacing          float64  // street spacing in metres (default DefaultSpacing)
	MinSpeed         float64  // m/s, must be > 0
	MaxSpeed         float64  // m/s, >= MinSpeed
	UpdateInterval   sim.Time // how often positions are pushed to the PHY
	MobileNodes      []int    // node IDs that move; others stay put
	InitialPositions []Position
}

// Manhattan runs the street-grid model on a simulator, pushing
// positions into a PositionSetter at a fixed cadence (the same
// contract as Waypoint).
type Manhattan struct {
	cfg    ManhattanConfig
	sim    *sim.Simulator
	rng    *rand.Rand
	target PositionSetter
	nodes  []manhattanNode
	// maxX/maxY are the last street lines inside the field.
	maxX, maxY float64
}

type manhattanNode struct {
	id     int
	pos    Position
	dx, dy int // unit direction along the current street
	speed  float64
}

// NewManhattan validates the configuration and prepares the model;
// mobile nodes are snapped to their nearest street. Call Start to
// begin motion.
func NewManhattan(s *sim.Simulator, target PositionSetter, cfg ManhattanConfig) (*Manhattan, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("topo: manhattan field must have positive area, got %gx%g", cfg.Width, cfg.Height)
	}
	if cfg.MinSpeed <= 0 || cfg.MaxSpeed < cfg.MinSpeed {
		return nil, fmt.Errorf("topo: manhattan speeds invalid: min=%g max=%g", cfg.MinSpeed, cfg.MaxSpeed)
	}
	if cfg.Spacing <= 0 {
		cfg.Spacing = DefaultSpacing
	}
	if cfg.UpdateInterval <= 0 {
		cfg.UpdateInterval = 100 * sim.Millisecond
	}
	m := &Manhattan{
		cfg:    cfg,
		sim:    s,
		rng:    s.Rand(),
		target: target,
		maxX:   math.Floor(cfg.Width/cfg.Spacing) * cfg.Spacing,
		maxY:   math.Floor(cfg.Height/cfg.Spacing) * cfg.Spacing,
	}
	for _, id := range cfg.MobileNodes {
		if id < 0 || id >= len(cfg.InitialPositions) {
			return nil, fmt.Errorf("topo: mobile node %d has no initial position", id)
		}
		m.nodes = append(m.nodes, manhattanNode{id: id, pos: m.snap(cfg.InitialPositions[id])})
	}
	return m, nil
}

// snap moves a position onto its nearest street (the closer of the
// nearest vertical and horizontal line), clamped into the street grid.
func (m *Manhattan) snap(p Position) Position {
	sp := m.cfg.Spacing
	clamp := func(v, hi float64) float64 {
		return math.Min(math.Max(v, 0), hi)
	}
	x, y := clamp(p.X, m.maxX), clamp(p.Y, m.maxY)
	vx := clamp(math.Round(x/sp)*sp, m.maxX)
	hy := clamp(math.Round(y/sp)*sp, m.maxY)
	if math.Abs(x-vx) <= math.Abs(y-hy) {
		return Position{X: vx, Y: y} // vertical street
	}
	return Position{X: x, Y: hy} // horizontal street
}

// Start draws initial directions and speeds and schedules the periodic
// position updates until the simulation ends.
func (m *Manhattan) Start() {
	for i := range m.nodes {
		n := &m.nodes[i]
		onVertical := math.Mod(n.pos.X, m.cfg.Spacing) == 0
		onHorizontal := math.Mod(n.pos.Y, m.cfg.Spacing) == 0
		switch {
		case onVertical && !onHorizontal:
			n.dx, n.dy = 0, 1
		case onHorizontal && !onVertical:
			n.dx, n.dy = 1, 0
		default: // at an intersection: any axis
			if m.rng.Float64() < 0.5 {
				n.dx, n.dy = 1, 0
			} else {
				n.dx, n.dy = 0, 1
			}
		}
		if !m.validDir(n.pos, n.dx, n.dy) {
			n.dx, n.dy = -n.dx, -n.dy
		}
		n.speed = m.drawSpeed()
	}
	m.sim.Schedule(m.cfg.UpdateInterval, m.step)
}

func (m *Manhattan) drawSpeed() float64 {
	return m.cfg.MinSpeed + m.rng.Float64()*(m.cfg.MaxSpeed-m.cfg.MinSpeed)
}

// validDir reports whether moving from p along (dx,dy) stays on the
// street grid.
func (m *Manhattan) validDir(p Position, dx, dy int) bool {
	const eps = 1e-9
	switch {
	case dx > 0:
		return p.X < m.maxX-eps
	case dx < 0:
		return p.X > eps
	case dy > 0:
		return p.Y < m.maxY-eps
	case dy < 0:
		return p.Y > eps
	}
	return false
}

func (m *Manhattan) step() {
	dt := m.cfg.UpdateInterval.Seconds()
	for i := range m.nodes {
		n := &m.nodes[i]
		m.advance(n, n.speed*dt)
		m.target.SetPosition(n.id, n.pos)
	}
	m.sim.Schedule(m.cfg.UpdateInterval, m.step)
}

// advance moves a node by travel metres along its street, handling any
// intersections crossed on the way (turn decision + speed redraw at
// each). The iteration bound guards against pathological speed/spacing
// ratios; motion truncated by it resumes next step.
func (m *Manhattan) advance(n *manhattanNode, travel float64) {
	for hops := 0; hops < 16 && travel > 0; hops++ {
		next := m.nextIntersection(n)
		dist := math.Abs(next.X-n.pos.X) + math.Abs(next.Y-n.pos.Y)
		if travel < dist {
			n.pos.X += float64(n.dx) * travel
			n.pos.Y += float64(n.dy) * travel
			return
		}
		n.pos = next
		travel -= dist
		m.turn(n)
		n.speed = m.drawSpeed()
	}
}

// nextIntersection returns the next street crossing ahead of the node.
func (m *Manhattan) nextIntersection(n *manhattanNode) Position {
	const eps = 1e-9
	sp := m.cfg.Spacing
	p := n.pos
	switch {
	case n.dx > 0:
		p.X = math.Min((math.Floor(n.pos.X/sp+eps)+1)*sp, m.maxX)
	case n.dx < 0:
		p.X = math.Max((math.Ceil(n.pos.X/sp-eps)-1)*sp, 0)
	case n.dy > 0:
		p.Y = math.Min((math.Floor(n.pos.Y/sp+eps)+1)*sp, m.maxY)
	default:
		p.Y = math.Max((math.Ceil(n.pos.Y/sp-eps)-1)*sp, 0)
	}
	return p
}

// turn draws the intersection decision: straight 50%, left 25%, right
// 25%; a choice that would leave the grid falls back through straight,
// left, right, reverse in that order.
func (m *Manhattan) turn(n *manhattanNode) {
	straight := [2]int{n.dx, n.dy}
	left := [2]int{-n.dy, n.dx}
	right := [2]int{n.dy, -n.dx}
	reverse := [2]int{-n.dx, -n.dy}
	var pick [2]int
	switch r := m.rng.Float64(); {
	case r < 0.5:
		pick = straight
	case r < 0.75:
		pick = left
	default:
		pick = right
	}
	if m.validDir(n.pos, pick[0], pick[1]) {
		n.dx, n.dy = pick[0], pick[1]
		return
	}
	for _, d := range [][2]int{straight, left, right, reverse} {
		if m.validDir(n.pos, d[0], d[1]) {
			n.dx, n.dy = d[0], d[1]
			return
		}
	}
}

// Positions returns the current position of every mobile node, keyed
// by node ID. Mostly for tests.
func (m *Manhattan) Positions() map[int]Position {
	out := make(map[int]Position, len(m.nodes))
	for _, n := range m.nodes {
		out[n.id] = n.pos
	}
	return out
}
