package topo

import (
	"fmt"
	"math/rand"

	"muzha/internal/sim"
)

// PositionSetter is the part of the PHY layer a mobility model drives.
type PositionSetter interface {
	SetPosition(node int, pos Position)
}

// WaypointConfig parameterizes the random-waypoint mobility model. The
// thesis defers mobility to future work; this implements it so route
// failures caused by motion can be exercised.
type WaypointConfig struct {
	Width, Height    float64 // field bounds in metres
	MinSpeed         float64 // m/s, must be > 0
	MaxSpeed         float64 // m/s, >= MinSpeed
	Pause            sim.Time
	UpdateInterval   sim.Time // how often positions are pushed to the PHY
	MobileNodes      []int    // node IDs that move; others stay put
	InitialPositions []Position
}

// Waypoint runs a random-waypoint model on a simulator, pushing positions
// into a PositionSetter at a fixed cadence.
type Waypoint struct {
	cfg    WaypointConfig
	sim    *sim.Simulator
	rng    *rand.Rand
	target PositionSetter
	nodes  []waypointNode
}

type waypointNode struct {
	id        int
	pos       Position
	dest      Position
	speed     float64 // m/s; 0 while paused
	pausedTil sim.Time
}

// NewWaypoint validates the configuration and prepares the model. Call
// Start to begin motion.
func NewWaypoint(s *sim.Simulator, target PositionSetter, cfg WaypointConfig) (*Waypoint, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("topo: waypoint field must have positive area, got %gx%g", cfg.Width, cfg.Height)
	}
	if cfg.MinSpeed <= 0 || cfg.MaxSpeed < cfg.MinSpeed {
		return nil, fmt.Errorf("topo: waypoint speeds invalid: min=%g max=%g", cfg.MinSpeed, cfg.MaxSpeed)
	}
	if cfg.UpdateInterval <= 0 {
		cfg.UpdateInterval = 100 * sim.Millisecond
	}
	w := &Waypoint{cfg: cfg, sim: s, rng: s.Rand(), target: target}
	for _, id := range cfg.MobileNodes {
		if id < 0 || id >= len(cfg.InitialPositions) {
			return nil, fmt.Errorf("topo: mobile node %d has no initial position", id)
		}
		w.nodes = append(w.nodes, waypointNode{id: id, pos: cfg.InitialPositions[id]})
	}
	return w, nil
}

// Start picks first destinations and schedules periodic position updates
// until the simulation ends.
func (w *Waypoint) Start() {
	for i := range w.nodes {
		w.pickDestination(&w.nodes[i])
	}
	w.sim.Schedule(w.cfg.UpdateInterval, w.step)
}

func (w *Waypoint) step() {
	dt := w.cfg.UpdateInterval.Seconds()
	now := w.sim.Now()
	for i := range w.nodes {
		n := &w.nodes[i]
		if now < n.pausedTil {
			continue
		}
		remaining := Dist(n.pos, n.dest)
		travel := n.speed * dt
		if travel >= remaining {
			n.pos = n.dest
			n.pausedTil = now + w.cfg.Pause
			w.pickDestination(n)
		} else {
			frac := travel / remaining
			n.pos.X += (n.dest.X - n.pos.X) * frac
			n.pos.Y += (n.dest.Y - n.pos.Y) * frac
		}
		w.target.SetPosition(n.id, n.pos)
	}
	w.sim.Schedule(w.cfg.UpdateInterval, w.step)
}

func (w *Waypoint) pickDestination(n *waypointNode) {
	n.dest = Position{X: w.rng.Float64() * w.cfg.Width, Y: w.rng.Float64() * w.cfg.Height}
	n.speed = w.cfg.MinSpeed + w.rng.Float64()*(w.cfg.MaxSpeed-w.cfg.MinSpeed)
}

// Positions returns the current position of every mobile node, keyed by
// node ID. Mostly for tests.
func (w *Waypoint) Positions() map[int]Position {
	out := make(map[int]Position, len(w.nodes))
	for _, n := range w.nodes {
		out[n.id] = n.pos
	}
	return out
}
