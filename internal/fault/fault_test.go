package fault

import (
	"fmt"
	"reflect"
	"testing"

	"muzha/internal/sim"
)

type fakeNode struct {
	id  int
	log *[]string
	now func() sim.Time
}

func (n *fakeNode) Crash()  { *n.log = append(*n.log, fmt.Sprintf("%v crash %d", n.now(), n.id)) }
func (n *fakeNode) Reboot() { *n.log = append(*n.log, fmt.Sprintf("%v reboot %d", n.now(), n.id)) }

type fakeMedium struct {
	log *[]string
	now func() sim.Time
}

func (m *fakeMedium) SetLinkBlocked(a, b int, blocked bool) {
	*m.log = append(*m.log, fmt.Sprintf("%v link %d->%d %v", m.now(), a, b, blocked))
}
func (m *fakeMedium) SetPartition(groups [][]int) {
	*m.log = append(*m.log, fmt.Sprintf("%v partition %v", m.now(), groups))
}
func (m *fakeMedium) ClearPartition() {
	*m.log = append(*m.log, fmt.Sprintf("%v heal", m.now()))
}
func (m *fakeMedium) SetBurstLoss(pGB, pBG, lossG, lossB float64) {
	*m.log = append(*m.log, fmt.Sprintf("%v burst pGB=%.3f pBG=%.3f lossB=%.2f", m.now(), pGB, pBG, lossB))
}
func (m *fakeMedium) ClearBurstLoss() {
	*m.log = append(*m.log, fmt.Sprintf("%v burst off", m.now()))
}

func harness(n int) (*sim.Simulator, []NodeControl, *fakeMedium, *[]string) {
	s := sim.New(1)
	log := &[]string{}
	nodes := make([]NodeControl, n)
	for i := range nodes {
		nodes[i] = &fakeNode{id: i, log: log, now: s.Now}
	}
	return s, nodes, &fakeMedium{log: log, now: s.Now}, log
}

func TestInjectorSequencesFaults(t *testing.T) {
	s, nodes, medium, log := harness(4)
	inj, err := NewInjector(s, nodes, medium, []Event{
		{Kind: NodeCrash, At: 1 * sim.Second, Duration: 2 * sim.Second, Node: 2},
		{Kind: LinkBlackout, At: 2 * sim.Second, Duration: sim.Second, LinkA: 0, LinkB: 1},
		{Kind: Partition, At: 5 * sim.Second, Duration: sim.Second, Groups: [][]int{{0, 1}, {2, 3}}},
		{Kind: BurstLoss, At: 7 * sim.Second, Burst: BurstParams{BadLossRate: 0.5, MeanBurstFrames: 10, MeanGapFrames: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	s.Run(10 * sim.Second)

	want := []string{
		"1s crash 2",
		"2s link 0->1 true",
		"2s link 1->0 true",
		"3s reboot 2",
		"3s link 0->1 false",
		"3s link 1->0 false",
		"5s partition [[0 1] [2 3]]",
		"6s heal",
		"7s burst pGB=0.010 pBG=0.100 lossB=0.50",
	}
	if !reflect.DeepEqual(*log, want) {
		t.Fatalf("log:\n%v\nwant:\n%v", *log, want)
	}
	st := inj.Stats()
	if st.Crashes != 1 || st.Reboots != 1 || st.Blackouts != 1 || st.Restores != 1 ||
		st.Partitions != 1 || st.Heals != 1 || st.BurstPhases != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOneWayBlackoutAndUnboundedCrash(t *testing.T) {
	s, nodes, medium, log := harness(2)
	inj, err := NewInjector(s, nodes, medium, []Event{
		{Kind: LinkBlackout, At: sim.Second, LinkA: 1, LinkB: 0, OneWay: true},
		{Kind: NodeCrash, At: 2 * sim.Second, Node: 0}, // Duration 0: down for the rest of the run
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	s.Run(10 * sim.Second)
	want := []string{"1s link 1->0 true", "2s crash 0"}
	if !reflect.DeepEqual(*log, want) {
		t.Fatalf("log = %v, want %v", *log, want)
	}
	if st := inj.Stats(); st.Reboots != 0 || st.Restores != 0 {
		t.Fatalf("unbounded faults must not recover: %+v", st)
	}
}

func TestOnFireObserver(t *testing.T) {
	s, nodes, medium, _ := harness(2)
	inj, err := NewInjector(s, nodes, medium, []Event{
		{Kind: NodeCrash, At: sim.Second, Duration: sim.Second, Node: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var fires []bool
	inj.OnFire = func(e Event, recovered bool) { fires = append(fires, recovered) }
	inj.Start()
	s.Run(5 * sim.Second)
	if !reflect.DeepEqual(fires, []bool{false, true}) {
		t.Fatalf("fires = %v", fires)
	}
}

func TestValidation(t *testing.T) {
	cases := []Event{
		{Kind: NodeCrash, Node: 5},
		{Kind: NodeCrash, Node: -1},
		{Kind: NodeCrash, Node: 0, At: -sim.Second},
		{Kind: NodeCrash, Node: 0, Duration: -sim.Second},
		{Kind: LinkBlackout, LinkA: 0, LinkB: 0},
		{Kind: LinkBlackout, LinkA: 0, LinkB: 9},
		{Kind: Partition},
		{Kind: Partition, Groups: [][]int{{0, 1}, {1}}},
		{Kind: Partition, Groups: [][]int{{7}}},
		{Kind: BurstLoss, Burst: BurstParams{BadLossRate: 1.5}},
		{Kind: BurstLoss, Burst: BurstParams{MeanBurstFrames: -1}},
		{Kind: Kind(99)},
	}
	for i, e := range cases {
		if err := Validate([]Event{e}, 3); err == nil {
			t.Errorf("case %d (%v): want error", i, e)
		}
	}
	ok := []Event{
		{Kind: NodeCrash, Node: 2, At: sim.Second},
		{Kind: LinkBlackout, LinkA: 0, LinkB: 2},
		{Kind: Partition, Groups: [][]int{{0}, {1, 2}}},
		{Kind: BurstLoss},
	}
	if err := Validate(ok, 3); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}
