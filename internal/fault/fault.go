// Package fault implements deterministic, schedule-driven fault
// injection for the simulator: node crash/reboot, directional link
// blackout windows, network partitions, and Gilbert–Elliott bursty-loss
// phases. Every fault is an event on the simulation heap, so a faulty
// run is exactly as reproducible as a clean one — the same Config and
// seed replay the same failures at the same virtual instants.
//
// The package is deliberately mechanism-free: it knows nothing about
// radios or routing tables. Nodes expose Crash/Reboot and the medium
// exposes link/partition/loss controls; the injector only sequences
// them.
package fault

import (
	"fmt"

	"muzha/internal/sim"
)

// Kind discriminates fault event types.
type Kind int

const (
	// NodeCrash silences a node for the event window: its radio stops
	// radiating and receiving, queued packets are flushed, and all MAC
	// and routing state is wiped (a reboot restarts from scratch).
	NodeCrash Kind = iota + 1
	// LinkBlackout mutes the physical channel between two nodes for the
	// window (both directions unless OneWay is set), modelling a deep
	// fade or an obstacle moving between them.
	LinkBlackout
	// Partition splits the network into non-communicating groups for
	// the window. Nodes not listed in any group form one implicit
	// leftover group.
	Partition
	// BurstLoss overlays a Gilbert–Elliott two-state loss process on
	// the channel for the window, layered on top of the uniform
	// per-packet error rate.
	BurstLoss
)

func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case LinkBlackout:
		return "link-blackout"
	case Partition:
		return "partition"
	case BurstLoss:
		return "burst-loss"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// BurstParams parameterizes the Gilbert–Elliott loss process. The chain
// advances one step per frame: in the good state frames are lost with
// GoodLossRate, in the bad state with BadLossRate; expected sojourn
// times are MeanGapFrames and MeanBurstFrames respectively.
type BurstParams struct {
	BadLossRate     float64 // loss probability in the bad state (default 0.8)
	GoodLossRate    float64 // loss probability in the good state (default 0)
	MeanBurstFrames float64 // expected bad-state length in frames (default 8)
	MeanGapFrames   float64 // expected good-state length in frames (default 200)
}

// withDefaults fills zero fields.
func (b BurstParams) withDefaults() BurstParams {
	if b.BadLossRate == 0 {
		b.BadLossRate = 0.8
	}
	if b.MeanBurstFrames == 0 {
		b.MeanBurstFrames = 8
	}
	if b.MeanGapFrames == 0 {
		b.MeanGapFrames = 200
	}
	return b
}

// Event is one scheduled fault. At is when it strikes; Duration is how
// long it lasts (0 means until the end of the run).
type Event struct {
	Kind     Kind
	At       sim.Time
	Duration sim.Time

	// Node is the crash target (NodeCrash).
	Node int
	// LinkA, LinkB name the muted pair (LinkBlackout); OneWay restricts
	// the mute to the A->B direction.
	LinkA, LinkB int
	OneWay       bool
	// Groups are the partition classes (Partition).
	Groups [][]int
	// Burst holds the loss-process parameters (BurstLoss).
	Burst BurstParams
}

func (e Event) String() string {
	switch e.Kind {
	case NodeCrash:
		return fmt.Sprintf("%v node %d at %v for %v", e.Kind, e.Node, e.At, e.Duration)
	case LinkBlackout:
		dir := "<->"
		if e.OneWay {
			dir = "->"
		}
		return fmt.Sprintf("%v %d%s%d at %v for %v", e.Kind, e.LinkA, dir, e.LinkB, e.At, e.Duration)
	case Partition:
		return fmt.Sprintf("%v %v at %v for %v", e.Kind, e.Groups, e.At, e.Duration)
	case BurstLoss:
		return fmt.Sprintf("%v p=%.2f at %v for %v", e.Kind, e.Burst.BadLossRate, e.At, e.Duration)
	default:
		return fmt.Sprintf("%v at %v", e.Kind, e.At)
	}
}

// Validate checks one event against a topology of n nodes.
func (e Event) Validate(n int) error {
	if e.At < 0 {
		return fmt.Errorf("fault: %v scheduled before the run starts", e.Kind)
	}
	if e.Duration < 0 {
		return fmt.Errorf("fault: %v has negative duration %v", e.Kind, e.Duration)
	}
	switch e.Kind {
	case NodeCrash:
		if e.Node < 0 || e.Node >= n {
			return fmt.Errorf("fault: crash node %d out of range [0,%d)", e.Node, n)
		}
	case LinkBlackout:
		if e.LinkA < 0 || e.LinkA >= n || e.LinkB < 0 || e.LinkB >= n {
			return fmt.Errorf("fault: blackout link (%d,%d) out of range [0,%d)", e.LinkA, e.LinkB, n)
		}
		if e.LinkA == e.LinkB {
			return fmt.Errorf("fault: blackout link endpoints are both %d", e.LinkA)
		}
	case Partition:
		if len(e.Groups) == 0 {
			return fmt.Errorf("fault: partition needs at least one group")
		}
		seen := make(map[int]bool)
		for _, g := range e.Groups {
			for _, id := range g {
				if id < 0 || id >= n {
					return fmt.Errorf("fault: partition node %d out of range [0,%d)", id, n)
				}
				if seen[id] {
					return fmt.Errorf("fault: partition node %d listed twice", id)
				}
				seen[id] = true
			}
		}
	case BurstLoss:
		b := e.Burst
		if b.BadLossRate < 0 || b.BadLossRate >= 1 || b.GoodLossRate < 0 || b.GoodLossRate >= 1 {
			return fmt.Errorf("fault: burst loss rates must be in [0,1): bad=%g good=%g", b.BadLossRate, b.GoodLossRate)
		}
		if b.MeanBurstFrames < 0 || b.MeanGapFrames < 0 {
			return fmt.Errorf("fault: burst lengths must be >= 0: burst=%g gap=%g", b.MeanBurstFrames, b.MeanGapFrames)
		}
	default:
		return fmt.Errorf("fault: unknown kind %v", e.Kind)
	}
	return nil
}

// Validate checks a whole schedule against a topology of n nodes.
func Validate(events []Event, n int) error {
	for i, e := range events {
		if err := e.Validate(n); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// NodeControl is what the injector needs from a node.
type NodeControl interface {
	// Crash silences the node and wipes its volatile state.
	Crash()
	// Reboot brings a crashed node back with a cold start.
	Reboot()
}

// Medium is what the injector needs from the physical channel.
type Medium interface {
	// SetLinkBlocked mutes (or restores) the directional link a->b.
	SetLinkBlocked(a, b int, blocked bool)
	// SetPartition installs communication classes: frames only pass
	// between nodes of the same group. Unlisted nodes share one
	// implicit group.
	SetPartition(groups [][]int)
	// ClearPartition removes the partition.
	ClearPartition()
	// SetBurstLoss enables a Gilbert–Elliott loss overlay with the
	// given per-frame transition probabilities and loss rates.
	SetBurstLoss(pGoodBad, pBadGood, lossGood, lossBad float64)
	// ClearBurstLoss disables the overlay.
	ClearBurstLoss()
}

// Stats counts injected faults, for reporting.
type Stats struct {
	Crashes     uint64
	Reboots     uint64
	Blackouts   uint64
	Restores    uint64
	Partitions  uint64
	Heals       uint64
	BurstPhases uint64
}

// Injector schedules a fault plan onto a simulator.
type Injector struct {
	sim      *sim.Simulator
	nodes    []NodeControl
	medium   Medium
	schedule []Event
	stats    Stats

	// OnFire, when non-nil, observes every fault transition (strike and
	// recovery) as it happens — used for Sometimes-coverage and tracing.
	OnFire func(e Event, recovered bool)
}

// NewInjector validates the schedule and returns an injector ready to
// Start. nodes must be indexed by node ID.
func NewInjector(s *sim.Simulator, nodes []NodeControl, medium Medium, schedule []Event) (*Injector, error) {
	if err := Validate(schedule, len(nodes)); err != nil {
		return nil, err
	}
	return &Injector{sim: s, nodes: nodes, medium: medium, schedule: schedule}, nil
}

// Stats returns a copy of the injection counters.
func (in *Injector) Stats() Stats { return in.stats }

// Start places every fault (and its recovery, when the window is
// bounded) on the event heap.
func (in *Injector) Start() {
	for _, e := range in.schedule {
		e := e
		in.sim.At(e.At, func() { in.strike(e) })
		if e.Duration > 0 {
			in.sim.At(e.At+e.Duration, func() { in.recover(e) })
		}
	}
}

func (in *Injector) strike(e Event) {
	switch e.Kind {
	case NodeCrash:
		in.stats.Crashes++
		in.nodes[e.Node].Crash()
	case LinkBlackout:
		in.stats.Blackouts++
		in.medium.SetLinkBlocked(e.LinkA, e.LinkB, true)
		if !e.OneWay {
			in.medium.SetLinkBlocked(e.LinkB, e.LinkA, true)
		}
	case Partition:
		in.stats.Partitions++
		in.medium.SetPartition(e.Groups)
	case BurstLoss:
		in.stats.BurstPhases++
		b := e.Burst.withDefaults()
		pGB, pBG := 0.0, 1.0
		if b.MeanGapFrames > 0 {
			pGB = 1 / b.MeanGapFrames
		}
		if b.MeanBurstFrames > 0 {
			pBG = 1 / b.MeanBurstFrames
		}
		in.medium.SetBurstLoss(pGB, pBG, b.GoodLossRate, b.BadLossRate)
	}
	if in.OnFire != nil {
		in.OnFire(e, false)
	}
}

func (in *Injector) recover(e Event) {
	switch e.Kind {
	case NodeCrash:
		in.stats.Reboots++
		in.nodes[e.Node].Reboot()
	case LinkBlackout:
		in.stats.Restores++
		in.medium.SetLinkBlocked(e.LinkA, e.LinkB, false)
		if !e.OneWay {
			in.medium.SetLinkBlocked(e.LinkB, e.LinkA, false)
		}
	case Partition:
		in.stats.Heals++
		in.medium.ClearPartition()
	case BurstLoss:
		in.medium.ClearBurstLoss()
	}
	if in.OnFire != nil {
		in.OnFire(e, true)
	}
}
