package chaoscov

import (
	"fmt"

	"muzha"
	"muzha/internal/scenario"
)

// classify derives the failure class for one executed spec: the
// error's class when the run failed, ClassInvariant when an Always
// assertion was violated, "" for a healthy run. Mirrors
// muzha.ChaosRun.FailureClass.
func classify(res *muzha.Result, err error) string {
	switch {
	case err != nil:
		return muzha.Classify(err)
	case res != nil && res.InvariantViolations > 0:
		return string(muzha.ClassInvariant)
	}
	return ""
}

// RunSpec executes one spec. When the spec carries no Guards block the
// fallback guards bound the run, so a shrink candidate that livelocks
// cannot hang the shrinker.
func RunSpec(s scenario.Spec, fallback muzha.RunGuards) (*muzha.Result, string, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, muzha.ClassError, err
	}
	if s.Guards == nil {
		cfg.Guards = fallback
	}
	res, err := muzha.Run(cfg)
	return res, classify(res, err), err
}

// ShrinkResult reports one shrink session.
type ShrinkResult struct {
	// Spec is the minimized reproducer, with Expect.Class set to the
	// reproduced failure class so the file is self-verifying.
	Spec scenario.Spec
	// Class is the failure class every accepted step reproduced.
	Class string
	// Steps counts accepted reductions; 0 means the input was already
	// minimal (or the budget ran out before any candidate reproduced).
	Steps int
	// Runs counts simulations executed while shrinking.
	Runs int
}

// Shrink greedily minimizes a failing spec while preserving its
// failure class: at each step it tries, in deterministic order,
// dropping a fault, dropping a flow, dropping background load and
// mobility, shaving a node off the topology, and halving the
// duration. The first candidate that still fails with the same class
// becomes the new spec; the process repeats until no candidate
// reproduces (a fixpoint) or maxRuns simulations have been spent.
//
// Every candidate is validated before running — a reduction that
// breaks spec validity (a flow endpoint beyond the smaller topology)
// is skipped, not repaired, keeping each accepted step an exact
// sub-scenario of its predecessor. Nondeterministic failures are
// returned unshrunk: by definition the class is not stable under
// re-execution, so greedy reduction has nothing to anchor on.
//
// logf, when non-nil, receives one line per accepted reduction.
func Shrink(s scenario.Spec, class string, guards muzha.RunGuards, maxRuns int, logf func(format string, args ...any)) ShrinkResult {
	if maxRuns <= 0 {
		maxRuns = 200
	}
	out := ShrinkResult{Spec: cloneSpec(s), Class: class}
	if class == "" || class == muzha.ClassNonDeterministic {
		finish(&out)
		return out
	}
	for {
		accepted := false
		for _, cand := range candidates(out.Spec) {
			if out.Runs >= maxRuns {
				finish(&out)
				return out
			}
			if cand.spec.Validate() != nil {
				continue
			}
			out.Runs++
			_, got, _ := RunSpec(cand.spec, guards)
			if got != class {
				continue
			}
			out.Spec = cand.spec
			out.Steps++
			accepted = true
			if logf != nil {
				logf("shrink step %d: %s (%s)", out.Steps, cand.desc, out.Spec.Summary())
			}
			break // restart the candidate scan from the smaller spec
		}
		if !accepted {
			finish(&out)
			return out
		}
	}
}

// finish stamps the reproducer's self-verifying expectation.
func finish(out *ShrinkResult) {
	if out.Class == "" {
		return
	}
	out.Spec.Expect = &scenario.Expect{Class: out.Class}
}

type candidate struct {
	spec scenario.Spec
	desc string
}

// candidates enumerates the one-step reductions of s, most aggressive
// first (structure before duration), each on its own deep copy.
func candidates(s scenario.Spec) []candidate {
	var out []candidate
	for i := range s.Faults {
		c := cloneSpec(s)
		c.Faults = append(c.Faults[:i], c.Faults[i+1:]...)
		if len(c.Faults) == 0 {
			c.Faults = nil
		}
		out = append(out, candidate{c, fmt.Sprintf("drop fault %d (%s)", i, s.Faults[i].Kind)})
	}
	for i := range s.Flows {
		if len(s.Flows) == 1 {
			break // a runnable config needs at least one flow
		}
		c := cloneSpec(s)
		c.Flows = append(c.Flows[:i], c.Flows[i+1:]...)
		out = append(out, candidate{c, fmt.Sprintf("drop flow %d", i)})
	}
	if len(s.Background) > 0 {
		c := cloneSpec(s)
		c.Background = nil
		out = append(out, candidate{c, "drop background load"})
	}
	if s.Mobility != nil {
		c := cloneSpec(s)
		c.Mobility = nil
		out = append(out, candidate{c, "drop mobility"})
	}
	if t, ok := smallerTopology(s.Topology); ok {
		c := cloneSpec(s)
		c.Topology = t
		clampNodes(&c)
		out = append(out, candidate{c, fmt.Sprintf("shrink topology to %d nodes", t.NodeCount())})
	}
	if d := s.Duration().Milliseconds(); d > 1000 {
		c := cloneSpec(s)
		c.DurationMs = d / 2
		if c.DurationMs < 1000 {
			c.DurationMs = 1000
		}
		out = append(out, candidate{c, fmt.Sprintf("halve duration to %dms", c.DurationMs)})
	}
	return out
}

// smallerTopology returns the same topology kind one node (or one
// grid line) smaller, or ok=false at the minimum size.
func smallerTopology(t scenario.Topology) (scenario.Topology, bool) {
	switch t.Kind {
	case scenario.KindChain:
		if t.Hops > 1 {
			t.Hops--
			return t, true
		}
	case scenario.KindCross:
		if t.Hops > 2 {
			t.Hops -= 2 // cross arms must stay even
			return t, true
		}
	case scenario.KindGrid:
		switch {
		case t.Rows >= t.Cols && t.Rows > 1:
			t.Rows--
			return t, true
		case t.Cols > 1:
			t.Cols--
			return t, true
		}
	case scenario.KindRandom:
		if t.Nodes > 2 {
			t.Nodes--
			return t, true
		}
	}
	return t, false
}

// clampNodes remaps node references onto the (smaller) topology so a
// shrink candidate stays parseable; candidates whose semantics the
// clamp would distort are weeded out by the reproduce check.
func clampNodes(s *scenario.Spec) {
	n := s.Topology.NodeCount()
	if n < 2 {
		return
	}
	clamp := func(id int) int {
		if id >= n {
			return n - 1
		}
		if id < 0 {
			return 0
		}
		return id
	}
	for i := range s.Flows {
		s.Flows[i].Src = clamp(s.Flows[i].Src)
		s.Flows[i].Dst = clamp(s.Flows[i].Dst)
		if s.Flows[i].Src == s.Flows[i].Dst {
			s.Flows[i].Src = 0
			s.Flows[i].Dst = n - 1
		}
	}
	for i := range s.Background {
		s.Background[i].Src = clamp(s.Background[i].Src)
		s.Background[i].Dst = clamp(s.Background[i].Dst)
		if s.Background[i].Src == s.Background[i].Dst {
			s.Background[i].Src = 0
			s.Background[i].Dst = n - 1
		}
	}
	for i := range s.Faults {
		f := &s.Faults[i]
		f.Node = clamp(f.Node)
		if f.Kind == string(muzha.FaultLinkBlackout) {
			f.LinkA = clamp(f.LinkA)
			f.LinkB = clamp(f.LinkB)
			if f.LinkA == f.LinkB {
				f.LinkA = 0
				f.LinkB = n - 1
			}
		}
		for j, g := range f.Groups {
			var kept []int
			seen := make(map[int]bool)
			for _, id := range g {
				if id < n && !seen[id] {
					kept = append(kept, id)
					seen[id] = true
				}
			}
			f.Groups[j] = kept
		}
	}
	if s.Mobility != nil {
		var kept []int
		seen := make(map[int]bool)
		for _, id := range s.Mobility.Nodes {
			id = clamp(id)
			if !seen[id] {
				kept = append(kept, id)
				seen[id] = true
			}
		}
		s.Mobility.Nodes = kept
		if len(kept) == 0 {
			s.Mobility = nil
		}
	}
}
