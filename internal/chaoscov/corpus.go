// Package chaoscov is the coverage-guided chaos fuzzer: it replaces
// blind seed iteration with a feedback loop that tracks which
// Sometimes assertions and failure classes each scenario reached,
// keeps the scenarios that expanded coverage in a persistent corpus,
// mutates new scenarios from recent coverage-expanding parents —
// steering deliberately toward assertions nothing has reached yet —
// and automatically shrinks every failing scenario to a minimal
// reproducer.
//
// Coverage is two-dimensional: the run's reached Sometimes assertions
// (Result.SometimesCoverage) and its harness failure class
// ("class:panic", "class:livelock", ... — see muzha.Classify). A run's
// coverage signature is the hash of the union; the corpus keeps one
// entry per distinct signature, in the spirit of fuzzing-harness
// corpus distillation.
//
// The corpus is a JSONL journal with the same durability contract as
// the sweep journal: entries append as runs finish, a loop killed
// mid-write loses at most one line on reload, and a restarted loop
// resumes from the accumulated coverage instead of rediscovering it.
package chaoscov

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"muzha/internal/harness"
	"muzha/internal/scenario"
)

// classElement converts a failure class to its coverage-element form.
func classElement(class string) string { return "class:" + class }

// Signature hashes a run's coverage — reached Sometimes assertions
// plus the failure-class element — into a 16-hex-character corpus
// key. Order-insensitive: the elements are sorted before hashing.
func Signature(coverage []string, class string) string {
	elems := append([]string(nil), coverage...)
	if class != "" {
		elems = append(elems, classElement(class))
	}
	sort.Strings(elems)
	sum := sha256.Sum256([]byte(strings.Join(elems, "\n")))
	return hex.EncodeToString(sum[:8])
}

// Entry is one corpus record — a scenario that produced a coverage
// signature no earlier scenario had.
type Entry struct {
	// ID is the entry's position in the corpus.
	ID int `json:"id"`
	// Parent is the corpus ID this spec was mutated from; -1 for a
	// freshly generated spec.
	Parent int `json:"parent"`
	// Spec is the canonical scenario encoding.
	Spec json.RawMessage `json:"spec"`
	// Coverage lists the Sometimes assertions the run reached (sorted).
	Coverage []string `json:"coverage"`
	// Class is the run's failure class ("" for a healthy run).
	Class string `json:"class,omitempty"`
	// New lists the coverage elements (assertion names and
	// class:<name> markers) this entry reached first, corpus-wide.
	New []string `json:"new,omitempty"`
	// Sig is Signature(Coverage, Class).
	Sig string `json:"sig"`
}

// Corpus accumulates coverage-expanding scenarios, persisted as JSONL
// when opened with a path. Not safe for concurrent use; the chaos
// loop is sequential by design (each run's coverage steers the next).
type Corpus struct {
	entries []Entry
	bySig   map[string]int  // signature -> entry ID
	seen    map[string]bool // global coverage elements
	f       *os.File
	err     error
	skipped int
}

// OpenCorpus opens (creating if absent) the corpus journal at path
// and loads every parseable entry; an empty path keeps the corpus in
// memory only. A truncated final line — a loop killed mid-append — is
// skipped, never fatal.
func OpenCorpus(path string) (*Corpus, error) {
	c := &Corpus{bySig: make(map[string]int), seen: make(map[string]bool)}
	if path == "" {
		return c, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("chaoscov: open corpus: %w", err)
	}
	skipped, err := harness.ScanJSONL(f, func(line []byte) bool {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Sig == "" || len(e.Spec) == 0 {
			return false
		}
		c.absorb(e)
		return true
	})
	c.skipped = skipped
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("chaoscov: read corpus: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("chaoscov: seek corpus: %w", err)
	}
	c.f = f
	return c, nil
}

// absorb folds one loaded entry into the in-memory state, re-deriving
// IDs and the seen set so a hand-edited or merged corpus file stays
// coherent.
func (c *Corpus) absorb(e Entry) {
	if _, dup := c.bySig[e.Sig]; dup {
		return
	}
	e.ID = len(c.entries)
	c.bySig[e.Sig] = e.ID
	for _, el := range e.elements() {
		c.seen[el] = true
	}
	c.entries = append(c.entries, e)
}

func (e Entry) elements() []string {
	elems := append([]string(nil), e.Coverage...)
	if e.Class != "" {
		elems = append(elems, classElement(e.Class))
	}
	return elems
}

// Add records one run's outcome. When the coverage signature is new,
// the entry joins the corpus (persisted immediately when journaling)
// and Add returns it with added=true; New on the returned entry lists
// the coverage elements nothing had reached before. A duplicate
// signature returns added=false and changes nothing.
func (c *Corpus) Add(spec scenario.Spec, parent int, coverage []string, class string) (Entry, bool, error) {
	sig := Signature(coverage, class)
	if _, dup := c.bySig[sig]; dup {
		return Entry{}, false, nil
	}
	raw, err := spec.Canonical()
	if err != nil {
		return Entry{}, false, err
	}
	e := Entry{
		ID:       len(c.entries),
		Parent:   parent,
		Spec:     raw,
		Coverage: append([]string(nil), coverage...),
		Class:    class,
		Sig:      sig,
	}
	sort.Strings(e.Coverage)
	for _, el := range e.elements() {
		if !c.seen[el] {
			e.New = append(e.New, el)
		}
	}
	sort.Strings(e.New)
	for _, el := range e.elements() {
		c.seen[el] = true
	}
	c.bySig[sig] = e.ID
	c.entries = append(c.entries, e)
	c.append(e)
	return e, true, nil
}

// append journals one entry; the first write error latches like the
// sweep journal's — the loop must not die on corpus I/O.
func (c *Corpus) append(e Entry) {
	if c.f == nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		if c.err == nil {
			c.err = fmt.Errorf("chaoscov: marshal corpus entry %d: %w", e.ID, err)
		}
		return
	}
	if c.err != nil {
		return
	}
	if _, err := c.f.Write(append(b, '\n')); err != nil {
		c.err = fmt.Errorf("chaoscov: write corpus: %w", err)
	}
}

// Len reports the number of corpus entries.
func (c *Corpus) Len() int { return len(c.entries) }

// Entries returns the corpus entries in ID order.
func (c *Corpus) Entries() []Entry { return append([]Entry(nil), c.entries...) }

// Seen reports whether a coverage element (a Sometimes assertion
// name, or "class:"+class) has been reached by any corpus entry.
func (c *Corpus) Seen(element string) bool { return c.seen[element] }

// Coverage returns every coverage element reached so far, sorted:
// Sometimes assertion names and class:<name> markers.
func (c *Corpus) Coverage() []string {
	out := make([]string, 0, len(c.seen))
	for el := range c.seen {
		out = append(out, el)
	}
	sort.Strings(out)
	return out
}

// SometimesCoverage returns only the assertion-name elements.
func (c *Corpus) SometimesCoverage() []string {
	var out []string
	for _, el := range c.Coverage() {
		if !strings.HasPrefix(el, "class:") {
			out = append(out, el)
		}
	}
	return out
}

// Classes returns the distinct failure classes in the corpus, sorted.
func (c *Corpus) Classes() []string {
	var out []string
	for _, el := range c.Coverage() {
		if cl, ok := strings.CutPrefix(el, "class:"); ok {
			out = append(out, cl)
		}
	}
	return out
}

// Frontier returns the IDs of entries that expanded coverage (New
// non-empty), oldest first — the mutation pool the loop draws from.
func (c *Corpus) Frontier() []int {
	var out []int
	for _, e := range c.entries {
		if len(e.New) > 0 {
			out = append(out, e.ID)
		}
	}
	return out
}

// Skipped reports how many unparseable journal lines the load dropped.
func (c *Corpus) Skipped() int { return c.skipped }

// Err returns the first latched journal write error.
func (c *Corpus) Err() error { return c.err }

// Close flushes and closes the journal, surfacing any latched write
// error.
func (c *Corpus) Close() error {
	if c.f == nil {
		return c.err
	}
	cerr := c.f.Close()
	c.f = nil
	if c.err != nil {
		return c.err
	}
	return cerr
}

// Info summarizes a corpus file for reporting (the muzhad /v1/stats
// chaos block). It reads the journal fresh on every call, tolerating
// a concurrently appending loop the same way resume does.
type Info struct {
	// Entries is the number of distinct-coverage corpus entries.
	Entries int `json:"entries"`
	// Sometimes is the number of distinct Sometimes assertions reached.
	Sometimes int `json:"sometimes"`
	// Classes is the number of distinct failure classes seen.
	Classes int `json:"classes"`
	// Failures is the number of corpus entries that failed.
	Failures int `json:"failures"`
}

// ReadInfo summarizes the corpus journal at path.
func ReadInfo(path string) (Info, error) {
	c, err := OpenCorpus(path)
	if err != nil {
		return Info{}, err
	}
	defer c.Close()
	info := Info{
		Entries:   c.Len(),
		Sometimes: len(c.SometimesCoverage()),
		Classes:   len(c.Classes()),
	}
	for _, e := range c.entries {
		if e.Class != "" {
			info.Failures++
		}
	}
	return info, nil
}
