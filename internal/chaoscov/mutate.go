package chaoscov

import (
	"math/rand"
	"sort"

	"muzha"
	"muzha/internal/scenario"
)

// Target names every Sometimes assertion the simulator can currently
// reach, mapped to a directed mutation that steers a spec toward it.
// The registry is what makes the loop *guided* rather than merely
// corpus-driven: when a target has never been seen, the loop applies
// its mutation instead of a blind one. Unknown future assertions cost
// nothing — they are simply discovered the old-fashioned way.
var directed = map[string]func(*rand.Rand, *scenario.Spec){
	"fault-injected":      func(rng *rand.Rand, s *scenario.Spec) { addFault(rng, s, "") },
	"fault-node-crash":    func(rng *rand.Rand, s *scenario.Spec) { addFault(rng, s, muzha.FaultNodeCrash) },
	"fault-link-blackout": func(rng *rand.Rand, s *scenario.Spec) { addFault(rng, s, muzha.FaultLinkBlackout) },
	"fault-partition":     func(rng *rand.Rand, s *scenario.Spec) { addFault(rng, s, muzha.FaultPartition) },
	"fault-burst-loss":    func(rng *rand.Rand, s *scenario.Spec) { addFault(rng, s, muzha.FaultBurstLoss) },
	// A bounded transfer on an easy path completes well within the run.
	"flow-finished": func(rng *rand.Rand, s *scenario.Spec) {
		if len(s.Flows) == 0 {
			return
		}
		s.Flows[0].MaxBytes = 8192
		s.Flows[0].StartMs = 0
	},
	// Heavy residual loss plus a crashed path forces retransmission
	// timeouts.
	"tcp-rto-timeout": func(rng *rand.Rand, s *scenario.Spec) {
		s.Stack.ResidualLossRate = 0.05
		addFault(rng, s, muzha.FaultNodeCrash)
	},
	// A one-packet queue under a full window overflows immediately.
	"queue-overflow": func(rng *rand.Rand, s *scenario.Spec) {
		s.Stack.QueueLimit = 2
		s.Stack.Window = 32
	},
	// DRAI marking fires when router assist meets a shallow queue.
	"congestion-marked": func(rng *rand.Rand, s *scenario.Spec) {
		s.Stack.NoRouterAssist = false
		s.Stack.QueueLimit = 4
		s.Stack.Window = 32
	},
	// MAC-level route breakage needs a node to disappear mid-flow.
	"link-failure-detected": func(rng *rand.Rand, s *scenario.Spec) {
		addFault(rng, s, muzha.FaultNodeCrash)
	},
}

// Targets returns the directed-mutation target names, sorted.
func Targets() []string {
	out := make([]string, 0, len(directed))
	for name := range directed {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// freshSpec generates a random scenario spec from scratch — the
// spec-level analogue of muzha.ChaosScenario, used to seed the corpus
// and to escape local optima when mutation stops finding new
// coverage. Deterministic in the rng stream.
func freshSpec(rng *rand.Rand, durationMs int64) scenario.Spec {
	s := scenario.Spec{Seed: rng.Int63n(1 << 32), DurationMs: durationMs}

	switch rng.Intn(4) {
	case 0:
		s.Topology = scenario.Topology{Kind: scenario.KindChain, Hops: 3 + rng.Intn(5)}
	case 1:
		s.Topology = scenario.Topology{Kind: scenario.KindCross, Hops: 4 + 2*rng.Intn(2)}
	case 2:
		s.Topology = scenario.Topology{Kind: scenario.KindGrid, Rows: 3, Cols: 3}
	default:
		s.Topology = scenario.Topology{Kind: scenario.KindRandom, Nodes: 6 + rng.Intn(5)}
	}
	n := s.Topology.NodeCount()

	vs := muzha.Variants()
	nflows := 1 + rng.Intn(3)
	for i := 0; i < nflows; i++ {
		src, dst := pair(rng, n)
		if i == 0 {
			// The first flow crosses the whole layout, like the
			// conventional endpoints blind chaos uses.
			src, dst = 0, n-1
		}
		s.Flows = append(s.Flows, scenario.Flow{
			Src:     src,
			Dst:     dst,
			Variant: string(vs[(rng.Intn(len(vs))+i*3)%len(vs)]),
			StartMs: rng.Int63n(durationMs/4 + 1),
			Window:  4 << rng.Intn(3),
		})
	}

	if rng.Intn(4) == 0 {
		s.Stack.UseDSR = true
	}
	if rng.Intn(4) == 0 {
		s.Stack.UseRED = true
		if rng.Intn(2) == 0 {
			s.Stack.REDMarkECN = true
		}
	}
	if rng.Intn(5) == 0 {
		s.Stack.Pacing = true
	}
	if rng.Intn(6) == 0 {
		// Router assist defaults on in fresh specs, so the hybrid
		// clamp is always a valid addition here.
		s.Stack.DRAIClamp = true
	}
	if rng.Intn(5) == 0 {
		s.Stack.NoRTSCTS = true
	}
	if rng.Intn(4) == 0 {
		s.Stack.DelayedAckMs = 100
	}
	if rng.Intn(4) == 0 {
		s.Stack.ResidualLossRate = 0.002 * float64(1+rng.Intn(5))
	}

	if rng.Intn(3) == 0 {
		src, dst := pair(rng, n)
		s.Background = append(s.Background, scenario.Background{
			Src: src, Dst: dst,
			RateBps: float64(40000 + rng.Intn(80000)),
			StartMs: durationMs / 5,
		})
	}

	nfaults := rng.Intn(3)
	for i := 0; i < nfaults; i++ {
		addFault(rng, &s, "")
	}
	return s
}

// mutators are the blind structural mutations, applied when no
// directed target is pending. Each must leave the spec valid (or
// validatable — the loop re-validates before running).
var mutators = []func(*rand.Rand, *scenario.Spec){
	func(rng *rand.Rand, s *scenario.Spec) { s.Seed = rng.Int63n(1 << 32) },
	func(rng *rand.Rand, s *scenario.Spec) { addFault(rng, s, "") },
	func(rng *rand.Rand, s *scenario.Spec) {
		if len(s.Faults) > 0 {
			i := rng.Intn(len(s.Faults))
			s.Faults = append(s.Faults[:i], s.Faults[i+1:]...)
		}
	},
	func(rng *rand.Rand, s *scenario.Spec) {
		n := s.Topology.NodeCount()
		if n < 2 || len(s.Flows) >= 4 {
			return
		}
		src, dst := pair(rng, n)
		vs := muzha.Variants()
		s.Flows = append(s.Flows, scenario.Flow{
			Src: src, Dst: dst,
			Variant: string(vs[rng.Intn(len(vs))]),
			StartMs: rng.Int63n(s.DurationMs/4 + 1),
			Window:  4 << rng.Intn(3),
		})
	},
	func(rng *rand.Rand, s *scenario.Spec) {
		if len(s.Flows) > 1 {
			i := rng.Intn(len(s.Flows))
			s.Flows = append(s.Flows[:i], s.Flows[i+1:]...)
		}
	},
	func(rng *rand.Rand, s *scenario.Spec) { s.Stack.QueueLimit = 2 + rng.Intn(49) },
	func(rng *rand.Rand, s *scenario.Spec) {
		s.Stack.UseRED = !s.Stack.UseRED
		if !s.Stack.UseRED {
			// The mark/threshold knobs require use_red; clear them so
			// the mutated spec stays valid.
			s.Stack.REDMarkECN = false
			s.Stack.REDMinTh, s.Stack.REDMaxTh = 0, 0
		}
	},
	func(rng *rand.Rand, s *scenario.Spec) {
		s.Stack.UseRED = true
		s.Stack.REDMarkECN = !s.Stack.REDMarkECN
	},
	func(rng *rand.Rand, s *scenario.Spec) { s.Stack.Pacing = !s.Stack.Pacing },
	func(rng *rand.Rand, s *scenario.Spec) {
		s.Stack.DRAIClamp = !s.Stack.DRAIClamp
		if s.Stack.DRAIClamp {
			// The clamp requires router assist; re-enable it so the
			// mutated spec stays valid.
			s.Stack.NoRouterAssist = false
		}
	},
	func(rng *rand.Rand, s *scenario.Spec) { s.Stack.UseDSR = !s.Stack.UseDSR },
	func(rng *rand.Rand, s *scenario.Spec) {
		s.Stack.ResidualLossRate = 0.002 * float64(rng.Intn(6))
	},
	func(rng *rand.Rand, s *scenario.Spec) {
		n := s.Topology.NodeCount()
		if s.Mobility != nil {
			s.Mobility = nil
			return
		}
		s.Mobility = &scenario.Mobility{
			Width: 1500, Height: 1500,
			MinSpeed: 1, MaxSpeed: 2 + float64(rng.Intn(8)),
			PauseMs: 1000,
			Nodes:   []int{rng.Intn(n)},
		}
	},
	func(rng *rand.Rand, s *scenario.Spec) {
		if len(s.Flows) > 0 {
			i := rng.Intn(len(s.Flows))
			if s.Flows[i].MaxBytes == 0 {
				s.Flows[i].MaxBytes = int64(8192 * (1 + rng.Intn(8)))
			} else {
				s.Flows[i].MaxBytes = 0
			}
		}
	},
}

// mutate applies 1-2 blind mutations to a copy of the parent spec.
func mutate(rng *rand.Rand, parent scenario.Spec) scenario.Spec {
	s := cloneSpec(parent)
	for i := 0; i <= rng.Intn(2); i++ {
		mutators[rng.Intn(len(mutators))](rng, &s)
	}
	return s
}

// mutateToward copies the parent and applies the directed mutation
// for target (falling back to a blind mutation for unknown names).
func mutateToward(rng *rand.Rand, parent scenario.Spec, target string) scenario.Spec {
	s := cloneSpec(parent)
	if m, ok := directed[target]; ok {
		m(rng, &s)
		return s
	}
	mutators[rng.Intn(len(mutators))](rng, &s)
	return s
}

// cloneSpec deep-copies a spec so mutations never alias corpus state.
func cloneSpec(s scenario.Spec) scenario.Spec {
	c := s
	c.Flows = append([]scenario.Flow(nil), s.Flows...)
	c.Background = append([]scenario.Background(nil), s.Background...)
	c.Faults = make([]scenario.Fault, len(s.Faults))
	for i, f := range s.Faults {
		c.Faults[i] = f
		if len(f.Groups) > 0 {
			c.Faults[i].Groups = make([][]int, len(f.Groups))
			for j, g := range f.Groups {
				c.Faults[i].Groups[j] = append([]int(nil), g...)
			}
		}
	}
	if s.Mobility != nil {
		m := *s.Mobility
		m.Nodes = append([]int(nil), s.Mobility.Nodes...)
		c.Mobility = &m
	}
	if s.Expect != nil {
		e := *s.Expect
		e.Reach = append([]string(nil), s.Expect.Reach...)
		c.Expect = &e
	}
	if s.Guards != nil {
		g := *s.Guards
		c.Guards = &g
	}
	return c
}

// addFault appends one fault of the given kind ("" = random) in the
// middle third of the run.
func addFault(rng *rand.Rand, s *scenario.Spec, kind muzha.FaultKind) {
	durMs := s.DurationMs
	if durMs <= 0 {
		durMs = 3000
	}
	n := s.Topology.NodeCount()
	if n < 2 {
		return
	}
	if kind == "" {
		kinds := []muzha.FaultKind{
			muzha.FaultNodeCrash, muzha.FaultLinkBlackout,
			muzha.FaultPartition, muzha.FaultBurstLoss,
		}
		kind = kinds[rng.Intn(len(kinds))]
	}
	f := scenario.Fault{
		Kind:       string(kind),
		AtMs:       durMs/10 + rng.Int63n(durMs/2+1),
		DurationMs: durMs/8 + rng.Int63n(durMs/4+1),
	}
	switch kind {
	case muzha.FaultNodeCrash:
		f.Node = rng.Intn(n)
	case muzha.FaultLinkBlackout:
		f.LinkA, f.LinkB = pair(rng, n)
	case muzha.FaultPartition:
		k := 1 + rng.Intn(n-1)
		group := make([]int, k)
		for j := range group {
			group[j] = j
		}
		f.Groups = [][]int{group}
	case muzha.FaultBurstLoss:
		f.BadLossRate = 0.5 + 0.4*rng.Float64()
		f.MeanBurstFrames = float64(4 + rng.Intn(12))
		f.MeanGapFrames = float64(100 + rng.Intn(200))
	}
	s.Faults = append(s.Faults, f)
}

// pair picks two distinct node IDs.
func pair(rng *rand.Rand, n int) (int, int) {
	src := rng.Intn(n)
	dst := rng.Intn(n - 1)
	if dst >= src {
		dst++
	}
	return src, dst
}
