package chaoscov

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"muzha"
	"muzha/internal/scenario"
)

func TestSignatureOrderInsensitive(t *testing.T) {
	a := Signature([]string{"x", "y"}, "panic")
	b := Signature([]string{"y", "x"}, "panic")
	if a != b {
		t.Fatalf("element order changed the signature: %s vs %s", a, b)
	}
	if Signature([]string{"x"}, "") == Signature([]string{"x"}, "panic") {
		t.Fatal("failure class not part of the signature")
	}
	if Signature([]string{"x"}, "") == Signature([]string{"y"}, "") {
		t.Fatal("different coverage shares a signature")
	}
}

func specFixture(seed int64) scenario.Spec {
	return scenario.Spec{
		Seed:       seed,
		DurationMs: 1000,
		Topology:   scenario.Topology{Kind: scenario.KindChain, Hops: 3},
		Flows:      []scenario.Flow{{Src: 0, Dst: 3}},
	}
}

func TestCorpusDedupeAndFrontier(t *testing.T) {
	c, err := OpenCorpus("")
	if err != nil {
		t.Fatal(err)
	}
	e1, added, err := c.Add(specFixture(1), -1, []string{"a", "b"}, "")
	if err != nil || !added {
		t.Fatalf("first add: added=%v err=%v", added, err)
	}
	if len(e1.New) != 2 {
		t.Fatalf("first entry's New = %v, want both elements", e1.New)
	}
	// Same coverage signature from a different spec: dropped.
	if _, added, _ := c.Add(specFixture(2), -1, []string{"b", "a"}, ""); added {
		t.Fatal("duplicate signature joined the corpus")
	}
	// Superset coverage: new signature, one new element.
	e2, added, _ := c.Add(specFixture(3), 0, []string{"a", "b", "c"}, "livelock")
	if !added || len(e2.New) != 2 { // "c" and "class:livelock"
		t.Fatalf("superset add: added=%v New=%v", added, e2.New)
	}
	// Known elements in a new combination: new signature, nothing new.
	e3, added, _ := c.Add(specFixture(4), 0, []string{"c"}, "")
	if !added || len(e3.New) != 0 {
		t.Fatalf("recombination add: added=%v New=%v", added, e3.New)
	}
	if got := c.Frontier(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("frontier = %v, want the two coverage-expanding entries", got)
	}
	if got := c.SometimesCoverage(); len(got) != 3 {
		t.Fatalf("coverage = %v", got)
	}
	if got := c.Classes(); len(got) != 1 || got[0] != "livelock" {
		t.Fatalf("classes = %v", got)
	}
}

func TestCorpusPersistAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	c, err := OpenCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Add(specFixture(1), -1, []string{"a"}, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Add(specFixture(2), 0, []string{"a", "b"}, "panic"); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-append: a truncated third line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id": 2, "spec": {"seed`)
	f.Close()

	r, err := OpenCorpus(path)
	if err != nil {
		t.Fatalf("resume after truncation: %v", err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("resumed %d entries, want 2", r.Len())
	}
	if r.Skipped() != 1 {
		t.Fatalf("skipped %d lines, want the truncated one", r.Skipped())
	}
	if got := r.SometimesCoverage(); len(got) != 2 {
		t.Fatalf("resumed coverage = %v", got)
	}
	if !r.Seen("class:panic") {
		t.Fatal("resumed corpus lost the failure class")
	}
	// Adding the same signatures after resume still dedupes.
	if _, added, _ := r.Add(specFixture(9), -1, []string{"a", "b"}, "panic"); added {
		t.Fatal("resume forgot a journaled signature")
	}
}

// loopGuards bounds test runs tightly so a pathological mutant cannot
// stall the suite.
var loopGuards = muzha.RunGuards{WallClock: time.Minute, MaxEvents: 20_000_000, LivelockWindow: 5_000_000}

// TestShrinkProducesStrictlySmallerReproducer is the shrink acceptance
// test: the seeded failing scenario must shrink to a reproducer with
// strictly fewer nodes+flows+faults that still triggers the same
// failure class.
func TestShrinkProducesStrictlySmallerReproducer(t *testing.T) {
	spec, err := scenario.Load(filepath.Join("testdata", "event-budget.json"))
	if err != nil {
		t.Fatal(err)
	}
	_, class, _ := RunSpec(spec, loopGuards)
	if class != muzha.ClassEventBudget {
		t.Fatalf("seeded spec failed with class %q, want %q", class, muzha.ClassEventBudget)
	}

	sr := Shrink(spec, class, loopGuards, 0, t.Logf)
	size := func(s scenario.Spec) int {
		return s.Topology.NodeCount() + len(s.Flows) + len(s.Faults)
	}
	before, after := size(spec), size(sr.Spec)
	if after >= before {
		t.Fatalf("shrink did not reduce the scenario: %d -> %d", before, after)
	}
	if sr.Steps == 0 {
		t.Fatal("no reduction steps accepted")
	}

	// The reproducer must still fail the same way, and its expect block
	// must make the file self-verifying.
	res, got, _ := RunSpec(sr.Spec, loopGuards)
	if got != class {
		t.Fatalf("reproducer failed with class %q, want %q", got, class)
	}
	if sr.Spec.Expect == nil || sr.Spec.Expect.Class != class {
		t.Fatalf("reproducer's expect block = %+v", sr.Spec.Expect)
	}
	if err := scenario.CheckExpect(sr.Spec, res, got); err != nil {
		t.Fatalf("reproducer is not self-verifying: %v", err)
	}
}

func TestShrinkReturnsNondeterministicUnshrunk(t *testing.T) {
	spec := specFixture(1)
	sr := Shrink(spec, muzha.ClassNonDeterministic, loopGuards, 0, nil)
	if sr.Runs != 0 || sr.Steps != 0 {
		t.Fatalf("nondeterministic failure was shrunk: %+v", sr)
	}
}

// TestGuidedBeatsBlindAtEqualBudget is the guidance acceptance test:
// with the same run budget and deterministic seeds, the coverage-guided
// loop must reach strictly more distinct Sometimes assertions than
// blind ChaosSweep iteration.
func TestGuidedBeatsBlindAtEqualBudget(t *testing.T) {
	const budget = 12
	const dur = 2 * time.Second

	blindRuns, err := muzha.ChaosSweep(muzha.ChaosOptions{
		Seed:     3,
		Runs:     budget,
		Duration: dur,
		Sweep:    muzha.SweepOptions{Parallel: 1, Guards: loopGuards},
	})
	if err != nil {
		t.Fatalf("blind sweep: %v", err)
	}
	blind := make(map[string]bool)
	for _, r := range blindRuns {
		for _, name := range r.Coverage {
			blind[name] = true
		}
	}

	rep, err := Loop(Options{
		Seed:     3,
		Runs:     budget,
		Duration: dur,
		Guards:   loopGuards,
		NoShrink: true,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("guided loop: %v", err)
	}

	if len(rep.Coverage) <= len(blind) {
		t.Fatalf("guided coverage (%d: %v) not strictly above blind (%d: %v) at %d runs",
			len(rep.Coverage), rep.Coverage, len(blind), keys(blind), budget)
	}
	// The structural reason guidance wins: blind generation never bounds
	// a transfer, so flow-finished is unreachable for it by construction.
	if blind["flow-finished"] {
		t.Fatal("blind chaos reached flow-finished; the directed-mutation premise is stale")
	}
	found := false
	for _, name := range rep.Coverage {
		if name == "flow-finished" {
			found = true
		}
	}
	if !found {
		t.Fatal("guided loop missed its directed target flow-finished")
	}

	// Cumulative coverage history must be monotonically non-decreasing.
	for i := 1; i < len(rep.History); i++ {
		if rep.History[i] < rep.History[i-1] {
			t.Fatalf("coverage history decreased at run %d: %v", i, rep.History)
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestLoopResumesFromCorpus verifies kill-and-resume: a second loop on
// the same corpus file starts from the first loop's coverage and the
// journal dedupes across process lifetimes.
func TestLoopResumesFromCorpus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	rep1, err := Loop(Options{Seed: 3, Runs: 4, Duration: 2 * time.Second, CorpusPath: path, Guards: loopGuards, NoShrink: true})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Loop(Options{Seed: 4, Runs: 4, Duration: 2 * time.Second, CorpusPath: path, Guards: loopGuards, NoShrink: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Coverage) < len(rep1.Coverage) {
		t.Fatalf("resumed loop lost coverage: %v -> %v", rep1.Coverage, rep2.Coverage)
	}
	if len(rep2.History) > 0 && rep2.History[0] < len(rep1.Coverage) {
		t.Fatalf("resumed loop's first history point %d below prior coverage %d",
			rep2.History[0], len(rep1.Coverage))
	}
}

func TestLoopWritesRepro(t *testing.T) {
	dir := t.TempDir()
	// Seed the loop's first fresh spec deterministically tiny and broken
	// is hard; instead shrink the committed failing spec through the
	// loop's writer path directly.
	spec, err := scenario.Load(filepath.Join("testdata", "event-budget.json"))
	if err != nil {
		t.Fatal(err)
	}
	path, err := shrinkAndWrite(spec, muzha.ClassEventBudget,
		Options{Guards: loopGuards, ShrinkRuns: 200, ReproDir: dir}, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	got, err := scenario.Load(path)
	if err != nil {
		t.Fatalf("repro file unreadable: %v", err)
	}
	if got.Expect == nil || got.Expect.Class != muzha.ClassEventBudget {
		t.Fatalf("repro expect block = %+v", got.Expect)
	}
	res, class, _ := RunSpec(got, loopGuards)
	if err := scenario.CheckExpect(got, res, class); err != nil {
		t.Fatalf("written repro does not verify: %v", err)
	}
}
