package chaoscov

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"muzha"
	"muzha/internal/scenario"
)

// Options configures a coverage-guided chaos loop.
type Options struct {
	// Seed drives scenario generation and mutation choices; the same
	// seed (with the same corpus starting state) replays the same loop.
	Seed int64
	// Runs is the simulation budget (default 20). Shrinking spends
	// additional runs outside this budget.
	Runs int
	// Duration is the simulated time per scenario (default 3s).
	Duration time.Duration
	// CorpusPath persists the corpus as JSONL; "" keeps it in memory.
	// An existing corpus is resumed: its accumulated coverage seeds the
	// loop and its frontier seeds mutation.
	CorpusPath string
	// ReproDir receives repro-<class>.json files for shrunk failures;
	// "" disables writing reproducers.
	ReproDir string
	// Guards bounds runs whose spec has no guards block. The zero
	// value applies a 30s wall clock and 50M-event budget so a
	// livelocked mutant cannot hang the loop.
	Guards muzha.RunGuards
	// NoShrink skips failure minimization (shrinking is on by default:
	// an unminimized failure is the loop's least useful output).
	NoShrink bool
	// ShrinkRuns bounds the simulations spent minimizing one failure
	// (default 200).
	ShrinkRuns int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Report summarizes a finished loop.
type Report struct {
	// Runs is the number of budget simulations executed.
	Runs int `json:"runs"`
	// Coverage lists the distinct Sometimes assertions reached across
	// the whole corpus (including resumed state), sorted.
	Coverage []string `json:"coverage"`
	// Classes lists the distinct failure classes seen, sorted.
	Classes []string `json:"classes,omitempty"`
	// Failures counts budget runs that failed.
	Failures int `json:"failures"`
	// CorpusEntries is the corpus size after the loop.
	CorpusEntries int `json:"corpus_entries"`
	// Repros lists the reproducer files written.
	Repros []string `json:"repros,omitempty"`
	// History records the cumulative Sometimes-coverage count after
	// each budget run — monotonically non-decreasing by construction;
	// the CI smoke job asserts it.
	History []int `json:"history"`
}

// every freshEvery-th run starts from a fresh random spec instead of
// a corpus mutation, so the loop keeps exploring after the frontier
// goes stale.
const freshEvery = 5

// Loop runs the coverage-guided chaos loop: generate or mutate a
// scenario spec, run it, record its Sometimes-assertion and
// failure-class coverage in the corpus, and steer the next mutation —
// preferring parents that recently expanded coverage and directing
// mutations toward registered assertions nothing has reached yet.
// Failures are shrunk to minimal reproducers as they appear.
//
// The loop is sequential by design (each run's coverage steers the
// next) and deterministic for a given seed and starting corpus.
func Loop(opt Options) (Report, error) {
	if opt.Runs <= 0 {
		opt.Runs = 20
	}
	if opt.Duration < time.Second {
		opt.Duration = 3 * time.Second
	}
	if opt.Guards == (muzha.RunGuards{}) {
		opt.Guards = muzha.RunGuards{WallClock: 30 * time.Second, MaxEvents: 50_000_000}
	}
	if opt.ShrinkRuns <= 0 {
		opt.ShrinkRuns = 200
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	corpus, err := OpenCorpus(opt.CorpusPath)
	if err != nil {
		return Report{}, err
	}
	defer corpus.Close()
	if corpus.Len() > 0 {
		logf("resumed corpus: %d entries, %d assertions covered",
			corpus.Len(), len(corpus.SometimesCoverage()))
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	var rep Report
	durMs := opt.Duration.Milliseconds()

	for i := 0; i < opt.Runs; i++ {
		spec, parent, how := nextSpec(rng, corpus, i, durMs)
		if spec.Validate() != nil {
			// A mutation can produce an invalid spec (e.g. a flow endpoint
			// beyond a changed topology); fall back to exploration rather
			// than burning the budget slot.
			spec, parent, how = freshSpec(rng, durMs), -1, "fresh(fallback)"
		}

		res, class, runErr := RunSpec(spec, opt.Guards)
		rep.Runs++
		var coverage []string
		if res != nil {
			coverage = res.SometimesCoverage()
		}

		entry, added, addErr := corpus.Add(spec, parent, coverage, class)
		if addErr != nil {
			return rep, addErr
		}
		rep.History = append(rep.History, len(corpus.SometimesCoverage()))

		switch {
		case added && len(entry.New) > 0:
			logf("run %d [%s]: NEW coverage %v (%s)", i, how, entry.New, spec.Summary())
		case added:
			logf("run %d [%s]: new signature, no new elements", i, how)
		}

		if class != "" {
			rep.Failures++
			logf("run %d [%s]: FAILED class=%s err=%v", i, how, class, runErr)
			if !opt.NoShrink && added && isNew(entry, classElement(class)) {
				path, serr := shrinkAndWrite(spec, class, opt, logf)
				if serr != nil {
					logf("shrink: %v", serr)
				} else if path != "" {
					rep.Repros = append(rep.Repros, path)
				}
			}
		}
	}

	rep.Coverage = corpus.SometimesCoverage()
	rep.Classes = corpus.Classes()
	rep.CorpusEntries = corpus.Len()
	if err := corpus.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// nextSpec picks the i-th run's scenario: periodically a fresh random
// spec; otherwise a mutation of a frontier parent (latest-biased —
// recent coverage-expanders are the most promising neighborhoods),
// directed toward an unreached registered target when one exists. It
// returns the spec, its parent corpus ID (-1 when fresh), and a label
// for logging.
func nextSpec(rng *rand.Rand, corpus *Corpus, i int, durMs int64) (scenario.Spec, int, string) {
	frontier := corpus.Frontier()
	if i%freshEvery == 0 || len(frontier) == 0 {
		return freshSpec(rng, durMs), -1, "fresh"
	}

	// Latest-biased parent selection over the last few frontier entries.
	window := frontier
	if len(window) > 8 {
		window = window[len(window)-8:]
	}
	id := window[rng.Intn(len(window))]
	parent, err := scenario.Parse(corpus.Entries()[id].Spec)
	if err != nil {
		return freshSpec(rng, durMs), -1, "fresh"
	}

	// Directed mutation: rotate through registered targets the corpus
	// has never reached.
	var unreached []string
	for _, t := range Targets() {
		if !corpus.Seen(t) {
			unreached = append(unreached, t)
		}
	}
	if len(unreached) > 0 {
		target := unreached[i%len(unreached)]
		return mutateToward(rng, parent, target), id, fmt.Sprintf("directed:%s<-%d", target, id)
	}
	return mutate(rng, parent), id, fmt.Sprintf("mutate<-%d", id)
}

func isNew(e Entry, element string) bool {
	for _, el := range e.New {
		if el == element {
			return true
		}
	}
	return false
}

// shrinkAndWrite minimizes one failure and writes the self-verifying
// reproducer as ReproDir/repro-<class>.json (indented JSON — the file
// is for humans and bug reports; Parse accepts it unchanged).
func shrinkAndWrite(spec scenario.Spec, class string, opt Options, logf func(string, ...any)) (string, error) {
	sr := Shrink(spec, class, opt.Guards, opt.ShrinkRuns, logf)
	logf("shrink: class=%s steps=%d runs=%d final=%s", class, sr.Steps, sr.Runs, sr.Spec.Summary())
	if opt.ReproDir == "" {
		return "", nil
	}
	if err := os.MkdirAll(opt.ReproDir, 0o755); err != nil {
		return "", fmt.Errorf("chaoscov: repro dir: %w", err)
	}
	b, err := json.MarshalIndent(sr.Spec, "", "  ")
	if err != nil {
		return "", fmt.Errorf("chaoscov: encode repro: %w", err)
	}
	path := filepath.Join(opt.ReproDir, "repro-"+class+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("chaoscov: write repro: %w", err)
	}
	logf("shrink: wrote %s", path)
	return path, nil
}
