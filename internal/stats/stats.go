// Package stats collects the paper's evaluation metrics: per-flow
// throughput, retransmission counts, congestion-window traces (Figures
// 5.2-5.7), binned throughput dynamics (Figures 5.19-5.22) and Jain's
// fairness index (Figure 5.14).
package stats

import (
	"fmt"

	"muzha/internal/sim"
)

// Sample is one point of a time series.
type Sample struct {
	T sim.Time
	V float64
}

// Flow accumulates per-flow transport metrics. Senders update it
// directly; it performs no locking (single-threaded simulation).
type Flow struct {
	ID      int
	Variant string

	Start sim.Time // when the flow began sending
	End   sim.Time // measurement horizon (set when the run finishes)

	SegmentsSent    uint64 // data segments put on the wire, incl. rexmits
	Retransmissions uint64 // retransmitted data segments
	Timeouts        uint64 // RTO expirations
	FastRecoveries  uint64 // dup-ACK-triggered recoveries
	BytesAcked      int64  // cumulatively acknowledged payload bytes

	binSize sim.Time
	bins    []int64 // bytes newly acked per interval, for dynamics plots

	cwnd []Sample // congestion window trace
}

// NewFlow creates a flow recorder. binSize controls the resolution of the
// throughput-dynamics series; zero disables binning.
func NewFlow(id int, variant string, binSize sim.Time) *Flow {
	return &Flow{ID: id, Variant: variant, binSize: binSize}
}

// AddAcked credits newly acknowledged payload bytes at virtual time t.
func (f *Flow) AddAcked(t sim.Time, bytes int64) {
	f.BytesAcked += bytes
	if f.binSize <= 0 {
		return
	}
	idx := int(t / f.binSize)
	for len(f.bins) <= idx {
		f.bins = append(f.bins, 0)
	}
	f.bins[idx] += bytes
}

// RecordCwnd appends a congestion-window sample (in segments).
func (f *Flow) RecordCwnd(t sim.Time, cwnd float64) {
	f.cwnd = append(f.cwnd, Sample{T: t, V: cwnd})
}

// CwndTrace returns the recorded congestion-window series.
func (f *Flow) CwndTrace() []Sample {
	out := make([]Sample, len(f.cwnd))
	copy(out, f.cwnd)
	return out
}

// Throughput returns the flow's average goodput in bit/s between Start
// and End. Zero if the interval is empty.
func (f *Flow) Throughput() float64 {
	d := f.End - f.Start
	if d <= 0 {
		return 0
	}
	return float64(f.BytesAcked) * 8 / d.Seconds()
}

// ThroughputSeries returns the binned goodput dynamics in bit/s.
func (f *Flow) ThroughputSeries() []Sample {
	if f.binSize <= 0 {
		return nil
	}
	out := make([]Sample, len(f.bins))
	for i, b := range f.bins {
		out[i] = Sample{
			T: sim.Time(i) * f.binSize,
			V: float64(b) * 8 / f.binSize.Seconds(),
		}
	}
	return out
}

func (f *Flow) String() string {
	return fmt.Sprintf("flow %d (%s): %.0f bit/s, %d rexmit, %d timeouts",
		f.ID, f.Variant, f.Throughput(), f.Retransmissions, f.Timeouts)
}

// JainIndex computes Jain's fairness index (Figure 5.14):
//
//	(sum x)^2 / (n * sum x^2)
//
// It is 1 for perfectly equal allocations and 1/n when one flow takes
// everything. Empty or all-zero input yields 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
