// Package stats collects the paper's evaluation metrics: per-flow
// throughput, retransmission counts, congestion-window traces (Figures
// 5.2-5.7), binned throughput dynamics (Figures 5.19-5.22) and Jain's
// fairness index (Figure 5.14).
//
// Both per-flow time series (throughput bins and the cwnd trace) are
// capped, decimating recorders: when a series reaches its cap the
// recorder halves its resolution in place and keeps going, so per-flow
// memory is O(cap) regardless of run duration. The default caps are
// generous enough that paper-scale runs (tens of seconds, 100 ms bins)
// never decimate and record exactly what they always did.
package stats

import (
	"fmt"

	"muzha/internal/sim"
)

// Series caps. Decimation halves resolution, so a run 2^k times longer
// than the cap horizon still yields cap samples at 2^k the granularity.
const (
	DefaultBinCap  = 4096
	DefaultCwndCap = 16384
)

// Sample is one point of a time series.
type Sample struct {
	T sim.Time
	V float64
}

// Flow accumulates per-flow transport metrics. Senders update it
// directly; it performs no locking (single-threaded simulation).
type Flow struct {
	ID      int
	Variant string

	Start sim.Time // when the flow began sending
	End   sim.Time // measurement horizon (set when the run finishes)

	SegmentsSent    uint64 // data segments put on the wire, incl. rexmits
	Retransmissions uint64 // retransmitted data segments
	Timeouts        uint64 // RTO expirations
	FastRecoveries  uint64 // dup-ACK-triggered recoveries
	BytesAcked      int64  // cumulatively acknowledged payload bytes

	binSize sim.Time
	binCap  int
	bins    []int64 // bytes newly acked per interval, for dynamics plots

	cwndCap    int
	cwndOff    bool // drop cwnd samples entirely (summary-only flows)
	cwndStride int  // record every stride-th sample; doubles on decimation
	cwndSkip   int  // samples to skip before the next recorded one
	cwndLast   Sample
	cwndSeen   bool
	cwnd       []Sample // congestion window trace
}

// NewFlow creates a flow recorder. binSize controls the resolution of the
// throughput-dynamics series; zero disables binning.
func NewFlow(id int, variant string, binSize sim.Time) *Flow {
	return &Flow{ID: id, Variant: variant, binSize: binSize}
}

// SetTraceCap overrides the series caps (both bins and cwnd samples).
// n <= 0 restores the package defaults. A tiny n is clamped to 2 so
// decimation always makes progress.
func (f *Flow) SetTraceCap(n int) {
	if n <= 0 {
		f.binCap, f.cwndCap = 0, 0
		return
	}
	if n < 2 {
		n = 2
	}
	f.binCap, f.cwndCap = n, n
}

// DisableCwnd stops the recorder from retaining congestion-window
// samples: RecordCwnd becomes a no-op and CwndTrace returns an empty
// series. Summary-only runs use it so a large flow population costs no
// trace memory at all.
func (f *Flow) DisableCwnd() { f.cwndOff = true }

func (f *Flow) binCapacity() int {
	if f.binCap > 0 {
		return f.binCap
	}
	return DefaultBinCap
}

func (f *Flow) cwndCapacity() int {
	if f.cwndCap > 0 {
		return f.cwndCap
	}
	return DefaultCwndCap
}

// AddAcked credits newly acknowledged payload bytes at virtual time t.
func (f *Flow) AddAcked(t sim.Time, bytes int64) {
	f.BytesAcked += bytes
	if f.binSize <= 0 {
		return
	}
	idx := int(t / f.binSize)
	// A late ack after a long quiet spell would otherwise allocate a
	// sparse tail of idx zero bins; decimate until the observed horizon
	// fits under the cap, merging adjacent bin pairs (byte totals are
	// preserved, bin width doubles).
	for idx >= f.binCapacity() {
		f.decimateBins()
		idx = int(t / f.binSize)
	}
	for len(f.bins) <= idx {
		f.bins = append(f.bins, 0)
	}
	f.bins[idx] += bytes
}

// decimateBins merges adjacent bin pairs in place and doubles binSize.
// Bin i of the new series covers exactly old bins 2i and 2i+1, so the
// total byte count is unchanged.
func (f *Flow) decimateBins() {
	half := (len(f.bins) + 1) / 2
	for i := 0; i < half; i++ {
		v := f.bins[2*i]
		if 2*i+1 < len(f.bins) {
			v += f.bins[2*i+1]
		}
		f.bins[i] = v
	}
	f.bins = f.bins[:half]
	f.binSize *= 2
}

// RecordCwnd appends a congestion-window sample (in segments). Above
// the cap the recorder keeps every stride-th sample, doubling the
// stride each time the cap is hit; the most recent sample is always
// retained so CwndTrace preserves the trace endpoint exactly.
func (f *Flow) RecordCwnd(t sim.Time, cwnd float64) {
	if f.cwndOff {
		return
	}
	s := Sample{T: t, V: cwnd}
	f.cwndLast = s
	f.cwndSeen = true
	if f.cwndStride == 0 {
		f.cwndStride = 1
	}
	if f.cwndSkip > 0 {
		f.cwndSkip--
		return
	}
	f.cwnd = append(f.cwnd, s)
	f.cwndSkip = f.cwndStride - 1
	if len(f.cwnd) >= f.cwndCapacity() {
		// Keep even indices (the first sample survives every round).
		kept := f.cwnd[:0]
		for i := 0; i < len(f.cwnd); i += 2 {
			kept = append(kept, f.cwnd[i])
		}
		f.cwnd = kept
		f.cwndStride *= 2
		f.cwndSkip = f.cwndStride - 1
	}
}

// CwndTrace returns the recorded congestion-window series. The final
// sample ever recorded is appended if decimation skipped it.
func (f *Flow) CwndTrace() []Sample {
	out := make([]Sample, len(f.cwnd), len(f.cwnd)+1)
	copy(out, f.cwnd)
	if f.cwndSeen && (len(out) == 0 || f.cwndLast.T > out[len(out)-1].T) {
		out = append(out, f.cwndLast)
	}
	return out
}

// Throughput returns the flow's average goodput in bit/s between Start
// and End. Zero if the interval is empty.
func (f *Flow) Throughput() float64 {
	d := f.End - f.Start
	if d <= 0 {
		return 0
	}
	return float64(f.BytesAcked) * 8 / d.Seconds()
}

// ThroughputSeries returns the binned goodput dynamics in bit/s. After
// decimation the samples are simply wider: T steps by the doubled bin
// size and V averages over it.
func (f *Flow) ThroughputSeries() []Sample {
	if f.binSize <= 0 {
		return nil
	}
	out := make([]Sample, len(f.bins))
	for i, b := range f.bins {
		out[i] = Sample{
			T: sim.Time(i) * f.binSize,
			V: float64(b) * 8 / f.binSize.Seconds(),
		}
	}
	return out
}

// BinSize reports the current bin width (doubled by each decimation).
func (f *Flow) BinSize() sim.Time { return f.binSize }

func (f *Flow) String() string {
	return fmt.Sprintf("flow %d (%s): %.0f bit/s, %d rexmit, %d timeouts",
		f.ID, f.Variant, f.Throughput(), f.Retransmissions, f.Timeouts)
}

// JainIndex computes Jain's fairness index (Figure 5.14):
//
//	(sum x)^2 / (n * sum x^2)
//
// It is 1 for perfectly equal allocations and 1/n when one flow takes
// everything. Empty or all-zero input yields 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
