package stats

import (
	"math"
	"testing"
	"testing/quick"

	"muzha/internal/sim"
)

func TestThroughput(t *testing.T) {
	f := NewFlow(1, "newreno", 0)
	f.Start = 0
	f.End = 10 * sim.Second
	f.AddAcked(sim.Second, 125_000) // 1 Mbit over 10 s => 100 kbit/s
	if got := f.Throughput(); math.Abs(got-100_000) > 1e-6 {
		t.Fatalf("Throughput = %g, want 100000", got)
	}
}

func TestThroughputEmptyInterval(t *testing.T) {
	f := NewFlow(1, "x", 0)
	f.AddAcked(0, 1000)
	if f.Throughput() != 0 {
		t.Fatal("zero-length interval should yield zero throughput")
	}
}

func TestBinnedSeries(t *testing.T) {
	f := NewFlow(1, "muzha", sim.Second)
	f.AddAcked(100*sim.Millisecond, 1250)  // bin 0: 10 kbit/s
	f.AddAcked(900*sim.Millisecond, 1250)  // bin 0 again: 20 kbit/s
	f.AddAcked(2500*sim.Millisecond, 2500) // bin 2: 20 kbit/s

	s := f.ThroughputSeries()
	if len(s) != 3 {
		t.Fatalf("series length = %d, want 3", len(s))
	}
	if math.Abs(s[0].V-20_000) > 1e-9 {
		t.Fatalf("bin 0 = %g, want 20000", s[0].V)
	}
	if s[1].V != 0 {
		t.Fatalf("bin 1 = %g, want 0", s[1].V)
	}
	if math.Abs(s[2].V-20_000) > 1e-9 {
		t.Fatalf("bin 2 = %g, want 20000", s[2].V)
	}
	if s[2].T != 2*sim.Second {
		t.Fatalf("bin 2 timestamp = %v", s[2].T)
	}
}

func TestBinningDisabled(t *testing.T) {
	f := NewFlow(1, "x", 0)
	f.AddAcked(sim.Second, 1000)
	if f.ThroughputSeries() != nil {
		t.Fatal("series should be nil when binning disabled")
	}
}

func TestCwndTraceCopies(t *testing.T) {
	f := NewFlow(1, "x", 0)
	f.RecordCwnd(sim.Second, 4)
	f.RecordCwnd(2*sim.Second, 8)
	trace := f.CwndTrace()
	if len(trace) != 2 || trace[1].V != 8 {
		t.Fatalf("trace = %+v", trace)
	}
	trace[0].V = 999
	if f.CwndTrace()[0].V != 4 {
		t.Fatal("CwndTrace exposed internal slice")
	}
}

func TestJainIndexKnownValues(t *testing.T) {
	tests := []struct {
		give []float64
		want float64
	}{
		{[]float64{1, 1, 1, 1}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{2, 2}, 1},
		{[]float64{}, 0},
		{[]float64{0, 0}, 0},
	}
	for _, tt := range tests {
		if got := JainIndex(tt.give); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("JainIndex(%v) = %g, want %g", tt.give, got, tt.want)
		}
	}
}

// Property: Jain's index always lies in [1/n, 1] for non-degenerate
// inputs, and is scale-invariant.
func TestQuickJainIndexBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		nonzero := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r != 0 {
				nonzero = true
			}
		}
		idx := JainIndex(xs)
		if !nonzero {
			return idx == 0
		}
		n := float64(len(xs))
		if idx < 1/n-1e-12 || idx > 1+1e-12 {
			return false
		}
		// Scale invariance.
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 7.5
		}
		return math.Abs(JainIndex(scaled)-idx) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowString(t *testing.T) {
	f := NewFlow(3, "vegas", 0)
	f.Retransmissions = 2
	f.Timeouts = 1
	got := f.String()
	want := "flow 3 (vegas): 0 bit/s, 2 rexmit, 1 timeouts"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
