package stats

import (
	"math"
	"testing"
	"testing/quick"

	"muzha/internal/sim"
)

func TestThroughput(t *testing.T) {
	f := NewFlow(1, "newreno", 0)
	f.Start = 0
	f.End = 10 * sim.Second
	f.AddAcked(sim.Second, 125_000) // 1 Mbit over 10 s => 100 kbit/s
	if got := f.Throughput(); math.Abs(got-100_000) > 1e-6 {
		t.Fatalf("Throughput = %g, want 100000", got)
	}
}

func TestThroughputEmptyInterval(t *testing.T) {
	f := NewFlow(1, "x", 0)
	f.AddAcked(0, 1000)
	if f.Throughput() != 0 {
		t.Fatal("zero-length interval should yield zero throughput")
	}
}

func TestBinnedSeries(t *testing.T) {
	f := NewFlow(1, "muzha", sim.Second)
	f.AddAcked(100*sim.Millisecond, 1250)  // bin 0: 10 kbit/s
	f.AddAcked(900*sim.Millisecond, 1250)  // bin 0 again: 20 kbit/s
	f.AddAcked(2500*sim.Millisecond, 2500) // bin 2: 20 kbit/s

	s := f.ThroughputSeries()
	if len(s) != 3 {
		t.Fatalf("series length = %d, want 3", len(s))
	}
	if math.Abs(s[0].V-20_000) > 1e-9 {
		t.Fatalf("bin 0 = %g, want 20000", s[0].V)
	}
	if s[1].V != 0 {
		t.Fatalf("bin 1 = %g, want 0", s[1].V)
	}
	if math.Abs(s[2].V-20_000) > 1e-9 {
		t.Fatalf("bin 2 = %g, want 20000", s[2].V)
	}
	if s[2].T != 2*sim.Second {
		t.Fatalf("bin 2 timestamp = %v", s[2].T)
	}
}

func TestBinningDisabled(t *testing.T) {
	f := NewFlow(1, "x", 0)
	f.AddAcked(sim.Second, 1000)
	if f.ThroughputSeries() != nil {
		t.Fatal("series should be nil when binning disabled")
	}
}

func TestCwndTraceCopies(t *testing.T) {
	f := NewFlow(1, "x", 0)
	f.RecordCwnd(sim.Second, 4)
	f.RecordCwnd(2*sim.Second, 8)
	trace := f.CwndTrace()
	if len(trace) != 2 || trace[1].V != 8 {
		t.Fatalf("trace = %+v", trace)
	}
	trace[0].V = 999
	if f.CwndTrace()[0].V != 4 {
		t.Fatal("CwndTrace exposed internal slice")
	}
}

func TestJainIndexKnownValues(t *testing.T) {
	tests := []struct {
		give []float64
		want float64
	}{
		{[]float64{1, 1, 1, 1}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{2, 2}, 1},
		{[]float64{}, 0},
		{[]float64{0, 0}, 0},
	}
	for _, tt := range tests {
		if got := JainIndex(tt.give); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("JainIndex(%v) = %g, want %g", tt.give, got, tt.want)
		}
	}
}

// Property: Jain's index always lies in [1/n, 1] for non-degenerate
// inputs, and is scale-invariant.
func TestQuickJainIndexBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		nonzero := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r != 0 {
				nonzero = true
			}
		}
		idx := JainIndex(xs)
		if !nonzero {
			return idx == 0
		}
		n := float64(len(xs))
		if idx < 1/n-1e-12 || idx > 1+1e-12 {
			return false
		}
		// Scale invariance.
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 7.5
		}
		return math.Abs(JainIndex(scaled)-idx) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinDecimationPreservesByteTotal(t *testing.T) {
	f := NewFlow(1, "muzha", 100*sim.Millisecond)
	f.SetTraceCap(32)
	var want int64
	// Far more acks than the cap can hold at the initial resolution.
	for i := 0; i < 1000; i++ {
		f.AddAcked(sim.Time(i)*100*sim.Millisecond, 1460)
		want += 1460
	}
	if len(f.bins) > 32 {
		t.Fatalf("bins = %d, cap 32 exceeded", len(f.bins))
	}
	var got int64
	for _, s := range f.ThroughputSeries() {
		got += int64(s.V * f.BinSize().Seconds() / 8)
	}
	if got != want {
		t.Fatalf("byte total after decimation = %d, want %d", got, want)
	}
	if f.BytesAcked != want {
		t.Fatalf("BytesAcked = %d, want %d", f.BytesAcked, want)
	}
}

func TestBinDecimationMonotoneCumulative(t *testing.T) {
	// The cumulative byte count at each decimated bin edge must equal
	// the true cumulative count at that time: merging adjacent pairs
	// shifts no bytes across the pair boundary.
	f := NewFlow(1, "muzha", sim.Second)
	f.SetTraceCap(8)
	truth := make(map[sim.Time]int64) // cumulative bytes by time
	var cum int64
	for i := 0; i < 64; i++ {
		b := int64(100 * (i%7 + 1))
		cum += b
		f.AddAcked(sim.Time(i)*sim.Second, b)
		truth[sim.Time(i+1)*sim.Second] = cum
	}
	prev := -1.0
	var run int64
	for i := range f.bins {
		run += f.bins[i]
		edge := sim.Time(i+1) * f.binSize
		if want, ok := truth[edge]; ok && run != want {
			t.Fatalf("cumulative at %v = %d, want %d", edge, run, want)
		}
		if float64(run) < prev {
			t.Fatalf("cumulative bytes decreased at bin %d", i)
		}
		prev = float64(run)
	}
}

func TestSparseTailDoesNotBlowUpBins(t *testing.T) {
	// A single late ack after a long quiet spell must not allocate an
	// O(duration) tail of zero bins.
	f := NewFlow(1, "muzha", 100*sim.Millisecond)
	f.AddAcked(0, 1460)
	f.AddAcked(100_000*sim.Second, 1460) // bin index 10^6 at initial width
	if len(f.bins) > DefaultBinCap {
		t.Fatalf("sparse tail grew bins to %d, cap %d", len(f.bins), DefaultBinCap)
	}
	if f.BytesAcked != 2920 {
		t.Fatalf("BytesAcked = %d", f.BytesAcked)
	}
}

func TestCwndDecimationPreservesEndpoints(t *testing.T) {
	f := NewFlow(1, "muzha", 0)
	f.SetTraceCap(16)
	n := 10_000
	for i := 0; i < n; i++ {
		f.RecordCwnd(sim.Time(i)*sim.Millisecond, float64(i))
	}
	tr := f.CwndTrace()
	if len(tr) > 17 { // cap + the retained endpoint
		t.Fatalf("trace = %d samples, cap 16 exceeded", len(tr))
	}
	if tr[0].T != 0 || tr[0].V != 0 {
		t.Fatalf("first sample = %+v, want the original first", tr[0])
	}
	last := tr[len(tr)-1]
	if last.T != sim.Time(n-1)*sim.Millisecond || last.V != float64(n-1) {
		t.Fatalf("last sample = %+v, want the original last", last)
	}
	// Strictly increasing timestamps (decimation must not reorder).
	for i := 1; i < len(tr); i++ {
		if tr[i].T <= tr[i-1].T {
			t.Fatalf("trace not strictly increasing at %d: %+v", i, tr[i-1:i+1])
		}
	}
}

// A 10x longer run must not grow per-flow series memory 10x: both
// recorders are O(cap).
func TestFlowMemoryIsOCap(t *testing.T) {
	record := func(dur int) (bins, cwnd int) {
		f := NewFlow(1, "muzha", 100*sim.Millisecond)
		for i := 0; i < dur; i++ {
			t := sim.Time(i) * 100 * sim.Millisecond
			f.AddAcked(t, 1460)
			f.RecordCwnd(t, float64(i%40))
		}
		return len(f.bins), len(f.cwnd)
	}
	b1, c1 := record(100_000)
	b10, c10 := record(1_000_000)
	if b10 > DefaultBinCap || c10 > DefaultCwndCap {
		t.Fatalf("caps exceeded: bins=%d cwnd=%d", b10, c10)
	}
	if b10 > 2*b1 || c10 > 2*c1 {
		t.Fatalf("10x duration grew series superlinearly: bins %d->%d cwnd %d->%d", b1, b10, c1, c10)
	}
}

func TestFlowString(t *testing.T) {
	f := NewFlow(3, "vegas", 0)
	f.Retransmissions = 2
	f.Timeouts = 1
	got := f.String()
	want := "flow 3 (vegas): 0 bit/s, 2 rexmit, 1 timeouts"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
