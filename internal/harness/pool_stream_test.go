package harness

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestScanJSONL(t *testing.T) {
	input := strings.Join([]string{
		`{"a":1}`,
		``, // blank lines are skipped silently
		`{"b":2}`,
		`{"trunc`, // kill-mid-write residue: rejected, counted, not fatal
	}, "\n")
	var got []string
	skipped, err := ScanJSONL(strings.NewReader(input), func(line []byte) bool {
		if !strings.HasSuffix(string(line), "}") {
			return false
		}
		got = append(got, string(line))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if len(got) != 2 || got[0] != `{"a":1}` || got[1] != `{"b":2}` {
		t.Fatalf("lines = %v", got)
	}
}

// collectOutcomes gathers pool callbacks safely across goroutines.
type collectOutcomes struct {
	mu   sync.Mutex
	outs map[string]Outcome
}

func newCollect() *collectOutcomes {
	return &collectOutcomes{outs: make(map[string]Outcome)}
}

func (c *collectOutcomes) done(o Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.outs[o.Key] = o
}

func TestPoolRunsAllJobs(t *testing.T) {
	p := NewPool(3, 8, Options{})
	c := newCollect()
	for i := 0; i < 8; i++ {
		i := i
		job := Job{Key: fmt.Sprintf("job-%d", i), Fn: func() (any, error) { return i * i, nil }}
		if !p.TrySubmit(job, c.done) {
			t.Fatalf("submit %d refused with free backlog", i)
		}
	}
	p.Close()
	if len(c.outs) != 8 {
		t.Fatalf("outcomes = %d, want 8", len(c.outs))
	}
	for i := 0; i < 8; i++ {
		o := c.outs[fmt.Sprintf("job-%d", i)]
		if o.Err != nil || o.Value != i*i {
			t.Fatalf("job %d outcome = %+v", i, o)
		}
	}
}

func TestPoolBackpressureAndClose(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	p := NewPool(1, 1, Options{})
	c := newCollect()

	// One job occupies the worker, one fills the single backlog slot.
	if !p.TrySubmit(Job{Key: "busy", Fn: func() (any, error) {
		close(started)
		<-release
		return "done", nil
	}}, c.done) {
		t.Fatal("first submit refused")
	}
	<-started
	if !p.TrySubmit(Job{Key: "queued", Fn: func() (any, error) { return "ok", nil }}, c.done) {
		t.Fatal("backlog slot refused")
	}
	// The pool is now saturated: this refusal is the daemon's 429 signal.
	if p.TrySubmit(Job{Key: "over", Fn: func() (any, error) { return nil, nil }}, c.done) {
		t.Fatal("saturated pool accepted a job")
	}
	if p.Running() != 1 || p.Queued() != 1 {
		t.Fatalf("running=%d queued=%d, want 1/1", p.Running(), p.Queued())
	}
	close(release)
	p.Close()
	if len(c.outs) != 2 {
		t.Fatalf("outcomes = %d, want 2 (rejected job must never run)", len(c.outs))
	}
	if p.TrySubmit(Job{Key: "late", Fn: func() (any, error) { return nil, nil }}, c.done) {
		t.Fatal("closed pool accepted a job")
	}
}

func TestPoolContainsPanics(t *testing.T) {
	p := NewPool(1, 4, Options{})
	c := newCollect()
	p.TrySubmit(Job{Key: "boom", Fn: func() (any, error) { panic("kaboom") }}, c.done)
	p.TrySubmit(Job{Key: "after", Fn: func() (any, error) { return 7, nil }}, c.done)
	p.Close()
	boom := c.outs["boom"]
	if !errors.Is(boom.Err, ErrPanic) || boom.Class != ClassPanic {
		t.Fatalf("panic outcome = %+v", boom)
	}
	if after := c.outs["after"]; after.Err != nil || after.Value != 7 {
		t.Fatalf("worker died after panic: %+v", after)
	}
}

func TestPoolCanceledJobsAreNotReplayed(t *testing.T) {
	// A canceled run says nothing about the model (the daemon shut down
	// mid-job), so the nondeterminism replay must leave it alone — like
	// wall-clock deadline failures.
	calls := 0
	p := NewPool(1, 1, Options{Replay: true})
	c := newCollect()
	p.TrySubmit(Job{Key: "c", Fn: func() (any, error) {
		calls++
		return nil, fmt.Errorf("aborted: %w", ErrCanceled)
	}}, c.done)
	p.Close()
	o := c.outs["c"]
	if calls != 1 {
		t.Fatalf("canceled job ran %d times, want 1", calls)
	}
	if o.Replayed || o.Class != ClassCanceled {
		t.Fatalf("outcome = %+v, want unreplayed canceled", o)
	}
}

func TestPoolJournalResume(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir + "/pool.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(2, 2, Options{Journal: j})
	c := newCollect()
	p.TrySubmit(Job{Key: "x", Fn: func() (any, error) { return 1, nil }}, c.done)
	p.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir + "/pool.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	p2 := NewPool(2, 2, Options{Journal: j2})
	c2 := newCollect()
	p2.TrySubmit(Job{Key: "x", Fn: func() (any, error) {
		t.Error("journaled job re-ran")
		return nil, nil
	}}, c2.done)
	p2.Close()
	o := c2.outs["x"]
	if !o.Resumed || string(o.Raw) != "1" {
		t.Fatalf("resume outcome = %+v", o)
	}
}
