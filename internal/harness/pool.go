package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one unit of sweep work. Fn must be re-runnable: the pool
// invokes it again to classify a failure as deterministic or divergent.
type Job struct {
	// Key uniquely and stably identifies the job across sweep restarts;
	// it is the journal key.
	Key string
	// Fn performs the run. It is called from a worker goroutine and must
	// not share mutable state with other jobs.
	Fn func() (any, error)
}

// Outcome is one job's terminal state, in job order.
type Outcome struct {
	Key string
	// Value is Fn's result for jobs that ran; nil for resumed jobs
	// (decode Raw instead) and failures.
	Value any
	// Raw is the journaled result for resumed jobs.
	Raw json.RawMessage
	// Err is the classified failure, nil on success.
	Err error
	// Class is Classify(Err).
	Class Class
	// Resumed is set when the outcome was satisfied from the journal
	// without running Fn.
	Resumed bool
	// Replayed is set when the failure replay ran.
	Replayed bool
}

// Options configures Execute.
type Options struct {
	// Workers is the concurrent worker count; <= 0 uses GOMAXPROCS.
	Workers int
	// Journal, when non-nil, records outcomes as they complete and
	// satisfies jobs it already holds without re-running them.
	Journal *Journal
	// Replay re-runs each failed job once: an identical failure class
	// keeps its classification, a different outcome reclassifies the job
	// ErrNonDeterministic. Wall-clock deadline failures are exempt —
	// they depend on host load, not the model.
	Replay bool
}

// Summary aggregates a pool execution per failure class.
type Summary struct {
	Total    int
	OK       int
	Resumed  int
	Replayed int
	Failures map[Class]int
}

// Failed totals the failures across classes.
func (s Summary) Failed() int {
	n := 0
	for _, c := range s.Failures {
		n += c
	}
	return n
}

// Worst returns the sentinel of the most severe failure class, or nil
// when every job succeeded (ClassError failures return a generic
// non-sentinel error).
func (s Summary) Worst() error {
	switch c := WorstOf(s.Failures); c {
	case ClassOK:
		return nil
	case ClassError:
		return fmt.Errorf("unclassified run failure")
	default:
		return Sentinel(c)
	}
}

// String renders e.g. "12 runs: 9 ok (3 resumed), 3 failed [panic:1 livelock:2]".
func (s Summary) String() string {
	out := fmt.Sprintf("%d runs: %d ok", s.Total, s.OK)
	if s.Resumed > 0 {
		out += fmt.Sprintf(" (%d resumed)", s.Resumed)
	}
	if f := s.Failed(); f > 0 {
		out += fmt.Sprintf(", %d failed [", f)
		first := true
		for _, c := range worstFirst {
			if n := s.Failures[c]; n > 0 {
				if !first {
					out += " "
				}
				out += fmt.Sprintf("%s:%d", c, n)
				first = false
			}
		}
		out += "]"
	}
	return out
}

// Summarize tallies outcomes into a Summary.
func Summarize(outs []Outcome) Summary {
	s := Summary{Total: len(outs), Failures: make(map[Class]int)}
	for _, o := range outs {
		if o.Resumed {
			s.Resumed++
		}
		if o.Replayed {
			s.Replayed++
		}
		if o.Err == nil {
			s.OK++
		} else {
			s.Failures[o.Class]++
		}
	}
	return s
}

// Execute runs the jobs on a supervised worker pool and returns one
// Outcome per job, in job order, plus their Summary. The pool never
// aborts early: a failed, panicking or stuck job is classified and the
// remaining jobs still run. Each Fn executes single-threaded within its
// worker, so per-run results are independent of the worker count.
func Execute(jobs []Job, opt Options) ([]Outcome, Summary) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	outs := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return outs, Summarize(outs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				outs[i] = runJob(jobs[i], opt)
			}
		}()
	}
	wg.Wait()
	return outs, Summarize(outs)
}

// runJob executes (or resumes) one job with panic containment, failure
// replay and journaling.
func runJob(job Job, opt Options) Outcome {
	out := Outcome{Key: job.Key}
	if opt.Journal != nil {
		if e, ok := opt.Journal.Lookup(job.Key); ok && (!e.OK || len(e.Value) > 0) {
			out.Resumed = true
			out.Raw = e.Value
			out.Class = Class(e.Class)
			if !e.OK {
				out.Err = resumeError(out.Class, e.Err)
			}
			return out
		}
	}

	v, err := safeCall(job.Fn)
	if err != nil && opt.Replay && Classify(err) != ClassDeadline && Classify(err) != ClassCanceled {
		out.Replayed = true
		_, err2 := safeCall(job.Fn)
		if Classify(err2) != Classify(err) {
			err = fmt.Errorf("%w: first attempt failed (%v) but replay %s",
				ErrNonDeterministic, err, describeReplay(err2))
		}
	}
	out.Value, out.Err = v, err
	out.Class = Classify(err)
	if err != nil {
		out.Value = nil
	}

	if opt.Journal != nil {
		e := Entry{Key: job.Key, OK: err == nil, Class: string(out.Class)}
		if err != nil {
			e.Err = err.Error()
		} else if b, merr := json.Marshal(v); merr == nil {
			e.Value = b
		}
		opt.Journal.Record(e)
	}
	return out
}

func describeReplay(err error) string {
	if err == nil {
		return "succeeded"
	}
	return fmt.Sprintf("failed differently (%v)", err)
}

// Pool is the streaming counterpart of Execute for long-running
// services: jobs arrive one at a time over a bounded backlog, a fixed
// set of workers runs them with the same panic containment, replay
// classification and journaling as Execute, and each outcome is handed
// to its submit-time callback as it completes. The backlog bound is the
// daemon's admission control — TrySubmit refusing is the signal to push
// back (HTTP 429) instead of growing memory without limit.
type Pool struct {
	opt     Options
	items   chan poolItem
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	running atomic.Int64
}

type poolItem struct {
	job  Job
	done func(Outcome)
}

// NewPool starts workers goroutines (<= 0 uses GOMAXPROCS) consuming a
// backlog of at most backlog queued jobs.
func NewPool(workers, backlog int, opt Options) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if backlog < 0 {
		backlog = 0
	}
	p := &Pool{opt: opt, items: make(chan poolItem, backlog)}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for it := range p.items {
				p.running.Add(1)
				out := runJob(it.job, p.opt)
				p.running.Add(-1)
				if it.done != nil {
					it.done(out)
				}
			}
		}()
	}
	return p
}

// TrySubmit enqueues the job without blocking. It returns false when
// the backlog is full or the pool is closed; the job was not accepted
// and done will never be called.
func (p *Pool) TrySubmit(job Job, done func(Outcome)) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.items <- poolItem{job: job, done: done}:
		return true
	default:
		return false
	}
}

// Running reports how many jobs are executing right now (not queued).
func (p *Pool) Running() int { return int(p.running.Load()) }

// Queued reports how many accepted jobs are waiting for a worker.
func (p *Pool) Queued() int { return len(p.items) }

// Close stops intake and blocks until every queued and running job has
// finished and delivered its outcome. A service that must bound the
// wait cancels its in-flight jobs (closing their Cancel channels)
// before or during Close.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.items)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// safeCall invokes fn, converting a panic into an ErrPanic-classed
// error so one broken job cannot kill its worker goroutine.
func safeCall(fn func() (any, error)) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			v, err = nil, fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	return fn()
}
