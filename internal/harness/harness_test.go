package harness

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestClassifyTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassOK},
		{fmt.Errorf("run aborted: %w", ErrDeadline), ClassDeadline},
		{fmt.Errorf("run aborted: %w", ErrEventBudget), ClassEventBudget},
		{fmt.Errorf("run aborted: %w", ErrLivelock), ClassLivelock},
		{fmt.Errorf("recovered: %w", ErrPanic), ClassPanic},
		{fmt.Errorf("bad state: %w", ErrInvariant), ClassInvariant},
		{fmt.Errorf("diverged: %w", ErrNonDeterministic), ClassNonDeterministic},
		{errors.New("something else"), ClassError},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestSentinelRoundTrip(t *testing.T) {
	for _, c := range worstFirst {
		if c == ClassError {
			continue
		}
		s := Sentinel(c)
		if s == nil {
			t.Fatalf("no sentinel for %q", c)
		}
		if got := Classify(fmt.Errorf("wrapped: %w", s)); got != c {
			t.Errorf("class %q round-trips to %q", c, got)
		}
	}
	if Sentinel(ClassError) != nil || Sentinel(ClassOK) != nil {
		t.Fatal("ClassError/ClassOK must have no sentinel")
	}
}

func TestWorstOfOrdering(t *testing.T) {
	counts := map[Class]int{ClassInvariant: 3, ClassLivelock: 1}
	if got := WorstOf(counts); got != ClassLivelock {
		t.Fatalf("WorstOf = %q, want livelock", got)
	}
	if got := WorstOf(map[Class]int{}); got != ClassOK {
		t.Fatalf("WorstOf(empty) = %q, want ok", got)
	}
}

// TestExecuteOrderAndParallelism checks outcomes come back in job order
// at any worker width.
func TestExecuteOrderAndParallelism(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		jobs := make([]Job, 20)
		for i := range jobs {
			jobs[i] = Job{Key: fmt.Sprintf("job-%d", i), Fn: func() (any, error) { return i, nil }}
		}
		outs, sum := Execute(jobs, Options{Workers: workers})
		if sum.OK != 20 || sum.Failed() != 0 {
			t.Fatalf("workers=%d: summary %+v", workers, sum)
		}
		for i, o := range outs {
			if o.Value.(int) != i {
				t.Fatalf("workers=%d: outcome %d holds %v", workers, i, o.Value)
			}
		}
	}
}

// TestExecutePanicContainment: a panicking job is classified ErrPanic
// and the rest of the batch still completes.
func TestExecutePanicContainment(t *testing.T) {
	jobs := []Job{
		{Key: "good-1", Fn: func() (any, error) { return "ok", nil }},
		{Key: "bomb", Fn: func() (any, error) { panic("boom") }},
		{Key: "good-2", Fn: func() (any, error) { return "ok", nil }},
	}
	outs, sum := Execute(jobs, Options{Workers: 2})
	if sum.OK != 2 || sum.Failures[ClassPanic] != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if !errors.Is(outs[1].Err, ErrPanic) || outs[1].Class != ClassPanic {
		t.Fatalf("panic outcome %+v", outs[1])
	}
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Fatal("healthy jobs infected by the panic")
	}
}

// TestReplayClassifiesNonDeterministic: a deliberately nondeterministic
// job — fails first, succeeds on replay — must be reclassified
// ErrNonDeterministic; a deterministic failure must keep its class.
func TestReplayClassifiesNonDeterministic(t *testing.T) {
	var mu sync.Mutex
	calls := map[string]int{}
	count := func(key string) int {
		mu.Lock()
		defer mu.Unlock()
		calls[key]++
		return calls[key]
	}
	jobs := []Job{
		{Key: "flaky", Fn: func() (any, error) {
			if count("flaky") == 1 {
				return nil, fmt.Errorf("first attempt: %w", ErrLivelock)
			}
			return "fine", nil
		}},
		{Key: "stuck", Fn: func() (any, error) {
			count("stuck")
			return nil, fmt.Errorf("always: %w", ErrLivelock)
		}},
	}
	outs, sum := Execute(jobs, Options{Workers: 1, Replay: true})
	if outs[0].Class != ClassNonDeterministic || !errors.Is(outs[0].Err, ErrNonDeterministic) {
		t.Fatalf("flaky job classified %q (%v)", outs[0].Class, outs[0].Err)
	}
	if outs[1].Class != ClassLivelock {
		t.Fatalf("deterministic failure reclassified %q", outs[1].Class)
	}
	if calls["flaky"] != 2 || calls["stuck"] != 2 {
		t.Fatalf("replay counts %v, want exactly one replay each", calls)
	}
	if sum.Replayed != 2 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestReplaySkipsDeadline: wall-clock failures depend on host load, so
// the replay classifier must not relabel them nondeterministic.
func TestReplaySkipsDeadline(t *testing.T) {
	calls := 0
	jobs := []Job{{Key: "slow", Fn: func() (any, error) {
		calls++
		return nil, fmt.Errorf("too slow: %w", ErrDeadline)
	}}}
	outs, _ := Execute(jobs, Options{Workers: 1, Replay: true})
	if calls != 1 {
		t.Fatalf("deadline failure replayed %d times", calls)
	}
	if outs[0].Class != ClassDeadline {
		t.Fatalf("class %q", outs[0].Class)
	}
}

func TestWatchdogEventBudget(t *testing.T) {
	ev := uint64(0)
	wd := NewWatchdog(func() int64 { return int64(ev) }, func() uint64 { return ev }, WatchdogConfig{MaxEvents: 100})
	ev = 99
	if err := wd(); err != nil {
		t.Fatalf("budget tripped early: %v", err)
	}
	ev = 100
	if err := wd(); !errors.Is(err, ErrEventBudget) {
		t.Fatalf("want ErrEventBudget, got %v", err)
	}
}

func TestWatchdogLivelock(t *testing.T) {
	now, ev := int64(0), uint64(0)
	wd := NewWatchdog(func() int64 { return now }, func() uint64 { return ev }, WatchdogConfig{LivelockWindow: 1000})
	// Time advancing: no trip no matter how many events.
	for i := 0; i < 10; i++ {
		now++
		ev += 500
		if err := wd(); err != nil {
			t.Fatalf("tripped while advancing: %v", err)
		}
	}
	// Clock frozen: trips once the window passes.
	ev += 999
	if err := wd(); err != nil {
		t.Fatalf("tripped inside window: %v", err)
	}
	ev += 1
	if err := wd(); !errors.Is(err, ErrLivelock) {
		t.Fatalf("want ErrLivelock, got %v", err)
	}
}

func TestWatchdogWallClock(t *testing.T) {
	wd := NewWatchdog(func() int64 { return 0 }, func() uint64 { return 0 }, WatchdogConfig{WallClock: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if err := wd(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

func TestWatchdogInterval(t *testing.T) {
	if got := (WatchdogConfig{}).Interval(); got != defaultCheckEvery {
		t.Fatalf("default interval %d", got)
	}
	if got := (WatchdogConfig{MaxEvents: 100}).Interval(); got != 100 {
		t.Fatalf("budget-capped interval %d", got)
	}
	if got := (WatchdogConfig{LivelockWindow: 7, CheckEvery: 50}).Interval(); got != 7 {
		t.Fatalf("livelock-capped interval %d", got)
	}
}

func TestSummaryString(t *testing.T) {
	outs := []Outcome{
		{Err: nil},
		{Resumed: true},
		{Err: fmt.Errorf("x: %w", ErrPanic), Class: ClassPanic},
		{Err: fmt.Errorf("x: %w", ErrLivelock), Class: ClassLivelock},
	}
	s := Summarize(outs)
	if s.Total != 4 || s.OK != 2 || s.Resumed != 1 || s.Failed() != 2 {
		t.Fatalf("summary %+v", s)
	}
	str := s.String()
	if str != "4 runs: 2 ok (1 resumed), 2 failed [panic:1 livelock:1]" {
		t.Fatalf("String() = %q", str)
	}
	if !errors.Is(s.Worst(), ErrPanic) {
		t.Fatalf("Worst() = %v", s.Worst())
	}
}
