package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(Entry{Key: "a", OK: true, Value: json.RawMessage(`{"x":1}`)})
	j.Record(Entry{Key: "b", OK: false, Class: string(ClassLivelock), Err: "stuck"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 || j2.Skipped() != 0 {
		t.Fatalf("reloaded %d entries, %d skipped", j2.Len(), j2.Skipped())
	}
	a, ok := j2.Lookup("a")
	if !ok || !a.OK || string(a.Value) != `{"x":1}` {
		t.Fatalf("entry a = %+v", a)
	}
	b, ok := j2.Lookup("b")
	if !ok || b.OK || b.Class != string(ClassLivelock) {
		t.Fatalf("entry b = %+v", b)
	}
}

// TestJournalTruncatedLine: a kill mid-write leaves a partial final
// line; the load must skip it and keep the complete entries.
func TestJournalTruncatedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	full, _ := json.Marshal(Entry{Key: "done", OK: true, Value: json.RawMessage(`1`)})
	content := append(full, '\n')
	content = append(content, []byte(`{"key":"half","ok":tr`)...) // truncated
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 1 || j.Skipped() != 1 {
		t.Fatalf("entries=%d skipped=%d", j.Len(), j.Skipped())
	}
	if _, ok := j.Lookup("done"); !ok {
		t.Fatal("complete entry lost")
	}
}

// TestExecuteResumesFromJournal: re-executing the same jobs against the
// same journal must not re-run completed work, and failed entries keep
// their classification across the restart.
func TestExecuteResumesFromJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	ran := map[string]int{}
	mkJobs := func() []Job {
		return []Job{
			{Key: "ok-job", Fn: func() (any, error) { ran["ok-job"]++; return 42, nil }},
			{Key: "bad-job", Fn: func() (any, error) {
				ran["bad-job"]++
				return nil, fmt.Errorf("always: %w", ErrEventBudget)
			}},
		}
	}

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	outs, _ := Execute(mkJobs(), Options{Workers: 1, Journal: j})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil || outs[1].Class != ClassEventBudget {
		t.Fatalf("first pass outcomes %+v", outs)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	outs2, sum := Execute(mkJobs(), Options{Workers: 1, Journal: j2})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if ran["ok-job"] != 1 || ran["bad-job"] != 1 {
		t.Fatalf("journaled jobs re-ran: %v", ran)
	}
	if !outs2[0].Resumed || !outs2[1].Resumed || sum.Resumed != 2 {
		t.Fatalf("resume not reported: %+v %+v", outs2, sum)
	}
	var v int
	if err := json.Unmarshal(outs2[0].Raw, &v); err != nil || v != 42 {
		t.Fatalf("resumed value %s (%v)", outs2[0].Raw, err)
	}
	if !errors.Is(outs2[1].Err, ErrEventBudget) || outs2[1].Class != ClassEventBudget {
		t.Fatalf("resumed failure lost its class: %+v", outs2[1])
	}
}
