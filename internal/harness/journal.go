package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// ScanJSONL feeds every non-empty line of r to fn. A line fn rejects
// (returns false) — a truncated final line from a kill mid-write, or
// any other corruption — is counted and skipped, never fatal: losing
// one in-flight record must not discard the rest of a journal. The
// Journal's resume and the job daemon's store recovery both ride this.
func ScanJSONL(r io.Reader, fn func(line []byte) bool) (skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !fn(line) {
			skipped++
		}
	}
	return skipped, sc.Err()
}

// Entry is one journaled job outcome — a single JSONL line. Value holds
// the job's marshaled result and is decoded by the caller on resume.
type Entry struct {
	Key   string          `json:"key"`
	OK    bool            `json:"ok"`
	Class string          `json:"class,omitempty"`
	Err   string          `json:"err,omitempty"`
	Value json.RawMessage `json:"value,omitempty"`
}

// Journal is an append-only JSONL record of finished jobs. Opening an
// existing journal loads its entries so a restarted sweep can skip them;
// Record appends one line per completed job as workers finish, so a
// killed sweep loses at most the in-flight runs. Record and Lookup are
// safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	done    map[string]Entry
	err     error
	skipped int
}

// OpenJournal opens (creating if absent) the journal at path and loads
// every parseable entry. A truncated final line — the signature of a
// kill mid-write — is skipped, not fatal; Skipped reports how many lines
// were dropped.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: open journal: %w", err)
	}
	j := &Journal{f: f, done: make(map[string]Entry)}
	skipped, err := ScanJSONL(f, func(line []byte) bool {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			return false
		}
		j.done[e.Key] = e
		return true
	})
	j.skipped = skipped
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: read journal: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: seek journal: %w", err)
	}
	return j, nil
}

// Lookup returns the journaled entry for key, if one exists.
func (j *Journal) Lookup(key string) (Entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.done[key]
	return e, ok
}

// Skipped reports how many unparseable lines the load dropped.
func (j *Journal) Skipped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.skipped
}

// Len reports how many entries the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record appends one entry. The first write error latches — the sweep
// must not die on journal I/O — and surfaces via Err and Close.
func (j *Journal) Record(e Entry) {
	b, err := json.Marshal(e)
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		if j.err == nil {
			j.err = fmt.Errorf("harness: marshal journal entry %q: %w", e.Key, err)
		}
		return
	}
	j.done[e.Key] = e
	if j.err != nil {
		return
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		j.err = fmt.Errorf("harness: write journal: %w", err)
	}
}

// Err returns the first latched journal I/O error.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and closes the journal, returning any latched write
// error so a truncated journal is never mistaken for a complete one.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	cerr := j.f.Close()
	if j.err != nil {
		return j.err
	}
	return cerr
}
