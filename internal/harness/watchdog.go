package harness

import (
	"fmt"
	"time"
)

// defaultCheckEvery is how many engine events pass between watchdog
// checks when the caller does not set an interval. Checks are two
// function calls and a few compares, so even tight intervals cost little
// against microsecond-scale events.
const defaultCheckEvery = 1024

// WatchdogConfig bounds one run. Each zero value disables that guard.
type WatchdogConfig struct {
	// WallClock aborts the run once this much real time has elapsed
	// (ErrDeadline). The abort point depends on host speed, but a run
	// that completes is bit-for-bit identical regardless.
	WallClock time.Duration
	// MaxEvents aborts once the engine has executed this many events
	// (ErrEventBudget).
	MaxEvents uint64
	// LivelockWindow aborts once this many consecutive events execute
	// without the virtual clock advancing (ErrLivelock).
	LivelockWindow uint64
	// CheckEvery is the guard-check period in events (default 1024; it
	// is tightened automatically so small budgets are hit exactly).
	CheckEvery uint64
}

// Enabled reports whether any guard is armed.
func (c WatchdogConfig) Enabled() bool {
	return c.WallClock > 0 || c.MaxEvents > 0 || c.LivelockWindow > 0
}

// Interval returns the effective check period: CheckEvery (or the
// default), capped by the event budget and livelock window so neither
// can be overshot by a whole period.
func (c WatchdogConfig) Interval() uint64 {
	every := c.CheckEvery
	if every == 0 {
		every = defaultCheckEvery
	}
	if c.MaxEvents > 0 && c.MaxEvents < every {
		every = c.MaxEvents
	}
	if c.LivelockWindow > 0 && c.LivelockWindow < every {
		every = c.LivelockWindow
	}
	return every
}

// NewWatchdog builds a guard function for a simulation engine. The
// engine calls it every Interval() events with now (virtual time in
// nanoseconds) and events (total events executed) readable through the
// two accessors; a non-nil return aborts the run with a classified
// error. The wall clock starts when NewWatchdog is called, so build the
// watchdog immediately before starting the run.
func NewWatchdog(now func() int64, events func() uint64, c WatchdogConfig) func() error {
	start := time.Now()
	lastNow := int64(-1)
	var lastAdvance uint64
	return func() error {
		ev := events()
		if c.MaxEvents > 0 && ev >= c.MaxEvents {
			return fmt.Errorf("%w: %d events executed (budget %d)", ErrEventBudget, ev, c.MaxEvents)
		}
		if c.LivelockWindow > 0 {
			if n := now(); n != lastNow {
				lastNow = n
				lastAdvance = ev
			} else if ev-lastAdvance >= c.LivelockWindow {
				return fmt.Errorf("%w: stuck at t=%dns for %d events", ErrLivelock, lastNow, ev-lastAdvance)
			}
		}
		if c.WallClock > 0 {
			if elapsed := time.Since(start); elapsed > c.WallClock {
				return fmt.Errorf("%w: %v elapsed (deadline %v)", ErrDeadline, elapsed.Round(time.Millisecond), c.WallClock)
			}
		}
		return nil
	}
}
