// Package harness supervises batches of simulation runs: a worker pool
// with per-job panic containment, a typed failure taxonomy, a
// wall-clock/event-budget/livelock watchdog that the engine checks
// cooperatively, and a JSONL journal that makes interrupted sweeps
// resumable.
//
// The package is deliberately generic — jobs are plain closures — so it
// carries no dependency on the simulation model and the root package can
// route every sweep through it without an import cycle.
package harness

import (
	"errors"
	"fmt"
)

// Sentinel errors of the failure taxonomy. Guard aborts, panics and
// classifier verdicts wrap exactly one of these so callers can triage
// with errors.Is.
var (
	// ErrDeadline marks a run that exceeded its wall-clock deadline.
	ErrDeadline = errors.New("wall-clock deadline exceeded")
	// ErrEventBudget marks a run that executed more events than budgeted.
	ErrEventBudget = errors.New("event budget exhausted")
	// ErrLivelock marks a run whose virtual clock stopped advancing while
	// events kept executing (a zero-delay event cycle).
	ErrLivelock = errors.New("livelock: virtual time not advancing")
	// ErrPanic marks a run that panicked and was recovered.
	ErrPanic = errors.New("panic")
	// ErrInvariant marks a run whose result carried Always-invariant
	// violations.
	ErrInvariant = errors.New("invariant violation")
	// ErrNonDeterministic marks a scenario whose replay diverged from the
	// first attempt — a determinism bug in the model, not the scenario.
	ErrNonDeterministic = errors.New("nondeterministic")
	// ErrCanceled marks a run aborted by its Cancel channel — an
	// operator decision (daemon drain, client abort), not a model
	// failure.
	ErrCanceled = errors.New("run canceled")
)

// Class names a failure class; the empty class means the run succeeded.
type Class string

// The failure classes, most severe first in worstFirst order.
const (
	ClassOK               Class = ""
	ClassPanic            Class = "panic"
	ClassLivelock         Class = "livelock"
	ClassEventBudget      Class = "event-budget"
	ClassDeadline         Class = "deadline"
	ClassNonDeterministic Class = "nondeterministic"
	ClassInvariant        Class = "invariant"
	ClassCanceled         Class = "canceled"
	ClassError            Class = "error"
)

// worstFirst orders the classes by triage severity: an engine panic
// outranks a stuck run, which outranks divergence and invariant noise.
var worstFirst = []Class{
	ClassPanic, ClassLivelock, ClassEventBudget, ClassDeadline,
	ClassNonDeterministic, ClassInvariant, ClassCanceled, ClassError,
}

// Classify maps an error to its failure class. A nil error is ClassOK;
// an error wrapping none of the sentinels is ClassError.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassOK
	case errors.Is(err, ErrNonDeterministic):
		return ClassNonDeterministic
	case errors.Is(err, ErrPanic):
		return ClassPanic
	case errors.Is(err, ErrLivelock):
		return ClassLivelock
	case errors.Is(err, ErrEventBudget):
		return ClassEventBudget
	case errors.Is(err, ErrDeadline):
		return ClassDeadline
	case errors.Is(err, ErrInvariant):
		return ClassInvariant
	case errors.Is(err, ErrCanceled):
		return ClassCanceled
	default:
		return ClassError
	}
}

// Sentinel returns the class's sentinel error, or nil for ClassOK and
// ClassError (which has no sentinel).
func Sentinel(c Class) error {
	switch c {
	case ClassDeadline:
		return ErrDeadline
	case ClassEventBudget:
		return ErrEventBudget
	case ClassLivelock:
		return ErrLivelock
	case ClassPanic:
		return ErrPanic
	case ClassInvariant:
		return ErrInvariant
	case ClassNonDeterministic:
		return ErrNonDeterministic
	case ClassCanceled:
		return ErrCanceled
	}
	return nil
}

// WorstOf returns the most severe class with a nonzero count, or ClassOK
// when the map holds no failures.
func WorstOf(counts map[Class]int) Class {
	for _, c := range worstFirst {
		if counts[c] > 0 {
			return c
		}
	}
	return ClassOK
}

// resumeError reconstructs a journaled failure so a resumed sweep
// classifies it exactly like the original run did.
func resumeError(class Class, msg string) error {
	if s := Sentinel(class); s != nil {
		return fmt.Errorf("%w (resumed): %s", s, msg)
	}
	return fmt.Errorf("resumed failure: %s", msg)
}
