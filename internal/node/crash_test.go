package node

import (
	"testing"

	"muzha/internal/invariant"
	"muzha/internal/sim"
)

// TestCrashRebootMidTransfer drives a steady segment stream across a
// 0-1-2 chain, crashes the relay mid-transfer, reboots it, and checks
// delivery resumes — with every run-time invariant intact throughout.
func TestCrashRebootMidTransfer(t *testing.T) {
	cfg := DefaultConfig()
	var s *sim.Simulator
	checker := invariant.New(func() sim.Time {
		if s == nil {
			return 0
		}
		return s.Now()
	})
	cfg.Invariants = checker
	cfg.Ledger = invariant.NewLedger(checker.Always("packet-conservation"))

	s, nodes := buildChain(t, 3, 2, cfg)
	sink := &recorder{flow: 1}
	if err := nodes[2].Attach(sink); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 200; i++ {
		i := i
		s.Schedule(sim.Time(i)*100*sim.Millisecond, func() {
			nodes[0].Send(seg(1, 2, int64(i)*1460))
		})
	}
	s.Schedule(3*sim.Second, func() { nodes[1].Crash() })
	s.Schedule(6*sim.Second, func() { nodes[1].Reboot() })
	s.Run(25 * sim.Second)

	beforeCrash, afterReboot := 0, 0
	for _, p := range sink.got {
		at := sim.Time(p.EnqueuedAt)
		if at < 3*sim.Second {
			beforeCrash++
		}
		if at > 6*sim.Second {
			afterReboot++
		}
	}
	if beforeCrash == 0 {
		t.Fatal("no deliveries before the crash")
	}
	if afterReboot == 0 {
		t.Fatal("delivery never resumed after reboot")
	}
	if nodes[1].Down() {
		t.Fatal("relay still down after Reboot")
	}
	if checker.Violations() != 0 {
		t.Fatalf("invariant violations under crash/reboot:\n%+v", checker.Report())
	}
	// The conservation ledger really ran.
	for _, r := range checker.Report() {
		if r.Name == "packet-conservation" && r.Checks == 0 {
			t.Fatal("conservation ledger never consulted")
		}
	}
}

// TestDownNodeRefusesTraffic checks the crashed state: local sends are
// refused, the IFQ is flushed, and nothing transits the node.
func TestDownNodeRefusesTraffic(t *testing.T) {
	s, nodes := buildChain(t, 4, 2, DefaultConfig())
	sink := &recorder{flow: 1}
	if err := nodes[2].Attach(sink); err != nil {
		t.Fatal(err)
	}

	nodes[1].Crash()
	if !nodes[1].Down() {
		t.Fatal("Crash did not mark the node down")
	}
	nodes[1].Crash() // idempotent

	// Origination at a crashed node is refused outright.
	nodes[1].Send(seg(2, 2, 0))
	if got := nodes[1].Stats().CrashDrops; got != 1 {
		t.Fatalf("CrashDrops = %d, want 1", got)
	}

	// Traffic across the dead relay goes nowhere.
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(sim.Time(i)*200*sim.Millisecond, func() {
			nodes[0].Send(seg(1, 2, int64(i)*1460))
		})
	}
	s.Run(10 * sim.Second)
	if len(sink.got) != 0 {
		t.Fatalf("%d segments crossed a crashed relay", len(sink.got))
	}
	if nodes[1].QueueLen() != 0 {
		t.Fatal("crashed node accumulated queued packets")
	}
}
