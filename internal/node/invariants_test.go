package node

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/phy"
	"muzha/internal/sim"
	"muzha/internal/topo"
	"muzha/internal/trace"
)

// buildTracedChain assembles a chain whose nodes all record into one
// shared trace buffer.
func buildTracedChain(t *testing.T, seed int64, hops int, buf *trace.Buffer) (*sim.Simulator, []*Node) {
	t.Helper()
	s := sim.New(seed)
	ch, err := phy.NewChannel(s, phy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Chain(hops)
	if err != nil {
		t.Fatal(err)
	}
	var ids packet.IDGen
	cfg := DefaultConfig()
	cfg.Trace = buf
	nodes := make([]*Node, tp.N())
	for i, pos := range tp.Positions {
		n, err := New(s, ch, pos, packet.NodeID(i), &ids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	return s, nodes
}

// TestPacketConservation drives traffic over a chain and checks, from the
// packet trace, that the network never conjures packets out of thin air:
// every transport-layer receive corresponds to a unique originated send,
// and every packet is either delivered, dropped with a reason, or still
// in flight at the end.
func TestPacketConservation(t *testing.T) {
	buf := trace.NewBuffer(0)
	s, nodes := buildTracedChain(t, 1, 4, buf)
	sink := &recorder{flow: 1}
	if err := nodes[4].Attach(sink); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		i := i
		s.Schedule(sim.Time(i)*20*sim.Millisecond, func() {
			nodes[0].Send(seg(1, 4, int64(i)*1460))
		})
	}
	s.Run(20 * sim.Second)

	sent := make(map[uint64]bool)
	recvCount := make(map[uint64]int)
	for _, e := range buf.Events() {
		switch e.Op {
		case trace.OpSend:
			if sent[e.UID] {
				t.Fatalf("UID %d originated twice", e.UID)
			}
			sent[e.UID] = true
		case trace.OpRecv:
			recvCount[e.UID]++
		case trace.OpDrop:
			if e.Reason == "" {
				t.Fatalf("drop without reason: %+v", e)
			}
		}
	}
	for uid, c := range recvCount {
		if !sent[uid] {
			t.Fatalf("UID %d received but never sent", uid)
		}
		if c > 1 {
			t.Fatalf("UID %d delivered %d times", uid, c)
		}
	}
	if len(sink.got) != n {
		t.Fatalf("sink got %d/%d segments", len(sink.got), n)
	}
	if got := buf.Count(trace.OpRecv); got != n {
		t.Fatalf("trace receives = %d, want %d", got, n)
	}
}

// TestForwardEventsMatchPath checks that each delivered packet was
// forwarded exactly hops-1 times (once per intermediate node) on a
// loss-free chain.
func TestForwardEventsMatchPath(t *testing.T) {
	buf := trace.NewBuffer(0)
	s, nodes := buildTracedChain(t, 2, 3, buf)
	sink := &recorder{flow: 1}
	if err := nodes[3].Attach(sink); err != nil {
		t.Fatal(err)
	}
	nodes[0].Send(seg(1, 3, 0))
	s.Run(5 * sim.Second)

	if len(sink.got) != 1 {
		t.Fatal("segment not delivered")
	}
	uid := sink.got[0].UID
	fwd := buf.Filter(func(e trace.Event) bool {
		return e.Op == trace.OpForward && e.UID == uid
	})
	if len(fwd) != 2 {
		t.Fatalf("forward events = %d, want 2 (nodes 1 and 2)", len(fwd))
	}
	seen := map[packet.NodeID]bool{}
	for _, e := range fwd {
		seen[e.Node] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("forwarders = %v, want nodes 1 and 2", seen)
	}
}

// TestDropsAreAccounted floods a tiny queue and checks that every queue
// drop appears in the trace with the right reason and node.
func TestDropsAreAccounted(t *testing.T) {
	buf := trace.NewBuffer(0)
	s := sim.New(3)
	ch, err := phy.NewChannel(s, phy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := topo.Chain(2)
	var ids packet.IDGen
	cfg := DefaultConfig()
	cfg.Trace = buf
	cfg.QueueLimit = 4
	nodes := make([]*Node, tp.N())
	for i, pos := range tp.Positions {
		nodes[i], err = New(s, ch, pos, packet.NodeID(i), &ids, cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	sink := &recorder{flow: 1}
	if err := nodes[2].Attach(sink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		nodes[0].Send(seg(1, 2, int64(i)*1460))
	}
	s.Run(10 * sim.Second)

	qdropEvents := buf.Filter(func(e trace.Event) bool {
		return e.Op == trace.OpDrop && e.Reason == "queue overflow"
	})
	var qdropStats uint64
	for _, n := range nodes {
		qdropStats += n.Stats().QueueDrops
	}
	if uint64(len(qdropEvents)) != qdropStats {
		t.Fatalf("trace queue drops (%d) != stats (%d)", len(qdropEvents), qdropStats)
	}
	if qdropStats == 0 {
		t.Fatal("burst did not overflow the tiny queue")
	}
}

// TestResidualLossAccounting cross-checks the residual-loss counter
// against the trace.
func TestResidualLossAccounting(t *testing.T) {
	buf := trace.NewBuffer(0)
	s := sim.New(5)
	ch, _ := phy.NewChannel(s, phy.DefaultConfig())
	tp, _ := topo.Chain(2)
	var ids packet.IDGen
	cfg := DefaultConfig()
	cfg.Trace = buf
	cfg.ResidualLossRate = 0.2
	nodes := make([]*Node, tp.N())
	for i, pos := range tp.Positions {
		nodes[i], _ = New(s, ch, pos, packet.NodeID(i), &ids, cfg)
	}
	sink := &recorder{flow: 1}
	if err := nodes[2].Attach(sink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		i := i
		s.Schedule(sim.Time(i)*20*sim.Millisecond, func() {
			nodes[0].Send(seg(1, 2, int64(i)*1460))
		})
	}
	s.Run(10 * sim.Second)

	randomDrops := buf.Filter(func(e trace.Event) bool {
		return e.Op == trace.OpDrop && e.Reason == "random loss"
	})
	var statDrops uint64
	for _, n := range nodes {
		statDrops += n.Stats().RandomDrops
	}
	if uint64(len(randomDrops)) != statDrops {
		t.Fatalf("trace random drops (%d) != stats (%d)", len(randomDrops), statDrops)
	}
	if statDrops == 0 {
		t.Fatal("20%% residual loss dropped nothing")
	}
	if len(sink.got)+int(statDrops) < 30 {
		t.Fatalf("deliveries (%d) + drops (%d) implausibly low", len(sink.got), statDrops)
	}
}
