// Package node assembles one wireless host: radio, 802.11 DCF MAC,
// interface queue, AODV router and the IP forwarding plane, including the
// TCP Muzha router-assist hooks (AVBW-S stamping and congestion marking).
// Every node plays the hybrid terminal/router role the paper builds on.
package node

import (
	"fmt"

	"muzha/internal/aodv"
	"muzha/internal/core"
	"muzha/internal/dsr"
	"muzha/internal/invariant"
	"muzha/internal/mac"
	"muzha/internal/packet"
	"muzha/internal/phy"
	"muzha/internal/queue"
	"muzha/internal/sim"
	"muzha/internal/topo"
	"muzha/internal/trace"
)

// Agent is a transport endpoint (TCP sender or sink) attached to a node.
type Agent interface {
	// FlowID identifies the flow this agent belongs to.
	FlowID() int32
	// Recv delivers a transport segment addressed to this node.
	Recv(pkt *packet.Packet)
}

// Routing selects the node's routing protocol.
type Routing int

const (
	// RoutingAODV is the paper's protocol (the zero value).
	RoutingAODV Routing = iota
	// RoutingDSR swaps in Dynamic Source Routing (ablation).
	RoutingDSR
)

// Config assembles per-node parameters.
type Config struct {
	MAC  mac.Config
	AODV aodv.Config
	// Protocol selects AODV (default) or DSR.
	Protocol Routing
	// DSR holds DSR parameters when Protocol is RoutingDSR.
	DSR dsr.Config
	// QueueLimit is the IFQ capacity in packets (paper: 50, drop-tail).
	QueueLimit int
	// UseRED replaces the drop-tail IFQ with a RED queue (ablation).
	UseRED bool
	// RED holds RED parameters when UseRED is set; Limit and Rand are
	// filled in automatically.
	RED queue.REDConfig
	// DRAI is the router-assist policy applied to forwarded packets.
	// Leave nil to disable router assistance entirely.
	DRAI *core.DRAIPolicy
	// ResidualLossRate drops received data packets at the network layer
	// with this probability, modelling random wireless loss that defeats
	// the MAC's ARQ (deep fades, undetected corruption). This is the
	// TCP-visible "random loss" of the paper's Section 4.7: unlike
	// PHY-level errors, it cannot be repaired by link-layer retries.
	ResidualLossRate float64
	// Trace, when non-nil, receives packet-level events (NS-2-style
	// send/receive/forward/drop records).
	Trace trace.Recorder
	// Invariants, when non-nil, receives run-time Always/Sometimes checks
	// on the node's forwarding plane.
	Invariants *invariant.Checker
	// Ledger, when non-nil, tracks packet conservation: every transport
	// delivery must reference a UID some node originated. Share one ledger
	// across all nodes of a run.
	Ledger *invariant.Ledger
}

// DefaultConfig returns the paper's Table 5.1 node parameters with the
// default DRAI policy enabled.
func DefaultConfig() Config {
	p := core.DefaultDRAIPolicy()
	return Config{
		MAC:        mac.DefaultConfig(),
		AODV:       aodv.DefaultConfig(),
		DSR:        dsr.DefaultConfig(),
		QueueLimit: queue.DefaultLimit,
		DRAI:       &p,
	}
}

// RoutingStats unifies the AODV and DSR counters.
type RoutingStats struct {
	RREQSent     uint64
	RREPSent     uint64
	RERRSent     uint64
	Discoveries  uint64
	DiscoveryOK  uint64
	DiscoveryErr uint64
	LinkFailures uint64
}

// routingProtocol is what the node needs from a routing implementation;
// both aodv.Router and dsr.Router satisfy it.
type routingProtocol interface {
	SendData(pkt *packet.Packet)
	HandleRouting(pkt *packet.Packet)
	LinkFailure(nextHop packet.NodeID, failed *packet.Packet)
	// Reset wipes volatile protocol state, as a crash would.
	Reset()
}

// Stats are per-node network-layer counters.
type Stats struct {
	Delivered   uint64 // transport segments handed to local agents
	Forwarded   uint64 // data packets forwarded toward other nodes
	QueueDrops  uint64 // IFQ overflow drops
	TTLDrops    uint64 // packets dropped at TTL zero
	NoAgentDrop uint64 // segments for flows with no local agent
	RouteDrops  uint64 // packets dropped by routing (no route)
	Marked      uint64 // packets congestion-marked here
	RandomDrops uint64 // data packets lost to residual random loss
	CrashDrops  uint64 // packets flushed by a crash or refused while down
}

// Node is one wireless host.
type Node struct {
	sim    *sim.Simulator
	id     packet.NodeID
	cfg    Config
	radio  *phy.Radio
	mac    *mac.DCF
	ifq    queue.Queue
	router routingProtocol
	aodv   *aodv.Router // non-nil when Protocol == RoutingAODV
	dsr    *dsr.Router  // non-nil when Protocol == RoutingDSR
	agents map[int32]Agent
	ids    *packet.IDGen

	// qewma is the smoothed IFQ length in packets, updated on each data
	// forward; it feeds the DRAI quantizer (instantaneous depth is too
	// bursty to steer senders).
	qewma float64
	// delayEWMA is the smoothed IFQ sojourn time in seconds, updated on
	// each dequeue; it feeds the optional delay input of the DRAI.
	delayEWMA float64

	// down is set while the node is crashed: the radio is silent and
	// every ingress/egress path refuses packets.
	down bool

	// Run-time invariant handles (nil when checking is disabled).
	invQueue     *invariant.Assertion
	invTTL       *invariant.Assertion
	invDRAI      *invariant.Assertion
	someOverflow *invariant.Assertion
	someMarked   *invariant.Assertion
	someLinkFail *invariant.Assertion

	stats Stats
}

// qewmaGain is the per-forward EWMA weight of the queue-length signal.
const qewmaGain = 0.1

// New creates a node at pos attached to ch. ids must be shared by all
// nodes of a simulation.
func New(s *sim.Simulator, ch *phy.Channel, pos topo.Position, id packet.NodeID, ids *packet.IDGen, cfg Config) (*Node, error) {
	if cfg.QueueLimit < 1 {
		return nil, fmt.Errorf("node: queue limit must be >= 1, got %d", cfg.QueueLimit)
	}
	if cfg.ResidualLossRate < 0 || cfg.ResidualLossRate >= 1 {
		return nil, fmt.Errorf("node: ResidualLossRate must be in [0,1), got %g", cfg.ResidualLossRate)
	}
	if cfg.DRAI != nil {
		if err := cfg.DRAI.Validate(); err != nil {
			return nil, err
		}
	}
	n := &Node{
		sim:    s,
		id:     id,
		cfg:    cfg,
		agents: make(map[int32]Agent),
		ids:    ids,
	}
	if cfg.Invariants != nil {
		n.invQueue = cfg.Invariants.Always("queue-bound")
		n.invTTL = cfg.Invariants.Always("ttl-bound")
		n.invDRAI = cfg.Invariants.Always("drai-monotone")
		n.someOverflow = cfg.Invariants.Sometimes("queue-overflow")
		n.someMarked = cfg.Invariants.Sometimes("congestion-marked")
		n.someLinkFail = cfg.Invariants.Sometimes("link-failure-detected")
	}

	if cfg.UseRED {
		red := cfg.RED
		red.Limit = cfg.QueueLimit
		red.Rand = s.Rand()
		q, err := queue.NewRED(red)
		if err != nil {
			return nil, err
		}
		n.ifq = q
	} else {
		q, err := queue.NewDropTail(cfg.QueueLimit)
		if err != nil {
			return nil, err
		}
		n.ifq = q
	}

	n.radio = ch.AddRadio(pos, macBridge{n: n})
	m, err := mac.New(s, n.radio, id, n, cfg.MAC)
	if err != nil {
		return nil, err
	}
	n.mac = m

	switch cfg.Protocol {
	case RoutingDSR:
		r, err := dsr.New(s, id, n, ids, cfg.DSR)
		if err != nil {
			return nil, err
		}
		n.dsr = r
		n.router = r
	default:
		r, err := aodv.New(s, id, n, ids, cfg.AODV)
		if err != nil {
			return nil, err
		}
		n.aodv = r
		n.router = r
	}
	return n, nil
}

// macBridge forwards PHY upcalls to the MAC; it exists so the radio can
// be created before the MAC that drives it.
type macBridge struct{ n *Node }

func (b macBridge) OnCarrierBusy()                      { b.n.mac.OnCarrierBusy() }
func (b macBridge) OnCarrierIdle()                      { b.n.mac.OnCarrierIdle() }
func (b macBridge) OnReceive(p *packet.Packet, ok bool) { b.n.mac.OnReceive(p, ok) }
func (b macBridge) OnTxDone(p *packet.Packet)           { b.n.mac.OnTxDone(p) }

// ID returns the node's address.
func (n *Node) ID() packet.NodeID { return n.id }

// Stats returns a copy of the node counters.
func (n *Node) Stats() Stats { return n.stats }

// MACStats returns the node's MAC counters.
func (n *Node) MACStats() mac.Stats { return n.mac.Stats() }

// MACUtilization returns the node's smoothed channel busy fraction.
func (n *Node) MACUtilization() float64 { return n.mac.Utilization() }

// RouterStats returns the node's routing-protocol counters.
func (n *Node) RouterStats() RoutingStats {
	if n.dsr != nil {
		s := n.dsr.Stats()
		return RoutingStats{
			RREQSent:     s.RREQSent,
			RREPSent:     s.RREPSent,
			RERRSent:     s.RERRSent,
			Discoveries:  s.Discoveries,
			DiscoveryOK:  s.DiscoveryOK,
			DiscoveryErr: s.DiscoveryErr,
			LinkFailures: s.LinkFailures,
		}
	}
	s := n.aodv.Stats()
	return RoutingStats{
		RREQSent:     s.RREQSent,
		RREPSent:     s.RREPSent,
		RERRSent:     s.RERRSent,
		Discoveries:  s.Discoveries,
		DiscoveryOK:  s.DiscoveryOK,
		DiscoveryErr: s.DiscoveryErr,
		LinkFailures: s.LinkFailures,
	}
}

// QueueLen returns the current IFQ depth.
func (n *Node) QueueLen() int { return n.ifq.Len() }

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool { return n.down }

// NextHops returns a snapshot of the AODV next-hop table for the
// run-time loop-freedom scan, or nil under DSR (source routing keeps no
// per-hop table to walk).
func (n *Node) NextHops() map[packet.NodeID]packet.NodeID {
	if n.aodv == nil {
		return nil
	}
	return n.aodv.NextHops()
}

// Crash implements fault.NodeControl: the radio goes silent, the IFQ is
// flushed, and MAC plus routing state is wiped. Attached transport
// agents keep their state — like processes on a host whose interface
// died — but every packet they originate while down is refused.
func (n *Node) Crash() {
	if n.down {
		return
	}
	n.down = true
	for {
		pkt := n.ifq.Dequeue()
		if pkt == nil {
			break
		}
		n.stats.CrashDrops++
		n.cfg.Ledger.Dropped(pkt.UID)
		n.record(trace.OpDrop, "node crashed", pkt)
	}
	n.mac.Reset()
	n.router.Reset()
	n.radio.SetDown(true)
	n.qewma = 0
	n.delayEWMA = 0
}

// Reboot implements fault.NodeControl: the radio comes back up with the
// cold-started MAC and routing state Crash left behind.
func (n *Node) Reboot() {
	if !n.down {
		return
	}
	n.down = false
	n.radio.SetDown(false)
}

// Attach registers a transport agent for its flow ID.
func (n *Node) Attach(a Agent) error {
	if _, dup := n.agents[a.FlowID()]; dup {
		return fmt.Errorf("node %v: duplicate agent for flow %d", n.id, a.FlowID())
	}
	n.agents[a.FlowID()] = a
	return nil
}

// Send originates a transport segment from this node. The packet must
// have Dst and TCP set; the node fills in the IP fields and routes it.
func (n *Node) Send(pkt *packet.Packet) {
	if n.down {
		n.stats.CrashDrops++
		n.record(trace.OpDrop, "node down", pkt)
		return
	}
	pkt.UID = n.ids.Next()
	pkt.Kind = packet.KindData
	pkt.Src = n.id
	if pkt.TTL == 0 {
		pkt.TTL = 64
	}
	n.cfg.Ledger.Originate(pkt.UID)
	n.record(trace.OpSend, "", pkt)
	if pkt.Dst == n.id {
		n.deliver(pkt)
		return
	}
	n.router.SendData(pkt)
}

// record emits a trace event when tracing is enabled.
func (n *Node) record(op trace.Op, reason string, pkt *packet.Packet) {
	if n.cfg.Trace == nil {
		return
	}
	n.cfg.Trace.Record(trace.FromPacket(n.sim.Now(), n.id, op, reason, pkt))
}

// --- mac.Upper ---

// NextFrame implements mac.Upper: the MAC pulls from the IFQ.
func (n *Node) NextFrame() *packet.Packet {
	pkt := n.ifq.Dequeue()
	if pkt != nil && pkt.EnqueuedAt > 0 {
		sojourn := (n.sim.Now() - sim.Time(pkt.EnqueuedAt)).Seconds()
		n.delayEWMA = (1-qewmaGain)*n.delayEWMA + qewmaGain*sojourn
	}
	return pkt
}

// QueueDelayEWMA returns the smoothed IFQ sojourn time in seconds.
func (n *Node) QueueDelayEWMA() float64 { return n.delayEWMA }

// OnMACReceive implements mac.Upper.
func (n *Node) OnMACReceive(pkt *packet.Packet) {
	if n.down {
		n.cfg.Ledger.Dropped(pkt.UID)
		return // stale event from before a crash
	}
	switch pkt.Kind {
	case packet.KindRouting:
		n.router.HandleRouting(pkt)
	case packet.KindData:
		if n.cfg.ResidualLossRate > 0 && n.sim.Rand().Float64() < n.cfg.ResidualLossRate {
			n.stats.RandomDrops++
			n.cfg.Ledger.Dropped(pkt.UID)
			n.record(trace.OpDrop, "random loss", pkt)
			return
		}
		if pkt.Dst == n.id {
			n.deliver(pkt)
			return
		}
		pkt.TTL--
		if pkt.TTL <= 0 {
			n.stats.TTLDrops++
			n.cfg.Ledger.Dropped(pkt.UID)
			n.record(trace.OpDrop, "ttl expired", pkt)
			return
		}
		n.invTTL.Check(pkt.TTL < 64, "packet uid %d ttl %d out of range", pkt.UID, pkt.TTL)
		n.router.SendData(pkt)
	}
}

// OnTxSuccess implements mac.Upper.
func (n *Node) OnTxSuccess(pkt *packet.Packet) {}

// OnTxFail implements mac.Upper: MAC retry exhaustion is a link failure.
func (n *Node) OnTxFail(pkt *packet.Packet) {
	if pkt.MACDst == packet.Broadcast {
		return // broadcasts cannot fail
	}
	var failedData *packet.Packet
	if pkt.Kind == packet.KindData {
		failedData = pkt
	}
	n.someLinkFail.Reach()
	n.router.LinkFailure(pkt.MACDst, failedData)
}

// --- aodv.Output ---

// SendRouting implements aodv.Output.
func (n *Node) SendRouting(pkt *packet.Packet, nextHop packet.NodeID) {
	pkt.MACSrc = n.id
	pkt.MACDst = nextHop
	n.enqueue(pkt)
}

// ForwardData implements aodv.Output: transmit a routed data packet to
// its next hop, applying the Muzha router-assist hooks.
func (n *Node) ForwardData(pkt *packet.Packet, nextHop packet.NodeID) {
	if pkt.Src != n.id {
		n.stats.Forwarded++
		n.record(trace.OpForward, "", pkt)
	}
	pkt.MACSrc = n.id
	pkt.MACDst = nextHop
	if n.cfg.DRAI != nil {
		// Quantize this node's congestion — the smoothed IFQ occupancy
		// (including the arriving packet) combined with the MAC channel
		// utilization — and min-stamp it into the AVBW-S option.
		n.qewma = (1-qewmaGain)*n.qewma + qewmaGain*float64(n.ifq.Len()+1)
		occ := n.qewma / float64(n.ifq.Cap())
		util := n.mac.Utilization()
		prevAVBW := pkt.AVBW
		pkt.StampAVBW(n.cfg.DRAI.Combined(occ, util, n.delayEWMA))
		if prevAVBW != 0 {
			n.invDRAI.Check(pkt.AVBW >= 1 && pkt.AVBW <= prevAVBW,
				"packet uid %d avbw %d after %d (stamp must be min-monotone)",
				pkt.UID, pkt.AVBW, prevAVBW)
		}
		if n.cfg.DRAI.ShouldMark(occ, util, n.delayEWMA) {
			if !pkt.CongMarked {
				n.stats.Marked++
				n.record(trace.OpMark, "", pkt)
				n.someMarked.Reach()
			}
			pkt.CongMarked = true
		}
	}
	n.enqueue(pkt)
}

// DropData implements aodv.Output.
func (n *Node) DropData(pkt *packet.Packet, reason string) {
	n.stats.RouteDrops++
	n.cfg.Ledger.Dropped(pkt.UID)
	n.record(trace.OpDrop, reason, pkt)
}

func (n *Node) enqueue(pkt *packet.Packet) {
	if n.down {
		// A routing event scheduled before the crash (e.g. a jittered RREQ
		// rebroadcast) can still try to transmit; refuse it.
		n.stats.CrashDrops++
		n.cfg.Ledger.Dropped(pkt.UID)
		n.record(trace.OpDrop, "node down", pkt)
		return
	}
	pkt.EnqueuedAt = int64(n.sim.Now())
	if !n.ifq.Enqueue(pkt) {
		n.stats.QueueDrops++
		n.cfg.Ledger.Dropped(pkt.UID)
		n.record(trace.OpDrop, "queue overflow", pkt)
		n.someOverflow.Reach()
		return
	}
	n.invQueue.Check(n.ifq.Len() <= n.ifq.Cap(),
		"queue depth %d exceeds limit %d", n.ifq.Len(), n.ifq.Cap())
	n.mac.Kick()
}

func (n *Node) deliver(pkt *packet.Packet) {
	if pkt.TCP == nil {
		return
	}
	a := n.agents[pkt.TCP.FlowID]
	if a == nil {
		n.stats.NoAgentDrop++
		n.cfg.Ledger.Dropped(pkt.UID)
		n.record(trace.OpDrop, "no agent", pkt)
		return
	}
	n.cfg.Ledger.Delivered(pkt.UID)
	n.stats.Delivered++
	n.record(trace.OpRecv, "", pkt)
	a.Recv(pkt)
}
