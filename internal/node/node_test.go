package node

import (
	"testing"

	"muzha/internal/core"
	"muzha/internal/packet"
	"muzha/internal/phy"
	"muzha/internal/sim"
	"muzha/internal/topo"
)

// recorder is a transport agent that logs deliveries.
type recorder struct {
	flow int32
	got  []*packet.Packet
}

func (r *recorder) FlowID() int32         { return r.flow }
func (r *recorder) Recv(p *packet.Packet) { r.got = append(r.got, p) }

// buildChain assembles an h-hop chain of full nodes.
func buildChain(t *testing.T, seed int64, hops int, cfg Config) (*sim.Simulator, []*Node) {
	t.Helper()
	s := sim.New(seed)
	ch, err := phy.NewChannel(s, phy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Chain(hops)
	if err != nil {
		t.Fatal(err)
	}
	var ids packet.IDGen
	nodes := make([]*Node, tp.N())
	for i, pos := range tp.Positions {
		n, err := New(s, ch, pos, packet.NodeID(i), &ids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	return s, nodes
}

func seg(flow int32, dst packet.NodeID, seq int64) *packet.Packet {
	return &packet.Packet{
		Dst:  dst,
		Size: 1460 + packet.IPHeaderSize + packet.TCPHeaderSize,
		TCP:  &packet.TCPHeader{FlowID: flow, Seq: seq},
		AVBW: packet.AVBWMax,
	}
}

func TestEndToEndDeliveryOverChain(t *testing.T) {
	s, nodes := buildChain(t, 1, 4, DefaultConfig())
	sink := &recorder{flow: 1}
	if err := nodes[4].Attach(sink); err != nil {
		t.Fatal(err)
	}

	const n = 10
	for i := 0; i < n; i++ {
		i := i
		s.Schedule(sim.Time(i)*50*sim.Millisecond, func() {
			nodes[0].Send(seg(1, 4, int64(i)*1460))
		})
	}
	s.Run(10 * sim.Second)

	if len(sink.got) != n {
		t.Fatalf("delivered %d/%d segments over 4-hop chain", len(sink.got), n)
	}
	// In-order FIFO path: sequence numbers must arrive ascending.
	for i := 1; i < len(sink.got); i++ {
		if sink.got[i].TCP.Seq < sink.got[i-1].TCP.Seq {
			t.Fatal("segments reordered on a static single path")
		}
	}
	// Intermediate nodes forwarded.
	for _, mid := range nodes[1:4] {
		if mid.Stats().Forwarded == 0 {
			t.Fatalf("node %v forwarded nothing", mid.ID())
		}
	}
	// Discovery happened exactly once at the source.
	if st := nodes[0].RouterStats(); st.Discoveries != 1 || st.DiscoveryOK != 1 {
		t.Fatalf("source discoveries = %+v", st)
	}
}

func TestBidirectionalFlowSharesRoutes(t *testing.T) {
	// ACK-like traffic back from node 4 must reuse the reverse routes
	// established by the forward discovery: no second discovery needed.
	s, nodes := buildChain(t, 2, 4, DefaultConfig())
	fwd := &recorder{flow: 1}
	back := &recorder{flow: 1}
	if err := nodes[4].Attach(fwd); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Attach(back); err != nil {
		t.Fatal(err)
	}

	nodes[0].Send(seg(1, 4, 0))
	s.Run(2 * sim.Second)
	if len(fwd.got) != 1 {
		t.Fatalf("forward segment not delivered")
	}

	ack := &packet.Packet{
		Dst:  0,
		Size: packet.IPHeaderSize + packet.TCPHeaderSize,
		TCP:  &packet.TCPHeader{FlowID: 1, Ack: 1460, IsAck: true},
	}
	nodes[4].Send(ack)
	s.Run(4 * sim.Second)

	if len(back.got) != 1 {
		t.Fatal("reverse segment not delivered")
	}
	if st := nodes[4].RouterStats(); st.Discoveries != 0 {
		t.Fatalf("reverse path triggered %d discoveries, want 0 (reverse routes)", st.Discoveries)
	}
}

func TestAVBWStampedAlongPath(t *testing.T) {
	s, nodes := buildChain(t, 3, 4, DefaultConfig())
	sink := &recorder{flow: 1}
	if err := nodes[4].Attach(sink); err != nil {
		t.Fatal(err)
	}
	nodes[0].Send(seg(1, 4, 0))
	s.Run(2 * sim.Second)

	if len(sink.got) != 1 {
		t.Fatal("segment not delivered")
	}
	got := sink.got[0].AVBW
	// Idle queues everywhere: every node recommends aggressive
	// acceleration, so the minimum along the path is still 5.
	if got != core.DRAIAggressiveAccel {
		t.Fatalf("AVBW at sink = %d, want %d on an idle path", got, core.DRAIAggressiveAccel)
	}
}

func TestDRAIDisabledLeavesPacketUntouched(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DRAI = nil
	s, nodes := buildChain(t, 4, 2, cfg)
	sink := &recorder{flow: 1}
	if err := nodes[2].Attach(sink); err != nil {
		t.Fatal(err)
	}
	nodes[0].Send(seg(1, 2, 0))
	s.Run(2 * sim.Second)

	if len(sink.got) != 1 {
		t.Fatal("segment not delivered")
	}
	if sink.got[0].AVBW != packet.AVBWMax {
		t.Fatalf("AVBW modified with DRAI disabled: %d", sink.got[0].AVBW)
	}
	if sink.got[0].CongMarked {
		t.Fatal("packet marked with DRAI disabled")
	}
}

func TestNoAgentDropCounted(t *testing.T) {
	s, nodes := buildChain(t, 5, 2, DefaultConfig())
	nodes[0].Send(seg(42, 2, 0)) // flow 42 has no agent at the sink
	s.Run(2 * sim.Second)
	if nodes[2].Stats().NoAgentDrop != 1 {
		t.Fatalf("NoAgentDrop = %d, want 1", nodes[2].Stats().NoAgentDrop)
	}
}

func TestDuplicateAgentRejected(t *testing.T) {
	_, nodes := buildChain(t, 6, 1, DefaultConfig())
	if err := nodes[0].Attach(&recorder{flow: 1}); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Attach(&recorder{flow: 1}); err == nil {
		t.Fatal("duplicate agent accepted")
	}
}

func TestLocalDelivery(t *testing.T) {
	_, nodes := buildChain(t, 7, 1, DefaultConfig())
	self := &recorder{flow: 1}
	if err := nodes[0].Attach(self); err != nil {
		t.Fatal(err)
	}
	nodes[0].Send(seg(1, 0, 0))
	if len(self.got) != 1 {
		t.Fatal("self-addressed segment not delivered locally")
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueLimit = 5
	s, nodes := buildChain(t, 8, 2, cfg)
	sink := &recorder{flow: 1}
	if err := nodes[2].Attach(sink); err != nil {
		t.Fatal(err)
	}
	// Blast 60 segments at once: the source IFQ (5) must overflow.
	for i := 0; i < 60; i++ {
		nodes[0].Send(seg(1, 2, int64(i)*1460))
	}
	s.Run(10 * sim.Second)

	if nodes[0].Stats().QueueDrops == 0 {
		t.Fatal("no queue drops under burst overload")
	}
	if len(sink.got) == 0 {
		t.Fatal("nothing delivered despite queue space")
	}
	if len(sink.got) >= 60 {
		t.Fatal("all segments delivered despite tiny queue")
	}
}

func TestCongestionMarkingUnderLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueLimit = 10
	s, nodes := buildChain(t, 9, 2, cfg)
	sink := &recorder{flow: 1}
	if err := nodes[2].Attach(sink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		nodes[0].Send(seg(1, 2, int64(i)*1460))
	}
	s.Run(10 * sim.Second)

	marked := 0
	for _, p := range sink.got {
		if p.CongMarked {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no packets congestion-marked under overload")
	}
	if nodes[0].Stats().Marked == 0 {
		t.Fatal("source marking counter is zero")
	}
}

func TestTTLExpiryDropsPacket(t *testing.T) {
	s, nodes := buildChain(t, 10, 4, DefaultConfig())
	sink := &recorder{flow: 1}
	if err := nodes[4].Attach(sink); err != nil {
		t.Fatal(err)
	}
	p := seg(1, 4, 0)
	p.TTL = 2 // expires after two forwards on a 4-hop path
	nodes[0].Send(p)
	s.Run(2 * sim.Second)

	if len(sink.got) != 0 {
		t.Fatal("TTL-expired packet delivered")
	}
	total := uint64(0)
	for _, n := range nodes {
		total += n.Stats().TTLDrops
	}
	if total != 1 {
		t.Fatalf("TTL drops = %d, want 1", total)
	}
}

func TestREDQueueNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseRED = true
	cfg.RED.MinTh = 3
	cfg.RED.MaxTh = 8
	cfg.RED.MaxP = 0.5
	cfg.RED.Weight = 0.3
	cfg.QueueLimit = 10
	s, nodes := buildChain(t, 11, 2, cfg)
	sink := &recorder{flow: 1}
	if err := nodes[2].Attach(sink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		nodes[0].Send(seg(1, 2, int64(i)*1460))
	}
	s.Run(10 * sim.Second)

	if len(sink.got) == 0 {
		t.Fatal("RED node delivered nothing")
	}
	if nodes[0].Stats().QueueDrops == 0 {
		t.Fatal("RED queue never dropped under overload")
	}
}

func TestInvalidConfigs(t *testing.T) {
	s := sim.New(1)
	ch, _ := phy.NewChannel(s, phy.DefaultConfig())
	var ids packet.IDGen

	cfg := DefaultConfig()
	cfg.QueueLimit = 0
	if _, err := New(s, ch, topo.Position{}, 0, &ids, cfg); err == nil {
		t.Fatal("zero queue limit accepted")
	}

	cfg = DefaultConfig()
	bad := core.DRAIPolicy{Thresholds: []float64{0.5}, Levels: []int{5}}
	cfg.DRAI = &bad
	if _, err := New(s, ch, topo.Position{}, 0, &ids, cfg); err == nil {
		t.Fatal("invalid DRAI policy accepted")
	}

	cfg = DefaultConfig()
	cfg.MAC.CWMin = 0
	if _, err := New(s, ch, topo.Position{}, 0, &ids, cfg); err == nil {
		t.Fatal("invalid MAC config accepted")
	}

	cfg = DefaultConfig()
	cfg.AODV.MaxBuffered = 0
	if _, err := New(s, ch, topo.Position{}, 0, &ids, cfg); err == nil {
		t.Fatal("invalid AODV config accepted")
	}
}

func TestLongChainDelivery(t *testing.T) {
	s, nodes := buildChain(t, 12, 16, DefaultConfig())
	last := packet.NodeID(16)
	sink := &recorder{flow: 1}
	if err := nodes[16].Attach(sink); err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		i := i
		s.Schedule(sim.Time(i)*200*sim.Millisecond, func() {
			nodes[0].Send(seg(1, last, int64(i)*1460))
		})
	}
	s.Run(30 * sim.Second)

	if len(sink.got) != n {
		t.Fatalf("delivered %d/%d over 16 hops", len(sink.got), n)
	}
}
