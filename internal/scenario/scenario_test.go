package scenario

import (
	"strings"
	"testing"

	"muzha"
)

// sampleSpec is a spec exercising every block: topology, multiple
// flows, background, mobility, stack knobs, faults, expect, guards.
const sampleSpec = `{
	"name": "full",
	"seed": 42,
	"duration_ms": 2500,
	"topology": {"kind": "grid", "rows": 3, "cols": 3},
	"flows": [
		{"src": 0, "dst": 8, "variant": "muzha", "start_ms": 100, "window": 16},
		{"src": 2, "dst": 6, "variant": "newreno", "max_bytes": 65536}
	],
	"background": [{"src": 1, "dst": 7, "rate_bps": 50000, "start_ms": 500}],
	"mobility": {"width": 1500, "height": 1500, "min_speed": 1, "max_speed": 5, "pause_ms": 1000, "nodes": [4]},
	"stack": {"queue_limit": 25, "use_red": true, "residual_loss_rate": 0.004},
	"faults": [
		{"kind": "node-crash", "at_ms": 800, "duration_ms": 400, "node": 4},
		{"kind": "partition", "at_ms": 1500, "groups": [[0, 1, 2]]}
	],
	"expect": {"reach": ["fault-injected"]},
	"guards": {"max_events": 1000000}
}`

func TestSpecRoundTripStable(t *testing.T) {
	s, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	c1, err := s.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	// canonical -> Parse -> canonical must be a fixpoint.
	s2, err := Parse(c1)
	if err != nil {
		t.Fatalf("reparse canonical: %v", err)
	}
	c2, err := s2.Canonical()
	if err != nil {
		t.Fatalf("re-canonicalize: %v", err)
	}
	if string(c1) != string(c2) {
		t.Fatalf("canonical form is not a fixpoint:\n%s\nvs\n%s", c1, c2)
	}

	// The same spec must generate the same Config, bit for bit.
	h1 := mustConfigHash(t, s)
	h2 := mustConfigHash(t, s2)
	if h1 != h2 {
		t.Fatalf("round-tripped spec generates a different config: %s vs %s", h1, h2)
	}
}

func mustConfigHash(t *testing.T, s Spec) string {
	t.Helper()
	cfg, err := s.Config()
	if err != nil {
		t.Fatalf("Config: %v", err)
	}
	h, err := cfg.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	return h
}

func TestSpecHashStableUnderKeyReordering(t *testing.T) {
	a := `{"seed": 5, "topology": {"kind": "chain", "hops": 4}, "flows": [{"src": 0, "dst": 4}], "stack": {}}`
	b := `{"flows": [{"dst": 4, "src": 0}], "stack": {}, "topology": {"hops": 4, "kind": "chain"}, "seed": 5}`
	sa, err := Parse([]byte(a))
	if err != nil {
		t.Fatalf("Parse a: %v", err)
	}
	sb, err := Parse([]byte(b))
	if err != nil {
		t.Fatalf("Parse b: %v", err)
	}
	ha, err := sa.Hash()
	if err != nil {
		t.Fatalf("Hash a: %v", err)
	}
	hb, err := sb.Hash()
	if err != nil {
		t.Fatalf("Hash b: %v", err)
	}
	if ha != hb {
		t.Fatalf("key order changed the spec hash: %s vs %s", ha, hb)
	}
	// A semantic change must change the hash.
	sb.Seed = 6
	hc, err := sb.Hash()
	if err != nil {
		t.Fatalf("Hash c: %v", err)
	}
	if hc == ha {
		t.Fatal("different specs share a hash")
	}
}

func TestParseRejectsUnknownFieldWithName(t *testing.T) {
	_, err := Parse([]byte(`{"seed": 1, "topolgy": {"kind": "chain", "hops": 3}}`))
	if err == nil {
		t.Fatal("typoed field accepted")
	}
	if !strings.Contains(err.Error(), "topolgy") {
		t.Fatalf("error does not name the offending field: %v", err)
	}
	if !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("error does not say what went wrong: %v", err)
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	if _, err := Parse([]byte(`{"seed": 1} {"seed": 2}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
}

func TestConfigRejectsBadSpecs(t *testing.T) {
	cases := map[string]string{
		"no topology kind":   `{"seed": 1, "flows": [{"src": 0, "dst": 1}]}`,
		"unknown topology":   `{"seed": 1, "topology": {"kind": "torus", "hops": 3}, "flows": [{"src": 0, "dst": 1}]}`,
		"unknown fault kind": `{"seed": 1, "topology": {"kind": "chain", "hops": 3}, "flows": [{"src": 0, "dst": 3}], "faults": [{"kind": "meteor", "at_ms": 100}]}`,
		"mobile node range":  `{"seed": 1, "topology": {"kind": "chain", "hops": 3}, "flows": [{"src": 0, "dst": 3}], "mobility": {"width": 100, "height": 100, "min_speed": 1, "max_speed": 2, "nodes": [99]}}`,
		"no flows":           `{"seed": 1, "topology": {"kind": "chain", "hops": 3}}`,
	}
	for name, doc := range cases {
		s, err := Parse([]byte(doc))
		if err != nil {
			t.Fatalf("%s: parse should succeed (validation is Config's job): %v", name, err)
		}
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec validated", name)
		}
	}
}

func TestSpecConfigIsDeterministicAndRunnable(t *testing.T) {
	s, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatalf("Config: %v", err)
	}
	if got := cfg.Topology.Nodes(); got != 9 {
		t.Fatalf("grid 3x3 generated %d nodes", got)
	}
	if len(cfg.Flows) != 2 || cfg.Flows[1].MaxBytes != 65536 {
		t.Fatalf("flows not mapped: %+v", cfg.Flows)
	}
	if cfg.QueueLimit != 25 || !cfg.UseRED {
		t.Fatalf("stack knobs not mapped: queue=%d red=%v", cfg.QueueLimit, cfg.UseRED)
	}
	// Inverted booleans: an empty stack block keeps the paper defaults.
	if !cfg.RouterAssist || !cfg.MuzhaLossDiscrimination {
		t.Fatal("zero-value stack lost the paper's router-assist defaults")
	}
	if cfg.Guards.MaxEvents != 1000000 {
		t.Fatalf("guards not mapped: %+v", cfg.Guards)
	}

	res, err := muzha.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := CheckExpect(s, res, ""); err != nil {
		t.Fatalf("expectations not met: %v", err)
	}
}

func TestGeneratorTopologiesSeedTheirOwnFlows(t *testing.T) {
	cases := map[string]struct {
		doc   string
		nodes int
		flows int
	}{
		"rgeo": {
			doc:   `{"seed": 5, "topology": {"kind": "rgeo", "nodes": 60, "width": 1200, "height": 1200, "flows": 4, "flow_variant": "muzha"}}`,
			nodes: 60,
			flows: 4,
		},
		"grid-islands": {
			doc:   `{"seed": 5, "topology": {"kind": "grid-islands", "islands": 2, "rows": 3, "cols": 3, "flows_per_island": 2}}`,
			nodes: 18,
			flows: 4,
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			s, err := Parse([]byte(tc.doc))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if got := s.Topology.NodeCount(); got != tc.nodes {
				t.Fatalf("NodeCount = %d, want %d", got, tc.nodes)
			}
			cfg, err := s.Config()
			if err != nil {
				t.Fatalf("Config: %v", err)
			}
			if got := cfg.Topology.Nodes(); got != tc.nodes {
				t.Fatalf("generated %d nodes, want %d", got, tc.nodes)
			}
			if len(cfg.Flows) != tc.flows {
				t.Fatalf("generated %d flows, want %d", len(cfg.Flows), tc.flows)
			}
			// Determinism: the same spec must hash to the same config.
			if h1, h2 := mustConfigHash(t, s), mustConfigHash(t, s); h1 != h2 {
				t.Fatalf("config hash unstable: %s vs %s", h1, h2)
			}
			// Explicit flows still override the generated mix.
			s.Flows = []Flow{{Src: 0, Dst: 1}}
			cfg2, err := s.Config()
			if err != nil {
				t.Fatalf("Config with explicit flows: %v", err)
			}
			if len(cfg2.Flows) != 1 {
				t.Fatalf("explicit flows not honored: %d", len(cfg2.Flows))
			}
		})
	}
}

func TestStackScalingKnobs(t *testing.T) {
	doc := `{"seed": 1, "topology": {"kind": "chain", "hops": 3},
		"flows": [{"src": 0, "dst": 3}],
		"stack": {"expanding_ring": true, "trace_cap": 128, "trace_flow_limit": -1}}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatalf("Config: %v", err)
	}
	if !cfg.ExpandingRing || cfg.TraceCap != 128 || cfg.TraceFlowLimit != -1 {
		t.Fatalf("scaling knobs not mapped: ring=%v cap=%d limit=%d",
			cfg.ExpandingRing, cfg.TraceCap, cfg.TraceFlowLimit)
	}
}

// TestModernStackAndMobilityKnobs covers the modern-sender additions:
// RED ECN-marking with explicit thresholds, pacing, the new variant
// names and the Manhattan mobility model, end to end through strict
// parse -> Config.
func TestModernStackAndMobilityKnobs(t *testing.T) {
	doc := `{"seed": 3, "topology": {"kind": "chain", "hops": 4},
		"flows": [
			{"src": 0, "dst": 4, "variant": "cubic"},
			{"src": 4, "dst": 0, "variant": "bbr-lite"}
		],
		"mobility": {"model": "manhattan", "width": 720, "height": 360,
			"grid_spacing": 180, "min_speed": 1, "max_speed": 3, "nodes": [2]},
		"stack": {"use_red": true, "red_mark_ecn": true,
			"red_min_th": 5, "red_max_th": 20, "pacing": true,
			"drai_clamp": true}}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatalf("Config: %v", err)
	}
	if cfg.Flows[0].Variant != muzha.CUBIC || cfg.Flows[1].Variant != muzha.BBRLite {
		t.Fatalf("variants not mapped: %+v", cfg.Flows)
	}
	if !cfg.UseRED || !cfg.REDMarkECN || cfg.REDMinTh != 5 || cfg.REDMaxTh != 20 {
		t.Fatalf("RED knobs not mapped: mark=%v min=%d max=%d",
			cfg.REDMarkECN, cfg.REDMinTh, cfg.REDMaxTh)
	}
	if !cfg.Pacing {
		t.Fatal("pacing knob not mapped")
	}
	if !cfg.DRAIClamp {
		t.Fatal("drai_clamp knob not mapped")
	}
	if cfg.Mobility == nil || cfg.Mobility.Model != muzha.MobilityManhattan ||
		cfg.Mobility.GridSpacing != 180 {
		t.Fatalf("mobility model not mapped: %+v", cfg.Mobility)
	}
	for _, marker := range []string{"cubic", "bbr-lite", "ecn-mark", "paced", "manhattan"} {
		if !strings.Contains(s.Summary(), marker) {
			t.Errorf("summary %q lacks %q", s.Summary(), marker)
		}
	}

	// The new stack fields are strict-parsed like every other.
	if _, err := Parse([]byte(`{"seed": 1, "stack": {"red_mark_ecn ": true}}`)); err == nil {
		t.Fatal("typoed RED field accepted")
	}
	if _, err := Parse([]byte(`{"seed": 1, "mobility": {"modell": "manhattan"}}`)); err == nil {
		t.Fatal("typoed mobility field accepted")
	}
}

// TestModernKnobsRejectInvalidCombos pins the validation rules: RED
// knobs require use_red, thresholds must be ordered, and the mobility
// model name is whitelisted.
func TestModernKnobsRejectInvalidCombos(t *testing.T) {
	cases := map[string]string{
		"ecn mark without red": `{"seed": 1, "topology": {"kind": "chain", "hops": 3},
			"flows": [{"src": 0, "dst": 3}], "stack": {"red_mark_ecn": true}}`,
		"thresholds inverted": `{"seed": 1, "topology": {"kind": "chain", "hops": 3},
			"flows": [{"src": 0, "dst": 3}],
			"stack": {"use_red": true, "red_min_th": 20, "red_max_th": 5}}`,
		"unknown mobility model": `{"seed": 1, "topology": {"kind": "chain", "hops": 3},
			"flows": [{"src": 0, "dst": 3}],
			"mobility": {"model": "brownian", "width": 100, "height": 100,
				"min_speed": 1, "max_speed": 2, "nodes": [1]}}`,
		"unknown variant": `{"seed": 1, "topology": {"kind": "chain", "hops": 3},
			"flows": [{"src": 0, "dst": 3, "variant": "compound"}]}`,
		"drai clamp without router assist": `{"seed": 1,
			"topology": {"kind": "chain", "hops": 3},
			"flows": [{"src": 0, "dst": 3, "variant": "cubic"}],
			"stack": {"no_router_assist": true, "drai_clamp": true}}`,
	}
	for name, doc := range cases {
		s, err := Parse([]byte(doc))
		if err != nil {
			t.Fatalf("%s: parse should succeed (validation is Config's job): %v", name, err)
		}
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec validated", name)
		}
	}
}

func TestCheckExpect(t *testing.T) {
	var s Spec
	if err := CheckExpect(s, nil, ""); err != nil {
		t.Fatalf("healthy run vs no expectations: %v", err)
	}
	if err := CheckExpect(s, nil, "panic"); err == nil {
		t.Fatal("unexpected failure class accepted")
	}
	s.Expect = &Expect{Class: "event-budget"}
	if err := CheckExpect(s, nil, "event-budget"); err != nil {
		t.Fatalf("matching class rejected: %v", err)
	}
	if err := CheckExpect(s, nil, ""); err == nil {
		t.Fatal("healthy run accepted when a failure was expected")
	}
	s.Expect = &Expect{Reach: []string{"never-registered"}}
	if err := CheckExpect(s, &muzha.Result{}, ""); err == nil {
		t.Fatal("unreached assertion accepted")
	}
}
