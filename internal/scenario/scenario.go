// Package scenario defines the declarative JSON scenario spec: a
// self-contained, human-writable description of one simulation —
// topology, flow mix, mobility, background load, fault schedule and
// expected assertions — that deterministically generates a muzha.Config.
//
// The spec is the workload currency of the robustness tooling: the
// chaos fuzzer mutates specs, the shrinker minimizes them, repro.json
// files commit them, and the muzhad daemon accepts them as a
// first-class job type (POST /v1/scenarios). Its wire form is
// canonical JSON (internal/canon): encoding a Spec always yields the
// same bytes regardless of field order in the source document, so a
// spec hash is a stable identity. Parsing is strict — unknown fields
// are rejected with the offending name — because a typoed knob in a
// chaos corpus must fail loudly, not silently run the wrong scenario.
//
// All durations are integer milliseconds (smallest unit the paper's
// scenarios need), keeping hand-written specs free of Go duration
// strings and the canonical form free of float formatting concerns.
//
// Boolean knobs are phrased so that the zero value is the paper's
// Table 5.1 default: RouterAssist and MuzhaLossDiscrimination default
// to ON in muzha.DefaultConfig, so the spec exposes them inverted as
// "no_router_assist" / "no_loss_discrimination". An empty stack block
// is exactly the paper's stack.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"muzha"
	"muzha/internal/canon"
)

// Spec is one declarative scenario. The zero value is not runnable —
// a topology and at least one flow are required, like muzha.Config.
type Spec struct {
	// Name is a free-form label carried through corpus entries, job
	// listings and repro files. It does not affect the generated Config
	// but IS part of the spec hash (two differently-named specs are
	// different corpus entries).
	Name string `json:"name,omitempty"`
	// Seed drives all model randomness of the run.
	Seed int64 `json:"seed"`
	// DurationMs is the simulated time in milliseconds (default 3000).
	DurationMs int64 `json:"duration_ms,omitempty"`

	Topology Topology `json:"topology"`
	Flows    []Flow   `json:"flows"`

	Background []Background `json:"background,omitempty"`
	Mobility   *Mobility    `json:"mobility,omitempty"`
	Stack      Stack        `json:"stack"`
	Faults     []Fault      `json:"faults,omitempty"`

	// Expect states the run's expected outcome; nil expects a healthy
	// run. See CheckExpect.
	Expect *Expect `json:"expect,omitempty"`
	// Guards bounds the run; nil runs with the caller's defaults.
	Guards *Guards `json:"guards,omitempty"`
}

// Topology kinds.
const (
	KindChain  = "chain"
	KindCross  = "cross"
	KindGrid   = "grid"
	KindRandom = "random"
	// KindRGeo is a random geometric graph with seeded farthest-pair
	// flows; KindGridIslands is a multi-island lattice with seeded
	// intra-island flows. Both generate their own flow mix, so a spec
	// using them may leave Flows empty (see Spec.Config).
	KindRGeo        = "rgeo"
	KindGridIslands = "grid-islands"
)

// Topology selects and parameterizes a node layout.
type Topology struct {
	// Kind is "chain", "cross", "grid", "random", "rgeo" or
	// "grid-islands".
	Kind string `json:"kind"`
	// Hops parameterizes chain (>=1) and cross (even, >=2).
	Hops int `json:"hops,omitempty"`
	// Rows and Cols parameterize grid and grid-islands (per island).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Nodes, Width, Height and PlacementSeed parameterize random and
	// rgeo. PlacementSeed 0 falls back to the spec seed, so a mutated
	// copy keeps its layout unless the mutation targets placement
	// itself.
	Nodes         int     `json:"nodes,omitempty"`
	Width         float64 `json:"width,omitempty"`
	Height        float64 `json:"height,omitempty"`
	PlacementSeed int64   `json:"placement_seed,omitempty"`
	// Flows is the seeded farthest-pair flow count for rgeo.
	Flows int `json:"flows,omitempty"`
	// Islands, Gap and FlowsPerIsland parameterize grid-islands:
	// Islands copies of a Rows x Cols lattice separated by Gap meters
	// (default 1500, comfortably beyond carrier sense), each carrying
	// FlowsPerIsland seeded flows.
	Islands        int     `json:"islands,omitempty"`
	Gap            float64 `json:"gap,omitempty"`
	FlowsPerIsland int     `json:"flows_per_island,omitempty"`
	// FlowVariant names the congestion control for generated flows
	// ("" = newreno). Only meaningful for the generator kinds.
	FlowVariant string `json:"flow_variant,omitempty"`
}

// NodeCount returns the number of nodes the topology will have, or 0
// for an invalid kind/parameterization.
func (t Topology) NodeCount() int {
	switch t.Kind {
	case KindChain:
		if t.Hops >= 1 {
			return t.Hops + 1
		}
	case KindCross:
		if t.Hops >= 2 && t.Hops%2 == 0 {
			return 2*t.Hops + 1
		}
	case KindGrid:
		if t.Rows >= 1 && t.Cols >= 1 {
			return t.Rows * t.Cols
		}
	case KindRandom, KindRGeo:
		if t.Nodes >= 2 {
			return t.Nodes
		}
	case KindGridIslands:
		if t.Islands >= 1 && t.Rows >= 1 && t.Cols >= 1 {
			return t.Islands * t.Rows * t.Cols
		}
	}
	return 0
}

// generatesFlows reports whether the topology kind seeds its own flow
// mix, letting the spec's Flows list stay empty.
func (t Topology) generatesFlows() bool {
	return t.Kind == KindRGeo || t.Kind == KindGridIslands
}

// Flow is one TCP transfer.
type Flow struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Variant names the congestion control ("" = newreno).
	Variant string `json:"variant,omitempty"`
	StartMs int64  `json:"start_ms,omitempty"`
	// Window is the advertised window in segments (0 = stack default).
	Window int `json:"window,omitempty"`
	// MaxBytes bounds the transfer (0 streams for the whole run).
	MaxBytes int64 `json:"max_bytes,omitempty"`
}

// Background is one constant-bit-rate datagram stream.
type Background struct {
	Src        int     `json:"src"`
	Dst        int     `json:"dst"`
	RateBps    float64 `json:"rate_bps"`
	PacketSize int     `json:"packet_size,omitempty"`
	StartMs    int64   `json:"start_ms,omitempty"`
}

// Mobility enables node motion for the listed nodes. Model selects
// the motion model: "" or "waypoint" for random waypoint, "manhattan"
// for street-grid movement (GridSpacing metres between streets).
type Mobility struct {
	Model       string  `json:"model,omitempty"`
	Width       float64 `json:"width"`
	Height      float64 `json:"height"`
	MinSpeed    float64 `json:"min_speed"`
	MaxSpeed    float64 `json:"max_speed"`
	PauseMs     int64   `json:"pause_ms,omitempty"`
	GridSpacing float64 `json:"grid_spacing,omitempty"`
	Nodes       []int   `json:"nodes"`
}

// Stack holds the protocol-stack knobs. The zero value is the paper's
// Table 5.1 stack (hence the inverted router-assist booleans).
type Stack struct {
	// MSS, Window and QueueLimit take muzha.DefaultConfig's values
	// when 0.
	MSS        int `json:"mss,omitempty"`
	Window     int `json:"window,omitempty"`
	QueueLimit int `json:"queue_limit,omitempty"`

	DelayedAckMs int64 `json:"delayed_ack_ms,omitempty"`
	UseRED       bool  `json:"use_red,omitempty"`
	// REDMarkECN makes RED congestion-mark instead of drop (ECN-style);
	// REDMinTh/REDMaxTh override the thresholds derived from the queue
	// limit. All three require use_red.
	REDMarkECN bool `json:"red_mark_ecn,omitempty"`
	REDMinTh   int  `json:"red_min_th,omitempty"`
	REDMaxTh   int  `json:"red_max_th,omitempty"`
	// Pacing releases segments on a cwnd/SRTT-derived rate schedule
	// instead of ack-clocked bursts. Off by default (historical
	// scheduling); BBR-lite flows pace regardless.
	Pacing   bool `json:"pacing,omitempty"`
	UseDSR   bool `json:"use_dsr,omitempty"`
	NoRTSCTS bool `json:"no_rts_cts,omitempty"`
	// ExpandingRing enables AODV expanding-ring RREQ search (RFC 3561
	// section 6.4). Off by default: the paper's scenarios flood.
	ExpandingRing bool `json:"expanding_ring,omitempty"`

	// TraceCap bounds each per-flow time series (0 = library default);
	// TraceFlowLimit bounds how many flows keep full traces (0 =
	// default 64, negative = unlimited). See muzha.Config.
	TraceCap       int `json:"trace_cap,omitempty"`
	TraceFlowLimit int `json:"trace_flow_limit,omitempty"`

	PacketErrorRate  float64 `json:"packet_error_rate,omitempty"`
	BitErrorRate     float64 `json:"bit_error_rate,omitempty"`
	ResidualLossRate float64 `json:"residual_loss_rate,omitempty"`

	// NoRouterAssist disables DRAI stamping (on by default);
	// NoLossDiscrimination disables the marked/unmarked dup-ACK
	// classification (on by default).
	NoRouterAssist       bool `json:"no_router_assist,omitempty"`
	NoLossDiscrimination bool `json:"no_loss_discrimination,omitempty"`
	// DRAIClamp turns non-Muzha flows into router-assisted hybrids:
	// the echoed path recommendation caps their window (deceleration
	// only). Requires router assist.
	DRAIClamp bool `json:"drai_clamp,omitempty"`
}

// Fault is one scheduled fault-injection event; Kind uses the
// muzha.FaultKind names ("node-crash", "link-blackout", "partition",
// "burst-loss").
type Fault struct {
	Kind       string `json:"kind"`
	AtMs       int64  `json:"at_ms"`
	DurationMs int64  `json:"duration_ms,omitempty"`

	Node   int     `json:"node,omitempty"`
	LinkA  int     `json:"link_a,omitempty"`
	LinkB  int     `json:"link_b,omitempty"`
	OneWay bool    `json:"one_way,omitempty"`
	Groups [][]int `json:"groups,omitempty"`

	BadLossRate     float64 `json:"bad_loss_rate,omitempty"`
	GoodLossRate    float64 `json:"good_loss_rate,omitempty"`
	MeanBurstFrames float64 `json:"mean_burst_frames,omitempty"`
	MeanGapFrames   float64 `json:"mean_gap_frames,omitempty"`
}

// Expect states a spec's expected outcome. A repro spec produced by
// the shrinker sets Class to the failure class it reproduces, making
// the file self-verifying: running it "passes" exactly when the run
// fails that way again.
type Expect struct {
	// Class is the expected failure class (muzha.ClassPanic,
	// muzha.ClassLivelock, ...); "" expects a healthy run.
	Class string `json:"class,omitempty"`
	// Reach lists Sometimes assertions the run must reach.
	Reach []string `json:"reach,omitempty"`
}

// Guards bounds the run's resources; zero fields disable that guard.
type Guards struct {
	WallClockMs    int64  `json:"wall_clock_ms,omitempty"`
	MaxEvents      uint64 `json:"max_events,omitempty"`
	LivelockWindow uint64 `json:"livelock_window,omitempty"`
}

// Parse decodes a spec strictly: unknown fields and trailing data are
// rejected, so a typoed knob fails loudly instead of silently running
// a different scenario.
func Parse(b []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		if f, ok := unknownField(err); ok {
			return Spec{}, fmt.Errorf("scenario: unknown field %s (strict parsing; check the spec reference in EXPERIMENTS.md)", f)
		}
		return Spec{}, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec document")
	}
	return s, nil
}

// unknownField extracts the field name from encoding/json's unknown
// field error, which is only exposed as message text.
func unknownField(err error) (string, bool) {
	const marker = "unknown field "
	msg := err.Error()
	if i := strings.Index(msg, marker); i >= 0 {
		return msg[i+len(marker):], true
	}
	return "", false
}

// Load reads and strictly parses a spec file.
func Load(path string) (Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(b)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// Canonical returns the spec's canonical JSON encoding: sorted keys,
// no insignificant whitespace, zero-valued optional fields omitted.
// Two specs differing only in source formatting or key order
// canonicalize to identical bytes.
func (s Spec) Canonical() ([]byte, error) {
	b, err := canon.JSON(s)
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalize: %w", err)
	}
	return b, nil
}

// Hash returns the SHA-256 of the canonical encoding as lowercase hex
// — the spec's identity in the chaos corpus.
func (s Spec) Hash() (string, error) {
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Duration returns the simulated time, applying the 3 s default.
func (s Spec) Duration() time.Duration {
	if s.DurationMs <= 0 {
		return 3 * time.Second
	}
	return time.Duration(s.DurationMs) * time.Millisecond
}

// Config deterministically generates the runnable muzha.Config: the
// same spec always yields the same Config (and hence, by the engine's
// determinism, the same Result). The generated config is validated
// before being returned.
func (s Spec) Config() (muzha.Config, error) {
	top, err := s.topology()
	if err != nil {
		return muzha.Config{}, err
	}

	cfg := muzha.DefaultConfig()
	cfg.Topology = top
	cfg.Seed = s.Seed
	cfg.Duration = s.Duration()

	if s.Stack.MSS > 0 {
		cfg.MSS = s.Stack.MSS
	}
	if s.Stack.Window > 0 {
		cfg.Window = s.Stack.Window
	}
	if s.Stack.QueueLimit > 0 {
		cfg.QueueLimit = s.Stack.QueueLimit
	}
	cfg.DelayedAck = ms(s.Stack.DelayedAckMs)
	cfg.UseRED = s.Stack.UseRED
	cfg.REDMarkECN = s.Stack.REDMarkECN
	cfg.REDMinTh = s.Stack.REDMinTh
	cfg.REDMaxTh = s.Stack.REDMaxTh
	cfg.Pacing = s.Stack.Pacing
	cfg.UseDSR = s.Stack.UseDSR
	cfg.DisableRTSCTS = s.Stack.NoRTSCTS
	cfg.PacketErrorRate = s.Stack.PacketErrorRate
	cfg.BitErrorRate = s.Stack.BitErrorRate
	cfg.ResidualLossRate = s.Stack.ResidualLossRate
	cfg.RouterAssist = !s.Stack.NoRouterAssist
	cfg.MuzhaLossDiscrimination = !s.Stack.NoLossDiscrimination
	cfg.DRAIClamp = s.Stack.DRAIClamp
	cfg.ExpandingRing = s.Stack.ExpandingRing
	cfg.TraceCap = s.Stack.TraceCap
	cfg.TraceFlowLimit = s.Stack.TraceFlowLimit

	if len(s.Flows) == 0 && s.Topology.generatesFlows() {
		// Generator topologies carry a seeded flow mix; adopt it so a
		// 1000-node spec stays a few lines instead of a few hundred.
		v := muzha.Variant(strings.ToLower(s.Topology.FlowVariant))
		for _, fe := range top.FlowEndpoints() {
			cfg.Flows = append(cfg.Flows, muzha.Flow{Src: fe[0], Dst: fe[1], Variant: v})
		}
	}
	for _, f := range s.Flows {
		cfg.Flows = append(cfg.Flows, muzha.Flow{
			Src:      f.Src,
			Dst:      f.Dst,
			Variant:  muzha.Variant(strings.ToLower(f.Variant)),
			Start:    ms(f.StartMs),
			Window:   f.Window,
			MaxBytes: f.MaxBytes,
		})
	}
	for _, b := range s.Background {
		cfg.Background = append(cfg.Background, muzha.BackgroundFlow{
			Src:        b.Src,
			Dst:        b.Dst,
			RateBps:    b.RateBps,
			PacketSize: b.PacketSize,
			Start:      ms(b.StartMs),
		})
	}
	if m := s.Mobility; m != nil {
		n := top.Nodes()
		for _, id := range m.Nodes {
			if id < 0 || id >= n {
				return muzha.Config{}, fmt.Errorf("scenario: mobile node %d out of range [0,%d)", id, n)
			}
		}
		cfg.Mobility = &muzha.Mobility{
			Model:       m.Model,
			Width:       m.Width,
			Height:      m.Height,
			MinSpeed:    m.MinSpeed,
			MaxSpeed:    m.MaxSpeed,
			Pause:       ms(m.PauseMs),
			GridSpacing: m.GridSpacing,
			MobileNodes: append([]int(nil), m.Nodes...),
		}
	}
	for i, f := range s.Faults {
		ev := muzha.FaultEvent{
			Kind:            muzha.FaultKind(f.Kind),
			At:              ms(f.AtMs),
			Duration:        ms(f.DurationMs),
			Node:            f.Node,
			LinkA:           f.LinkA,
			LinkB:           f.LinkB,
			OneWay:          f.OneWay,
			BadLossRate:     f.BadLossRate,
			GoodLossRate:    f.GoodLossRate,
			MeanBurstFrames: f.MeanBurstFrames,
			MeanGapFrames:   f.MeanGapFrames,
		}
		for _, g := range f.Groups {
			ev.Groups = append(ev.Groups, append([]int(nil), g...))
		}
		switch ev.Kind {
		case muzha.FaultNodeCrash, muzha.FaultLinkBlackout, muzha.FaultPartition, muzha.FaultBurstLoss:
		default:
			return muzha.Config{}, fmt.Errorf("scenario: fault %d has unknown kind %q", i, f.Kind)
		}
		cfg.Faults = append(cfg.Faults, ev)
	}
	if g := s.Guards; g != nil {
		cfg.Guards = muzha.RunGuards{
			WallClock:      ms(g.WallClockMs),
			MaxEvents:      g.MaxEvents,
			LivelockWindow: g.LivelockWindow,
		}
	}

	if err := cfg.Validate(); err != nil {
		return muzha.Config{}, fmt.Errorf("scenario: %w", err)
	}
	return cfg, nil
}

// Validate reports whether the spec generates a runnable Config.
func (s Spec) Validate() error {
	_, err := s.Config()
	return err
}

func (s Spec) topology() (muzha.Topology, error) {
	t := s.Topology
	switch t.Kind {
	case KindChain:
		return muzha.ChainTopology(t.Hops)
	case KindCross:
		return muzha.CrossTopology(t.Hops)
	case KindGrid:
		return muzha.GridTopology(t.Rows, t.Cols)
	case KindRandom:
		w, h := t.Width, t.Height
		if w <= 0 {
			w = 1000
		}
		if h <= 0 {
			h = 1000
		}
		seed := t.PlacementSeed
		if seed == 0 {
			seed = s.Seed + 1
		}
		return muzha.RandomTopology(t.Nodes, w, h, seed)
	case KindRGeo:
		w, h := t.Width, t.Height
		if w <= 0 {
			w = 3000
		}
		if h <= 0 {
			h = 3000
		}
		seed := t.PlacementSeed
		if seed == 0 {
			seed = s.Seed + 1
		}
		return muzha.RandomGeometricTopology(t.Nodes, w, h, t.Flows, seed)
	case KindGridIslands:
		gap := t.Gap
		if gap <= 0 {
			gap = 1500
		}
		seed := t.PlacementSeed
		if seed == 0 {
			seed = s.Seed + 1
		}
		return muzha.GridIslandsFlowsTopology(t.Islands, t.Rows, t.Cols, gap, t.FlowsPerIsland, seed)
	case "":
		return muzha.Topology{}, fmt.Errorf("scenario: topology needs a kind (chain|cross|grid|random|rgeo|grid-islands)")
	default:
		return muzha.Topology{}, fmt.Errorf("scenario: unknown topology kind %q", t.Kind)
	}
}

// Summary renders a short human-readable description of the scenario,
// in the style of ChaosSweep's scenario strings.
func (s Spec) Summary() string {
	var b strings.Builder
	switch s.Topology.Kind {
	case KindChain:
		fmt.Fprintf(&b, "chain-%dhop", s.Topology.Hops)
	case KindCross:
		fmt.Fprintf(&b, "cross-%dhop", s.Topology.Hops)
	case KindGrid:
		fmt.Fprintf(&b, "grid-%dx%d", s.Topology.Rows, s.Topology.Cols)
	case KindRandom:
		fmt.Fprintf(&b, "random-%d", s.Topology.Nodes)
	case KindRGeo:
		fmt.Fprintf(&b, "rgeo-%d-f%d", s.Topology.Nodes, s.Topology.Flows)
	case KindGridIslands:
		fmt.Fprintf(&b, "grid-islands-%dx%dx%d-f%d",
			s.Topology.Islands, s.Topology.Rows, s.Topology.Cols, s.Topology.FlowsPerIsland)
	default:
		b.WriteString("?" + s.Topology.Kind)
	}
	for _, f := range s.Flows {
		v := f.Variant
		if v == "" {
			v = "newreno"
		}
		fmt.Fprintf(&b, " %s:%d->%d", v, f.Src, f.Dst)
	}
	if s.Stack.UseDSR {
		b.WriteString(" dsr")
	}
	if s.Stack.UseRED {
		b.WriteString(" red")
	}
	if s.Stack.REDMarkECN {
		b.WriteString(" ecn-mark")
	}
	if s.Stack.Pacing {
		b.WriteString(" paced")
	}
	if s.Stack.ExpandingRing {
		b.WriteString(" ring")
	}
	if s.Mobility != nil {
		if s.Mobility.Model != "" && s.Mobility.Model != "waypoint" {
			fmt.Fprintf(&b, " %s", s.Mobility.Model)
		}
		fmt.Fprintf(&b, " mobile=%v", s.Mobility.Nodes)
	}
	for _, f := range s.Faults {
		fmt.Fprintf(&b, " %s@%.1fs", f.Kind, float64(f.AtMs)/1000)
	}
	return b.String()
}

// CheckExpect verifies a run outcome against the spec's expectations.
// class is the run's failure class ("" for a healthy run, see
// muzha.ChaosRun.FailureClass); res may be nil when the run produced
// no Result (guard abort, panic). It returns nil when every
// expectation held.
func CheckExpect(s Spec, res *muzha.Result, class string) error {
	want := ""
	var reach []string
	if s.Expect != nil {
		want = s.Expect.Class
		reach = s.Expect.Reach
	}
	if class != want {
		if want == "" {
			return fmt.Errorf("scenario: expected a healthy run, got failure class %q", class)
		}
		return fmt.Errorf("scenario: expected failure class %q, got %q", want, orHealthy(class))
	}
	if len(reach) == 0 {
		return nil
	}
	if res == nil {
		return fmt.Errorf("scenario: expected to reach %v but the run produced no result", reach)
	}
	got := make(map[string]bool)
	for _, name := range res.SometimesCoverage() {
		got[name] = true
	}
	var missing []string
	for _, name := range reach {
		if !got[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("scenario: expected Sometimes assertions never reached: %v", missing)
	}
	return nil
}

func orHealthy(class string) string {
	if class == "" {
		return "healthy"
	}
	return class
}

func ms(v int64) time.Duration { return time.Duration(v) * time.Millisecond }
