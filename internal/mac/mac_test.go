package mac

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/phy"
	"muzha/internal/sim"
	"muzha/internal/topo"
)

// stubUpper is a scripted network layer: a FIFO of frames to send plus
// recorders for every upcall.
type stubUpper struct {
	queue     []*packet.Packet
	received  []*packet.Packet
	succeeded []*packet.Packet
	failed    []*packet.Packet
}

func (u *stubUpper) OnMACReceive(p *packet.Packet) { u.received = append(u.received, p) }
func (u *stubUpper) OnTxSuccess(p *packet.Packet)  { u.succeeded = append(u.succeeded, p) }
func (u *stubUpper) OnTxFail(p *packet.Packet)     { u.failed = append(u.failed, p) }
func (u *stubUpper) NextFrame() *packet.Packet {
	if len(u.queue) == 0 {
		return nil
	}
	p := u.queue[0]
	u.queue = u.queue[1:]
	return p
}

type testNode struct {
	mac   *DCF
	upper *stubUpper
	radio *phy.Radio
}

// buildNodes wires n MACs to a fresh channel at the given positions.
func buildNodes(t *testing.T, seed int64, cfg Config, positions []topo.Position) (*sim.Simulator, []*testNode) {
	return buildNodesPhy(t, seed, cfg, phy.DefaultConfig(), positions)
}

// buildNodesPhy is buildNodes with a custom channel configuration.
func buildNodesPhy(t *testing.T, seed int64, cfg Config, phyCfg phy.Config, positions []topo.Position) (*sim.Simulator, []*testNode) {
	t.Helper()
	s := sim.New(seed)
	ch, err := phy.NewChannel(s, phyCfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*testNode, len(positions))
	for i, pos := range positions {
		up := &stubUpper{}
		n := &testNode{upper: up}
		radioHolder := &deferredMAC{}
		n.radio = ch.AddRadio(pos, radioHolder)
		m, err := New(s, n.radio, packet.NodeID(i), up, cfg)
		if err != nil {
			t.Fatal(err)
		}
		radioHolder.m = m
		n.mac = m
		nodes[i] = n
	}
	return s, nodes
}

// deferredMAC lets us create the radio before the DCF that drives it.
type deferredMAC struct{ m *DCF }

func (d *deferredMAC) OnCarrierBusy()                      { d.m.OnCarrierBusy() }
func (d *deferredMAC) OnCarrierIdle()                      { d.m.OnCarrierIdle() }
func (d *deferredMAC) OnReceive(p *packet.Packet, ok bool) { d.m.OnReceive(p, ok) }
func (d *deferredMAC) OnTxDone(p *packet.Packet)           { d.m.OnTxDone(p) }

var uidGen packet.IDGen

func frameTo(dst packet.NodeID, size int) *packet.Packet {
	return &packet.Packet{
		UID:    uidGen.Next(),
		Kind:   packet.KindData,
		Size:   size,
		MACDst: dst,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.SlotTime = 0 },
		func(c *Config) { c.SIFS = 0 },
		func(c *Config) { c.DIFS = c.SIFS },
		func(c *Config) { c.CWMin = 0 },
		func(c *Config) { c.CWMax = c.CWMin - 1 },
		func(c *Config) { c.ShortRetryLimit = 0 },
		func(c *Config) { c.LongRetryLimit = 0 },
		func(c *Config) { c.RTSThreshold = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnicastDelivery(t *testing.T) {
	s, nodes := buildNodes(t, 1, DefaultConfig(), []topo.Position{{X: 0}, {X: 200}})
	pkt := frameTo(1, 1000)
	nodes[0].upper.queue = append(nodes[0].upper.queue, pkt)
	nodes[0].mac.Kick()
	s.Run(sim.Second)

	if len(nodes[1].upper.received) != 1 || nodes[1].upper.received[0] != pkt {
		t.Fatalf("receiver got %d frames", len(nodes[1].upper.received))
	}
	if len(nodes[0].upper.succeeded) != 1 {
		t.Fatalf("sender success upcalls = %d, want 1", len(nodes[0].upper.succeeded))
	}
	st := nodes[0].mac.Stats()
	if st.RTSSent != 1 || st.DataSent != 1 {
		t.Fatalf("sender stats = %+v, want 1 RTS and 1 data frame", st)
	}
	rst := nodes[1].mac.Stats()
	if rst.CTSSent != 1 || rst.ACKSent != 1 {
		t.Fatalf("receiver stats = %+v, want 1 CTS and 1 ACK", rst)
	}
	if !nodes[0].mac.Idle() {
		t.Fatal("sender MAC should be idle after delivery")
	}
}

func TestUnicastWithoutRTS(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTSThreshold = 1 << 20 // never use RTS
	s, nodes := buildNodes(t, 1, cfg, []topo.Position{{X: 0}, {X: 200}})
	pkt := frameTo(1, 1000)
	nodes[0].upper.queue = append(nodes[0].upper.queue, pkt)
	nodes[0].mac.Kick()
	s.Run(sim.Second)

	if len(nodes[1].upper.received) != 1 {
		t.Fatal("frame not delivered without RTS")
	}
	st := nodes[0].mac.Stats()
	if st.RTSSent != 0 {
		t.Fatalf("RTS sent despite high threshold: %+v", st)
	}
	if rst := nodes[1].mac.Stats(); rst.ACKSent != 1 || rst.CTSSent != 0 {
		t.Fatalf("receiver stats = %+v", rst)
	}
}

func TestBroadcastDelivery(t *testing.T) {
	s, nodes := buildNodes(t, 1, DefaultConfig(),
		[]topo.Position{{X: 0}, {X: 200}, {X: -200}, {X: 800}})
	pkt := frameTo(packet.Broadcast, 64)
	pkt.Kind = packet.KindRouting
	nodes[0].upper.queue = append(nodes[0].upper.queue, pkt)
	nodes[0].mac.Kick()
	s.Run(sim.Second)

	if len(nodes[1].upper.received) != 1 || len(nodes[2].upper.received) != 1 {
		t.Fatal("broadcast not delivered to in-range nodes")
	}
	if len(nodes[3].upper.received) != 0 {
		t.Fatal("broadcast delivered beyond range")
	}
	if len(nodes[0].upper.succeeded) != 1 {
		t.Fatal("broadcast should report success after transmission")
	}
	// No control frames for broadcast.
	if st := nodes[1].mac.Stats(); st.CTSSent != 0 || st.ACKSent != 0 {
		t.Fatalf("control frames sent for broadcast: %+v", st)
	}
}

func TestRetryExhaustionReportsLinkFailure(t *testing.T) {
	// Destination far out of range: every RTS goes unanswered.
	s, nodes := buildNodes(t, 1, DefaultConfig(), []topo.Position{{X: 0}, {X: 5000}})
	pkt := frameTo(1, 1000)
	nodes[0].upper.queue = append(nodes[0].upper.queue, pkt)
	nodes[0].mac.Kick()
	s.Run(5 * sim.Second)

	if len(nodes[0].upper.failed) != 1 || nodes[0].upper.failed[0] != pkt {
		t.Fatalf("failed upcalls = %d, want 1", len(nodes[0].upper.failed))
	}
	st := nodes[0].mac.Stats()
	if st.RTSSent != uint64(DefaultConfig().ShortRetryLimit) {
		t.Fatalf("RTS attempts = %d, want %d", st.RTSSent, DefaultConfig().ShortRetryLimit)
	}
	if st.Drops != 1 {
		t.Fatalf("drops = %d, want 1", st.Drops)
	}
	if !nodes[0].mac.Idle() {
		t.Fatal("MAC should be idle after giving up")
	}
}

func TestQueueDrainsMultipleFrames(t *testing.T) {
	s, nodes := buildNodes(t, 2, DefaultConfig(), []topo.Position{{X: 0}, {X: 200}})
	const n = 20
	for i := 0; i < n; i++ {
		nodes[0].upper.queue = append(nodes[0].upper.queue, frameTo(1, 1460))
	}
	nodes[0].mac.Kick()
	s.Run(2 * sim.Second)

	if got := len(nodes[1].upper.received); got != n {
		t.Fatalf("delivered %d frames, want %d", got, n)
	}
	if got := len(nodes[0].upper.succeeded); got != n {
		t.Fatalf("success upcalls = %d, want %d", got, n)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	s, nodes := buildNodes(t, 3, DefaultConfig(), []topo.Position{{X: 0}, {X: 200}})
	const n = 10
	for i := 0; i < n; i++ {
		nodes[0].upper.queue = append(nodes[0].upper.queue, frameTo(1, 1000))
		nodes[1].upper.queue = append(nodes[1].upper.queue, frameTo(0, 1000))
	}
	nodes[0].mac.Kick()
	nodes[1].mac.Kick()
	s.Run(5 * sim.Second)

	if len(nodes[1].upper.received) != n || len(nodes[0].upper.received) != n {
		t.Fatalf("bidirectional delivery: a->b %d, b->a %d, want %d each",
			len(nodes[1].upper.received), len(nodes[0].upper.received), n)
	}
}

func TestHiddenTerminalsRecoverViaRTS(t *testing.T) {
	// Classic hidden-terminal: with carrier sense limited to the TX
	// range, 0 and 2 cannot hear each other and both send to 1 in the
	// middle. The CTS sets the other sender's NAV, so data frames are
	// protected; only short RTS frames collide and retries recover.
	phyCfg := phy.DefaultConfig()
	phyCfg.CSRange = 250
	s, nodes := buildNodesPhy(t, 4, DefaultConfig(), phyCfg,
		[]topo.Position{{X: 0}, {X: 250}, {X: 500}})
	const n = 15
	for i := 0; i < n; i++ {
		nodes[0].upper.queue = append(nodes[0].upper.queue, frameTo(1, 1460))
		nodes[2].upper.queue = append(nodes[2].upper.queue, frameTo(1, 1460))
	}
	nodes[0].mac.Kick()
	nodes[2].mac.Kick()
	s.Run(10 * sim.Second)

	if got := len(nodes[1].upper.received); got != 2*n {
		t.Fatalf("delivered %d frames under hidden terminals, want %d", got, 2*n)
	}
}

func TestChainInterferenceCausesContentionLoss(t *testing.T) {
	// The paper's contention-loss mechanism: with the NS-2 550 m CS
	// range, a transmitter two hops away (750 m) is inaudible to the
	// sender but interferes at its receiver (500 m away). Under
	// saturation some frames exhaust their retries — these MAC drops
	// are what AODV interprets as link failures. The MAC must stay
	// live (conservation: every frame either succeeds or fails) and
	// still deliver the majority.
	s, nodes := buildNodes(t, 12, DefaultConfig(),
		[]topo.Position{{X: 0}, {X: 250}, {X: 750}, {X: 1000}})
	const n = 25
	for i := 0; i < n; i++ {
		nodes[0].upper.queue = append(nodes[0].upper.queue, frameTo(1, 1460))
		nodes[2].upper.queue = append(nodes[2].upper.queue, frameTo(3, 1460))
	}
	nodes[0].mac.Kick()
	nodes[2].mac.Kick()
	s.Run(30 * sim.Second)

	for _, i := range []int{0, 2} {
		done := len(nodes[i].upper.succeeded) + len(nodes[i].upper.failed)
		if done != n {
			t.Fatalf("sender %d: %d success + %d fail != %d sent",
				i, len(nodes[i].upper.succeeded), len(nodes[i].upper.failed), n)
		}
	}
	delivered := len(nodes[1].upper.received) + len(nodes[3].upper.received)
	if delivered < 2*n*6/10 {
		t.Fatalf("only %d/%d frames survived chain interference", delivered, 2*n)
	}
}

func TestContendersShareChannelWithoutLoss(t *testing.T) {
	// Two senders in range of each other and of the receiver: carrier
	// sensing plus backoff must deliver all frames.
	s, nodes := buildNodes(t, 5, DefaultConfig(),
		[]topo.Position{{X: 0}, {X: 125}, {X: 250}})
	const n = 25
	for i := 0; i < n; i++ {
		nodes[0].upper.queue = append(nodes[0].upper.queue, frameTo(1, 1460))
		nodes[2].upper.queue = append(nodes[2].upper.queue, frameTo(1, 1460))
	}
	nodes[0].mac.Kick()
	nodes[2].mac.Kick()
	s.Run(10 * sim.Second)

	if got := len(nodes[1].upper.received); got != 2*n {
		t.Fatalf("delivered %d/%d frames between two contenders", got, 2*n)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Drop MAC ACKs at random via high control-frame-unfriendly BER is
	// hard to target; instead simulate an ACK loss by a one-off
	// interference burst is fragile. Simplest deterministic approach:
	// deliver the same frame UID twice through the PHY by retrying at
	// the sender with a forced timeout. We emulate the effect directly:
	// feed OnReceive the same data frame twice.
	s, nodes := buildNodes(t, 6, DefaultConfig(), []topo.Position{{X: 0}, {X: 200}})
	_ = s
	pkt := frameTo(1, 500)
	pkt.MACSrc = 0
	nodes[1].mac.OnReceive(pkt, true)
	nodes[1].mac.OnReceive(pkt, true)

	if len(nodes[1].upper.received) != 1 {
		t.Fatalf("duplicate frame delivered %d times", len(nodes[1].upper.received))
	}
	if st := nodes[1].mac.Stats(); st.Duplicates != 1 {
		t.Fatalf("duplicate counter = %d, want 1", st.Duplicates)
	}
}

func TestNAVBlocksThirdParty(t *testing.T) {
	// Node 2 overhears node 0's RTS to node 1 and must defer its own
	// transmission until the exchange completes.
	s, nodes := buildNodes(t, 7, DefaultConfig(),
		[]topo.Position{{X: 0}, {X: 200}, {X: 120}})
	big := frameTo(1, 1460)
	nodes[0].upper.queue = append(nodes[0].upper.queue, big)
	nodes[0].mac.Kick()

	// Node 2 wants the channel shortly after node 0 starts contending.
	s.Schedule(100*sim.Microsecond, func() {
		nodes[2].upper.queue = append(nodes[2].upper.queue, frameTo(1, 100))
		nodes[2].mac.Kick()
	})
	s.Run(sim.Second)

	if len(nodes[1].upper.received) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(nodes[1].upper.received))
	}
	// Node 2 overheard node 0's RTS (or the receiver's CTS) at some
	// point and must have recorded a NAV reservation.
	if nodes[2].mac.navUntil == 0 {
		t.Fatal("node 2 never set its NAV from the overheard exchange")
	}
}

func TestEIFSAfterCorruptedFrame(t *testing.T) {
	s, nodes := buildNodes(t, 8, DefaultConfig(), []topo.Position{{X: 0}, {X: 200}})
	m := nodes[0].mac
	m.OnReceive(&packet.Packet{UID: 999, Kind: packet.KindData, MACDst: 5}, false)
	if !m.useEIFS {
		t.Fatal("corrupted reception did not arm EIFS")
	}
	// A subsequent good frame clears the EIFS condition.
	m.OnReceive(&packet.Packet{UID: 1000, Kind: packet.KindData, MACDst: 5, MACDur: 0}, true)
	if m.useEIFS {
		t.Fatal("good reception did not clear EIFS")
	}
	_ = s
}

func TestKickWhileBusyIsIgnored(t *testing.T) {
	s, nodes := buildNodes(t, 9, DefaultConfig(), []topo.Position{{X: 0}, {X: 200}})
	nodes[0].upper.queue = append(nodes[0].upper.queue, frameTo(1, 1000), frameTo(1, 1000))
	nodes[0].mac.Kick()
	nodes[0].mac.Kick() // second kick must not double-start
	s.Run(sim.Second)

	if len(nodes[1].upper.received) != 2 {
		t.Fatalf("delivered %d, want 2", len(nodes[1].upper.received))
	}
}

func TestManyContendersAllDeliver(t *testing.T) {
	// Five stations all in range of a central receiver, saturated.
	pos := []topo.Position{
		{X: 0},
		{X: 100}, {X: -100}, {X: 0, Y: 100}, {X: 0, Y: -100}, {X: 70, Y: 70},
	}
	s, nodes := buildNodes(t, 10, DefaultConfig(), pos)
	const per = 8
	for i := 1; i <= 5; i++ {
		for j := 0; j < per; j++ {
			nodes[i].upper.queue = append(nodes[i].upper.queue, frameTo(0, 1000))
		}
		nodes[i].mac.Kick()
	}
	s.Run(20 * sim.Second)

	if got := len(nodes[0].upper.received); got != 5*per {
		t.Fatalf("delivered %d/%d frames with 5 contenders", got, 5*per)
	}
}

func TestThroughputUpperBoundSingleHop(t *testing.T) {
	// Sanity-check DCF efficiency: 1460-byte frames over one hop at
	// 2 Mbps with RTS/CTS should land in the 1.0-1.8 Mbps range.
	s, nodes := buildNodes(t, 11, DefaultConfig(), []topo.Position{{X: 0}, {X: 200}})
	const n = 200
	for i := 0; i < n; i++ {
		nodes[0].upper.queue = append(nodes[0].upper.queue, frameTo(1, 1460+40))
	}
	nodes[0].mac.Kick()
	end := s.RunAll()

	if got := len(nodes[1].upper.received); got != n {
		t.Fatalf("delivered %d/%d", got, n)
	}
	bits := float64(n * 1500 * 8)
	mbps := bits / end.Seconds() / 1e6
	if mbps < 1.0 || mbps > 1.9 {
		t.Fatalf("single-hop goodput = %.2f Mbps, outside DCF plausibility [1.0, 1.9]", mbps)
	}
}

func TestUtilizationTracksBusyFraction(t *testing.T) {
	s, nodes := buildNodes(t, 20, DefaultConfig(), []topo.Position{{X: 0}, {X: 200}})
	// Saturate: many back-to-back frames. The estimator folds lazily, so
	// poll it at the cadence the network layer does (per forwarded
	// packet, here every window).
	for i := 0; i < 400; i++ {
		nodes[0].upper.queue = append(nodes[0].upper.queue, frameTo(1, 1460))
	}
	nodes[0].mac.Kick()
	var busy float64
	var tick func()
	tick = func() {
		busy = nodes[0].mac.Utilization()
		nodes[1].mac.Utilization()
		s.Schedule(100*sim.Millisecond, tick)
	}
	s.Schedule(100*sim.Millisecond, tick)
	s.Run(2 * sim.Second)

	if busy < 0.5 {
		t.Fatalf("sender utilization = %.2f under saturation", busy)
	}
	if u := nodes[1].mac.Utilization(); u < 0.5 {
		t.Fatalf("receiver utilization = %.2f under saturation", u)
	}

	// After a long idle stretch (queue drained) the estimate decays.
	nodes[0].upper.queue = nil
	s.Run(12 * sim.Second)
	if u := nodes[0].mac.Utilization(); u > 0.3 {
		t.Fatalf("utilization did not decay after idle: %.2f", u)
	}
}

func TestUtilizationIdleIsZero(t *testing.T) {
	s, nodes := buildNodes(t, 21, DefaultConfig(), []topo.Position{{X: 0}, {X: 200}})
	s.Run(2 * sim.Second)
	if u := nodes[0].mac.Utilization(); u != 0 {
		t.Fatalf("idle utilization = %.2f, want 0", u)
	}
}
