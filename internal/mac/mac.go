// Package mac implements the IEEE 802.11 Distributed Coordination
// Function (DCF): CSMA/CA with slotted binary-exponential backoff,
// optional RTS/CTS virtual carrier sensing (NAV), SIFS-spaced
// control-frame exchanges, EIFS deferral after corrupted frames, and
// retry limits that report link failures to the routing layer.
//
// The model matches the NS-2 802.11 MAC the paper's simulations use:
// every unicast data frame is protected by RTS/CTS (NS-2's default RTS
// threshold of 0), broadcast frames are sent unprotected after backoff,
// and retry exhaustion is the signal AODV interprets as a broken link.
package mac

import (
	"fmt"

	"muzha/internal/packet"
	"muzha/internal/phy"
	"muzha/internal/sim"
)

// Upper is the interface the network layer provides to the MAC.
type Upper interface {
	// OnMACReceive delivers an intact, deduplicated frame addressed to
	// this node (or broadcast).
	OnMACReceive(pkt *packet.Packet)
	// OnTxSuccess reports that pkt was delivered (MAC ACK received, or
	// broadcast transmitted).
	OnTxSuccess(pkt *packet.Packet)
	// OnTxFail reports that pkt was dropped after exhausting MAC
	// retries; routing treats this as a link failure to pkt.MACDst.
	OnTxFail(pkt *packet.Packet)
	// NextFrame hands the MAC the next frame to transmit, or nil when
	// the interface queue is empty.
	NextFrame() *packet.Packet
}

// Config holds DCF timing and retry parameters. Defaults follow 802.11
// DSSS at 2 Mbps, matching the paper's Table 5.1 setup.
type Config struct {
	SlotTime sim.Time
	SIFS     sim.Time
	DIFS     sim.Time
	CWMin    int // initial contention window (slots-1)
	CWMax    int
	// ShortRetryLimit bounds RTS attempts and unprotected unicast data
	// attempts (802.11 SSRC, dot11ShortRetryLimit = 7).
	ShortRetryLimit int
	// LongRetryLimit bounds RTS-protected data attempts
	// (802.11 SLRC, dot11LongRetryLimit = 4).
	LongRetryLimit int
	// RTSThreshold is the frame size in bytes at or above which RTS/CTS
	// is used. 0 protects every unicast frame (the NS-2 default).
	RTSThreshold int
}

// DefaultConfig returns 802.11 DSSS parameters.
func DefaultConfig() Config {
	return Config{
		SlotTime:        20 * sim.Microsecond,
		SIFS:            10 * sim.Microsecond,
		DIFS:            50 * sim.Microsecond,
		CWMin:           31,
		CWMax:           1023,
		ShortRetryLimit: 7,
		LongRetryLimit:  4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SlotTime <= 0 || c.SIFS <= 0 || c.DIFS <= c.SIFS:
		return fmt.Errorf("mac: bad timing: slot=%v sifs=%v difs=%v", c.SlotTime, c.SIFS, c.DIFS)
	case c.CWMin < 1 || c.CWMax < c.CWMin:
		return fmt.Errorf("mac: bad contention window: min=%d max=%d", c.CWMin, c.CWMax)
	case c.ShortRetryLimit < 1 || c.LongRetryLimit < 1:
		return fmt.Errorf("mac: retry limits must be >= 1: short=%d long=%d", c.ShortRetryLimit, c.LongRetryLimit)
	case c.RTSThreshold < 0:
		return fmt.Errorf("mac: negative RTS threshold %d", c.RTSThreshold)
	}
	return nil
}

type state int

const (
	stateIdle state = iota + 1
	stateContend
	stateAwaitCTS
	stateAwaitACK
)

// Stats are cumulative MAC counters.
type Stats struct {
	DataSent   uint64 // data/routing frames put on the air (incl. retries)
	DataRecv   uint64 // intact frames delivered up
	RTSSent    uint64
	CTSSent    uint64
	ACKSent    uint64
	Retries    uint64 // retry attempts (RTS or data)
	Drops      uint64 // frames dropped at retry limit (link failures)
	Duplicates uint64 // duplicate receptions suppressed
}

// DCF is one node's 802.11 MAC instance. All methods must be called from
// simulator context (single-threaded).
type DCF struct {
	sim   *sim.Simulator
	radio *phy.Radio
	cfg   Config
	self  packet.NodeID
	up    Upper

	st           state
	cur          *packet.Packet // frame being delivered
	usingRTS     bool
	cw           int
	backoffSlots int
	ssrc, slrc   int

	navUntil  sim.Time
	useEIFS   bool
	deferEv   sim.EventRef // DIFS/EIFS wait or next backoff slot
	navEv     sim.EventRef // wake-up at NAV expiry
	timeout   *sim.Timer   // CTS/ACK timeout
	resp      *packet.Packet
	respEv    sim.EventRef // SIFS-scheduled response transmission
	respBusy  bool         // a response frame is scheduled or on the air
	lastSeen  map[packet.NodeID]uint64
	eifs      sim.Time
	ctsWait   sim.Time // timeout after RTS leaves the air
	ackWait   sim.Time // timeout after DATA leaves the air
	dataAfter *packet.Packet

	// Channel-utilization estimator: exact integration of the time the
	// medium is busy (sensed signal or own transmission), folded into an
	// EWMA once per utilWindow. Feeds the Muzha DRAI (available
	// bandwidth estimation, Section 4.3 of the paper).
	busy      bool
	busySince sim.Time
	winStart  sim.Time
	winBusy   sim.Time
	util      float64

	stats Stats
}

// utilWindow is the utilization sampling period; utilGain the EWMA weight
// of each new window.
const (
	utilWindow = 100 * sim.Millisecond
	utilGain   = 0.3
)

// New attaches a DCF MAC to a radio. self is this node's address; up is
// the network layer.
func New(s *sim.Simulator, radio *phy.Radio, self packet.NodeID, up Upper, cfg Config) (*DCF, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctsAir := radio.TxTime(packet.CTSSize, true)
	ackAir := radio.TxTime(packet.MACACKSize, true)
	m := &DCF{
		sim:      s,
		radio:    radio,
		cfg:      cfg,
		self:     self,
		up:       up,
		st:       stateIdle,
		cw:       cfg.CWMin,
		lastSeen: make(map[packet.NodeID]uint64),
		// EIFS = SIFS + ACK airtime + DIFS (802.11-1999 9.2.3.4).
		eifs: cfg.SIFS + ackAir + cfg.DIFS,
		// Timeouts: SIFS turnaround + response airtime + slack for
		// propagation and slot alignment.
		ctsWait: cfg.SIFS + ctsAir + 2*cfg.SlotTime,
		ackWait: cfg.SIFS + ackAir + 2*cfg.SlotTime,
	}
	m.timeout = sim.NewTimer(s, m.onTimeout)
	m.winStart = s.Now()
	m.busySince = s.Now()
	return m, nil
}

// Utilization returns the smoothed fraction of time the medium around
// this node is busy, in [0,1]. Folding is lazy: each call at least one
// utilWindow after the previous fold blends the window's busy fraction
// into the EWMA.
func (m *DCF) Utilization() float64 {
	now := m.sim.Now()
	if m.busy {
		m.winBusy += now - m.busySince
		m.busySince = now
	}
	if w := now - m.winStart; w >= utilWindow {
		m.util = (1-utilGain)*m.util + utilGain*float64(m.winBusy)/float64(w)
		m.winStart = now
		m.winBusy = 0
	}
	return m.util
}

// refreshBusy re-evaluates the busy state and integrates elapsed busy
// time. Called on every carrier or transmit transition.
func (m *DCF) refreshBusy() {
	b := m.radio.CarrierBusy() || m.radio.Transmitting()
	if b == m.busy {
		return
	}
	now := m.sim.Now()
	if m.busy {
		m.winBusy += now - m.busySince
	}
	m.busy = b
	m.busySince = now
}

// Stats returns a copy of the MAC counters.
func (m *DCF) Stats() Stats { return m.stats }

// Reset wipes all volatile MAC state — the frame in flight, contention
// and retry counters, pending responses, the NAV, and the duplicate
// cache — returning the MAC to a cold-start idle. Used by fault
// injection when the node crashes; cumulative stats survive. Late PHY
// upcalls for frames that were in flight at reset time are ignored by
// the idle state machine.
func (m *DCF) Reset() {
	m.st = stateIdle
	m.cur = nil
	m.dataAfter = nil
	m.usingRTS = false
	m.cw = m.cfg.CWMin
	m.backoffSlots = 0
	m.ssrc, m.slrc = 0, 0
	m.cancelDefer()
	m.timeout.Stop()
	m.respEv.Cancel()
	m.respEv = sim.EventRef{}
	m.resp = nil
	m.respBusy = false
	m.navUntil = 0
	m.useEIFS = false
	clear(m.lastSeen)
	m.refreshBusy()
}

// Idle reports whether the MAC has no frame in flight and is not
// contending.
func (m *DCF) Idle() bool { return m.st == stateIdle && m.cur == nil }

// Kick tells the MAC that the interface queue became non-empty. If the
// MAC is idle it pulls the next frame and begins channel access.
func (m *DCF) Kick() {
	if !m.Idle() {
		return
	}
	if next := m.up.NextFrame(); next != nil {
		m.start(next)
	}
}

func (m *DCF) start(pkt *packet.Packet) {
	m.cur = pkt
	m.usingRTS = pkt.MACDst != packet.Broadcast &&
		pkt.Size+packet.MACHeaderSize >= m.cfg.RTSThreshold
	m.st = stateContend
	m.backoffSlots = m.sim.Rand().Intn(m.cw + 1)
	m.resume()
}

// mediumBusy reports whether channel access must pause: physical carrier,
// our own transmission, a scheduled response, or virtual carrier (NAV).
func (m *DCF) mediumBusy() bool {
	return m.radio.CarrierBusy() || m.radio.Transmitting() || m.respBusy ||
		m.sim.Now() < m.navUntil
}

// resume re-evaluates channel access. Idempotent: safe to call from any
// wake-up source.
func (m *DCF) resume() {
	if m.st != stateContend {
		return
	}
	m.cancelDefer()
	if m.mediumBusy() {
		// If only the NAV blocks us, nothing else will wake us up:
		// schedule a recheck at NAV expiry.
		if now := m.sim.Now(); now < m.navUntil {
			m.navEv = m.sim.At(m.navUntil, m.resume)
		}
		return
	}
	wait := m.cfg.DIFS
	if m.useEIFS {
		wait = m.eifs
	}
	m.deferEv = m.sim.Schedule(wait, m.slotTick)
}

func (m *DCF) cancelDefer() {
	m.deferEv.Cancel()
	m.deferEv = sim.EventRef{}
	m.navEv.Cancel()
	m.navEv = sim.EventRef{}
}

func (m *DCF) slotTick() {
	m.deferEv = sim.EventRef{}
	if m.st != stateContend || m.mediumBusy() {
		return
	}
	if m.backoffSlots == 0 {
		m.transmitCur()
		return
	}
	m.deferEv = m.sim.Schedule(m.cfg.SlotTime, func() {
		m.backoffSlots--
		m.slotTick()
	})
}

func (m *DCF) transmitCur() {
	pkt := m.cur
	if m.usingRTS {
		m.sendRTS(pkt)
		return
	}
	m.sendData(pkt)
}

func (m *DCF) dataAir(pkt *packet.Packet) sim.Time {
	return m.radio.TxTime(pkt.Size+packet.MACHeaderSize, false)
}

func (m *DCF) sendRTS(data *packet.Packet) {
	ctsAir := m.radio.TxTime(packet.CTSSize, true)
	ackAir := m.radio.TxTime(packet.MACACKSize, true)
	dur := 3*m.cfg.SIFS + ctsAir + m.dataAir(data) + ackAir
	rts := &packet.Packet{
		Kind:   packet.KindMACControl,
		Ctrl:   packet.CtrlRTS,
		Size:   packet.RTSSize,
		MACSrc: m.self,
		MACDst: data.MACDst,
		MACDur: int64(dur),
	}
	m.st = stateAwaitCTS
	m.stats.RTSSent++
	m.radio.Transmit(rts, m.radio.TxTime(packet.RTSSize, true))
	m.refreshBusy()
}

func (m *DCF) sendData(pkt *packet.Packet) {
	if pkt.MACDst == packet.Broadcast {
		pkt.MACDur = 0
	} else {
		ackAir := m.radio.TxTime(packet.MACACKSize, true)
		pkt.MACDur = int64(m.cfg.SIFS + ackAir)
	}
	pkt.MACSrc = m.self
	if pkt.MACDst == packet.Broadcast {
		m.st = stateContend // completes at OnTxDone
	} else {
		m.st = stateAwaitACK
	}
	m.stats.DataSent++
	m.radio.Transmit(pkt, m.dataAir(pkt))
	m.refreshBusy()
}

// OnTxDone implements phy.MAC.
func (m *DCF) OnTxDone(pkt *packet.Packet) {
	m.refreshBusy()
	switch {
	case pkt == m.resp:
		m.resp = nil
		m.respBusy = false
		m.resume()
	case pkt == m.cur && pkt.MACDst == packet.Broadcast:
		m.finish(true)
	case pkt == m.cur && m.st == stateAwaitACK:
		m.timeout.Reset(m.ackWait)
	case pkt.Ctrl == packet.CtrlRTS && m.st == stateAwaitCTS:
		m.timeout.Reset(m.ctsWait)
	}
}

// OnCarrierBusy implements phy.MAC.
func (m *DCF) OnCarrierBusy() {
	m.refreshBusy()
	if m.st == stateContend {
		m.cancelDefer()
	}
}

// OnCarrierIdle implements phy.MAC.
func (m *DCF) OnCarrierIdle() {
	m.refreshBusy()
	m.resume()
}

// OnReceive implements phy.MAC.
func (m *DCF) OnReceive(pkt *packet.Packet, ok bool) {
	if !ok {
		// Corrupted frame: defer EIFS before the next contention round.
		m.useEIFS = true
		return
	}
	m.useEIFS = false
	if pkt.Kind == packet.KindMACControl {
		m.onControl(pkt)
		return
	}
	if pkt.MACDst == m.self {
		m.scheduleResponse(&packet.Packet{
			Kind:   packet.KindMACControl,
			Ctrl:   packet.CtrlACK,
			Size:   packet.MACACKSize,
			MACSrc: m.self,
			MACDst: pkt.MACSrc,
		})
		if m.lastSeen[pkt.MACSrc] == pkt.UID {
			m.stats.Duplicates++
			return
		}
		m.lastSeen[pkt.MACSrc] = pkt.UID
		m.stats.DataRecv++
		m.up.OnMACReceive(pkt)
		return
	}
	if pkt.MACDst == packet.Broadcast {
		m.stats.DataRecv++
		m.up.OnMACReceive(pkt)
		return
	}
	// Overheard unicast data: honour its NAV reservation (protects the
	// SIFS-spaced MAC ACK).
	m.setNAV(pkt.MACDur)
}

func (m *DCF) onControl(pkt *packet.Packet) {
	switch pkt.Ctrl {
	case packet.CtrlRTS:
		if pkt.MACDst != m.self {
			m.setNAV(pkt.MACDur)
			return
		}
		if m.sim.Now() < m.navUntil {
			return // virtual carrier busy: stay silent (802.11 9.2.5.7)
		}
		ctsAir := m.radio.TxTime(packet.CTSSize, true)
		m.scheduleResponse(&packet.Packet{
			Kind:   packet.KindMACControl,
			Ctrl:   packet.CtrlCTS,
			Size:   packet.CTSSize,
			MACSrc: m.self,
			MACDst: pkt.MACSrc,
			MACDur: pkt.MACDur - int64(m.cfg.SIFS+ctsAir),
		})
	case packet.CtrlCTS:
		if pkt.MACDst != m.self {
			m.setNAV(pkt.MACDur)
			return
		}
		if m.st != stateAwaitCTS || m.cur == nil {
			return
		}
		m.timeout.Stop()
		// Send the data frame one SIFS after the CTS.
		m.st = stateAwaitACK
		data := m.cur
		ackAir := m.radio.TxTime(packet.MACACKSize, true)
		data.MACSrc = m.self
		data.MACDur = int64(m.cfg.SIFS + ackAir)
		m.dataAfter = data
		m.sim.Schedule(m.cfg.SIFS, m.sendDataAfterCTS)
	case packet.CtrlACK:
		if pkt.MACDst != m.self || m.st != stateAwaitACK {
			return
		}
		m.timeout.Stop()
		m.finish(true)
	}
}

func (m *DCF) sendDataAfterCTS() {
	data := m.dataAfter
	m.dataAfter = nil
	if data == nil || data != m.cur || m.st != stateAwaitACK {
		return
	}
	if m.radio.Transmitting() {
		// Should not happen (we stay silent between CTS and data), but
		// fail safe: count as a lost exchange via the ACK timeout.
		m.timeout.Reset(m.ackWait)
		return
	}
	m.stats.DataSent++
	m.radio.Transmit(data, m.dataAir(data))
	m.refreshBusy()
}

// scheduleResponse queues a SIFS-spaced control response (CTS or ACK).
// While a response is pending, this node's own contention is suppressed.
func (m *DCF) scheduleResponse(resp *packet.Packet) {
	if m.respBusy {
		// Already answering another exchange; drop this response. The
		// peer will retry.
		return
	}
	m.respBusy = true
	m.resp = resp
	if m.st == stateContend {
		m.cancelDefer()
	}
	m.respEv = m.sim.Schedule(m.cfg.SIFS, func() {
		m.respEv = sim.EventRef{}
		if m.radio.Transmitting() {
			m.resp = nil
			m.respBusy = false
			return
		}
		switch resp.Ctrl {
		case packet.CtrlCTS:
			m.stats.CTSSent++
		case packet.CtrlACK:
			m.stats.ACKSent++
		}
		m.radio.Transmit(resp, m.radio.TxTime(resp.Size, true))
		m.refreshBusy()
	})
}

func (m *DCF) setNAV(durNanos int64) {
	if durNanos <= 0 {
		return
	}
	until := m.sim.Now() + sim.Time(durNanos)
	if until <= m.navUntil {
		return
	}
	m.navUntil = until
	if m.st == stateContend {
		m.cancelDefer()
		m.navEv = m.sim.At(m.navUntil, m.resume)
	}
}

// onTimeout fires when an expected CTS or ACK did not arrive.
func (m *DCF) onTimeout() {
	switch m.st {
	case stateAwaitCTS:
		m.ssrc++
		m.stats.Retries++
		if m.ssrc >= m.cfg.ShortRetryLimit {
			m.finish(false)
			return
		}
	case stateAwaitACK:
		if m.usingRTS {
			m.slrc++
			m.stats.Retries++
			if m.slrc >= m.cfg.LongRetryLimit {
				m.finish(false)
				return
			}
		} else {
			m.ssrc++
			m.stats.Retries++
			if m.ssrc >= m.cfg.ShortRetryLimit {
				m.finish(false)
				return
			}
		}
	default:
		return
	}
	// Retry: double the contention window and re-contend.
	m.cw = min(2*m.cw+1, m.cfg.CWMax)
	m.st = stateContend
	m.backoffSlots = m.sim.Rand().Intn(m.cw + 1)
	m.resume()
}

// finish completes delivery of the current frame and pulls the next one.
func (m *DCF) finish(ok bool) {
	pkt := m.cur
	m.cur = nil
	m.dataAfter = nil
	m.st = stateIdle
	m.cw = m.cfg.CWMin
	m.ssrc, m.slrc = 0, 0
	m.cancelDefer()
	m.timeout.Stop()
	if ok {
		m.up.OnTxSuccess(pkt)
	} else {
		m.stats.Drops++
		m.up.OnTxFail(pkt)
	}
	if next := m.up.NextFrame(); next != nil {
		m.start(next)
	}
}

var _ phy.MAC = (*DCF)(nil)
