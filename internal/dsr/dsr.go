// Package dsr implements Dynamic Source Routing (Johnson & Maltz), the
// other classical on-demand MANET protocol, as an alternative to AODV for
// the routing-protocol ablation. Route requests flood and accumulate the
// traversed path; the destination reverses it into a route reply; data
// packets then carry the full source route. Nodes keep a route cache and
// remove routes crossing a broken link when the MAC reports a failure.
package dsr

import (
	"fmt"
	"sort"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

// Output is the node-side interface, structurally identical to
// aodv.Output so one node type serves both protocols.
type Output interface {
	SendRouting(pkt *packet.Packet, nextHop packet.NodeID)
	ForwardData(pkt *packet.Packet, nextHop packet.NodeID)
	DropData(pkt *packet.Packet, reason string)
}

// Message sizes in bytes: fixed header plus 4 bytes per recorded hop.
const (
	rreqBase     = 12
	rrepBase     = 12
	rerrSize     = 16
	perHopBytes  = 4
	srcRouteByte = 4 // per-hop source-route header overhead on data
)

// RouteRequest floods toward Dst, accumulating the traversed path
// (excluding Src itself).
type RouteRequest struct {
	ID   uint32
	Src  packet.NodeID
	Dst  packet.NodeID
	Path []packet.NodeID // nodes traversed after Src
}

// ClonePayload implements packet.Cloner.
func (r *RouteRequest) ClonePayload() any {
	c := RouteRequest{ID: r.ID, Src: r.Src, Dst: r.Dst}
	c.Path = make([]packet.NodeID, len(r.Path))
	copy(c.Path, r.Path)
	return &c
}

func (r *RouteRequest) size() int { return rreqBase + perHopBytes*len(r.Path) }

// RouteReply carries the complete route Src..Dst back to the originator.
type RouteReply struct {
	Src   packet.NodeID
	Dst   packet.NodeID
	Route []packet.NodeID // full path: Route[0]==Src, Route[last]==Dst
}

// ClonePayload implements packet.Cloner.
func (r *RouteReply) ClonePayload() any {
	c := RouteReply{Src: r.Src, Dst: r.Dst}
	c.Route = make([]packet.NodeID, len(r.Route))
	copy(c.Route, r.Route)
	return &c
}

func (r *RouteReply) size() int { return rrepBase + perHopBytes*len(r.Route) }

// RouteError reports the broken link From->To back toward the source.
type RouteError struct {
	From packet.NodeID
	To   packet.NodeID
}

// ClonePayload implements packet.Cloner.
func (r *RouteError) ClonePayload() any {
	c := *r
	return &c
}

// Cache bounds applied when the corresponding Config field is zero.
// Both are far above anything the paper's scenarios reach, so eviction
// never fires there.
const (
	DefaultMaxCacheDsts  = 1024
	DefaultSeenCacheSize = 2048
)

// Config holds DSR parameters.
type Config struct {
	// DiscoveryTimeout is the initial route-reply wait, doubling per
	// retry.
	DiscoveryTimeout sim.Time
	// Retries bounds re-floods after the first attempt.
	Retries int
	// MaxBuffered bounds the per-destination send buffer.
	MaxBuffered int
	// MaxRoutesPerDst bounds the route cache fan-out.
	MaxRoutesPerDst int
	// BroadcastJitter de-synchronizes request re-floods.
	BroadcastJitter sim.Time
	// MaxCacheDsts bounds how many destinations the route cache holds;
	// the oldest-inserted destination is evicted first. Zero selects
	// DefaultMaxCacheDsts. Without a bound, learning every prefix of
	// every overheard route grows the cache O(N) dsts x O(N) hops.
	MaxCacheDsts int
	// SeenCacheSize bounds the duplicate-request suppression cache
	// (FIFO eviction). Zero selects DefaultSeenCacheSize.
	SeenCacheSize int
}

// DefaultConfig mirrors the AODV defaults for a fair comparison.
func DefaultConfig() Config {
	return Config{
		DiscoveryTimeout: 500 * sim.Millisecond,
		Retries:          3,
		MaxBuffered:      64,
		MaxRoutesPerDst:  4,
		BroadcastJitter:  10 * sim.Millisecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.DiscoveryTimeout <= 0:
		return fmt.Errorf("dsr: DiscoveryTimeout must be positive, got %v", c.DiscoveryTimeout)
	case c.Retries < 0:
		return fmt.Errorf("dsr: Retries must be >= 0, got %d", c.Retries)
	case c.MaxBuffered < 1:
		return fmt.Errorf("dsr: MaxBuffered must be >= 1, got %d", c.MaxBuffered)
	case c.MaxRoutesPerDst < 1:
		return fmt.Errorf("dsr: MaxRoutesPerDst must be >= 1, got %d", c.MaxRoutesPerDst)
	case c.BroadcastJitter < 0:
		return fmt.Errorf("dsr: BroadcastJitter must be >= 0, got %v", c.BroadcastJitter)
	case c.MaxCacheDsts < 0:
		return fmt.Errorf("dsr: MaxCacheDsts must be >= 0, got %d", c.MaxCacheDsts)
	case c.SeenCacheSize < 0:
		return fmt.Errorf("dsr: SeenCacheSize must be >= 0, got %d", c.SeenCacheSize)
	}
	return nil
}

// Stats are cumulative router counters, aligned with the AODV set.
type Stats struct {
	RREQSent     uint64
	RREPSent     uint64
	RERRSent     uint64
	Discoveries  uint64
	DiscoveryOK  uint64
	DiscoveryErr uint64
	LinkFailures uint64
	CacheHits    uint64
}

type rreqKey struct {
	src packet.NodeID
	id  uint32
}

// seenCache is a bounded duplicate-request suppression set with FIFO
// eviction, mirroring the AODV one: unbounded growth here is O(total
// discoveries in the network) per node.
type seenCache struct {
	cap   int
	m     map[rreqKey]struct{}
	order []rreqKey
	head  int
}

func newSeenCache(capacity int) *seenCache {
	return &seenCache{cap: capacity, m: make(map[rreqKey]struct{})}
}

func (c *seenCache) has(k rreqKey) bool {
	_, ok := c.m[k]
	return ok
}

func (c *seenCache) add(k rreqKey) {
	if _, ok := c.m[k]; ok {
		return
	}
	if len(c.order) < c.cap {
		c.order = append(c.order, k)
	} else {
		delete(c.m, c.order[c.head])
		c.order[c.head] = k
		c.head = (c.head + 1) % c.cap
	}
	c.m[k] = struct{}{}
}

type discovery struct {
	buffer  []*packet.Packet
	retries int
	timer   *sim.Timer
}

// Router is one node's DSR instance.
type Router struct {
	sim  *sim.Simulator
	self packet.NodeID
	out  Output
	cfg  Config
	ids  *packet.IDGen

	rreqID     uint32
	cache      map[packet.NodeID][][]packet.NodeID // dst -> candidate routes
	cacheOrder []packet.NodeID                     // dst insertion order for eviction
	seen       *seenCache
	pending    map[packet.NodeID]*discovery

	stats Stats
}

// New creates a DSR router for node self.
func New(s *sim.Simulator, self packet.NodeID, out Output, ids *packet.IDGen, cfg Config) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxCacheDsts == 0 {
		cfg.MaxCacheDsts = DefaultMaxCacheDsts
	}
	if cfg.SeenCacheSize == 0 {
		cfg.SeenCacheSize = DefaultSeenCacheSize
	}
	return &Router{
		sim:     s,
		self:    self,
		out:     out,
		cfg:     cfg,
		ids:     ids,
		cache:   make(map[packet.NodeID][][]packet.NodeID),
		seen:    newSeenCache(cfg.SeenCacheSize),
		pending: make(map[packet.NodeID]*discovery),
	}, nil
}

// Stats returns a copy of the counters.
func (r *Router) Stats() Stats { return r.stats }

// Reset wipes all volatile protocol state, as a node crash would: the
// route cache, duplicate-suppression set, and in-flight discoveries
// (timers stopped, buffered packets dropped). Cumulative stats survive.
func (r *Router) Reset() {
	dsts := make([]packet.NodeID, 0, len(r.pending))
	for dst := range r.pending {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, dst := range dsts {
		d := r.pending[dst]
		d.timer.Stop()
		for _, pkt := range d.buffer {
			r.out.DropData(pkt, "router reset")
		}
	}
	r.cache = make(map[packet.NodeID][][]packet.NodeID)
	r.cacheOrder = nil
	r.seen = newSeenCache(r.cfg.SeenCacheSize)
	r.pending = make(map[packet.NodeID]*discovery)
	r.rreqID = 0
}

// BestRoute returns the shortest cached route to dst (full path
// self..dst) and whether one exists.
func (r *Router) BestRoute(dst packet.NodeID) ([]packet.NodeID, bool) {
	routes := r.cache[dst]
	if len(routes) == 0 {
		return nil, false
	}
	best := routes[0]
	for _, rt := range routes[1:] {
		if len(rt) < len(best) {
			best = rt
		}
	}
	return best, true
}

// SendData routes a data packet. Freshly originated packets get a source
// route attached; packets already carrying a route advance along it.
func (r *Router) SendData(pkt *packet.Packet) {
	if len(pkt.SrcRoute) > 0 && pkt.Src != r.self {
		// In-transit source-routed packet: advance one hop.
		r.forwardAlongRoute(pkt)
		return
	}
	route, ok := r.BestRoute(pkt.Dst)
	if !ok {
		r.bufferForDiscovery(pkt)
		return
	}
	r.stats.CacheHits++
	r.attachRoute(pkt, route)
	r.forwardAlongRoute(pkt)
}

// attachRoute stamps a source route onto a packet, adjusting the byte
// size for the per-hop route header (replacing any previous route's
// overhead).
func (r *Router) attachRoute(pkt *packet.Packet, route []packet.NodeID) {
	pkt.Size -= srcRouteByte * len(pkt.SrcRoute)
	pkt.SrcRoute = append([]packet.NodeID(nil), route...)
	pkt.RouteHop = 0
	pkt.Size += srcRouteByte * len(route)
}

// forwardAlongRoute transmits the packet to the next node on its source
// route. The route invariant: SrcRoute[RouteHop] == this node.
func (r *Router) forwardAlongRoute(pkt *packet.Packet) {
	idx := pkt.RouteHop
	if idx >= len(pkt.SrcRoute) || pkt.SrcRoute[idx] != r.self {
		// Stale or corrupt route state; resolve locally.
		if route, ok := r.BestRoute(pkt.Dst); ok {
			r.attachRoute(pkt, route)
			idx = 0
		} else {
			r.bufferForDiscovery(pkt)
			return
		}
	}
	if idx+1 >= len(pkt.SrcRoute) {
		r.out.DropData(pkt, "source route exhausted")
		return
	}
	pkt.RouteHop++
	r.out.ForwardData(pkt, pkt.SrcRoute[idx+1])
}

func (r *Router) bufferForDiscovery(pkt *packet.Packet) {
	d := r.pending[pkt.Dst]
	if d == nil {
		d = &discovery{}
		r.pending[pkt.Dst] = d
		r.startDiscovery(pkt.Dst, d)
	}
	if len(d.buffer) >= r.cfg.MaxBuffered {
		r.out.DropData(pkt, "discovery buffer full")
		return
	}
	d.buffer = append(d.buffer, pkt)
}

func (r *Router) startDiscovery(dst packet.NodeID, d *discovery) {
	r.stats.Discoveries++
	r.sendRREQ(dst)
	d.timer = sim.NewTimer(r.sim, func() { r.discoveryTimeout(dst) })
	d.timer.Reset(r.cfg.DiscoveryTimeout)
}

func (r *Router) sendRREQ(dst packet.NodeID) {
	r.rreqID++
	req := &RouteRequest{ID: r.rreqID, Src: r.self, Dst: dst}
	r.seen.add(rreqKey{src: r.self, id: req.ID})
	r.stats.RREQSent++
	r.out.SendRouting(r.routingPacket(req, req.size(), packet.Broadcast), packet.Broadcast)
}

func (r *Router) discoveryTimeout(dst packet.NodeID) {
	d := r.pending[dst]
	if d == nil {
		return
	}
	if d.retries >= r.cfg.Retries {
		delete(r.pending, dst)
		r.stats.DiscoveryErr++
		for _, pkt := range d.buffer {
			r.out.DropData(pkt, "no route after retries")
		}
		return
	}
	d.retries++
	r.sendRREQ(dst)
	d.timer.Reset(r.cfg.DiscoveryTimeout << uint(d.retries))
}

// HandleRouting processes a received DSR message.
func (r *Router) HandleRouting(pkt *packet.Packet) {
	switch msg := pkt.Payload.(type) {
	case *RouteRequest:
		r.handleRREQ(msg)
	case *RouteReply:
		r.handleRREP(pkt, msg)
	case *RouteError:
		r.handleRERR(pkt, msg)
	}
}

func (r *Router) handleRREQ(req *RouteRequest) {
	key := rreqKey{src: req.Src, id: req.ID}
	if r.seen.has(key) {
		return
	}
	r.seen.add(key)

	// Learn the reverse route back to the originator.
	reverse := make([]packet.NodeID, 0, len(req.Path)+2)
	reverse = append(reverse, r.self)
	for i := len(req.Path) - 1; i >= 0; i-- {
		reverse = append(reverse, req.Path[i])
	}
	reverse = append(reverse, req.Src)
	r.learnRoute(reverse)

	if req.Dst == r.self {
		// Build the forward route Src..self and reply along its reverse.
		forward := make([]packet.NodeID, 0, len(req.Path)+2)
		forward = append(forward, req.Src)
		forward = append(forward, req.Path...)
		forward = append(forward, r.self)
		rep := &RouteReply{Src: req.Src, Dst: r.self, Route: forward}
		r.sendReply(rep, reverse)
		return
	}

	// Re-flood with ourselves appended, after jitter.
	fwd := req.ClonePayload().(*RouteRequest)
	fwd.Path = append(fwd.Path, r.self)
	jitter := sim.Time(0)
	if r.cfg.BroadcastJitter > 0 {
		jitter = sim.Time(r.sim.Rand().Int63n(int64(r.cfg.BroadcastJitter)))
	}
	r.sim.Schedule(jitter, func() {
		r.stats.RREQSent++
		r.out.SendRouting(r.routingPacket(fwd, fwd.size(), packet.Broadcast), packet.Broadcast)
	})
}

// sendReply source-routes a route reply along the given path (starting at
// this node).
func (r *Router) sendReply(rep *RouteReply, path []packet.NodeID) {
	if len(path) < 2 {
		return
	}
	pkt := r.routingPacket(rep, rep.size(), path[1])
	pkt.SrcRoute = append([]packet.NodeID(nil), path...)
	pkt.RouteHop = 1
	pkt.Dst = path[len(path)-1]
	r.stats.RREPSent++
	r.out.SendRouting(pkt, path[1])
}

func (r *Router) handleRREP(pkt *packet.Packet, rep *RouteReply) {
	r.learnRoute(routeFrom(rep.Route, r.self))

	if rep.Src == r.self {
		d := r.pending[rep.Dst]
		if d == nil {
			return
		}
		delete(r.pending, rep.Dst)
		d.timer.Stop()
		r.stats.DiscoveryOK++
		route, ok := r.BestRoute(rep.Dst)
		if !ok {
			for _, p := range d.buffer {
				r.out.DropData(p, "route vanished after reply")
			}
			return
		}
		for _, p := range d.buffer {
			r.attachRoute(p, route)
			r.forwardAlongRoute(p)
		}
		return
	}

	// Relay the reply along its source route.
	idx := pkt.RouteHop
	if idx < len(pkt.SrcRoute) && pkt.SrcRoute[idx] == r.self && idx+1 < len(pkt.SrcRoute) {
		pkt.RouteHop++
		r.out.SendRouting(pkt, pkt.SrcRoute[idx+1])
	}
}

func (r *Router) handleRERR(pkt *packet.Packet, rerr *RouteError) {
	r.purgeLink(rerr.From, rerr.To)
	// Relay toward the source-route end.
	idx := pkt.RouteHop
	if idx < len(pkt.SrcRoute) && pkt.SrcRoute[idx] == r.self && idx+1 < len(pkt.SrcRoute) {
		pkt.RouteHop++
		r.out.SendRouting(pkt, pkt.SrcRoute[idx+1])
	}
}

// LinkFailure handles MAC retry exhaustion toward nextHop: the link is
// purged from the cache, a route error travels back to the packet's
// source, and the packet is salvaged over an alternative route when one
// is cached.
func (r *Router) LinkFailure(nextHop packet.NodeID, failed *packet.Packet) {
	r.stats.LinkFailures++
	r.purgeLink(r.self, nextHop)
	if failed == nil || failed.Kind != packet.KindData {
		return
	}
	// Route error back to the source along the reversed route prefix.
	if failed.Src != r.self && len(failed.SrcRoute) > 0 {
		if prefix := reversePrefix(failed.SrcRoute, r.self); len(prefix) >= 2 {
			rerr := &RouteError{From: r.self, To: nextHop}
			pkt := r.routingPacket(rerr, rerrSize, prefix[1])
			pkt.SrcRoute = prefix
			pkt.RouteHop = 1
			pkt.Dst = prefix[len(prefix)-1]
			r.stats.RERRSent++
			r.out.SendRouting(pkt, prefix[1])
		}
	}
	// Salvage: retry over another cached route or rediscover.
	failed.RouteHop = 0
	r.attachRoute(failed, nil)
	r.SendData(failed)
}

// learnRoute caches the route (self..dst) and every prefix of it.
func (r *Router) learnRoute(route []packet.NodeID) {
	if len(route) < 2 || route[0] != r.self {
		return
	}
	for end := 2; end <= len(route); end++ {
		sub := route[:end]
		dst := sub[end-1]
		if r.hasRoute(dst, sub) {
			continue
		}
		routes := r.cache[dst]
		if len(routes) >= r.cfg.MaxRoutesPerDst {
			// Evict the longest.
			worst := 0
			for i, rt := range routes {
				if len(rt) > len(routes[worst]) {
					worst = i
				}
			}
			if len(routes[worst]) <= end {
				continue // new route is no better
			}
			routes[worst] = append([]packet.NodeID(nil), sub...)
			r.cache[dst] = routes
			continue
		}
		if len(routes) == 0 {
			r.admitDst(dst)
		}
		r.cache[dst] = append(r.cache[dst], append([]packet.NodeID(nil), sub...))
	}
}

// admitDst records a new cache destination's insertion order and evicts
// the oldest destination when the cache is at MaxCacheDsts. Entries for
// destinations that purgeLink already removed are skipped lazily; the
// order list is compacted when stale entries pile up, keeping it O(cap).
func (r *Router) admitDst(dst packet.NodeID) {
	for len(r.cache) >= r.cfg.MaxCacheDsts && len(r.cacheOrder) > 0 {
		old := r.cacheOrder[0]
		r.cacheOrder = r.cacheOrder[1:]
		if _, ok := r.cache[old]; ok {
			delete(r.cache, old)
		}
	}
	if len(r.cacheOrder)+1 >= 2*r.cfg.MaxCacheDsts {
		live := r.cacheOrder[:0]
		seen := make(map[packet.NodeID]bool, len(r.cache))
		for _, d := range r.cacheOrder {
			if _, ok := r.cache[d]; ok && !seen[d] {
				seen[d] = true
				live = append(live, d)
			}
		}
		r.cacheOrder = append([]packet.NodeID(nil), live...)
	}
	r.cacheOrder = append(r.cacheOrder, dst)
}

func (r *Router) hasRoute(dst packet.NodeID, route []packet.NodeID) bool {
	for _, rt := range r.cache[dst] {
		if routesEqual(rt, route) {
			return true
		}
	}
	return false
}

// purgeLink removes every cached route that traverses the directed link
// from->to.
func (r *Router) purgeLink(from, to packet.NodeID) {
	for dst, routes := range r.cache {
		kept := routes[:0]
		for _, rt := range routes {
			if !routeUsesLink(rt, from, to) {
				kept = append(kept, rt)
			}
		}
		if len(kept) == 0 {
			delete(r.cache, dst)
		} else {
			r.cache[dst] = kept
		}
	}
}

func (r *Router) routingPacket(payload any, size int, macDst packet.NodeID) *packet.Packet {
	return &packet.Packet{
		UID:     r.ids.Next(),
		Kind:    packet.KindRouting,
		Src:     r.self,
		Dst:     macDst,
		TTL:     32,
		Size:    size + packet.IPHeaderSize,
		MACSrc:  r.self,
		MACDst:  macDst,
		Payload: payload,
	}
}

// routeFrom extracts the sub-route starting at node from a full route,
// or nil if the node is not on it.
func routeFrom(route []packet.NodeID, node packet.NodeID) []packet.NodeID {
	for i, n := range route {
		if n == node {
			return route[i:]
		}
	}
	return nil
}

// reversePrefix returns the reversed prefix of route ending at node
// (inclusive): the path from node back to route[0].
func reversePrefix(route []packet.NodeID, node packet.NodeID) []packet.NodeID {
	idx := -1
	for i, n := range route {
		if n == node {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]packet.NodeID, 0, idx+1)
	for i := idx; i >= 0; i-- {
		out = append(out, route[i])
	}
	return out
}

func routesEqual(a, b []packet.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func routeUsesLink(route []packet.NodeID, from, to packet.NodeID) bool {
	for i := 0; i+1 < len(route); i++ {
		if route[i] == from && route[i+1] == to {
			return true
		}
	}
	return false
}
