package dsr

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

// The destination cache is bounded: learning routes to more than
// MaxCacheDsts destinations evicts the oldest-inserted destination,
// and the insertion-order bookkeeping stays O(cap).
func TestRouteCacheDstBound(t *testing.T) {
	s := sim.New(1)
	out := &stubOut{}
	var ids packet.IDGen
	cfg := DefaultConfig()
	cfg.MaxCacheDsts = 3
	r, err := New(s, 0, out, &ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Learn direct routes to dsts 1..10.
	for d := packet.NodeID(1); d <= 10; d++ {
		r.learnRoute(route(0, d))
	}
	if len(r.cache) != 3 {
		t.Fatalf("cache dsts = %d, want 3", len(r.cache))
	}
	for d := packet.NodeID(8); d <= 10; d++ {
		if _, ok := r.BestRoute(d); !ok {
			t.Fatalf("recent dst %d evicted", d)
		}
	}
	for d := packet.NodeID(1); d <= 7; d++ {
		if _, ok := r.BestRoute(d); ok {
			t.Fatalf("old dst %d survived eviction", d)
		}
	}
	if len(r.cacheOrder) >= 2*cfg.MaxCacheDsts {
		t.Fatalf("cacheOrder = %d entries, not compacted under 2*cap", len(r.cacheOrder))
	}
}

// Purged destinations leave stale order entries that eviction must
// skip, and a re-learned destination is evictable again.
func TestRouteCacheEvictionSkipsPurged(t *testing.T) {
	s := sim.New(1)
	out := &stubOut{}
	var ids packet.IDGen
	cfg := DefaultConfig()
	cfg.MaxCacheDsts = 2
	r, err := New(s, 0, out, &ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.learnRoute(route(0, 1))
	r.learnRoute(route(0, 2))
	r.purgeLink(0, 1) // dst 1 gone, stale order entry remains
	r.learnRoute(route(0, 3))
	if _, ok := r.BestRoute(2); !ok {
		t.Fatal("dst 2 evicted while a stale entry should have been skipped")
	}
	if _, ok := r.BestRoute(3); !ok {
		t.Fatal("dst 3 missing after admit")
	}
	r.learnRoute(route(0, 4)) // must evict dst 2 (oldest live)
	if _, ok := r.BestRoute(2); ok {
		t.Fatal("oldest live dst not evicted")
	}
	if len(r.cache) != 2 {
		t.Fatalf("cache dsts = %d, want 2", len(r.cache))
	}
}

// Duplicate-request suppression stays effective within the bound and
// the cache never exceeds it.
func TestSeenCacheBoundedDSR(t *testing.T) {
	c := newSeenCache(3)
	for i := 0; i < 9; i++ {
		c.add(rreqKey{src: 1, id: uint32(i)})
	}
	if len(c.m) != 3 || len(c.order) != 3 {
		t.Fatalf("cache size = %d/%d, want 3", len(c.m), len(c.order))
	}
	if c.has(rreqKey{src: 1, id: 0}) || !c.has(rreqKey{src: 1, id: 8}) {
		t.Fatal("FIFO eviction order wrong")
	}
}

func TestBoundedConfigValidation(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.MaxCacheDsts = -1 },
		func(c *Config) { c.SeenCacheSize = -5 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}
