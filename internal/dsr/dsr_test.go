package dsr

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

type stubOut struct {
	routing []sentMsg
	fwd     []sentMsg
	dropped []droppedMsg
}

type sentMsg struct {
	pkt     *packet.Packet
	nextHop packet.NodeID
}

type droppedMsg struct {
	pkt    *packet.Packet
	reason string
}

func (o *stubOut) SendRouting(p *packet.Packet, nh packet.NodeID) {
	o.routing = append(o.routing, sentMsg{p, nh})
}
func (o *stubOut) ForwardData(p *packet.Packet, nh packet.NodeID) {
	o.fwd = append(o.fwd, sentMsg{p, nh})
}
func (o *stubOut) DropData(p *packet.Packet, reason string) {
	o.dropped = append(o.dropped, droppedMsg{p, reason})
}

func newRouter(t *testing.T, self packet.NodeID) (*sim.Simulator, *Router, *stubOut) {
	t.Helper()
	s := sim.New(1)
	out := &stubOut{}
	var ids packet.IDGen
	r, err := New(s, self, out, &ids, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, r, out
}

func dataTo(dst packet.NodeID) *packet.Packet {
	return &packet.Packet{Kind: packet.KindData, Src: 0, Dst: dst, Size: 1500}
}

func route(ids ...packet.NodeID) []packet.NodeID { return ids }

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.DiscoveryTimeout = 0 },
		func(c *Config) { c.Retries = -1 },
		func(c *Config) { c.MaxBuffered = 0 },
		func(c *Config) { c.MaxRoutesPerDst = 0 },
		func(c *Config) { c.BroadcastJitter = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestDiscoveryStartsOnMissingRoute(t *testing.T) {
	_, r, out := newRouter(t, 0)
	r.SendData(dataTo(4))
	if len(out.routing) != 1 {
		t.Fatalf("routing msgs = %d, want 1 RREQ", len(out.routing))
	}
	req, ok := out.routing[0].pkt.Payload.(*RouteRequest)
	if !ok || req.Src != 0 || req.Dst != 4 || len(req.Path) != 0 {
		t.Fatalf("RREQ = %+v", out.routing[0].pkt.Payload)
	}
	if out.routing[0].nextHop != packet.Broadcast {
		t.Fatal("RREQ must broadcast")
	}
}

func TestIntermediateAppendsSelfAndRefloods(t *testing.T) {
	s, r, out := newRouter(t, 2)
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RouteRequest{ID: 1, Src: 0, Dst: 4, Path: route(1)},
	})
	if len(out.routing) != 0 {
		t.Fatal("re-flood not jittered")
	}
	s.Run(sim.Second)
	if len(out.routing) != 1 {
		t.Fatalf("re-floods = %d", len(out.routing))
	}
	fwd := out.routing[0].pkt.Payload.(*RouteRequest)
	if len(fwd.Path) != 2 || fwd.Path[1] != 2 {
		t.Fatalf("path = %v, want [1 2]", fwd.Path)
	}
	// Duplicate flood suppressed.
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 3,
		Payload: &RouteRequest{ID: 1, Src: 0, Dst: 4, Path: route(3)},
	})
	s.Run(2 * sim.Second)
	if len(out.routing) != 1 {
		t.Fatal("duplicate RREQ re-flooded")
	}
}

func TestDestinationReplies(t *testing.T) {
	_, r, out := newRouter(t, 4)
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 3,
		Payload: &RouteRequest{ID: 1, Src: 0, Dst: 4, Path: route(1, 2, 3)},
	})
	if len(out.routing) != 1 {
		t.Fatalf("msgs = %d, want 1 RREP", len(out.routing))
	}
	m := out.routing[0]
	rep, ok := m.pkt.Payload.(*RouteReply)
	if !ok {
		t.Fatalf("payload = %T", m.pkt.Payload)
	}
	wantRoute := route(0, 1, 2, 3, 4)
	if !routesEqual(rep.Route, wantRoute) {
		t.Fatalf("RREP route = %v, want %v", rep.Route, wantRoute)
	}
	// Reply travels the reverse path: first hop is node 3.
	if m.nextHop != 3 {
		t.Fatalf("RREP next hop = %v, want n3", m.nextHop)
	}
	if !routesEqual(m.pkt.SrcRoute, route(4, 3, 2, 1, 0)) {
		t.Fatalf("RREP source route = %v", m.pkt.SrcRoute)
	}
}

func TestReplyRelayedAlongSourceRoute(t *testing.T) {
	_, r, out := newRouter(t, 3)
	rep := &RouteReply{Src: 0, Dst: 4, Route: route(0, 1, 2, 3, 4)}
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 4, Payload: rep,
		SrcRoute: route(4, 3, 2, 1, 0), RouteHop: 1,
	})
	if len(out.routing) != 1 || out.routing[0].nextHop != 2 {
		t.Fatalf("relay = %+v", out.routing)
	}
	// The relay also learns the route toward the destination.
	if got, ok := r.BestRoute(4); !ok || !routesEqual(got, route(3, 4)) {
		t.Fatalf("learned route = %v, %v", got, ok)
	}
}

func TestOriginatorFlushesBufferOnReply(t *testing.T) {
	_, r, out := newRouter(t, 0)
	p1, p2 := dataTo(4), dataTo(4)
	r.SendData(p1)
	r.SendData(p2)

	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload:  &RouteReply{Src: 0, Dst: 4, Route: route(0, 1, 2, 3, 4)},
		SrcRoute: route(4, 3, 2, 1, 0), RouteHop: 4,
	})
	if len(out.fwd) != 2 {
		t.Fatalf("flushed = %d, want 2", len(out.fwd))
	}
	for _, f := range out.fwd {
		if f.nextHop != 1 {
			t.Fatalf("next hop = %v, want n1", f.nextHop)
		}
		if !routesEqual(f.pkt.SrcRoute, route(0, 1, 2, 3, 4)) {
			t.Fatalf("source route = %v", f.pkt.SrcRoute)
		}
		if f.pkt.RouteHop != 1 {
			t.Fatalf("route hop = %d, want 1", f.pkt.RouteHop)
		}
	}
	// Route header overhead added to the packet size.
	if out.fwd[0].pkt.Size != 1500+5*srcRouteByte {
		t.Fatalf("size with route = %d", out.fwd[0].pkt.Size)
	}
	if r.Stats().DiscoveryOK != 1 {
		t.Fatalf("stats = %+v", r.Stats())
	}
}

func TestCachedRouteSkipsDiscovery(t *testing.T) {
	_, r, out := newRouter(t, 0)
	r.learnRoute(route(0, 1, 2, 4))
	r.SendData(dataTo(4))
	if len(out.routing) != 0 {
		t.Fatal("discovery started despite cached route")
	}
	if len(out.fwd) != 1 || out.fwd[0].nextHop != 1 {
		t.Fatalf("fwd = %+v", out.fwd)
	}
	if r.Stats().CacheHits != 1 {
		t.Fatal("cache hit not counted")
	}
}

func TestIntermediateForwardsAlongRoute(t *testing.T) {
	_, r, out := newRouter(t, 2)
	pkt := dataTo(4)
	pkt.SrcRoute = route(0, 1, 2, 3, 4)
	pkt.RouteHop = 2 // we are SrcRoute[2]
	r.SendData(pkt)
	if len(out.fwd) != 1 || out.fwd[0].nextHop != 3 {
		t.Fatalf("fwd = %+v", out.fwd)
	}
	if pkt.RouteHop != 3 {
		t.Fatalf("route hop = %d, want 3", pkt.RouteHop)
	}
}

func TestBestRoutePrefersShortest(t *testing.T) {
	_, r, _ := newRouter(t, 0)
	r.learnRoute(route(0, 1, 2, 3, 4))
	r.learnRoute(route(0, 5, 4))
	got, ok := r.BestRoute(4)
	if !ok || !routesEqual(got, route(0, 5, 4)) {
		t.Fatalf("best route = %v", got)
	}
	// Prefixes were learned too.
	if got, ok := r.BestRoute(2); !ok || !routesEqual(got, route(0, 1, 2)) {
		t.Fatalf("prefix route = %v, %v", got, ok)
	}
}

func TestCacheCapAndEviction(t *testing.T) {
	_, r, _ := newRouter(t, 0)
	r.learnRoute(route(0, 1, 9))
	r.learnRoute(route(0, 2, 3, 9))
	r.learnRoute(route(0, 4, 5, 6, 9))
	r.learnRoute(route(0, 7, 8, 10, 11, 9))
	if got := len(r.cache[9]); got != DefaultConfig().MaxRoutesPerDst {
		t.Fatalf("cache size = %d", got)
	}
	// A shorter newcomer evicts the longest entry (the 6-node route).
	r.learnRoute(route(0, 12, 9))
	haveNew := false
	for _, rt := range r.cache[9] {
		if len(rt) == 6 {
			t.Fatalf("longest route survived eviction: %v", r.cache[9])
		}
		if routesEqual(rt, route(0, 12, 9)) {
			haveNew = true
		}
	}
	if !haveNew {
		t.Fatalf("newcomer not cached: %v", r.cache[9])
	}
}

func TestLinkFailurePurgesAndSalvages(t *testing.T) {
	_, r, out := newRouter(t, 0)
	r.learnRoute(route(0, 1, 2, 4))
	r.learnRoute(route(0, 3, 4))
	pkt := dataTo(4)
	r.SendData(pkt) // uses shortest: 0-3-4
	out.fwd = nil

	r.LinkFailure(3, pkt)
	// Route via 3 purged; packet salvaged over 0-1-2-4.
	if len(out.fwd) != 1 || out.fwd[0].nextHop != 1 {
		t.Fatalf("salvage = %+v", out.fwd)
	}
	if _, ok := r.BestRoute(3); ok {
		t.Fatal("route to broken neighbour survived")
	}
}

func TestLinkFailureAtIntermediateSendsRERR(t *testing.T) {
	_, r, out := newRouter(t, 2)
	pkt := dataTo(4)
	pkt.Src = 0
	pkt.SrcRoute = route(0, 1, 2, 3, 4)
	pkt.RouteHop = 3 // already advanced past us

	r.LinkFailure(3, pkt)
	// A route error travels back along 2-1-0.
	found := false
	for _, m := range out.routing {
		if rerr, ok := m.pkt.Payload.(*RouteError); ok {
			found = true
			if rerr.From != 2 || rerr.To != 3 {
				t.Fatalf("RERR = %+v", rerr)
			}
			if m.nextHop != 1 {
				t.Fatalf("RERR next hop = %v", m.nextHop)
			}
			if !routesEqual(m.pkt.SrcRoute, route(2, 1, 0)) {
				t.Fatalf("RERR route = %v", m.pkt.SrcRoute)
			}
		}
	}
	if !found {
		t.Fatal("no RERR generated")
	}
}

func TestRERRPurgesCacheAndRelays(t *testing.T) {
	_, r, out := newRouter(t, 1)
	r.learnRoute(route(1, 2, 3, 4))
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 2,
		Payload:  &RouteError{From: 2, To: 3},
		SrcRoute: route(2, 1, 0), RouteHop: 1,
	})
	if _, ok := r.BestRoute(4); ok {
		t.Fatal("route over broken link survived RERR")
	}
	// Still have the 1-2 prefix (link 2->3 broke, not 1->2).
	if _, ok := r.BestRoute(2); !ok {
		t.Fatal("unrelated prefix purged")
	}
	if len(out.routing) != 1 || out.routing[0].nextHop != 0 {
		t.Fatalf("RERR relay = %+v", out.routing)
	}
}

func TestDiscoveryRetryAndFailure(t *testing.T) {
	s, r, out := newRouter(t, 0)
	pkt := dataTo(9)
	r.SendData(pkt)
	s.Run(30 * sim.Second)

	rreqs := 0
	for _, m := range out.routing {
		if _, ok := m.pkt.Payload.(*RouteRequest); ok {
			rreqs++
		}
	}
	if want := 1 + DefaultConfig().Retries; rreqs != want {
		t.Fatalf("RREQ attempts = %d, want %d", rreqs, want)
	}
	if len(out.dropped) != 1 || out.dropped[0].reason != "no route after retries" {
		t.Fatalf("drops = %+v", out.dropped)
	}
	if r.Stats().DiscoveryErr != 1 {
		t.Fatalf("stats = %+v", r.Stats())
	}
}

func TestBufferOverflow(t *testing.T) {
	_, r, out := newRouter(t, 0)
	for i := 0; i < DefaultConfig().MaxBuffered+3; i++ {
		r.SendData(dataTo(9))
	}
	if len(out.dropped) != 3 {
		t.Fatalf("dropped = %d, want 3", len(out.dropped))
	}
}

func TestRouteHelpers(t *testing.T) {
	if got := routeFrom(route(0, 1, 2, 3), 2); !routesEqual(got, route(2, 3)) {
		t.Fatalf("routeFrom = %v", got)
	}
	if routeFrom(route(0, 1), 9) != nil {
		t.Fatal("routeFrom found absent node")
	}
	if got := reversePrefix(route(0, 1, 2, 3), 2); !routesEqual(got, route(2, 1, 0)) {
		t.Fatalf("reversePrefix = %v", got)
	}
	if reversePrefix(route(0, 1), 9) != nil {
		t.Fatal("reversePrefix found absent node")
	}
	if !routeUsesLink(route(0, 1, 2), 1, 2) || routeUsesLink(route(0, 1, 2), 2, 1) {
		t.Fatal("routeUsesLink direction wrong")
	}
}

func TestMessageCloning(t *testing.T) {
	req := &RouteRequest{ID: 1, Src: 0, Dst: 4, Path: route(1, 2)}
	c := req.ClonePayload().(*RouteRequest)
	c.Path[0] = 9
	if req.Path[0] != 1 {
		t.Fatal("RouteRequest clone aliases path")
	}
	rep := &RouteReply{Src: 0, Dst: 4, Route: route(0, 1, 4)}
	c2 := rep.ClonePayload().(*RouteReply)
	c2.Route[0] = 9
	if rep.Route[0] != 0 {
		t.Fatal("RouteReply clone aliases route")
	}
	rerr := &RouteError{From: 1, To: 2}
	c3 := rerr.ClonePayload().(*RouteError)
	c3.From = 9
	if rerr.From != 1 {
		t.Fatal("RouteError clone aliases")
	}
}

func TestSizesGrowWithPath(t *testing.T) {
	short := &RouteRequest{Path: route(1)}
	long := &RouteRequest{Path: route(1, 2, 3)}
	if long.size() <= short.size() {
		t.Fatal("RREQ size does not grow with path")
	}
	rep := &RouteReply{Route: route(0, 1, 2)}
	if rep.size() != rrepBase+3*perHopBytes {
		t.Fatalf("RREP size = %d", rep.size())
	}
}
