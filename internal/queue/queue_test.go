package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"muzha/internal/packet"
)

func pkts(n int) []*packet.Packet {
	out := make([]*packet.Packet, n)
	for i := range out {
		out[i] = &packet.Packet{UID: uint64(i + 1)}
	}
	return out
}

func TestDropTailFIFO(t *testing.T) {
	q, err := NewDropTail(10)
	if err != nil {
		t.Fatal(err)
	}
	in := pkts(5)
	for _, p := range in {
		if !q.Enqueue(p) {
			t.Fatal("enqueue failed below capacity")
		}
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	for i, want := range in {
		got := q.Dequeue()
		if got != want {
			t.Fatalf("dequeue %d: got %v, want %v", i, got, want)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("dequeue from empty queue should return nil")
	}
}

func TestDropTailDropsWhenFull(t *testing.T) {
	q, _ := NewDropTail(3)
	in := pkts(5)
	accepted := 0
	for _, p := range in {
		if q.Enqueue(p) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted %d, want 3", accepted)
	}
	if q.Drops() != 2 {
		t.Fatalf("drops = %d, want 2", q.Drops())
	}
	// Head must be the earliest accepted packet (drop-tail, not drop-head).
	if got := q.Dequeue(); got.UID != 1 {
		t.Fatalf("head UID = %d, want 1", got.UID)
	}
}

func TestDropTailInterleavedReuse(t *testing.T) {
	q, _ := NewDropTail(2)
	a, b, c := &packet.Packet{UID: 1}, &packet.Packet{UID: 2}, &packet.Packet{UID: 3}
	q.Enqueue(a)
	q.Enqueue(b)
	q.Dequeue()
	if !q.Enqueue(c) {
		t.Fatal("room freed by dequeue not reusable")
	}
	if got := q.Dequeue(); got != b {
		t.Fatalf("order violated: got %v, want %v", got, b)
	}
	if got := q.Dequeue(); got != c {
		t.Fatalf("order violated: got %v, want %v", got, c)
	}
}

func TestDropTailValidation(t *testing.T) {
	if _, err := NewDropTail(0); err == nil {
		t.Fatal("limit 0 accepted")
	}
}

func TestDropTailCapAndDefault(t *testing.T) {
	q, _ := NewDropTail(DefaultLimit)
	if q.Cap() != 50 {
		t.Fatalf("Cap = %d, want the paper's 50", q.Cap())
	}
}

// Property: for any interleaving of enqueues and dequeues within capacity,
// the queue behaves as a FIFO and never exceeds its limit.
func TestQuickDropTailFIFO(t *testing.T) {
	f := func(ops []bool) bool {
		q, _ := NewDropTail(8)
		var model []*packet.Packet
		uid := uint64(0)
		for _, enq := range ops {
			if enq {
				uid++
				p := &packet.Packet{UID: uid}
				ok := q.Enqueue(p)
				if ok != (len(model) < 8) {
					return false
				}
				if ok {
					model = append(model, p)
				}
			} else {
				got := q.Dequeue()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					if got != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func redCfg(rng *rand.Rand) REDConfig {
	return REDConfig{
		Limit:  50,
		MinTh:  5,
		MaxTh:  15,
		MaxP:   0.1,
		Weight: 0.2,
		Rand:   rng,
	}
}

func TestREDValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []func(*REDConfig){
		func(c *REDConfig) { c.Limit = 0 },
		func(c *REDConfig) { c.MinTh = 0 },
		func(c *REDConfig) { c.MaxTh = c.MinTh },
		func(c *REDConfig) { c.MaxTh = 1000 },
		func(c *REDConfig) { c.MaxP = 0 },
		func(c *REDConfig) { c.MaxP = 1.5 },
		func(c *REDConfig) { c.Weight = 0 },
		func(c *REDConfig) { c.Rand = nil },
	}
	for i, mutate := range bad {
		cfg := redCfg(rng)
		mutate(&cfg)
		if _, err := NewRED(cfg); err == nil {
			t.Fatalf("bad RED config %d accepted", i)
		}
	}
	if _, err := NewRED(redCfg(rng)); err != nil {
		t.Fatal(err)
	}
}

func TestREDPassesLightLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q, _ := NewRED(redCfg(rng))
	// Alternate enqueue/dequeue: queue stays near-empty, nothing drops.
	for i := 0; i < 100; i++ {
		if !q.Enqueue(&packet.Packet{UID: uint64(i)}) {
			t.Fatal("RED dropped under light load")
		}
		q.Dequeue()
	}
	if q.Drops() != 0 {
		t.Fatalf("drops = %d under light load", q.Drops())
	}
}

func TestREDEarlyDropsUnderLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q, _ := NewRED(redCfg(rng))
	accepted := 0
	for i := 0; i < 200; i++ {
		if q.Enqueue(&packet.Packet{UID: uint64(i)}) {
			accepted++
		}
	}
	if q.Drops() == 0 {
		t.Fatal("RED never dropped under sustained overload")
	}
	// Early drop means it drops before the hard limit is the only cause:
	// average tracks actual here, so drops must exceed overflow-only.
	overflowOnly := 200 - q.Cap()
	if int(q.Drops()) <= overflowOnly {
		t.Fatalf("drops = %d, want more than pure tail-drop %d", q.Drops(), overflowOnly)
	}
	if accepted != q.Len() {
		t.Fatalf("accepted %d but queue holds %d", accepted, q.Len())
	}
}

func TestREDMarkInsteadOfDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := redCfg(rng)
	cfg.MarkInsteadOfDrop = true
	q, _ := NewRED(cfg)
	marked := 0
	for i := 0; i < 40; i++ {
		p := &packet.Packet{UID: uint64(i), AVBW: packet.AVBWMax}
		if !q.Enqueue(p) {
			t.Fatal("marking RED should not early-drop")
		}
		if p.CongMarked {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no packets were congestion-marked")
	}
	if q.Marks() != uint64(marked) {
		t.Fatalf("Marks() = %d, counted %d", q.Marks(), marked)
	}
	// Hard limit still drops.
	for i := 0; i < 40; i++ {
		q.Enqueue(&packet.Packet{UID: uint64(100 + i)})
	}
	if q.Drops() == 0 {
		t.Fatal("hard limit did not drop in marking mode")
	}
}

func TestREDAvgLenTracks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q, _ := NewRED(redCfg(rng))
	for i := 0; i < 30; i++ {
		q.Enqueue(&packet.Packet{UID: uint64(i)})
	}
	if q.AvgLen() <= 0 {
		t.Fatal("average queue length did not grow")
	}
}
