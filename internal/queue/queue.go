// Package queue implements the interface queue (IFQ) that sits between
// the network layer and the MAC: the paper's 50-packet drop-tail queue,
// plus a RED variant used as an ablation baseline (RED being one of the
// standardized router-assisted mechanisms the thesis compares against
// conceptually).
package queue

import (
	"fmt"
	"math/rand"

	"muzha/internal/packet"
)

// Queue is an interface queue. Implementations are not safe for
// concurrent use; the simulator is single-threaded.
type Queue interface {
	// Enqueue offers a packet. It returns false if the packet was
	// dropped (queue full, or RED early drop).
	Enqueue(pkt *packet.Packet) bool
	// Dequeue removes and returns the head packet, or nil when empty.
	Dequeue() *packet.Packet
	// Len returns the number of queued packets.
	Len() int
	// Cap returns the queue limit in packets.
	Cap() int
	// Drops returns the cumulative number of dropped packets.
	Drops() uint64
}

// DefaultLimit is the paper's IFQ size (Table 5.1 setup: 50 packets,
// drop-tail).
const DefaultLimit = 50

// DropTail is a FIFO queue that drops arrivals when full.
type DropTail struct {
	limit int
	pkts  []*packet.Packet
	head  int
	drops uint64
}

// NewDropTail returns a drop-tail queue holding up to limit packets.
func NewDropTail(limit int) (*DropTail, error) {
	if limit < 1 {
		return nil, fmt.Errorf("queue: limit must be >= 1, got %d", limit)
	}
	return &DropTail{limit: limit}, nil
}

// Enqueue implements Queue.
func (q *DropTail) Enqueue(pkt *packet.Packet) bool {
	if q.Len() >= q.limit {
		q.drops++
		return false
	}
	q.pkts = append(q.pkts, pkt)
	return true
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue() *packet.Packet {
	if q.Len() == 0 {
		return nil
	}
	pkt := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	}
	return pkt
}

// Len implements Queue.
func (q *DropTail) Len() int { return len(q.pkts) - q.head }

// Cap implements Queue.
func (q *DropTail) Cap() int { return q.limit }

// Drops implements Queue.
func (q *DropTail) Drops() uint64 { return q.drops }

var _ Queue = (*DropTail)(nil)

// REDConfig parameterizes a RED queue (Floyd & Jacobson 1993).
type REDConfig struct {
	Limit  int     // hard capacity in packets
	MinTh  float64 // average-length threshold where early drop begins
	MaxTh  float64 // average-length threshold where drop prob reaches MaxP
	MaxP   float64 // maximum early-drop probability
	Weight float64 // EWMA weight for the average queue length (e.g. 0.002)
	// MarkInsteadOfDrop makes RED set the packet's congestion mark (ECN
	// style) rather than dropping, when the packet carries the Muzha
	// AVBW option or is a TCP segment.
	MarkInsteadOfDrop bool
	Rand              *rand.Rand
}

// RED is a random-early-detection queue.
type RED struct {
	cfg   REDConfig
	inner DropTail
	avg   float64
	count int // packets since last early drop
	drops uint64
	marks uint64
}

// NewRED validates cfg and returns a RED queue.
func NewRED(cfg REDConfig) (*RED, error) {
	switch {
	case cfg.Limit < 1:
		return nil, fmt.Errorf("queue: RED limit must be >= 1, got %d", cfg.Limit)
	case cfg.MinTh <= 0 || cfg.MaxTh <= cfg.MinTh || cfg.MaxTh > float64(cfg.Limit):
		return nil, fmt.Errorf("queue: RED thresholds invalid: min=%g max=%g limit=%d", cfg.MinTh, cfg.MaxTh, cfg.Limit)
	case cfg.MaxP <= 0 || cfg.MaxP > 1:
		return nil, fmt.Errorf("queue: RED MaxP must be in (0,1], got %g", cfg.MaxP)
	case cfg.Weight <= 0 || cfg.Weight > 1:
		return nil, fmt.Errorf("queue: RED weight must be in (0,1], got %g", cfg.Weight)
	case cfg.Rand == nil:
		return nil, fmt.Errorf("queue: RED requires a random source")
	}
	return &RED{cfg: cfg, inner: DropTail{limit: cfg.Limit}}, nil
}

// Enqueue implements Queue with RED early drop/mark.
func (q *RED) Enqueue(pkt *packet.Packet) bool {
	q.avg = (1-q.cfg.Weight)*q.avg + q.cfg.Weight*float64(q.inner.Len())
	switch {
	case q.avg >= q.cfg.MaxTh:
		if q.mark(pkt) {
			break
		}
		q.drops++
		return false
	case q.avg >= q.cfg.MinTh:
		p := q.cfg.MaxP * (q.avg - q.cfg.MinTh) / (q.cfg.MaxTh - q.cfg.MinTh)
		q.count++
		// Uniformize drop spacing as in the RED paper.
		pa := p / (1 - float64(q.count)*p)
		if pa < 0 {
			pa = 1
		}
		if q.cfg.Rand.Float64() < pa {
			q.count = 0
			if q.mark(pkt) {
				break
			}
			q.drops++
			return false
		}
	default:
		q.count = 0
	}
	if !q.inner.Enqueue(pkt) {
		q.drops++
		return false
	}
	return true
}

// mark applies an ECN-style congestion mark instead of dropping, when
// configured. Returns true if the packet was marked (and should still be
// enqueued).
func (q *RED) mark(pkt *packet.Packet) bool {
	if !q.cfg.MarkInsteadOfDrop {
		return false
	}
	pkt.CongMarked = true
	q.marks++
	return true
}

// Dequeue implements Queue.
func (q *RED) Dequeue() *packet.Packet { return q.inner.Dequeue() }

// Len implements Queue.
func (q *RED) Len() int { return q.inner.Len() }

// Cap implements Queue.
func (q *RED) Cap() int { return q.cfg.Limit }

// Drops implements Queue.
func (q *RED) Drops() uint64 { return q.drops }

// Marks returns the number of packets congestion-marked instead of
// dropped.
func (q *RED) Marks() uint64 { return q.marks }

// AvgLen returns the EWMA queue length estimate.
func (q *RED) AvgLen() float64 { return q.avg }

var _ Queue = (*RED)(nil)
