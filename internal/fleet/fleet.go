// Package fleet federates muzhad daemons into a fault-tolerant
// simulation fleet: one coordinator shards sweep jobs across worker
// daemons under time-bounded leases, and the coordinator's result cache
// becomes a shared content-addressed tier so the same (config, seed)
// never runs twice anywhere in the fleet.
//
// The design is pull-based. Workers register with the coordinator,
// heartbeat, and lease batches of queued jobs; the coordinator never
// dials a worker. Every lease carries a TTL, extended by heartbeats
// while the worker is alive — so a slow worker keeps its lease, but a
// SIGKILL'd, partitioned, or wedged one loses it, and the reaper
// re-queues ("re-shards") the job for the next lease request. Delivery
// is idempotent: results are keyed by config hash, so a double delivery
// or a delivery for an expired lease converges to exactly-once
// observable results — the late copy lands in the cache, which it would
// have matched anyway.
//
// Durability splits cleanly between the layers. The coordinator's job
// store journal (internal/jobs.Store, over the harness JSONL scanner)
// is the single source of truth across crashes: leases are deliberately
// ephemeral, so a coordinator killed at any point — including between a
// lease grant and the journal flush of the matching "running" snapshot
// — restarts with every non-terminal job re-queued and re-dispatches
// it. Workers keep their own store and cache journals, so a worker
// killed after computing a result but before reporting it re-runs the
// leased config as a local cache hit and delivers on the next lease.
//
// Protocol (all JSON, rooted at the coordinator):
//
//	POST /fleet/v1/register  {"worker": id}            -> {"lease_ttl_ns", "heartbeat_ns"}
//	POST /fleet/v1/heartbeat {"worker": id}            -> {"ok": true}; 404 asks the worker to re-register
//	POST /fleet/v1/lease     {"worker": id, "max": n}  -> {"jobs": [{"id","hash","config"}], "lease_ttl_ns"}
//	POST /fleet/v1/complete  {"worker","job","hash","ok","value"|"error","class"} -> {"accepted", "duplicate"}
//	GET  /fleet/v1/cache/{hash}                        -> raw canonical Result bytes | 404
//	PUT  /fleet/v1/cache/{hash}                        -> 204 (body: canonical Result bytes)
package fleet

import (
	"encoding/json"
	"time"
)

// Defaults for lease timing. Smoke tests shrink these to milliseconds;
// production sweeps with multi-second jobs keep them.
const (
	DefaultLeaseTTL  = 15 * time.Second
	DefaultHeartbeat = 3 * time.Second
	// DefaultMaxLeases bounds how often one job is re-sharded before the
	// coordinator fails it — a job that kills every worker it lands on
	// must not bounce around the fleet forever.
	DefaultMaxLeases = 5
)

type registerRequest struct {
	Worker string `json:"worker"`
}

type registerResponse struct {
	LeaseTTLNs  int64 `json:"lease_ttl_ns"`
	HeartbeatNs int64 `json:"heartbeat_ns"`
}

type heartbeatRequest struct {
	Worker string `json:"worker"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// LeasedJob is one unit of dispatched work: the coordinator-side job id
// (the completion key), the config hash (the cache key), and the
// canonical config bytes the worker executes.
type LeasedJob struct {
	ID     string          `json:"id"`
	Hash   string          `json:"hash"`
	Config json.RawMessage `json:"config"`
}

type leaseResponse struct {
	Jobs       []LeasedJob `json:"jobs"`
	LeaseTTLNs int64       `json:"lease_ttl_ns"`
}

type completeRequest struct {
	Worker string `json:"worker"`
	Job    string `json:"job"`
	Hash   string `json:"hash"`
	OK     bool   `json:"ok"`
	// Value carries the canonical Result bytes when OK.
	Value json.RawMessage `json:"value,omitempty"`
	Error string          `json:"error,omitempty"`
	Class string          `json:"class,omitempty"`
}

type completeResponse struct {
	Accepted bool `json:"accepted"`
	// Duplicate marks a delivery for a lease the coordinator no longer
	// holds — already completed, resharded and finished elsewhere, or
	// from before a coordinator restart. The result bytes (if any) were
	// still folded into the shared cache.
	Duplicate bool `json:"duplicate"`
}
