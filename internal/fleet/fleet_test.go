package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"muzha"
	"muzha/internal/jobs"
)

func chainConfig(t *testing.T, hops int, d time.Duration, seed int64) muzha.Config {
	t.Helper()
	top, err := muzha.ChainTopology(hops)
	if err != nil {
		t.Fatal(err)
	}
	cfg := muzha.DefaultConfig()
	cfg.Topology = top
	cfg.Duration = d
	cfg.Seed = seed
	cfg.Flows = []muzha.Flow{{Src: 0, Dst: hops, Variant: muzha.Muzha}}
	return cfg
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// serialResult is the fleet's ground truth: an uninterrupted local run
// through the shared encoder. Every fleet path must reproduce these
// bytes exactly.
func serialResult(t *testing.T, cfg muzha.Config) []byte {
	t.Helper()
	res, err := muzha.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := jobs.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

type coordNode struct {
	srv   *jobs.Server
	coord *Coordinator
	ts    *httptest.Server
	url   string
	cli   *jobs.Client
}

// startCoordinator builds a coordinator daemon: a jobs.Server whose
// Runner is the lease dispatcher, with the fleet protocol mounted next
// to the /v1 API. dir is explicit so restart tests can reuse it.
func startCoordinator(t *testing.T, dir string, ttl, hb time.Duration) *coordNode {
	t.Helper()
	coord := NewCoordinator(CoordinatorConfig{LeaseTTL: ttl, Heartbeat: hb})
	srv, err := jobs.NewServer(jobs.ServerConfig{
		DataDir:    dir,
		Workers:    2,
		Runner:     coord,
		FleetStats: coord.FleetStats,
	})
	if err != nil {
		coord.Close()
		t.Fatal(err)
	}
	coord.Bind(srv)
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	coord.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		srv.Drain(0)
		srv.Close()
	})
	return &coordNode{
		srv:   srv,
		coord: coord,
		ts:    ts,
		url:   ts.URL,
		cli:   &jobs.Client{BaseURL: ts.URL, ClientID: "test"},
	}
}

type workerNode struct {
	srv   *jobs.Server
	agent *Agent
	cli   *jobs.Client
}

// startWorker builds a worker daemon joined to the coordinator: a plain
// jobs.Server with the agent as its peer cache, leasing fleet jobs in
// the background.
func startWorker(t *testing.T, id, coordURL string, slots int) *workerNode {
	t.Helper()
	agent := NewAgent(AgentConfig{
		Coordinator: coordURL,
		ID:          id,
		Slots:       slots,
		Heartbeat:   20 * time.Millisecond,
	})
	srv, err := jobs.NewServer(jobs.ServerConfig{
		DataDir:    t.TempDir(),
		Workers:    2,
		Peer:       agent,
		FleetStats: agent.FleetStats,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	agent.Bind(srv)
	agent.Start()
	t.Cleanup(func() {
		agent.Stop()
		ts.Close()
		srv.Drain(0)
		srv.Close()
	})
	return &workerNode{srv: srv, agent: agent, cli: &jobs.Client{BaseURL: ts.URL, ClientID: "direct"}}
}

// fakeWorker drives the fleet protocol by hand — the stand-in for a
// worker that misbehaves in ways a live Agent never would (leasing and
// then going silent, delivering twice, delivering after a crash).
type fakeWorker struct {
	t    *testing.T
	base string
	id   string
}

func (f *fakeWorker) post(path string, in, out any) int {
	f.t.Helper()
	b, err := json.Marshal(in)
	if err != nil {
		f.t.Fatal(err)
	}
	resp, err := http.Post(f.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		f.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		f.t.Fatalf("POST %s: read body: %v", path, err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(rb, out); err != nil {
			f.t.Fatalf("POST %s: decode %q: %v", path, rb, err)
		}
	}
	return resp.StatusCode
}

func (f *fakeWorker) register() {
	f.t.Helper()
	if st := f.post("/fleet/v1/register", registerRequest{Worker: f.id}, nil); st != http.StatusOK {
		f.t.Fatalf("register %s: HTTP %d", f.id, st)
	}
}

func (f *fakeWorker) lease(max int) []LeasedJob {
	f.t.Helper()
	var resp leaseResponse
	if st := f.post("/fleet/v1/lease", leaseRequest{Worker: f.id, Max: max}, &resp); st != http.StatusOK {
		f.t.Fatalf("lease for %s: HTTP %d", f.id, st)
	}
	return resp.Jobs
}

func (f *fakeWorker) complete(req completeRequest) completeResponse {
	f.t.Helper()
	var resp completeResponse
	if st := f.post("/fleet/v1/complete", req, &resp); st != http.StatusOK {
		f.t.Fatalf("complete %s: HTTP %d", req.Job, st)
	}
	return resp
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFleetShardsSweepAndMatchesSerial is the happy path: a sweep
// submitted to the coordinator is sharded across two workers and every
// result is byte-identical to an uninterrupted serial run.
func TestFleetShardsSweepAndMatchesSerial(t *testing.T) {
	ctx := testCtx(t)
	c := startCoordinator(t, t.TempDir(), 30*time.Second, 25*time.Millisecond)
	w1 := startWorker(t, "w1", c.url, 2)
	w2 := startWorker(t, "w2", c.url, 2)

	cfgs := make([]muzha.Config, 4)
	for i := range cfgs {
		cfgs[i] = chainConfig(t, 2, time.Second, int64(100+i))
	}
	submitted, err := c.cli.SubmitSweep(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(submitted) != len(cfgs) {
		t.Fatalf("sweep admitted %d jobs, want %d", len(submitted), len(cfgs))
	}
	for i, j := range submitted {
		done, err := c.cli.Wait(ctx, j.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if done.State != jobs.StateDone {
			t.Fatalf("job %d ended %s [%s]: %s", i, done.State, done.Class, done.Error)
		}
		if done.Worker != "w1" && done.Worker != "w2" {
			t.Fatalf("job %d attributes its run to %q, want a fleet worker", i, done.Worker)
		}
		got, err := c.cli.Result(ctx, j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if want := serialResult(t, cfgs[i]); !bytes.Equal(got, want) {
			t.Fatalf("job %d result differs from serial run:\nfleet:  %.120s\nserial: %.120s", i, got, want)
		}
	}

	st := c.srv.Snapshot()
	if st.Fleet == nil {
		t.Fatal("coordinator /v1/stats has no fleet block")
	}
	f := *st.Fleet
	if f.Mode != "coordinator" {
		t.Fatalf("fleet mode = %q, want coordinator", f.Mode)
	}
	if f.WorkersSeen != 2 {
		t.Fatalf("workers seen = %d, want 2", f.WorkersSeen)
	}
	if f.CompletedRemote != uint64(len(cfgs)) {
		t.Fatalf("completed remote = %d, want %d", f.CompletedRemote, len(cfgs))
	}
	if f.Dispatched < uint64(len(cfgs)) {
		t.Fatalf("dispatched = %d, want >= %d", f.Dispatched, len(cfgs))
	}
	// Distinct configs: every job simulated exactly once, fleet-wide.
	if sum := w1.srv.Snapshot().Completed + w2.srv.Snapshot().Completed; sum != uint64(len(cfgs)) {
		t.Fatalf("workers completed %d runs, want %d", sum, len(cfgs))
	}
}

// TestExpiredLeaseReshards SIGKILLs a worker (a fake one that leases
// and goes silent) and asserts its job re-shards to a live worker and
// still produces serial-identical bytes.
func TestExpiredLeaseReshards(t *testing.T) {
	ctx := testCtx(t)
	c := startCoordinator(t, t.TempDir(), 250*time.Millisecond, 50*time.Millisecond)
	cfg := chainConfig(t, 2, time.Second, 7)

	j, err := c.cli.Submit(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	zombie := &fakeWorker{t: t, base: c.url, id: "zombie"}
	zombie.register()
	leased := zombie.lease(1)
	if len(leased) != 1 || leased[0].ID != j.ID {
		t.Fatalf("zombie leased %v, want job %s", leased, j.ID)
	}
	// The zombie never heartbeats and never delivers: its lease must
	// expire and the job must land on the live worker that joins now.
	startWorker(t, "w1", c.url, 2)

	done, err := c.cli.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("job ended %s [%s]: %s", done.State, done.Class, done.Error)
	}
	if done.Worker != "w1" {
		t.Fatalf("job completed by %q, want the live worker w1", done.Worker)
	}
	got, err := c.cli.Result(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := serialResult(t, cfg); !bytes.Equal(got, want) {
		t.Fatal("re-sharded result differs from serial run")
	}

	f := c.coord.FleetStats()
	if f.LeasesExpired < 1 {
		t.Fatalf("leases expired = %d, want >= 1", f.LeasesExpired)
	}
	if f.Resharded < 1 {
		t.Fatalf("resharded = %d, want >= 1", f.Resharded)
	}
	if f.CompletedRemote != 1 {
		t.Fatalf("completed remote = %d, want 1", f.CompletedRemote)
	}
}

// TestPeerCacheZeroNewRunsOnSecondWorker is the shared-tier acceptance
// check: after the fleet computes a sweep, an identical sweep submitted
// directly to a fresh worker's own API completes entirely from peer
// cache hits — zero new simulations.
func TestPeerCacheZeroNewRunsOnSecondWorker(t *testing.T) {
	ctx := testCtx(t)
	c := startCoordinator(t, t.TempDir(), 30*time.Second, 25*time.Millisecond)
	startWorker(t, "w1", c.url, 2)

	cfgs := make([]muzha.Config, 3)
	for i := range cfgs {
		cfgs[i] = chainConfig(t, 2, time.Second, int64(200+i))
	}
	submitted, err := c.cli.SubmitSweep(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(submitted))
	for i, j := range submitted {
		if _, err := c.cli.Wait(ctx, j.ID, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if want[i], err = c.cli.Result(ctx, j.ID); err != nil {
			t.Fatal(err)
		}
	}

	// A brand-new worker with a cold local cache gets the same sweep on
	// its own /v1 API.
	w2 := startWorker(t, "w2", c.url, 2)
	second, err := w2.cli.SubmitSweep(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range second {
		done, err := w2.cli.Wait(ctx, j.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if done.State != jobs.StateDone {
			t.Fatalf("job %d ended %s [%s]: %s", i, done.State, done.Class, done.Error)
		}
		got, err := w2.cli.Result(ctx, j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("job %d bytes differ between fleet and peer-cache path", i)
		}
	}

	st := w2.srv.Snapshot()
	if st.PeerCacheHits != uint64(len(cfgs)) {
		t.Fatalf("peer cache hits = %d, want %d (zero new runs)", st.PeerCacheHits, len(cfgs))
	}
	if st.CacheHits != 0 {
		t.Fatalf("local cache hits = %d on a cold cache, want 0", st.CacheHits)
	}
	if f := c.coord.FleetStats(); f.CacheServed < uint64(len(cfgs)) {
		t.Fatalf("coordinator served %d cache lookups, want >= %d", f.CacheServed, len(cfgs))
	}
}

// TestWorkerDegradesWithoutCoordinator: an unreachable coordinator must
// not break local submissions — the worker runs them itself, reports
// misses from the peer tier, and parks undeliverable publishes in the
// outbox.
func TestWorkerDegradesWithoutCoordinator(t *testing.T) {
	ctx := testCtx(t)
	// Port 1 is unbindable without privileges: connections are refused
	// instantly, which is the cleanest stand-in for a dead coordinator.
	w := startWorker(t, "lonely", "http://127.0.0.1:1", 2)
	cfg := chainConfig(t, 2, time.Second, 13)

	j, err := w.cli.Submit(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done, err := w.cli.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("degraded job ended %s [%s]: %s", done.State, done.Class, done.Error)
	}
	got, err := w.cli.Result(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := serialResult(t, cfg); !bytes.Equal(got, want) {
		t.Fatal("degraded-mode result differs from serial run")
	}

	waitFor(t, 5*time.Second, "degraded counters", func() bool {
		f := w.agent.FleetStats()
		return f.Degraded >= 1 && !f.Registered
	})
	// The fresh result could not be published; it waits in the outbox
	// for the coordinator to return.
	waitFor(t, 5*time.Second, "outbox to hold the unpublished result", func() bool {
		return w.agent.FleetStats().OutboxDepth >= 1
	})
}
