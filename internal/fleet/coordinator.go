package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"muzha/internal/harness"
	"muzha/internal/jobs"
)

// CoordinatorConfig tunes the lease dispatcher. Zero values take the
// package defaults.
type CoordinatorConfig struct {
	// LeaseTTL is how long a granted lease survives without a heartbeat
	// before its job is re-sharded.
	LeaseTTL time.Duration
	// Heartbeat is the interval advertised to workers at registration.
	// A worker missing ~LeaseTTL/Heartbeat beats in a row loses its
	// leases.
	Heartbeat time.Duration
	// MaxLeases bounds re-shards per job before the coordinator fails it.
	MaxLeases int
	// Logf, when non-nil, receives one line per fleet event.
	Logf func(format string, args ...any)
}

// dispatchJob is one admitted job in the lease table. worker == ""
// means pending (queued for the next lease request).
type dispatchJob struct {
	id       string
	hash     string
	config   json.RawMessage
	done     func(harness.Outcome)
	worker   string
	expiry   time.Time
	attempts int
}

type workerState struct {
	lastSeen time.Time
	alive    bool
}

// Coordinator is the fleet dispatcher: a jobs.Runner that, instead of
// running admitted jobs on a local pool, leases them to registered
// workers under time-bounded leases and settles them from worker
// deliveries. It holds no durable state of its own — the jobs.Server's
// store journal is the crash-recovery source of truth, and every lease
// is rebuilt from scratch after a restart.
//
// Lock ordering: the jobs.Server may call Start/Running while holding
// its own mutex, so the coordinator must never call back into a
// Server method that locks (SetJobPhase, done callbacks, CacheResult)
// while holding c.mu — such calls are collected under the lock and
// issued after release. Server.CachedResult only touches the cache
// journal's leaf lock and is safe anywhere.
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	srv     *jobs.Server
	queue   []string // pending job ids, FIFO; stale ids are skipped on pop
	jobs    map[string]*dispatchJob
	workers map[string]*workerState
	seen    int // distinct workers ever registered
	closed  bool
	stats   jobs.FleetStats

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewCoordinator creates the dispatcher and starts its lease reaper.
// Call Bind with the jobs.Server built on top of it, then Register its
// HTTP routes.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.LeaseTTL / 5
		if cfg.Heartbeat <= 0 {
			cfg.Heartbeat = DefaultHeartbeat
		}
	}
	if cfg.MaxLeases <= 0 {
		cfg.MaxLeases = DefaultMaxLeases
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:     cfg,
		jobs:    make(map[string]*dispatchJob),
		workers: make(map[string]*workerState),
		stop:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.reaper()
	return c
}

// Bind attaches the jobs.Server whose store and cache back the
// dispatcher. Jobs admitted before Bind (journal-recovered ones
// re-queued inside jobs.NewServer) simply wait in the pending queue.
func (c *Coordinator) Bind(srv *jobs.Server) {
	c.mu.Lock()
	c.srv = srv
	c.mu.Unlock()
}

// Start implements jobs.Runner: queue the job for the next lease
// request.
func (c *Coordinator) Start(j jobs.RunnerJob, done func(harness.Outcome)) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.jobs[j.ID] = &dispatchJob{id: j.ID, hash: j.Hash, config: j.Config, done: done}
	c.queue = append(c.queue, j.ID)
	return true
}

// Running implements jobs.Runner: the number of jobs currently leased.
func (c *Coordinator) Running() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leasedLocked()
}

func (c *Coordinator) leasedLocked() int {
	n := 0
	for _, dj := range c.jobs {
		if dj.worker != "" {
			n++
		}
	}
	return n
}

// Close implements jobs.Runner: stop intake and settle every pending
// and leased job as canceled, sending them back to queued in the store
// journal for the next coordinator start. Workers still computing will
// deliver late; those results land in the cache idempotently.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	var dones []func(harness.Outcome)
	var ids []string
	for id, dj := range c.jobs {
		dones = append(dones, dj.done)
		ids = append(ids, id)
	}
	c.jobs = make(map[string]*dispatchJob)
	c.queue = nil
	c.mu.Unlock()
	c.stopOnce.Do(func() { close(c.stop) })
	for i, done := range dones {
		done(harness.Outcome{
			Key:   ids[i],
			Err:   fmt.Errorf("%w: coordinator shutdown", harness.ErrCanceled),
			Class: harness.ClassCanceled,
		})
	}
	c.wg.Wait()
}

// FleetStats snapshots the lease table for /v1/stats.
func (c *Coordinator) FleetStats() jobs.FleetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Mode = "coordinator"
	st.WorkersSeen = c.seen
	alive := 0
	for _, w := range c.workers {
		if w.alive {
			alive++
		}
	}
	st.WorkersAlive = alive
	st.LeasesActive = c.leasedLocked()
	return st
}

// reaper periodically expires leases of workers that stopped
// heartbeating and re-queues their jobs, and flips silent workers to
// not-alive.
func (c *Coordinator) reaper() {
	defer c.wg.Done()
	tick := c.cfg.LeaseTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.expire(now)
		}
	}
}

// expire re-shards jobs whose lease passed its TTL and fails jobs that
// exhausted their re-shard budget.
func (c *Coordinator) expire(now time.Time) {
	c.mu.Lock()
	type failed struct {
		dj *dispatchJob
	}
	var requeued []string
	var failures []failed
	for id, dj := range c.jobs {
		if dj.worker == "" || now.Before(dj.expiry) {
			continue
		}
		c.stats.LeasesExpired++
		c.cfg.Logf("fleet: lease on %s by %s expired", id, dj.worker)
		if dj.attempts >= c.cfg.MaxLeases {
			delete(c.jobs, id)
			failures = append(failures, failed{dj})
			continue
		}
		dj.worker = ""
		dj.expiry = time.Time{}
		c.stats.Resharded++
		// Front of the queue: a job that already waited a full lease
		// must not wait behind the whole backlog again.
		c.queue = append([]string{id}, c.queue...)
		requeued = append(requeued, id)
	}
	deadline := now.Add(-3 * c.cfg.Heartbeat)
	for _, w := range c.workers {
		if w.alive && w.lastSeen.Before(deadline) {
			w.alive = false
		}
	}
	srv := c.srv
	c.mu.Unlock()

	for _, f := range failures {
		f.dj.done(harness.Outcome{
			Key:   f.dj.id,
			Err:   fmt.Errorf("fleet: job re-sharded %d times without completing (last worker %s)", f.dj.attempts, f.dj.worker),
			Class: harness.ClassError,
		})
	}
	if srv != nil {
		for _, id := range requeued {
			srv.SetJobPhase(id, jobs.StateQueued, "")
		}
	}
}

// Register mounts the fleet protocol routes on mux.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /fleet/v1/register", c.handleRegister)
	mux.HandleFunc("POST /fleet/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fleet/v1/lease", c.handleLease)
	mux.HandleFunc("POST /fleet/v1/complete", c.handleComplete)
	mux.HandleFunc("GET /fleet/v1/cache/{hash}", c.handleCacheGet)
	mux.HandleFunc("PUT /fleet/v1/cache/{hash}", c.handleCachePut)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := readJSON(r, &req); err != nil || req.Worker == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`body needs a "worker" id`))
		return
	}
	c.mu.Lock()
	if _, ok := c.workers[req.Worker]; !ok {
		c.seen++
		c.cfg.Logf("fleet: worker %s registered", req.Worker)
	}
	c.workers[req.Worker] = &workerState{lastSeen: time.Now(), alive: true}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, registerResponse{
		LeaseTTLNs:  int64(c.cfg.LeaseTTL),
		HeartbeatNs: int64(c.cfg.Heartbeat),
	})
}

// handleHeartbeat marks the worker alive and extends every lease it
// holds — liveness, not progress, keeps a lease. A 404 tells a worker
// the coordinator restarted and it must re-register.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := readJSON(r, &req); err != nil || req.Worker == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`body needs a "worker" id`))
		return
	}
	c.mu.Lock()
	ws, ok := c.workers[req.Worker]
	if ok {
		now := time.Now()
		ws.lastSeen = now
		ws.alive = true
		for _, dj := range c.jobs {
			if dj.worker == req.Worker {
				dj.expiry = now.Add(c.cfg.LeaseTTL)
			}
		}
	}
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown worker %q (re-register)", req.Worker))
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := readJSON(r, &req); err != nil || req.Worker == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`body needs a "worker" id`))
		return
	}
	max := req.Max
	if max < 1 {
		max = 1
	}
	if max > 64 {
		max = 64
	}

	now := time.Now()
	c.mu.Lock()
	ws, ok := c.workers[req.Worker]
	if !ok {
		c.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown worker %q (re-register)", req.Worker))
		return
	}
	ws.lastSeen = now
	ws.alive = true
	var grants []LeasedJob
	type resolved struct {
		done  func(harness.Outcome)
		id    string
		value json.RawMessage
	}
	var fromCache []resolved
	for len(grants) < max && len(c.queue) > 0 {
		id := c.queue[0]
		c.queue = c.queue[1:]
		dj, ok := c.jobs[id]
		if !ok || dj.worker != "" {
			continue // settled or re-leased meanwhile; stale queue entry
		}
		// A result may have arrived for this hash since admission (a
		// worker publish, a late delivery): serve it without dispatching.
		// CachedResult takes only the cache journal's leaf lock.
		if c.srv != nil {
			if b, ok := c.srv.CachedResult(dj.hash); ok {
				delete(c.jobs, id)
				c.stats.ResolvedFromCache++
				fromCache = append(fromCache, resolved{dj.done, id, b})
				continue
			}
		}
		dj.worker = req.Worker
		dj.expiry = now.Add(c.cfg.LeaseTTL)
		dj.attempts++
		c.stats.Dispatched++
		grants = append(grants, LeasedJob{ID: id, Hash: dj.hash, Config: dj.config})
	}
	srv := c.srv
	c.mu.Unlock()

	for _, res := range fromCache {
		res.done(harness.Outcome{Key: res.id, Value: res.value})
	}
	if srv != nil {
		for _, g := range grants {
			srv.SetJobPhase(g.ID, jobs.StateRunning, req.Worker)
		}
	}
	if len(grants) > 0 {
		c.cfg.Logf("fleet: leased %d job(s) to %s", len(grants), req.Worker)
	}
	writeJSON(w, http.StatusOK, leaseResponse{Jobs: grants, LeaseTTLNs: int64(c.cfg.LeaseTTL)})
}

// handleComplete settles a delivered outcome. Any worker holding the
// result may deliver — including one whose lease expired — and the
// second delivery of a job id is acknowledged as a duplicate without
// observable effect. An OK delivery whose bytes do not decode (an
// upload cut mid-body) re-queues the job instead of caching garbage.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := readJSON(r, &req); err != nil || req.Job == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`body needs a "job" id`))
		return
	}
	badBytes := req.OK && !json.Valid(req.Value)

	c.mu.Lock()
	if ws, ok := c.workers[req.Worker]; ok {
		ws.lastSeen = time.Now()
		ws.alive = true
	}
	dj, ok := c.jobs[req.Job]
	var requeue bool
	if ok {
		if badBytes {
			dj.worker = ""
			dj.expiry = time.Time{}
			c.stats.Resharded++
			c.queue = append([]string{req.Job}, c.queue...)
			requeue = true
		} else {
			delete(c.jobs, req.Job)
			if req.OK {
				c.stats.CompletedRemote++
			} else {
				c.stats.FailedRemote++
			}
		}
	} else {
		c.stats.LateDeliveries++
	}
	srv := c.srv
	c.mu.Unlock()

	switch {
	case !ok:
		// Late or duplicate delivery: the lease is gone, but a valid
		// result still belongs in the shared cache — the re-sharded copy
		// of this job will resolve from it instead of simulating.
		if req.OK && !badBytes && srv != nil {
			srv.CacheResult(req.Hash, req.Value)
		}
		writeJSON(w, http.StatusOK, completeResponse{Accepted: false, Duplicate: true})
	case requeue:
		c.cfg.Logf("fleet: %s delivered undecodable result for %s, re-queued", req.Worker, req.Job)
		if srv != nil {
			srv.SetJobPhase(req.Job, jobs.StateQueued, "")
		}
		writeJSON(w, http.StatusOK, completeResponse{Accepted: false})
	default:
		o := harness.Outcome{Key: req.Job}
		if req.OK {
			o.Value = req.Value
		} else {
			o.Err = fmt.Errorf("fleet: worker %s: %s", req.Worker, req.Error)
			o.Class = harness.Class(req.Class)
			if o.Class == "" {
				o.Class = harness.ClassError
			}
		}
		dj.done(o)
		writeJSON(w, http.StatusOK, completeResponse{Accepted: true})
	}
}

func (c *Coordinator) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	srv := c.srv
	c.mu.Unlock()
	if srv == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("coordinator starting"))
		return
	}
	b, ok := srv.CachedResult(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached result"))
		return
	}
	c.mu.Lock()
	c.stats.CacheServed++
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

func (c *Coordinator) handleCachePut(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	srv := c.srv
	c.mu.Unlock()
	if srv == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("coordinator starting"))
		return
	}
	b, err := io.ReadAll(io.LimitReader(r.Body, maxCacheBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !srv.CacheResult(r.PathValue("hash"), b) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("body is not a valid result"))
		return
	}
	c.mu.Lock()
	c.stats.CachePublished++
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// maxCacheBodyBytes bounds one published result.
const maxCacheBodyBytes = 64 << 20

func readJSON(r *http.Request, v any) error {
	defer io.Copy(io.Discard, r.Body)
	return json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
