package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"muzha/internal/jobs"
)

// AgentConfig tunes a worker's fleet agent.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:7370".
	Coordinator string
	// ID is the worker's stable identity across restarts (muzhad
	// defaults it to the listen address).
	ID string
	// Slots bounds concurrently leased fleet jobs (default 2). Leased
	// jobs share the local daemon's pool and queue with direct
	// submissions.
	Slots int
	// Heartbeat is the poll interval until registration succeeds and the
	// coordinator advertises its own (default 2s).
	Heartbeat time.Duration
	// HTTPClient overrides the default 10s-timeout client.
	HTTPClient *http.Client
	// Logf, when non-nil, receives one line per fleet event.
	Logf func(format string, args ...any)
}

// Agent connects a worker daemon to the fleet: it registers with the
// coordinator, heartbeats to keep its leases alive, leases queued jobs
// and executes them on the local jobs.Server, and delivers outcomes
// back. It is also the daemon's PeerCache: local cache misses consult
// the coordinator's shared tier before simulating, and fresh local
// results are published to it.
//
// Every coordinator interaction is allowed to fail. An unreachable
// coordinator degrades the worker to a plain single-node daemon — local
// submissions keep working, peer lookups report misses, and undelivered
// completions and publishes wait in a bounded outbox retried on each
// heartbeat until the coordinator returns.
type Agent struct {
	cfg AgentConfig
	hc  *http.Client

	mu         sync.Mutex
	srv        *jobs.Server
	registered bool
	hbEvery    time.Duration
	inFlight   int
	fails      int // consecutive coordinator failures, drives backoff
	outbox     []outboxItem
	stats      jobs.FleetStats

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// outboxItem is an undelivered coordinator write: a job completion
// (complete != nil) or a cache publish.
type outboxItem struct {
	complete *completeRequest
	hash     string
	value    json.RawMessage
}

// maxOutbox bounds undelivered writes during a long partition; beyond
// it the oldest entries are dropped (completions re-deliver naturally —
// the job re-leases as a local cache hit).
const maxOutbox = 1024

// NewAgent creates a fleet agent. Call Bind with the local jobs.Server,
// then Start.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.Slots <= 0 {
		cfg.Slots = 2
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Agent{
		cfg:  cfg,
		hc:   hc,
		stop: make(chan struct{}),
	}
}

// Bind attaches the local daemon the agent executes leased jobs on.
func (a *Agent) Bind(srv *jobs.Server) {
	a.mu.Lock()
	a.srv = srv
	a.mu.Unlock()
}

// Start launches the agent loop. Stop it before draining the server.
func (a *Agent) Start() {
	a.wg.Add(1)
	go a.run()
}

// Stop ends the agent loop and waits for in-flight lease executions to
// settle (their runs are canceled by the server drain that follows).
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.wg.Wait()
}

// FleetStats snapshots the agent for /v1/stats.
func (a *Agent) FleetStats() jobs.FleetStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	st.Mode = "worker"
	st.Registered = a.registered
	st.OutboxDepth = len(a.outbox)
	return st
}

func (a *Agent) run() {
	defer a.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-a.stop
		cancel()
	}()
	for {
		delay := a.tick(ctx)
		select {
		case <-a.stop:
			return
		case <-time.After(delay):
		}
	}
}

// tick is one round of the agent loop: (re)register or heartbeat, flush
// the outbox, lease up to the free slots, and report how long to sleep
// — the advertised heartbeat when healthy, a jittered exponential
// backoff while the coordinator is unreachable.
func (a *Agent) tick(ctx context.Context) time.Duration {
	a.mu.Lock()
	registered := a.registered
	hb := a.hbEvery
	if hb <= 0 {
		hb = a.cfg.Heartbeat
	}
	free := a.cfg.Slots - a.inFlight
	a.mu.Unlock()

	if !registered {
		if err := a.register(ctx); err != nil {
			return a.noteFailure("register", err)
		}
		a.mu.Lock()
		hb = a.hbEvery
		a.mu.Unlock()
	} else if err := a.heartbeat(ctx); err != nil {
		if isNotFound(err) {
			// The coordinator restarted and lost us; re-register on the
			// next tick, quickly.
			a.mu.Lock()
			a.registered = false
			a.mu.Unlock()
			a.cfg.Logf("fleet: coordinator forgot worker %s, re-registering", a.cfg.ID)
			return 10 * time.Millisecond
		}
		return a.noteFailure("heartbeat", err)
	}
	a.noteSuccess()
	a.flushOutbox(ctx)

	if free > 0 {
		leased, err := a.lease(ctx, free)
		if err != nil {
			return a.noteFailure("lease", err)
		}
		for _, lj := range leased {
			a.mu.Lock()
			a.inFlight++
			a.stats.Leased++
			a.mu.Unlock()
			a.wg.Add(1)
			go a.execute(ctx, lj)
		}
		// Drain the backlog eagerly while the coordinator has work.
		if len(leased) == free {
			return 10 * time.Millisecond
		}
	}
	return hb
}

func (a *Agent) noteFailure(op string, err error) time.Duration {
	a.mu.Lock()
	a.fails++
	a.stats.Degraded++
	fails := a.fails
	a.mu.Unlock()
	a.cfg.Logf("fleet: %s against %s failed (attempt %d): %v", op, a.cfg.Coordinator, fails, err)
	// Jittered exponential backoff, capped: a dead coordinator must not
	// be hammered, and a fleet of workers must not retry in lockstep.
	d := a.cfg.Heartbeat << uint(fails-1)
	if max := 30 * time.Second; d > max || d <= 0 {
		d = max
	}
	return time.Duration(float64(d) * (0.75 + 0.5*rand.Float64()))
}

func (a *Agent) noteSuccess() {
	a.mu.Lock()
	a.fails = 0
	a.mu.Unlock()
}

func (a *Agent) register(ctx context.Context) error {
	var resp registerResponse
	if err := a.post(ctx, "/fleet/v1/register", registerRequest{Worker: a.cfg.ID}, &resp); err != nil {
		return err
	}
	a.mu.Lock()
	a.registered = true
	if resp.HeartbeatNs > 0 {
		a.hbEvery = time.Duration(resp.HeartbeatNs)
	}
	a.mu.Unlock()
	a.cfg.Logf("fleet: registered with %s (heartbeat %v)", a.cfg.Coordinator, time.Duration(resp.HeartbeatNs))
	return nil
}

func (a *Agent) heartbeat(ctx context.Context) error {
	return a.post(ctx, "/fleet/v1/heartbeat", heartbeatRequest{Worker: a.cfg.ID}, nil)
}

func (a *Agent) lease(ctx context.Context, max int) ([]LeasedJob, error) {
	var resp leaseResponse
	if err := a.post(ctx, "/fleet/v1/lease", leaseRequest{Worker: a.cfg.ID, Max: max}, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// execute runs one leased job on the local daemon and delivers its
// outcome. The local server gives exactly-once semantics for free: a
// config this worker (or any peer, via the shared tier) already ran is
// a cache hit, and a worker killed mid-run re-runs it from its own
// journal on restart.
func (a *Agent) execute(ctx context.Context, lj LeasedJob) {
	defer a.wg.Done()
	defer func() {
		a.mu.Lock()
		a.inFlight--
		a.mu.Unlock()
	}()
	a.mu.Lock()
	srv := a.srv
	a.mu.Unlock()
	if srv == nil {
		return // not bound yet; the lease will expire and re-shard
	}
	j, err := srv.Execute(ctx, lj.Config, "fleet:"+a.cfg.ID)
	if err != nil {
		// Local pushback or shutdown: stay silent and let the lease
		// expire — the job re-shards to a worker with capacity.
		a.cfg.Logf("fleet: leased job %s not executed: %v", lj.ID, err)
		return
	}
	req := completeRequest{Worker: a.cfg.ID, Job: lj.ID, Hash: lj.Hash}
	switch j.State {
	case jobs.StateDone:
		req.OK = true
		req.Value = j.Result
	case jobs.StateFailed:
		req.Error = j.Error
		req.Class = j.Class
	default:
		// Re-queued by a local drain: the lease expires and re-shards.
		return
	}
	if err := a.deliver(ctx, req); err != nil {
		a.cfg.Logf("fleet: delivery of %s failed, queued in outbox: %v", lj.ID, err)
		a.enqueueOutbox(outboxItem{complete: &req})
	}
}

func (a *Agent) deliver(ctx context.Context, req completeRequest) error {
	var resp completeResponse
	if err := a.post(ctx, "/fleet/v1/complete", req, &resp); err != nil {
		return err
	}
	a.mu.Lock()
	a.stats.Delivered++
	a.mu.Unlock()
	return nil
}

// Fetch implements jobs.PeerCache: consult the coordinator's shared
// tier. Any failure is a miss — the worker just simulates locally.
func (a *Agent) Fetch(hash string) (json.RawMessage, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(a.cfg.Coordinator, "/")+"/fleet/v1/cache/"+hash, nil)
	if err != nil {
		return nil, false
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheBodyBytes))
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, false
	}
	if resp.ContentLength >= 0 && int64(len(b)) != resp.ContentLength {
		return nil, false // cut mid-download; treat as a miss
	}
	if !json.Valid(b) {
		return nil, false
	}
	return b, true
}

// Publish implements jobs.PeerCache: push a fresh local result to the
// shared tier, falling back to the outbox when the coordinator is away.
func (a *Agent) Publish(hash string, result json.RawMessage) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.publishOnce(ctx, hash, result); err != nil {
		a.enqueueOutbox(outboxItem{hash: hash, value: result})
	}
}

func (a *Agent) publishOnce(ctx context.Context, hash string, result json.RawMessage) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		strings.TrimRight(a.cfg.Coordinator, "/")+"/fleet/v1/cache/"+hash, bytes.NewReader(result))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("publish %s: HTTP %d", hash[:min(12, len(hash))], resp.StatusCode)
	}
	return nil
}

func (a *Agent) enqueueOutbox(it outboxItem) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.outbox) >= maxOutbox {
		a.outbox = a.outbox[1:]
	}
	a.outbox = append(a.outbox, it)
}

// flushOutbox retries undelivered completions and publishes, stopping
// at the first failure (the coordinator is likely still away).
func (a *Agent) flushOutbox(ctx context.Context) {
	for {
		a.mu.Lock()
		if len(a.outbox) == 0 {
			a.mu.Unlock()
			return
		}
		it := a.outbox[0]
		a.mu.Unlock()

		var err error
		if it.complete != nil {
			err = a.deliver(ctx, *it.complete)
		} else {
			err = a.publishOnce(ctx, it.hash, it.value)
		}
		if err != nil {
			return
		}
		a.mu.Lock()
		if len(a.outbox) > 0 {
			a.outbox = a.outbox[1:]
		}
		a.mu.Unlock()
	}
}

// post sends one JSON request to the coordinator and decodes the reply.
func (a *Agent) post(ctx context.Context, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(a.cfg.Coordinator, "/")+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &statusError{status: resp.StatusCode, msg: strings.TrimSpace(string(rb))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(rb, out)
}

type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("coordinator HTTP %d: %s", e.status, e.msg)
}

func isNotFound(err error) bool {
	se, ok := err.(*statusError)
	return ok && se.status == http.StatusNotFound
}
