package fleet

import (
	"bytes"
	"testing"
	"time"

	"muzha/internal/jobs"
)

// The tests in this file drive the crash windows the journal recovery
// contract promises to close (see the package comment and
// DESIGN.md "Fleet architecture"): whatever instant the coordinator or
// a worker dies, the fleet converges to exactly-once observable
// results — one simulation, one terminal job record, serial-identical
// bytes.

// TestCoordinatorRestartRecoversLeasedJob kills the coordinator after a
// lease was granted (the store journal already holds the "running"
// snapshot) and restarts it on the same data directory. The job must
// come back queued, and the old worker's late delivery must settle it —
// then a second delivery of the same job id must be acknowledged as a
// duplicate with no observable effect.
func TestCoordinatorRestartRecoversLeasedJob(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	c1 := startCoordinator(t, dir, time.Minute, 25*time.Millisecond)
	cfg := chainConfig(t, 2, time.Second, 21)

	j, err := c1.cli.Submit(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	zombie := &fakeWorker{t: t, base: c1.url, id: "zombie"}
	zombie.register()
	leased := zombie.lease(1)
	if len(leased) != 1 || leased[0].ID != j.ID {
		t.Fatalf("zombie leased %v, want job %s", leased, j.ID)
	}
	// The worker finishes its run just as the coordinator dies: it holds
	// the result bytes but has nowhere to deliver them yet.
	val := serialResult(t, cfg)
	// SIGKILL stand-in: stop serving and abandon the process state. The
	// lease table dies with it; only the journal under dir survives.
	c1.ts.Close()

	c2 := startCoordinator(t, dir, time.Minute, 25*time.Millisecond)
	if got := c2.srv.Snapshot().Requeued; got != 1 {
		t.Fatalf("restart requeued %d jobs, want 1", got)
	}

	// The old worker retries its delivery against the restarted
	// coordinator — without re-registering, as a real outbox flush
	// would. The requeued job is settled directly by it.
	survivor := &fakeWorker{t: t, base: c2.url, id: "zombie"}
	resp := survivor.complete(completeRequest{
		Worker: "zombie", Job: j.ID, Hash: leased[0].Hash, OK: true, Value: val,
	})
	if !resp.Accepted || resp.Duplicate {
		t.Fatalf("late delivery = %+v, want accepted", resp)
	}
	done, err := c2.cli.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("job ended %s [%s]: %s", done.State, done.Class, done.Error)
	}
	got, err := c2.cli.Result(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("recovered result differs from the delivered bytes")
	}

	// Double delivery of the same job id: acknowledged as a duplicate,
	// counters unchanged.
	resp = survivor.complete(completeRequest{
		Worker: "zombie", Job: j.ID, Hash: leased[0].Hash, OK: true, Value: val,
	})
	if resp.Accepted || !resp.Duplicate {
		t.Fatalf("second delivery = %+v, want duplicate", resp)
	}
	if st := c2.srv.Snapshot(); st.Completed != 1 {
		t.Fatalf("completed = %d after double delivery, want exactly 1", st.Completed)
	}
	f := c2.coord.FleetStats()
	if f.CompletedRemote != 1 {
		t.Fatalf("completed remote = %d, want 1", f.CompletedRemote)
	}
	if f.LateDeliveries != 1 {
		t.Fatalf("late deliveries = %d, want 1", f.LateDeliveries)
	}
}

// TestCoordinatorKilledBeforeDispatchRequeues covers the other end of
// the crash window: the coordinator dies after admission but before any
// lease (journal state still "queued" — equivalent to dying between a
// lease grant and its journal flush). The restart must re-queue the job
// and a worker joining the new coordinator must compute it.
func TestCoordinatorKilledBeforeDispatchRequeues(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	c1 := startCoordinator(t, dir, time.Minute, 25*time.Millisecond)
	cfg := chainConfig(t, 2, time.Second, 22)

	j, err := c1.cli.Submit(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1.ts.Close()

	c2 := startCoordinator(t, dir, time.Minute, 25*time.Millisecond)
	if got := c2.srv.Snapshot().Requeued; got != 1 {
		t.Fatalf("restart requeued %d jobs, want 1", got)
	}
	startWorker(t, "w1", c2.url, 2)

	done, err := c2.cli.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("job ended %s [%s]: %s", done.State, done.Class, done.Error)
	}
	got, err := c2.cli.Result(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := serialResult(t, cfg); !bytes.Equal(got, want) {
		t.Fatal("recovered result differs from serial run")
	}
}

// TestWorkerComputedButUnreportedConvergesToCacheHit kills a worker in
// the narrowest window: the run finished and sits in the worker's local
// cache journal, but the completion never reached the coordinator. The
// lease expires, and when the worker rejoins under the same identity,
// the re-leased job must resolve as a local cache hit — exactly one
// simulation ever runs.
func TestWorkerComputedButUnreportedConvergesToCacheHit(t *testing.T) {
	ctx := testCtx(t)
	c := startCoordinator(t, t.TempDir(), 300*time.Millisecond, 60*time.Millisecond)
	cfg := chainConfig(t, 2, time.Second, 33)

	j, err := c.cli.Submit(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The worker daemon survives the "crash" (its journals would); only
	// its fleet agent dies, so the protocol is driven by hand up to the
	// moment the completion would have been delivered.
	wsrv, err := jobs.NewServer(jobs.ServerConfig{DataDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		wsrv.Drain(0)
		wsrv.Close()
	})
	ghost := &fakeWorker{t: t, base: c.url, id: "w1"}
	ghost.register()
	leased := ghost.lease(1)
	if len(leased) != 1 || leased[0].ID != j.ID {
		t.Fatalf("ghost leased %v, want job %s", leased, j.ID)
	}
	jw, err := wsrv.Execute(ctx, leased[0].Config, "fleet:w1")
	if err != nil {
		t.Fatal(err)
	}
	if jw.State != jobs.StateDone {
		t.Fatalf("local execution ended %s [%s]: %s", jw.State, jw.Class, jw.Error)
	}
	// ...and dies here, before reporting. The lease must expire and the
	// job re-queue.
	waitFor(t, 10*time.Second, "lease expiry to re-shard the job", func() bool {
		return c.coord.FleetStats().Resharded >= 1
	})

	// The worker restarts with the same identity and a live agent. The
	// re-leased job is a local cache hit — no second simulation.
	agent := NewAgent(AgentConfig{
		Coordinator: c.url,
		ID:          "w1",
		Slots:       2,
		Heartbeat:   20 * time.Millisecond,
	})
	agent.Bind(wsrv)
	agent.Start()
	t.Cleanup(agent.Stop)

	done, err := c.cli.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone {
		t.Fatalf("job ended %s [%s]: %s", done.State, done.Class, done.Error)
	}
	got, err := c.cli.Result(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, jw.Result) {
		t.Fatal("redelivered result differs from the pre-crash run")
	}
	if want := serialResult(t, cfg); !bytes.Equal(got, want) {
		t.Fatal("redelivered result differs from serial run")
	}

	st := wsrv.Snapshot()
	if st.Completed != 1 {
		t.Fatalf("worker completed %d runs, want exactly 1", st.Completed)
	}
	if st.CacheHits != 1 {
		t.Fatalf("worker cache hits = %d, want 1 (the redelivery)", st.CacheHits)
	}
}
