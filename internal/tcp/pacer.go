package tcp

import (
	"math"

	"muzha/internal/sim"
)

// Pacing rate clamps. A configured rate is always folded into
// [MinPacingRate, MaxPacingRate]; zero (or negative, or NaN) means "no
// rate estimate yet" and leaves the gate open, so a sender is never
// stalled by a model that has not produced its first sample.
const (
	// MinPacingRate is the floor in bytes/s (one MSS-ish segment per
	// 1.5s): slower rates would starve the RTO machinery.
	MinPacingRate = 1000.0
	// MaxPacingRate caps the rate in bytes/s; anything above (including
	// +Inf) releases packets with sub-nanosecond gaps, i.e. effectively
	// unpaced but without overflowing the virtual clock.
	MaxPacingRate = 1e12
	// maxPacingGap bounds a single inter-packet gap so a transient
	// near-zero rate estimate cannot park the flow beyond the RTO.
	maxPacingGap = 2 * sim.Second
)

// Pacer releases segments on a rate schedule instead of ack-clocked
// bursts. It is a virtual-clock token gate: each transmitted packet
// advances the earliest next-release time by size/rate, and when the
// send loop reaches a closed gate it parks on a sim timer that re-pumps
// the sender at the release instant.
//
// A nil *Pacer (the default — senders are unpaced unless SenderConfig
// .Pace is set or a model-based variant binds one) leaves the sender's
// scheduling bit-identical to the historical ack-clocked behaviour.
type Pacer struct {
	sim   *sim.Simulator
	timer *sim.Timer
	pump  func()

	rate float64  // bytes per second; 0 = no estimate, gate open
	next sim.Time // earliest time the next packet may leave

	// Counters for tests and diagnostics.
	releases  uint64 // packets that charged the virtual clock
	deferrals uint64 // times the send loop parked on the gate
}

// NewPacer builds a pacer on s whose gate re-opens by invoking pump
// (typically the owning sender's TrySend).
func NewPacer(s *sim.Simulator, pump func()) *Pacer {
	p := &Pacer{sim: s, pump: pump}
	p.timer = sim.NewTimer(s, p.onTimer)
	return p
}

// SetRate installs a pacing rate in bytes/s, clamped into
// [MinPacingRate, MaxPacingRate]. NaN, +Inf and anything above the cap
// clamp to MaxPacingRate; zero or negative rates clear the estimate and
// leave the gate open.
func (p *Pacer) SetRate(bytesPerSec float64) {
	switch {
	case math.IsNaN(bytesPerSec) || bytesPerSec > MaxPacingRate:
		p.rate = MaxPacingRate
	case bytesPerSec <= 0:
		p.rate = 0
	case bytesPerSec < MinPacingRate:
		p.rate = MinPacingRate
	default:
		p.rate = bytesPerSec
	}
}

// Rate returns the clamped pacing rate in bytes/s (0 = unpaced).
func (p *Pacer) Rate() float64 { return p.rate }

// HoldFor returns how long the gate stays closed from now (0 = open).
func (p *Pacer) HoldFor(now sim.Time) sim.Time {
	if p.rate <= 0 || p.next <= now {
		return 0
	}
	return p.next - now
}

// OnSend charges one transmitted packet of the given wire size against
// the virtual clock, pushing the next release time forward by
// size/rate (bounded by maxPacingGap).
func (p *Pacer) OnSend(now sim.Time, size int) {
	p.releases++
	if p.rate <= 0 {
		p.next = now
		return
	}
	gap := sim.Time(float64(size) / p.rate * float64(sim.Second))
	if gap > maxPacingGap {
		gap = maxPacingGap
	}
	base := p.next
	if now > base {
		base = now
	}
	p.next = base + gap
}

// arm parks the pump on the gate: the timer fires at now+wait, the
// release instant computed by HoldFor. Re-arming while already parked
// is an in-place rearm to the same instant (Timer.Reset), so repeated
// TrySend calls against a closed gate cost no allocations.
func (p *Pacer) arm(wait sim.Time) {
	p.deferrals++
	p.timer.Reset(wait)
}

// Stop cancels a pending release (flow finished or torn down).
func (p *Pacer) Stop() { p.timer.Stop() }

// Pending reports whether a release is parked on the timer.
func (p *Pacer) Pending() bool { return p.timer.Pending() }

// Releases returns how many packets charged the virtual clock.
func (p *Pacer) Releases() uint64 { return p.releases }

// Deferrals returns how often the send loop parked on a closed gate.
func (p *Pacer) Deferrals() uint64 { return p.deferrals }

func (p *Pacer) onTimer() {
	if p.pump != nil {
		p.pump()
	}
}
