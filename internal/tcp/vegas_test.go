package tcp

import (
	"testing"

	"muzha/internal/sim"
)

// runRTT advances the simulator and delivers one ACK with the given RTT,
// driving the Vegas once-per-RTT decision logic.
func runRTT(s *sim.Simulator, snd *Sender, w *wire, rtt sim.Time) {
	segs := w.take()
	if len(segs) == 0 {
		// Keep the ACK clock running even without fresh segments.
		s.Run(s.Now() + rtt)
		snd.Recv(ackFor(snd.SndUna(), int64(s.Now()-rtt)))
		return
	}
	s.Run(s.Now() + rtt)
	for _, p := range segs {
		snd.Recv(ackFor(p.TCP.Seq+int64(snd.MSS()), p.SendTime))
	}
}

func TestVegasSlowStartDoublesEveryOtherRTT(t *testing.T) {
	v := NewVegas()
	s, snd, w, _ := testSender(t, v, nil)
	snd.Start()

	// Constant RTT = baseRTT: diff stays 0, slow start continues.
	runRTT(s, snd, w, 40*sim.Millisecond) // adjustment 1: grow -> 2
	c1 := snd.Cwnd()
	runRTT(s, snd, w, 40*sim.Millisecond) // adjustment 2: hold
	c2 := snd.Cwnd()
	runRTT(s, snd, w, 40*sim.Millisecond) // adjustment 3: grow -> 4
	c3 := snd.Cwnd()

	if c1 != 2 {
		t.Fatalf("after first RTT cwnd = %g, want 2", c1)
	}
	if c2 != 2 {
		t.Fatalf("hold RTT changed cwnd to %g", c2)
	}
	if c3 != 4 {
		t.Fatalf("after third RTT cwnd = %g, want 4", c3)
	}
}

func TestVegasExitsSlowStartWhenBacklogExceedsGamma(t *testing.T) {
	v := NewVegas()
	s, snd, w, _ := testSender(t, v, nil)
	snd.Start()

	runRTT(s, snd, w, 40*sim.Millisecond) // base RTT established, cwnd 2
	runRTT(s, snd, w, 40*sim.Millisecond)
	runRTT(s, snd, w, 40*sim.Millisecond) // cwnd 4
	// RTT inflates heavily: backlog > gamma, slow start must end with a
	// 1/8 reduction.
	before := snd.Cwnd()
	runRTT(s, snd, w, 120*sim.Millisecond)
	if v.slowStart {
		t.Fatal("Vegas still in slow start despite inflated RTT")
	}
	if got := snd.Cwnd(); got != before*7/8 {
		t.Fatalf("exit reduction: cwnd = %g, want %g", got, before*7/8)
	}
}

func TestVegasCongestionAvoidanceWindowDecisions(t *testing.T) {
	v := NewVegas()
	v.slowStart = false
	s, snd, w, _ := testSender(t, v, func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()

	// Establish base RTT 40 ms.
	runRTT(s, snd, w, 40*sim.Millisecond)
	base := snd.Cwnd()

	// diff = cwnd*(1 - base/rtt): with rtt=41ms, diff ~ 0.2 < alpha:
	// increase by one.
	runRTT(s, snd, w, 41*sim.Millisecond)
	if snd.Cwnd() != base+1 {
		t.Fatalf("small backlog: cwnd = %g, want %g", snd.Cwnd(), base+1)
	}

	// rtt=80ms: diff = cwnd/2 > beta: decrease by one.
	prev := snd.Cwnd()
	runRTT(s, snd, w, 80*sim.Millisecond)
	if snd.Cwnd() != prev-1 {
		t.Fatalf("large backlog: cwnd = %g, want %g", snd.Cwnd(), prev-1)
	}

	// rtt=52ms with cwnd 8: diff = 8*(1-40/52) ~ 1.85, between alpha and
	// beta: hold.
	prev = snd.Cwnd()
	runRTT(s, snd, w, 52*sim.Millisecond)
	if snd.Cwnd() != prev {
		t.Fatalf("in-band backlog: cwnd moved %g -> %g", prev, snd.Cwnd())
	}
}

func TestVegasDupAckCutsQuarter(t *testing.T) {
	v := NewVegas()
	v.slowStart = false
	_, snd, w, fl := testSender(t, v, func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.take()

	for i := 0; i < 3; i++ {
		snd.Recv(ackFor(0, -1))
	}
	if snd.Cwnd() != 6 {
		t.Fatalf("Vegas loss cut: cwnd = %g, want 6 (3/4 of 8)", snd.Cwnd())
	}
	if fl.Retransmissions != 1 {
		t.Fatalf("retransmissions = %d", fl.Retransmissions)
	}
	// Further dup ACKs within the same recovery must not cut again.
	snd.Recv(ackFor(0, -1))
	snd.Recv(ackFor(0, -1))
	snd.Recv(ackFor(0, -1))
	if snd.Cwnd() != 6 {
		t.Fatalf("repeated cut within recovery: cwnd = %g", snd.Cwnd())
	}
}

func TestVegasTimeoutRestartsSlowStart(t *testing.T) {
	v := NewVegas()
	v.slowStart = false
	_, snd, _, _ := testSender(t, v, func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	v.OnTimeout(snd)
	if !v.slowStart {
		t.Fatal("timeout did not restart Vegas slow start")
	}
	if snd.Cwnd() != 2 {
		t.Fatalf("cwnd after Vegas timeout = %g, want 2", snd.Cwnd())
	}
}

func TestVegasKeepsWindowSmallUnderQueueing(t *testing.T) {
	// Under persistently inflated RTTs, Vegas should converge to a small
	// stable window — the behaviour the paper observes in Figures
	// 5.2-5.7.
	v := NewVegas()
	s, snd, w, _ := testSender(t, v, nil)
	snd.Start()

	runRTT(s, snd, w, 40*sim.Millisecond)
	var tail []float64
	for i := 0; i < 20; i++ {
		// Every RTT is double the base: strong backlog signal.
		runRTT(s, snd, w, 80*sim.Millisecond)
		if i >= 10 {
			tail = append(tail, snd.Cwnd())
		}
	}
	if snd.Cwnd() > 4 {
		t.Fatalf("Vegas window grew to %g under persistent queueing", snd.Cwnd())
	}
	if snd.Cwnd() < 2 {
		t.Fatalf("Vegas window collapsed below its floor: %g", snd.Cwnd())
	}
	for _, c := range tail {
		if c != tail[0] {
			t.Fatalf("Vegas window not stable under steady congestion: %v", tail)
		}
	}
}
