package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

// TestQuickSenderInvariantsUnderRandomAcks throws arbitrary ACK streams
// (valid, stale, duplicate, out-of-range) at every variant and checks the
// structural invariants no input may violate:
//
//   - SndUna never decreases and never passes SndNxt,
//   - the congestion window never drops below one segment,
//   - acknowledged bytes never exceed transmitted bytes.
func TestQuickSenderInvariantsUnderRandomAcks(t *testing.T) {
	variants := []func() Variant{
		func() Variant { return NewTahoe() },
		func() Variant { return NewReno2() },
		func() Variant { return NewNewReno() },
		func() Variant { return NewSACK() },
		func() Variant { return NewVegas() },
		func() Variant { return NewVeno() },
		func() Variant { return NewWestwood() },
		func() Variant { return NewJersey() },
		func() Variant { return NewECNNewReno() },
		func() Variant { return NewCUBIC() },
		func() Variant { return NewBBRLite() },
	}
	f := func(seed int64, vIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		v := variants[int(vIdx)%len(variants)]()
		s := sim.New(seed)
		var sentBytes int64
		send := func(p *packet.Packet) {
			sentBytes += int64(p.Size - packet.IPHeaderSize - packet.TCPHeaderSize)
		}
		snd, err := NewSender(s, send, SenderConfig{
			FlowID: 1, Dst: 4, MSS: 1000, AdvertisedWindow: 16,
		}, v)
		if err != nil {
			t.Fatal(err)
		}
		snd.Start()

		prevUna := snd.SndUna()
		for i := 0; i < 300; i++ {
			// Random time advance keeps RTO and per-RTT logic moving.
			s.Run(s.Now() + sim.Time(rng.Intn(50))*sim.Millisecond)

			// Random ACK: sometimes sensible, sometimes garbage.
			var ackNo int64
			switch rng.Intn(4) {
			case 0:
				ackNo = snd.SndUna() // duplicate
			case 1:
				ackNo = snd.SndUna() + int64(rng.Intn(3)+1)*1000 // progress
			case 2:
				ackNo = rng.Int63n(snd.SndNxt() + 5000) // arbitrary
			default:
				ackNo = snd.SndUna() - int64(rng.Intn(2000)) // stale
			}
			hdr := &packet.TCPHeader{FlowID: 1, Ack: ackNo, IsAck: true}
			if rng.Intn(3) == 0 {
				hdr.Echo = packet.MuzhaEcho{MRAI: rng.Intn(6), Marked: rng.Intn(2) == 0}
			}
			if rng.Intn(4) == 0 {
				start := rng.Int63n(snd.SndNxt() + 1000)
				hdr.SACK = []packet.SACKBlock{{Start: start, End: start + int64(rng.Intn(3000))}}
			}
			if rng.Intn(3) == 0 {
				hdr.TSEcho = rng.Int63n(int64(s.Now()) + 2)
			}
			snd.Recv(&packet.Packet{Kind: packet.KindData, TCP: hdr})

			if snd.SndUna() < prevUna {
				t.Fatalf("%s: SndUna went backwards: %d -> %d", v.Name(), prevUna, snd.SndUna())
			}
			prevUna = snd.SndUna()
			if snd.SndUna() > snd.SndNxt() {
				t.Fatalf("%s: SndUna %d passed SndNxt %d", v.Name(), snd.SndUna(), snd.SndNxt())
			}
			if snd.Cwnd() < 1 {
				t.Fatalf("%s: cwnd below one segment: %g", v.Name(), snd.Cwnd())
			}
			if snd.SndUna() > sentBytes {
				t.Fatalf("%s: acked %d > sent %d", v.Name(), snd.SndUna(), sentBytes)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSinkNeverRegresses feeds random segments and checks the
// cumulative ACK point is monotone and bounded by the bytes received.
func TestQuickSinkNeverRegresses(t *testing.T) {
	f := func(seed int64, sackOn bool) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.New(seed)
		var acks []*packet.Packet
		k := NewSink(s, func(p *packet.Packet) { acks = append(acks, p) },
			SinkConfig{FlowID: 1, Peer: 0, SACKEnabled: sackOn})

		prev := int64(0)
		for i := 0; i < 200; i++ {
			seq := rng.Int63n(40) * 1000
			k.Recv(&packet.Packet{
				Kind: packet.KindData,
				Size: 1000 + packet.IPHeaderSize + packet.TCPHeaderSize,
				TCP:  &packet.TCPHeader{FlowID: 1, Seq: seq},
			})
			if k.Delivered() < prev {
				return false
			}
			prev = k.Delivered()
		}
		// Every generated ACK must be cumulative and nondecreasing.
		last := int64(0)
		for _, a := range acks {
			if a.TCP.Ack < last {
				return false
			}
			last = a.TCP.Ack
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
