package tcp

import (
	"testing"

	"muzha/internal/sim"
)

// bbrRound delivers one segment at the given rate (bytes/s) and runs
// the variant's ACK hook: the sampler sees an idle-restart send
// followed by its ACK 1000/rate seconds later, so the delivery-rate
// sample equals rate exactly. The sender never transmits, so its
// flight stays zero and every ACK starts a new model round.
func bbrRound(s *sim.Simulator, snd *Sender, v *BBRLite, seq *int64, rate float64) {
	now := s.Now()
	v.sampler.OnSend(*seq+1000, now, true)
	s.Run(now + sim.Time(1000/rate*float64(sim.Second)))
	v.sampler.OnAck(*seq+1000, s.Now(), 1000)
	*seq += 1000
	v.OnNewAck(snd, ackFor(*seq, -1), 1000)
}

func TestBBRLiteBindsSeams(t *testing.T) {
	v := NewBBRLite()
	_, snd, _, _ := testSender(t, v, nil)
	if snd.Pacer() == nil || snd.RateSampler() == nil {
		t.Fatal("Bind did not attach the pacer and sampler")
	}
	if v.pacer != snd.Pacer() || v.sampler != snd.RateSampler() {
		t.Fatal("variant holds different seams than the sender")
	}
	if v.State() != "startup" {
		t.Fatalf("initial state = %q, want startup", v.State())
	}
	if v.PacingGain() != bbrHighGain {
		t.Fatalf("startup pacing gain = %g, want %g", v.PacingGain(), bbrHighGain)
	}
}

func TestBBRLiteStartupExitsOnPlateau(t *testing.T) {
	v := NewBBRLite()
	s, snd, _, _ := testSender(t, v, nil)
	var seq int64

	// While the bandwidth estimate keeps growing >= 25% per round the
	// sender must stay in startup.
	for _, bw := range []float64{10000, 20000, 40000} {
		bbrRound(s, snd, v, &seq, bw)
		if v.State() != "startup" {
			t.Fatalf("left startup while bandwidth was doubling (bw=%g)", bw)
		}
	}
	if got := v.BtlBw(); got != 40000 {
		t.Fatalf("BtlBw = %g, want 40000", got)
	}
	// Startup paces at highGain * BtlBw.
	if got, want := snd.Pacer().Rate(), bbrHighGain*v.BtlBw(); got < want-1e-6 || got > want+1e-6 {
		t.Fatalf("startup pacing rate = %g, want %g", got, want)
	}

	// Three consecutive rounds without 25% growth: the pipe is full.
	for i := 0; i < bbrFullBwRounds; i++ {
		if v.State() != "startup" {
			t.Fatalf("exited startup after %d plateau rounds, want %d", i, bbrFullBwRounds)
		}
		bbrRound(s, snd, v, &seq, 40000)
	}
	if v.State() != "drain" {
		t.Fatalf("state after plateau = %q, want drain", v.State())
	}
	if v.PacingGain() != bbrDrainGain {
		t.Fatalf("drain pacing gain = %g, want %g", v.PacingGain(), bbrDrainGain)
	}
}

func TestBBRLiteDrainWaitsForBDP(t *testing.T) {
	v := NewBBRLite()
	s, snd, _, _ := testSender(t, v, nil)
	var seq int64
	for _, bw := range []float64{10000, 40000, 40000, 40000, 40000} {
		bbrRound(s, snd, v, &seq, bw)
	}
	if v.State() != "drain" {
		t.Fatalf("setup did not reach drain: %q", v.State())
	}

	// BDP = 40000 B/s * 10ms = 400 bytes. With 5000 bytes still in
	// flight the queue is not drained; the state must hold.
	snd.sampleRTT(10 * sim.Millisecond)
	snd.sndNxt = seq + 5000
	snd.sndUna = seq
	bbrRound(s, snd, v, &seq, 40000)
	if v.State() != "drain" {
		t.Fatalf("left drain with flight 5000 > BDP 400 (state %q)", v.State())
	}

	// Flight below the BDP: probe-bw begins at cycle phase 0.
	snd.sndUna = snd.sndNxt
	v.OnNewAck(snd, ackFor(snd.sndNxt, -1), 1000)
	if v.State() != "probe-bw" {
		t.Fatalf("drained flight did not enter probe-bw (state %q)", v.State())
	}
	if v.CycleIndex() != 0 {
		t.Fatalf("probe-bw begins at phase %d, want 0", v.CycleIndex())
	}
}

func TestBBRLiteProbeBWGainCycling(t *testing.T) {
	v := NewBBRLite()
	s, snd, _, _ := testSender(t, v, nil)
	var seq int64
	for _, bw := range []float64{10000, 40000, 40000, 40000, 40000, 40000} {
		bbrRound(s, snd, v, &seq, bw)
	}
	snd.sampleRTT(10 * sim.Millisecond)
	v.OnNewAck(snd, ackFor(seq, -1), 1000) // drain -> probe-bw (flight 0)
	if v.State() != "probe-bw" {
		t.Fatalf("setup did not reach probe-bw: %q", v.State())
	}

	// Each ACK arriving >= minRTT after the phase start advances the
	// gain cycle: probe 1.25, drain 0.75, then six cruise phases, wrap.
	for i := 1; i <= 2*len(bbrCycleGains); i++ {
		s.Run(s.Now() + 10*sim.Millisecond)
		v.OnNewAck(snd, ackFor(seq, -1), 1000)
		want := i % len(bbrCycleGains)
		if v.CycleIndex() != want {
			t.Fatalf("ack %d: cycle phase = %d, want %d", i, v.CycleIndex(), want)
		}
		if got := v.PacingGain(); got != bbrCycleGains[want] {
			t.Fatalf("ack %d: pacing gain = %g, want %g", i, got, bbrCycleGains[want])
		}
		// The pacing rate follows the phase gain.
		if got, want := snd.Pacer().Rate(), v.PacingGain()*v.BtlBw(); got != want {
			t.Fatalf("ack %d: pacing rate = %g, want gain*BtlBw = %g", i, got, want)
		}
	}

	// ACKs inside the same minRTT do not advance the cycle.
	before := v.CycleIndex()
	s.Run(s.Now() + 2*sim.Millisecond)
	v.OnNewAck(snd, ackFor(seq, -1), 1000)
	if v.CycleIndex() != before {
		t.Fatal("cycle advanced before a minRTT elapsed")
	}
}

func TestBBRLiteAppLimitedSamplesOnlyRaise(t *testing.T) {
	v := NewBBRLite()
	s, snd, _, _ := testSender(t, v, nil)
	var seq int64
	bbrRound(s, snd, v, &seq, 40000)
	if v.BtlBw() != 40000 {
		t.Fatalf("BtlBw = %g, want 40000", v.BtlBw())
	}

	// An app-limited sample at half the rate under-estimates the path:
	// it must not displace the higher estimate.
	v.sampler.OnSend(seq+1000, s.Now(), true)
	v.sampler.OnAppLimited(seq + 1000)
	s.Run(s.Now() + sim.Time(1000.0/20000*float64(sim.Second)))
	v.sampler.OnAck(seq+1000, s.Now(), 1000)
	seq += 1000
	v.OnNewAck(snd, ackFor(seq, -1), 1000)
	if v.BtlBw() != 40000 {
		t.Fatalf("app-limited 20000 B/s sample moved BtlBw to %g", v.BtlBw())
	}

	// An app-limited sample above the estimate is still evidence of
	// more bandwidth and may raise the filter.
	v.sampler.OnSend(seq+1000, s.Now(), true)
	v.sampler.OnAppLimited(seq + 1000)
	s.Run(s.Now() + sim.Time(1000.0/80000*float64(sim.Second)))
	v.sampler.OnAck(seq+1000, s.Now(), 1000)
	seq += 1000
	v.OnNewAck(snd, ackFor(seq, -1), 1000)
	if v.BtlBw() != 80000 {
		t.Fatalf("app-limited 80000 B/s sample did not raise BtlBw (got %g)", v.BtlBw())
	}
}

func TestBBRLiteTimeoutCollapsesToMinCwnd(t *testing.T) {
	v := NewBBRLite()
	_, snd, _, _ := testSender(t, v, nil)
	snd.SetCwnd(50)
	v.OnTimeout(snd)
	if snd.Cwnd() != bbrMinCwnd {
		t.Fatalf("cwnd after RTO = %g, want %g", snd.Cwnd(), bbrMinCwnd)
	}
}

// TestBBRLitePacedEndToEnd smoke-drives the full sender loop: the flow
// makes progress, the pacer actually defers sends, and the window ends
// bounded near the model's BDP rather than the advertised window.
func TestBBRLitePacedEndToEnd(t *testing.T) {
	v := NewBBRLite()
	s, snd, w, _ := testSender(t, v, nil)
	snd.Start()
	for i := 0; i < 60; i++ {
		s.Run(s.Now() + 20*sim.Millisecond)
		ackAll(snd, w, 1000)
		s.Run(s.Now() + sim.Millisecond) // let parked releases fire
	}
	if snd.SndUna() == 0 {
		t.Fatal("paced BBR flow made no progress")
	}
	if snd.Pacer().Releases() == 0 {
		t.Fatal("no packets charged the pacer")
	}
	if v.BtlBw() <= 0 {
		t.Fatal("no bandwidth estimate after 60 ack rounds")
	}
	if v.State() == "startup" {
		t.Fatalf("still in startup after 60 constant-rate rounds")
	}
}
