package tcp

import (
	"testing"
	"testing/quick"

	"muzha/internal/packet"
)

func TestScoreboardMerge(t *testing.T) {
	var b Scoreboard
	b.Add([]packet.SACKBlock{{Start: 3000, End: 4000}})
	b.Add([]packet.SACKBlock{{Start: 1000, End: 2000}})
	b.Add([]packet.SACKBlock{{Start: 1500, End: 3200}}) // bridges both
	if got := b.SackedBytes(); got != 3000 {
		t.Fatalf("SackedBytes = %d, want 3000 (merged 1000..4000)", got)
	}
	if !b.IsSacked(2500) || b.IsSacked(999) || b.IsSacked(4000) {
		t.Fatal("IsSacked boundaries wrong")
	}
}

func TestScoreboardIgnoresEmptyBlocks(t *testing.T) {
	var b Scoreboard
	b.Add([]packet.SACKBlock{{Start: 5, End: 5}, {Start: 9, End: 3}})
	if b.SackedBytes() != 0 {
		t.Fatal("degenerate blocks accepted")
	}
}

func TestScoreboardAdvance(t *testing.T) {
	var b Scoreboard
	b.Add([]packet.SACKBlock{{Start: 1000, End: 2000}, {Start: 3000, End: 4000}})
	b.AdvanceTo(1500)
	if b.IsSacked(1200) {
		t.Fatal("bytes below ack point still sacked")
	}
	if got := b.SackedBytes(); got != 1500 {
		t.Fatalf("after advance: %d bytes, want 1500", got)
	}
	b.AdvanceTo(5000)
	if b.SackedBytes() != 0 {
		t.Fatal("advance past everything should empty the board")
	}
}

func TestScoreboardNextHole(t *testing.T) {
	var b Scoreboard
	b.Add([]packet.SACKBlock{{Start: 1000, End: 2000}, {Start: 3000, End: 4000}})
	// From 0: hole at 0.
	if hole, ok := b.NextHole(0, 10000); !ok || hole != 0 {
		t.Fatalf("hole = %d/%v, want 0", hole, ok)
	}
	// From 1000 (sacked): hole at 2000.
	if hole, ok := b.NextHole(1000, 10000); !ok || hole != 2000 {
		t.Fatalf("hole = %d/%v, want 2000", hole, ok)
	}
	// From 3500 (inside second block): hole at 4000.
	if hole, ok := b.NextHole(3500, 10000); !ok || hole != 4000 {
		t.Fatalf("hole = %d/%v, want 4000", hole, ok)
	}
	// Limit below the next hole: none.
	if _, ok := b.NextHole(1000, 2000); ok {
		t.Fatal("hole reported beyond limit")
	}
	b.Reset()
	if b.SackedBytes() != 0 {
		t.Fatal("Reset did not clear")
	}
}

// Property: after arbitrary adds, blocks are disjoint, sorted and
// IsSacked agrees with the union of the inputs.
func TestQuickScoreboardUnion(t *testing.T) {
	f := func(raw []uint16) bool {
		var b Scoreboard
		covered := make(map[int64]bool)
		for i := 0; i+1 < len(raw); i += 2 {
			start := int64(raw[i] % 500)
			end := start + int64(raw[i+1]%50)
			b.Add([]packet.SACKBlock{{Start: start, End: end}})
			for s := start; s < end; s++ {
				covered[s] = true
			}
		}
		for s := int64(0); s < 560; s++ {
			if b.IsSacked(s) != covered[s] {
				return false
			}
		}
		return int64(len(covered)) == b.SackedBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sackAck(ackNo int64, blocks ...packet.SACKBlock) *packet.Packet {
	return &packet.Packet{
		Kind: packet.KindData,
		TCP:  &packet.TCPHeader{FlowID: 1, Ack: ackNo, IsAck: true, SACK: blocks},
	}
}

func TestSACKRecoveryRetransmitsHolesFirst(t *testing.T) {
	_, snd, w, fl := testSender(t, NewSACK(), func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.take() // segments 0..7000

	// Segments 0 and 3000 lost; the receiver SACKs the rest as it
	// arrives, all at cumulative ACK 0 (pure duplicates).
	snd.Recv(sackAck(0, packet.SACKBlock{Start: 1000, End: 2000}))
	snd.Recv(sackAck(0, packet.SACKBlock{Start: 1000, End: 3000}))
	snd.Recv(sackAck(0, packet.SACKBlock{Start: 1000, End: 3000}, packet.SACKBlock{Start: 4000, End: 5000}))

	// Third dup ACK: fast retransmit of the head hole.
	out := w.take()
	if len(out) != 1 || out[0].TCP.Seq != 0 {
		t.Fatalf("entry retransmission = %v, want seq 0", out)
	}
	if fl.FastRecoveries != 1 {
		t.Fatalf("recoveries = %d", fl.FastRecoveries)
	}

	// Further dup ACKs drain the pipe until the second hole (3000) fits.
	snd.Recv(sackAck(0, packet.SACKBlock{Start: 1000, End: 3000}, packet.SACKBlock{Start: 4000, End: 6000}))
	snd.Recv(sackAck(0, packet.SACKBlock{Start: 1000, End: 3000}, packet.SACKBlock{Start: 4000, End: 7000}))
	found := false
	for _, p := range w.take() {
		if p.TCP.Seq == 3000 {
			found = true
		}
		if p.TCP.Seq >= 8000 {
			t.Fatalf("new data %d sent before holes were repaired", p.TCP.Seq)
		}
	}
	if !found {
		t.Fatal("second hole (3000) never retransmitted")
	}

	// Full ACK exits recovery.
	snd.Recv(sackAck(8000))
	if snd.Cwnd() != snd.Ssthresh() {
		t.Fatalf("exit: cwnd=%g ssthresh=%g", snd.Cwnd(), snd.Ssthresh())
	}
}

func TestSACKTimeoutClearsScoreboard(t *testing.T) {
	v := NewSACK()
	_, snd, w, _ := testSender(t, v, func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.take()
	snd.Recv(sackAck(0, packet.SACKBlock{Start: 2000, End: 3000}))
	v.OnTimeout(snd)
	if v.board.SackedBytes() != 0 {
		t.Fatal("scoreboard survived timeout")
	}
	if snd.Cwnd() != 1 {
		t.Fatalf("cwnd after timeout = %g", snd.Cwnd())
	}
}

func TestSACKWithoutLossBehavesLikeSlowStart(t *testing.T) {
	_, snd, w, _ := testSender(t, NewSACK(), nil)
	snd.Start()
	ackAll(snd, w, 1000)
	if snd.Cwnd() != 2 {
		t.Fatalf("cwnd = %g, want 2", snd.Cwnd())
	}
	ackAll(snd, w, 1000)
	if snd.Cwnd() != 4 {
		t.Fatalf("cwnd = %g, want 4", snd.Cwnd())
	}
}
