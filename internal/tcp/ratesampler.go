package tcp

import "muzha/internal/sim"

// RateSample is one delivery-rate measurement, in the spirit of BBR's
// bandwidth estimator (draft-cheng-iccrg-delivery-rate-estimation): the
// bytes delivered over the longer of the send interval and the ACK
// interval of the sampled packet.
type RateSample struct {
	// DeliveredBytes newly delivered across the sample interval.
	DeliveredBytes int64
	// Interval the delivery was measured over.
	Interval sim.Time
	// Rate in bytes/s (DeliveredBytes / Interval).
	Rate float64
	// AppLimited marks samples taken while the flow had no data to
	// fill the window; such samples lower-bound the path bandwidth and
	// must not shrink a max-filter estimate.
	AppLimited bool
}

// sendRecord snapshots per-packet delivery state at transmission time.
type sendRecord struct {
	endSeq    int64    // first byte past this segment
	sentAt    sim.Time // transmission time of this segment
	firstSent sim.Time // transmission time of the previous segment (send-interval anchor)
	delivered int64    // cumulative bytes delivered when this segment left
	delivTime sim.Time // delivery clock when this segment left
}

// DeliveryRateSampler tracks per-flow delivered bytes and produces one
// RateSample per cumulative-ACK advance. The sender feeds it from its
// send and ACK paths (see Sender.EnableRateSampling); model-based
// variants read LastSample from OnNewAck.
type DeliveryRateSampler struct {
	delivered int64    // total bytes cumulatively acknowledged
	delivTime sim.Time // time of the most recent delivery (or send after idle)
	lastSent  sim.Time // transmission time of the most recent segment

	// records is a FIFO of in-flight send snapshots; head indexes the
	// oldest live entry so steady-state pops do not reallocate.
	records []sendRecord
	head    int

	// appLimitedSeq marks samples app-limited until the cumulative ACK
	// passes the sequence at which the flow ran out of data.
	appLimitedSeq int64

	last       RateSample
	haveSample bool

	totalSamples      uint64
	appLimitedSamples uint64
}

// NewDeliveryRateSampler returns an empty sampler.
func NewDeliveryRateSampler() *DeliveryRateSampler { return &DeliveryRateSampler{} }

// OnSend records the delivery state under which the segment ending at
// endSeq (exclusive) was transmitted. idle reports whether the flight
// was empty, which restarts the delivery clock so pauses between
// application bursts are not billed as transmission time.
func (d *DeliveryRateSampler) OnSend(endSeq int64, now sim.Time, idle bool) {
	if idle || d.delivTime == 0 {
		d.delivTime = now
	}
	first := d.lastSent
	if first == 0 || idle {
		first = now
	}
	d.records = append(d.records, sendRecord{
		endSeq:    endSeq,
		sentAt:    now,
		firstSent: first,
		delivered: d.delivered,
		delivTime: d.delivTime,
	})
	d.lastSent = now
}

// OnAppLimited marks the flow data-starved at sndNxt: every sample is
// flagged app-limited until the cumulative ACK reaches that point.
func (d *DeliveryRateSampler) OnAppLimited(sndNxt int64) {
	if sndNxt > d.appLimitedSeq {
		d.appLimitedSeq = sndNxt
	}
}

// OnAck folds a cumulative-ACK advance to ack (acked new bytes) into
// the delivery state and, when a send record is consumed, produces a
// new rate sample.
func (d *DeliveryRateSampler) OnAck(ack int64, now sim.Time, acked int64) {
	d.delivered += acked
	d.delivTime = now

	// Pop every record the cumulative ACK ran past; the newest of them
	// anchors the sample.
	var r *sendRecord
	for d.head < len(d.records) && d.records[d.head].endSeq <= ack {
		r = &d.records[d.head]
		d.head++
	}
	if d.head == len(d.records) {
		d.records = d.records[:0]
		d.head = 0
	} else if d.head >= 64 && d.head*2 >= len(d.records) {
		n := copy(d.records, d.records[d.head:])
		d.records = d.records[:n]
		d.head = 0
	}
	if r != nil {
		sendElapsed := r.sentAt - r.firstSent
		ackElapsed := now - r.delivTime
		interval := sendElapsed
		if ackElapsed > interval {
			interval = ackElapsed
		}
		deliveredOver := d.delivered - r.delivered
		if interval > 0 && deliveredOver > 0 {
			s := RateSample{
				DeliveredBytes: deliveredOver,
				Interval:       interval,
				Rate:           float64(deliveredOver) / interval.Seconds(),
				AppLimited:     d.appLimitedSeq > 0,
			}
			d.last = s
			d.haveSample = true
			d.totalSamples++
			if s.AppLimited {
				d.appLimitedSamples++
			}
		}
	}
	if d.appLimitedSeq > 0 && ack >= d.appLimitedSeq {
		d.appLimitedSeq = 0
	}
}

// LastSample returns the most recent rate sample and whether one exists.
func (d *DeliveryRateSampler) LastSample() (RateSample, bool) { return d.last, d.haveSample }

// Delivered returns the total bytes cumulatively delivered so far.
func (d *DeliveryRateSampler) Delivered() int64 { return d.delivered }

// AppLimited reports whether the flow is currently in an app-limited
// phase (samples being flagged).
func (d *DeliveryRateSampler) AppLimited() bool { return d.appLimitedSeq > 0 }

// Samples returns (total, appLimited) sample counts, for tests.
func (d *DeliveryRateSampler) Samples() (uint64, uint64) {
	return d.totalSamples, d.appLimitedSamples
}
