package tcp

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

func testSink(sackEnabled bool) (*Sink, *wire) {
	s := sim.New(1)
	w := &wire{}
	k := NewSink(s, w.send, SinkConfig{FlowID: 1, Peer: 0, SACKEnabled: sackEnabled})
	return k, w
}

func dataSeg(seq int64, payload int) *packet.Packet {
	return &packet.Packet{
		Kind:     packet.KindData,
		Src:      0,
		Dst:      4,
		Size:     payload + packet.IPHeaderSize + packet.TCPHeaderSize,
		TCP:      &packet.TCPHeader{FlowID: 1, Seq: seq},
		SendTime: 12345,
	}
}

func TestSinkCumulativeAcks(t *testing.T) {
	k, w := testSink(false)
	k.Recv(dataSeg(0, 1000))
	k.Recv(dataSeg(1000, 1000))

	if len(w.sent) != 2 {
		t.Fatalf("acks = %d, want 2", len(w.sent))
	}
	if a := w.sent[0].TCP; !a.IsAck || a.Ack != 1000 {
		t.Fatalf("first ack = %+v", a)
	}
	if a := w.sent[1].TCP; a.Ack != 2000 {
		t.Fatalf("second ack = %+v", a)
	}
	if k.Delivered() != 2000 {
		t.Fatalf("Delivered = %d", k.Delivered())
	}
	if w.sent[0].Dst != 0 {
		t.Fatal("ACK not addressed to peer")
	}
}

func TestSinkOutOfOrderGeneratesDupAcks(t *testing.T) {
	k, w := testSink(false)
	k.Recv(dataSeg(0, 1000))
	k.Recv(dataSeg(2000, 1000)) // hole at 1000
	k.Recv(dataSeg(3000, 1000))

	if w.sent[1].TCP.Ack != 1000 || w.sent[2].TCP.Ack != 1000 {
		t.Fatalf("dup acks = %d, %d, want 1000 both", w.sent[1].TCP.Ack, w.sent[2].TCP.Ack)
	}
	// Filling the hole jumps the cumulative ACK over the queued data.
	k.Recv(dataSeg(1000, 1000))
	if got := w.sent[3].TCP.Ack; got != 4000 {
		t.Fatalf("after fill, ack = %d, want 4000", got)
	}
}

func TestSinkSACKBlocks(t *testing.T) {
	k, w := testSink(true)
	k.Recv(dataSeg(0, 1000))
	k.Recv(dataSeg(2000, 1000))
	k.Recv(dataSeg(4000, 1000))

	last := w.sent[len(w.sent)-1].TCP
	if len(last.SACK) != 2 {
		t.Fatalf("SACK blocks = %+v, want 2", last.SACK)
	}
	if last.SACK[0] != (packet.SACKBlock{Start: 2000, End: 3000}) ||
		last.SACK[1] != (packet.SACKBlock{Start: 4000, End: 5000}) {
		t.Fatalf("SACK contents = %+v", last.SACK)
	}
	// ACK size grows with SACK blocks.
	if w.sent[len(w.sent)-1].Size != 40+2*packet.SACKBlockBytes {
		t.Fatalf("ack size = %d", w.sent[len(w.sent)-1].Size)
	}

	// Adjacent out-of-order segments merge into one block.
	k.Recv(dataSeg(3000, 1000))
	last = w.sent[len(w.sent)-1].TCP
	if len(last.SACK) != 1 || last.SACK[0] != (packet.SACKBlock{Start: 2000, End: 5000}) {
		t.Fatalf("merged SACK = %+v", last.SACK)
	}
}

func TestSinkSACKDisabled(t *testing.T) {
	k, w := testSink(false)
	k.Recv(dataSeg(2000, 1000))
	if len(w.sent[0].TCP.SACK) != 0 {
		t.Fatal("SACK blocks emitted while disabled")
	}
}

func TestSinkEchoesMuzhaFeedback(t *testing.T) {
	k, w := testSink(false)
	seg := dataSeg(0, 1000)
	seg.AVBW = 3
	seg.CongMarked = true
	k.Recv(seg)

	echo := w.sent[0].TCP.Echo
	if echo.MRAI != 3 || !echo.Marked {
		t.Fatalf("echo = %+v, want MRAI 3 marked", echo)
	}
	if w.sent[0].TCP.TSEcho != 12346 {
		t.Fatalf("TSEcho = %d, want SendTime+1", w.sent[0].TCP.TSEcho)
	}
}

func TestSinkDuplicateSegmentsAckedButCounted(t *testing.T) {
	k, w := testSink(false)
	k.Recv(dataSeg(0, 1000))
	k.Recv(dataSeg(0, 1000)) // spurious retransmission
	if k.DuplicateSegments() != 1 {
		t.Fatalf("dup segments = %d", k.DuplicateSegments())
	}
	// Still ACKed (the sender needs it).
	if len(w.sent) != 2 || w.sent[1].TCP.Ack != 1000 {
		t.Fatal("duplicate not acknowledged")
	}
	if k.AcksSent() != 2 {
		t.Fatalf("AcksSent = %d", k.AcksSent())
	}
}

func TestSinkIgnoresAcksAndEmptySegments(t *testing.T) {
	k, w := testSink(false)
	k.Recv(&packet.Packet{Kind: packet.KindData, TCP: &packet.TCPHeader{IsAck: true, Ack: 5}})
	k.Recv(&packet.Packet{Kind: packet.KindData, Size: 40, TCP: &packet.TCPHeader{}})
	k.Recv(&packet.Packet{Kind: packet.KindData})
	if len(w.sent) != 0 {
		t.Fatal("sink responded to non-data packets")
	}
}

func TestSinkManySegmentsInOrderDelivery(t *testing.T) {
	k, _ := testSink(true)
	// Deliver 100 segments in a scrambled but complete order.
	order := []int64{0, 2, 1, 4, 3, 6, 5, 8, 7, 9}
	for round := 0; round < 10; round++ {
		for _, o := range order {
			k.Recv(dataSeg(int64(round)*10000+o*1000, 1000))
		}
	}
	if k.Delivered() != 100_000 {
		t.Fatalf("Delivered = %d, want 100000", k.Delivered())
	}
}

func testSinkDelayed(delay sim.Time) (*sim.Simulator, *Sink, *wire) {
	s := sim.New(1)
	w := &wire{}
	k := NewSink(s, w.send, SinkConfig{FlowID: 1, Peer: 0, DelayedAck: delay})
	return s, k, w
}

func TestDelayedAckCoalescesPairs(t *testing.T) {
	s, k, w := testSinkDelayed(200 * sim.Millisecond)
	k.Recv(dataSeg(0, 1000))
	if len(w.sent) != 0 {
		t.Fatal("first segment acknowledged immediately despite delayed ACK")
	}
	k.Recv(dataSeg(1000, 1000))
	if len(w.sent) != 1 || w.sent[0].TCP.Ack != 2000 {
		t.Fatalf("pair not coalesced: %+v", w.sent)
	}
	s.RunAll()
	if len(w.sent) != 1 {
		t.Fatal("timer fired after coalesced ACK")
	}
}

func TestDelayedAckTimerFlushes(t *testing.T) {
	s, k, w := testSinkDelayed(200 * sim.Millisecond)
	k.Recv(dataSeg(0, 1000))
	s.Run(300 * sim.Millisecond)
	if len(w.sent) != 1 || w.sent[0].TCP.Ack != 1000 {
		t.Fatalf("delayed ACK not flushed by timer: %+v", w.sent)
	}
}

func TestDelayedAckOutOfOrderImmediate(t *testing.T) {
	_, k, w := testSinkDelayed(200 * sim.Millisecond)
	k.Recv(dataSeg(2000, 1000)) // hole at 0: must dup-ACK immediately
	if len(w.sent) != 1 || w.sent[0].TCP.Ack != 0 {
		t.Fatalf("out-of-order segment not acknowledged immediately: %+v", w.sent)
	}
}

func TestDelayedAckHoleFillFlushesPending(t *testing.T) {
	_, k, w := testSinkDelayed(200 * sim.Millisecond)
	k.Recv(dataSeg(1000, 1000)) // ooo: immediate dup ack (ack=0)
	k.Recv(dataSeg(0, 1000))    // fills the hole; ooo queue drains
	if len(w.sent) != 2 {
		t.Fatalf("acks = %d, want 2", len(w.sent))
	}
	if got := w.sent[1].TCP.Ack; got != 2000 {
		t.Fatalf("fill ack = %d, want 2000", got)
	}
}

func TestDelayedAckDisabledByDefault(t *testing.T) {
	k, w := testSink(false)
	k.Recv(dataSeg(0, 1000))
	if len(w.sent) != 1 {
		t.Fatal("default sink must acknowledge every segment")
	}
}
