package tcp

import (
	"sort"

	"muzha/internal/packet"
)

// Scoreboard tracks which byte ranges the receiver has selectively
// acknowledged. Blocks are kept sorted and merged.
type Scoreboard struct {
	blocks []packet.SACKBlock
}

// Add folds SACK blocks from an ACK into the scoreboard.
func (b *Scoreboard) Add(blocks []packet.SACKBlock) {
	for _, blk := range blocks {
		if blk.End <= blk.Start {
			continue
		}
		b.blocks = append(b.blocks, blk)
	}
	if len(b.blocks) < 2 {
		return
	}
	sort.Slice(b.blocks, func(i, j int) bool { return b.blocks[i].Start < b.blocks[j].Start })
	merged := b.blocks[:1]
	for _, blk := range b.blocks[1:] {
		last := &merged[len(merged)-1]
		if blk.Start <= last.End {
			if blk.End > last.End {
				last.End = blk.End
			}
			continue
		}
		merged = append(merged, blk)
	}
	b.blocks = merged
}

// AdvanceTo discards state below the cumulative ACK point.
func (b *Scoreboard) AdvanceTo(ack int64) {
	out := b.blocks[:0]
	for _, blk := range b.blocks {
		if blk.End <= ack {
			continue
		}
		if blk.Start < ack {
			blk.Start = ack
		}
		out = append(out, blk)
	}
	b.blocks = out
}

// IsSacked reports whether byte seq is covered.
func (b *Scoreboard) IsSacked(seq int64) bool {
	for _, blk := range b.blocks {
		if seq >= blk.Start && seq < blk.End {
			return true
		}
	}
	return false
}

// SackedBytes returns the total selectively acknowledged bytes.
func (b *Scoreboard) SackedBytes() int64 {
	var total int64
	for _, blk := range b.blocks {
		total += blk.End - blk.Start
	}
	return total
}

// NextHole returns the start of the first un-SACKed range at or after
// from and below limit, and whether one exists.
func (b *Scoreboard) NextHole(from, limit int64) (int64, bool) {
	seq := from
	for _, blk := range b.blocks {
		if seq < blk.Start {
			break
		}
		if seq < blk.End {
			seq = blk.End
		}
	}
	if seq < limit {
		return seq, true
	}
	return 0, false
}

// HighestSACKed returns the end of the highest SACKed range (0 if none).
// Only bytes below it are inferable as lost (FACK-style); anything above
// may simply still be in flight.
func (b *Scoreboard) HighestSACKed() int64 {
	if len(b.blocks) == 0 {
		return 0
	}
	return b.blocks[len(b.blocks)-1].End
}

// Reset clears the scoreboard (after a timeout).
func (b *Scoreboard) Reset() { b.blocks = b.blocks[:0] }

// SACK implements a SACK-based sender in the spirit of NS-2's "sack1"
// agent: Reno-style window adjustment with a scoreboard and pipe-based
// transmission during recovery, retransmitting holes before new data.
type SACK struct {
	board      Scoreboard
	inRecovery bool
	recover    int64
	pipe       int64 // estimated bytes in flight during recovery
	nextHole   int64 // retransmission scan position
}

// NewSACK returns the SACK variant.
func NewSACK() *SACK { return &SACK{} }

// Name implements Variant.
func (*SACK) Name() string { return "sack" }

// OnNewAck implements Variant.
func (k *SACK) OnNewAck(s *Sender, ack *packet.Packet, acked int64) {
	k.board.Add(ack.TCP.SACK)
	k.board.AdvanceTo(ack.TCP.Ack)
	if !k.inRecovery {
		slowStartOrAvoid(s)
		return
	}
	if ack.TCP.Ack >= k.recover {
		k.inRecovery = false
		s.SetCwnd(s.Ssthresh())
		return
	}
	// Partial ACK: the acknowledged bytes left the pipe.
	k.pipe -= acked
	if k.pipe < 0 {
		k.pipe = 0
	}
	if k.nextHole < ack.TCP.Ack {
		k.nextHole = ack.TCP.Ack
	}
	k.sendHoles(s)
}

// OnDupAck implements Variant.
func (k *SACK) OnDupAck(s *Sender, ack *packet.Packet, n int) {
	k.board.Add(ack.TCP.SACK)
	if k.inRecovery {
		// Each dup ACK means one segment left the network.
		k.pipe -= int64(s.MSS())
		if k.pipe < 0 {
			k.pipe = 0
		}
		k.sendHoles(s)
		return
	}
	if n != 3 {
		return
	}
	if s.Stats() != nil {
		s.Stats().FastRecoveries++
	}
	k.inRecovery = true
	k.recover = s.SndNxt()
	s.SetSsthresh(halfFlight(s))
	s.SetCwnd(s.Ssthresh())
	// Pipe: bytes outstanding minus what the receiver holds, minus the
	// head segment the three dup ACKs deem lost.
	k.pipe = s.FlightBytes() - k.board.SackedBytes() - int64(s.MSS())
	if k.pipe < 0 {
		k.pipe = 0
	}
	// Retransmit the first hole unconditionally (fast retransmit), then
	// fill the pipe with further holes if the window allows.
	k.nextHole = s.SndUna()
	if hole, ok := k.board.NextHole(k.nextHole, k.recover); ok {
		s.RetransmitSegment(hole)
		k.nextHole = hole + int64(s.MSS())
		k.pipe += int64(s.MSS())
	}
	k.sendHoles(s)
}

// sendHoles retransmits inferably lost ranges — un-SACKed bytes below
// the highest SACKed byte — while the pipe has room. Un-SACKed bytes
// above the highest SACK may still be in flight and are left alone.
func (k *SACK) sendHoles(s *Sender) {
	mss := int64(s.MSS())
	limit := k.board.HighestSACKed()
	if limit > k.recover {
		limit = k.recover
	}
	for k.pipe+mss <= int64(s.Cwnd()*float64(s.MSS())) {
		hole, ok := k.board.NextHole(k.nextHole, limit)
		if !ok {
			return // no holes left; base TrySend covers new data
		}
		s.RetransmitSegment(hole)
		k.nextHole = hole + mss
		k.pipe += mss
	}
}

// OnTimeout implements Variant.
func (k *SACK) OnTimeout(s *Sender) {
	k.inRecovery = false
	k.board.Reset()
	s.SetSsthresh(halfFlight(s))
	s.SetCwnd(1)
}

var _ Variant = (*SACK)(nil)
