package tcp

import (
	"muzha/internal/packet"
	"muzha/internal/sim"
)

// Vegas implements TCP Vegas congestion avoidance (Brakmo & Peterson):
// the expected/actual throughput difference, measured once per RTT
// against the minimum observed base RTT, drives +1/hold/-1 window
// decisions between the alpha and beta thresholds. Slow start doubles the
// window only every other RTT and exits when the backlog estimate passes
// gamma.
type Vegas struct {
	// Alpha, Beta, Gamma are backlog thresholds in segments; the
	// classical values are 1, 3 and 1.
	Alpha, Beta, Gamma float64

	baseRTT    sim.Time
	slowStart  bool
	grewLast   bool // slow start grows every other RTT
	lastAdjust sim.Time
	inRecovery bool
	recover    int64
}

// NewVegas returns a Vegas variant with the classical 1/3/1 thresholds.
func NewVegas() *Vegas {
	return &Vegas{Alpha: 1, Beta: 3, Gamma: 1, slowStart: true}
}

// Name implements Variant.
func (*Vegas) Name() string { return "vegas" }

// OnNewAck implements Variant.
func (v *Vegas) OnNewAck(s *Sender, ack *packet.Packet, _ int64) {
	rtt := s.LastRTT()
	if rtt <= 0 {
		return
	}
	if v.baseRTT == 0 || rtt < v.baseRTT {
		v.baseRTT = rtt
	}
	if v.inRecovery && ack.TCP.Ack >= v.recover {
		v.inRecovery = false
	}

	// One window decision per RTT.
	if s.Now()-v.lastAdjust < rtt {
		return
	}
	v.lastAdjust = s.Now()

	// Backlog estimate: diff = (expected - actual) * baseRTT, in
	// segments queued inside the network.
	cwnd := s.Cwnd()
	expected := cwnd / v.baseRTT.Seconds()
	actual := cwnd / rtt.Seconds()
	diff := (expected - actual) * v.baseRTT.Seconds()

	if v.slowStart {
		if diff > v.Gamma {
			// Leaving slow start: back off by 1/8 so the queue drains
			// (Brakmo & Peterson section 4.2).
			v.slowStart = false
			s.SetSsthresh(cwnd)
			s.SetCwnd(cwnd * 7 / 8)
			return
		}
		if v.grewLast {
			v.grewLast = false
		} else {
			v.grewLast = true
			s.SetCwnd(cwnd * 2)
		}
		return
	}

	switch {
	case diff < v.Alpha:
		s.SetCwnd(cwnd + 1)
	case diff > v.Beta:
		w := cwnd - 1
		if w < 2 {
			w = 2
		}
		s.SetCwnd(w)
	}
}

// OnDupAck implements Variant.
func (v *Vegas) OnDupAck(s *Sender, _ *packet.Packet, n int) {
	if v.inRecovery || n != 3 {
		return
	}
	if s.Stats() != nil {
		s.Stats().FastRecoveries++
	}
	v.inRecovery = true
	v.recover = s.SndNxt()
	s.RetransmitSegment(s.SndUna())
	// Vegas cuts by a quarter on dup-ACK loss, not a half.
	w := s.Cwnd() * 3 / 4
	if w < 2 {
		w = 2
	}
	s.SetSsthresh(w)
	s.SetCwnd(w)
}

// OnTimeout implements Variant.
func (v *Vegas) OnTimeout(s *Sender) {
	v.inRecovery = false
	v.slowStart = true
	v.grewLast = false
	s.SetSsthresh(halfFlight(s))
	s.SetCwnd(2)
}

var _ Variant = (*Vegas)(nil)
