package tcp

import (
	"math"
	"testing"

	"muzha/internal/sim"
)

func TestPacerRateClamps(t *testing.T) {
	s := sim.New(1)
	p := NewPacer(s, nil)
	cases := []struct {
		in   float64
		want float64
	}{
		{math.NaN(), MaxPacingRate},
		{math.Inf(1), MaxPacingRate},
		{MaxPacingRate * 10, MaxPacingRate},
		{MaxPacingRate, MaxPacingRate},
		{0, 0},
		{-5, 0},
		{math.Inf(-1), 0},
		{MinPacingRate / 2, MinPacingRate},
		{5000, 5000},
	}
	for _, c := range cases {
		p.SetRate(c.in)
		if got := p.Rate(); got != c.want {
			t.Errorf("SetRate(%v): rate = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPacerZeroRateLeavesGateOpen(t *testing.T) {
	s := sim.New(1)
	p := NewPacer(s, nil)
	p.SetRate(0)
	p.OnSend(s.Now(), 1500)
	p.OnSend(s.Now(), 1500)
	if wait := p.HoldFor(s.Now()); wait != 0 {
		t.Fatalf("unrated pacer closed the gate for %v", wait)
	}
	// An effectively infinite rate clamps to MaxPacingRate: the
	// per-packet gap rounds to at most a nanosecond of virtual time.
	p.SetRate(math.Inf(1))
	p.OnSend(s.Now(), 1500)
	if wait := p.HoldFor(s.Now()); wait > sim.Time(2) {
		t.Fatalf("max-rate pacer closed the gate for %v", wait)
	}
}

func TestPacerGapAndMaxGapClamp(t *testing.T) {
	s := sim.New(1)
	p := NewPacer(s, nil)
	p.SetRate(10000) // 10 kB/s -> 1000-byte packet = 100ms gap
	p.OnSend(s.Now(), 1000)
	if wait := p.HoldFor(s.Now()); wait != 100*sim.Millisecond {
		t.Fatalf("gap = %v, want 100ms", wait)
	}
	// Back-to-back sends accumulate on the virtual clock.
	p.OnSend(s.Now(), 1000)
	if wait := p.HoldFor(s.Now()); wait != 200*sim.Millisecond {
		t.Fatalf("second gap = %v, want 200ms", wait)
	}
	// A near-floor rate with a large packet would park the flow past
	// the RTO; the per-packet gap clamps at maxPacingGap.
	p2 := NewPacer(s, nil)
	p2.SetRate(MinPacingRate)
	p2.OnSend(s.Now(), 1_000_000)
	if wait := p2.HoldFor(s.Now()); wait != maxPacingGap {
		t.Fatalf("clamped gap = %v, want %v", wait, maxPacingGap)
	}
}

func TestPacerTimerRearmUnderCancel(t *testing.T) {
	s := sim.New(1)
	pumps := 0
	p := NewPacer(s, func() { pumps++ })
	p.SetRate(1000)
	p.OnSend(s.Now(), 2000) // exactly 2s gap

	p.arm(p.HoldFor(s.Now()))
	if !p.Pending() {
		t.Fatal("armed pacer not pending")
	}
	p.Stop()
	if p.Pending() {
		t.Fatal("stopped pacer still pending")
	}
	s.Run(3 * sim.Second)
	if pumps != 0 {
		t.Fatalf("cancelled release still pumped %d times", pumps)
	}

	// Re-arming after a cancel works, and double-arming is an in-place
	// rearm: the pump fires exactly once per parked release.
	p.arm(sim.Second)
	p.arm(sim.Second)
	if !p.Pending() {
		t.Fatal("re-armed pacer not pending")
	}
	s.Run(s.Now() + 2*sim.Second)
	if pumps != 1 {
		t.Fatalf("pump fired %d times, want 1", pumps)
	}
	if got := p.Deferrals(); got != 3 {
		t.Fatalf("deferrals = %d, want 3", got)
	}
}

// TestPacedSenderSpreadsWindow checks the integration seam: with
// SenderConfig.Pace on, a window of segments leaves on the pacing
// schedule (distinct send times, pump deferrals) instead of as one
// ack-clocked burst.
func TestPacedSenderSpreadsWindow(t *testing.T) {
	s, snd, w, _ := testSender(t, NewNewReno(), func(c *SenderConfig) { c.Pace = true })
	if snd.Pacer() == nil {
		t.Fatal("Pace did not attach a pacer")
	}
	snd.Start()
	if len(w.take()) != 1 {
		t.Fatal("initial segment not sent (no-rate gate must stay open)")
	}

	// First RTT sample installs the auto rate: 2.0 * cwnd * MSS / SRTT.
	s.Run(100 * sim.Millisecond)
	snd.Recv(ackFor(1000, 0)) // rtt = 100ms; cwnd 1 -> 2
	burst := w.take()
	if len(burst) != 1 {
		t.Fatalf("paced sender released %d segments at the ACK instant, want 1", len(burst))
	}
	// Run past the release instant but short of the RTO.
	s.Run(s.Now() + 60*sim.Millisecond)
	rest := w.take()
	if len(rest) != 1 {
		t.Fatalf("pacer released %d deferred segments, want 1", len(rest))
	}
	if rest[0].SendTime <= burst[0].SendTime {
		t.Fatalf("deferred segment left at %d, not after %d", rest[0].SendTime, burst[0].SendTime)
	}
	if snd.Pacer().Deferrals() == 0 {
		t.Fatal("no deferrals recorded despite a closed gate")
	}
	if got := snd.Pacer().Releases(); got != 3 {
		t.Fatalf("releases = %d, want 3", got)
	}
}

// TestUnpacedSenderHasNoSeams pins the default: without Pace and
// without a Binder variant, neither seam is attached, so scheduling is
// bit-identical to the historical ack-clocked path.
func TestUnpacedSenderHasNoSeams(t *testing.T) {
	_, snd, _, _ := testSender(t, NewNewReno(), nil)
	if snd.Pacer() != nil || snd.RateSampler() != nil {
		t.Fatal("default sender grew scheduling seams")
	}
}

func TestDeliveryRateSamplerBasic(t *testing.T) {
	d := NewDeliveryRateSampler()
	// Two segments 10ms apart, acked 50ms after the first send. The
	// base time is nonzero: t=0 reads as "delivery clock unset".
	base := sim.Second
	d.OnSend(1000, base, true)
	d.OnSend(2000, base+10*sim.Millisecond, false)
	d.OnAck(2000, base+50*sim.Millisecond, 2000)

	s, ok := d.LastSample()
	if !ok {
		t.Fatal("no sample after a cumulative ACK")
	}
	// The newest consumed record anchors the sample: sendElapsed =
	// 10ms - 0 = 10ms, ackElapsed = 50ms - 0 = 50ms -> interval 50ms.
	if s.Interval != 50*sim.Millisecond {
		t.Fatalf("interval = %v, want 50ms", s.Interval)
	}
	if s.DeliveredBytes != 2000 {
		t.Fatalf("delivered over sample = %d, want 2000", s.DeliveredBytes)
	}
	if want := 2000.0 / 0.05; s.Rate != want {
		t.Fatalf("rate = %v, want %v", s.Rate, want)
	}
	if s.AppLimited {
		t.Fatal("sample flagged app-limited without a mark")
	}
	if d.Delivered() != 2000 {
		t.Fatalf("delivered total = %d, want 2000", d.Delivered())
	}
}

func TestDeliveryRateSamplerAppLimited(t *testing.T) {
	d := NewDeliveryRateSampler()
	d.OnSend(1000, 0, true)
	d.OnSend(2000, 10*sim.Millisecond, false)
	d.OnAppLimited(2000) // ran out of data at seq 2000
	if !d.AppLimited() {
		t.Fatal("mark did not enter the app-limited phase")
	}

	d.OnAck(1000, 30*sim.Millisecond, 1000)
	if s, ok := d.LastSample(); !ok || !s.AppLimited {
		t.Fatalf("sample during app-limited phase not flagged: %+v", s)
	}
	// The ACK reaching the marked sequence ends the phase; the sample
	// for that very ACK is still flagged (it measured starved flight).
	d.OnAck(2000, 40*sim.Millisecond, 1000)
	if s, _ := d.LastSample(); !s.AppLimited {
		t.Fatal("boundary sample not flagged")
	}
	if d.AppLimited() {
		t.Fatal("phase survives the ACK passing the marked sequence")
	}
	d.OnSend(3000, 50*sim.Millisecond, false)
	d.OnAck(3000, 70*sim.Millisecond, 1000)
	if s, _ := d.LastSample(); s.AppLimited {
		t.Fatal("post-phase sample still flagged")
	}
	if total, limited := d.Samples(); total != 3 || limited != 2 {
		t.Fatalf("samples = (%d, %d), want (3, 2)", total, limited)
	}
}

// TestDeliveryRateSamplerCompaction drives enough one-by-one ACKs to
// trigger the FIFO head compaction and checks the bookkeeping survives.
func TestDeliveryRateSamplerCompaction(t *testing.T) {
	d := NewDeliveryRateSampler()
	const n = 200
	for i := 0; i < n; i++ {
		d.OnSend(int64(i+1)*1000, sim.Time(i)*sim.Millisecond, i == 0)
	}
	for i := 0; i < n; i++ {
		at := sim.Time(n+i) * sim.Millisecond
		d.OnAck(int64(i+1)*1000, at, 1000)
		if s, ok := d.LastSample(); !ok || s.DeliveredBytes <= 0 || s.Rate <= 0 {
			t.Fatalf("ack %d: bad sample %+v", i, s)
		}
	}
	if d.Delivered() != n*1000 {
		t.Fatalf("delivered = %d, want %d", d.Delivered(), n*1000)
	}
	if total, _ := d.Samples(); total != n {
		t.Fatalf("samples = %d, want %d", total, n)
	}
}

// TestSenderAppLimitedMark checks the sender marks the sampler when a
// bounded flow runs out of data with window headroom left.
func TestSenderAppLimitedMark(t *testing.T) {
	var sampler *DeliveryRateSampler
	s, snd, w, _ := testSender(t, NewNewReno(), func(c *SenderConfig) { c.MaxBytes = 2500 })
	sampler = snd.EnableRateSampling()
	snd.Start()
	w.take() // the initial segment

	s.Run(10 * sim.Millisecond)
	snd.Recv(ackFor(1000, 0)) // cwnd 2: sends [1000,2000) and the 500-byte tail, then starves
	if got := len(w.take()); got != 2 {
		t.Fatalf("sent %d segments after the ACK, want 2", got)
	}
	if !sampler.AppLimited() {
		t.Fatal("data-starved sender did not mark the sampler app-limited")
	}
	s.Run(20 * sim.Millisecond)
	snd.Recv(ackFor(2500, -1))
	if !snd.Finished() {
		t.Fatal("bounded flow did not finish")
	}
	if sampler.AppLimited() {
		t.Fatal("app-limited phase survived the final ACK")
	}
	if _, limited := sampler.Samples(); limited == 0 {
		t.Fatal("no app-limited samples recorded")
	}
}
