package tcp

import (
	"muzha/internal/packet"
	"muzha/internal/sim"
)

// BBR-lite gains and filter windows, after the BBR v1 draft
// (draft-cardwell-iccrg-bbr-congestion-control).
const (
	// bbrHighGain is 2/ln(2): the pacing gain that doubles the sending
	// rate every round while the bandwidth estimate doubles too.
	bbrHighGain = 2.885
	// bbrDrainGain empties the queue built during startup.
	bbrDrainGain = 1 / bbrHighGain
	// bbrCwndGain bounds the window at 2x the estimated BDP outside
	// startup.
	bbrCwndGain = 2.0
	// bbrMinCwnd keeps at least four segments in flight so the ACK
	// clock and the delivery sampler never stall.
	bbrMinCwnd = 4.0
	// bbrFullBwThresh/bbrFullBwRounds: startup exits when the bandwidth
	// estimate grew less than 25% across three consecutive rounds.
	bbrFullBwThresh = 1.25
	bbrFullBwRounds = 3
	// bbrBwFilterRounds is the max-bandwidth filter window.
	bbrBwFilterRounds = 10
	// bbrMinRTTExpiry ages out the min-RTT estimate.
	bbrMinRTTExpiry = 10 * sim.Second
)

// bbrCycleGains is the probe-bw pacing-gain cycle: probe above the
// estimate for one phase, drain the probe's queue, then cruise.
var bbrCycleGains = [...]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
)

func (st bbrState) String() string {
	switch st {
	case bbrStartup:
		return "startup"
	case bbrDrain:
		return "drain"
	default:
		return "probe-bw"
	}
}

// bbrBwSample is one entry of the windowed max-bandwidth filter.
type bbrBwSample struct {
	round int
	bw    float64 // bytes/s
}

// BBRLite is a model-based sender: instead of reacting to loss it
// estimates the path's bottleneck bandwidth (windowed max of delivery
// -rate samples) and round-trip propagation delay (windowed min RTT),
// paces at a gain times the bandwidth estimate and caps the window
// near the estimated BDP. The startup/drain/probe-bw state machine is
// BBR v1 with probe-rtt elided. It binds the sender's pacing and
// rate-sampling seams at construction (Binder).
type BBRLite struct {
	pacer   *Pacer
	sampler *DeliveryRateSampler

	state bbrState

	// bwFilter is a monotonic max-deque over the last
	// bbrBwFilterRounds rounds: entries decrease in bw from the front,
	// so the front is the windowed maximum and maintenance is O(1)
	// amortized with bounded memory.
	bwFilter []bbrBwSample

	minRTT   sim.Time
	minRTTAt sim.Time

	roundCount         int
	nextRoundDelivered int64

	fullBw      float64
	fullBwCount int

	cycleIdx   int
	cycleStamp sim.Time
}

// NewBBRLite returns the BBR-lite variant. The returned value
// implements Binder: NewSender attaches the pacer and delivery-rate
// sampler automatically.
func NewBBRLite() *BBRLite { return &BBRLite{} }

// Name implements Variant.
func (*BBRLite) Name() string { return "bbr-lite" }

// Bind implements Binder: install the pacing engine and the sampler,
// and take over the pacing rate from the cwnd/SRTT auto-rate.
func (b *BBRLite) Bind(s *Sender) {
	b.pacer = s.EnablePacing()
	b.sampler = s.EnableRateSampling()
	s.SetAutoPacing(false)
}

// BtlBw returns the windowed max-bandwidth estimate in bytes/s.
func (b *BBRLite) BtlBw() float64 {
	if len(b.bwFilter) == 0 {
		return 0
	}
	return b.bwFilter[0].bw
}

// MinRTT returns the windowed min-RTT estimate (0 before a sample).
func (b *BBRLite) MinRTT() sim.Time { return b.minRTT }

// State returns the current state name, for tests and traces.
func (b *BBRLite) State() string { return b.state.String() }

// PacingGain returns the gain currently applied to BtlBw.
func (b *BBRLite) PacingGain() float64 {
	switch b.state {
	case bbrStartup:
		return bbrHighGain
	case bbrDrain:
		return bbrDrainGain
	default:
		return bbrCycleGains[b.cycleIdx]
	}
}

// CycleIndex returns the probe-bw gain-cycle phase, for tests.
func (b *BBRLite) CycleIndex() int { return b.cycleIdx }

// bdpSegments returns the estimated bandwidth-delay product in
// segments (0 while either filter is empty).
func (b *BBRLite) bdpSegments(s *Sender) float64 {
	bw := b.BtlBw()
	if bw <= 0 || b.minRTT <= 0 {
		return 0
	}
	return bw * b.minRTT.Seconds() / float64(s.MSS())
}

// recordBw folds one delivery-rate sample into the max filter.
func (b *BBRLite) recordBw(bw float64) {
	for n := len(b.bwFilter); n > 0 && b.bwFilter[n-1].bw <= bw; n-- {
		b.bwFilter = b.bwFilter[:n-1]
	}
	b.bwFilter = append(b.bwFilter, bbrBwSample{round: b.roundCount, bw: bw})
	for len(b.bwFilter) > 0 && b.bwFilter[0].round < b.roundCount-bbrBwFilterRounds {
		b.bwFilter = b.bwFilter[1:]
	}
}

// OnNewAck implements Variant: update the model, run the state
// machine, and re-derive the pacing rate and window.
func (b *BBRLite) OnNewAck(s *Sender, _ *packet.Packet, acked int64) {
	now := s.Now()
	if rtt := s.LastRTT(); rtt > 0 {
		if b.minRTT == 0 || rtt < b.minRTT || now-b.minRTTAt > bbrMinRTTExpiry {
			b.minRTT, b.minRTTAt = rtt, now
		}
	}

	// Packet-conservation round trips: a round ends when the delivery
	// total passes the flight recorded at the previous round's start.
	delivered := b.sampler.Delivered()
	roundStart := false
	if delivered >= b.nextRoundDelivered {
		roundStart = true
		b.roundCount++
		b.nextRoundDelivered = delivered + s.FlightBytes()
	}

	if sample, ok := b.sampler.LastSample(); ok {
		// App-limited samples under-estimate the path: they may only
		// raise the filter, never displace a higher estimate.
		if !sample.AppLimited || sample.Rate > b.BtlBw() {
			b.recordBw(sample.Rate)
		}
	}

	switch b.state {
	case bbrStartup:
		if roundStart && b.BtlBw() > 0 {
			if b.BtlBw() >= b.fullBw*bbrFullBwThresh {
				b.fullBw = b.BtlBw()
				b.fullBwCount = 0
			} else if b.fullBwCount++; b.fullBwCount >= bbrFullBwRounds {
				// Bandwidth plateaued: the pipe is full, drain the
				// queue built by the startup gain.
				b.state = bbrDrain
			}
		}
	case bbrDrain:
		if float64(s.FlightBytes()) <= b.bdpSegments(s)*float64(s.MSS()) {
			b.state = bbrProbeBW
			b.cycleIdx = 0
			b.cycleStamp = now
		}
	case bbrProbeBW:
		if b.minRTT > 0 && now-b.cycleStamp >= b.minRTT {
			b.cycleIdx = (b.cycleIdx + 1) % len(bbrCycleGains)
			b.cycleStamp = now
		}
	}

	b.setRates(s, acked)
}

// setRates re-derives the pacing rate and congestion window from the
// current model and state gains.
func (b *BBRLite) setRates(s *Sender, acked int64) {
	mss := float64(s.MSS())
	gain := b.PacingGain()
	if bw := b.BtlBw(); bw > 0 {
		b.pacer.SetRate(gain * bw)
	} else if rtt := s.SRTT(); rtt > 0 {
		// No delivery sample yet: bootstrap from cwnd/SRTT.
		b.pacer.SetRate(gain * s.Cwnd() * mss / rtt.Seconds())
	}
	if b.state == bbrStartup {
		// Slow-start-like exponential opening; the advertised window
		// is the cap.
		s.SetCwnd(s.Cwnd() + float64(acked)/mss)
		return
	}
	w := bbrCwndGain * b.bdpSegments(s)
	if w < bbrMinCwnd {
		w = bbrMinCwnd
	}
	s.SetCwnd(w)
}

// OnDupAck implements Variant: retransmit the hole but keep the model
// -derived window — BBR does not treat isolated loss as a congestion
// signal.
func (b *BBRLite) OnDupAck(s *Sender, _ *packet.Packet, n int) {
	if n != 3 {
		return
	}
	if s.Stats() != nil {
		s.Stats().FastRecoveries++
	}
	s.RetransmitSegment(s.SndUna())
}

// OnTimeout implements Variant: collapse conservatively to the minimum
// window; the filters survive, so the rate recovers within a round.
func (b *BBRLite) OnTimeout(s *Sender) {
	s.SetCwnd(bbrMinCwnd)
}

var (
	_ Variant = (*BBRLite)(nil)
	_ Binder  = (*BBRLite)(nil)
)
