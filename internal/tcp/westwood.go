package tcp

import (
	"muzha/internal/packet"
	"muzha/internal/sim"
)

// Westwood implements TCP Westwood (Mascolo et al., GLOBECOM 2001):
// NewReno mechanics with an eligible-rate estimate maintained from ACK
// arrivals. On loss, instead of blind halving, the slow-start threshold
// is set to the estimated bandwidth-delay product (BWE x RTTmin) — the
// "faster recovery" that makes Westwood robust to non-congestive loss.
type Westwood struct {
	bwe        float64 // smoothed bandwidth estimate, bytes/s
	lastAck    sim.Time
	minRTT     sim.Time
	inRecovery bool
	recover    int64
}

// NewWestwood returns the Westwood variant.
func NewWestwood() *Westwood { return &Westwood{} }

// Name implements Variant.
func (*Westwood) Name() string { return "westwood" }

// sampleBandwidth folds one ACK arrival into the low-pass-filtered
// bandwidth estimate.
func (w *Westwood) sampleBandwidth(s *Sender, acked int64) {
	now := s.Now()
	if w.lastAck > 0 {
		dt := (now - w.lastAck).Seconds()
		if dt > 0 {
			sample := float64(acked) / dt
			// First-order low-pass filter (the paper's discrete Tustin
			// approximation reduces to an EWMA at ACK granularity).
			const gain = 0.1
			if w.bwe == 0 {
				w.bwe = sample
			} else {
				w.bwe = (1-gain)*w.bwe + gain*sample
			}
		}
	}
	w.lastAck = now
	if rtt := s.LastRTT(); rtt > 0 && (w.minRTT == 0 || rtt < w.minRTT) {
		w.minRTT = rtt
	}
}

// erePipe returns the eligible window in segments: BWE x RTTmin / MSS,
// floored at two segments. Zero when no estimate exists yet.
func (w *Westwood) erePipe(s *Sender) float64 {
	if w.bwe == 0 || w.minRTT == 0 {
		return 0
	}
	seg := w.bwe * w.minRTT.Seconds() / float64(s.MSS())
	if seg < 2 {
		seg = 2
	}
	return seg
}

// OnNewAck implements Variant.
func (w *Westwood) OnNewAck(s *Sender, ack *packet.Packet, acked int64) {
	w.sampleBandwidth(s, acked)
	if w.inRecovery {
		if ack.TCP.Ack >= w.recover {
			w.inRecovery = false
			s.SetCwnd(s.Ssthresh())
		} else {
			s.RetransmitSegment(s.SndUna())
		}
		return
	}
	slowStartOrAvoid(s)
}

// OnDupAck implements Variant.
func (w *Westwood) OnDupAck(s *Sender, _ *packet.Packet, n int) {
	if w.inRecovery {
		s.SetCwnd(s.Cwnd() + 1)
		return
	}
	if n != 3 {
		return
	}
	if s.Stats() != nil {
		s.Stats().FastRecoveries++
	}
	w.inRecovery = true
	w.recover = s.SndNxt()
	s.RetransmitSegment(s.SndUna())
	if pipe := w.erePipe(s); pipe > 0 {
		// Faster recovery: shrink only to the measured pipe size.
		s.SetSsthresh(pipe)
	} else {
		s.SetSsthresh(halfFlight(s))
	}
	if s.Cwnd() > s.Ssthresh() {
		s.SetCwnd(s.Ssthresh() + 3)
	}
}

// OnTimeout implements Variant.
func (w *Westwood) OnTimeout(s *Sender) {
	w.inRecovery = false
	if pipe := w.erePipe(s); pipe > 0 {
		s.SetSsthresh(pipe)
	} else {
		s.SetSsthresh(halfFlight(s))
	}
	s.SetCwnd(1)
}

var _ Variant = (*Westwood)(nil)
