package tcp

import (
	"sort"

	"muzha/internal/invariant"
	"muzha/internal/packet"
	"muzha/internal/sim"
)

// SinkConfig parameterizes a receiver.
type SinkConfig struct {
	FlowID int32
	// Peer is the sender's node address, where ACKs go.
	Peer packet.NodeID
	// SACKEnabled adds up to three SACK blocks to each ACK.
	SACKEnabled bool
	// DelayedAck, when positive, acknowledges every second in-order
	// segment or after this delay, per RFC 1122. Out-of-order segments
	// are always acknowledged immediately (they generate the duplicate
	// ACKs fast retransmit depends on). Zero disables delaying, the
	// setting the paper's simulations use.
	DelayedAck sim.Time
	// Invariants, when non-nil, receives run-time Always checks on the
	// receive-sequence bookkeeping.
	Invariants *invariant.Checker
}

// Sink is the TCP receiver: it accumulates in-order data, queues
// out-of-order segments, and acknowledges every arrival with a cumulative
// ACK carrying optional SACK blocks, the segment's send timestamp, and
// the TCP Muzha router-feedback echo (MRAI + congestion mark) of the data
// packet that triggered the ACK.
type Sink struct {
	sim  *sim.Simulator
	send func(*packet.Packet)
	cfg  SinkConfig

	rcvNxt    int64
	ooo       []packet.SACKBlock // out-of-order ranges above rcvNxt
	delivered int64              // cumulative in-order payload bytes
	acksSent  uint64
	dupSegs   uint64 // segments at or below rcvNxt (spurious rexmits)

	// Delayed-ACK state: the segment awaiting acknowledgement and the
	// timer that flushes it.
	pendingAck *packet.Packet
	ackTimer   *sim.Timer

	invSeq *invariant.Assertion // nil when checking is disabled
}

// NewSink builds a receiver that transmits ACKs through send.
func NewSink(s *sim.Simulator, send func(*packet.Packet), cfg SinkConfig) *Sink {
	k := &Sink{sim: s, send: send, cfg: cfg}
	k.ackTimer = sim.NewTimer(s, k.flushDelayedAck)
	if cfg.Invariants != nil {
		k.invSeq = cfg.Invariants.Always("sink-seq-monotone")
	}
	return k
}

// FlowID implements node.Agent.
func (k *Sink) FlowID() int32 { return k.cfg.FlowID }

// Delivered returns the cumulative in-order bytes received.
func (k *Sink) Delivered() int64 { return k.delivered }

// AcksSent returns the number of ACKs generated.
func (k *Sink) AcksSent() uint64 { return k.acksSent }

// DuplicateSegments returns the count of already-delivered segments
// received again.
func (k *Sink) DuplicateSegments() uint64 { return k.dupSegs }

// Recv implements node.Agent: processes a data segment and replies with
// an ACK.
func (k *Sink) Recv(pkt *packet.Packet) {
	if pkt.TCP == nil || pkt.TCP.IsAck {
		return
	}
	payload := int64(pkt.Size - packet.IPHeaderSize - packet.TCPHeaderSize)
	if payload <= 0 {
		return
	}
	seq := pkt.TCP.Seq
	end := seq + payload
	hadHole := len(k.ooo) > 0
	prevNxt := k.rcvNxt

	switch {
	case end <= k.rcvNxt:
		k.dupSegs++ // entirely old data
	case seq <= k.rcvNxt:
		k.rcvNxt = end
		k.absorbOOO()
	default:
		k.insertOOO(packet.SACKBlock{Start: seq, End: end})
	}
	k.delivered = k.rcvNxt
	k.invSeq.Check(k.rcvNxt >= prevNxt,
		"flow %d: rcvnxt regressed %d -> %d", k.cfg.FlowID, prevNxt, k.rcvNxt)
	// Eligible for delaying only for plain in-order arrivals: no hole
	// before or after (a hole fill must be acknowledged immediately so
	// the sender's recovery sees the jump, RFC 1122 4.2.3.2).
	inOrder := seq <= k.rcvNxt && len(k.ooo) == 0 && !hadHole
	if k.cfg.DelayedAck > 0 && inOrder && end > seq {
		if k.pendingAck == nil {
			// First unacknowledged segment: hold the ACK briefly.
			k.pendingAck = pkt
			k.ackTimer.Reset(k.cfg.DelayedAck)
			return
		}
		// Second segment: acknowledge both at once.
		k.flushDelayedAckWith(pkt)
		return
	}
	// Out-of-order, duplicate, or delaying disabled: ACK immediately,
	// flushing any held ACK state first.
	k.pendingAck = nil
	k.ackTimer.Stop()
	k.sendAck(pkt)
}

func (k *Sink) flushDelayedAck() {
	if k.pendingAck == nil {
		return
	}
	pkt := k.pendingAck
	k.pendingAck = nil
	k.sendAck(pkt)
}

func (k *Sink) flushDelayedAckWith(latest *packet.Packet) {
	k.pendingAck = nil
	k.ackTimer.Stop()
	k.sendAck(latest)
}

func (k *Sink) absorbOOO() {
	for len(k.ooo) > 0 && k.ooo[0].Start <= k.rcvNxt {
		if k.ooo[0].End > k.rcvNxt {
			k.rcvNxt = k.ooo[0].End
		}
		k.ooo = k.ooo[1:]
	}
}

func (k *Sink) insertOOO(blk packet.SACKBlock) {
	k.ooo = append(k.ooo, blk)
	sort.Slice(k.ooo, func(i, j int) bool { return k.ooo[i].Start < k.ooo[j].Start })
	merged := k.ooo[:1]
	for _, b := range k.ooo[1:] {
		last := &merged[len(merged)-1]
		if b.Start <= last.End {
			if b.End > last.End {
				last.End = b.End
			}
			continue
		}
		merged = append(merged, b)
	}
	k.ooo = merged
}

func (k *Sink) sendAck(data *packet.Packet) {
	hdr := &packet.TCPHeader{
		FlowID: k.cfg.FlowID,
		Ack:    k.rcvNxt,
		IsAck:  true,
		// TSEcho uses a +1 offset so that zero means "no echo" and a
		// segment sent at virtual time 0 is still measurable.
		TSEcho: data.SendTime + 1,
		Echo: packet.MuzhaEcho{
			MRAI:   data.AVBW,
			Marked: data.CongMarked,
		},
	}
	size := packet.IPHeaderSize + packet.TCPHeaderSize
	if k.cfg.SACKEnabled && len(k.ooo) > 0 {
		nblocks := len(k.ooo)
		if nblocks > 3 {
			nblocks = 3
		}
		hdr.SACK = make([]packet.SACKBlock, nblocks)
		copy(hdr.SACK, k.ooo[:nblocks])
		size += nblocks * packet.SACKBlockBytes
	}
	k.acksSent++
	k.send(&packet.Packet{
		Kind: packet.KindData,
		Dst:  k.cfg.Peer,
		Size: size,
		TTL:  64,
		TCP:  hdr,
	})
}
