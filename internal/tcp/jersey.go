package tcp

import (
	"muzha/internal/packet"
	"muzha/internal/sim"
)

// Jersey implements TCP Jersey (Xu, Tian & Ansari, JSAC 2004), the
// router-assisted comparison point the thesis discusses in Section 3.2.
// Two components:
//
//   - ABE (available bandwidth estimation): a time-sliding-window
//     estimator of the achieved rate from ACK arrivals, converted to an
//     optimal window ownd = ABE x RTT / MSS.
//   - CW (congestion warning): routers mark every packet once their
//     queue passes a threshold (this simulator's router marking); the
//     sender that sees a marked ACK performs rate control — window :=
//     ownd — without waiting for loss, and losses accompanied by marks
//     are treated as congestion while unmarked losses only trigger
//     retransmission with the window pinned to ownd.
type Jersey struct {
	abe        float64 // bytes/s, TSW-estimated
	lastUpdate sim.Time
	inRecovery bool
	recover    int64
	lastRate   sim.Time // last CW-triggered rate control
}

// NewJersey returns the Jersey variant.
func NewJersey() *Jersey { return &Jersey{} }

// Name implements Variant.
func (*Jersey) Name() string { return "jersey" }

// updateABE folds acked bytes into the time-sliding-window rate
// estimator (the paper's equation 4 with RTT-scale smoothing).
func (j *Jersey) updateABE(s *Sender, acked int64) {
	now := s.Now()
	rtt := s.SRTT()
	if rtt <= 0 {
		rtt = 100 * sim.Millisecond
	}
	if j.lastUpdate == 0 {
		j.lastUpdate = now
		return
	}
	dt := (now - j.lastUpdate).Seconds()
	j.lastUpdate = now
	if dt <= 0 {
		return
	}
	window := rtt.Seconds()
	sample := float64(acked) / dt
	// TSW: weight by elapsed time against one RTT of memory.
	w := dt / (dt + window)
	j.abe = (1-w)*j.abe + w*sample
}

// ownd returns the ABE-derived optimal window in segments (>= 2), or 0
// when no estimate exists.
func (j *Jersey) ownd(s *Sender) float64 {
	rtt := s.SRTT()
	if j.abe == 0 || rtt <= 0 {
		return 0
	}
	seg := j.abe * rtt.Seconds() / float64(s.MSS())
	if seg < 2 {
		seg = 2
	}
	return seg
}

// OnNewAck implements Variant.
func (j *Jersey) OnNewAck(s *Sender, ack *packet.Packet, acked int64) {
	j.updateABE(s, acked)
	if j.inRecovery {
		if ack.TCP.Ack >= j.recover {
			j.inRecovery = false
			s.SetCwnd(s.Ssthresh())
		} else {
			s.RetransmitSegment(s.SndUna())
		}
		return
	}
	// Congestion warning: a marked ACK triggers rate control at most
	// once per RTT.
	if ack.TCP.Echo.Marked {
		if rtt := s.SRTT(); rtt > 0 && s.Now()-j.lastRate >= rtt {
			j.lastRate = s.Now()
			if w := j.ownd(s); w > 0 && w < s.Cwnd() {
				s.SetSsthresh(w)
				s.SetCwnd(w)
				return
			}
		}
	}
	slowStartOrAvoid(s)
}

// OnDupAck implements Variant.
func (j *Jersey) OnDupAck(s *Sender, ack *packet.Packet, n int) {
	if j.inRecovery {
		s.SetCwnd(s.Cwnd() + 1)
		return
	}
	if n != 3 {
		return
	}
	if s.Stats() != nil {
		s.Stats().FastRecoveries++
	}
	j.inRecovery = true
	j.recover = s.SndNxt()
	s.RetransmitSegment(s.SndUna())
	// Rate-based recovery: the window target is the estimated optimal
	// window, not a blind half.
	if w := j.ownd(s); w > 0 {
		s.SetSsthresh(w)
	} else {
		s.SetSsthresh(halfFlight(s))
	}
	s.SetCwnd(s.Ssthresh() + 3)
}

// OnTimeout implements Variant.
func (j *Jersey) OnTimeout(s *Sender) {
	j.inRecovery = false
	if w := j.ownd(s); w > 0 {
		s.SetSsthresh(w)
	} else {
		s.SetSsthresh(halfFlight(s))
	}
	s.SetCwnd(1)
}

var _ Variant = (*Jersey)(nil)
