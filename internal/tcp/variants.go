package tcp

import "muzha/internal/packet"

// slowStartOrAvoid applies the classical window growth: exponential below
// ssthresh, linear (1/cwnd per ACK) above.
func slowStartOrAvoid(s *Sender) {
	if s.Cwnd() < s.Ssthresh() {
		s.SetCwnd(s.Cwnd() + 1)
	} else {
		s.SetCwnd(s.Cwnd() + 1/s.Cwnd())
	}
}

// halfFlight returns max(flight/2, 2) segments, the classical multiplicative
// decrease target.
func halfFlight(s *Sender) float64 {
	half := s.FlightSegments() / 2
	if half < 2 {
		half = 2
	}
	return half
}

// Tahoe is the original congestion control: slow start, congestion
// avoidance and fast retransmit, with every loss resetting the window to
// one segment.
type Tahoe struct{}

// NewTahoe returns the Tahoe variant.
func NewTahoe() *Tahoe { return &Tahoe{} }

// Name implements Variant.
func (*Tahoe) Name() string { return "tahoe" }

// OnNewAck implements Variant.
func (*Tahoe) OnNewAck(s *Sender, _ *packet.Packet, _ int64) { slowStartOrAvoid(s) }

// OnDupAck implements Variant.
func (*Tahoe) OnDupAck(s *Sender, _ *packet.Packet, n int) {
	if n != 3 {
		return
	}
	if s.Stats() != nil {
		s.Stats().FastRecoveries++
	}
	s.SetSsthresh(halfFlight(s))
	s.RetransmitSegment(s.SndUna())
	s.SetCwnd(1) // Tahoe re-enters slow start after fast retransmit
}

// OnTimeout implements Variant.
func (*Tahoe) OnTimeout(s *Sender) {
	s.SetSsthresh(halfFlight(s))
	s.SetCwnd(1)
}

// Reno adds fast recovery: after a fast retransmit the window is halved
// (not collapsed) and inflated by one segment per further duplicate ACK
// until a new ACK arrives.
type Reno struct {
	inRecovery bool
}

// NewReno2 returns the Reno variant. (The name avoids colliding with the
// NewReno type below.)
func NewReno2() *Reno { return &Reno{} }

// Name implements Variant.
func (*Reno) Name() string { return "reno" }

// OnNewAck implements Variant.
func (r *Reno) OnNewAck(s *Sender, _ *packet.Packet, _ int64) {
	if r.inRecovery {
		// Any new ACK ends Reno recovery: deflate to ssthresh.
		r.inRecovery = false
		s.SetCwnd(s.Ssthresh())
		return
	}
	slowStartOrAvoid(s)
}

// OnDupAck implements Variant.
func (r *Reno) OnDupAck(s *Sender, _ *packet.Packet, n int) {
	if r.inRecovery {
		s.SetCwnd(s.Cwnd() + 1) // window inflation
		return
	}
	if n != 3 {
		return
	}
	if s.Stats() != nil {
		s.Stats().FastRecoveries++
	}
	r.inRecovery = true
	s.SetSsthresh(halfFlight(s))
	s.RetransmitSegment(s.SndUna())
	s.SetCwnd(s.Ssthresh() + 3)
}

// OnTimeout implements Variant.
func (r *Reno) OnTimeout(s *Sender) {
	r.inRecovery = false
	s.SetSsthresh(halfFlight(s))
	s.SetCwnd(1)
}

// NewReno refines Reno's fast recovery to survive multiple losses in one
// window (RFC 3782): partial ACKs retransmit the next hole and keep the
// sender in recovery until the recovery point is reached.
type NewReno struct {
	inRecovery bool
	recover    int64 // highest sequence outstanding when recovery began
}

// NewNewReno returns the NewReno variant.
func NewNewReno() *NewReno { return &NewReno{} }

// Name implements Variant.
func (*NewReno) Name() string { return "newreno" }

// OnNewAck implements Variant.
func (n *NewReno) OnNewAck(s *Sender, ack *packet.Packet, acked int64) {
	if !n.inRecovery {
		slowStartOrAvoid(s)
		return
	}
	if ack.TCP.Ack >= n.recover {
		// Full acknowledgement: recovery complete, deflate.
		n.inRecovery = false
		s.SetCwnd(s.Ssthresh())
		return
	}
	// Partial acknowledgement: the next hole starts at the new SndUna.
	// Retransmit it, deflate by the amount acknowledged, add one, and
	// stay in recovery (RFC 3782 step 5).
	s.RetransmitSegment(s.SndUna())
	w := s.Cwnd() - float64(acked)/float64(s.MSS()) + 1
	s.SetCwnd(w)
}

// OnDupAck implements Variant.
func (n *NewReno) OnDupAck(s *Sender, _ *packet.Packet, count int) {
	if n.inRecovery {
		s.SetCwnd(s.Cwnd() + 1)
		return
	}
	if count != 3 {
		return
	}
	if s.Stats() != nil {
		s.Stats().FastRecoveries++
	}
	n.inRecovery = true
	n.recover = s.SndNxt()
	s.SetSsthresh(halfFlight(s))
	s.RetransmitSegment(s.SndUna())
	s.SetCwnd(s.Ssthresh() + 3)
}

// OnTimeout implements Variant.
func (n *NewReno) OnTimeout(s *Sender) {
	n.inRecovery = false
	s.SetSsthresh(halfFlight(s))
	s.SetCwnd(1)
}

var (
	_ Variant = (*Tahoe)(nil)
	_ Variant = (*Reno)(nil)
	_ Variant = (*NewReno)(nil)
)
