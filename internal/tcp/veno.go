package tcp

import (
	"muzha/internal/packet"
	"muzha/internal/sim"
)

// Veno implements TCP Veno (Fu & Liew, JSAC 2003), the end-to-end
// counterpart of Muzha's random-loss discrimination: a Vegas-style
// backlog estimate N = (cwnd/baseRTT - cwnd/RTT) * baseRTT classifies the
// connection state. Losses striking while N < Beta are deemed random and
// cut the window by only 1/5; losses in the congestive region halve it.
// During congestion avoidance the window grows at the normal rate while
// non-congestive and at half rate once the backlog passes Beta.
type Veno struct {
	// Beta is the backlog threshold in segments (paper value: 3).
	Beta float64

	baseRTT    sim.Time
	inRecovery bool
	recover    int64
	holdOne    bool // skip every other increment when backlog is high
}

// NewVeno returns a Veno variant with the paper's Beta of 3 segments.
func NewVeno() *Veno { return &Veno{Beta: 3} }

// Name implements Variant.
func (*Veno) Name() string { return "veno" }

// backlog returns the Vegas-style queue estimate in segments; negative
// when no RTT information is available yet.
func (v *Veno) backlog(s *Sender) float64 {
	rtt := s.LastRTT()
	if rtt <= 0 || v.baseRTT <= 0 {
		return -1
	}
	cwnd := s.Cwnd()
	expected := cwnd / v.baseRTT.Seconds()
	actual := cwnd / rtt.Seconds()
	return (expected - actual) * v.baseRTT.Seconds()
}

// OnNewAck implements Variant.
func (v *Veno) OnNewAck(s *Sender, ack *packet.Packet, _ int64) {
	if rtt := s.LastRTT(); rtt > 0 && (v.baseRTT == 0 || rtt < v.baseRTT) {
		v.baseRTT = rtt
	}
	if v.inRecovery {
		if ack.TCP.Ack >= v.recover {
			v.inRecovery = false
			s.SetCwnd(s.Ssthresh())
		} else {
			// NewReno-style partial ACK handling.
			s.RetransmitSegment(s.SndUna())
		}
		return
	}
	if s.Cwnd() < s.Ssthresh() {
		s.SetCwnd(s.Cwnd() + 1)
		return
	}
	// Congestion avoidance: halve the growth rate once the estimated
	// backlog exceeds Beta (stay longer at the sweet spot).
	if n := v.backlog(s); n >= v.Beta {
		if v.holdOne {
			v.holdOne = false
			return
		}
		v.holdOne = true
	}
	s.SetCwnd(s.Cwnd() + 1/s.Cwnd())
}

// OnDupAck implements Variant.
func (v *Veno) OnDupAck(s *Sender, _ *packet.Packet, n int) {
	if v.inRecovery {
		s.SetCwnd(s.Cwnd() + 1)
		return
	}
	if n != 3 {
		return
	}
	if s.Stats() != nil {
		s.Stats().FastRecoveries++
	}
	v.inRecovery = true
	v.recover = s.SndNxt()
	s.RetransmitSegment(s.SndUna())
	if b := v.backlog(s); b >= 0 && b < v.Beta {
		// Random loss: mild 1/5 reduction (Veno's key move).
		s.SetSsthresh(s.Cwnd() * 4 / 5)
	} else {
		// Congestive loss (or no estimate): classic halving.
		s.SetSsthresh(halfFlight(s))
	}
	s.SetCwnd(s.Ssthresh() + 3)
}

// OnTimeout implements Variant.
func (v *Veno) OnTimeout(s *Sender) {
	v.inRecovery = false
	s.SetSsthresh(halfFlight(s))
	s.SetCwnd(1)
}

var _ Variant = (*Veno)(nil)
