package tcp

import (
	"muzha/internal/packet"
	"muzha/internal/sim"
)

// ECNNewReno is TCP NewReno extended with an RFC 3168-style response to
// router congestion marks: a marked ACK halves the window (at most once
// per RTT) without waiting for loss. The thesis positions ECN as the
// binary extreme of the multi-level DRAI (Section 4.6); this variant is
// the sender-side baseline the ablation benches compare Muzha against.
type ECNNewReno struct {
	nr      NewReno
	lastCut sim.Time
}

// NewECNNewReno returns the ECN-reactive NewReno variant.
func NewECNNewReno() *ECNNewReno { return &ECNNewReno{} }

// Name implements Variant.
func (*ECNNewReno) Name() string { return "ecn-newreno" }

// OnNewAck implements Variant.
func (e *ECNNewReno) OnNewAck(s *Sender, ack *packet.Packet, acked int64) {
	if ack.TCP.Echo.Marked && !e.nr.inRecovery {
		rtt := s.SRTT()
		if rtt <= 0 {
			rtt = 100 * sim.Millisecond
		}
		if s.Now()-e.lastCut >= rtt {
			// RFC 3168 6.1.2: congestion response as for a single lost
			// packet, but without any retransmission.
			e.lastCut = s.Now()
			s.SetSsthresh(halfFlight(s))
			s.SetCwnd(s.Ssthresh())
			return
		}
	}
	e.nr.OnNewAck(s, ack, acked)
}

// OnDupAck implements Variant.
func (e *ECNNewReno) OnDupAck(s *Sender, ack *packet.Packet, n int) {
	e.nr.OnDupAck(s, ack, n)
}

// OnTimeout implements Variant.
func (e *ECNNewReno) OnTimeout(s *Sender) { e.nr.OnTimeout(s) }

var _ Variant = (*ECNNewReno)(nil)
