package tcp

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

// --- TCP Veno ---

func TestVenoNamesAndDefaults(t *testing.T) {
	v := NewVeno()
	if v.Name() != "veno" || v.Beta != 3 {
		t.Fatalf("veno defaults: %+v", v)
	}
}

func TestVenoRandomLossMildReduction(t *testing.T) {
	v := NewVeno()
	s, snd, w, _ := testSender(t, v, func(c *SenderConfig) { c.InitialCwnd = 10 })
	snd.Start()
	segs := w.take()

	// Establish base RTT = last RTT (no backlog: random-loss regime).
	s.Run(40 * sim.Millisecond)
	snd.Recv(ackFor(1000, segs[0].SendTime))
	w.take()

	for i := 0; i < 3; i++ {
		snd.Recv(ackFor(1000, -1))
	}
	// Backlog ~0 < Beta: ssthresh = 4/5 of cwnd, not half.
	want := snd.Cwnd() // cwnd = ssthresh+3 at this point
	if snd.Ssthresh() < 8 {
		t.Fatalf("Veno halved on random loss: ssthresh = %g", snd.Ssthresh())
	}
	_ = want
}

func TestVenoCongestiveLossHalves(t *testing.T) {
	v := NewVeno()
	s, snd, w, _ := testSender(t, v, func(c *SenderConfig) { c.InitialCwnd = 10 })
	snd.Start()
	segs := w.take()

	// Base RTT 40 ms, then an inflated 120 ms RTT: backlog >> Beta.
	s.Run(40 * sim.Millisecond)
	snd.Recv(ackFor(1000, segs[0].SendTime))
	s.Run(s.Now() + 120*sim.Millisecond)
	snd.Recv(ackFor(2000, segs[1].SendTime))
	w.take()

	for i := 0; i < 3; i++ {
		snd.Recv(ackFor(2000, -1))
	}
	if snd.Ssthresh() > 6 {
		t.Fatalf("Veno did not halve on congestive loss: ssthresh = %g", snd.Ssthresh())
	}
}

func TestVenoRecoveryExitsOnFullAck(t *testing.T) {
	v := NewVeno()
	_, snd, w, _ := testSender(t, v, func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.take()
	for i := 0; i < 3; i++ {
		snd.Recv(ackFor(0, -1))
	}
	snd.Recv(ackFor(8000, -1))
	if v.inRecovery {
		t.Fatal("Veno still in recovery after full ACK")
	}
	if snd.Cwnd() != snd.Ssthresh() {
		t.Fatalf("exit deflation: cwnd=%g ssthresh=%g", snd.Cwnd(), snd.Ssthresh())
	}
}

func TestVenoTimeout(t *testing.T) {
	v := NewVeno()
	_, snd, _, _ := testSender(t, v, func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	v.OnTimeout(snd)
	if snd.Cwnd() != 1 {
		t.Fatalf("cwnd after timeout = %g", snd.Cwnd())
	}
}

// --- TCP Westwood ---

func TestWestwoodBandwidthEstimate(t *testing.T) {
	w := NewWestwood()
	s, snd, wr, _ := testSender(t, w, func(c *SenderConfig) { c.InitialCwnd = 4 })
	snd.Start()
	segs := wr.take()

	// Four ACKs, 10 ms apart, 1000 bytes each: ~100 kB/s.
	for i, p := range segs {
		s.Run(s.Now() + 10*sim.Millisecond)
		snd.Recv(ackFor(int64(i+1)*1000, p.SendTime))
	}
	if w.bwe < 50_000 || w.bwe > 150_000 {
		t.Fatalf("BWE = %.0f B/s, want ~100000", w.bwe)
	}
	if w.minRTT <= 0 {
		t.Fatal("min RTT not tracked")
	}
}

func TestWestwoodLossSetsSsthreshFromPipe(t *testing.T) {
	w := NewWestwood()
	s, snd, wr, _ := testSender(t, w, func(c *SenderConfig) { c.InitialCwnd = 16 })
	snd.Start()
	segs := wr.take()
	// Feed a steady 1000 B / 5 ms = 200 kB/s stream with 40 ms RTT:
	// pipe = 200k * 0.04 / 1000 = 8 segments.
	for i, p := range segs[:8] {
		s.Run(s.Now() + 5*sim.Millisecond)
		snd.Recv(ackFor(int64(i+1)*1000, p.SendTime-int64(35*sim.Millisecond)))
	}
	wr.take()
	for i := 0; i < 3; i++ {
		snd.Recv(ackFor(8000, -1))
	}
	// ssthresh must come from the pipe estimate, not halving (halving
	// would give ~8 too here, so assert it's in the pipe's ballpark and
	// definitely not the tiny floor).
	if snd.Ssthresh() < 4 || snd.Ssthresh() > 12 {
		t.Fatalf("Westwood ssthresh = %g, want near measured pipe", snd.Ssthresh())
	}
}

func TestWestwoodWithoutEstimateFallsBackToHalf(t *testing.T) {
	w := NewWestwood()
	_, snd, wr, _ := testSender(t, w, func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	wr.take()
	for i := 0; i < 3; i++ {
		snd.Recv(ackFor(0, -1))
	}
	if snd.Ssthresh() != 4 {
		t.Fatalf("fallback ssthresh = %g, want half flight", snd.Ssthresh())
	}
}

func TestWestwoodTimeoutKeepsEstimate(t *testing.T) {
	w := NewWestwood()
	_, snd, _, _ := testSender(t, w, func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.bwe = 100_000
	w.minRTT = 40 * sim.Millisecond
	w.OnTimeout(snd)
	if snd.Cwnd() != 1 {
		t.Fatalf("cwnd after timeout = %g", snd.Cwnd())
	}
	if snd.Ssthresh() != 4 { // 100kB/s * 40ms / 1000B = 4 segments
		t.Fatalf("ssthresh after timeout = %g, want 4 from BWE", snd.Ssthresh())
	}
}

// --- TCP Jersey ---

func jerseyAck(n int64, marked bool, sendTime int64) *packet.Packet {
	p := ackFor(n, sendTime)
	p.TCP.Echo.Marked = marked
	return p
}

func TestJerseyCongestionWarningRateControl(t *testing.T) {
	j := NewJersey()
	s, snd, w, _ := testSender(t, j, func(c *SenderConfig) { c.InitialCwnd = 12 })
	snd.Start()
	segs := w.take()

	// Build the ABE with unmarked ACKs (~1000 B / 10 ms = 100 kB/s).
	for i, p := range segs[:8] {
		s.Run(s.Now() + 10*sim.Millisecond)
		snd.Recv(jerseyAck(int64(i+1)*1000, false, p.SendTime))
	}
	before := snd.Cwnd()
	// A marked ACK triggers rate control: window drops to ownd.
	s.Run(s.Now() + 10*sim.Millisecond)
	snd.Recv(jerseyAck(9000, true, segs[8].SendTime))
	if snd.Cwnd() >= before {
		t.Fatalf("CW mark did not reduce window: %g -> %g", before, snd.Cwnd())
	}
	if snd.Cwnd() < 2 {
		t.Fatalf("rate control collapsed window: %g", snd.Cwnd())
	}
}

func TestJerseyRateControlOncePerRTT(t *testing.T) {
	j := NewJersey()
	s, snd, w, _ := testSender(t, j, func(c *SenderConfig) { c.InitialCwnd = 12 })
	snd.Start()
	segs := w.take()
	for i, p := range segs[:6] {
		s.Run(s.Now() + 10*sim.Millisecond)
		snd.Recv(jerseyAck(int64(i+1)*1000, false, p.SendTime))
	}
	snd.Recv(jerseyAck(7000, true, segs[6].SendTime))
	after := snd.Cwnd()
	// Immediately-following marked ACK inside the same RTT: no second cut
	// (growth may continue).
	snd.Recv(jerseyAck(8000, true, segs[7].SendTime))
	if snd.Cwnd() < after {
		t.Fatalf("second cut within one RTT: %g -> %g", after, snd.Cwnd())
	}
}

func TestJerseyLossUsesABE(t *testing.T) {
	j := NewJersey()
	s, snd, w, _ := testSender(t, j, func(c *SenderConfig) { c.InitialCwnd = 12 })
	snd.Start()
	segs := w.take()
	for i, p := range segs[:8] {
		s.Run(s.Now() + 10*sim.Millisecond)
		snd.Recv(jerseyAck(int64(i+1)*1000, false, p.SendTime))
	}
	w.take()
	for i := 0; i < 3; i++ {
		snd.Recv(jerseyAck(8000, false, -1))
	}
	if j.ownd(snd) == 0 {
		t.Fatal("no ABE estimate despite traffic")
	}
	if snd.Ssthresh() < 2 {
		t.Fatalf("ssthresh = %g", snd.Ssthresh())
	}
	// Full ACK (everything sent so far) exits recovery.
	snd.Recv(jerseyAck(snd.SndNxt(), false, -1))
	if j.inRecovery {
		t.Fatal("Jersey stuck in recovery")
	}
}

func TestJerseyTimeout(t *testing.T) {
	j := NewJersey()
	_, snd, _, _ := testSender(t, j, func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	j.OnTimeout(snd)
	if snd.Cwnd() != 1 {
		t.Fatalf("cwnd after timeout = %g", snd.Cwnd())
	}
}

// --- ECN NewReno ---

func TestECNNewRenoCutsOnMark(t *testing.T) {
	e := NewECNNewReno()
	s, snd, w, _ := testSender(t, e, func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	segs := w.take()
	s.Run(40 * sim.Millisecond)
	snd.Recv(jerseyAck(1000, true, segs[0].SendTime))
	// Flight after the ACK is 7 segments: the RFC 3168 response halves
	// to 3.5.
	if snd.Cwnd() != 3.5 {
		t.Fatalf("marked ACK: cwnd = %g, want 3.5 (half of 7 in flight)", snd.Cwnd())
	}
}

func TestECNNewRenoCutsAtMostOncePerRTT(t *testing.T) {
	e := NewECNNewReno()
	s, snd, w, _ := testSender(t, e, func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	segs := w.take()
	s.Run(40 * sim.Millisecond)
	snd.Recv(jerseyAck(1000, true, segs[0].SendTime))
	after := snd.Cwnd()
	snd.Recv(jerseyAck(2000, true, segs[1].SendTime))
	if snd.Cwnd() < after {
		t.Fatalf("second ECN cut within one RTT: %g -> %g", after, snd.Cwnd())
	}
}

func TestECNNewRenoUnmarkedBehavesLikeNewReno(t *testing.T) {
	e := NewECNNewReno()
	_, snd, w, _ := testSender(t, e, nil)
	snd.Start()
	ackAll(snd, w, 1000)
	if snd.Cwnd() != 2 {
		t.Fatalf("slow start broken: cwnd = %g", snd.Cwnd())
	}
	ackAll(snd, w, 1000)
	if snd.Cwnd() != 4 {
		t.Fatalf("slow start broken: cwnd = %g", snd.Cwnd())
	}
}

func TestECNNewRenoLossRecoveryDelegates(t *testing.T) {
	e := NewECNNewReno()
	_, snd, w, fl := testSender(t, e, func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.take()
	for i := 0; i < 3; i++ {
		snd.Recv(ackFor(0, -1))
	}
	if fl.FastRecoveries != 1 || fl.Retransmissions != 1 {
		t.Fatalf("delegated recovery stats: %+v", fl)
	}
	e.OnTimeout(snd)
	if snd.Cwnd() != 1 {
		t.Fatalf("timeout delegation: cwnd = %g", snd.Cwnd())
	}
}

func TestNewVariantNames(t *testing.T) {
	tests := []struct {
		v    Variant
		want string
	}{
		{NewVeno(), "veno"},
		{NewWestwood(), "westwood"},
		{NewJersey(), "jersey"},
		{NewECNNewReno(), "ecn-newreno"},
	}
	for _, tt := range tests {
		if got := tt.v.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}
