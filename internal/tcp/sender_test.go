package tcp

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
	"muzha/internal/stats"
)

// wire captures transmitted segments so tests can script the peer.
type wire struct {
	sent []*packet.Packet
}

func (w *wire) send(p *packet.Packet) { w.sent = append(w.sent, p) }

func (w *wire) take() []*packet.Packet {
	out := w.sent
	w.sent = nil
	return out
}

func testSender(t *testing.T, v Variant, mutate func(*SenderConfig)) (*sim.Simulator, *Sender, *wire, *stats.Flow) {
	t.Helper()
	s := sim.New(1)
	w := &wire{}
	fl := stats.NewFlow(1, v.Name(), 0)
	cfg := SenderConfig{
		FlowID:           1,
		Dst:              4,
		MSS:              1000,
		AdvertisedWindow: 32,
		Stats:            fl,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	snd, err := NewSender(s, w.send, cfg, v)
	if err != nil {
		t.Fatal(err)
	}
	return s, snd, w, fl
}

// ackFor builds the ACK a sink would generate for cumulative ack number
// n, echoing the acknowledged segment's send time (pass a negative
// sendTime for "no echo").
func ackFor(n int64, sendTime int64) *packet.Packet {
	tsEcho := int64(0)
	if sendTime >= 0 {
		tsEcho = sendTime + 1
	}
	return &packet.Packet{
		Kind: packet.KindData,
		TCP:  &packet.TCPHeader{FlowID: 1, Ack: n, IsAck: true, TSEcho: tsEcho},
	}
}

// ackAll acknowledges every captured segment individually, in sequence
// order (a sink with delayed ACKs off generates one ACK per segment), and
// returns the final cumulative ack point.
func ackAll(snd *Sender, w *wire, mss int64) int64 {
	segs := w.take()
	var high int64
	for _, p := range segs {
		end := p.TCP.Seq + mss
		if end > high {
			high = end
		}
		snd.Recv(ackFor(end, -1))
	}
	return high
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	s := sim.New(1)
	w := &wire{}
	if _, err := NewSender(s, nil, SenderConfig{MSS: 1000, AdvertisedWindow: 4}, NewNewReno()); err == nil {
		t.Fatal("nil send accepted")
	}
	if _, err := NewSender(s, w.send, SenderConfig{MSS: 0, AdvertisedWindow: 4}, NewNewReno()); err == nil {
		t.Fatal("zero MSS accepted")
	}
	if _, err := NewSender(s, w.send, SenderConfig{MSS: 1000, AdvertisedWindow: 0}, NewNewReno()); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewSender(s, w.send, SenderConfig{MSS: 1000, AdvertisedWindow: 4, MinRTO: sim.Second, MaxRTO: sim.Millisecond}, NewNewReno()); err == nil {
		t.Fatal("MaxRTO < MinRTO accepted")
	}
	snd, err := NewSender(s, w.send, SenderConfig{MSS: 1000, AdvertisedWindow: 4}, NewNewReno())
	if err != nil {
		t.Fatal(err)
	}
	if snd.Cwnd() != 1 || snd.Ssthresh() != 4 {
		t.Fatalf("defaults: cwnd=%g ssthresh=%g", snd.Cwnd(), snd.Ssthresh())
	}
}

func TestInitialWindowSendsOneSegment(t *testing.T) {
	_, snd, w, _ := testSender(t, NewNewReno(), nil)
	snd.Start()
	if len(w.sent) != 1 {
		t.Fatalf("sent %d segments with cwnd 1, want 1", len(w.sent))
	}
	p := w.sent[0]
	if p.TCP.Seq != 0 || p.Size != 1000+40 {
		t.Fatalf("first segment = %+v", p.TCP)
	}
	if p.AVBW != 0 {
		t.Fatal("non-Muzha sender stamped AVBW")
	}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	_, snd, w, _ := testSender(t, NewNewReno(), nil)
	snd.Start()
	wantCwnd := []float64{2, 4, 8, 16}
	for _, want := range wantCwnd {
		ackAll(snd, w, 1000)
		if snd.Cwnd() != want {
			t.Fatalf("cwnd = %g, want %g", snd.Cwnd(), want)
		}
	}
}

func TestCongestionAvoidanceLinearGrowth(t *testing.T) {
	_, snd, w, _ := testSender(t, NewNewReno(), func(c *SenderConfig) {
		c.InitialCwnd = 8
		c.InitialSsthresh = 4 // already above threshold: CA from the start
	})
	snd.Start()
	before := snd.Cwnd()
	segs := w.take()
	// Ack one segment: growth must be 1/cwnd, not 1.
	snd.Recv(ackFor(segs[0].TCP.Seq+1000, 0))
	growth := snd.Cwnd() - before
	if growth <= 0 || growth > 1.0/7 {
		t.Fatalf("CA growth per ACK = %g, want ~1/cwnd", growth)
	}
}

func TestAdvertisedWindowCapsFlight(t *testing.T) {
	_, snd, w, _ := testSender(t, NewNewReno(), func(c *SenderConfig) {
		c.InitialCwnd = 100
		c.AdvertisedWindow = 4
	})
	snd.Start()
	if len(w.sent) != 4 {
		t.Fatalf("sent %d segments, advertised window is 4", len(w.sent))
	}
}

func TestDupAcksTriggerFastRetransmitAtThree(t *testing.T) {
	_, snd, w, fl := testSender(t, NewNewReno(), func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.take()

	snd.Recv(ackFor(0, 0)) // dup 1 (flight exists, ack doesn't advance)
	snd.Recv(ackFor(0, 0)) // dup 2
	if len(w.take()) != 0 {
		t.Fatal("retransmitted before third dup ACK")
	}
	snd.Recv(ackFor(0, 0)) // dup 3
	retx := w.take()
	if len(retx) == 0 || retx[0].TCP.Seq != 0 {
		t.Fatalf("no head retransmission on third dup ACK: %v", retx)
	}
	if fl.Retransmissions != 1 || fl.FastRecoveries != 1 {
		t.Fatalf("stats: %d rexmit, %d recoveries", fl.Retransmissions, fl.FastRecoveries)
	}
	// ssthresh = flight/2 = 4; cwnd = ssthresh + 3.
	if snd.Ssthresh() != 4 || snd.Cwnd() != 7 {
		t.Fatalf("after entry: ssthresh=%g cwnd=%g", snd.Ssthresh(), snd.Cwnd())
	}
}

func TestRenoExitsRecoveryOnFirstNewAck(t *testing.T) {
	_, snd, w, _ := testSender(t, NewReno2(), func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.take()
	for i := 0; i < 3; i++ {
		snd.Recv(ackFor(0, 0))
	}
	// Partial progress: Reno deflates immediately.
	snd.Recv(ackFor(1000, 0))
	if snd.Cwnd() != snd.Ssthresh() {
		t.Fatalf("Reno did not deflate: cwnd=%g ssthresh=%g", snd.Cwnd(), snd.Ssthresh())
	}
}

func TestNewRenoPartialAckRetransmitsHole(t *testing.T) {
	_, snd, w, fl := testSender(t, NewNewReno(), func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.take() // 8 segments, seqs 0..7000

	for i := 0; i < 3; i++ {
		snd.Recv(ackFor(0, 0))
	}
	w.take() // head retransmission

	// Partial ACK to 1000 (recovery point is 8000): must retransmit the
	// hole at 1000 and stay in recovery.
	snd.Recv(ackFor(1000, 0))
	out := w.take()
	foundHole := false
	for _, p := range out {
		if p.TCP.Seq == 1000 {
			foundHole = true
		}
	}
	if !foundHole {
		t.Fatalf("partial ACK did not retransmit hole: %v", out)
	}
	if fl.Retransmissions != 2 {
		t.Fatalf("retransmissions = %d, want 2", fl.Retransmissions)
	}

	// Full ACK past the recovery point exits and deflates to ssthresh.
	snd.Recv(ackFor(8000, 0))
	if snd.Cwnd() != snd.Ssthresh() {
		t.Fatalf("full ACK: cwnd=%g, want ssthresh=%g", snd.Cwnd(), snd.Ssthresh())
	}
	// Next new ACK grows normally again.
	segs := w.take()
	if len(segs) == 0 {
		t.Fatal("no new data after recovery")
	}
}

func TestTahoeCollapsesToOne(t *testing.T) {
	_, snd, w, _ := testSender(t, NewTahoe(), func(c *SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.take()
	for i := 0; i < 3; i++ {
		snd.Recv(ackFor(0, 0))
	}
	if snd.Cwnd() != 1 {
		t.Fatalf("Tahoe cwnd after fast retransmit = %g, want 1", snd.Cwnd())
	}
	if snd.Ssthresh() != 4 {
		t.Fatalf("Tahoe ssthresh = %g, want 4", snd.Ssthresh())
	}
}

func TestTimeoutRetransmitsAndBacksOff(t *testing.T) {
	s, snd, w, fl := testSender(t, NewNewReno(), func(c *SenderConfig) {
		c.InitialRTO = 100 * sim.Millisecond
	})
	snd.Start()
	w.take()
	s.Run(150 * sim.Millisecond) // RTO fires

	out := w.take()
	if len(out) != 1 || out[0].TCP.Seq != 0 {
		t.Fatalf("timeout retransmission: %v", out)
	}
	if fl.Timeouts != 1 || fl.Retransmissions != 1 {
		t.Fatalf("stats after timeout: %+v", fl)
	}
	if snd.Cwnd() != 1 {
		t.Fatalf("cwnd after timeout = %g, want 1", snd.Cwnd())
	}
	if snd.RTO() != 200*sim.Millisecond {
		t.Fatalf("RTO after backoff = %v, want 200ms", snd.RTO())
	}

	// Second expiry doubles again.
	s.Run(400 * sim.Millisecond)
	if fl.Timeouts != 2 {
		t.Fatalf("second timeout missing: %+v", fl)
	}
	if snd.RTO() != 400*sim.Millisecond {
		t.Fatalf("RTO = %v, want 400ms", snd.RTO())
	}
}

func TestRTTSamplingFromTimestampEcho(t *testing.T) {
	s, snd, w, _ := testSender(t, NewNewReno(), nil)
	snd.Start()
	seg := w.take()[0]
	s.Run(50 * sim.Millisecond)
	snd.Recv(ackFor(1000, seg.SendTime))
	if snd.SRTT() != 50*sim.Millisecond {
		t.Fatalf("SRTT = %v, want 50ms", snd.SRTT())
	}
	if snd.LastRTT() != 50*sim.Millisecond {
		t.Fatalf("LastRTT = %v", snd.LastRTT())
	}
	// RTO = srtt + 4*rttvar = 50 + 100 = 150ms < MinRTO 200ms -> clamped.
	if snd.RTO() != 200*sim.Millisecond {
		t.Fatalf("RTO = %v, want clamped 200ms", snd.RTO())
	}
}

func TestMaxBytesFinishes(t *testing.T) {
	_, snd, w, _ := testSender(t, NewNewReno(), func(c *SenderConfig) {
		c.MaxBytes = 2500 // 2.5 segments
		c.InitialCwnd = 10
	})
	done := false
	snd.OnFinish(func() { done = true })
	snd.Start()
	segs := w.take()
	if len(segs) != 3 {
		t.Fatalf("sent %d segments for 2500 bytes, want 3", len(segs))
	}
	if last := segs[2]; last.Size != 500+40 {
		t.Fatalf("final short segment size = %d", last.Size)
	}
	snd.Recv(ackFor(2500, 0))
	if !done || !snd.Finished() {
		t.Fatal("bounded flow did not finish")
	}
	// Further ACKs are ignored.
	snd.Recv(ackFor(2500, 0))
}

func TestDupAckWithoutFlightIgnored(t *testing.T) {
	_, snd, w, _ := testSender(t, NewNewReno(), func(c *SenderConfig) { c.MaxBytes = 1000 })
	snd.Start()
	w.take()
	snd.Recv(ackFor(1000, 0)) // finishes the flow, flight = 0
	snd.Recv(ackFor(1000, 0))
	snd.Recv(ackFor(1000, 0))
	snd.Recv(ackFor(1000, 0))
	if len(w.take()) != 0 {
		t.Fatal("dup ACKs without outstanding data caused transmissions")
	}
}

func TestCwndTraceRecorded(t *testing.T) {
	_, snd, w, fl := testSender(t, NewNewReno(), nil)
	snd.Start()
	ackAll(snd, w, 1000)
	ackAll(snd, w, 1000)
	trace := fl.CwndTrace()
	if len(trace) < 3 {
		t.Fatalf("cwnd trace too short: %d samples", len(trace))
	}
	if trace[len(trace)-1].V != 4 {
		t.Fatalf("final trace sample = %g, want 4", trace[len(trace)-1].V)
	}
}

func TestVariantNames(t *testing.T) {
	tests := []struct {
		v    Variant
		want string
	}{
		{NewTahoe(), "tahoe"},
		{NewReno2(), "reno"},
		{NewNewReno(), "newreno"},
		{NewSACK(), "sack"},
		{NewVegas(), "vegas"},
	}
	for _, tt := range tests {
		if got := tt.v.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}
