package tcp

import (
	"testing"

	"muzha/internal/sim"
)

// cubicRounds drives the variant through ack-clocked rounds: each round
// advances the clock by rtt and delivers one ACK per cwnd segment (the
// ack clock of a fully-utilized window), returning the per-round cwnd
// trajectory.
func cubicRounds(s *sim.Simulator, snd *Sender, v *CUBIC, rtt sim.Time, rounds int) []float64 {
	traj := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		s.Run(s.Now() + rtt)
		for i := 0; i < int(snd.Cwnd()); i++ {
			v.OnNewAck(snd, ackFor(1<<40, -1), int64(snd.MSS()))
		}
		traj = append(traj, snd.Cwnd())
	}
	return traj
}

// TestCUBICConcaveThenConvex pins the RFC 8312 window shape after a
// loss: growth decelerates while climbing back toward W_max (concave
// region), plateaus at the origin, then accelerates past it (convex
// probing region).
func TestCUBICConcaveThenConvex(t *testing.T) {
	v := NewCUBIC()
	s, snd, _, _ := testSender(t, v, func(c *SenderConfig) { c.AdvertisedWindow = 1 << 20 })
	snd.SetCwnd(100)
	snd.SetSsthresh(50) // congestion avoidance

	// Congestion event at w=100: W_max=100, ssthresh=70, then exit
	// recovery at ssthresh.
	v.OnDupAck(snd, ackFor(0, -1), 3)
	if got := v.WMax(); got != 100 {
		t.Fatalf("W_max after first loss = %g, want 100", got)
	}
	v.OnNewAck(snd, ackFor(snd.SndNxt(), -1), int64(snd.MSS()))
	if got := snd.Cwnd(); got != 70 {
		t.Fatalf("post-recovery cwnd = %g, want ssthresh 70", got)
	}

	// K = cbrt((100-70)/0.4) ~ 4.2s; at 100ms rounds the plateau sits
	// near round 42. 80 rounds crosses well into the convex region.
	const rtt = 100 * sim.Millisecond
	traj := cubicRounds(s, snd, v, rtt, 80)

	delta := func(r int) float64 {
		if r == 0 {
			return traj[0] - 70
		}
		return traj[r] - traj[r-1]
	}
	for r := range traj {
		if d := delta(r); d < 0 {
			t.Fatalf("round %d: cwnd shrank by %g without a loss", r, -d)
		}
	}
	// Concave: growth at round 8 dominates growth near the plateau.
	if delta(8) <= 2*delta(34) {
		t.Errorf("concave region not decelerating: delta(8)=%g, delta(34)=%g", delta(8), delta(34))
	}
	// Convex: growth at the end dominates growth just past the plateau.
	if delta(79) <= 2*delta(46) {
		t.Errorf("convex region not accelerating: delta(46)=%g, delta(79)=%g", delta(46), delta(79))
	}
	// The convex region probes beyond the pre-loss operating point.
	if traj[79] <= 100 {
		t.Errorf("cwnd after 80 rounds = %g, never passed W_max 100", traj[79])
	}
}

// TestCUBICFastConvergence pins RFC 8312 4.6: when a flow plateaus
// below its previous W_max, fast convergence remembers less
// (W_max = w*(1+beta)/2) to release bandwidth to newer flows.
func TestCUBICFastConvergence(t *testing.T) {
	v := NewCUBIC()
	_, snd, w, fl := testSender(t, v, func(c *SenderConfig) { c.AdvertisedWindow = 1 << 20 })

	snd.SetCwnd(100)
	snd.SetSsthresh(50)
	v.OnDupAck(snd, ackFor(0, -1), 3)
	if got := v.WMax(); got != 100 {
		t.Fatalf("first loss: W_max = %g, want the full window 100", got)
	}
	if got := snd.Ssthresh(); got != 70 {
		t.Fatalf("first loss: ssthresh = %g, want 100*beta = 70", got)
	}
	if len(w.take()) == 0 {
		t.Fatal("fast retransmit did not resend the hole")
	}
	if fl.FastRecoveries != 1 {
		t.Fatalf("FastRecoveries = %d, want 1", fl.FastRecoveries)
	}
	v.OnNewAck(snd, ackFor(snd.SndNxt(), -1), int64(snd.MSS())) // exit recovery

	// Second loss below the previous W_max: remember only
	// 80*(1+0.7)/2 = 68 instead of 80.
	snd.SetCwnd(80)
	v.OnDupAck(snd, ackFor(0, -1), 3)
	if got := v.WMax(); got != 68 {
		t.Fatalf("fast convergence: W_max = %g, want 68", got)
	}

	// Without fast convergence the same event remembers the full 80.
	plain := &CUBIC{}
	plain.registerLoss(100)
	plain.registerLoss(80)
	if got := plain.WMax(); got != 80 {
		t.Fatalf("without fast convergence: W_max = %g, want 80", got)
	}
}

// TestCUBICTimeoutCollapses pins the RTO reaction: window to one
// segment, ssthresh to beta*cwnd, W_max updated.
func TestCUBICTimeoutCollapses(t *testing.T) {
	v := NewCUBIC()
	_, snd, _, _ := testSender(t, v, nil)
	snd.SetCwnd(40)
	snd.SetSsthresh(20)
	v.OnTimeout(snd)
	if snd.Cwnd() != 1 {
		t.Fatalf("cwnd after RTO = %g, want 1", snd.Cwnd())
	}
	if got := snd.Ssthresh(); got != 28 {
		t.Fatalf("ssthresh after RTO = %g, want 40*beta = 28", got)
	}
	if got := v.WMax(); got != 40 {
		t.Fatalf("W_max after RTO = %g, want 40", got)
	}
}

// TestCUBICSlowStartAndRecoveryBookkeeping drives the full sender path:
// slow start doubles per RTT, and a partial ACK during recovery
// retransmits the next hole without leaving recovery.
func TestCUBICSlowStartAndRecoveryBookkeeping(t *testing.T) {
	v := NewCUBIC()
	s, snd, w, fl := testSender(t, v, nil)
	snd.Start()
	for _, want := range []float64{2, 4, 8} {
		s.Run(s.Now() + 50*sim.Millisecond)
		ackAll(snd, w, 1000)
		if snd.Cwnd() != want {
			t.Fatalf("slow start: cwnd = %g, want %g", snd.Cwnd(), want)
		}
	}
	w.take()
	// Three dup ACKs at the current ack point enter recovery.
	base := snd.SndUna()
	for i := 0; i < 3; i++ {
		snd.Recv(ackFor(base, -1))
	}
	if fl.FastRecoveries != 1 {
		t.Fatalf("FastRecoveries = %d, want 1", fl.FastRecoveries)
	}
	retx := w.take()
	if len(retx) == 0 || retx[0].TCP.Seq != base {
		t.Fatalf("fast retransmit did not resend seq %d", base)
	}
	// A partial ACK (below the recovery point) retransmits the next
	// hole and stays in recovery.
	snd.Recv(ackFor(base+1000, -1))
	part := w.take()
	if len(part) == 0 || part[0].TCP.Seq != base+1000 {
		t.Fatalf("partial ACK did not retransmit the next hole, got %d pkts", len(part))
	}
	if !v.inRecovery {
		t.Fatal("partial ACK ended recovery early")
	}
	// The full ACK ends recovery at ssthresh.
	snd.Recv(ackFor(snd.SndNxt(), -1))
	if v.inRecovery {
		t.Fatal("full ACK did not end recovery")
	}
	if snd.Cwnd() != snd.Ssthresh() {
		t.Fatalf("post-recovery cwnd = %g, want ssthresh %g", snd.Cwnd(), snd.Ssthresh())
	}
}
