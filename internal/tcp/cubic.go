package tcp

import (
	"math"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

// CUBIC constants from RFC 8312: the cubic scaling factor C and the
// multiplicative decrease factor beta_cubic.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// CUBIC implements RFC 8312 congestion control: window growth is a
// cubic function of the time since the last congestion event — concave
// up to the pre-loss window W_max (fast recovery of the old operating
// point), then convex beyond it (probing for new bandwidth) — with
// fast convergence and the TCP-friendly region that keeps it no worse
// than AIMD on short-RTT paths. Loss recovery itself is NewReno-style
// (partial ACKs retransmit the next hole).
type CUBIC struct {
	fastConvergence bool

	wMax   float64  // window just before the last reduction, segments
	epoch  sim.Time // start of the current growth epoch (0 = unset)
	k      float64  // seconds for the cubic to return to its origin
	origin float64  // window at the cubic's inflection point
	wEst   float64  // TCP-friendly (AIMD-equivalent) window estimate

	inRecovery bool
	recover    int64 // highest sequence outstanding when recovery began
}

// NewCUBIC returns the CUBIC variant with fast convergence enabled.
func NewCUBIC() *CUBIC { return &CUBIC{fastConvergence: true} }

// Name implements Variant.
func (*CUBIC) Name() string { return "cubic" }

// OnNewAck implements Variant.
func (c *CUBIC) OnNewAck(s *Sender, ack *packet.Packet, acked int64) {
	if c.inRecovery {
		if ack.TCP.Ack >= c.recover {
			c.inRecovery = false
			s.SetCwnd(s.Ssthresh())
			return
		}
		// Partial ACK: retransmit the next hole, deflate by the amount
		// acknowledged plus one, stay in recovery (as NewReno).
		s.RetransmitSegment(s.SndUna())
		s.SetCwnd(s.Cwnd() - float64(acked)/float64(s.MSS()) + 1)
		return
	}
	if s.Cwnd() < s.Ssthresh() {
		s.SetCwnd(s.Cwnd() + 1)
		return
	}
	c.update(s)
}

// update applies one ACK's worth of cubic window growth.
func (c *CUBIC) update(s *Sender) {
	cwnd := s.Cwnd()
	rtt := s.SRTT()
	if rtt <= 0 {
		rtt = 100 * sim.Millisecond
	}
	if c.epoch == 0 {
		c.epoch = s.Now()
		if cwnd < c.wMax {
			// K = cbrt((W_max - cwnd) / C): time for the cubic to climb
			// back to the pre-loss window.
			c.k = math.Cbrt((c.wMax - cwnd) / cubicC)
			c.origin = c.wMax
		} else {
			c.k = 0
			c.origin = cwnd
		}
		c.wEst = cwnd
	}
	// W_cubic(t + RTT): the window the cubic targets one RTT ahead.
	t := (s.Now() - c.epoch).Seconds() + rtt.Seconds()
	target := c.origin + cubicC*math.Pow(t-c.k, 3)
	// RFC 8312 4.1: clamp the per-RTT target into [cwnd, 1.5*cwnd].
	if target < cwnd {
		target = cwnd
	} else if target > 1.5*cwnd {
		target = 1.5 * cwnd
	}
	cwnd += (target - cwnd) / cwnd

	// TCP-friendly region: track the window standard AIMD would reach
	// (RFC 8312 4.2) and never fall below it.
	c.wEst += 3 * (1 - cubicBeta) / (1 + cubicBeta) / cwnd
	if c.wEst > cwnd {
		cwnd = c.wEst
	}
	s.SetCwnd(cwnd)
}

// registerLoss updates W_max for a congestion event at window w, with
// fast convergence (RFC 8312 4.6): when the window plateaus below the
// previous W_max, release bandwidth early by remembering less.
func (c *CUBIC) registerLoss(w float64) {
	if c.fastConvergence && w < c.wMax {
		c.wMax = w * (1 + cubicBeta) / 2
	} else {
		c.wMax = w
	}
	c.epoch = 0
}

// OnDupAck implements Variant.
func (c *CUBIC) OnDupAck(s *Sender, _ *packet.Packet, n int) {
	if c.inRecovery {
		s.SetCwnd(s.Cwnd() + 1) // window inflation
		return
	}
	if n != 3 {
		return
	}
	if s.Stats() != nil {
		s.Stats().FastRecoveries++
	}
	c.inRecovery = true
	c.recover = s.SndNxt()
	c.registerLoss(s.Cwnd())
	s.SetSsthresh(s.Cwnd() * cubicBeta)
	s.RetransmitSegment(s.SndUna())
	s.SetCwnd(s.Ssthresh() + 3)
}

// OnTimeout implements Variant.
func (c *CUBIC) OnTimeout(s *Sender) {
	c.inRecovery = false
	c.registerLoss(s.Cwnd())
	s.SetSsthresh(s.Cwnd() * cubicBeta)
	s.SetCwnd(1)
}

// WMax returns the remembered pre-loss window, for tests.
func (c *CUBIC) WMax() float64 { return c.wMax }

var _ Variant = (*CUBIC)(nil)
