package tcp

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
	"muzha/internal/stats"
)

// BenchmarkSenderPacing measures the cost of the paced send path: every
// segment is charged to the pacer's virtual clock, deferred releases go
// through the pacing timer, and each ACK runs the delivery-rate sampler
// plus the auto-pacing rate update. The peer is a scripted 10ms-RTT echo
// inside the simulator, so the numbers isolate the sender/pacer/sampler
// machinery from PHY and routing costs. Reports events/s (one event per
// delivered segment) for the CI benchmark gate (cmd/benchgate).
func BenchmarkSenderPacing(b *testing.B) {
	s := sim.New(1)
	fl := stats.NewFlow(1, "cubic", 0)
	var snd *Sender
	delivered := 0
	send := func(p *packet.Packet) {
		end := p.TCP.Seq + 1000
		sent := int64(s.Now())
		s.Schedule(10*sim.Millisecond, func() {
			delivered++
			snd.Recv(ackFor(end, sent))
		})
	}
	cfg := SenderConfig{
		FlowID:           1,
		Dst:              4,
		MSS:              1000,
		AdvertisedWindow: 64,
		MaxBytes:         int64(b.N) * 1000,
		Pace:             true,
		Stats:            fl,
	}
	snd, err := NewSender(s, send, cfg, NewCUBIC())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	snd.Start()
	s.RunAll()
	b.StopTimer()
	if delivered < b.N {
		b.Fatalf("delivered %d segments, want >= %d", delivered, b.N)
	}
	if snd.Pacer().Releases() == 0 {
		b.Fatal("no segment charged the pacer; the benchmark measures nothing")
	}
	b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "events/s")
}
