// Package tcp implements the transport layer of the reproduction: a
// window-based TCP sender core (sequence/ACK bookkeeping, RFC 6298 RTO
// estimation, retransmission, advertised-window flow control) with
// pluggable congestion-control variants — Tahoe, Reno, NewReno, SACK and
// Vegas — plus the receiver sink that generates cumulative ACKs, SACK
// blocks and the TCP Muzha router-feedback echo. The Muzha variant itself
// lives in internal/core.
package tcp

import (
	"fmt"

	"muzha/internal/invariant"
	"muzha/internal/packet"
	"muzha/internal/sim"
	"muzha/internal/stats"
)

// Variant supplies the congestion-control reactions of a TCP flavour.
// Implementations mutate the sender through its exported methods.
type Variant interface {
	// Name identifies the variant ("newreno", "vegas", ...).
	Name() string
	// OnNewAck fires when the cumulative ACK advanced by acked bytes.
	OnNewAck(s *Sender, ack *packet.Packet, acked int64)
	// OnDupAck fires on each duplicate ACK; n is the consecutive count.
	OnDupAck(s *Sender, ack *packet.Packet, n int)
	// OnTimeout fires on RTO expiry, before the head retransmission.
	OnTimeout(s *Sender)
}

// Binder is implemented by variants that attach to the sender's
// scheduling seams at construction time: NewSender calls Bind once,
// after the core is built, so model-based senders (BBR-lite, future
// Muzha hybrids) can install a pacer and a delivery-rate sampler via
// EnablePacing / EnableRateSampling.
type Binder interface {
	Bind(s *Sender)
}

// SenderConfig parameterizes a TCP sender.
type SenderConfig struct {
	FlowID int32
	Dst    packet.NodeID
	// MSS is the payload bytes per segment (paper: 1460).
	MSS int
	// AdvertisedWindow is the receiver's window in segments (the paper's
	// window_ parameter: 4, 8 or 32).
	AdvertisedWindow int
	// InitialCwnd in segments; defaults to 1.
	InitialCwnd float64
	// InitialSsthresh in segments; defaults to AdvertisedWindow.
	InitialSsthresh float64
	// MaxBytes ends the flow after that much payload is acknowledged;
	// 0 means unbounded (FTP-style, as in the paper).
	MaxBytes int64
	// StampAVBW makes the sender originate packets carrying the Muzha
	// AVBW-S option (set by the Muzha variant's constructor).
	StampAVBW bool
	// Pace enables auto-rate pacing: segments leave on a pacing-rate
	// schedule derived from cwnd/SRTT instead of ack-clocked bursts.
	// Off by default — unpaced senders schedule bit-identically to the
	// historical behaviour, keeping golden event-stream hashes stable.
	// Model-based variants (BBR-lite) install their own pacer through
	// Binder regardless of this knob and drive the rate themselves.
	Pace bool
	// Stats, when non-nil, receives per-flow metrics.
	Stats *stats.Flow
	// Invariants, when non-nil, receives run-time Always checks on the
	// sender's window bookkeeping.
	Invariants *invariant.Checker

	InitialRTO sim.Time // default 1s
	MinRTO     sim.Time // default 200ms
	MaxRTO     sim.Time // default 64s
}

func (c *SenderConfig) setDefaults() error {
	if c.MSS <= 0 {
		return fmt.Errorf("tcp: MSS must be positive, got %d", c.MSS)
	}
	if c.AdvertisedWindow < 1 {
		return fmt.Errorf("tcp: advertised window must be >= 1, got %d", c.AdvertisedWindow)
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 1
	}
	if c.InitialSsthresh <= 0 {
		c.InitialSsthresh = float64(c.AdvertisedWindow)
	}
	if c.InitialRTO <= 0 {
		c.InitialRTO = sim.Second
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 64 * sim.Second
	}
	if c.MaxRTO < c.MinRTO {
		return fmt.Errorf("tcp: MaxRTO %v < MinRTO %v", c.MaxRTO, c.MinRTO)
	}
	return nil
}

// Sender is the variant-independent TCP sender core.
type Sender struct {
	sim  *sim.Simulator
	send func(*packet.Packet)
	cfg  SenderConfig
	v    Variant

	cwnd     float64 // congestion window, segments
	ssthresh float64 // slow-start threshold, segments
	sndUna   int64   // lowest unacknowledged byte
	sndNxt   int64   // next byte to send
	dupAcks  int

	srtt, rttvar sim.Time
	hasRTT       bool
	lastRTT      sim.Time
	rto          sim.Time
	rtoTimer     *sim.Timer

	started  bool
	finished bool
	onDone   func()

	// Scheduling seams (nil = historical ack-clocked behaviour).
	pacer    *Pacer
	sampler  *DeliveryRateSampler
	autoPace bool // derive the pacing rate from cwnd/SRTT on each ACK

	// Run-time invariant handles (nil when checking is disabled).
	invUna    *invariant.Assertion
	invWindow *invariant.Assertion
	invCwnd   *invariant.Assertion
	someRTO   *invariant.Assertion
}

// NewSender builds a sender. send is the node's origination function; v
// supplies the congestion-control variant.
func NewSender(s *sim.Simulator, send func(*packet.Packet), cfg SenderConfig, v Variant) (*Sender, error) {
	if send == nil || v == nil {
		return nil, fmt.Errorf("tcp: send function and variant are required")
	}
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	sn := &Sender{
		sim:      s,
		send:     send,
		cfg:      cfg,
		v:        v,
		cwnd:     cfg.InitialCwnd,
		ssthresh: cfg.InitialSsthresh,
		rto:      cfg.InitialRTO,
	}
	sn.rtoTimer = sim.NewTimer(s, sn.onRTO)
	if cfg.Pace {
		sn.EnablePacing()
		sn.autoPace = true
	}
	if b, ok := v.(Binder); ok {
		b.Bind(sn)
	}
	if cfg.Invariants != nil {
		sn.invUna = cfg.Invariants.Always("tcp-snduna-monotone")
		sn.invWindow = cfg.Invariants.Always("tcp-flight-window")
		sn.invCwnd = cfg.Invariants.Always("tcp-cwnd-floor")
		sn.someRTO = cfg.Invariants.Sometimes("tcp-rto-timeout")
	}
	return sn, nil
}

// checkInvariants evaluates the sender's structural properties after an
// input (ACK or timeout) was processed. prevUna is SndUna before it.
func (s *Sender) checkInvariants(prevUna int64) {
	s.invUna.Check(s.sndUna >= prevUna && s.sndUna <= s.sndNxt,
		"flow %d: snduna %d (prev %d, sndnxt %d)", s.cfg.FlowID, s.sndUna, prevUna, s.sndNxt)
	s.invCwnd.Check(s.cwnd >= 1, "flow %d: cwnd %g below one segment", s.cfg.FlowID, s.cwnd)
	s.invWindow.Check(s.FlightBytes() <= int64(s.cfg.AdvertisedWindow)*int64(s.cfg.MSS),
		"flow %d: flight %d exceeds advertised window %d segs",
		s.cfg.FlowID, s.FlightBytes(), s.cfg.AdvertisedWindow)
}

// FlowID implements node.Agent.
func (s *Sender) FlowID() int32 { return s.cfg.FlowID }

// Start begins transmitting. Safe to call once.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	if s.cfg.Stats != nil {
		s.cfg.Stats.Start = s.sim.Now()
		s.cfg.Stats.RecordCwnd(s.sim.Now(), s.cwnd)
	}
	s.TrySend()
}

// OnFinish registers a callback invoked when a bounded flow (MaxBytes)
// has every byte acknowledged.
func (s *Sender) OnFinish(fn func()) { s.onDone = fn }

// Finished reports whether a bounded flow completed.
func (s *Sender) Finished() bool { return s.finished }

// --- accessors for Variant implementations ---

// Cwnd returns the congestion window in segments.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// SetCwnd sets the congestion window (floored at one segment) and
// records the change in the flow trace.
func (s *Sender) SetCwnd(w float64) {
	if w < 1 {
		w = 1
	}
	s.cwnd = w
	if s.cfg.Stats != nil {
		s.cfg.Stats.RecordCwnd(s.sim.Now(), w)
	}
}

// Ssthresh returns the slow-start threshold in segments.
func (s *Sender) Ssthresh() float64 { return s.ssthresh }

// SetSsthresh sets the slow-start threshold (floored at two segments).
func (s *Sender) SetSsthresh(v float64) {
	if v < 2 {
		v = 2
	}
	s.ssthresh = v
}

// SndUna returns the lowest unacknowledged byte.
func (s *Sender) SndUna() int64 { return s.sndUna }

// SndNxt returns the next byte to be sent.
func (s *Sender) SndNxt() int64 { return s.sndNxt }

// FlightBytes returns the bytes in flight.
func (s *Sender) FlightBytes() int64 { return s.sndNxt - s.sndUna }

// FlightSegments returns the flight size in segments.
func (s *Sender) FlightSegments() float64 {
	return float64(s.FlightBytes()) / float64(s.cfg.MSS)
}

// MSS returns the segment payload size.
func (s *Sender) MSS() int { return s.cfg.MSS }

// DupAcks returns the current consecutive duplicate-ACK count.
func (s *Sender) DupAcks() int { return s.dupAcks }

// Now returns the current virtual time.
func (s *Sender) Now() sim.Time { return s.sim.Now() }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() sim.Time { return s.srtt }

// LastRTT returns the most recent RTT sample (0 before the first).
func (s *Sender) LastRTT() sim.Time { return s.lastRTT }

// RTO returns the current retransmission timeout.
func (s *Sender) RTO() sim.Time { return s.rto }

// Stats returns the flow recorder (may be nil).
func (s *Sender) Stats() *stats.Flow { return s.cfg.Stats }

// Config returns the sender configuration.
func (s *Sender) Config() SenderConfig { return s.cfg }

// --- scheduling seams ---

// EnablePacing attaches (or returns the existing) pacing engine. The
// pacer's pump is the sender's own send loop, so a closed gate parks
// TrySend on a sim timer until the next release instant.
func (s *Sender) EnablePacing() *Pacer {
	if s.pacer == nil {
		s.pacer = NewPacer(s.sim, s.TrySend)
	}
	return s.pacer
}

// Pacer returns the attached pacing engine (nil = unpaced).
func (s *Sender) Pacer() *Pacer { return s.pacer }

// EnableRateSampling attaches (or returns the existing) delivery-rate
// sampler, fed from the sender's send and ACK paths.
func (s *Sender) EnableRateSampling() *DeliveryRateSampler {
	if s.sampler == nil {
		s.sampler = NewDeliveryRateSampler()
	}
	return s.sampler
}

// RateSampler returns the attached sampler (nil = none).
func (s *Sender) RateSampler() *DeliveryRateSampler { return s.sampler }

// SetAutoPacing toggles the cwnd/SRTT-derived pacing rate. Model-based
// variants that compute their own rate (BBR-lite) switch it off in Bind
// so the core never overwrites their estimate.
func (s *Sender) SetAutoPacing(on bool) { s.autoPace = on }

// updateAutoPacingRate refreshes the cwnd/SRTT-derived rate after the
// variant adjusted the window. The gain mirrors Linux: 2x in slow start
// (the window doubles per RTT), 1.2x in congestion avoidance.
func (s *Sender) updateAutoPacingRate() {
	if !s.autoPace || s.pacer == nil || s.srtt <= 0 {
		return
	}
	gain := 1.2
	if s.cwnd < s.ssthresh {
		gain = 2.0
	}
	s.pacer.SetRate(gain * s.cwnd * float64(s.cfg.MSS) / s.srtt.Seconds())
}

// --- data path ---

// TrySend transmits as many new full segments as the effective window
// (min of cwnd and the advertised window) allows.
func (s *Sender) TrySend() {
	if !s.started || s.finished {
		return
	}
	wnd := s.cwnd
	if aw := float64(s.cfg.AdvertisedWindow); aw < wnd {
		wnd = aw
	}
	limit := s.sndUna + int64(wnd*float64(s.cfg.MSS))
	for {
		size := s.cfg.MSS
		if s.cfg.MaxBytes > 0 {
			remaining := s.cfg.MaxBytes - s.sndNxt
			if remaining <= 0 {
				// Out of data with window headroom: delivery samples
				// taken from here on under-estimate the path. Only
				// marked while something is outstanding — the phase
				// ends when the flight at mark time is delivered, so
				// a mark with no flight never clears.
				if s.sampler != nil && s.sndNxt < limit && s.FlightBytes() > 0 {
					s.sampler.OnAppLimited(s.sndNxt)
				}
				return
			}
			if int64(size) > remaining {
				size = int(remaining)
			}
		}
		if s.sndNxt+int64(size) > limit {
			return
		}
		if s.pacer != nil {
			if wait := s.pacer.HoldFor(s.sim.Now()); wait > 0 {
				s.pacer.arm(wait)
				return
			}
		}
		s.emit(s.sndNxt, size, false)
		s.sndNxt += int64(size)
	}
}

// RetransmitSegment resends one MSS starting at seq and counts it as a
// retransmission.
func (s *Sender) RetransmitSegment(seq int64) {
	size := s.cfg.MSS
	if s.cfg.MaxBytes > 0 && seq+int64(size) > s.cfg.MaxBytes {
		size = int(s.cfg.MaxBytes - seq)
		if size <= 0 {
			return
		}
	}
	if s.cfg.Stats != nil {
		s.cfg.Stats.Retransmissions++
	}
	s.emit(seq, size, true)
}

func (s *Sender) emit(seq int64, size int, retx bool) {
	if s.sampler != nil && !retx {
		s.sampler.OnSend(seq+int64(size), s.sim.Now(), s.FlightBytes() == 0)
	}
	pkt := &packet.Packet{
		Kind: packet.KindData,
		Dst:  s.cfg.Dst,
		Size: size + packet.IPHeaderSize + packet.TCPHeaderSize,
		TTL:  64,
		TCP: &packet.TCPHeader{
			FlowID: s.cfg.FlowID,
			Seq:    seq,
		},
		SendTime: int64(s.sim.Now()),
	}
	if s.cfg.StampAVBW {
		pkt.AVBW = packet.AVBWMax
	}
	if s.cfg.Stats != nil {
		s.cfg.Stats.SegmentsSent++
	}
	s.send(pkt)
	if s.pacer != nil {
		s.pacer.OnSend(s.sim.Now(), pkt.Size)
	}
	if !s.rtoTimer.Pending() {
		s.rtoTimer.Reset(s.rto)
	}
}

// Recv implements node.Agent: processes an arriving ACK.
func (s *Sender) Recv(pkt *packet.Packet) {
	if pkt.TCP == nil || !pkt.TCP.IsAck || s.finished {
		return
	}
	ack := pkt.TCP.Ack
	if ack > s.sndNxt && s.pacer != nil {
		// An ACK for bytes never sent (a sink whose payload accounting
		// includes routing headers can over-ack; see the DSR chaos
		// scenarios). The historical unpaced path tolerates it — the
		// ack-clocked TrySend immediately resynchronizes SndNxt past
		// SndUna, behaviour pinned by the golden fixtures — but a paced
		// sender defers that catch-up on the gate, which would strand
		// SndUna beyond SndNxt, so it drops the invalid ACK instead.
		return
	}
	prevUna := s.sndUna
	defer func() { s.checkInvariants(prevUna) }()
	switch {
	case ack > s.sndUna:
		acked := ack - s.sndUna
		s.sndUna = ack
		s.dupAcks = 0
		if pkt.TCP.TSEcho > 0 {
			// TSEcho carries the data segment's send time plus one
			// (zero meaning "no echo"); see Sink.sendAck.
			s.sampleRTT(s.sim.Now() - sim.Time(pkt.TCP.TSEcho-1))
		}
		if s.cfg.Stats != nil {
			s.cfg.Stats.AddAcked(s.sim.Now(), acked)
		}
		if s.sampler != nil {
			s.sampler.OnAck(ack, s.sim.Now(), acked)
		}
		s.v.OnNewAck(s, pkt, acked)
		s.updateAutoPacingRate()
		if s.sndUna >= s.sndNxt {
			s.rtoTimer.Stop()
		} else {
			s.rtoTimer.Reset(s.rto)
		}
		s.TrySend()
		if s.cfg.MaxBytes > 0 && s.sndUna >= s.cfg.MaxBytes {
			s.finished = true
			s.rtoTimer.Stop()
			if s.pacer != nil {
				s.pacer.Stop()
			}
			if s.onDone != nil {
				s.onDone()
			}
		}
	case ack == s.sndUna && s.FlightBytes() > 0:
		s.dupAcks++
		s.v.OnDupAck(s, pkt, s.dupAcks)
		s.TrySend()
	}
}

func (s *Sender) onRTO() {
	if s.FlightBytes() <= 0 || s.finished {
		return
	}
	if s.cfg.Stats != nil {
		s.cfg.Stats.Timeouts++
	}
	s.someRTO.Reach()
	s.dupAcks = 0
	s.v.OnTimeout(s)
	s.updateAutoPacingRate()
	// Karn backoff; the backed-off RTO persists until the next sample.
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.RetransmitSegment(s.sndUna)
	s.rtoTimer.Reset(s.rto)
	s.checkInvariants(s.sndUna)
}

// sampleRTT folds one measurement into the RFC 6298 estimator.
func (s *Sender) sampleRTT(r sim.Time) {
	if r <= 0 {
		return
	}
	s.lastRTT = r
	if !s.hasRTT {
		s.hasRTT = true
		s.srtt = r
		s.rttvar = r / 2
	} else {
		diff := s.srtt - r
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + r) / 8
	}
	rto := s.srtt + 4*s.rttvar
	if rto < s.cfg.MinRTO {
		rto = s.cfg.MinRTO
	}
	if rto > s.cfg.MaxRTO {
		rto = s.cfg.MaxRTO
	}
	s.rto = rto
}
