package core

import (
	"muzha/internal/packet"
	"muzha/internal/sim"
	"muzha/internal/tcp"
)

// Muzha is the TCP Muzha sender-side congestion control (Chapter 4,
// Table 4.1). Unlike the classical variants it never probes with slow
// start: the session starts directly in congestion avoidance (CA) and,
// once per RTT, applies the multi-level rate adjustment recommended by
// the routers along the path (the MRAI echoed in ACKs, acted on per
// Table 5.2). Loss handling distinguishes congestion from random loss via
// router congestion marks:
//
//   - three duplicate ACKs carrying a congestion mark: congestion —
//     halve CWND and enter FF (fast retransmit & recovery);
//   - three unmarked duplicate ACKs: random loss — retransmit without
//     touching CWND;
//   - retransmission timeout: CWND = 1, remain in CA.
//
// Deviation from the thesis text: the thesis says "three marked duplicate
// ACKs" without defining whether all three must be marked; we classify
// the loss as congestion-induced if any of the three is marked, which is
// robust to marking jitter at the onset of congestion.
type Muzha struct {
	// MarkedMeansCongestion enables the Section 4.7 random-loss
	// discrimination: halve only when the dup ACKs carry a router
	// congestion mark. When disabled (ablation), every dup-ACK loss is
	// treated as congestion, like classical TCP.
	MarkedMeansCongestion bool
	// MinOperatingWindow is the window (segments) below which the sender
	// probes +1 per RTT even without a router acceleration grant. Router
	// recommendations reflect total load, so a flow sharing a bottleneck
	// with a loss-probing competitor would otherwise be pinned at one
	// segment — where every loss is a full RTO stall — by congestion the
	// competitor causes. Below this floor dup-ACK recovery barely works
	// anyway, so the minimal probe restores liveness without overriding
	// the routers in the operating range.
	MinOperatingWindow float64

	ff         bool    // in FF (fast retransmit & recovery) phase
	recover    int64   // recovery point: SndNxt when FF was entered
	exitCwnd   float64 // window to restore when FF completes
	minMRAI    int     // minimum MRAI echoed since the last adjustment
	markedSeen bool    // any marked dup ACK in the current dup-ACK run
	lastAdjust sim.Time
}

// NewMuzha returns the Muzha congestion-control variant.
func NewMuzha() *Muzha {
	return &Muzha{MarkedMeansCongestion: true, MinOperatingWindow: 4}
}

// NewMuzhaSender wires a complete TCP Muzha sender: the Muzha variant
// plus AVBW-S stamping on every outgoing segment.
func NewMuzhaSender(s *sim.Simulator, send func(*packet.Packet), cfg tcp.SenderConfig) (*tcp.Sender, error) {
	cfg.StampAVBW = true
	return tcp.NewSender(s, send, cfg, NewMuzha())
}

// Name implements tcp.Variant.
func (*Muzha) Name() string { return "muzha" }

// OnNewAck implements tcp.Variant: CA-phase window adjustment driven by
// router recommendations, once per RTT.
func (m *Muzha) OnNewAck(s *tcp.Sender, ack *packet.Packet, _ int64) {
	m.markedSeen = false
	m.noteMRAI(ack)

	if m.ff {
		if ack.TCP.Ack >= m.recover {
			// Full acknowledgement: FF complete. Deflate the inflated
			// window back to the value decided at entry (halved for
			// congestion loss, unchanged for random loss).
			m.ff = false
			s.SetCwnd(m.exitCwnd)
		} else {
			// Partial acknowledgement: the next hole starts at the new
			// SndUna. Retransmit it and stay in FF (NewReno-style loss
			// recovery, inherited per Section 4.8).
			s.RetransmitSegment(s.SndUna())
		}
		return
	}

	rtt := s.SRTT()
	if rtt <= 0 {
		rtt = 10 * sim.Millisecond
	}
	if s.Now()-m.lastAdjust < rtt {
		return
	}
	m.lastAdjust = s.Now()
	before := s.Cwnd()
	if m.minMRAI > 0 {
		next := ApplyDRAI(before, m.minMRAI)
		if m.minMRAI <= DRAIModerateDecel && next < m.MinOperatingWindow && before >= next {
			// Deceleration recommendations stop at the minimum
			// operating window; only losses and timeouts go below it.
			next = m.MinOperatingWindow
			if before < next {
				next = before
			}
		}
		s.SetCwnd(next)
		m.minMRAI = 0
	}
	if s.Cwnd() <= before && before < m.MinOperatingWindow {
		// No acceleration granted while below the minimum operating
		// window: probe up to the floor at slow-start speed to stay
		// live (see MinOperatingWindow).
		next := before * 2
		if next > m.MinOperatingWindow {
			next = m.MinOperatingWindow
		}
		s.SetCwnd(next)
	}
}

// OnDupAck implements tcp.Variant: the marked/unmarked dup-ACK
// discrimination of Section 4.7.
func (m *Muzha) OnDupAck(s *tcp.Sender, ack *packet.Packet, n int) {
	m.noteMRAI(ack)
	if ack.TCP.Echo.Marked {
		m.markedSeen = true
	}
	if m.ff {
		// Window inflation per extra dup ACK keeps the ACK clock alive
		// during FF (inherited from NewReno, Section 4.8); the window
		// deflates to exitCwnd when FF completes.
		s.SetCwnd(s.Cwnd() + 1)
		return
	}
	if n != 3 {
		return
	}
	if s.Stats() != nil {
		s.Stats().FastRecoveries++
	}
	m.ff = true
	m.recover = s.SndNxt()
	s.RetransmitSegment(s.SndUna())
	m.exitCwnd = s.Cwnd()
	if !m.MarkedMeansCongestion || m.markedSeen {
		// Congestion loss: fast respond and halve (Table 4.1 row 2).
		// Without discrimination every loss lands here.
		m.exitCwnd = s.Cwnd() / 2
		if m.exitCwnd < 1 {
			m.exitCwnd = 1
		}
	}
	// Random loss: retransmit only, window untouched (Table 4.1 row 3).
	// Either way, during FF the operative window is exitCwnd plus the
	// three dup ACKs already seen.
	s.SetCwnd(m.exitCwnd + 3)
	m.markedSeen = false
}

// OnTimeout implements tcp.Variant: CWND collapses to one segment and
// the sender stays in (re-enters) CA — Muzha has no slow-start phase
// (Table 4.1 row 4).
func (m *Muzha) OnTimeout(s *tcp.Sender) {
	m.ff = false
	m.minMRAI = 0
	s.SetCwnd(1)
}

// noteMRAI folds an ACK's echoed path recommendation into the running
// per-RTT minimum (each echo is itself the minimum along the forward
// path, per the AVBW-S min-stamping).
func (m *Muzha) noteMRAI(ack *packet.Packet) {
	if mrai := ack.TCP.Echo.MRAI; mrai > 0 {
		if m.minMRAI == 0 || mrai < m.minMRAI {
			m.minMRAI = mrai
		}
	}
}

var _ tcp.Variant = (*Muzha)(nil)
