package core

import (
	"muzha/internal/packet"
	"muzha/internal/sim"
	"muzha/internal/tcp"
)

// DRAIClamped composes router assistance onto an end-to-end congestion
// controller: the wrapped variant keeps full control of growth, loss
// response and (for model-based senders) pacing, while the routers'
// echoed path recommendation acts as a deceleration-only ceiling applied
// once per RTT. This is the "Muzha hybrid" seam the modern comparison
// grid exercises — it answers whether DRAI still has something to offer
// when the end-to-end side is CUBIC or BBR rather than NewReno: routers
// can slow a modern sender down before queues build, but never accelerate
// it beyond what its own model would do, so the wrapper cannot be blamed
// for any speed-up the inner variant did not earn.
type DRAIClamped struct {
	Inner tcp.Variant

	// MinWindow floors deceleration clamps (segments). Router
	// recommendations reflect total load, so without a floor a flow
	// could be pinned at one segment by congestion its competitors
	// cause (same rationale as Muzha.MinOperatingWindow).
	MinWindow float64

	minMRAI    int // minimum MRAI echoed since the last clamp
	lastClamp  sim.Time
	clampCount int64
}

// NewDRAIClamped wraps an end-to-end variant with the router-assist
// deceleration clamp.
func NewDRAIClamped(inner tcp.Variant) *DRAIClamped {
	return &DRAIClamped{Inner: inner, MinWindow: 2}
}

// Name implements tcp.Variant. The flow keeps the inner variant's name:
// the grid's router-assist column, not the label, carries the axis.
func (c *DRAIClamped) Name() string { return c.Inner.Name() }

// Clamps reports how many times the router recommendation actually
// lowered the window (observability for tests and experiments).
func (c *DRAIClamped) Clamps() int64 { return c.clampCount }

// Bind implements tcp.Binder by forwarding to the inner variant, so a
// wrapped BBR-lite still attaches its pacer and rate sampler.
func (c *DRAIClamped) Bind(s *tcp.Sender) {
	if b, ok := c.Inner.(tcp.Binder); ok {
		b.Bind(s)
	}
}

// OnNewAck implements tcp.Variant: fold the ACK's echoed MRAI into the
// running minimum, let the inner variant react, then — at most once per
// RTT — apply a deceleration recommendation as a ceiling on whatever
// window the inner variant chose.
func (c *DRAIClamped) OnNewAck(s *tcp.Sender, ack *packet.Packet, acked int64) {
	if mrai := ack.TCP.Echo.MRAI; mrai > 0 && (c.minMRAI == 0 || mrai < c.minMRAI) {
		c.minMRAI = mrai
	}
	c.Inner.OnNewAck(s, ack, acked)

	rtt := s.SRTT()
	if rtt <= 0 {
		rtt = 10 * sim.Millisecond
	}
	if s.Now()-c.lastClamp < rtt {
		return
	}
	c.lastClamp = s.Now()
	mrai := c.minMRAI
	c.minMRAI = 0
	if mrai == 0 || mrai >= DRAIStabilize {
		// No recommendation, or hold/accelerate: end-to-end control
		// stands. Acceleration grants are deliberately ignored.
		return
	}
	before := s.Cwnd()
	next := ApplyDRAI(before, mrai)
	if next < c.MinWindow {
		next = c.MinWindow
	}
	if next < before {
		s.SetCwnd(next)
		c.clampCount++
	}
}

// OnDupAck implements tcp.Variant by delegating loss response entirely
// to the inner variant.
func (c *DRAIClamped) OnDupAck(s *tcp.Sender, ack *packet.Packet, dups int) {
	c.Inner.OnDupAck(s, ack, dups)
}

// OnTimeout implements tcp.Variant: the inner variant's collapse stands,
// and the stale recommendation from before the stall is discarded.
func (c *DRAIClamped) OnTimeout(s *tcp.Sender) {
	c.minMRAI = 0
	c.Inner.OnTimeout(s)
}
