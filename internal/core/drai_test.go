package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestApplyDRAIMatchesTable52(t *testing.T) {
	tests := []struct {
		name  string
		cwnd  float64
		level int
		want  float64
	}{
		{"aggressive accel doubles", 4, DRAIAggressiveAccel, 8},
		{"moderate accel +1", 4, DRAIModerateAccel, 5},
		{"stabilize holds", 4, DRAIStabilize, 4},
		{"moderate decel -1", 4, DRAIModerateDecel, 3},
		{"aggressive decel halves", 4, DRAIAggressiveDecel, 2},
		{"floor at one segment", 1, DRAIAggressiveDecel, 1},
		{"decrement floors at one", 1.5, DRAIModerateDecel, 1},
		{"unknown level holds", 4, 0, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ApplyDRAI(tt.cwnd, tt.level); got != tt.want {
				t.Fatalf("ApplyDRAI(%g, %d) = %g, want %g", tt.cwnd, tt.level, got, tt.want)
			}
		})
	}
}

func TestDefaultPolicyLevels(t *testing.T) {
	p := DefaultDRAIPolicy()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Default thresholds 0.01/0.02/0.04/0.16 of a 50-packet queue break
	// at smoothed depths of 0.5, 1, 2 and 8 packets.
	tests := []struct {
		ewma float64 // smoothed queue length in packets
		want int
	}{
		{0, DRAIAggressiveAccel},
		{0.4, DRAIAggressiveAccel},
		{0.5, DRAIModerateAccel},
		{0.9, DRAIModerateAccel},
		{1.0, DRAIStabilize},
		{1.9, DRAIStabilize},
		{2.0, DRAIModerateDecel},
		{7.9, DRAIModerateDecel},
		{8.0, DRAIAggressiveDecel},
		{50, DRAIAggressiveDecel},
	}
	for _, tt := range tests {
		if got := p.Quantize(tt.ewma / 50); got != tt.want {
			t.Errorf("Quantize(%g/50) = %d, want %d", tt.ewma, got, tt.want)
		}
	}
	// The integer wrapper agrees with the fractional quantizer.
	if p.DRAI(2, 50) != p.Quantize(2.0/50) {
		t.Error("DRAI and Quantize disagree")
	}
	if p.DRAI(0, 0) != DRAIStabilize {
		t.Error("zero-capacity queue should stabilize")
	}
}

func TestMarkingFollowsDeceleration(t *testing.T) {
	p := DefaultDRAIPolicy()
	if p.ShouldMark(0.5/50, 0, 0) {
		t.Fatal("marked at light load")
	}
	if p.ShouldMark(1.5/50, 0, 0) {
		t.Fatal("marked at stabilize level")
	}
	if !p.ShouldMark(2.5/50, 0, 0) {
		t.Fatal("not marked at moderate deceleration")
	}
	if !p.ShouldMark(1.0, 0, 0) {
		t.Fatal("not marked at full queue")
	}
	// The channel-aware variant marks too: a pathologically saturated
	// medium is congestion even with an empty queue.
	ca := ChannelAwareDRAIPolicy()
	if !ca.ShouldMark(0, 0.985, 0) {
		t.Fatal("not marked on saturated channel")
	}
	if ca.ShouldMark(0, 0.90, 0) {
		t.Fatal("marked at normal saturation")
	}
	// The default policy ignores the channel entirely.
	if p.ShouldMark(0, 0.999, 0) {
		t.Fatal("default policy marked on channel signal")
	}
}

func TestChannelQuantizer(t *testing.T) {
	p := ChannelAwareDRAIPolicy()
	tests := []struct {
		util float64
		want int
	}{
		{0.0, DRAIAggressiveAccel},
		{0.59, DRAIAggressiveAccel},
		{0.60, DRAIModerateAccel},
		{0.84, DRAIModerateAccel},
		{0.85, DRAIStabilize},
		{0.97, DRAIStabilize},
		{0.98, DRAIModerateDecel},
		{0.989, DRAIModerateDecel},
		{0.99, DRAIAggressiveDecel},
		{1.0, DRAIAggressiveDecel},
	}
	for _, tt := range tests {
		if got := p.DRAIChannel(tt.util); got != tt.want {
			t.Errorf("DRAIChannel(%g) = %d, want %d", tt.util, got, tt.want)
		}
	}
	// Combined takes the stricter of the two inputs.
	if got := p.Combined(0, 0.995, 0); got != DRAIAggressiveDecel {
		t.Errorf("Combined(empty queue, saturated channel) = %d", got)
	}
	if got := p.Combined(1.0, 0, 0); got != DRAIAggressiveDecel {
		t.Errorf("Combined(full queue, idle channel) = %d", got)
	}
	if got := p.Combined(0, 0, 0); got != DRAIAggressiveAccel {
		t.Errorf("Combined(idle) = %d", got)
	}
	// Disabled channel input is maximally permissive.
	q := DRAIPolicy{Thresholds: []float64{0.5}, Levels: []int{5, 1}}
	if got := q.DRAIChannel(1.0); got != 5 {
		t.Errorf("disabled channel quantizer = %d, want 5", got)
	}
}

func TestDelayQuantizer(t *testing.T) {
	p := DelayAwareDRAIPolicy()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		delay float64
		want  int
	}{
		{0.000, DRAIAggressiveAccel},
		{0.004, DRAIAggressiveAccel},
		{0.005, DRAIModerateAccel},
		{0.011, DRAIModerateAccel},
		{0.012, DRAIStabilize},
		{0.029, DRAIStabilize},
		{0.030, DRAIModerateDecel},
		{0.099, DRAIModerateDecel},
		{0.100, DRAIAggressiveDecel},
		{1.0, DRAIAggressiveDecel},
	}
	for _, tt := range tests {
		if got := p.DRAIDelay(tt.delay); got != tt.want {
			t.Errorf("DRAIDelay(%g) = %d, want %d", tt.delay, got, tt.want)
		}
	}
	// Combined takes the strictest of all three inputs.
	if got := p.Combined(0, 0, 0.5); got != DRAIAggressiveDecel {
		t.Errorf("Combined with heavy delay = %d", got)
	}
	// Default policy ignores delay.
	d := DefaultDRAIPolicy()
	if got := d.DRAIDelay(10); got != DRAIAggressiveAccel {
		t.Errorf("default policy delay quantizer = %d", got)
	}
}

func TestDelayThresholdValidation(t *testing.T) {
	p := DelayAwareDRAIPolicy()
	p.DelayThresholds = []float64{0.1} // wrong length
	if err := p.Validate(); err == nil {
		t.Fatal("mismatched delay threshold length accepted")
	}
	p = DelayAwareDRAIPolicy()
	p.DelayThresholds = []float64{0.1, 0.05, 0.2, 0.3} // not ascending
	if err := p.Validate(); err == nil {
		t.Fatal("non-ascending delay thresholds accepted")
	}
}

func TestChannelThresholdValidation(t *testing.T) {
	p := ChannelAwareDRAIPolicy()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.ChannelThresholds = []float64{0.5} // wrong length
	if err := p.Validate(); err == nil {
		t.Fatal("mismatched channel threshold length accepted")
	}
	p = ChannelAwareDRAIPolicy()
	p.ChannelThresholds = []float64{0.5, 0.4, 0.6, 0.7} // not ascending
	if err := p.Validate(); err == nil {
		t.Fatal("non-ascending channel thresholds accepted")
	}
}

func TestBinaryPolicy(t *testing.T) {
	p := BinaryDRAIPolicy(0.5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.DRAI(10, 50); got != DRAIAggressiveAccel {
		t.Fatalf("below threshold: %d", got)
	}
	if got := p.DRAI(30, 50); got != DRAIAggressiveDecel {
		t.Fatalf("above threshold: %d", got)
	}
}

func TestThreeLevelPolicy(t *testing.T) {
	p := ThreeLevelDRAIPolicy()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.DRAI(5, 50); got != DRAIModerateAccel {
		t.Fatalf("light load: %d", got)
	}
	if got := p.DRAI(25, 50); got != DRAIStabilize {
		t.Fatalf("medium load: %d", got)
	}
	if got := p.DRAI(45, 50); got != DRAIModerateDecel {
		t.Fatalf("heavy load: %d", got)
	}
}

func TestPolicyValidation(t *testing.T) {
	bad := []DRAIPolicy{
		{Thresholds: []float64{0.5}, Levels: []int{5}},            // length mismatch
		{Thresholds: []float64{0.5, 0.3}, Levels: []int{5, 3, 1}}, // not ascending
		{Thresholds: []float64{0.5, 1.5}, Levels: []int{5, 3, 1}}, // > 1
		{Thresholds: []float64{0.5}, Levels: []int{5, 9}},         // level out of range
		{Thresholds: []float64{0.5}, Levels: []int{3, 3}},         // not descending
		{Thresholds: []float64{0.5}, Levels: []int{3, 5}},         // ascending levels
		{Thresholds: []float64{0.5}, Levels: []int{5, 1}, MarkLevel: 9},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted: %+v", i, p)
		}
	}
}

func TestZeroCapacityQueueStabilizes(t *testing.T) {
	p := DefaultDRAIPolicy()
	if got := p.DRAI(0, 0); got != DRAIStabilize {
		t.Fatalf("DRAI with zero capacity = %d, want stabilize", got)
	}
}

// Property: DRAI is monotonically non-increasing in queue occupancy.
func TestQuickDRAIMonotone(t *testing.T) {
	p := DefaultDRAIPolicy()
	f := func(a, b uint8) bool {
		qa, qb := int(a)%51, int(b)%51
		if qa > qb {
			qa, qb = qb, qa
		}
		return p.DRAI(qa, 50) >= p.DRAI(qb, 50)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ApplyDRAI never returns below one segment, and acceleration
// levels never shrink the window.
func TestQuickApplyDRAIInvariants(t *testing.T) {
	f := func(rawCwnd uint16, rawLevel uint8) bool {
		cwnd := 1 + float64(rawCwnd)/100
		level := int(rawLevel)%5 + 1
		got := ApplyDRAI(cwnd, level)
		if got < 1 {
			return false
		}
		if level >= DRAIStabilize && got < cwnd-1e-9 {
			return false
		}
		if level < DRAIStabilize && got > cwnd+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDRAIHalvesExactly(t *testing.T) {
	if got := ApplyDRAI(17, DRAIAggressiveDecel); math.Abs(got-8.5) > 1e-12 {
		t.Fatalf("halving 17 = %g", got)
	}
}
