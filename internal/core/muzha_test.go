package core

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
	"muzha/internal/stats"
	"muzha/internal/tcp"
)

type wire struct{ sent []*packet.Packet }

func (w *wire) send(p *packet.Packet) { w.sent = append(w.sent, p) }
func (w *wire) take() []*packet.Packet {
	out := w.sent
	w.sent = nil
	return out
}

func muzhaSender(t *testing.T, mutate func(*tcp.SenderConfig)) (*sim.Simulator, *tcp.Sender, *Muzha, *wire, *stats.Flow) {
	t.Helper()
	s := sim.New(1)
	w := &wire{}
	fl := stats.NewFlow(1, "muzha", 0)
	cfg := tcp.SenderConfig{
		FlowID:           1,
		Dst:              4,
		MSS:              1000,
		AdvertisedWindow: 32,
		StampAVBW:        true,
		Stats:            fl,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	v := NewMuzha()
	snd, err := tcp.NewSender(s, w.send, cfg, v)
	if err != nil {
		t.Fatal(err)
	}
	return s, snd, v, w, fl
}

// muzhaAck builds an ACK carrying router feedback.
func muzhaAck(ackNo int64, mrai int, marked bool, sendTime int64) *packet.Packet {
	tsEcho := int64(0)
	if sendTime >= 0 {
		tsEcho = sendTime + 1
	}
	return &packet.Packet{
		Kind: packet.KindData,
		TCP: &packet.TCPHeader{
			FlowID: 1, Ack: ackNo, IsAck: true, TSEcho: tsEcho,
			Echo: packet.MuzhaEcho{MRAI: mrai, Marked: marked},
		},
	}
}

func TestMuzhaStampsAVBWOnSegments(t *testing.T) {
	_, snd, _, w, _ := muzhaSender(t, nil)
	snd.Start()
	segs := w.take()
	if len(segs) != 1 || segs[0].AVBW != packet.AVBWMax {
		t.Fatalf("segments = %+v, want one with AVBW=%d", segs, packet.AVBWMax)
	}
}

func TestNewMuzhaSenderHelperSetsStamping(t *testing.T) {
	s := sim.New(1)
	w := &wire{}
	snd, err := NewMuzhaSender(s, w.send, tcp.SenderConfig{
		FlowID: 1, Dst: 4, MSS: 1000, AdvertisedWindow: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	snd.Start()
	if len(w.sent) != 1 || w.sent[0].AVBW != packet.AVBWMax {
		t.Fatal("helper did not enable AVBW stamping")
	}
}

// ackRTT advances virtual time and acknowledges one segment with the
// given router feedback, so SRTT and the per-RTT adjustment clock move.
func ackRTT(s *sim.Simulator, snd *tcp.Sender, w *wire, mrai int, rtt sim.Time) {
	segs := w.take()
	s.Run(s.Now() + rtt)
	for _, p := range segs {
		snd.Recv(muzhaAck(p.TCP.Seq+int64(snd.MSS()), mrai, false, p.SendTime))
	}
}

func TestMuzhaFollowsDRAIRecommendations(t *testing.T) {
	s, snd, v, w, _ := muzhaSender(t, nil)
	v.MinOperatingWindow = 1 // exercise Table 5.2 verbatim, no floor
	snd.Start()

	// Routers recommend aggressive acceleration: window doubles per RTT.
	ackRTT(s, snd, w, DRAIAggressiveAccel, 40*sim.Millisecond)
	if snd.Cwnd() != 2 {
		t.Fatalf("after DRAI 5: cwnd = %g, want 2", snd.Cwnd())
	}
	ackRTT(s, snd, w, DRAIAggressiveAccel, 40*sim.Millisecond)
	if snd.Cwnd() != 4 {
		t.Fatalf("after DRAI 5 again: cwnd = %g, want 4", snd.Cwnd())
	}
	ackRTT(s, snd, w, DRAIModerateAccel, 40*sim.Millisecond)
	if snd.Cwnd() != 5 {
		t.Fatalf("after DRAI 4: cwnd = %g, want 5", snd.Cwnd())
	}
	ackRTT(s, snd, w, DRAIStabilize, 40*sim.Millisecond)
	if snd.Cwnd() != 5 {
		t.Fatalf("after DRAI 3: cwnd = %g, want 5", snd.Cwnd())
	}
	ackRTT(s, snd, w, DRAIModerateDecel, 40*sim.Millisecond)
	if snd.Cwnd() != 4 {
		t.Fatalf("after DRAI 2: cwnd = %g, want 4", snd.Cwnd())
	}
	ackRTT(s, snd, w, DRAIAggressiveDecel, 40*sim.Millisecond)
	if snd.Cwnd() != 2 {
		t.Fatalf("after DRAI 1: cwnd = %g, want 2", snd.Cwnd())
	}
}

func TestMuzhaAdjustsAtMostOncePerRTT(t *testing.T) {
	s, snd, _, w, _ := muzhaSender(t, func(c *tcp.SenderConfig) { c.InitialCwnd = 4 })
	snd.Start()
	segs := w.take()

	// Establish SRTT with the first segment's ACK.
	s.Run(40 * sim.Millisecond)
	snd.Recv(muzhaAck(1000, DRAIAggressiveAccel, false, segs[0].SendTime))
	after := snd.Cwnd() // one adjustment applied

	// Remaining ACKs arrive within the same RTT: no further doubling.
	for _, p := range segs[1:] {
		snd.Recv(muzhaAck(p.TCP.Seq+1000, DRAIAggressiveAccel, false, p.SendTime))
	}
	if snd.Cwnd() != after {
		t.Fatalf("window adjusted more than once per RTT: %g -> %g", after, snd.Cwnd())
	}
}

func TestMuzhaUsesMinimumMRAIInWindow(t *testing.T) {
	s, snd, _, w, _ := muzhaSender(t, func(c *tcp.SenderConfig) { c.InitialCwnd = 4 })
	snd.Start()
	segs := w.take()

	// First RTT: establishes SRTT ~40ms and applies first adjustment.
	s.Run(40 * sim.Millisecond)
	snd.Recv(muzhaAck(1000, DRAIAggressiveAccel, false, segs[0].SendTime))

	// Mixed recommendations arrive within the next RTT; the minimum (2)
	// must win at the next adjustment boundary.
	snd.Recv(muzhaAck(2000, DRAIAggressiveAccel, false, segs[1].SendTime))
	snd.Recv(muzhaAck(3000, DRAIModerateDecel, false, segs[2].SendTime))
	before := snd.Cwnd()
	s.Run(s.Now() + 50*sim.Millisecond)
	snd.Recv(muzhaAck(4000, DRAIAggressiveAccel, false, segs[3].SendTime))
	if snd.Cwnd() != before-1 {
		t.Fatalf("min MRAI not applied: %g -> %g, want %g", before, snd.Cwnd(), before-1)
	}
}

func TestMuzhaMarkedDupAcksHalveWindow(t *testing.T) {
	_, snd, _, w, fl := muzhaSender(t, func(c *tcp.SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.take()

	snd.Recv(muzhaAck(0, 0, true, -1))
	snd.Recv(muzhaAck(0, 0, false, -1))
	snd.Recv(muzhaAck(0, 0, false, -1))

	// During FF the operative window is the halved target (4) inflated
	// by the three dup ACKs.
	if snd.Cwnd() != 7 {
		t.Fatalf("marked loss: cwnd = %g, want 7 (4+3)", snd.Cwnd())
	}
	out := w.take()
	if len(out) != 1 || out[0].TCP.Seq != 0 {
		t.Fatalf("no fast retransmit: %v", out)
	}
	if fl.FastRecoveries != 1 || fl.Retransmissions != 1 {
		t.Fatalf("stats = %+v", fl)
	}
	// Completing recovery deflates to the halved window.
	snd.Recv(muzhaAck(8000, 0, false, -1))
	if snd.Cwnd() != 4 {
		t.Fatalf("after FF exit: cwnd = %g, want 4", snd.Cwnd())
	}
}

func TestMuzhaUnmarkedDupAcksKeepWindow(t *testing.T) {
	_, snd, _, w, fl := muzhaSender(t, func(c *tcp.SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.take()

	for i := 0; i < 3; i++ {
		snd.Recv(muzhaAck(0, 0, false, -1))
	}
	// Unmarked loss: the FF exit target stays at the full window (8);
	// during FF the window is inflated by the dup ACKs (8+3).
	if snd.Cwnd() != 11 {
		t.Fatalf("random loss entry window: cwnd = %g, want 11", snd.Cwnd())
	}
	out := w.take()
	if len(out) == 0 || out[0].TCP.Seq != 0 {
		t.Fatalf("random loss not retransmitted: %v", out)
	}
	if fl.Retransmissions != 1 {
		t.Fatalf("retransmissions = %d", fl.Retransmissions)
	}
	// Recovery completes with the window untouched.
	snd.Recv(muzhaAck(8000, 0, false, -1))
	if snd.Cwnd() != 8 {
		t.Fatalf("random loss changed window: cwnd = %g, want 8", snd.Cwnd())
	}
}

func TestMuzhaDiscriminationDisabledByAblation(t *testing.T) {
	s := sim.New(1)
	w := &wire{}
	v := NewMuzha()
	v.MarkedMeansCongestion = false
	snd, err := tcp.NewSender(s, w.send, tcp.SenderConfig{
		FlowID: 1, Dst: 4, MSS: 1000, AdvertisedWindow: 32,
		InitialCwnd: 8, StampAVBW: true,
	}, v)
	if err != nil {
		t.Fatal(err)
	}
	snd.Start()
	w.take()
	// UNMARKED dup ACKs: with discrimination disabled every loss is
	// congestion, so the window must halve anyway.
	snd.Recv(muzhaAck(0, 0, false, -1))
	snd.Recv(muzhaAck(0, 0, false, -1))
	snd.Recv(muzhaAck(0, 0, false, -1))
	snd.Recv(muzhaAck(8000, 0, false, -1))
	if snd.Cwnd() != 4 {
		t.Fatalf("ablated variant did not halve on unmarked loss: %g", snd.Cwnd())
	}
}

func TestMuzhaFFPartialAckRetransmits(t *testing.T) {
	_, snd, _, w, _ := muzhaSender(t, func(c *tcp.SenderConfig) { c.InitialCwnd = 8 })
	snd.Start()
	w.take() // seqs 0..7000, recovery point will be 8000

	snd.Recv(muzhaAck(0, 0, true, -1))
	snd.Recv(muzhaAck(0, 0, false, -1))
	snd.Recv(muzhaAck(0, 0, false, -1))
	w.take() // the fast retransmit

	// Partial ACK: hole at 1000 must be retransmitted, FF persists.
	snd.Recv(muzhaAck(1000, 0, false, -1))
	out := w.take()
	found := false
	for _, p := range out {
		if p.TCP.Seq == 1000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("partial ACK did not retransmit hole: %v", out)
	}

	// Full ACK ends FF; window stays at the halved value.
	snd.Recv(muzhaAck(8000, 0, false, -1))
	if snd.Cwnd() != 4 {
		t.Fatalf("after FF exit: cwnd = %g, want 4", snd.Cwnd())
	}
}

func TestMuzhaTimeoutResetsToOne(t *testing.T) {
	s, snd, _, w, fl := muzhaSender(t, func(c *tcp.SenderConfig) {
		c.InitialCwnd = 8
		c.InitialRTO = 100 * sim.Millisecond
	})
	snd.Start()
	w.take()
	s.Run(150 * sim.Millisecond)

	if snd.Cwnd() != 1 {
		t.Fatalf("cwnd after timeout = %g, want 1", snd.Cwnd())
	}
	if fl.Timeouts != 1 {
		t.Fatalf("timeouts = %d", fl.Timeouts)
	}
	out := w.take()
	if len(out) != 1 || out[0].TCP.Seq != 0 {
		t.Fatal("no head retransmission on timeout")
	}
}

func TestMuzhaNoSlowStart(t *testing.T) {
	// Without router feedback (MRAI 0 echoes), Muzha probes only up to
	// its minimum operating window and then holds: the growth authority
	// beyond the liveness floor is the routers, not loss probing.
	s, snd, v, w, _ := muzhaSender(t, nil)
	snd.Start()
	for i := 0; i < 10; i++ {
		ackRTT(s, snd, w, 0, 40*sim.Millisecond)
	}
	if snd.Cwnd() != v.MinOperatingWindow {
		t.Fatalf("window without router feedback = %g, want the floor %g",
			snd.Cwnd(), v.MinOperatingWindow)
	}
}

func TestMuzhaDecelClampsAtOperatingFloor(t *testing.T) {
	// Router deceleration recommendations stop at the minimum operating
	// window; a competing flow's congestion cannot pin Muzha at one
	// segment.
	s, snd, _, w, _ := muzhaSender(t, func(c *tcp.SenderConfig) { c.InitialCwnd = 5 })
	snd.Start()
	for i := 0; i < 8; i++ {
		ackRTT(s, snd, w, DRAIAggressiveDecel, 40*sim.Millisecond)
	}
	if snd.Cwnd() != 4 {
		t.Fatalf("perma-decel window = %g, want the floor 4", snd.Cwnd())
	}
}

func TestMuzhaFloorProbeRecoversAfterTimeout(t *testing.T) {
	s, snd, _, w, fl := muzhaSender(t, func(c *tcp.SenderConfig) {
		c.InitialCwnd = 8
		c.InitialRTO = 100 * sim.Millisecond
	})
	snd.Start()
	w.take()
	s.Run(150 * sim.Millisecond) // timeout: cwnd = 1
	if snd.Cwnd() != 1 || fl.Timeouts != 1 {
		t.Fatalf("timeout state: cwnd=%g timeouts=%d", snd.Cwnd(), fl.Timeouts)
	}
	// Stabilize-only feedback: the floor probe must still lift the
	// window back to the operating floor, one step per RTT.
	for i := 0; i < 6; i++ {
		s.Run(s.Now() + 40*sim.Millisecond)
		snd.Recv(muzhaAck(snd.SndUna()+1000, DRAIStabilize, false, int64(s.Now()-40*sim.Millisecond)))
	}
	if snd.Cwnd() != 4 {
		t.Fatalf("post-timeout window = %g, want 4", snd.Cwnd())
	}
}
