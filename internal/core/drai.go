// Package core implements TCP Muzha, the paper's primary contribution:
// the router-side Data Rate Adjustment Index (DRAI) policy with
// congestion marking (this file), and the Muzha sender's MRAI-driven
// multi-level congestion control (muzha.go).
package core

import "fmt"

// DRAI levels, Table 5.2 of the paper. Higher is more permissive.
const (
	DRAIAggressiveDecel = 1 // CWND = CWND * 1/2
	DRAIModerateDecel   = 2 // CWND = CWND - 1
	DRAIStabilize       = 3 // CWND unchanged
	DRAIModerateAccel   = 4 // CWND = CWND + 1
	DRAIAggressiveAccel = 5 // CWND = CWND * 2
)

// ApplyDRAI returns the congestion window that results from following a
// rate adjustment recommendation, per Table 5.2. The window never drops
// below one segment. Unknown levels leave the window unchanged (treat as
// "stabilize").
func ApplyDRAI(cwnd float64, level int) float64 {
	switch level {
	case DRAIAggressiveAccel:
		cwnd *= 2
	case DRAIModerateAccel:
		cwnd++
	case DRAIStabilize:
		// unchanged
	case DRAIModerateDecel:
		cwnd--
	case DRAIAggressiveDecel:
		cwnd /= 2
	}
	if cwnd < 1 {
		cwnd = 1
	}
	return cwnd
}

// DRAIPolicy quantizes a router's interface-queue occupancy into a DRAI
// level and decides when to congestion-mark packets (Section 4.5-4.7).
//
// The thesis gives only the five action levels and notes the mapping from
// router state to level is empirical; this implementation derives it from
// IFQ occupancy with configurable thresholds, the router-local congestion
// signal the thesis names. Fewer-level policies (ECN-like binary, or
// 3-level) are provided for the ablation benches.
type DRAIPolicy struct {
	// Thresholds are ascending occupancy fractions in (0,1]; occupancy
	// below Thresholds[i] maps to Levels[i], and occupancy at or above
	// the last threshold maps to Levels[len(Thresholds)].
	Thresholds []float64
	// Levels has len(Thresholds)+1 entries, strictly descending, each in
	// [1,5].
	Levels []int
	// MarkLevel: packets are congestion-marked when the router's current
	// DRAI is at or below this level (deceleration recommendations
	// signal congestion; Section 4.7 pairs marks with deceleration).
	MarkLevel int
	// ChannelThresholds quantize the node's MAC channel utilization
	// (busy fraction of the medium, the 802.11 "available bandwidth"
	// signal of Section 4.3) against the same Levels. The effective DRAI
	// is the minimum of the queue-based and channel-based levels. Empty
	// disables the channel input.
	ChannelThresholds []float64
	// DelayThresholds quantize the node's smoothed IFQ sojourn time in
	// seconds ("queueing time", the input the thesis' future-work
	// section proposes) against the same Levels. Empty disables the
	// delay input.
	DelayThresholds []float64
}

// DefaultDRAIPolicy returns the five-level quantizer used for the
// headline experiments: aggressive acceleration while the queue is nearly
// empty, graduated braking as it fills, marking once deceleration
// territory is reached.
//
// The queue input is the node's *smoothed* (EWMA) queue length, because
// instantaneous IFQ depth is bursty; over 802.11 multihop chains a relay
// driven just past the path capacity averages 1-2 queued packets while a
// well-paced flow averages well under one. With the paper's 50-packet
// IFQ the queue breakpoints fall at 0.5, 1, 2 and 8 packets — the last
// deliberately high so aggressive deceleration (halving every RTT) is
// reserved for genuine buildup; between 2 and 8 queued packets the
// moderate -1/RTT response keeps a Muzha flow AIMD-comparable to a
// competing loss-probing flow instead of being starved by it.
//
// The default policy uses the queue signal only: a backlogged multihop
// flow saturates the medium at any window, so channel utilization cannot
// separate "well paced" from "overdriven" (see ChannelAwareDRAIPolicy for
// the gated variant the ablation benches compare against).
func DefaultDRAIPolicy() DRAIPolicy {
	return DRAIPolicy{
		Thresholds: []float64{0.01, 0.02, 0.04, 0.16},
		Levels:     []int{5, 4, 3, 2, 1},
		MarkLevel:  DRAIModerateDecel,
	}
}

// DelayAwareDRAIPolicy adds the queueing-delay input the thesis'
// future-work section proposes: the smoothed time packets spend in this
// node's IFQ, quantized with breakpoints at 5, 12, 30 and 100 ms (one
// 1500-byte frame takes ~6 ms on the air at 2 Mbps, so these correspond
// to roughly 1, 2, 5 and 16 queued frames' worth of waiting).
func DelayAwareDRAIPolicy() DRAIPolicy {
	p := DefaultDRAIPolicy()
	p.DelayThresholds = []float64{0.005, 0.012, 0.030, 0.100}
	return p
}

// ChannelAwareDRAIPolicy adds the MAC channel-utilization gate to the
// default policy: no acceleration grants once the medium is busy more
// than 85%% of the time, deceleration at pathological saturation. More
// conservative than the default — it stops a solo flow short of the
// optimum — and kept as an ablation comparison.
func ChannelAwareDRAIPolicy() DRAIPolicy {
	p := DefaultDRAIPolicy()
	p.ChannelThresholds = []float64{0.60, 0.85, 0.98, 0.99}
	return p
}

// BinaryDRAIPolicy returns an ECN-like two-level policy (the "extreme
// case of multi-level DRAI" of Section 4.6): full speed below the
// threshold, aggressive deceleration above.
func BinaryDRAIPolicy(threshold float64) DRAIPolicy {
	return DRAIPolicy{
		Thresholds: []float64{threshold},
		Levels:     []int{DRAIAggressiveAccel, DRAIAggressiveDecel},
		MarkLevel:  DRAIAggressiveDecel,
	}
}

// ThreeLevelDRAIPolicy returns a coarse accelerate/hold/decelerate
// policy for the quantization-depth ablation.
func ThreeLevelDRAIPolicy() DRAIPolicy {
	return DRAIPolicy{
		Thresholds: []float64{0.25, 0.70},
		Levels:     []int{DRAIModerateAccel, DRAIStabilize, DRAIModerateDecel},
		MarkLevel:  DRAIModerateDecel,
	}
}

// Validate reports structural errors in the policy.
func (p DRAIPolicy) Validate() error {
	if len(p.Levels) != len(p.Thresholds)+1 {
		return fmt.Errorf("core: need len(Levels) == len(Thresholds)+1, got %d and %d",
			len(p.Levels), len(p.Thresholds))
	}
	prev := 0.0
	for i, th := range p.Thresholds {
		if th <= prev || th > 1 {
			return fmt.Errorf("core: thresholds must be ascending in (0,1], got %v", p.Thresholds)
		}
		prev = th
		_ = i
	}
	for i, l := range p.Levels {
		if l < DRAIAggressiveDecel || l > DRAIAggressiveAccel {
			return fmt.Errorf("core: level %d out of range [1,5]", l)
		}
		if i > 0 && p.Levels[i] >= p.Levels[i-1] {
			return fmt.Errorf("core: levels must be strictly descending, got %v", p.Levels)
		}
	}
	if p.MarkLevel < 0 || p.MarkLevel > DRAIAggressiveAccel {
		return fmt.Errorf("core: MarkLevel %d out of range", p.MarkLevel)
	}
	if len(p.ChannelThresholds) > 0 {
		if len(p.ChannelThresholds) != len(p.Thresholds) {
			return fmt.Errorf("core: ChannelThresholds must match Thresholds length, got %d and %d",
				len(p.ChannelThresholds), len(p.Thresholds))
		}
		prev := 0.0
		for _, th := range p.ChannelThresholds {
			if th <= prev || th > 1 {
				return fmt.Errorf("core: channel thresholds must be ascending in (0,1], got %v", p.ChannelThresholds)
			}
			prev = th
		}
	}
	if len(p.DelayThresholds) > 0 {
		if len(p.DelayThresholds) != len(p.Thresholds) {
			return fmt.Errorf("core: DelayThresholds must match Thresholds length, got %d and %d",
				len(p.DelayThresholds), len(p.Thresholds))
		}
		prev := 0.0
		for _, th := range p.DelayThresholds {
			if th <= prev {
				return fmt.Errorf("core: delay thresholds must be ascending and positive, got %v", p.DelayThresholds)
			}
			prev = th
		}
	}
	return nil
}

// DRAI returns the rate adjustment recommendation for a queue holding
// qlen of qcap packets.
func (p DRAIPolicy) DRAI(qlen, qcap int) int {
	if qcap <= 0 {
		return DRAIStabilize
	}
	return p.Quantize(float64(qlen) / float64(qcap))
}

// Quantize maps a (possibly smoothed) queue occupancy fraction to a DRAI
// level.
func (p DRAIPolicy) Quantize(occupancy float64) int {
	for i, th := range p.Thresholds {
		if occupancy < th {
			return p.Levels[i]
		}
	}
	return p.Levels[len(p.Levels)-1]
}

// DRAIChannel returns the rate adjustment recommendation for a node whose
// medium is busy the given fraction of time. Returns the most permissive
// level when the channel input is disabled.
func (p DRAIPolicy) DRAIChannel(util float64) int {
	if len(p.ChannelThresholds) == 0 {
		return p.Levels[0]
	}
	for i, th := range p.ChannelThresholds {
		if util < th {
			return p.Levels[i]
		}
	}
	return p.Levels[len(p.Levels)-1]
}

// DRAIDelay returns the recommendation for a smoothed IFQ sojourn time
// in seconds. Returns the most permissive level when the delay input is
// disabled.
func (p DRAIPolicy) DRAIDelay(delaySeconds float64) int {
	if len(p.DelayThresholds) == 0 {
		return p.Levels[0]
	}
	for i, th := range p.DelayThresholds {
		if delaySeconds < th {
			return p.Levels[i]
		}
	}
	return p.Levels[len(p.Levels)-1]
}

// Combined returns the effective DRAI: the strictest (minimum) of the
// queue-, channel- and delay-based recommendations. occupancy is the
// smoothed queue fraction, util the MAC busy fraction, delaySeconds the
// smoothed IFQ sojourn.
func (p DRAIPolicy) Combined(occupancy, util, delaySeconds float64) int {
	d := p.Quantize(occupancy)
	if c := p.DRAIChannel(util); c < d {
		d = c
	}
	if c := p.DRAIDelay(delaySeconds); c < d {
		d = c
	}
	return d
}

// ShouldMark reports whether a router in the given state must set the
// congestion mark on forwarded packets.
func (p DRAIPolicy) ShouldMark(occupancy, util, delaySeconds float64) bool {
	return p.Combined(occupancy, util, delaySeconds) <= p.MarkLevel
}
