package core

import (
	"testing"

	"muzha/internal/sim"
	"muzha/internal/stats"
	"muzha/internal/tcp"
)

func clampedSender(t *testing.T, inner tcp.Variant) (*sim.Simulator, *tcp.Sender, *DRAIClamped) {
	t.Helper()
	s := sim.New(1)
	w := &wire{}
	v := NewDRAIClamped(inner)
	cfg := tcp.SenderConfig{
		FlowID:           1,
		Dst:              4,
		MSS:              1000,
		AdvertisedWindow: 32,
		StampAVBW:        true,
		Stats:            stats.NewFlow(1, v.Name(), 0),
	}
	snd, err := tcp.NewSender(s, w.send, cfg, v)
	if err != nil {
		t.Fatal(err)
	}
	return s, snd, v
}

// TestDRAIClampedDecelerates pins the hybrid's core contract: a
// deceleration recommendation echoed in ACKs caps the window the inner
// variant chose, at most once per RTT.
func TestDRAIClampedDecelerates(t *testing.T) {
	s, snd, v := clampedSender(t, tcp.NewNewReno())
	snd.SetCwnd(16)
	snd.SetSsthresh(2) // inner NewReno grows linearly, not exponentially

	s.Run(20 * sim.Millisecond) // past the once-per-RTT gate's t=0 origin
	v.OnNewAck(snd, muzhaAck(1000, DRAIAggressiveDecel, false, -1), 1000)
	if got := snd.Cwnd(); got > 9 {
		t.Fatalf("cwnd = %g after halve recommendation from 16, want <= 9", got)
	}
	if v.Clamps() != 1 {
		t.Fatalf("Clamps = %d, want 1", v.Clamps())
	}

	// A second deceleration inside the same RTT must not re-clamp.
	before := snd.Cwnd()
	v.OnNewAck(snd, muzhaAck(2000, DRAIAggressiveDecel, false, -1), 1000)
	if snd.Cwnd() < before {
		t.Fatalf("clamp re-applied within one RTT: %g -> %g", before, snd.Cwnd())
	}
	if v.Clamps() != 1 {
		t.Fatalf("Clamps = %d after same-RTT ack, want 1", v.Clamps())
	}

	// After an RTT the next recommendation bites again.
	s.Run(s.Now() + 20*sim.Millisecond)
	v.OnNewAck(snd, muzhaAck(3000, DRAIModerateDecel, false, -1), 1000)
	if v.Clamps() != 2 {
		t.Fatalf("Clamps = %d after next-RTT deceleration, want 2", v.Clamps())
	}
}

// TestDRAIClampedIgnoresAcceleration: routers may slow a modern sender
// down but never speed it up beyond its own control law.
func TestDRAIClampedIgnoresAcceleration(t *testing.T) {
	_, snd, v := clampedSender(t, tcp.NewNewReno())
	snd.SetCwnd(4)
	snd.SetSsthresh(2)

	v.OnNewAck(snd, muzhaAck(1000, DRAIAggressiveAccel, false, -1), 1000)
	// Inner NewReno in CA grows by 1/cwnd; a Muzha sender would have
	// doubled to 8.
	if got := snd.Cwnd(); got > 4.5 {
		t.Fatalf("cwnd = %g, acceleration grant must not apply", got)
	}
	if v.Clamps() != 0 {
		t.Fatalf("Clamps = %d, want 0", v.Clamps())
	}
}

// TestDRAIClampedFloor: deceleration stops at MinWindow, the liveness
// floor below which dup-ACK recovery cannot work.
func TestDRAIClampedFloor(t *testing.T) {
	s, snd, v := clampedSender(t, tcp.NewNewReno())
	snd.SetCwnd(3)
	snd.SetSsthresh(2)
	s.Run(20 * sim.Millisecond)
	v.OnNewAck(snd, muzhaAck(1000, DRAIAggressiveDecel, false, -1), 1000)
	if got := snd.Cwnd(); got != v.MinWindow {
		t.Fatalf("cwnd = %g, want floor %g", got, v.MinWindow)
	}
}

// TestDRAIClampedDelegatesLoss: dup-ACK and timeout handling belong to
// the inner variant; the wrapper only forwards (and drops its stale
// recommendation on an RTO).
func TestDRAIClampedDelegatesLoss(t *testing.T) {
	_, snd, v := clampedSender(t, tcp.NewNewReno())
	snd.SetCwnd(16)
	v.OnNewAck(snd, muzhaAck(1000, DRAIAggressiveDecel, false, -1), 1000)

	v.OnTimeout(snd)
	if got := snd.Cwnd(); got != 1 {
		t.Fatalf("cwnd after RTO = %g, want inner NewReno's 1", got)
	}
	if v.minMRAI != 0 {
		t.Fatal("stale recommendation survived the timeout")
	}
}

// TestDRAIClampedBindsInnerSeams: wrapping BBR-lite must still attach
// its pacer and delivery-rate sampler through the Binder seam.
func TestDRAIClampedBindsInnerSeams(t *testing.T) {
	_, snd, v := clampedSender(t, tcp.NewBBRLite())
	if v.Name() != "bbr-lite" {
		t.Fatalf("Name = %q, want inner name bbr-lite", v.Name())
	}
	if snd.Pacer() == nil || snd.RateSampler() == nil {
		t.Fatal("Bind did not reach the inner BBR-lite")
	}
}
