package aodv

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

// ringConfig is DefaultConfig with expanding-ring search enabled and
// the RFC defaults made explicit.
func ringConfig() Config {
	cfg := DefaultConfig()
	cfg.ExpandingRing = true
	return cfg
}

// newMiniNet builds an n-router fabric with no links; tests wire the
// adjacency they need via linkNodes.
func newMiniNet(t *testing.T, n int, cfg Config) *miniNet {
	t.Helper()
	net := &miniNet{
		t:         t,
		s:         sim.New(1),
		routers:   make(map[packet.NodeID]*Router),
		neighbors: make(map[packet.NodeID][]packet.NodeID),
		crashed:   make(map[packet.NodeID]bool),
		dropped:   make(map[string]int),
	}
	var ids packet.IDGen
	for i := 0; i < n; i++ {
		id := packet.NodeID(i)
		r, err := New(net.s, id, &miniPort{net: net, self: id}, &ids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		net.routers[id] = r
	}
	return net
}

func linkNodes(net *miniNet, a, b packet.NodeID) {
	net.neighbors[a] = append(net.neighbors[a], b)
	net.neighbors[b] = append(net.neighbors[b], a)
}

// newMiniGrid wires rows x cols routers into a 4-neighbour grid.
func newMiniGrid(t *testing.T, rows, cols int, cfg Config) *miniNet {
	net := newMiniNet(t, rows*cols, cfg)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := packet.NodeID(r*cols + c)
			if c+1 < cols {
				linkNodes(net, id, id+1)
			}
			if r+1 < rows {
				linkNodes(net, id, id+packet.NodeID(cols))
			}
		}
	}
	return net
}

func totalRREQSent(net *miniNet) uint64 {
	var total uint64
	for _, r := range net.routers {
		total += r.Stats().RREQSent
	}
	return total
}

// TTL progression on an unreachable destination: rings at TTLStart,
// +TTLIncrement per timeout, then network-wide (HopLimit 0) once past
// TTLThreshold, with RREQRetries counting only network-wide attempts.
func TestExpandingRingTTLProgression(t *testing.T) {
	s := sim.New(1)
	out := &stubOut{}
	var ids packet.IDGen
	r, err := New(s, 0, out, &ids, ringConfig())
	if err != nil {
		t.Fatal(err)
	}
	pkt := dataTo(99)
	r.SendData(pkt)
	s.Run(60 * sim.Second)

	var limits []int
	for _, m := range out.routing {
		if req, ok := m.pkt.Payload.(*RREQ); ok {
			limits = append(limits, req.HopLimit)
		}
	}
	// TTLStart=2, +2, +2, then 8 > TTLThreshold=7 escalates to
	// network-wide; 1 initial network-wide + RREQRetries=3 retries.
	want := []int{2, 4, 6, 0, 0, 0, 0}
	if len(limits) != len(want) {
		t.Fatalf("RREQ HopLimits = %v, want %v", limits, want)
	}
	for i := range want {
		if limits[i] != want[i] {
			t.Fatalf("RREQ HopLimits = %v, want %v", limits, want)
		}
	}
	if len(out.dropped) != 1 || out.dropped[0] != pkt {
		t.Fatalf("buffered packet not dropped after exhaustion: %d", len(out.dropped))
	}
	if r.Stats().DiscoveryErr != 1 {
		t.Fatalf("DiscoveryErr = %d", r.Stats().DiscoveryErr)
	}
}

// A ring-limited RREQ must stop at its edge: the node at the last
// allowed hop installs the reverse route but does not rebroadcast.
func TestRingEdgeDoesNotRebroadcast(t *testing.T) {
	s, r, out := newRouter(t, 2)
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREQ{ID: 1, Src: 0, SrcSeq: 1, Dst: 9, HopCount: 1, HopLimit: 2},
	})
	s.Run(sim.Second)
	if len(out.routing) != 0 {
		t.Fatalf("ring edge rebroadcast %d messages", len(out.routing))
	}
	if nh, ok := r.NextHop(0); !ok || nh != 1 {
		t.Fatal("reverse route not installed at ring edge")
	}

	// One hop earlier the same request still propagates, HopLimit intact.
	s2, r2, out2 := newRouter(t, 3)
	r2.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREQ{ID: 1, Src: 0, SrcSeq: 1, Dst: 9, HopCount: 0, HopLimit: 2},
	})
	s2.Run(sim.Second)
	if len(out2.routing) != 1 {
		t.Fatalf("inside-ring rebroadcasts = %d, want 1", len(out2.routing))
	}
	fwd := out2.routing[0].pkt.Payload.(*RREQ)
	if fwd.HopLimit != 2 || fwd.HopCount != 1 {
		t.Fatalf("forwarded RREQ = %+v", fwd)
	}
	_ = s
}

// A near destination is found by the first ring; a far one requires
// escalation through wider rings to the network-wide flood, and the
// buffered packet is still delivered.
func TestExpandingRingChainEscalation(t *testing.T) {
	// 10-node chain: destination 9 is 9 hops out, beyond TTLThreshold.
	net := newMiniNet(t, 10, ringConfig())
	for i := 0; i < 9; i++ {
		linkNodes(net, packet.NodeID(i), packet.NodeID(i+1))
	}
	r0 := net.routers[0]
	r0.SendData(&packet.Packet{UID: 1, Kind: packet.KindData, Src: 0, Dst: 9, Size: 1000})
	net.s.Run(10 * sim.Second)

	if len(net.delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1 (dropped: %v)", len(net.delivered), net.dropped)
	}
	if nh, ok := r0.NextHop(9); !ok || nh != 1 {
		t.Fatalf("route 0->9 = (%v, %v)", nh, ok)
	}
	// Origin sent the ring attempts 2/4/6 plus one network-wide flood.
	if got := r0.Stats().RREQSent; got != 4 {
		t.Fatalf("origin RREQSent = %d, want 4 (rings 2,4,6 + flood)", got)
	}
	if r0.Stats().DiscoveryOK != 1 {
		t.Fatal("discovery did not complete")
	}
}

// On a 10x10 grid with a nearby destination, expanding-ring discovery
// must cost strictly fewer RREQ transmissions than the network-wide
// flood the pre-refactor router always used.
func TestGridExpandingRingSendsFewerRREQs(t *testing.T) {
	run := func(cfg Config) (uint64, int) {
		net := newMiniGrid(t, 10, 10, cfg)
		// Destination 2 hops from the corner origin: inside the first ring.
		net.routers[0].SendData(&packet.Packet{UID: 1, Kind: packet.KindData, Src: 0, Dst: 2, Size: 1000})
		net.s.Run(5 * sim.Second)
		return totalRREQSent(net), len(net.delivered)
	}

	flood, deliveredFlood := run(DefaultConfig())
	ring, deliveredRing := run(ringConfig())
	if deliveredFlood != 1 || deliveredRing != 1 {
		t.Fatalf("delivery: flood=%d ring=%d, want 1 each", deliveredFlood, deliveredRing)
	}
	if ring >= flood {
		t.Fatalf("expanding ring RREQSent = %d, not below flood %d", ring, flood)
	}
	// The flood rebroadcasts at every node; the first ring only reaches
	// the origin's neighbourhood.
	if flood < 90 {
		t.Fatalf("flood RREQSent = %d, expected a ~100-node broadcast storm", flood)
	}
	if ring > 10 {
		t.Fatalf("ring RREQSent = %d, expected a contained neighbourhood search", ring)
	}
}

// The duplicate-RREQ cache is bounded: FIFO eviction keeps the map at
// the configured capacity while still suppressing recent duplicates.
func TestSeenCacheBounded(t *testing.T) {
	c := newSeenCache(4)
	for i := 0; i < 10; i++ {
		c.add(rreqKey{src: 1, id: uint32(i)})
	}
	if len(c.m) != 4 || len(c.order) != 4 {
		t.Fatalf("cache size = %d/%d, want 4", len(c.m), len(c.order))
	}
	for i := 0; i < 6; i++ {
		if c.has(rreqKey{src: 1, id: uint32(i)}) {
			t.Fatalf("old key %d survived eviction", i)
		}
	}
	for i := 6; i < 10; i++ {
		if !c.has(rreqKey{src: 1, id: uint32(i)}) {
			t.Fatalf("recent key %d evicted", i)
		}
	}
	// Re-adding an existing key is a no-op, not a duplicate slot.
	c.add(rreqKey{src: 1, id: 9})
	if len(c.m) != 4 || len(c.order) != 4 {
		t.Fatal("duplicate add grew the cache")
	}
}

// An evicted RREQ id is treated as new again — bounded memory trades
// perfect suppression for O(cap) state, which only matters under
// discovery volumes far beyond the cache size.
func TestSeenCacheEvictionAllowsReprocessing(t *testing.T) {
	s := sim.New(1)
	out := &stubOut{}
	var ids packet.IDGen
	cfg := DefaultConfig()
	cfg.SeenCacheSize = 2
	r, err := New(s, 5, out, &ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := func(id uint32) *packet.Packet {
		return &packet.Packet{
			Kind: packet.KindRouting, MACSrc: 1,
			Payload: &RREQ{ID: id, Src: 0, SrcSeq: 1, Dst: 9, HopCount: 1},
		}
	}
	r.HandleRouting(req(1))
	r.HandleRouting(req(1)) // suppressed
	r.HandleRouting(req(2))
	r.HandleRouting(req(3)) // evicts id 1
	r.HandleRouting(req(1)) // processed again after eviction
	s.Run(sim.Second)
	if len(out.routing) != 4 {
		t.Fatalf("rebroadcasts = %d, want 4 (ids 1,2,3 + re-processed 1)", len(out.routing))
	}
}
