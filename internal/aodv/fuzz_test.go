package aodv

import (
	"encoding/binary"
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

// FuzzAODVMessages drives HandleRouting with arbitrary — malformed,
// truncated, self-referential — RREQ/RREP/RERR streams interleaved with
// data sends and link-failure reports. The router must never panic and
// its routing table must never name the node itself as a destination.
func FuzzAODVMessages(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 3, 3, 3, 3, 3, 3, 3, 3, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := sim.New(1)
		out := &stubOut{}
		var ids packet.IDGen
		r, err := New(s, 2, out, &ids, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}

		u32 := func(i int) uint32 {
			var b [4]byte
			if i < len(data) {
				copy(b[:], data[i:min(i+4, len(data))]) // truncated tail -> zeros
			}
			return binary.LittleEndian.Uint32(b[:])
		}
		node := func(i int) packet.NodeID {
			if i >= len(data) {
				return 0
			}
			return packet.NodeID(int(data[i]%8) - 1) // includes -1 and self (2)
		}

		for i := 0; i+1 < len(data); i += 9 {
			op := data[i]
			prev := node(i + 1)
			var payload any
			switch op % 6 {
			case 0:
				payload = &RREQ{
					ID: u32(i + 2), Src: node(i + 2), SrcSeq: u32(i + 3),
					Dst: node(i + 4), DstSeq: u32(i + 5),
					DstSeqKnown: op&0x40 != 0,
					HopCount:    int(int8(data[i+1])), // negative hop counts too
				}
			case 1:
				payload = &RREP{
					Src: node(i + 2), Dst: node(i + 3),
					DstSeq: u32(i + 4), HopCount: int(int8(data[i+1])),
				}
			case 2:
				// RERR with 0..n entries, possibly duplicated/self dsts.
				n := int(data[i+1] % 5)
				e := &RERR{}
				for j := 0; j < n; j++ {
					e.Unreachable = append(e.Unreachable,
						Unreachable{Dst: node(i + 2 + j), Seq: u32(i + 3 + j)})
				}
				payload = e
			case 3:
				payload = nil // truncated frame: payload lost entirely
			case 4:
				r.SendData(&packet.Packet{
					UID: uint64(i), Kind: packet.KindData,
					Src: 2, Dst: node(i + 2), Size: 1000,
				})
			case 5:
				r.LinkFailure(prev, nil)
			}
			if payload != nil || op%6 == 3 {
				r.HandleRouting(&packet.Packet{
					Kind: packet.KindRouting, MACSrc: prev, Payload: payload,
				})
			}
			// Let jittered rebroadcasts and discovery timers fire.
			s.Run(s.Now() + sim.Time(op)*sim.Millisecond)
		}
		s.Run(s.Now() + 10*sim.Second)

		if _, ok := r.NextHops()[2]; ok {
			t.Fatal("router installed a route to itself")
		}
	})
}
