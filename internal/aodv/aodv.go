// Package aodv implements the Ad hoc On-demand Distance Vector routing
// protocol (RFC 3561) as used by the paper's simulations: on-demand RREQ
// flooding with duplicate suppression and rebroadcast jitter, reverse- and
// forward-route establishment, hop-by-hop RREP unicast, RERR propagation
// driven by MAC-layer link-failure reports, per-destination packet
// buffering during discovery, and RREQ retries with binary exponential
// backoff.
package aodv

import (
	"fmt"
	"sort"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

// Output is the interface the router uses to hand packets back to the
// node for transmission.
type Output interface {
	// SendRouting enqueues an AODV message. nextHop may be
	// packet.Broadcast.
	SendRouting(pkt *packet.Packet, nextHop packet.NodeID)
	// ForwardData transmits a data packet to the given next hop. Called
	// both for freshly routable packets flushed from the discovery
	// buffer and is reused by the node's own forwarding path.
	ForwardData(pkt *packet.Packet, nextHop packet.NodeID)
	// DropData disposes of a data packet the router cannot deliver
	// (discovery failed or buffer overflow).
	DropData(pkt *packet.Packet, reason string)
}

// Expanding-ring search defaults (RFC 3561 section 6.4) and the
// duplicate-RREQ cache bound, applied when the corresponding Config
// field is zero.
const (
	DefaultTTLStart      = 2
	DefaultTTLIncrement  = 2
	DefaultTTLThreshold  = 7
	DefaultSeenCacheSize = 2048
)

// Config holds AODV protocol parameters.
type Config struct {
	// ActiveRouteTimeout is how long an unused route stays valid. The
	// paper's topologies are static, so the default is generous.
	ActiveRouteTimeout sim.Time
	// DiscoveryTimeout is the initial RREP wait; it doubles with each
	// retry (RFC 3561 binary exponential backoff).
	DiscoveryTimeout sim.Time
	// RREQRetries is the number of retries after the first attempt.
	// With ExpandingRing it counts network-wide attempts only; ring
	// attempts are free.
	RREQRetries int
	// MaxBuffered bounds the per-destination packet buffer held during
	// route discovery.
	MaxBuffered int
	// BroadcastJitter is the maximum random delay applied before
	// rebroadcasting an RREQ, de-synchronizing the flood.
	BroadcastJitter sim.Time
	// ExpandingRing enables RFC 3561 6.4 expanding-ring search:
	// discovery starts with a TTL-limited RREQ (TTLStart), widening by
	// TTLIncrement per timeout until TTLThreshold, then goes
	// network-wide. Off by default so paper-scale scenarios keep their
	// exact historical flood behavior.
	ExpandingRing bool
	// TTLStart / TTLIncrement / TTLThreshold tune the ring schedule.
	// Zero selects the RFC defaults (2 / 2 / 7).
	TTLStart     int
	TTLIncrement int
	TTLThreshold int
	// SeenCacheSize bounds the duplicate-RREQ suppression cache
	// (FIFO eviction). Zero selects DefaultSeenCacheSize. The default
	// is far above anything the paper's scenarios produce, so eviction
	// never fires there.
	SeenCacheSize int
}

// DefaultConfig returns parameters suitable for the paper's 4-32 node
// static scenarios.
func DefaultConfig() Config {
	return Config{
		ActiveRouteTimeout: 100 * sim.Second,
		DiscoveryTimeout:   500 * sim.Millisecond,
		RREQRetries:        3,
		MaxBuffered:        64,
		BroadcastJitter:    10 * sim.Millisecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.ActiveRouteTimeout <= 0:
		return fmt.Errorf("aodv: ActiveRouteTimeout must be positive, got %v", c.ActiveRouteTimeout)
	case c.DiscoveryTimeout <= 0:
		return fmt.Errorf("aodv: DiscoveryTimeout must be positive, got %v", c.DiscoveryTimeout)
	case c.RREQRetries < 0:
		return fmt.Errorf("aodv: RREQRetries must be >= 0, got %d", c.RREQRetries)
	case c.MaxBuffered < 1:
		return fmt.Errorf("aodv: MaxBuffered must be >= 1, got %d", c.MaxBuffered)
	case c.BroadcastJitter < 0:
		return fmt.Errorf("aodv: BroadcastJitter must be >= 0, got %v", c.BroadcastJitter)
	case c.TTLStart < 0 || c.TTLIncrement < 0 || c.TTLThreshold < 0:
		return fmt.Errorf("aodv: TTL ring parameters must be >= 0")
	case c.SeenCacheSize < 0:
		return fmt.Errorf("aodv: SeenCacheSize must be >= 0, got %d", c.SeenCacheSize)
	}
	return nil
}

type route struct {
	nextHop packet.NodeID
	hops    int
	seq     uint32
	valid   bool
	expiry  sim.Time
}

type rreqKey struct {
	src packet.NodeID
	id  uint32
}

type discovery struct {
	buffer  []*packet.Packet
	retries int // network-wide attempts after the first
	ttl     int // current ring TTL; 0 means network-wide
	timer   *sim.Timer
}

// seenCache is a bounded duplicate-RREQ suppression set with FIFO
// eviction. Unbounded growth here is O(total discoveries in the
// network) per node — the dominant memory cliff at 1000 nodes.
type seenCache struct {
	cap   int
	m     map[rreqKey]struct{}
	order []rreqKey // insertion-ordered ring, oldest at head once full
	head  int
}

func newSeenCache(capacity int) *seenCache {
	return &seenCache{cap: capacity, m: make(map[rreqKey]struct{})}
}

func (c *seenCache) has(k rreqKey) bool {
	_, ok := c.m[k]
	return ok
}

func (c *seenCache) add(k rreqKey) {
	if _, ok := c.m[k]; ok {
		return
	}
	if len(c.order) < c.cap {
		c.order = append(c.order, k)
	} else {
		delete(c.m, c.order[c.head])
		c.order[c.head] = k
		c.head = (c.head + 1) % c.cap
	}
	c.m[k] = struct{}{}
}

// Stats are cumulative router counters.
type Stats struct {
	RREQSent     uint64 // originated + rebroadcast
	RREPSent     uint64 // originated + forwarded
	RERRSent     uint64
	Discoveries  uint64 // route discoveries started
	DiscoveryOK  uint64 // discoveries that produced a route
	DiscoveryErr uint64 // discoveries that exhausted retries
	LinkFailures uint64 // MAC-reported broken links
}

// Router is one node's AODV instance.
type Router struct {
	sim  *sim.Simulator
	self packet.NodeID
	out  Output
	cfg  Config
	ids  *packet.IDGen

	seq     uint32
	rreqID  uint32
	routes  map[packet.NodeID]*route
	seen    *seenCache
	pending map[packet.NodeID]*discovery

	stats Stats
}

// New creates a router for node self. ids must be the simulation-wide
// packet ID generator.
func New(s *sim.Simulator, self packet.NodeID, out Output, ids *packet.IDGen, cfg Config) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SeenCacheSize == 0 {
		cfg.SeenCacheSize = DefaultSeenCacheSize
	}
	if cfg.TTLStart == 0 {
		cfg.TTLStart = DefaultTTLStart
	}
	if cfg.TTLIncrement == 0 {
		cfg.TTLIncrement = DefaultTTLIncrement
	}
	if cfg.TTLThreshold == 0 {
		cfg.TTLThreshold = DefaultTTLThreshold
	}
	return &Router{
		sim:     s,
		self:    self,
		out:     out,
		cfg:     cfg,
		ids:     ids,
		routes:  make(map[packet.NodeID]*route),
		seen:    newSeenCache(cfg.SeenCacheSize),
		pending: make(map[packet.NodeID]*discovery),
	}, nil
}

// Stats returns a copy of the router counters.
func (r *Router) Stats() Stats { return r.stats }

// Reset wipes all volatile protocol state, as a node crash would: routes,
// duplicate-suppression cache, and in-flight discoveries (their timers are
// stopped and buffered packets dropped). Cumulative stats survive; sequence
// and RREQ counters restart from zero like a cold boot.
func (r *Router) Reset() {
	dsts := make([]packet.NodeID, 0, len(r.pending))
	for dst := range r.pending {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, dst := range dsts {
		d := r.pending[dst]
		d.timer.Stop()
		for _, pkt := range d.buffer {
			r.out.DropData(pkt, "router reset")
		}
	}
	r.routes = make(map[packet.NodeID]*route)
	r.seen = newSeenCache(r.cfg.SeenCacheSize)
	r.pending = make(map[packet.NodeID]*discovery)
	r.seq = 0
	r.rreqID = 0
}

// NextHops returns a snapshot of the valid, unexpired routing table as a
// dst -> next-hop map, without refreshing lifetimes. Used by the run-time
// loop-freedom invariant scan.
func (r *Router) NextHops() map[packet.NodeID]packet.NodeID {
	now := r.sim.Now()
	out := make(map[packet.NodeID]packet.NodeID, len(r.routes))
	for dst, rt := range r.routes {
		if rt.valid && now < rt.expiry {
			out[dst] = rt.nextHop
		}
	}
	return out
}

// NextHop returns the next hop for dst if a valid, unexpired route
// exists, refreshing its lifetime.
func (r *Router) NextHop(dst packet.NodeID) (packet.NodeID, bool) {
	rt := r.routes[dst]
	if rt == nil || !rt.valid || r.sim.Now() >= rt.expiry {
		return 0, false
	}
	rt.expiry = r.sim.Now() + r.cfg.ActiveRouteTimeout
	return rt.nextHop, true
}

// HopCount returns the advertised hop count of the current route to dst,
// or -1 if none. For tests and diagnostics.
func (r *Router) HopCount(dst packet.NodeID) int {
	rt := r.routes[dst]
	if rt == nil || !rt.valid || r.sim.Now() >= rt.expiry {
		return -1
	}
	return rt.hops
}

// SendData routes a data packet: forwards it immediately when a route
// exists, otherwise buffers it and starts (or joins) a route discovery.
func (r *Router) SendData(pkt *packet.Packet) {
	if nh, ok := r.NextHop(pkt.Dst); ok {
		r.out.ForwardData(pkt, nh)
		return
	}
	d := r.pending[pkt.Dst]
	if d == nil {
		d = &discovery{}
		r.pending[pkt.Dst] = d
		r.startDiscovery(pkt.Dst, d)
	}
	if len(d.buffer) >= r.cfg.MaxBuffered {
		r.out.DropData(pkt, "discovery buffer full")
		return
	}
	d.buffer = append(d.buffer, pkt)
}

func (r *Router) startDiscovery(dst packet.NodeID, d *discovery) {
	r.stats.Discoveries++
	if r.cfg.ExpandingRing {
		// A known (possibly stale) route hints at the destination's
		// distance; otherwise start at TTLStart (RFC 3561 6.4).
		d.ttl = r.cfg.TTLStart
		if rt := r.routes[dst]; rt != nil && rt.hops > 0 {
			d.ttl = rt.hops + r.cfg.TTLIncrement
		}
		if d.ttl > r.cfg.TTLThreshold {
			d.ttl = 0
		}
	}
	r.sendRREQ(dst, d.ttl)
	d.timer = sim.NewTimer(r.sim, func() { r.discoveryTimeout(dst) })
	d.timer.Reset(r.cfg.DiscoveryTimeout)
}

func (r *Router) sendRREQ(dst packet.NodeID, hopLimit int) {
	r.seq++
	r.rreqID++
	req := &RREQ{
		ID:       r.rreqID,
		Src:      r.self,
		SrcSeq:   r.seq,
		Dst:      dst,
		HopLimit: hopLimit,
	}
	if rt := r.routes[dst]; rt != nil {
		req.DstSeq = rt.seq
		req.DstSeqKnown = true
	}
	// Suppress our own flood copy coming back.
	r.seen.add(rreqKey{src: r.self, id: req.ID})
	r.stats.RREQSent++
	r.out.SendRouting(r.routingPacket(req, rreqSize, packet.Broadcast), packet.Broadcast)
}

func (r *Router) discoveryTimeout(dst packet.NodeID) {
	d := r.pending[dst]
	if d == nil {
		return
	}
	if d.ttl > 0 {
		// Expanding ring: widen and retry without consuming a
		// network-wide retry. Ring attempts use the plain timeout;
		// binary backoff applies only to network-wide floods.
		d.ttl += r.cfg.TTLIncrement
		if d.ttl > r.cfg.TTLThreshold {
			d.ttl = 0
		}
		r.sendRREQ(dst, d.ttl)
		d.timer.Reset(r.cfg.DiscoveryTimeout)
		return
	}
	if d.retries >= r.cfg.RREQRetries {
		delete(r.pending, dst)
		r.stats.DiscoveryErr++
		for _, pkt := range d.buffer {
			r.out.DropData(pkt, "no route after retries")
		}
		return
	}
	d.retries++
	r.sendRREQ(dst, 0)
	d.timer.Reset(r.cfg.DiscoveryTimeout << uint(d.retries))
}

// HandleRouting processes a received AODV message. prevHop is the MAC
// source the message arrived from.
func (r *Router) HandleRouting(pkt *packet.Packet) {
	prevHop := pkt.MACSrc
	switch msg := pkt.Payload.(type) {
	case *RREQ:
		r.handleRREQ(msg, prevHop)
	case *RREP:
		r.handleRREP(msg, prevHop)
	case *RERR:
		r.handleRERR(msg, prevHop)
	}
}

func (r *Router) handleRREQ(req *RREQ, prevHop packet.NodeID) {
	key := rreqKey{src: req.Src, id: req.ID}
	if r.seen.has(key) {
		return
	}
	r.seen.add(key)

	// Reverse route to the originator through the previous hop.
	r.updateRoute(req.Src, prevHop, req.HopCount+1, req.SrcSeq)

	if req.Dst == r.self {
		// We are the destination: reply with our own sequence number
		// (bumped to at least the requested freshness, RFC 3561 6.6.1).
		if req.DstSeqKnown && req.DstSeq > r.seq {
			r.seq = req.DstSeq
		}
		r.seq++
		r.sendRREP(&RREP{Src: req.Src, Dst: r.self, DstSeq: r.seq, HopCount: 0}, prevHop)
		return
	}

	// Intermediate node with a fresh-enough valid route may reply — unless
	// our cached route points back through the previous hop, in which case
	// replying would install a two-node forwarding loop (the classic
	// post-reboot hazard: the requester lost its state, but our stale route
	// still names it as the way toward the destination).
	if rt := r.routes[req.Dst]; rt != nil && rt.valid && r.sim.Now() < rt.expiry &&
		req.DstSeqKnown && rt.seq >= req.DstSeq && rt.nextHop != prevHop {
		r.sendRREP(&RREP{Src: req.Src, Dst: req.Dst, DstSeq: rt.seq, HopCount: rt.hops}, prevHop)
		return
	}

	// Ring edge: a TTL-limited RREQ stops here. Destination and
	// fresh-route replies above still fire, which is the whole point of
	// the expanding ring — only the flood is contained.
	if req.HopLimit > 0 && req.HopCount+1 >= req.HopLimit {
		return
	}

	// Rebroadcast the flood with jitter to de-synchronize neighbours.
	fwd := &RREQ{
		ID: req.ID, Src: req.Src, SrcSeq: req.SrcSeq,
		Dst: req.Dst, DstSeq: req.DstSeq, DstSeqKnown: req.DstSeqKnown,
		HopCount: req.HopCount + 1, HopLimit: req.HopLimit,
	}
	jitter := sim.Time(0)
	if r.cfg.BroadcastJitter > 0 {
		jitter = sim.Time(r.sim.Rand().Int63n(int64(r.cfg.BroadcastJitter)))
	}
	r.sim.Schedule(jitter, func() {
		r.stats.RREQSent++
		r.out.SendRouting(r.routingPacket(fwd, rreqSize, packet.Broadcast), packet.Broadcast)
	})
}

func (r *Router) sendRREP(rep *RREP, nextHop packet.NodeID) {
	r.stats.RREPSent++
	r.out.SendRouting(r.routingPacket(rep, rrepSize, nextHop), nextHop)
}

func (r *Router) handleRREP(rep *RREP, prevHop packet.NodeID) {
	// Forward route to the destination through the previous hop.
	r.updateRoute(rep.Dst, prevHop, rep.HopCount+1, rep.DstSeq)

	if rep.Src == r.self {
		// Our discovery completed: flush buffered packets.
		d := r.pending[rep.Dst]
		if d == nil {
			return
		}
		delete(r.pending, rep.Dst)
		d.timer.Stop()
		r.stats.DiscoveryOK++
		nh, ok := r.NextHop(rep.Dst)
		if !ok {
			for _, pkt := range d.buffer {
				r.out.DropData(pkt, "route vanished after reply")
			}
			return
		}
		for _, pkt := range d.buffer {
			r.out.ForwardData(pkt, nh)
		}
		return
	}

	// Forward the RREP along the reverse route toward the originator.
	nh, ok := r.NextHop(rep.Src)
	if !ok {
		return // reverse route lost; the originator will retry
	}
	fwd := &RREP{Src: rep.Src, Dst: rep.Dst, DstSeq: rep.DstSeq, HopCount: rep.HopCount + 1}
	r.sendRREP(fwd, nh)
}

func (r *Router) handleRERR(rerr *RERR, prevHop packet.NodeID) {
	var propagate []Unreachable
	for _, u := range rerr.Unreachable {
		rt := r.routes[u.Dst]
		if rt == nil || !rt.valid || rt.nextHop != prevHop {
			continue
		}
		rt.valid = false
		if u.Seq > rt.seq {
			rt.seq = u.Seq
		}
		propagate = append(propagate, Unreachable{Dst: u.Dst, Seq: rt.seq})
	}
	if len(propagate) > 0 {
		r.broadcastRERR(propagate)
	}
}

// LinkFailure handles a MAC retry-exhaustion report for a frame that was
// headed to nextHop. Routes through that neighbour are invalidated and a
// RERR is broadcast; the failed data packet (if any) is re-routed when we
// still have an alternative, otherwise dropped.
func (r *Router) LinkFailure(nextHop packet.NodeID, failed *packet.Packet) {
	r.stats.LinkFailures++
	var lost []Unreachable
	for dst, rt := range r.routes {
		if rt.valid && rt.nextHop == nextHop {
			rt.valid = false
			rt.seq++
			lost = append(lost, Unreachable{Dst: dst, Seq: rt.seq})
		}
	}
	// Stable RERR ordering: map iteration order must not leak into the
	// byte-for-byte reproducible event stream.
	sort.Slice(lost, func(i, j int) bool { return lost[i].Dst < lost[j].Dst })
	if len(lost) > 0 {
		r.broadcastRERR(lost)
	}
	if failed != nil && failed.Kind == packet.KindData {
		// Re-enter the routing path: this triggers a fresh discovery at
		// the source, or a local repair attempt if we are intermediate.
		r.SendData(failed)
	}
}

func (r *Router) broadcastRERR(lost []Unreachable) {
	msg := &RERR{Unreachable: lost}
	r.stats.RERRSent++
	r.out.SendRouting(r.routingPacket(msg, msg.size(), packet.Broadcast), packet.Broadcast)
}

// updateRoute installs or refreshes a route, preferring fresher sequence
// numbers and, at equal freshness, shorter paths (RFC 3561 6.2).
func (r *Router) updateRoute(dst, nextHop packet.NodeID, hops int, seq uint32) {
	if dst == r.self {
		return
	}
	rt := r.routes[dst]
	if rt == nil {
		r.routes[dst] = &route{
			nextHop: nextHop, hops: hops, seq: seq,
			valid: true, expiry: r.sim.Now() + r.cfg.ActiveRouteTimeout,
		}
		return
	}
	stale := !rt.valid || r.sim.Now() >= rt.expiry
	if seq > rt.seq || (seq == rt.seq && (hops < rt.hops || stale)) || stale {
		rt.nextHop = nextHop
		rt.hops = hops
		rt.seq = seq
		rt.valid = true
		rt.expiry = r.sim.Now() + r.cfg.ActiveRouteTimeout
	}
}

func (r *Router) routingPacket(payload any, size int, macDst packet.NodeID) *packet.Packet {
	return &packet.Packet{
		UID:     r.ids.Next(),
		Kind:    packet.KindRouting,
		Src:     r.self,
		Dst:     macDst,
		TTL:     32,
		Size:    size + packet.IPHeaderSize,
		MACSrc:  r.self,
		MACDst:  macDst,
		Payload: payload,
	}
}
