package aodv

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

// miniNet wires a few routers into a static chain so protocol-level
// scenarios (crash, reboot, re-discovery) run without the full node/MAC
// stack. Frames hop with a fixed latency; crashed routers neither send
// nor receive.
type miniNet struct {
	t         *testing.T
	s         *sim.Simulator
	routers   map[packet.NodeID]*Router
	neighbors map[packet.NodeID][]packet.NodeID
	crashed   map[packet.NodeID]bool
	delivered []*packet.Packet
	dropped   map[string]int
}

const miniHop = 2 * sim.Millisecond

func newMiniChain(t *testing.T, n int) *miniNet {
	t.Helper()
	net := &miniNet{
		t:         t,
		s:         sim.New(1),
		routers:   make(map[packet.NodeID]*Router),
		neighbors: make(map[packet.NodeID][]packet.NodeID),
		crashed:   make(map[packet.NodeID]bool),
		dropped:   make(map[string]int),
	}
	var ids packet.IDGen
	for i := 0; i < n; i++ {
		id := packet.NodeID(i)
		r, err := New(net.s, id, &miniPort{net: net, self: id}, &ids, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		net.routers[id] = r
		if i > 0 {
			net.neighbors[id] = append(net.neighbors[id], id-1)
			net.neighbors[id-1] = append(net.neighbors[id-1], id)
		}
	}
	return net
}

// miniPort adapts one router's Output to the miniNet fabric.
type miniPort struct {
	net  *miniNet
	self packet.NodeID
}

func (p *miniPort) SendRouting(pkt *packet.Packet, nextHop packet.NodeID) {
	net := p.net
	if net.crashed[p.self] {
		return
	}
	for _, nb := range net.neighbors[p.self] {
		if nextHop != packet.Broadcast && nb != nextHop {
			continue
		}
		nb := nb
		cp := pkt.Clone()
		cp.MACSrc = p.self
		net.s.Schedule(miniHop, func() {
			if !net.crashed[nb] {
				net.routers[nb].HandleRouting(cp)
			}
		})
	}
}

func (p *miniPort) ForwardData(pkt *packet.Packet, nextHop packet.NodeID) {
	net := p.net
	if net.crashed[p.self] {
		return
	}
	if net.crashed[nextHop] {
		// The MAC would exhaust retries against a silent radio; report
		// the break back to the router, which re-routes or re-discovers.
		self := p.self
		net.s.Schedule(miniHop, func() {
			net.routers[self].LinkFailure(nextHop, pkt)
		})
		return
	}
	nb := nextHop
	cp := pkt
	net.s.Schedule(miniHop, func() {
		if net.crashed[nb] {
			return
		}
		if cp.Dst == nb {
			net.delivered = append(net.delivered, cp)
			return
		}
		cp.MACSrc = p.self
		net.routers[nb].SendData(cp)
	})
}

func (p *miniPort) DropData(pkt *packet.Packet, reason string) {
	p.net.dropped[reason]++
}

// TestCrashRebootRouteReestablishment is the regression for routing
// around a crashed relay: 0-1-2 chain, route 0->2 established, node 1
// crashes (wiping its state), node 0's retransmission hits a link
// failure and re-discovers; once 1 reboots, the retried flood passes
// through and the buffered packet is delivered.
func TestCrashRebootRouteReestablishment(t *testing.T) {
	net := newMiniChain(t, 3)
	r0, r1 := net.routers[0], net.routers[1]

	r0.SendData(&packet.Packet{UID: 1, Kind: packet.KindData, Src: 0, Dst: 2, Size: 1000})
	net.s.Run(sim.Second)
	if len(net.delivered) != 1 {
		t.Fatalf("warm-up delivery failed: %d packets", len(net.delivered))
	}
	if _, ok := r0.NextHop(2); !ok {
		t.Fatal("no route 0->2 after warm-up")
	}

	// Crash the relay: silent radio, volatile state gone.
	net.crashed[1] = true
	r1.Reset()

	r0.SendData(&packet.Packet{UID: 2, Kind: packet.KindData, Src: 0, Dst: 2, Size: 1000})
	net.s.Run(net.s.Now() + 300*sim.Millisecond)
	if len(net.delivered) != 1 {
		t.Fatal("packet delivered across a crashed relay")
	}
	if _, ok := r0.NextHop(2); ok {
		t.Fatal("route through crashed relay not invalidated")
	}

	// Reboot inside the retry window; the next RREQ retry re-establishes.
	net.crashed[1] = false
	net.s.Run(net.s.Now() + 5*sim.Second)

	if len(net.delivered) != 2 {
		t.Fatalf("delivered %d packets after reboot, want 2 (dropped: %v)",
			len(net.delivered), net.dropped)
	}
	if nh, ok := r0.NextHop(2); !ok || nh != 1 {
		t.Fatalf("route 0->2 after reboot = (%v, %v), want via n1", nh, ok)
	}
	if r0.Stats().LinkFailures == 0 {
		t.Fatal("link failure never reported")
	}
}

// TestResetDropsPendingDiscoveries checks Reset stops discovery timers
// and releases buffered packets.
func TestResetDropsPendingDiscoveries(t *testing.T) {
	s, r, out := newRouter(t, 0)
	r.SendData(dataTo(5))
	r.SendData(dataTo(5))
	r.SendData(dataTo(7))
	if len(out.routing) != 2 {
		t.Fatalf("started %d discoveries, want 2", len(out.routing))
	}

	r.Reset()
	if len(out.dropped) != 3 {
		t.Fatalf("reset dropped %d packets, want 3", len(out.dropped))
	}
	before := len(out.routing)
	s.Run(30 * sim.Second)
	if len(out.routing) != before {
		t.Fatal("discovery retries survived Reset")
	}
	if len(r.NextHops()) != 0 {
		t.Fatal("routes survived Reset")
	}
}

// TestCachedReplySkippedWhenRouteBacktracks: an intermediate node whose
// cached route to the requested destination points back through the
// requester must not answer from cache — doing so installs a two-node
// forwarding loop (seen after a node reboots and re-discovers while its
// neighbours still hold stale routes through it).
func TestCachedReplySkippedWhenRouteBacktracks(t *testing.T) {
	s, r, out := newRouter(t, 2)
	// Stale-but-valid route to 4 learned through neighbour 1.
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREP{Src: 2, Dst: 4, DstSeq: 5, HopCount: 1},
	})
	out.routing = nil

	// Node 1 rebooted and now asks us for 4. Our only route goes back
	// through node 1 itself.
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREQ{ID: 3, Src: 1, SrcSeq: 1, Dst: 4, DstSeq: 2, DstSeqKnown: true, HopCount: 0},
	})
	s.Run(sim.Second)

	if len(out.routing) != 1 {
		t.Fatalf("messages = %d, want 1 rebroadcast", len(out.routing))
	}
	if _, isReq := out.routing[0].pkt.Payload.(*RREQ); !isReq {
		t.Fatalf("replied from a route that backtracks through the requester: %+v",
			out.routing[0].pkt.Payload)
	}
}

// TestNextHopsSnapshot checks the loop-scan accessor reflects validity
// and expiry without refreshing lifetimes.
func TestNextHopsSnapshot(t *testing.T) {
	s, r, _ := newRouter(t, 0)
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREP{Src: 0, Dst: 4, DstSeq: 1, HopCount: 1},
	})
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 2,
		Payload: &RREP{Src: 0, Dst: 7, DstSeq: 1, HopCount: 2},
	})

	nh := r.NextHops()
	if len(nh) != 2 || nh[4] != 1 || nh[7] != 2 {
		t.Fatalf("NextHops = %v", nh)
	}

	r.LinkFailure(2, nil)
	nh = r.NextHops()
	if len(nh) != 1 || nh[4] != 1 {
		t.Fatalf("NextHops after link failure = %v", nh)
	}

	s.Run(DefaultConfig().ActiveRouteTimeout + sim.Second)
	if nh = r.NextHops(); len(nh) != 0 {
		t.Fatalf("NextHops after expiry = %v", nh)
	}
}
