package aodv

import "muzha/internal/packet"

// Message sizes in bytes (RFC 3561 wire formats).
const (
	rreqSize = 24
	rrepSize = 20
	rerrSize = 12 // base; +8 per additional unreachable destination
)

// RREQ is a route request, flooded through the network.
type RREQ struct {
	ID          uint32 // per-originator broadcast ID
	Src         packet.NodeID
	SrcSeq      uint32
	Dst         packet.NodeID
	DstSeq      uint32
	DstSeqKnown bool
	HopCount    int
	// HopLimit caps how many hops the request may traverse (expanding
	// ring search); 0 means network-wide. On the wire this rides the IP
	// TTL field, so rreqSize is unchanged.
	HopLimit int
}

// ClonePayload implements packet.Cloner so broadcast copies don't alias.
func (r *RREQ) ClonePayload() any {
	c := *r
	return &c
}

// RREP is a route reply, unicast hop-by-hop back to the originator.
type RREP struct {
	Src      packet.NodeID // originator of the discovery
	Dst      packet.NodeID // destination the route leads to
	DstSeq   uint32
	HopCount int
}

// ClonePayload implements packet.Cloner.
func (r *RREP) ClonePayload() any {
	c := *r
	return &c
}

// Unreachable names one destination lost with a link break.
type Unreachable struct {
	Dst packet.NodeID
	Seq uint32
}

// RERR is a route error, broadcast when a link break invalidates routes.
type RERR struct {
	Unreachable []Unreachable
}

// ClonePayload implements packet.Cloner.
func (r *RERR) ClonePayload() any {
	c := RERR{Unreachable: make([]Unreachable, len(r.Unreachable))}
	copy(c.Unreachable, r.Unreachable)
	return &c
}

func (r *RERR) size() int { return rerrSize + 8*max(0, len(r.Unreachable)-1) }
