package aodv

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

// stubOut records router output.
type stubOut struct {
	routing []routedMsg
	fwd     []fwdMsg
	dropped []*packet.Packet
}

type routedMsg struct {
	pkt     *packet.Packet
	nextHop packet.NodeID
}

type fwdMsg struct {
	pkt     *packet.Packet
	nextHop packet.NodeID
}

func (o *stubOut) SendRouting(p *packet.Packet, nh packet.NodeID) {
	o.routing = append(o.routing, routedMsg{p, nh})
}
func (o *stubOut) ForwardData(p *packet.Packet, nh packet.NodeID) {
	o.fwd = append(o.fwd, fwdMsg{p, nh})
}
func (o *stubOut) DropData(p *packet.Packet, reason string) {
	o.dropped = append(o.dropped, p)
}

func newRouter(t *testing.T, self packet.NodeID) (*sim.Simulator, *Router, *stubOut) {
	t.Helper()
	s := sim.New(1)
	out := &stubOut{}
	var ids packet.IDGen
	r, err := New(s, self, out, &ids, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, r, out
}

func dataTo(dst packet.NodeID) *packet.Packet {
	return &packet.Packet{Kind: packet.KindData, Dst: dst, Size: 1000}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ActiveRouteTimeout = 0 },
		func(c *Config) { c.DiscoveryTimeout = 0 },
		func(c *Config) { c.RREQRetries = -1 },
		func(c *Config) { c.MaxBuffered = 0 },
		func(c *Config) { c.BroadcastJitter = -1 },
		func(c *Config) { c.TTLStart = -1 },
		func(c *Config) { c.TTLIncrement = -2 },
		func(c *Config) { c.TTLThreshold = -1 },
		func(c *Config) { c.SeenCacheSize = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSendDataWithoutRouteStartsDiscovery(t *testing.T) {
	_, r, out := newRouter(t, 0)
	pkt := dataTo(4)
	r.SendData(pkt)

	if len(out.routing) != 1 {
		t.Fatalf("routing messages = %d, want 1 RREQ", len(out.routing))
	}
	req, ok := out.routing[0].pkt.Payload.(*RREQ)
	if !ok {
		t.Fatalf("payload is %T, want *RREQ", out.routing[0].pkt.Payload)
	}
	if req.Src != 0 || req.Dst != 4 || req.HopCount != 0 {
		t.Fatalf("RREQ = %+v", req)
	}
	if out.routing[0].nextHop != packet.Broadcast {
		t.Fatal("RREQ must be broadcast")
	}
	if len(out.fwd) != 0 {
		t.Fatal("data forwarded before route exists")
	}
}

func TestRREPCompletesDiscoveryAndFlushesBuffer(t *testing.T) {
	_, r, out := newRouter(t, 0)
	p1, p2 := dataTo(4), dataTo(4)
	r.SendData(p1)
	r.SendData(p2)
	if len(out.routing) != 1 {
		t.Fatalf("second SendData started a second discovery: %d msgs", len(out.routing))
	}

	// RREP for destination 4 arrives via neighbour 1.
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREP{Src: 0, Dst: 4, DstSeq: 1, HopCount: 3},
	})

	if len(out.fwd) != 2 {
		t.Fatalf("flushed %d packets, want 2", len(out.fwd))
	}
	for _, f := range out.fwd {
		if f.nextHop != 1 {
			t.Fatalf("flushed via %v, want n1", f.nextHop)
		}
	}
	if nh, ok := r.NextHop(4); !ok || nh != 1 {
		t.Fatalf("route after RREP: nh=%v ok=%v", nh, ok)
	}
	if r.HopCount(4) != 4 {
		t.Fatalf("hop count = %d, want 4 (3+1)", r.HopCount(4))
	}
	st := r.Stats()
	if st.Discoveries != 1 || st.DiscoveryOK != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendDataWithRouteForwardsDirectly(t *testing.T) {
	_, r, out := newRouter(t, 0)
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREP{Src: 0, Dst: 4, DstSeq: 1, HopCount: 3},
	})
	out.fwd = nil

	pkt := dataTo(4)
	r.SendData(pkt)
	if len(out.fwd) != 1 || out.fwd[0].pkt != pkt || out.fwd[0].nextHop != 1 {
		t.Fatalf("direct forward wrong: %+v", out.fwd)
	}
}

func TestDiscoveryRetriesThenFails(t *testing.T) {
	s, r, out := newRouter(t, 0)
	pkt := dataTo(9)
	r.SendData(pkt)
	s.Run(time30s())

	// 1 initial + RREQRetries rebroadcasts.
	wantRREQ := 1 + DefaultConfig().RREQRetries
	got := 0
	for _, m := range out.routing {
		if _, ok := m.pkt.Payload.(*RREQ); ok {
			got++
		}
	}
	if got != wantRREQ {
		t.Fatalf("RREQ attempts = %d, want %d", got, wantRREQ)
	}
	if len(out.dropped) != 1 || out.dropped[0] != pkt {
		t.Fatalf("dropped = %d packets, want the buffered one", len(out.dropped))
	}
	if r.Stats().DiscoveryErr != 1 {
		t.Fatalf("DiscoveryErr = %d", r.Stats().DiscoveryErr)
	}
}

func time30s() sim.Time { return 30 * sim.Second }

func TestBufferOverflowDrops(t *testing.T) {
	_, r, out := newRouter(t, 0)
	n := DefaultConfig().MaxBuffered + 5
	for i := 0; i < n; i++ {
		r.SendData(dataTo(9))
	}
	if len(out.dropped) != 5 {
		t.Fatalf("dropped %d, want 5 over the buffer limit", len(out.dropped))
	}
}

func TestRREQAtDestinationGeneratesRREP(t *testing.T) {
	_, r, out := newRouter(t, 4)
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 3,
		Payload: &RREQ{ID: 1, Src: 0, SrcSeq: 1, Dst: 4, HopCount: 3},
	})

	if len(out.routing) != 1 {
		t.Fatalf("messages = %d, want 1 RREP", len(out.routing))
	}
	rep, ok := out.routing[0].pkt.Payload.(*RREP)
	if !ok {
		t.Fatalf("payload = %T", out.routing[0].pkt.Payload)
	}
	if rep.Src != 0 || rep.Dst != 4 || rep.HopCount != 0 {
		t.Fatalf("RREP = %+v", rep)
	}
	if out.routing[0].nextHop != 3 {
		t.Fatal("RREP must unicast to the previous hop")
	}
	// Reverse route to the originator must exist.
	if nh, ok := r.NextHop(0); !ok || nh != 3 {
		t.Fatalf("reverse route: nh=%v ok=%v", nh, ok)
	}
}

func TestRREQAtIntermediateRebroadcastsWithJitter(t *testing.T) {
	s, r, out := newRouter(t, 2)
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREQ{ID: 1, Src: 0, SrcSeq: 1, Dst: 4, HopCount: 1},
	})
	// Rebroadcast is jittered: nothing sent synchronously.
	if len(out.routing) != 0 {
		t.Fatal("rebroadcast was not jittered")
	}
	s.Run(DefaultConfig().BroadcastJitter + sim.Millisecond)
	if len(out.routing) != 1 {
		t.Fatalf("rebroadcasts = %d, want 1", len(out.routing))
	}
	fwd := out.routing[0].pkt.Payload.(*RREQ)
	if fwd.HopCount != 2 {
		t.Fatalf("rebroadcast hop count = %d, want 2", fwd.HopCount)
	}
}

func TestDuplicateRREQSuppressed(t *testing.T) {
	s, r, out := newRouter(t, 2)
	req := func(from packet.NodeID, hc int) *packet.Packet {
		return &packet.Packet{
			Kind: packet.KindRouting, MACSrc: from,
			Payload: &RREQ{ID: 7, Src: 0, SrcSeq: 1, Dst: 4, HopCount: hc},
		}
	}
	r.HandleRouting(req(1, 1))
	r.HandleRouting(req(3, 2)) // same flood, different neighbour
	s.Run(sim.Second)
	if len(out.routing) != 1 {
		t.Fatalf("duplicate flood rebroadcast: %d messages", len(out.routing))
	}
}

func TestIntermediateWithFreshRouteReplies(t *testing.T) {
	_, r, out := newRouter(t, 2)
	// Install a route to 4 with seq 5.
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 3,
		Payload: &RREP{Src: 2, Dst: 4, DstSeq: 5, HopCount: 1},
	})
	out.routing = nil

	// RREQ asking for seq >= 3: our seq-5 route qualifies.
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREQ{ID: 9, Src: 0, SrcSeq: 2, Dst: 4, DstSeq: 3, DstSeqKnown: true, HopCount: 1},
	})
	if len(out.routing) != 1 {
		t.Fatalf("messages = %d, want 1 intermediate RREP", len(out.routing))
	}
	rep, ok := out.routing[0].pkt.Payload.(*RREP)
	if !ok || rep.DstSeq != 5 || rep.HopCount != 2 {
		t.Fatalf("intermediate RREP = %+v", rep)
	}
}

func TestRREPForwardedTowardOriginator(t *testing.T) {
	s, r, out := newRouter(t, 2)
	// Reverse route to originator 0 via neighbour 1, established by the
	// RREQ flood passing through.
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREQ{ID: 1, Src: 0, SrcSeq: 1, Dst: 4, HopCount: 1},
	})
	s.Run(sim.Second)
	out.routing = nil

	// RREP travelling back from 4 via neighbour 3.
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 3,
		Payload: &RREP{Src: 0, Dst: 4, DstSeq: 2, HopCount: 1},
	})
	if len(out.routing) != 1 {
		t.Fatalf("forwarded RREPs = %d, want 1", len(out.routing))
	}
	if out.routing[0].nextHop != 1 {
		t.Fatalf("RREP forwarded to %v, want n1", out.routing[0].nextHop)
	}
	rep := out.routing[0].pkt.Payload.(*RREP)
	if rep.HopCount != 2 {
		t.Fatalf("forwarded hop count = %d, want 2", rep.HopCount)
	}
	// Both directions now routed.
	if nh, ok := r.NextHop(4); !ok || nh != 3 {
		t.Fatal("forward route missing after RREP")
	}
	if nh, ok := r.NextHop(0); !ok || nh != 1 {
		t.Fatal("reverse route missing")
	}
}

func TestLinkFailureInvalidatesAndBroadcastsRERR(t *testing.T) {
	_, r, out := newRouter(t, 2)
	// Routes to 4 and 5, both via neighbour 3; route to 0 via 1.
	for _, d := range []packet.NodeID{4, 5} {
		r.HandleRouting(&packet.Packet{
			Kind: packet.KindRouting, MACSrc: 3,
			Payload: &RREP{Src: 2, Dst: d, DstSeq: 1, HopCount: 1},
		})
	}
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREP{Src: 2, Dst: 0, DstSeq: 1, HopCount: 1},
	})
	out.routing = nil

	r.LinkFailure(3, nil)

	if _, ok := r.NextHop(4); ok {
		t.Fatal("route via broken link still valid")
	}
	if _, ok := r.NextHop(5); ok {
		t.Fatal("second route via broken link still valid")
	}
	if _, ok := r.NextHop(0); !ok {
		t.Fatal("unrelated route was invalidated")
	}
	if len(out.routing) != 1 {
		t.Fatalf("RERRs = %d, want 1", len(out.routing))
	}
	rerr, ok := out.routing[0].pkt.Payload.(*RERR)
	if !ok || len(rerr.Unreachable) != 2 {
		t.Fatalf("RERR = %+v", out.routing[0].pkt.Payload)
	}
}

func TestLinkFailureRequeuesDataPacket(t *testing.T) {
	_, r, out := newRouter(t, 0)
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREP{Src: 0, Dst: 4, DstSeq: 1, HopCount: 3},
	})
	pkt := dataTo(4)
	r.LinkFailure(1, pkt)

	// Route gone; the packet re-enters discovery (one new RREQ, packet
	// buffered, not dropped).
	if len(out.dropped) != 0 {
		t.Fatal("failed packet dropped instead of re-queued")
	}
	foundRREQ := false
	for _, m := range out.routing {
		if _, ok := m.pkt.Payload.(*RREQ); ok {
			foundRREQ = true
		}
	}
	if !foundRREQ {
		t.Fatal("no rediscovery after link failure with pending data")
	}
}

func TestRERRPropagation(t *testing.T) {
	_, r, out := newRouter(t, 2)
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 3,
		Payload: &RREP{Src: 2, Dst: 4, DstSeq: 1, HopCount: 1},
	})
	out.routing = nil

	// RERR from our next hop for destination 4: invalidate + propagate.
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 3,
		Payload: &RERR{Unreachable: []Unreachable{{Dst: 4, Seq: 2}}},
	})
	if _, ok := r.NextHop(4); ok {
		t.Fatal("route not invalidated by RERR")
	}
	if len(out.routing) != 1 {
		t.Fatalf("propagated RERRs = %d, want 1", len(out.routing))
	}

	// RERR from an unrelated neighbour must not touch routes or
	// propagate.
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 3,
		Payload: &RREP{Src: 2, Dst: 4, DstSeq: 3, HopCount: 1},
	})
	out.routing = nil
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 9,
		Payload: &RERR{Unreachable: []Unreachable{{Dst: 4, Seq: 9}}},
	})
	if _, ok := r.NextHop(4); !ok {
		t.Fatal("RERR from non-nexthop invalidated route")
	}
	if len(out.routing) != 0 {
		t.Fatal("RERR propagated without invalidating anything")
	}
}

func TestFresherSequenceReplacesRoute(t *testing.T) {
	_, r, _ := newRouter(t, 2)
	install := func(nh packet.NodeID, seq uint32, hops int) {
		r.HandleRouting(&packet.Packet{
			Kind: packet.KindRouting, MACSrc: nh,
			Payload: &RREP{Src: 2, Dst: 4, DstSeq: seq, HopCount: hops - 1},
		})
	}
	install(1, 5, 3)
	install(3, 6, 5) // fresher seq wins despite more hops
	if nh, _ := r.NextHop(4); nh != 3 {
		t.Fatalf("next hop = %v, want fresher route via n3", nh)
	}
	install(7, 6, 2) // same seq, fewer hops wins
	if nh, _ := r.NextHop(4); nh != 7 {
		t.Fatalf("next hop = %v, want shorter route via n7", nh)
	}
	install(9, 5, 1) // stale seq loses
	if nh, _ := r.NextHop(4); nh != 7 {
		t.Fatalf("next hop = %v, stale update must not win", nh)
	}
}

func TestRouteExpiry(t *testing.T) {
	s := sim.New(1)
	out := &stubOut{}
	var ids packet.IDGen
	cfg := DefaultConfig()
	cfg.ActiveRouteTimeout = sim.Second
	r, err := New(s, 0, out, &ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.HandleRouting(&packet.Packet{
		Kind: packet.KindRouting, MACSrc: 1,
		Payload: &RREP{Src: 0, Dst: 4, DstSeq: 1, HopCount: 0},
	})
	if _, ok := r.NextHop(4); !ok {
		t.Fatal("route missing immediately after install")
	}
	s.Run(2 * sim.Second)
	if _, ok := r.NextHop(4); ok {
		t.Fatal("route did not expire")
	}
	if r.HopCount(4) != -1 {
		t.Fatal("HopCount of expired route should be -1")
	}
}

func TestMessageCloning(t *testing.T) {
	req := &RREQ{ID: 1, Src: 0, Dst: 4, HopCount: 2}
	c := req.ClonePayload().(*RREQ)
	c.HopCount = 9
	if req.HopCount != 2 {
		t.Fatal("RREQ clone aliases original")
	}
	rep := &RREP{Src: 0, Dst: 4, HopCount: 1}
	c2 := rep.ClonePayload().(*RREP)
	c2.HopCount = 9
	if rep.HopCount != 1 {
		t.Fatal("RREP clone aliases original")
	}
	rerr := &RERR{Unreachable: []Unreachable{{Dst: 4, Seq: 1}}}
	c3 := rerr.ClonePayload().(*RERR)
	c3.Unreachable[0].Seq = 99
	if rerr.Unreachable[0].Seq != 1 {
		t.Fatal("RERR clone aliases original")
	}
	if rerr.size() != rerrSize {
		t.Fatalf("single-dst RERR size = %d", rerr.size())
	}
	two := &RERR{Unreachable: []Unreachable{{Dst: 4}, {Dst: 5}}}
	if two.size() != rerrSize+8 {
		t.Fatalf("two-dst RERR size = %d", two.size())
	}
}
