// Package canon produces canonical JSON: object keys sorted, numeric
// literals preserved verbatim, no insignificant whitespace. Two
// semantically identical documents always canonicalize to the same
// bytes, which makes the output safe to hash (the job daemon's
// content-addressed cache key) and safe to compare byte-for-byte (a
// cached result versus a freshly computed one).
package canon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Bytes rewrites raw JSON into canonical form. Numbers are decoded as
// json.Number so their textual representation survives the round trip
// exactly — no float re-formatting, no precision loss on large int64s.
// Object keys come out sorted because encoding/json sorts map keys.
func Bytes(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("canon: decode: %w", err)
	}
	// Reject trailing garbage so a truncated or concatenated document
	// never silently canonicalizes to its first value.
	var extra any
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("canon: trailing data after JSON value")
	}
	out, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("canon: encode: %w", err)
	}
	return out, nil
}

// JSON marshals v and canonicalizes the result.
func JSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("canon: marshal: %w", err)
	}
	return Bytes(raw)
}
