package canon

import (
	"bytes"
	"testing"
)

func TestBytesSortsKeys(t *testing.T) {
	got, err := Bytes([]byte(`{"b":1,"a":{"z":true,"y":null},"c":[{"k2":2,"k1":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":{"y":null,"z":true},"b":1,"c":[{"k1":1,"k2":2}]}`
	if string(got) != want {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestBytesPreservesNumbers(t *testing.T) {
	// Large int64s and float literals must survive verbatim — a round
	// trip through float64 would corrupt both.
	in := []byte(`{"big":9223372036854775807,"f":0.30000000000000004,"e":1e-9}`)
	got, err := Bytes(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"big":9223372036854775807,"e":1e-9,"f":0.30000000000000004}`
	if string(got) != want {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestBytesIdempotent(t *testing.T) {
	in := []byte(`{"x": [1, 2.5, "s"], "a": {"b": -7}}`)
	once, err := Bytes(in)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Bytes(once)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(once, twice) {
		t.Fatalf("not idempotent: %s vs %s", once, twice)
	}
}

func TestBytesRejectsGarbage(t *testing.T) {
	for _, in := range []string{``, `{"a":`, `{"a":1} trailing`, `{"a":1}{"b":2}`} {
		if _, err := Bytes([]byte(in)); err == nil {
			t.Errorf("Bytes(%q) accepted invalid input", in)
		}
	}
}

func TestJSON(t *testing.T) {
	got, err := JSON(map[string]any{"b": 2, "a": 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"a":1,"b":2}` {
		t.Fatalf("got %s", got)
	}
}
