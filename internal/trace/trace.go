// Package trace records packet-level events in the style of NS-2 trace
// files: one line per send/receive/forward/drop with virtual timestamp,
// node, and packet summary. Traces are how the original paper's figures
// were produced (NS-2 post-processing), and they make simulator behaviour
// auditable in tests.
package trace

import (
	"fmt"
	"io"
	"strings"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

// Op is the event kind.
type Op int

// Event kinds, mirroring NS-2's s/r/f/d/m markers.
const (
	// OpSend is a packet originated by a node's transport layer.
	OpSend Op = iota + 1
	// OpRecv is a packet delivered to a node's transport layer.
	OpRecv
	// OpForward is a packet relayed toward its next hop.
	OpForward
	// OpDrop is a packet discarded (queue overflow, TTL, no route,
	// random loss).
	OpDrop
	// OpMark is a packet congestion-marked by a router.
	OpMark
)

var opCodes = map[Op]string{
	OpSend:    "s",
	OpRecv:    "r",
	OpForward: "f",
	OpDrop:    "d",
	OpMark:    "m",
}

func (o Op) String() string {
	if s, ok := opCodes[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Event is one recorded packet event.
type Event struct {
	T      sim.Time
	Node   packet.NodeID
	Op     Op
	Reason string // drop reason, empty otherwise
	UID    uint64
	Kind   packet.Kind
	Src    packet.NodeID
	Dst    packet.NodeID
	Size   int
	Flow   int32 // 0 for non-TCP packets
	Seq    int64 // TCP sequence or ack number
	IsAck  bool
}

// Format renders the event as one NS-2-style line:
//
//	s 1.234567 _0_ data 42 f1 seq=1460 n0->n4 1500B
func (e Event) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %.6f _%d_ %s %d", e.Op, e.T.Seconds(), int32(e.Node), e.Kind, e.UID)
	if e.Flow != 0 {
		role, field := "seq", e.Seq
		if e.IsAck {
			role = "ack"
		}
		fmt.Fprintf(&b, " f%d %s=%d", e.Flow, role, field)
	}
	fmt.Fprintf(&b, " %v->%v %dB", e.Src, e.Dst, e.Size)
	if e.Reason != "" {
		fmt.Fprintf(&b, " [%s]", e.Reason)
	}
	return b.String()
}

// Recorder receives events. Implementations must be cheap; they run
// inline with the simulation.
type Recorder interface {
	Record(Event)
}

// FromPacket fills the packet-derived fields of an event.
func FromPacket(t sim.Time, node packet.NodeID, op Op, reason string, pkt *packet.Packet) Event {
	e := Event{
		T:      t,
		Node:   node,
		Op:     op,
		Reason: reason,
		UID:    pkt.UID,
		Kind:   pkt.Kind,
		Src:    pkt.Src,
		Dst:    pkt.Dst,
		Size:   pkt.Size,
	}
	if pkt.TCP != nil {
		e.Flow = pkt.TCP.FlowID
		e.IsAck = pkt.TCP.IsAck
		if pkt.TCP.IsAck {
			e.Seq = pkt.TCP.Ack
		} else {
			e.Seq = pkt.TCP.Seq
		}
	}
	return e
}

// Buffer is an in-memory recorder with query helpers, for tests and
// programmatic analysis.
type Buffer struct {
	events []Event
	limit  int
}

// NewBuffer returns a buffer retaining at most limit events (0 =
// unbounded).
func NewBuffer(limit int) *Buffer { return &Buffer{limit: limit} }

// Record implements Recorder.
func (b *Buffer) Record(e Event) {
	if b.limit > 0 && len(b.events) >= b.limit {
		return
	}
	b.events = append(b.events, e)
}

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.events) }

// Events returns a copy of the retained events.
func (b *Buffer) Events() []Event {
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Filter returns the events matching pred.
func (b *Buffer) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range b.events {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of events with the given op.
func (b *Buffer) Count(op Op) int {
	n := 0
	for _, e := range b.events {
		if e.Op == op {
			n++
		}
	}
	return n
}

var _ Recorder = (*Buffer)(nil)

// TextWriter streams formatted events to an io.Writer, one line each.
type TextWriter struct {
	w   io.Writer
	err error
}

// NewTextWriter wraps w.
func NewTextWriter(w io.Writer) *TextWriter { return &TextWriter{w: w} }

// Record implements Recorder. The first write error latches and further
// events are discarded (the simulation must not fail on trace I/O).
func (t *TextWriter) Record(e Event) {
	if t.err != nil {
		return
	}
	_, t.err = io.WriteString(t.w, e.Format()+"\n")
}

// Err returns the first write error, if any.
func (t *TextWriter) Err() error { return t.err }

var _ Recorder = (*TextWriter)(nil)

// Multi fans events out to several recorders.
type Multi []Recorder

// Record implements Recorder.
func (m Multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}

var _ Recorder = (Multi)(nil)
