package trace

import (
	"errors"
	"strings"
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

func sampleEvent() Event {
	return Event{
		T:    1234567 * sim.Microsecond,
		Node: 2,
		Op:   OpForward,
		UID:  42,
		Kind: packet.KindData,
		Src:  0,
		Dst:  4,
		Size: 1500,
		Flow: 1,
		Seq:  1460,
	}
}

func TestEventFormat(t *testing.T) {
	got := sampleEvent().Format()
	want := "f 1.234567 _2_ data 42 f1 seq=1460 n0->n4 1500B"
	if got != want {
		t.Fatalf("Format = %q, want %q", got, want)
	}
}

func TestEventFormatAckAndDrop(t *testing.T) {
	e := sampleEvent()
	e.Op = OpDrop
	e.Reason = "queue overflow"
	e.IsAck = true
	e.Seq = 2920
	got := e.Format()
	if !strings.Contains(got, "ack=2920") || !strings.Contains(got, "[queue overflow]") {
		t.Fatalf("Format = %q", got)
	}
	if !strings.HasPrefix(got, "d ") {
		t.Fatalf("drop prefix missing: %q", got)
	}
}

func TestEventFormatRoutingPacket(t *testing.T) {
	e := Event{
		T: sim.Second, Node: 1, Op: OpSend,
		UID: 7, Kind: packet.KindRouting, Src: 1, Dst: packet.Broadcast, Size: 44,
	}
	got := e.Format()
	want := "s 1.000000 _1_ routing 7 n1->* 44B"
	if got != want {
		t.Fatalf("Format = %q, want %q", got, want)
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpSend, "s"}, {OpRecv, "r"}, {OpForward, "f"}, {OpDrop, "d"}, {OpMark, "m"},
		{Op(99), "op(99)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d) = %q, want %q", int(tt.op), got, tt.want)
		}
	}
}

func TestFromPacket(t *testing.T) {
	pkt := &packet.Packet{
		UID: 9, Kind: packet.KindData, Src: 0, Dst: 4, Size: 1500,
		TCP: &packet.TCPHeader{FlowID: 3, Seq: 2920},
	}
	e := FromPacket(2*sim.Second, 1, OpRecv, "", pkt)
	if e.UID != 9 || e.Flow != 3 || e.Seq != 2920 || e.IsAck {
		t.Fatalf("FromPacket = %+v", e)
	}

	ack := &packet.Packet{
		UID: 10, Kind: packet.KindData, Src: 4, Dst: 0, Size: 40,
		TCP: &packet.TCPHeader{FlowID: 3, Ack: 4380, IsAck: true},
	}
	e = FromPacket(2*sim.Second, 1, OpRecv, "", ack)
	if !e.IsAck || e.Seq != 4380 {
		t.Fatalf("ack event = %+v", e)
	}
}

func TestBufferRecordAndQuery(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 5; i++ {
		e := sampleEvent()
		if i%2 == 0 {
			e.Op = OpDrop
		}
		b.Record(e)
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := b.Count(OpDrop); got != 3 {
		t.Fatalf("Count(drop) = %d, want 3", got)
	}
	if got := len(b.Filter(func(e Event) bool { return e.Op == OpForward })); got != 2 {
		t.Fatalf("Filter = %d, want 2", got)
	}
	// Events returns a copy.
	evs := b.Events()
	evs[0].UID = 999
	if b.Events()[0].UID == 999 {
		t.Fatal("Events leaked internal slice")
	}
}

func TestBufferLimit(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 10; i++ {
		b.Record(sampleEvent())
	}
	if b.Len() != 3 {
		t.Fatalf("limited buffer holds %d, want 3", b.Len())
	}
}

func TestTextWriter(t *testing.T) {
	var sb strings.Builder
	w := NewTextWriter(&sb)
	w.Record(sampleEvent())
	w.Record(sampleEvent())
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after--
	return len(p), nil
}

func TestTextWriterLatchesError(t *testing.T) {
	w := NewTextWriter(&failWriter{after: 1})
	w.Record(sampleEvent())
	if w.Err() != nil {
		t.Fatal("unexpected early error")
	}
	w.Record(sampleEvent())
	if w.Err() == nil {
		t.Fatal("write error not captured")
	}
	w.Record(sampleEvent()) // must not panic or overwrite the error
	if w.Err().Error() != "disk full" {
		t.Fatalf("error = %v", w.Err())
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewBuffer(0), NewBuffer(0)
	m := Multi{a, b}
	m.Record(sampleEvent())
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out: %d, %d", a.Len(), b.Len())
	}
}
