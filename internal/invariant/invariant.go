// Package invariant provides run-time Always/Sometimes assertions in the
// style of Antithesis: properties registered once and evaluated
// continuously while a simulation runs. An Always assertion must hold at
// every check; a violation is counted and a bounded number of detail
// messages are captured, but execution continues so one run can surface
// every broken property. A Sometimes assertion records that an
// interesting state (a queue overflow, a route re-discovery) was reached
// at least once — coverage signal for the scenario fuzzer.
//
// The checker is deliberately allocation-light: assertions are
// pre-registered handles, the hot-path Check call is a counter increment,
// and detail strings are only formatted on failure. All methods are
// nil-receiver safe so instrumented code needs no guards.
package invariant

import (
	"fmt"
	"sort"

	"muzha/internal/sim"
)

// Kind distinguishes assertion classes.
type Kind int

const (
	// Always assertions must hold at every evaluation.
	Always Kind = iota + 1
	// Sometimes assertions record that a state was reached at least once.
	Sometimes
)

func (k Kind) String() string {
	switch k {
	case Always:
		return "always"
	case Sometimes:
		return "sometimes"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// maxDetails bounds the violation messages kept per assertion.
const maxDetails = 4

// Assertion is one registered property. Obtain handles from a Checker;
// the zero value and nil are inert.
type Assertion struct {
	name       string
	kind       Kind
	clock      func() sim.Time
	checks     uint64
	violations uint64
	details    []string
}

// Name returns the assertion's registered name.
func (a *Assertion) Name() string {
	if a == nil {
		return ""
	}
	return a.name
}

// Check evaluates an Always condition. On failure the format/args are
// rendered (prefixed with the virtual time when a clock is set) and the
// violation counted. It returns ok so callers can chain on it.
func (a *Assertion) Check(ok bool, format string, args ...any) bool {
	if a == nil {
		return ok
	}
	a.checks++
	if !ok {
		a.fail(fmt.Sprintf(format, args...))
	}
	return ok
}

// Checked records a passing evaluation without a condition; use when the
// property was verified by construction on this path.
func (a *Assertion) Checked() {
	if a != nil {
		a.checks++
	}
}

// Fail records a violation directly with a pre-rendered detail.
func (a *Assertion) Fail(detail string) {
	if a == nil {
		return
	}
	a.checks++
	a.fail(detail)
}

func (a *Assertion) fail(detail string) {
	a.violations++
	if len(a.details) < maxDetails {
		if a.clock != nil {
			detail = fmt.Sprintf("t=%v: %s", a.clock(), detail)
		}
		a.details = append(a.details, detail)
	}
}

// Reach marks a Sometimes assertion as reached.
func (a *Assertion) Reach() {
	if a != nil {
		a.checks++
	}
}

// Violations returns the violation count.
func (a *Assertion) Violations() uint64 {
	if a == nil {
		return 0
	}
	return a.violations
}

// Result is one assertion's outcome, exported for reporting.
type Result struct {
	Name string
	Kind string
	// Checks counts evaluations (Always) or reaches (Sometimes).
	Checks uint64
	// Violations counts failed Always evaluations; always 0 for
	// Sometimes assertions.
	Violations uint64
	// Details holds up to a few rendered violation messages.
	Details []string
}

// Checker owns a run's assertions. Not safe for concurrent use; the
// simulator is single-threaded.
type Checker struct {
	clock  func() sim.Time
	byName map[string]*Assertion
	order  []*Assertion
}

// New returns an empty checker. clock, when non-nil, timestamps
// violation details with the virtual time.
func New(clock func() sim.Time) *Checker {
	return &Checker{clock: clock, byName: make(map[string]*Assertion)}
}

// Always registers (or retrieves) an Always assertion by name. Multiple
// instrumentation sites sharing a name share counters.
func (c *Checker) Always(name string) *Assertion { return c.register(name, Always) }

// Sometimes registers (or retrieves) a Sometimes assertion by name.
func (c *Checker) Sometimes(name string) *Assertion { return c.register(name, Sometimes) }

func (c *Checker) register(name string, kind Kind) *Assertion {
	if c == nil {
		return nil
	}
	if a, ok := c.byName[name]; ok {
		return a
	}
	a := &Assertion{name: name, kind: kind, clock: c.clock}
	c.byName[name] = a
	c.order = append(c.order, a)
	return a
}

// Violations returns the total Always violations across all assertions.
func (c *Checker) Violations() uint64 {
	if c == nil {
		return 0
	}
	var n uint64
	for _, a := range c.order {
		n += a.violations
	}
	return n
}

// Coverage returns the sorted names of the Sometimes assertions that
// have been reached at least once — the per-run coverage export the
// chaos fuzzer's corpus is keyed by.
func (c *Checker) Coverage() []string {
	if c == nil {
		return nil
	}
	var out []string
	for _, a := range c.order {
		if a.kind == Sometimes && a.checks > 0 {
			out = append(out, a.name)
		}
	}
	sort.Strings(out)
	return out
}

// Report returns every assertion's outcome in registration order.
func (c *Checker) Report() []Result {
	if c == nil {
		return nil
	}
	out := make([]Result, 0, len(c.order))
	for _, a := range c.order {
		r := Result{Name: a.name, Kind: a.kind.String(), Checks: a.checks, Violations: a.violations}
		if len(a.details) > 0 {
			r.Details = append([]string(nil), a.details...)
		}
		out = append(out, r)
	}
	return out
}

// Ledger tracks packet conservation: every transport-layer delivery must
// correspond to a packet some node actually originated. Retransmissions
// and MAC-duplicate deliveries reuse originated UIDs, so deliveries are
// not required to be unique — only to exist.
//
// The ledger is memory-bounded: a UID lives in the outstanding set from
// Originate until its first Delivered or Dropped, then moves to a
// fixed-capacity cooling ring that still satisfies late lookups (a MAC
// duplicate can arrive after the first copy was delivered, and a
// salvaged retransmission can deliver after an earlier copy dropped).
// Once ledgerCooledCap newer UIDs have retired, the slot is recycled;
// a duplicate arriving later than that would report a false violation,
// but the ring holds ~65k packet lifetimes — orders of magnitude past
// any 802.11 retry/queue latency the stack can produce. Resident state
// is therefore O(in-flight + ring), not O(run history).
type Ledger struct {
	a           *Assertion
	outstanding map[uint64]struct{}
	cooled      map[uint64]struct{}
	ring        []uint64
	ringPos     int
	peak        int
}

// ledgerCooledCap bounds how many retired UIDs stay queryable.
const ledgerCooledCap = 1 << 16

// NewLedger binds a conservation ledger to an assertion (usually
// checker.Always("packet-conservation")).
func NewLedger(a *Assertion) *Ledger {
	return &Ledger{
		a:           a,
		outstanding: make(map[uint64]struct{}),
		cooled:      make(map[uint64]struct{}),
	}
}

// Originate records that uid entered the network at a transport sender.
func (l *Ledger) Originate(uid uint64) {
	if l == nil {
		return
	}
	l.outstanding[uid] = struct{}{}
	if len(l.outstanding) > l.peak {
		l.peak = len(l.outstanding)
	}
}

// Delivered asserts that uid was previously originated and retires it
// from the outstanding set.
func (l *Ledger) Delivered(uid uint64) {
	if l == nil {
		return
	}
	_, out := l.outstanding[uid]
	_, cool := l.cooled[uid]
	l.a.Check(out || cool, "packet uid %d delivered but never originated", uid)
	if out {
		l.retire(uid)
	}
}

// Dropped retires uid after a terminal drop (queue overflow, TTL
// expiry, route failure, crash flush, ...). Unknown or zero UIDs are
// ignored: routing-protocol packets carry UIDs but are never
// originated, and pre-UID drops have nothing to retire.
func (l *Ledger) Dropped(uid uint64) {
	if l == nil {
		return
	}
	if _, ok := l.outstanding[uid]; ok {
		l.retire(uid)
	}
}

// Outstanding returns the number of originated-but-unretired UIDs;
// Peak returns the high-water mark. Both exist so tests can prove the
// ledger stays bounded.
func (l *Ledger) Outstanding() int { return len(l.outstanding) }
func (l *Ledger) Peak() int        { return l.peak }

func (l *Ledger) retire(uid uint64) {
	delete(l.outstanding, uid)
	if l.ring == nil {
		l.ring = make([]uint64, ledgerCooledCap)
	}
	if old := l.ring[l.ringPos]; old != 0 {
		delete(l.cooled, old)
	}
	l.ring[l.ringPos] = uid
	l.ringPos = (l.ringPos + 1) % len(l.ring)
	l.cooled[uid] = struct{}{}
}

// LoopFree walks a next-hop graph for one destination and asserts it is
// cycle-free. nextHop maps node -> next hop for nodes holding a valid
// route; nodes absent from the map terminate a walk (no route, or the
// destination itself). Returns false when a cycle was found.
func LoopFree(a *Assertion, dst int32, nextHop map[int32]int32) bool {
	if len(nextHop) == 0 {
		a.Checked()
		return true
	}
	// Order start nodes for deterministic violation details.
	starts := make([]int32, 0, len(nextHop))
	for n := range nextHop {
		starts = append(starts, n)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	const done = -2 // walked and proven loop-free
	state := make(map[int32]int32, len(nextHop))
	ok := true
	for _, start := range starts {
		// Follow the chain, marking nodes with the walk's start; meeting
		// the same mark again means a cycle.
		n := start
		for {
			if state[n] == done {
				break
			}
			if state[n] == start+1 { // +1 so the zero value stays "unvisited"
				ok = a.Check(false, "routing loop to n%d through n%d", dst, n) && ok
				break
			}
			state[n] = start + 1
			nh, has := nextHop[n]
			if !has || nh == dst {
				break
			}
			n = nh
		}
		// Mark the walked chain as settled.
		m := start
		for state[m] == start+1 {
			state[m] = done
			nh, has := nextHop[m]
			if !has {
				break
			}
			m = nh
		}
	}
	if ok {
		a.Checked()
	}
	return ok
}
