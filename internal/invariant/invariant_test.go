package invariant

import (
	"strings"
	"testing"

	"muzha/internal/sim"
)

func TestAlwaysCountsAndDetails(t *testing.T) {
	s := sim.New(1)
	c := New(s.Now)
	a := c.Always("queue-bound")
	for i := 0; i < 10; i++ {
		a.Check(i < 8, "len %d over limit", i)
	}
	if a.Violations() != 2 {
		t.Fatalf("violations = %d, want 2", a.Violations())
	}
	if c.Violations() != 2 {
		t.Fatalf("checker violations = %d, want 2", c.Violations())
	}
	rep := c.Report()
	if len(rep) != 1 || rep[0].Name != "queue-bound" || rep[0].Kind != "always" {
		t.Fatalf("report = %+v", rep)
	}
	if rep[0].Checks != 10 || rep[0].Violations != 2 {
		t.Fatalf("report counters = %+v", rep[0])
	}
	if len(rep[0].Details) != 2 || !strings.Contains(rep[0].Details[0], "len 8 over limit") {
		t.Fatalf("details = %v", rep[0].Details)
	}
}

func TestDetailCaptureIsBounded(t *testing.T) {
	c := New(nil)
	a := c.Always("x")
	for i := 0; i < 100; i++ {
		a.Fail("boom")
	}
	rep := c.Report()
	if len(rep[0].Details) != maxDetails {
		t.Fatalf("details kept = %d, want %d", len(rep[0].Details), maxDetails)
	}
	if rep[0].Violations != 100 {
		t.Fatalf("violations = %d, want 100", rep[0].Violations)
	}
}

func TestSharedRegistration(t *testing.T) {
	c := New(nil)
	a1 := c.Always("shared")
	a2 := c.Always("shared")
	if a1 != a2 {
		t.Fatal("same name must return the same assertion")
	}
	a1.Check(true, "")
	a2.Check(false, "bad")
	if got := c.Report(); len(got) != 1 || got[0].Checks != 2 || got[0].Violations != 1 {
		t.Fatalf("report = %+v", got)
	}
}

func TestSometimesReach(t *testing.T) {
	c := New(nil)
	hit := c.Sometimes("queue-overflow")
	c.Sometimes("never")
	hit.Reach()
	hit.Reach()
	rep := c.Report()
	if rep[0].Checks != 2 || rep[0].Kind != "sometimes" {
		t.Fatalf("reached assertion = %+v", rep[0])
	}
	if rep[1].Checks != 0 {
		t.Fatalf("unreached assertion = %+v", rep[1])
	}
	if c.Violations() != 0 {
		t.Fatal("sometimes assertions must not count as violations")
	}
}

func TestNilSafety(t *testing.T) {
	var a *Assertion
	a.Check(false, "ignored")
	a.Fail("ignored")
	a.Reach()
	a.Checked()
	if a.Violations() != 0 || a.Name() != "" {
		t.Fatal("nil assertion must be inert")
	}
	var c *Checker
	if c.Always("x") != nil || c.Violations() != 0 || c.Report() != nil {
		t.Fatal("nil checker must be inert")
	}
	var l *Ledger
	l.Originate(1)
	l.Delivered(1)
	l.Dropped(1)
}

func TestLedgerConservation(t *testing.T) {
	c := New(nil)
	l := NewLedger(c.Always("packet-conservation"))
	l.Originate(7)
	l.Delivered(7)
	l.Delivered(7) // duplicate delivery of a real packet is allowed
	if c.Violations() != 0 {
		t.Fatalf("violations = %d, want 0", c.Violations())
	}
	l.Delivered(99)
	if c.Violations() != 1 {
		t.Fatalf("violations = %d, want 1 after conjured packet", c.Violations())
	}
}

func TestLedgerBounded(t *testing.T) {
	c := New(nil)
	l := NewLedger(c.Always("packet-conservation"))
	// A long run's worth of originate/retire cycles must not accumulate
	// state: outstanding drains to zero and total resident UIDs stay at
	// the cooling-ring capacity.
	const n = 4 * ledgerCooledCap
	for uid := uint64(1); uid <= n; uid++ {
		l.Originate(uid)
		if uid%2 == 0 {
			l.Delivered(uid)
		} else {
			l.Dropped(uid)
		}
	}
	if got := l.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d, want 0 after full retirement", got)
	}
	if len(l.cooled) > ledgerCooledCap {
		t.Fatalf("cooled set %d exceeds ring capacity %d", len(l.cooled), ledgerCooledCap)
	}
	if c.Violations() != 0 {
		t.Fatalf("violations = %d, want 0", c.Violations())
	}
}

func TestLedgerLateDuplicateAfterRetire(t *testing.T) {
	c := New(nil)
	l := NewLedger(c.Always("packet-conservation"))
	l.Originate(7)
	l.Delivered(7)
	// The UID has been retired to the cooling ring; a MAC-duplicate
	// delivery arriving later must still pass.
	l.Delivered(7)
	if c.Violations() != 0 {
		t.Fatalf("violations = %d, want 0 for cooled duplicate", c.Violations())
	}
	// A salvaged copy delivering after a drop likewise.
	l.Originate(8)
	l.Dropped(8)
	l.Delivered(8)
	if c.Violations() != 0 {
		t.Fatalf("violations = %d, want 0 for delivery after drop", c.Violations())
	}
}

func TestLedgerDroppedUnknown(t *testing.T) {
	c := New(nil)
	l := NewLedger(c.Always("packet-conservation"))
	l.Dropped(0)  // pre-UID drop
	l.Dropped(42) // routing packet UID, never originated
	if c.Violations() != 0 || l.Outstanding() != 0 {
		t.Fatal("unknown drops must be inert")
	}
}

func TestLedgerPeak(t *testing.T) {
	c := New(nil)
	l := NewLedger(c.Always("packet-conservation"))
	for uid := uint64(1); uid <= 10; uid++ {
		l.Originate(uid)
	}
	for uid := uint64(1); uid <= 10; uid++ {
		l.Delivered(uid)
	}
	if l.Peak() != 10 || l.Outstanding() != 0 {
		t.Fatalf("peak = %d outstanding = %d, want 10 and 0", l.Peak(), l.Outstanding())
	}
}

func TestLoopFree(t *testing.T) {
	c := New(nil)
	a := c.Always("route-loop-free")

	// 0 -> 1 -> 2 -> dst(3): clean chain.
	if !LoopFree(a, 3, map[int32]int32{0: 1, 1: 2, 2: 3}) {
		t.Fatal("chain flagged as loop")
	}
	if c.Violations() != 0 {
		t.Fatalf("violations = %d, want 0", c.Violations())
	}

	// 0 -> 1 -> 0: two-node loop.
	if LoopFree(a, 3, map[int32]int32{0: 1, 1: 0}) {
		t.Fatal("loop not detected")
	}
	if c.Violations() == 0 {
		t.Fatal("loop must record a violation")
	}

	// Self-loop.
	before := c.Violations()
	if LoopFree(a, 5, map[int32]int32{2: 2}) {
		t.Fatal("self-loop not detected")
	}
	if c.Violations() == before {
		t.Fatal("self-loop must record a violation")
	}

	// Empty table is trivially loop-free.
	if !LoopFree(a, 1, nil) {
		t.Fatal("empty table flagged")
	}
}
