package app

import (
	"math"
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

type wire struct{ sent []*packet.Packet }

func (w *wire) send(p *packet.Packet) { w.sent = append(w.sent, p) }

func TestCBRValidation(t *testing.T) {
	bad := []CBRConfig{
		{RateBps: 0, PacketSize: 100},
		{RateBps: 1000, PacketSize: 0},
		{RateBps: 1000, PacketSize: 100, Jitter: 1},
		{RateBps: 1000, PacketSize: 100, Jitter: -0.1},
	}
	s := sim.New(1)
	w := &wire{}
	for i, cfg := range bad {
		if _, err := NewCBR(s, w.send, cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestCBRRateAccuracy(t *testing.T) {
	s := sim.New(1)
	w := &wire{}
	// 80 kbit/s at 500-byte datagrams = 20 datagrams/s.
	c, err := NewCBR(s, w.send, CBRConfig{FlowID: 1, Dst: 4, RateBps: 80_000, PacketSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	s.Run(10 * sim.Second)
	c.Stop()

	want := 200.0
	if got := float64(len(w.sent)); math.Abs(got-want) > 2 {
		t.Fatalf("datagrams = %g, want ~%g", got, want)
	}
	if c.Sent() != uint64(len(w.sent)) {
		t.Fatal("Sent counter disagrees")
	}
	p := w.sent[0]
	if p.Size != 500+packet.IPHeaderSize+8 || p.Dst != 4 || p.TCP.FlowID != 1 {
		t.Fatalf("datagram = %+v", p)
	}
}

func TestCBRJitterVariesGaps(t *testing.T) {
	s := sim.New(7)
	w := &wire{}
	c, _ := NewCBR(s, w.send, CBRConfig{FlowID: 1, Dst: 4, RateBps: 80_000, PacketSize: 500, Jitter: 0.5})
	c.Start()
	s.Run(5 * sim.Second)
	c.Stop()

	if len(w.sent) < 50 {
		t.Fatalf("too few datagrams: %d", len(w.sent))
	}
	// Gaps must vary (strict clock would make them all equal).
	gaps := make(map[int64]bool)
	for i := 1; i < len(w.sent); i++ {
		gaps[w.sent[i].SendTime-w.sent[i-1].SendTime] = true
	}
	if len(gaps) < 10 {
		t.Fatalf("jittered gaps too uniform: %d distinct values", len(gaps))
	}
}

func TestCBRStop(t *testing.T) {
	s := sim.New(1)
	w := &wire{}
	c, _ := NewCBR(s, w.send, CBRConfig{FlowID: 1, Dst: 4, RateBps: 80_000, PacketSize: 500})
	c.Start()
	s.Run(sim.Second)
	n := len(w.sent)
	c.Stop()
	s.Run(5 * sim.Second)
	if len(w.sent) > n+1 {
		t.Fatalf("source kept sending after Stop: %d -> %d", n, len(w.sent))
	}
	c.Start() // restart works
	s.Run(6 * sim.Second)
	if len(w.sent) <= n+1 {
		t.Fatal("source did not restart")
	}
}

func TestCBRSinkCounts(t *testing.T) {
	s := sim.New(1)
	k := NewCBRSink(s, 1)
	s.Schedule(100*sim.Millisecond, func() {
		k.Recv(&packet.Packet{Size: 528, SendTime: int64(40 * sim.Millisecond)})
	})
	s.RunAll()

	if k.Received() != 1 || k.Bytes() != 500 {
		t.Fatalf("sink counters: %d datagrams, %d bytes", k.Received(), k.Bytes())
	}
	if k.MeanDelay() != 60*sim.Millisecond {
		t.Fatalf("mean delay = %v, want 60ms", k.MeanDelay())
	}
	if k.FlowID() != 1 {
		t.Fatal("flow id")
	}
}

func TestCBRSinkEmpty(t *testing.T) {
	k := NewCBRSink(sim.New(1), 1)
	if k.MeanDelay() != 0 {
		t.Fatal("mean delay of empty sink should be 0")
	}
}
