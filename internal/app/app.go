// Package app provides non-TCP application agents: a constant-bit-rate
// (CBR) source over a UDP-like datagram service and its counting sink.
// The paper's experiments run without background traffic; these agents
// enable the contested-channel extension scenarios (TCP flows competing
// with unreactive real-time traffic).
package app

import (
	"fmt"

	"muzha/internal/packet"
	"muzha/internal/sim"
)

// CBRConfig parameterizes a constant-bit-rate source.
type CBRConfig struct {
	FlowID int32
	Dst    packet.NodeID
	// RateBps is the application payload rate in bit/s.
	RateBps float64
	// PacketSize is the payload bytes per datagram.
	PacketSize int
	// Jitter, in [0,1), randomizes each inter-packet gap by up to that
	// fraction, de-synchronizing multiple sources. Zero sends on a
	// strict clock.
	Jitter float64
}

// Validate reports configuration errors.
func (c CBRConfig) Validate() error {
	switch {
	case c.RateBps <= 0:
		return fmt.Errorf("app: CBR rate must be positive, got %g", c.RateBps)
	case c.PacketSize <= 0:
		return fmt.Errorf("app: CBR packet size must be positive, got %d", c.PacketSize)
	case c.Jitter < 0 || c.Jitter >= 1:
		return fmt.Errorf("app: CBR jitter must be in [0,1), got %g", c.Jitter)
	}
	return nil
}

// CBR is an unreactive constant-bit-rate datagram source. It implements
// node.Agent (it never receives anything; datagrams are one-way).
type CBR struct {
	sim  *sim.Simulator
	send func(*packet.Packet)
	cfg  CBRConfig

	running bool
	seq     int64
	sent    uint64
}

// NewCBR builds a CBR source transmitting through send.
func NewCBR(s *sim.Simulator, send func(*packet.Packet), cfg CBRConfig) (*CBR, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CBR{sim: s, send: send, cfg: cfg}, nil
}

// FlowID implements node.Agent.
func (c *CBR) FlowID() int32 { return c.cfg.FlowID }

// Recv implements node.Agent; CBR traffic is one-way, so datagrams
// arriving for the source are ignored.
func (c *CBR) Recv(*packet.Packet) {}

// Sent returns the number of datagrams transmitted.
func (c *CBR) Sent() uint64 { return c.sent }

// Start begins transmission. Safe to call once.
func (c *CBR) Start() {
	if c.running {
		return
	}
	c.running = true
	c.emit()
}

// Stop halts transmission after the current gap.
func (c *CBR) Stop() { c.running = false }

// interval returns the nominal gap between datagrams.
func (c *CBR) interval() sim.Time {
	bits := float64(c.cfg.PacketSize * 8)
	return sim.Time(bits / c.cfg.RateBps * 1e9)
}

func (c *CBR) emit() {
	if !c.running {
		return
	}
	c.seq++
	c.sent++
	c.send(&packet.Packet{
		Kind: packet.KindData,
		Dst:  c.cfg.Dst,
		Size: c.cfg.PacketSize + packet.IPHeaderSize + 8, // 8-byte UDP header
		TTL:  64,
		TCP: &packet.TCPHeader{ // reuse the transport header for flow demux
			FlowID: c.cfg.FlowID,
			Seq:    c.seq,
		},
		SendTime: int64(c.sim.Now()),
	})
	gap := c.interval()
	if c.cfg.Jitter > 0 {
		f := 1 + c.cfg.Jitter*(2*c.sim.Rand().Float64()-1)
		gap = sim.Time(float64(gap) * f)
	}
	c.sim.Schedule(gap, c.emit)
}

// CBRSink counts received datagrams and payload bytes, and measures
// one-way delay.
type CBRSink struct {
	sim    *sim.Simulator
	flowID int32

	received   uint64
	bytes      int64
	totalDelay sim.Time
}

// NewCBRSink builds a counting sink for the given flow.
func NewCBRSink(s *sim.Simulator, flowID int32) *CBRSink {
	return &CBRSink{sim: s, flowID: flowID}
}

// FlowID implements node.Agent.
func (k *CBRSink) FlowID() int32 { return k.flowID }

// Recv implements node.Agent.
func (k *CBRSink) Recv(pkt *packet.Packet) {
	k.received++
	k.bytes += int64(pkt.Size - packet.IPHeaderSize - 8)
	if pkt.SendTime > 0 {
		k.totalDelay += k.sim.Now() - sim.Time(pkt.SendTime)
	}
}

// Received returns the datagram count.
func (k *CBRSink) Received() uint64 { return k.received }

// Bytes returns the received payload bytes.
func (k *CBRSink) Bytes() int64 { return k.bytes }

// MeanDelay returns the average one-way delay, or 0 with no traffic.
func (k *CBRSink) MeanDelay() sim.Time {
	if k.received == 0 {
		return 0
	}
	return k.totalDelay / sim.Time(k.received)
}
