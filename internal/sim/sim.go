// Package sim provides the deterministic discrete-event simulation engine
// that every substrate in this repository runs on.
//
// A Simulator owns a virtual clock, a priority queue of pending events and a
// seeded random source. Events scheduled for the same instant fire in the
// order they were scheduled, so a run is a pure function of the scenario
// configuration and the seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, in nanoseconds since the start of the run.
type Time int64

// Common conversion helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the timestamp expressed in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts the timestamp to a time.Duration relative to run start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a wall-clock style duration into simulator time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Event is a scheduled callback. The zero value is not usable; events are
// created through Simulator.Schedule and friends.
type Event struct {
	at        Time
	seq       uint64
	index     int // heap index, -1 when not queued
	fn        func()
	cancelled bool
}

// Time reports when the event fires (or was due to fire).
func (e *Event) Time() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op. Returns true if the event was
// pending and is now cancelled.
func (e *Event) Cancel() bool {
	if e == nil || e.cancelled || e.index < 0 {
		return false
	}
	e.cancelled = true
	return true
}

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e != nil && !e.cancelled && e.index >= 0 }

// eventQueue implements container/heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator is the discrete-event engine. It is not safe for concurrent use;
// the whole simulation is single-threaded by design so that runs are
// deterministic.
type Simulator struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	events  uint64 // total events executed, for diagnostics

	guard      func() error // cooperative interrupt hook, see SetGuard
	guardEvery uint64
	guardErr   error
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source. All model
// randomness must come from here so a seed fully determines a run.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// EventsExecuted returns the number of events that have fired so far.
func (s *Simulator) EventsExecuted() uint64 { return s.events }

// Schedule runs fn after delay. A negative delay is an error in the model;
// it is clamped to zero so the event fires "now" (after already-queued
// events for the current instant).
func (s *Simulator) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at the given absolute virtual time. Times in the past are
// clamped to the current instant.
func (s *Simulator) At(at Time, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	if at < s.now {
		at = s.now
	}
	e := &Event{at: at, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// SetGuard installs a cooperative interrupt hook: fn is invoked every
// `every` events during Run (default 1024 when zero), and a non-nil
// return aborts the run cleanly — the error is retained and readable
// via GuardErr, and further Run calls are no-ops. Guards keyed on event
// count or virtual time are deterministic; a wall-clock guard only
// decides whether a run aborts, never what a completed run computes.
func (s *Simulator) SetGuard(every uint64, fn func() error) {
	if every == 0 {
		every = 1024
	}
	s.guardEvery = every
	s.guard = fn
}

// GuardErr returns the error that aborted the run, if the guard fired.
func (s *Simulator) GuardErr() error { return s.guardErr }

// Run executes events until the queue is empty, Stop is called, or the
// virtual clock would pass until. Events scheduled exactly at until still
// run. On return the clock has advanced to until unless Stop was called.
// It returns the virtual time at which execution stopped.
func (s *Simulator) Run(until Time) Time {
	s.drain(until)
	if !s.stopped && s.guardErr == nil && s.now < until {
		s.now = until
	}
	return s.now
}

// RunAll executes every pending event regardless of time. Unlike Run, the
// clock stops at the last executed event.
func (s *Simulator) RunAll() Time {
	const forever = Time(1<<63 - 1)
	s.drain(forever)
	return s.now
}

func (s *Simulator) drain(until Time) {
	for len(s.queue) > 0 && !s.stopped && s.guardErr == nil {
		e := s.queue[0]
		if e.at > until {
			return
		}
		heap.Pop(&s.queue)
		if e.cancelled {
			continue
		}
		if e.at < s.now {
			// Heap invariant guarantees monotone time; anything else is a bug.
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", s.now, e.at))
		}
		s.now = e.at
		s.events++
		e.fn()
		if s.guard != nil && s.events%s.guardEvery == 0 {
			if err := s.guard(); err != nil {
				s.guardErr = err
				return
			}
		}
	}
}

// Pending returns the number of queued (possibly cancelled) events.
func (s *Simulator) Pending() int { return len(s.queue) }

// Timer is a restartable single-shot timer bound to a simulator, the
// building block for protocol retransmission/backoff timers.
type Timer struct {
	sim *Simulator
	fn  func()
	ev  *Event
}

// NewTimer creates a stopped timer that runs fn when it expires.
func NewTimer(s *Simulator, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer function")
	}
	return &Timer{sim: s, fn: fn}
}

// Reset (re)arms the timer to fire after delay, cancelling any pending
// expiry.
func (t *Timer) Reset(delay Time) {
	t.Stop()
	t.ev = t.sim.Schedule(delay, t.fn)
}

// Stop cancels the timer if pending. Returns true if a pending expiry was
// cancelled.
func (t *Timer) Stop() bool {
	if t.ev != nil {
		ok := t.ev.Cancel()
		t.ev = nil
		return ok
	}
	return false
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.ev != nil && t.ev.Pending() }

// ExpiresAt returns the virtual time at which the timer will fire. Only
// meaningful when Pending.
func (t *Timer) ExpiresAt() Time {
	if t.ev == nil {
		return 0
	}
	return t.ev.Time()
}
