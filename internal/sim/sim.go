// Package sim provides the deterministic discrete-event simulation engine
// that every substrate in this repository runs on.
//
// A Simulator owns a virtual clock, a priority queue of pending events and a
// seeded random source. Events scheduled for the same instant fire in the
// order they were scheduled, so a run is a pure function of the scenario
// configuration and the seed.
//
// The engine is allocation-light by design: event objects live on a free
// list and are recycled the moment they fire or their cancellation is
// collected, the priority queue is a concrete 4-ary indexed heap (no
// interface boxing, fewer cache misses than a binary heap), and hot
// callers can schedule package-level functions with an argument instead
// of a fresh closure (ScheduleArg). Outstanding event handles are
// generation-stamped EventRef values, so a handle kept past its event's
// lifetime becomes inert instead of aliasing a recycled slot.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, in nanoseconds since the start of the run.
type Time int64

// Common conversion helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the timestamp expressed in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts the timestamp to a time.Duration relative to run start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a wall-clock style duration into simulator time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// event is a pooled scheduled callback. Slots are recycled through the
// simulator's free list when the event fires or its cancellation is
// collected; gen increments on every recycle so stale EventRef handles
// can detect that their event is gone.
type event struct {
	at  Time
	seq uint64
	// Exactly one of fn or argFn is set. argFn avoids a per-schedule
	// closure allocation for hot paths that pass their state explicitly.
	fn        func()
	argFn     func(any)
	arg       any
	sim       *Simulator
	index     int32 // heap index, -1 when not queued
	gen       uint32
	cancelled bool
}

// EventRef is a generation-stamped handle to a scheduled event. The zero
// value is inert: Cancel and Pending return false. Handles stay safe
// after the event fires — the underlying slot may be recycled for a new
// event, but the generation stamp no longer matches, so a stale Cancel
// can never hit the wrong event.
type EventRef struct {
	e   *event
	gen uint32
}

// live reports whether the handle still refers to its original event.
func (r EventRef) live() bool { return r.e != nil && r.e.gen == r.gen }

// Time reports when the event fires. Zero when the handle is stale.
func (r EventRef) Time() Time {
	if !r.live() {
		return 0
	}
	return r.e.at
}

// Cancel prevents a pending event from firing. Cancelling an event that
// has already fired or been cancelled is a no-op. Returns true if the
// event was pending and is now cancelled.
func (r EventRef) Cancel() bool {
	e := r.e
	if e == nil || e.gen != r.gen || e.cancelled || e.index < 0 {
		return false
	}
	e.cancelled = true
	e.sim.noteCancelled()
	return true
}

// Pending reports whether the event is still queued and not cancelled.
func (r EventRef) Pending() bool {
	return r.live() && !r.e.cancelled && r.e.index >= 0
}

// compactMin is the minimum number of collected cancellations before a
// heap compaction is considered; below it, lazy deletion is cheaper.
const compactMin = 64

// eventChunk is the free-list growth quantum: allocating events in blocks
// keeps pool neighbours adjacent in memory.
const eventChunk = 64

// Simulator is the discrete-event engine. It is not safe for concurrent use;
// the whole simulation is single-threaded by design so that runs are
// deterministic.
type Simulator struct {
	now     Time
	heap    []*event // 4-ary min-heap ordered by (at, seq)
	dead    int      // cancelled events still queued (lazy deletion)
	free    []*event
	seq     uint64
	rng     *rand.Rand
	stopped bool
	events  uint64 // total events executed, for diagnostics

	guard      func() error // cooperative interrupt hook, see SetGuard
	guardEvery uint64
	guardErr   error

	hook func(Time, uint64) // per-event observer, see SetEventHook
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source. All model
// randomness must come from here so a seed fully determines a run.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// EventsExecuted returns the number of events that have fired so far.
func (s *Simulator) EventsExecuted() uint64 { return s.events }

// Schedule runs fn after delay. A negative delay is an error in the model;
// it is clamped to zero so the event fires "now" (after already-queued
// events for the current instant).
func (s *Simulator) Schedule(delay Time, fn func()) EventRef {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at the given absolute virtual time. Times in the past are
// clamped to the current instant.
func (s *Simulator) At(at Time, fn func()) EventRef {
	if fn == nil {
		panic("sim: nil event function")
	}
	return s.insert(at, fn, nil, nil)
}

// ScheduleArg runs fn(arg) after delay. Passing state explicitly lets hot
// callers schedule a package-level function instead of allocating a
// closure per event; arg is typically a pointer from the caller's own
// pool. Semantics are otherwise identical to Schedule.
func (s *Simulator) ScheduleArg(delay Time, fn func(any), arg any) EventRef {
	if fn == nil {
		panic("sim: nil event function")
	}
	if delay < 0 {
		delay = 0
	}
	return s.insert(s.now+delay, nil, fn, arg)
}

func (s *Simulator) insert(at Time, fn func(), argFn func(any), arg any) EventRef {
	if at < s.now {
		at = s.now
	}
	e := s.alloc()
	e.at = at
	e.seq = s.seq
	e.fn = fn
	e.argFn = argFn
	e.arg = arg
	s.seq++
	s.heapPush(e)
	return EventRef{e: e, gen: e.gen}
}

// alloc pops a recycled event or grows the pool by one chunk.
func (s *Simulator) alloc() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	chunk := make([]event, eventChunk)
	for i := range chunk {
		chunk[i].sim = s
		chunk[i].index = -1
	}
	for i := eventChunk - 1; i > 0; i-- {
		s.free = append(s.free, &chunk[i])
	}
	return &chunk[0]
}

// recycle returns a dequeued event to the free list. The generation bump
// invalidates every outstanding EventRef to it.
func (s *Simulator) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.argFn = nil
	e.arg = nil
	e.cancelled = false
	e.index = -1
	s.free = append(s.free, e)
}

// noteCancelled tracks lazy deletions and compacts the heap once
// cancelled events outnumber live ones, so long runs with heavy timer
// churn cannot bloat the queue.
func (s *Simulator) noteCancelled() {
	s.dead++
	if s.dead >= compactMin && s.dead*2 >= len(s.heap) {
		s.compact()
	}
}

// compact removes every cancelled event from the queue and restores the
// heap invariant in O(n). Relative order of live events is unchanged —
// (at, seq) is a total order — so compaction never affects a run.
func (s *Simulator) compact() {
	live := s.heap[:0]
	for _, e := range s.heap {
		if e.cancelled {
			e.index = -1
			s.recycle(e)
		} else {
			live = append(live, e)
		}
	}
	// Clear the tail so dropped slots don't pin recycled events.
	for i := len(live); i < len(s.heap); i++ {
		s.heap[i] = nil
	}
	s.heap = live
	s.dead = 0
	for i, e := range s.heap {
		e.index = int32(i)
	}
	for i := (len(s.heap) - 2) >> 2; i >= 0; i-- {
		s.down(i)
	}
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// SetGuard installs a cooperative interrupt hook: fn is invoked every
// `every` events during Run (default 1024 when zero), and a non-nil
// return aborts the run cleanly — the error is retained and readable
// via GuardErr, and further Run calls are no-ops. Guards keyed on event
// count or virtual time are deterministic; a wall-clock guard only
// decides whether a run aborts, never what a completed run computes.
func (s *Simulator) SetGuard(every uint64, fn func() error) {
	if every == 0 {
		every = 1024
	}
	s.guardEvery = every
	s.guard = fn
}

// GuardErr returns the error that aborted the run, if the guard fired.
func (s *Simulator) GuardErr() error { return s.guardErr }

// SetEventHook installs an observer invoked for every executed event with
// its fire time and sequence number, just before the event's function
// runs. The (time, seq) stream is a complete fingerprint of a run's
// control flow — hashing it proves two engines execute bit-identical
// schedules. Pass nil to remove the hook.
func (s *Simulator) SetEventHook(fn func(at Time, seq uint64)) { s.hook = fn }

// Run executes events until the queue is empty, Stop is called, or the
// virtual clock would pass until. Events scheduled exactly at until still
// run. On return the clock has advanced to until unless Stop was called.
// It returns the virtual time at which execution stopped.
func (s *Simulator) Run(until Time) Time {
	s.drain(until)
	if !s.stopped && s.guardErr == nil && s.now < until {
		s.now = until
	}
	return s.now
}

// RunAll executes every pending event regardless of time. Unlike Run, the
// clock stops at the last executed event.
func (s *Simulator) RunAll() Time {
	const forever = Time(1<<63 - 1)
	s.drain(forever)
	return s.now
}

func (s *Simulator) drain(until Time) {
	for len(s.heap) > 0 && !s.stopped && s.guardErr == nil {
		e := s.heap[0]
		if e.at > until {
			return
		}
		s.heapPopMin()
		if e.cancelled {
			s.dead--
			s.recycle(e)
			continue
		}
		if e.at < s.now {
			// Heap invariant guarantees monotone time; anything else is a bug.
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", s.now, e.at))
		}
		s.now = e.at
		s.events++
		if s.hook != nil {
			s.hook(e.at, e.seq)
		}
		// Recycle before invoking so the slot is immediately reusable by
		// whatever the callback schedules; the callback itself was copied
		// out first.
		fn, argFn, arg := e.fn, e.argFn, e.arg
		s.recycle(e)
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
		if s.guard != nil && s.events%s.guardEvery == 0 {
			if err := s.guard(); err != nil {
				s.guardErr = err
				return
			}
		}
	}
}

// Pending returns the number of live (not cancelled) queued events.
func (s *Simulator) Pending() int { return len(s.heap) - s.dead }

// QueueLen returns the raw queue length including cancelled events that
// are still awaiting lazy collection. Diagnostics only.
func (s *Simulator) QueueLen() int { return len(s.heap) }

// --- 4-ary indexed min-heap, ordered by (at, seq) ---
//
// A 4-ary layout halves the tree depth of a binary heap and keeps the
// children of a node in at most two cache lines, which is where a
// discrete-event simulator spends much of its life. Compared to
// container/heap this is also free of interface dispatch and the any
// boxing in Push/Pop.

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulator) heapPush(e *event) {
	i := len(s.heap)
	s.heap = append(s.heap, e)
	e.index = int32(i)
	s.up(i)
}

// heapPopMin removes and returns the minimum event.
func (s *Simulator) heapPopMin() *event {
	h := s.heap
	e := h[0]
	e.index = -1
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	s.heap = h[:n]
	if n > 0 {
		s.heap[0] = last
		last.index = 0
		s.down(0)
	}
	return e
}

func (s *Simulator) up(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = e
	e.index = int32(i)
}

func (s *Simulator) down(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], e) {
			break
		}
		h[i] = h[m]
		h[i].index = int32(i)
		i = m
	}
	h[i] = e
	e.index = int32(i)
}

// fix restores the heap invariant for the event at index i after its key
// changed. Exactly one of down/up can apply.
func (s *Simulator) fix(i int) {
	e := s.heap[i]
	s.down(i)
	if e.index == int32(i) {
		s.up(i)
	}
}

// reschedule moves a queued event to a new time, consuming a fresh
// sequence number exactly as cancelling and rescheduling would, so the
// (at, seq) stream — and therefore every run — is bit-identical to the
// cancel-and-reallocate implementation it replaces.
func (s *Simulator) reschedule(e *event, at Time) {
	if at < s.now {
		at = s.now
	}
	e.at = at
	e.seq = s.seq
	s.seq++
	s.fix(int(e.index))
}

// Timer is a restartable single-shot timer bound to a simulator, the
// building block for protocol retransmission/backoff timers.
type Timer struct {
	sim *Simulator
	fn  func()
	ev  EventRef
}

// NewTimer creates a stopped timer that runs fn when it expires.
func NewTimer(s *Simulator, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer function")
	}
	return &Timer{sim: s, fn: fn}
}

// Reset (re)arms the timer to fire after delay, cancelling any pending
// expiry. A pending timer is rearmed in place — the queued event slot is
// moved to its new time rather than cancelled and reallocated, so the
// rearm-per-ACK churn of a TCP retransmission timer costs one heap fix
// and no allocation.
func (t *Timer) Reset(delay Time) {
	if delay < 0 {
		delay = 0
	}
	at := t.sim.now + delay
	if e := t.ev.e; e != nil && e.gen == t.ev.gen && !e.cancelled && e.index >= 0 {
		t.sim.reschedule(e, at)
		return
	}
	t.ev = t.sim.At(at, t.fn)
}

// Stop cancels the timer if pending. Returns true if a pending expiry was
// cancelled.
func (t *Timer) Stop() bool {
	ok := t.ev.Cancel()
	t.ev = EventRef{}
	return ok
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.ev.Pending() }

// ExpiresAt returns the virtual time at which the timer will fire. Only
// meaningful when Pending.
func (t *Timer) ExpiresAt() Time { return t.ev.Time() }
