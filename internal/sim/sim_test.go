package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(3*Millisecond, func() { got = append(got, 3) })
	s.Schedule(1*Millisecond, func() { got = append(got, 1) })
	s.Schedule(2*Millisecond, func() { got = append(got, 2) })
	s.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(Millisecond, func() { got = append(got, i) })
	}
	s.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	s := New(1)
	var at Time
	s.Schedule(5*Second, func() { at = s.Now() })
	s.RunAll()
	if at != 5*Second {
		t.Fatalf("Now inside event = %v, want 5s", at)
	}
	if s.Now() != 5*Second {
		t.Fatalf("final Now = %v, want 5s", s.Now())
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(10*Second, func() { fired = true })
	end := s.Run(3 * Second)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if end != 3*Second {
		t.Fatalf("Run returned %v, want 3s", end)
	}
	// The event must still be pending and fire on a later Run.
	s.Run(20 * Second)
	if !fired {
		t.Fatal("event did not fire after extending horizon")
	}
}

func TestRunAtExactHorizon(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(3*Second, func() { fired = true })
	s.Run(3 * Second)
	if !fired {
		t.Fatal("event exactly at horizon should fire")
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(Millisecond, func() { fired = true })
	if !e.Cancel() {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel() {
		t.Fatal("second Cancel should return false")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New(1)
	e := s.Schedule(Millisecond, func() {})
	s.RunAll()
	if e.Cancel() {
		t.Fatal("Cancel after fire should return false")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var got []Time
	s.Schedule(Second, func() {
		got = append(got, s.Now())
		s.Schedule(Second, func() { got = append(got, s.Now()) })
	})
	s.RunAll()
	if len(got) != 2 || got[0] != Second || got[1] != 2*Second {
		t.Fatalf("nested schedule times = %v", got)
	}
}

func TestScheduleZeroAndNegativeDelay(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(Second, func() {
		s.Schedule(0, func() { got = append(got, 1) })
		s.Schedule(-5*Second, func() { got = append(got, 2) })
	})
	s.RunAll()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("zero/negative delay events = %v", got)
	}
	if s.Now() != Second {
		t.Fatalf("clock moved on zero-delay events: %v", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i)*Second, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.RunAll()
	if count != 3 {
		t.Fatalf("executed %d events after Stop, want 3", count)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestTimerResetAndStop(t *testing.T) {
	s := New(1)
	fires := 0
	tm := NewTimer(s, func() { fires++ })
	tm.Reset(Second)
	tm.Reset(2 * Second) // supersedes the first arming
	if !tm.Pending() {
		t.Fatal("timer should be pending after Reset")
	}
	if tm.ExpiresAt() != 2*Second {
		t.Fatalf("ExpiresAt = %v, want 2s", tm.ExpiresAt())
	}
	s.RunAll()
	if fires != 1 {
		t.Fatalf("timer fired %d times, want 1", fires)
	}

	tm.Reset(Second)
	if !tm.Stop() {
		t.Fatal("Stop should cancel a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report nothing cancelled")
	}
	s.RunAll()
	if fires != 1 {
		t.Fatalf("stopped timer fired; fires = %d", fires)
	}
}

func TestTimeConversions(t *testing.T) {
	if (2 * Second).Seconds() != 2.0 {
		t.Fatalf("Seconds() = %v", (2 * Second).Seconds())
	}
	if FromDuration(1500*time.Millisecond) != 1500*Millisecond {
		t.Fatal("FromDuration mismatch")
	}
	if (3 * Second).Duration() != 3*time.Second {
		t.Fatal("Duration mismatch")
	}
}

func TestEventsExecutedCounter(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.Schedule(Time(i)*Millisecond, func() {})
	}
	e := s.Schedule(6*Millisecond, func() {})
	e.Cancel()
	s.RunAll()
	if s.EventsExecuted() != 5 {
		t.Fatalf("EventsExecuted = %d, want 5 (cancelled events don't count)", s.EventsExecuted())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock matches each event's scheduled time.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delaysRaw []uint32) bool {
		s := New(7)
		var fireTimes []Time
		want := make([]Time, 0, len(delaysRaw))
		for _, d := range delaysRaw {
			at := Time(d % 1e6 * uint32(Microsecond))
			want = append(want, at)
			s.At(at, func() {
				if s.Now() != at {
					t.Errorf("event at %v fired at %v", at, s.Now())
				}
				fireTimes = append(fireTimes, s.Now())
			})
		}
		s.RunAll()
		if len(fireTimes) != len(want) {
			return false
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fireTimes[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset never fires those events and fires
// all others.
func TestQuickCancellation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		s := New(1)
		rng := rand.New(rand.NewSource(seed))
		fired := make([]bool, n)
		cancel := make([]bool, n)
		events := make([]EventRef, n)
		for i := 0; i < int(n); i++ {
			i := i
			events[i] = s.Schedule(Time(rng.Intn(1000))*Microsecond, func() { fired[i] = true })
			cancel[i] = rng.Intn(2) == 0
		}
		for i, c := range cancel {
			if c {
				events[i].Cancel()
			}
		}
		s.RunAll()
		for i := range fired {
			if fired[i] == cancel[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestStaleHandleInert pins the safety property of the event pool: a
// handle kept past its event's firing must become inert, even when the
// underlying slot has been recycled for a new event.
func TestStaleHandleInert(t *testing.T) {
	s := New(1)
	stale := s.Schedule(Millisecond, func() {})
	s.RunAll()
	if stale.Pending() {
		t.Fatal("fired event still reports Pending")
	}
	// The pool now reuses the slot for a fresh event; the stale handle
	// must not be able to cancel it.
	fired := false
	fresh := s.Schedule(Millisecond, func() { fired = true })
	if stale.Cancel() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	s.RunAll()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
	if fresh.Pending() {
		t.Fatal("fired recycled event still pending")
	}
}

// TestEventPoolReuse verifies steady-state scheduling stops allocating
// once the pool is primed.
func TestEventPoolReuse(t *testing.T) {
	s := New(1)
	// Prime: chain of self-rescheduling events.
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 10_000 {
			s.Schedule(Microsecond, tick)
		}
	}
	s.Schedule(0, tick)
	allocs := testing.AllocsPerRun(1, func() { s.RunAll() })
	if allocs > 1 {
		t.Fatalf("steady-state run allocated %v times per op", allocs)
	}
}

func TestPendingIsLiveCount(t *testing.T) {
	s := New(1)
	refs := make([]EventRef, 10)
	for i := range refs {
		refs[i] = s.Schedule(Time(i+1)*Millisecond, func() {})
	}
	if got := s.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	for i := 0; i < 4; i++ {
		refs[i].Cancel()
	}
	if got := s.Pending(); got != 6 {
		t.Fatalf("Pending after 4 cancels = %d, want 6 (cancelled events must not count)", got)
	}
	if got := s.QueueLen(); got != 10 {
		t.Fatalf("QueueLen = %d, want 10 (lazy deletion keeps slots)", got)
	}
	s.RunAll()
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

// TestCompaction verifies that heavy cancellation churn cannot bloat the
// queue: once cancelled events outnumber live ones the heap compacts,
// and the surviving events still fire in order.
func TestCompaction(t *testing.T) {
	s := New(1)
	const n = 1000
	refs := make([]EventRef, n)
	for i := 0; i < n; i++ {
		refs[i] = s.Schedule(Time(i+1)*Millisecond, func() {})
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			continue
		}
		refs[i].Cancel()
	}
	if got := s.QueueLen(); got > n/2+compactMin {
		t.Fatalf("QueueLen = %d after cancelling half of %d events; compaction did not run", got, n)
	}
	if got := s.Pending(); got != n/2 {
		t.Fatalf("Pending = %d, want %d", got, n/2)
	}
	var fired int
	var last Time
	s.SetEventHook(func(at Time, _ uint64) {
		if at < last {
			t.Fatalf("post-compaction order broken: %v after %v", at, last)
		}
		last = at
		fired++
	})
	s.RunAll()
	if fired != n/2 {
		t.Fatalf("fired %d events, want %d", fired, n/2)
	}
}

// TestTimerRearmInPlace verifies the no-allocation rearm fast path: a
// pending timer's Reset moves the queued event instead of reallocating,
// and the timer still fires exactly once at the latest deadline.
func TestTimerRearmInPlace(t *testing.T) {
	s := New(1)
	fires := 0
	tm := NewTimer(s, func() { fires++ })
	tm.Reset(Second)
	before := s.QueueLen()
	allocs := testing.AllocsPerRun(100, func() { tm.Reset(2 * Second) })
	if allocs != 0 {
		t.Fatalf("pending-timer Reset allocated %v times per op", allocs)
	}
	if got := s.QueueLen(); got != before {
		t.Fatalf("rearm grew the queue: %d -> %d", before, got)
	}
	tm.Reset(3 * Second)
	if tm.ExpiresAt() != 3*Second {
		t.Fatalf("ExpiresAt = %v, want 3s", tm.ExpiresAt())
	}
	s.RunAll()
	if fires != 1 {
		t.Fatalf("timer fired %d times, want 1", fires)
	}
	// Earlier rearms must also take effect.
	tm.Reset(10 * Second)
	tm.Reset(Second)
	end := s.RunAll()
	if fires != 2 || end != 4*Second {
		t.Fatalf("earlier rearm: fires=%d end=%v, want 2 fires at t=4s", fires, end)
	}
}

// TestScheduleArg verifies the closure-free scheduling path.
func TestScheduleArg(t *testing.T) {
	s := New(1)
	var got []int
	record := func(a any) { got = append(got, a.(int)) }
	s.ScheduleArg(2*Millisecond, record, 2)
	s.ScheduleArg(Millisecond, record, 1)
	ref := s.ScheduleArg(3*Millisecond, record, 3)
	ref.Cancel()
	s.RunAll()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ScheduleArg events = %v, want [1 2]", got)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(Time(i%1000)*Microsecond, func() {})
	}
	s.RunAll()
}
