package sim

import (
	"errors"
	"testing"
)

// TestGuardAbortsRun: the cooperative interrupt hook must stop the
// drain loop cleanly and retain its error.
func TestGuardAbortsRun(t *testing.T) {
	s := New(1)
	errStop := errors.New("enough")
	s.SetGuard(10, func() error {
		if s.EventsExecuted() >= 50 {
			return errStop
		}
		return nil
	})
	var tick func()
	tick = func() { s.Schedule(Millisecond, tick) }
	s.Schedule(0, tick)

	end := s.Run(Second)
	if !errors.Is(s.GuardErr(), errStop) {
		t.Fatalf("GuardErr = %v", s.GuardErr())
	}
	if s.EventsExecuted() != 50 {
		t.Fatalf("executed %d events, want exactly 50 (guard every 10)", s.EventsExecuted())
	}
	if end >= Second {
		t.Fatalf("clock advanced to horizon (%v) despite abort", end)
	}
	// Aborted simulators stay aborted.
	if got := s.Run(2 * Second); got != end {
		t.Fatalf("Run after abort advanced the clock: %v", got)
	}
}

// TestGuardCleanRunUnaffected: a guard that never fires must not change
// a run's behaviour.
func TestGuardCleanRunUnaffected(t *testing.T) {
	run := func(withGuard bool) (Time, uint64) {
		s := New(7)
		if withGuard {
			s.SetGuard(8, func() error { return nil })
		}
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 100 {
				s.Schedule(Time(n)*Microsecond, tick)
			}
		}
		s.Schedule(0, tick)
		return s.Run(Second), s.EventsExecuted()
	}
	t1, e1 := run(false)
	t2, e2 := run(true)
	if t1 != t2 || e1 != e2 {
		t.Fatalf("guard changed the run: (%v,%d) vs (%v,%d)", t1, e1, t2, e2)
	}
	var s Simulator
	if s.GuardErr() != nil {
		t.Fatal("zero simulator reports a guard error")
	}
}
