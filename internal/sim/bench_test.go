package sim

import "testing"

// Engine microbenchmarks. These isolate the event-queue costs from the
// full-run numbers in the repository root's BenchmarkScenario4HopChain:
// steady-state schedule/fire churn, schedule-then-cancel churn (lazy
// deletion + compaction), and the TCP-style rearm-per-ACK timer pattern.
// All report events/s so the CI benchmark gate (cmd/benchgate) can
// compare them against BENCH_sim.json uniformly.

// BenchmarkEventChurn measures steady-state schedule+fire throughput
// with 256 concurrent self-rescheduling chains — the shape of a running
// simulation's heap. Expect ~0 allocs/op once the pool is primed.
func BenchmarkEventChurn(b *testing.B) {
	s := New(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			s.Schedule(256*Microsecond, tick)
		}
	}
	const chains = 256
	for i := 0; i < chains && i < b.N; i++ {
		s.Schedule(Time(i)*Microsecond, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.RunAll()
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkScheduleCancel measures the cancel-heavy pattern: every
// iteration schedules an event and cancels the previous one, so the
// queue is almost entirely lazily-deleted slots and the compactor has to
// keep it from bloating.
func BenchmarkScheduleCancel(b *testing.B) {
	s := New(1)
	// Background population so heap operations have realistic depth.
	for i := 0; i < 1024; i++ {
		s.At(Time(1+i)*Second, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	var ref EventRef
	for i := 0; i < b.N; i++ {
		ref.Cancel()
		ref = s.Schedule(Time(i%1000+1)*Microsecond, func() {})
	}
	b.StopTimer()
	if s.QueueLen() > 2*(1024+compactMin) {
		b.Fatalf("queue bloated to %d slots; compaction is broken", s.QueueLen())
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTimerRearm measures the retransmission-timer pattern: a
// pending timer rearmed once per ACK. The in-place reschedule fast path
// must make this allocation-free.
func BenchmarkTimerRearm(b *testing.B) {
	s := New(1)
	for i := 0; i < 1024; i++ {
		s.At(Time(1+i)*Second, func() {})
	}
	tm := NewTimer(s, func() {})
	tm.Reset(Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(Time(i%1000+1) * Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
