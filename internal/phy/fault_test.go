package phy

import (
	"testing"

	"muzha/internal/sim"
	"muzha/internal/topo"
)

// faultPair builds two radios one hop apart and returns their MACs.
func faultPair(t *testing.T, seed int64) (*sim.Simulator, *Channel, *Radio, *Radio, *stubMAC, *stubMAC) {
	t.Helper()
	s, ch := newTestChannel(t, seed, DefaultConfig())
	ma, mb := &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0, Y: 0}, ma)
	rb := ch.AddRadio(topo.Position{X: 200, Y: 0}, mb)
	return s, ch, ra, rb, ma, mb
}

func TestLinkBlockedIsDirectional(t *testing.T) {
	s, ch, ra, rb, ma, mb := faultPair(t, 1)
	ch.SetLinkBlocked(0, 1, true)

	ra.Transmit(dataPkt(1, 100), ch.TxTime(100, false))
	s.RunAll()
	if len(mb.rx) != 0 {
		t.Fatalf("blocked link 0->1 delivered %d frames", len(mb.rx))
	}

	// Reverse direction stays open.
	rb.Transmit(dataPkt(2, 100), ch.TxTime(100, false))
	s.RunAll()
	if len(ma.rx) != 1 || !ma.rx[0].ok {
		t.Fatalf("open link 1->0 rx = %+v", ma.rx)
	}

	// Restoring reopens the muted direction.
	ch.SetLinkBlocked(0, 1, false)
	ra.Transmit(dataPkt(3, 100), ch.TxTime(100, false))
	s.RunAll()
	if len(mb.rx) != 1 {
		t.Fatalf("restored link delivered %d frames", len(mb.rx))
	}
}

func TestPartitionSeparatesGroups(t *testing.T) {
	s, ch := newTestChannel(t, 1, DefaultConfig())
	macs := make([]*stubMAC, 3)
	radios := make([]*Radio, 3)
	for i := range macs {
		macs[i] = &stubMAC{}
		radios[i] = ch.AddRadio(topo.Position{X: float64(i) * 100, Y: 0}, macs[i])
	}
	// Nodes 0,1 in one class; node 2 unlisted (implicit leftover class).
	ch.SetPartition([][]int{{0, 1}})

	radios[0].Transmit(dataPkt(1, 100), ch.TxTime(100, false))
	s.RunAll()
	if len(macs[1].rx) != 1 {
		t.Fatalf("same-group frame not delivered: %+v", macs[1].rx)
	}
	if len(macs[2].rx) != 0 {
		t.Fatalf("cross-partition frame delivered: %+v", macs[2].rx)
	}

	ch.ClearPartition()
	radios[0].Transmit(dataPkt(2, 100), ch.TxTime(100, false))
	s.RunAll()
	if len(macs[2].rx) != 1 {
		t.Fatalf("healed partition still mute: %+v", macs[2].rx)
	}
}

func TestDownRadioNeitherSendsNorReceives(t *testing.T) {
	s, ch, ra, rb, ma, mb := faultPair(t, 1)
	rb.SetDown(true)

	ra.Transmit(dataPkt(1, 100), ch.TxTime(100, false))
	s.RunAll()
	if len(mb.rx) != 0 {
		t.Fatalf("down radio received %d frames", len(mb.rx))
	}

	// A down radio asked to transmit completes locally without radiating.
	rb.Transmit(dataPkt(2, 100), ch.TxTime(100, false))
	s.RunAll()
	if mb.txDone != 1 {
		t.Fatalf("down radio txDone = %d, want 1 (local completion)", mb.txDone)
	}
	if len(ma.rx) != 0 {
		t.Fatalf("down radio radiated: %+v", ma.rx)
	}

	rb.SetDown(false)
	ra.Transmit(dataPkt(3, 100), ch.TxTime(100, false))
	s.RunAll()
	if len(mb.rx) != 1 || !mb.rx[0].ok {
		t.Fatalf("revived radio rx = %+v", mb.rx)
	}
}

func TestCrashMidFlightKeepsCarrierBalanced(t *testing.T) {
	s, ch, ra, rb, _, mb := faultPair(t, 1)
	air := ch.TxTime(1000, false)
	ra.Transmit(dataPkt(1, 1000), air)
	// Crash the receiver while the frame is in the air.
	s.Schedule(air/2, func() { rb.SetDown(true) })
	s.RunAll()
	if len(mb.rx) != 0 {
		t.Fatal("frame delivered to radio that crashed mid-reception")
	}
	if rb.sensed != 0 {
		t.Fatalf("sensed count unbalanced after crash: %d", rb.sensed)
	}
	if rb.CarrierBusy() {
		t.Fatal("carrier stuck busy after signal ended")
	}
}

func TestBurstLossDropsInBadState(t *testing.T) {
	s, ch, ra, _, _, mb := faultPair(t, 7)
	// Degenerate chain: always bad, always lose.
	ch.SetBurstLoss(1, 0, 0, 0.999999)
	for i := 0; i < 20; i++ {
		i := i
		s.Schedule(sim.Time(i)*50*sim.Millisecond, func() {
			ra.Transmit(dataPkt(uint64(i+1), 100), ch.TxTime(100, false))
		})
	}
	s.RunAll()
	for _, e := range mb.rx {
		if e.ok {
			t.Fatal("frame survived an always-bad burst phase")
		}
	}
	if len(mb.rx) == 0 {
		t.Fatal("no frames reached the receiver at all")
	}

	// Clearing the overlay restores clean delivery.
	ch.ClearBurstLoss()
	mb.rx = nil
	ra.Transmit(dataPkt(100, 100), ch.TxTime(100, false))
	s.RunAll()
	if len(mb.rx) != 1 || !mb.rx[0].ok {
		t.Fatalf("post-burst rx = %+v", mb.rx)
	}
}
