package phy

import (
	"math"
	"sort"

	"muzha/internal/topo"
)

// Conservative spatial decomposition.
//
// Two radios farther apart than CSRange can never interact in this
// channel model: Transmit fans out only to neighbors within CSRange,
// carrier sense only consults flights whose source is within CSRange,
// and the neighbor cache itself is rebuilt from the CSRange cell grid.
// The dist<=CSRange interaction graph therefore partitions the radio
// set into connected components ("domains") whose event timelines are
// causally independent for the whole run — the strongest possible
// conservative lookahead window (infinite), with no cross-domain
// synchronization barrier needed at all.
//
// Mobility is handled conservatively: a waypoint-mobile radio may roam
// anywhere inside its mobility field, so its interaction footprint is
// the axis-aligned box covering the field rectangle and its initial
// position, and it is linked to every radio (static or mobile) within
// CSRange of that box. Re-partitioning under SetPosition is thereby
// pre-paid: no reachable position can ever join two distinct domains.
//
// Callers may also demand extra coupling (e.g. a transport flow whose
// endpoints must share one timeline even if physically out of range)
// via DomainInput.Couple.

// DomainInput describes the static interaction geometry of one run.
type DomainInput struct {
	// Positions holds every radio's initial position; index == node ID.
	Positions []topo.Position
	// CSRange is the carrier-sense/interference radius in metres.
	CSRange float64
	// FieldW/FieldH span the waypoint-mobility rectangle [0,W]x[0,H].
	// Only consulted when Mobile is non-empty.
	FieldW, FieldH float64
	// Mobile lists node indices that roam the mobility field.
	Mobile []int
	// Couple lists node index pairs that must share a domain
	// regardless of geometry (flow endpoints, CBR endpoints).
	Couple [][2]int
}

// Domains returns the conservative interaction domains of in as a
// partition of node indices. Each domain is sorted ascending and the
// domains themselves are ordered by their smallest member, so the
// result is a pure function of the input — the parallel engine's
// determinism leans on that.
func Domains(in DomainInput) [][]int {
	n := len(in.Positions)
	if n == 0 {
		return nil
	}
	u := newUnionFind(n)

	cs := in.CSRange
	if cs <= 0 {
		cs = DefaultConfig().CSRange
	}

	mobile := make([]bool, n)
	for _, m := range in.Mobile {
		if m >= 0 && m < n {
			mobile[m] = true
		}
	}

	// Static-static edges via the same CSRange cell bucketing the
	// channel uses: only the 3x3 cell neighborhood can hold a radio
	// within CSRange.
	cells := make(map[gridCell][]int, n)
	for i, p := range in.Positions {
		if mobile[i] {
			continue
		}
		c := gridCell{x: int(math.Floor(p.X / cs)), y: int(math.Floor(p.Y / cs))}
		cells[c] = append(cells[c], i)
	}
	for c, ids := range cells {
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range cells[gridCell{x: c.x + dx, y: c.y + dy}] {
					for _, i := range ids {
						if i < j && topo.Dist(in.Positions[i], in.Positions[j]) <= cs {
							u.union(i, j)
						}
					}
				}
			}
		}
	}

	// Mobile radios: conservative footprint is the box covering the
	// mobility field plus the initial position (the first leg of the
	// walk travels from that position into the field). Link a mobile
	// to anything within CSRange of its box; boxes all contain the
	// field, so mobiles always share a domain with each other.
	if len(in.Mobile) > 0 {
		lastMobile := -1
		for i := range in.Positions {
			if !mobile[i] {
				continue
			}
			if lastMobile >= 0 {
				u.union(lastMobile, i)
			}
			lastMobile = i
			box := mobileBox(in, in.Positions[i])
			for j, p := range in.Positions {
				if j != i && !mobile[j] && box.dist(p) <= cs {
					u.union(i, j)
				}
			}
		}
	}

	for _, pr := range in.Couple {
		a, b := pr[0], pr[1]
		if a >= 0 && a < n && b >= 0 && b < n {
			u.union(a, b)
		}
	}

	return u.components()
}

// InterDomainGap returns the smallest pairwise distance between radios
// of distinct domains, or +Inf for fewer than two domains. It is a
// diagnostic: by construction the gap always exceeds CSRange, which is
// what makes the per-domain lookahead unbounded.
func InterDomainGap(in DomainInput, domains [][]int) float64 {
	gap := math.Inf(1)
	dom := make([]int, len(in.Positions))
	for di, d := range domains {
		for _, i := range d {
			dom[i] = di
		}
	}
	for i := range in.Positions {
		for j := i + 1; j < len(in.Positions); j++ {
			if dom[i] != dom[j] {
				if d := topo.Dist(in.Positions[i], in.Positions[j]); d < gap {
					gap = d
				}
			}
		}
	}
	return gap
}

// aabb is an axis-aligned box, used for the mobile-radio footprint.
type aabb struct{ x0, y0, x1, y1 float64 }

func mobileBox(in DomainInput, start topo.Position) aabb {
	b := aabb{
		x0: math.Min(0, start.X),
		y0: math.Min(0, start.Y),
		x1: math.Max(in.FieldW, start.X),
		y1: math.Max(in.FieldH, start.Y),
	}
	return b
}

// dist is the Euclidean distance from p to the box (0 when inside).
func (b aabb) dist(p topo.Position) float64 {
	dx := math.Max(math.Max(b.x0-p.X, 0), p.X-b.x1)
	dy := math.Max(math.Max(b.y0-p.Y, 0), p.Y-b.y1)
	return math.Hypot(dx, dy)
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// components returns the disjoint sets, each sorted ascending, ordered
// by smallest member.
func (u *unionFind) components() [][]int {
	byRoot := make(map[int][]int)
	for i := range u.parent {
		r := u.find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	out := make([][]int, 0, len(byRoot))
	for _, c := range byRoot {
		sort.Ints(c)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
