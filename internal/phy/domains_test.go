package phy

import (
	"math"
	"reflect"
	"testing"

	"muzha/internal/topo"
)

func TestDomainsSingleComponent(t *testing.T) {
	tp, err := topo.Chain(4)
	if err != nil {
		t.Fatal(err)
	}
	d := Domains(DomainInput{Positions: tp.Positions, CSRange: 550})
	if len(d) != 1 {
		t.Fatalf("4-hop chain should be one domain, got %d: %v", len(d), d)
	}
	if len(d[0]) != tp.N() {
		t.Fatalf("domain lost nodes: %v", d)
	}
}

func TestDomainsIslands(t *testing.T) {
	tp, err := topo.GridIslands(3, 2, 2, 1200)
	if err != nil {
		t.Fatal(err)
	}
	d := Domains(DomainInput{Positions: tp.Positions, CSRange: 550})
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("islands: got %v, want %v", d, want)
	}
	if gap := InterDomainGap(DomainInput{Positions: tp.Positions}, d); gap <= 550 {
		t.Fatalf("inter-domain gap %g must exceed CSRange", gap)
	}
}

func TestDomainsExactBoundary(t *testing.T) {
	// dist == CSRange still interacts (Transmit uses <=); just beyond
	// does not.
	at := func(x float64) topo.Position { return topo.Position{X: x} }
	d := Domains(DomainInput{Positions: []topo.Position{at(0), at(550)}, CSRange: 550})
	if len(d) != 1 {
		t.Fatalf("dist==CSRange must be one domain, got %v", d)
	}
	d = Domains(DomainInput{Positions: []topo.Position{at(0), at(550.001)}, CSRange: 550})
	if len(d) != 2 {
		t.Fatalf("dist>CSRange must be two domains, got %v", d)
	}
}

func TestDomainsCellStraddle(t *testing.T) {
	// Nodes in diagonal-adjacent cells but within CSRange must still be
	// joined (regression guard for the 3x3 cell scan).
	p := []topo.Position{{X: 540, Y: 540}, {X: 560, Y: 560}}
	d := Domains(DomainInput{Positions: p, CSRange: 550})
	if len(d) != 1 {
		t.Fatalf("cell-straddling neighbors must share a domain, got %v", d)
	}
}

func TestDomainsMobileFootprint(t *testing.T) {
	// A mobile node confined to [0,800]x[0,200] couples to a static
	// node 500m from the field edge but not to one 1500m away.
	pos := []topo.Position{
		{X: 100, Y: 100},  // 0: mobile, starts inside the field
		{X: 1300, Y: 100}, // 1: static, 500m right of the field edge
		{X: 2300, Y: 100}, // 2: static, 1500m right of the field edge
	}
	d := Domains(DomainInput{
		Positions: pos, CSRange: 550,
		FieldW: 800, FieldH: 200,
		Mobile: []int{0},
	})
	want := [][]int{{0, 1}, {2}}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("mobile footprint: got %v, want %v", d, want)
	}
}

func TestDomainsMobileStartOutsideField(t *testing.T) {
	// The first waypoint leg travels from the initial position into the
	// field; a static node near that leg must be coupled even though it
	// is far from the field itself.
	pos := []topo.Position{
		{X: 3000, Y: 0}, // 0: mobile, starts well outside [0,800]x[0,200]
		{X: 2000, Y: 0}, // 1: static, on the leg between start and field
	}
	d := Domains(DomainInput{
		Positions: pos, CSRange: 550,
		FieldW: 800, FieldH: 200,
		Mobile: []int{0},
	})
	if len(d) != 1 {
		t.Fatalf("node on the start->field leg must couple, got %v", d)
	}
}

func TestDomainsMobilesShareDomain(t *testing.T) {
	pos := []topo.Position{{X: 0, Y: 0}, {X: 5000, Y: 5000}}
	d := Domains(DomainInput{
		Positions: pos, CSRange: 550,
		FieldW: 100, FieldH: 100,
		Mobile: []int{0, 1},
	})
	if len(d) != 1 {
		t.Fatalf("all mobiles share the field, must share a domain: %v", d)
	}
}

func TestDomainsCouple(t *testing.T) {
	at := func(x float64) topo.Position { return topo.Position{X: x} }
	pos := []topo.Position{at(0), at(2000), at(4000)}
	d := Domains(DomainInput{Positions: pos, CSRange: 550, Couple: [][2]int{{0, 2}}})
	want := [][]int{{0, 2}, {1}}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("couple: got %v, want %v", d, want)
	}
}

func TestDomainsDeterministicOrder(t *testing.T) {
	tp, err := topo.GridIslands(4, 3, 3, 900)
	if err != nil {
		t.Fatal(err)
	}
	in := DomainInput{Positions: tp.Positions, CSRange: 550}
	first := Domains(in)
	for i := 0; i < 10; i++ {
		if got := Domains(in); !reflect.DeepEqual(got, first) {
			t.Fatalf("Domains not deterministic: %v vs %v", got, first)
		}
	}
}

func TestInterDomainGapSingle(t *testing.T) {
	d := [][]int{{0, 1}}
	g := InterDomainGap(DomainInput{Positions: []topo.Position{{}, {X: 1}}}, d)
	if !math.IsInf(g, 1) {
		t.Fatalf("single domain gap should be +Inf, got %g", g)
	}
}
