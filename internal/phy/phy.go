// Package phy models the shared wireless medium: disc-radio propagation,
// carrier sensing, collision-on-overlap reception, half-duplex radios and
// random frame loss (per-packet and per-bit error models).
//
// The model follows the NS-2 defaults the paper uses: 2 Mbps radios with a
// 250 m transmission range and a 550 m carrier-sense/interference range.
// Signals reach neighbours after speed-of-light propagation delay; a frame
// is received intact iff no other signal overlaps it at the receiver and
// it survives the random loss draw.
package phy

import (
	"fmt"
	"math"
	"sort"

	"muzha/internal/packet"
	"muzha/internal/sim"
	"muzha/internal/topo"
)

// Config holds channel-wide physical parameters.
type Config struct {
	TxRange  float64 // receive range in metres (paper: 250)
	CSRange  float64 // carrier-sense/interference range in metres (NS-2 default: 550)
	DataRate float64 // payload bit rate in bit/s (paper: 2e6)
	// BasicRate is the bit rate of MAC control frames and PLCP headers
	// (802.11 sends these at the basic rate for backwards compatibility).
	BasicRate float64
	// Preamble is the PLCP preamble+header time prepended to every frame
	// (802.11 long preamble: 192 us).
	Preamble sim.Time

	// PacketErrorRate drops each received data/routing frame independently
	// with this probability; MAC control frames are exempt. This is the
	// "random loss" knob of Section 4.7.
	PacketErrorRate float64
	// BitErrorRate corrupts frames with probability 1-(1-BER)^bits,
	// applied to every frame. Zero disables it.
	BitErrorRate float64

	// CaptureRatio is the power ratio above which an in-progress
	// reception survives an overlapping weaker signal (NS-2's 10 dB
	// capture threshold under two-ray ground r^-4 propagation). Signal
	// power is modelled as distance^-PathLossExponent. Zero disables
	// capture: any overlap collides.
	CaptureRatio float64
	// PathLossExponent is the propagation power-law exponent (two-ray
	// ground: 4).
	PathLossExponent float64
}

// DefaultConfig returns the paper's Table 5.1 physical parameters.
func DefaultConfig() Config {
	return Config{
		TxRange:          250,
		CSRange:          550,
		DataRate:         2e6,
		BasicRate:        1e6,
		Preamble:         192 * sim.Microsecond,
		CaptureRatio:     10,
		PathLossExponent: 4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.TxRange <= 0:
		return fmt.Errorf("phy: TxRange must be positive, got %g", c.TxRange)
	case c.CSRange < c.TxRange:
		return fmt.Errorf("phy: CSRange (%g) must be >= TxRange (%g)", c.CSRange, c.TxRange)
	case c.DataRate <= 0 || c.BasicRate <= 0:
		return fmt.Errorf("phy: rates must be positive, got data=%g basic=%g", c.DataRate, c.BasicRate)
	case c.PacketErrorRate < 0 || c.PacketErrorRate >= 1:
		return fmt.Errorf("phy: PacketErrorRate must be in [0,1), got %g", c.PacketErrorRate)
	case c.BitErrorRate < 0 || c.BitErrorRate >= 1:
		return fmt.Errorf("phy: BitErrorRate must be in [0,1), got %g", c.BitErrorRate)
	case c.CaptureRatio < 0:
		return fmt.Errorf("phy: CaptureRatio must be >= 0, got %g", c.CaptureRatio)
	case c.CaptureRatio > 0 && c.PathLossExponent <= 0:
		return fmt.Errorf("phy: capture needs a positive PathLossExponent, got %g", c.PathLossExponent)
	}
	return nil
}

// MAC is the upcall interface a radio drives. Implemented by internal/mac.
type MAC interface {
	// OnCarrierBusy fires when external signal energy first appears at
	// the radio (physical carrier sense went busy).
	OnCarrierBusy()
	// OnCarrierIdle fires when the last external signal fades.
	OnCarrierIdle()
	// OnReceive delivers a frame whose signal ended at this radio. ok is
	// false when the frame was corrupted by collision or channel error
	// (the MAC then defers EIFS instead of DIFS).
	OnReceive(pkt *packet.Packet, ok bool)
	// OnTxDone fires when this radio's own transmission leaves the air.
	OnTxDone(pkt *packet.Packet)
}

const lightSpeed = 299_792_458.0 // m/s

// Channel is the shared medium connecting all radios.
type Channel struct {
	sim    *sim.Simulator
	cfg    Config
	radios []*Radio

	// Neighbor-cache invalidation epoch. Every mutation of medium state
	// that could change which radios hear which — SetPosition (mobility),
	// SetLinkBlocked and SetPartition/ClearPartition (fault injection) —
	// bumps it, and a radio rebuilds its cached neighbor list the next
	// time it transmits with a stale epoch. Starts at 1 so a fresh
	// radio's zero-valued cache epoch is always stale.
	epoch uint64

	// grid buckets radios into CSRange-sized cells so a neighbor-cache
	// rebuild scans only the 3x3 cell block around the transmitter
	// (O(neighbors)), not every radio on the channel.
	grid map[gridCell][]*Radio

	// flights recycles the argument blocks carried by in-flight signal
	// events, so a transmission schedules zero allocations.
	flights []*flight

	// Fault-injection state (see internal/fault): directional link
	// mutes, partition classes, and the Gilbert–Elliott loss overlay.
	blocked map[[2]int]bool
	group   map[int]int // node -> partition class; nil when unpartitioned
	ge      *geState
}

// gridCell addresses one CSRange x CSRange bucket of the spatial grid.
type gridCell struct{ x, y int }

func (c *Channel) cellOf(pos topo.Position) gridCell {
	return gridCell{
		x: int(math.Floor(pos.X / c.cfg.CSRange)),
		y: int(math.Floor(pos.Y / c.cfg.CSRange)),
	}
}

func (c *Channel) gridInsert(r *Radio, pos topo.Position) {
	k := c.cellOf(pos)
	c.grid[k] = append(c.grid[k], r)
}

func (c *Channel) gridRemove(r *Radio, pos topo.Position) {
	k := c.cellOf(pos)
	s := c.grid[k]
	for i, o := range s {
		if o == r {
			s[i] = s[len(s)-1]
			s[len(s)-1] = nil
			c.grid[k] = s[:len(s)-1]
			return
		}
	}
}

// geState is the Gilbert–Elliott two-state Markov loss process, advanced
// one step per frame while enabled.
type geState struct {
	pGoodBad, pBadGood float64
	lossGood, lossBad  float64
	bad                bool
}

// NewChannel creates the medium. Radios are added with AddRadio.
func NewChannel(s *sim.Simulator, cfg Config) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Channel{sim: s, cfg: cfg, epoch: 1, grid: make(map[gridCell][]*Radio)}, nil
}

// Config returns the channel parameters.
func (c *Channel) Config() Config { return c.cfg }

// AddRadio attaches a radio at pos and returns it. The returned radio's ID
// equals its attach order.
func (c *Channel) AddRadio(pos topo.Position, mac MAC) *Radio {
	r := &Radio{ch: c, id: len(c.radios), pos: pos, mac: mac}
	c.radios = append(c.radios, r)
	c.gridInsert(r, pos)
	c.epoch++
	return r
}

// SetPosition moves a radio; implements topo.PositionSetter for mobility.
// Movement invalidates every radio's neighbor cache (epoch bump); the
// mover is also re-bucketed in the spatial grid.
func (c *Channel) SetPosition(node int, pos topo.Position) {
	if node < 0 || node >= len(c.radios) {
		return
	}
	r := c.radios[node]
	if r.pos == pos {
		return
	}
	if old, next := c.cellOf(r.pos), c.cellOf(pos); old != next {
		c.gridRemove(r, r.pos)
		c.grid[next] = append(c.grid[next], r)
	}
	r.pos = pos
	c.epoch++
}

// --- fault-injection controls (implements fault.Medium) ---

// SetLinkBlocked mutes (or restores) the directional link a->b: frames
// transmitted by a no longer reach b at all, not even as interference.
// Frames already in the air are unaffected.
func (c *Channel) SetLinkBlocked(a, b int, blocked bool) {
	if c.blocked == nil {
		c.blocked = make(map[[2]int]bool)
	}
	if blocked {
		c.blocked[[2]int{a, b}] = true
	} else {
		delete(c.blocked, [2]int{a, b})
	}
	// Uniform invalidation rule: any medium-state mutation bumps the
	// epoch. The cache stores only geometry today (link state is checked
	// per frame), but the blanket rule keeps every future cached
	// predicate correct by construction.
	c.epoch++
}

// SetPartition installs communication classes: frames pass only between
// nodes of the same group. Nodes not listed share one implicit leftover
// group.
func (c *Channel) SetPartition(groups [][]int) {
	m := make(map[int]int, len(c.radios))
	for gi, g := range groups {
		for _, id := range g {
			m[id] = gi + 1 // leftover nodes default to class 0
		}
	}
	c.group = m
	c.epoch++
}

// ClearPartition removes the partition.
func (c *Channel) ClearPartition() {
	c.group = nil
	c.epoch++
}

// SetBurstLoss enables a Gilbert–Elliott bursty-loss overlay, layered on
// top of the uniform PacketErrorRate/BitErrorRate models. Each phase
// starts in the good state.
func (c *Channel) SetBurstLoss(pGoodBad, pBadGood, lossGood, lossBad float64) {
	c.ge = &geState{pGoodBad: pGoodBad, pBadGood: pBadGood, lossGood: lossGood, lossBad: lossBad}
}

// ClearBurstLoss disables the overlay.
func (c *Channel) ClearBurstLoss() { c.ge = nil }

// linkOpen reports whether frames from node a currently reach node b.
func (c *Channel) linkOpen(a, b int) bool {
	if c.blocked != nil && c.blocked[[2]int{a, b}] {
		return false
	}
	if c.group != nil && c.group[a] != c.group[b] {
		return false
	}
	return true
}

// TxTime returns a frame's airtime: preamble plus payload bits at the
// data rate (control=false) or basic rate (control=true).
func (c *Channel) TxTime(bytes int, control bool) sim.Time {
	rate := c.cfg.DataRate
	if control {
		rate = c.cfg.BasicRate
	}
	bits := float64(bytes * 8)
	return c.cfg.Preamble + sim.Time(math.Round(bits/rate*1e9))
}

func (c *Channel) propDelay(d float64) sim.Time {
	return sim.Time(math.Round(d / lightSpeed * 1e9))
}

// Radio is one node's transceiver. Half-duplex: a transmitting radio
// cannot receive, and vice versa reception in progress is aborted if the
// MAC transmits anyway.
type Radio struct {
	ch  *Channel
	id  int
	pos topo.Position
	mac MAC

	transmitting bool
	down         bool // crashed: radiates nothing, receives nothing
	rxLive       bool // rx holds a reception in progress
	sensed       int  // number of external signals currently at this radio
	rx           reception

	// nb caches, per potential receiver within carrier-sense range, the
	// precomputed propagation delay, received power and in-rx-range flag
	// that Transmit previously derived per frame from geometry. The list
	// is sorted by radio ID so signal events are scheduled in exactly
	// the order the O(N) all-radios scan produced. Valid while nbEpoch
	// matches the channel's invalidation epoch; built once per topology
	// for static runs, rebuilt O(neighbors) via the spatial grid after
	// movement or fault-state changes.
	nb      []neighbor
	nbEpoch uint64

	// Stats.
	framesSent      uint64
	framesDelivered uint64
	framesCollided  uint64
	framesError     uint64
}

// neighbor is one precomputed neighbor-cache entry. Crash (down) and
// link/partition state are deliberately NOT cached: they are checked per
// frame from live state, so fault injection needs no cache coherence to
// stay bit-identical.
type neighbor struct {
	r     *Radio
	delay sim.Time
	power float64
	inRx  bool
}

type reception struct {
	from     *Radio
	pkt      *packet.Packet
	power    float64
	collided bool
}

// flight carries one scheduled signal's arguments through the engine's
// closure-free ScheduleArg path. One flight serves a signal's start and
// end events at a receiver (the end event recycles it); the transmitter's
// own tx-done event uses a flight with only to/pkt set.
type flight struct {
	to    *Radio
	from  *Radio
	pkt   *packet.Packet
	power float64
	inRx  bool
}

func (c *Channel) getFlight() *flight {
	if n := len(c.flights); n > 0 {
		f := c.flights[n-1]
		c.flights[n-1] = nil
		c.flights = c.flights[:n-1]
		return f
	}
	return &flight{}
}

func (c *Channel) putFlight(f *flight) {
	*f = flight{}
	c.flights = append(c.flights, f)
}

// flightStart, flightEnd and flightTxDone are the package-level event
// functions behind Transmit; taking their state via *flight keeps the
// per-frame hot path free of closure allocations.
func flightStart(a any) {
	f := a.(*flight)
	f.to.signalStart(f.from, f.pkt, f.power, f.inRx)
}

func flightEnd(a any) {
	f := a.(*flight)
	to, from, pkt := f.to, f.from, f.pkt
	to.ch.putFlight(f)
	to.signalEnd(from, pkt)
}

func flightTxDone(a any) {
	f := a.(*flight)
	r, pkt := f.to, f.pkt
	r.ch.putFlight(f)
	r.transmitting = false
	r.mac.OnTxDone(pkt)
}

// ID returns the radio's channel index.
func (r *Radio) ID() int { return r.id }

// Position returns the radio's current location.
func (r *Radio) Position() topo.Position { return r.pos }

// CarrierBusy reports physical carrier sense: true while any external
// signal is present. The radio's own transmission is not included; the MAC
// tracks that itself.
func (r *Radio) CarrierBusy() bool { return r.sensed > 0 }

// Transmitting reports whether the radio is on the air.
func (r *Radio) Transmitting() bool { return r.transmitting }

// SetDown silences (or revives) the radio. While down it radiates
// nothing and delivers nothing up; any reception in progress is
// abandoned. Signals already in flight from this radio keep propagating
// (they left the antenna before the crash).
func (r *Radio) SetDown(down bool) {
	r.down = down
	if down {
		r.rxLive = false
	}
}

// Down reports whether the radio is silenced.
func (r *Radio) Down() bool { return r.down }

// Stats returns cumulative counters: frames sent, delivered to this radio
// intact, corrupted by collision, and dropped by channel error.
func (r *Radio) Stats() (sent, delivered, collided, chanError uint64) {
	return r.framesSent, r.framesDelivered, r.framesCollided, r.framesError
}

// rebuildNeighbors recomputes the radio's neighbor cache from the
// spatial grid: every other radio within CSRange, with its propagation
// delay, received power and in-rx-range flag, sorted by radio ID. The
// computed values are the exact same float expressions the per-frame
// scan evaluated, so cached and uncached runs are bit-identical.
func (r *Radio) rebuildNeighbors() {
	c := r.ch
	r.nb = r.nb[:0]
	cs := c.cfg.CSRange
	lo := c.cellOf(topo.Position{X: r.pos.X - cs, Y: r.pos.Y - cs})
	hi := c.cellOf(topo.Position{X: r.pos.X + cs, Y: r.pos.Y + cs})
	for cy := lo.y; cy <= hi.y; cy++ {
		for cx := lo.x; cx <= hi.x; cx++ {
			for _, o := range c.grid[gridCell{x: cx, y: cy}] {
				if o == r {
					continue
				}
				d := topo.Dist(r.pos, o.pos)
				if d > cs {
					continue
				}
				r.nb = append(r.nb, neighbor{
					r:     o,
					delay: c.propDelay(d),
					power: c.rxPower(d),
					inRx:  d <= c.cfg.TxRange,
				})
			}
		}
	}
	sort.Slice(r.nb, func(i, j int) bool { return r.nb[i].r.id < r.nb[j].r.id })
	r.nbEpoch = c.epoch
}

// Transmit puts pkt on the air for airtime. The MAC must ensure the radio
// is not already transmitting. Any reception in progress at this radio is
// destroyed (half-duplex).
func (r *Radio) Transmit(pkt *packet.Packet, airtime sim.Time) {
	if r.transmitting {
		panic(fmt.Sprintf("phy: radio %d already transmitting", r.id))
	}
	r.transmitting = true
	r.framesSent++
	// Own transmission stomps any frame being received.
	r.rxLive = false
	c := r.ch
	if r.down {
		// Crashed radio: complete the local transmit cycle so the MAC
		// state machine stays consistent, but radiate nothing.
		f := c.getFlight()
		f.to, f.pkt = r, pkt
		c.sim.ScheduleArg(airtime, flightTxDone, f)
		return
	}
	if r.nbEpoch != c.epoch {
		r.rebuildNeighbors()
	}
	// Crash and link/partition state are read per frame — only geometry
	// is trusted from the cache — so fault injection mid-run behaves
	// exactly as the uncached scan did.
	faulty := c.blocked != nil || c.group != nil
	for i := range r.nb {
		nb := &r.nb[i]
		other := nb.r
		if other.down || (faulty && !c.linkOpen(r.id, other.id)) {
			continue
		}
		f := c.getFlight()
		f.to, f.from, f.pkt, f.power, f.inRx = other, r, pkt, nb.power, nb.inRx
		c.sim.ScheduleArg(nb.delay, flightStart, f)
		c.sim.ScheduleArg(nb.delay+airtime, flightEnd, f)
	}
	f := c.getFlight()
	f.to, f.pkt = r, pkt
	c.sim.ScheduleArg(airtime, flightTxDone, f)
}

func (r *Radio) signalStart(from *Radio, pkt *packet.Packet, power float64, inRxRange bool) {
	r.sensed++
	if r.sensed == 1 {
		r.mac.OnCarrierBusy()
	}
	if !inRxRange {
		// Interference-only signal: corrupts a reception in progress
		// unless the reception is strong enough to capture over it.
		if r.rxLive && !r.ch.captures(r.rx.power, power) {
			r.rx.collided = true
		}
		return
	}
	switch {
	case r.down:
		// Crashed mid-flight: the signal still occupies the air around
		// the radio (sensed count stays balanced) but is never received.
	case r.transmitting:
		// Half-duplex: frame missed entirely.
	case r.rxLive:
		// Overlap at the receiver. The in-progress frame survives only
		// if it captures over the new arrival (NS-2 semantics: the
		// radio stays locked on the first signal either way, so the new
		// frame is never received).
		if !r.ch.captures(r.rx.power, power) {
			r.rx.collided = true
		}
	default:
		r.rx = reception{from: from, pkt: pkt, power: power}
		r.rxLive = true
	}
}

// rxPower returns the received signal power at distance d under the
// configured power-law propagation model. Only ratios matter.
func (c *Channel) rxPower(d float64) float64 {
	if c.cfg.CaptureRatio <= 0 {
		return 1
	}
	if d < 1 {
		d = 1
	}
	return math.Pow(d, -c.cfg.PathLossExponent)
}

// captures reports whether a reception at rxPower survives an overlapping
// signal at intfPower.
func (c *Channel) captures(rxPower, intfPower float64) bool {
	return c.cfg.CaptureRatio > 0 && rxPower >= c.cfg.CaptureRatio*intfPower
}

func (r *Radio) signalEnd(from *Radio, pkt *packet.Packet) {
	// Deliver the frame before reporting carrier-idle so the MAC knows
	// whether the medium went idle after a corrupted frame (EIFS rule).
	r.deliver(from, pkt)
	r.sensed--
	if r.sensed == 0 {
		r.mac.OnCarrierIdle()
	}
}

func (r *Radio) deliver(from *Radio, pkt *packet.Packet) {
	if r.down || !r.rxLive || r.rx.from != from || r.rx.pkt != pkt {
		return // crashed, or this signal was not the one being received
	}
	rx := r.rx
	r.rxLive = false
	r.rx = reception{}
	if r.transmitting {
		return // started transmitting mid-reception; frame destroyed
	}
	if rx.collided {
		r.framesCollided++
		r.mac.OnReceive(pkt, false)
		return
	}
	if r.ch.lossDraw(pkt) {
		r.framesError++
		r.mac.OnReceive(pkt, false)
		return
	}
	r.framesDelivered++
	r.mac.OnReceive(pkt, true)
}

// TxTime reports the airtime of a frame of the given size; see
// Channel.TxTime.
func (r *Radio) TxTime(bytes int, control bool) sim.Time {
	return r.ch.TxTime(bytes, control)
}

// lossDraw returns true when the channel's random-loss model corrupts pkt.
func (c *Channel) lossDraw(pkt *packet.Packet) bool {
	if g := c.ge; g != nil {
		// Advance the Gilbert–Elliott chain one step per frame, then
		// apply the state's loss rate. Like the bit-error model, bursty
		// fading corrupts control frames too.
		if g.bad {
			if c.sim.Rand().Float64() < g.pBadGood {
				g.bad = false
			}
		} else if c.sim.Rand().Float64() < g.pGoodBad {
			g.bad = true
		}
		p := g.lossGood
		if g.bad {
			p = g.lossBad
		}
		if p > 0 && c.sim.Rand().Float64() < p {
			return true
		}
	}
	if c.cfg.BitErrorRate > 0 {
		bits := float64(pkt.Size+packet.MACHeaderSize) * 8
		if pkt.Kind == packet.KindMACControl {
			bits = float64(pkt.Size) * 8
		}
		pErr := 1 - math.Pow(1-c.cfg.BitErrorRate, bits)
		if c.sim.Rand().Float64() < pErr {
			return true
		}
	}
	if c.cfg.PacketErrorRate > 0 && pkt.Kind != packet.KindMACControl {
		if c.sim.Rand().Float64() < c.cfg.PacketErrorRate {
			return true
		}
	}
	return false
}
