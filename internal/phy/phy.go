// Package phy models the shared wireless medium: disc-radio propagation,
// carrier sensing, collision-on-overlap reception, half-duplex radios and
// random frame loss (per-packet and per-bit error models).
//
// The model follows the NS-2 defaults the paper uses: 2 Mbps radios with a
// 250 m transmission range and a 550 m carrier-sense/interference range.
// Signals reach neighbours after speed-of-light propagation delay; a frame
// is received intact iff no other signal overlaps it at the receiver and
// it survives the random loss draw.
package phy

import (
	"fmt"
	"math"

	"muzha/internal/packet"
	"muzha/internal/sim"
	"muzha/internal/topo"
)

// Config holds channel-wide physical parameters.
type Config struct {
	TxRange  float64 // receive range in metres (paper: 250)
	CSRange  float64 // carrier-sense/interference range in metres (NS-2 default: 550)
	DataRate float64 // payload bit rate in bit/s (paper: 2e6)
	// BasicRate is the bit rate of MAC control frames and PLCP headers
	// (802.11 sends these at the basic rate for backwards compatibility).
	BasicRate float64
	// Preamble is the PLCP preamble+header time prepended to every frame
	// (802.11 long preamble: 192 us).
	Preamble sim.Time

	// PacketErrorRate drops each received data/routing frame independently
	// with this probability; MAC control frames are exempt. This is the
	// "random loss" knob of Section 4.7.
	PacketErrorRate float64
	// BitErrorRate corrupts frames with probability 1-(1-BER)^bits,
	// applied to every frame. Zero disables it.
	BitErrorRate float64

	// CaptureRatio is the power ratio above which an in-progress
	// reception survives an overlapping weaker signal (NS-2's 10 dB
	// capture threshold under two-ray ground r^-4 propagation). Signal
	// power is modelled as distance^-PathLossExponent. Zero disables
	// capture: any overlap collides.
	CaptureRatio float64
	// PathLossExponent is the propagation power-law exponent (two-ray
	// ground: 4).
	PathLossExponent float64
}

// DefaultConfig returns the paper's Table 5.1 physical parameters.
func DefaultConfig() Config {
	return Config{
		TxRange:          250,
		CSRange:          550,
		DataRate:         2e6,
		BasicRate:        1e6,
		Preamble:         192 * sim.Microsecond,
		CaptureRatio:     10,
		PathLossExponent: 4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.TxRange <= 0:
		return fmt.Errorf("phy: TxRange must be positive, got %g", c.TxRange)
	case c.CSRange < c.TxRange:
		return fmt.Errorf("phy: CSRange (%g) must be >= TxRange (%g)", c.CSRange, c.TxRange)
	case c.DataRate <= 0 || c.BasicRate <= 0:
		return fmt.Errorf("phy: rates must be positive, got data=%g basic=%g", c.DataRate, c.BasicRate)
	case c.PacketErrorRate < 0 || c.PacketErrorRate >= 1:
		return fmt.Errorf("phy: PacketErrorRate must be in [0,1), got %g", c.PacketErrorRate)
	case c.BitErrorRate < 0 || c.BitErrorRate >= 1:
		return fmt.Errorf("phy: BitErrorRate must be in [0,1), got %g", c.BitErrorRate)
	case c.CaptureRatio < 0:
		return fmt.Errorf("phy: CaptureRatio must be >= 0, got %g", c.CaptureRatio)
	case c.CaptureRatio > 0 && c.PathLossExponent <= 0:
		return fmt.Errorf("phy: capture needs a positive PathLossExponent, got %g", c.PathLossExponent)
	}
	return nil
}

// MAC is the upcall interface a radio drives. Implemented by internal/mac.
type MAC interface {
	// OnCarrierBusy fires when external signal energy first appears at
	// the radio (physical carrier sense went busy).
	OnCarrierBusy()
	// OnCarrierIdle fires when the last external signal fades.
	OnCarrierIdle()
	// OnReceive delivers a frame whose signal ended at this radio. ok is
	// false when the frame was corrupted by collision or channel error
	// (the MAC then defers EIFS instead of DIFS).
	OnReceive(pkt *packet.Packet, ok bool)
	// OnTxDone fires when this radio's own transmission leaves the air.
	OnTxDone(pkt *packet.Packet)
}

const lightSpeed = 299_792_458.0 // m/s

// Channel is the shared medium connecting all radios.
type Channel struct {
	sim    *sim.Simulator
	cfg    Config
	radios []*Radio

	// Fault-injection state (see internal/fault): directional link
	// mutes, partition classes, and the Gilbert–Elliott loss overlay.
	blocked map[[2]int]bool
	group   map[int]int // node -> partition class; nil when unpartitioned
	ge      *geState
}

// geState is the Gilbert–Elliott two-state Markov loss process, advanced
// one step per frame while enabled.
type geState struct {
	pGoodBad, pBadGood float64
	lossGood, lossBad  float64
	bad                bool
}

// NewChannel creates the medium. Radios are added with AddRadio.
func NewChannel(s *sim.Simulator, cfg Config) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Channel{sim: s, cfg: cfg}, nil
}

// Config returns the channel parameters.
func (c *Channel) Config() Config { return c.cfg }

// AddRadio attaches a radio at pos and returns it. The returned radio's ID
// equals its attach order.
func (c *Channel) AddRadio(pos topo.Position, mac MAC) *Radio {
	r := &Radio{ch: c, id: len(c.radios), pos: pos, mac: mac}
	c.radios = append(c.radios, r)
	return r
}

// SetPosition moves a radio; implements topo.PositionSetter for mobility.
func (c *Channel) SetPosition(node int, pos topo.Position) {
	if node >= 0 && node < len(c.radios) {
		c.radios[node].pos = pos
	}
}

// --- fault-injection controls (implements fault.Medium) ---

// SetLinkBlocked mutes (or restores) the directional link a->b: frames
// transmitted by a no longer reach b at all, not even as interference.
// Frames already in the air are unaffected.
func (c *Channel) SetLinkBlocked(a, b int, blocked bool) {
	if c.blocked == nil {
		c.blocked = make(map[[2]int]bool)
	}
	if blocked {
		c.blocked[[2]int{a, b}] = true
	} else {
		delete(c.blocked, [2]int{a, b})
	}
}

// SetPartition installs communication classes: frames pass only between
// nodes of the same group. Nodes not listed share one implicit leftover
// group.
func (c *Channel) SetPartition(groups [][]int) {
	m := make(map[int]int, len(c.radios))
	for gi, g := range groups {
		for _, id := range g {
			m[id] = gi + 1 // leftover nodes default to class 0
		}
	}
	c.group = m
}

// ClearPartition removes the partition.
func (c *Channel) ClearPartition() { c.group = nil }

// SetBurstLoss enables a Gilbert–Elliott bursty-loss overlay, layered on
// top of the uniform PacketErrorRate/BitErrorRate models. Each phase
// starts in the good state.
func (c *Channel) SetBurstLoss(pGoodBad, pBadGood, lossGood, lossBad float64) {
	c.ge = &geState{pGoodBad: pGoodBad, pBadGood: pBadGood, lossGood: lossGood, lossBad: lossBad}
}

// ClearBurstLoss disables the overlay.
func (c *Channel) ClearBurstLoss() { c.ge = nil }

// linkOpen reports whether frames from node a currently reach node b.
func (c *Channel) linkOpen(a, b int) bool {
	if c.blocked != nil && c.blocked[[2]int{a, b}] {
		return false
	}
	if c.group != nil && c.group[a] != c.group[b] {
		return false
	}
	return true
}

// TxTime returns a frame's airtime: preamble plus payload bits at the
// data rate (control=false) or basic rate (control=true).
func (c *Channel) TxTime(bytes int, control bool) sim.Time {
	rate := c.cfg.DataRate
	if control {
		rate = c.cfg.BasicRate
	}
	bits := float64(bytes * 8)
	return c.cfg.Preamble + sim.Time(math.Round(bits/rate*1e9))
}

func (c *Channel) propDelay(d float64) sim.Time {
	return sim.Time(math.Round(d / lightSpeed * 1e9))
}

// Radio is one node's transceiver. Half-duplex: a transmitting radio
// cannot receive, and vice versa reception in progress is aborted if the
// MAC transmits anyway.
type Radio struct {
	ch  *Channel
	id  int
	pos topo.Position
	mac MAC

	transmitting bool
	down         bool // crashed: radiates nothing, receives nothing
	sensed       int  // number of external signals currently at this radio
	rx           *reception

	// Stats.
	framesSent      uint64
	framesDelivered uint64
	framesCollided  uint64
	framesError     uint64
}

type reception struct {
	from     *Radio
	pkt      *packet.Packet
	power    float64
	collided bool
}

// ID returns the radio's channel index.
func (r *Radio) ID() int { return r.id }

// Position returns the radio's current location.
func (r *Radio) Position() topo.Position { return r.pos }

// CarrierBusy reports physical carrier sense: true while any external
// signal is present. The radio's own transmission is not included; the MAC
// tracks that itself.
func (r *Radio) CarrierBusy() bool { return r.sensed > 0 }

// Transmitting reports whether the radio is on the air.
func (r *Radio) Transmitting() bool { return r.transmitting }

// SetDown silences (or revives) the radio. While down it radiates
// nothing and delivers nothing up; any reception in progress is
// abandoned. Signals already in flight from this radio keep propagating
// (they left the antenna before the crash).
func (r *Radio) SetDown(down bool) {
	r.down = down
	if down {
		r.rx = nil
	}
}

// Down reports whether the radio is silenced.
func (r *Radio) Down() bool { return r.down }

// Stats returns cumulative counters: frames sent, delivered to this radio
// intact, corrupted by collision, and dropped by channel error.
func (r *Radio) Stats() (sent, delivered, collided, chanError uint64) {
	return r.framesSent, r.framesDelivered, r.framesCollided, r.framesError
}

// Transmit puts pkt on the air for airtime. The MAC must ensure the radio
// is not already transmitting. Any reception in progress at this radio is
// destroyed (half-duplex).
func (r *Radio) Transmit(pkt *packet.Packet, airtime sim.Time) {
	if r.transmitting {
		panic(fmt.Sprintf("phy: radio %d already transmitting", r.id))
	}
	r.transmitting = true
	r.framesSent++
	if r.rx != nil {
		// Own transmission stomps the frame being received.
		r.rx = nil
	}
	c := r.ch
	if r.down {
		// Crashed radio: complete the local transmit cycle so the MAC
		// state machine stays consistent, but radiate nothing.
		c.sim.Schedule(airtime, func() {
			r.transmitting = false
			r.mac.OnTxDone(pkt)
		})
		return
	}
	for _, other := range c.radios {
		if other == r {
			continue
		}
		if other.down || !c.linkOpen(r.id, other.id) {
			continue
		}
		d := topo.Dist(r.pos, other.pos)
		if d > c.cfg.CSRange {
			continue
		}
		other := other
		inRx := d <= c.cfg.TxRange
		delay := c.propDelay(d)
		power := c.rxPower(d)
		c.sim.Schedule(delay, func() { other.signalStart(r, pkt, power, inRx) })
		c.sim.Schedule(delay+airtime, func() { other.signalEnd(r, pkt) })
	}
	c.sim.Schedule(airtime, func() {
		r.transmitting = false
		r.mac.OnTxDone(pkt)
	})
}

func (r *Radio) signalStart(from *Radio, pkt *packet.Packet, power float64, inRxRange bool) {
	r.sensed++
	if r.sensed == 1 {
		r.mac.OnCarrierBusy()
	}
	if !inRxRange {
		// Interference-only signal: corrupts a reception in progress
		// unless the reception is strong enough to capture over it.
		if r.rx != nil && !r.ch.captures(r.rx.power, power) {
			r.rx.collided = true
		}
		return
	}
	switch {
	case r.down:
		// Crashed mid-flight: the signal still occupies the air around
		// the radio (sensed count stays balanced) but is never received.
	case r.transmitting:
		// Half-duplex: frame missed entirely.
	case r.rx != nil:
		// Overlap at the receiver. The in-progress frame survives only
		// if it captures over the new arrival (NS-2 semantics: the
		// radio stays locked on the first signal either way, so the new
		// frame is never received).
		if !r.ch.captures(r.rx.power, power) {
			r.rx.collided = true
		}
	default:
		r.rx = &reception{from: from, pkt: pkt, power: power}
	}
}

// rxPower returns the received signal power at distance d under the
// configured power-law propagation model. Only ratios matter.
func (c *Channel) rxPower(d float64) float64 {
	if c.cfg.CaptureRatio <= 0 {
		return 1
	}
	if d < 1 {
		d = 1
	}
	return math.Pow(d, -c.cfg.PathLossExponent)
}

// captures reports whether a reception at rxPower survives an overlapping
// signal at intfPower.
func (c *Channel) captures(rxPower, intfPower float64) bool {
	return c.cfg.CaptureRatio > 0 && rxPower >= c.cfg.CaptureRatio*intfPower
}

func (r *Radio) signalEnd(from *Radio, pkt *packet.Packet) {
	// Deliver the frame before reporting carrier-idle so the MAC knows
	// whether the medium went idle after a corrupted frame (EIFS rule).
	r.deliver(from, pkt)
	r.sensed--
	if r.sensed == 0 {
		r.mac.OnCarrierIdle()
	}
}

func (r *Radio) deliver(from *Radio, pkt *packet.Packet) {
	rx := r.rx
	if r.down || rx == nil || rx.from != from || rx.pkt != pkt {
		return // crashed, or this signal was not the one being received
	}
	r.rx = nil
	if r.transmitting {
		return // started transmitting mid-reception; frame destroyed
	}
	if rx.collided {
		r.framesCollided++
		r.mac.OnReceive(pkt, false)
		return
	}
	if r.ch.lossDraw(pkt) {
		r.framesError++
		r.mac.OnReceive(pkt, false)
		return
	}
	r.framesDelivered++
	r.mac.OnReceive(pkt, true)
}

// TxTime reports the airtime of a frame of the given size; see
// Channel.TxTime.
func (r *Radio) TxTime(bytes int, control bool) sim.Time {
	return r.ch.TxTime(bytes, control)
}

// lossDraw returns true when the channel's random-loss model corrupts pkt.
func (c *Channel) lossDraw(pkt *packet.Packet) bool {
	if g := c.ge; g != nil {
		// Advance the Gilbert–Elliott chain one step per frame, then
		// apply the state's loss rate. Like the bit-error model, bursty
		// fading corrupts control frames too.
		if g.bad {
			if c.sim.Rand().Float64() < g.pBadGood {
				g.bad = false
			}
		} else if c.sim.Rand().Float64() < g.pGoodBad {
			g.bad = true
		}
		p := g.lossGood
		if g.bad {
			p = g.lossBad
		}
		if p > 0 && c.sim.Rand().Float64() < p {
			return true
		}
	}
	if c.cfg.BitErrorRate > 0 {
		bits := float64(pkt.Size+packet.MACHeaderSize) * 8
		if pkt.Kind == packet.KindMACControl {
			bits = float64(pkt.Size) * 8
		}
		pErr := 1 - math.Pow(1-c.cfg.BitErrorRate, bits)
		if c.sim.Rand().Float64() < pErr {
			return true
		}
	}
	if c.cfg.PacketErrorRate > 0 && pkt.Kind != packet.KindMACControl {
		if c.sim.Rand().Float64() < c.cfg.PacketErrorRate {
			return true
		}
	}
	return false
}
