package phy

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
	"muzha/internal/topo"
)

// stubMAC records every upcall.
type stubMAC struct {
	busy, idle int
	rx         []rxEvent
	txDone     int
}

type rxEvent struct {
	pkt *packet.Packet
	ok  bool
}

func (m *stubMAC) OnCarrierBusy()                      { m.busy++ }
func (m *stubMAC) OnCarrierIdle()                      { m.idle++ }
func (m *stubMAC) OnReceive(p *packet.Packet, ok bool) { m.rx = append(m.rx, rxEvent{p, ok}) }
func (m *stubMAC) OnTxDone(p *packet.Packet)           { m.txDone++ }

func newTestChannel(t *testing.T, seed int64, cfg Config) (*sim.Simulator, *Channel) {
	t.Helper()
	s := sim.New(seed)
	ch, err := NewChannel(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, ch
}

func dataPkt(uid uint64, size int) *packet.Packet {
	return &packet.Packet{UID: uid, Kind: packet.KindData, Size: size}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero tx range", func(c *Config) { c.TxRange = 0 }},
		{"cs below tx", func(c *Config) { c.CSRange = 100 }},
		{"zero data rate", func(c *Config) { c.DataRate = 0 }},
		{"zero basic rate", func(c *Config) { c.BasicRate = 0 }},
		{"per out of range", func(c *Config) { c.PacketErrorRate = 1 }},
		{"negative per", func(c *Config) { c.PacketErrorRate = -0.1 }},
		{"ber out of range", func(c *Config) { c.BitErrorRate = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestTxTime(t *testing.T) {
	_, ch := newTestChannel(t, 1, DefaultConfig())
	// 1000 bytes at 2 Mbps = 4 ms payload + 192 us preamble.
	got := ch.TxTime(1000, false)
	want := 192*sim.Microsecond + 4*sim.Millisecond
	if got != want {
		t.Fatalf("TxTime(1000,data) = %v, want %v", got, want)
	}
	// Control frames ride the 1 Mbps basic rate.
	got = ch.TxTime(14, true)
	want = 192*sim.Microsecond + 112*sim.Microsecond
	if got != want {
		t.Fatalf("TxTime(14,control) = %v, want %v", got, want)
	}
}

func TestDeliveryWithinRange(t *testing.T) {
	s, ch := newTestChannel(t, 1, DefaultConfig())
	a := &stubMAC{}
	b := &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	ch.AddRadio(topo.Position{X: 250}, b)

	pkt := dataPkt(1, 1000)
	ra.Transmit(pkt, ch.TxTime(1000, false))
	s.RunAll()

	if len(b.rx) != 1 || !b.rx[0].ok || b.rx[0].pkt != pkt {
		t.Fatalf("receiver got %+v, want one intact frame", b.rx)
	}
	if a.txDone != 1 {
		t.Fatalf("sender OnTxDone = %d, want 1", a.txDone)
	}
	if b.busy != 1 || b.idle != 1 {
		t.Fatalf("receiver carrier busy/idle = %d/%d, want 1/1", b.busy, b.idle)
	}
	if len(a.rx) != 0 {
		t.Fatal("sender received its own frame")
	}
}

func TestNoDeliveryBeyondTxRange(t *testing.T) {
	s, ch := newTestChannel(t, 1, DefaultConfig())
	a, b, c := &stubMAC{}, &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	ch.AddRadio(topo.Position{X: 400}, b) // in CS range, beyond RX range
	ch.AddRadio(topo.Position{X: 600}, c) // beyond CS range

	ra.Transmit(dataPkt(1, 500), ch.TxTime(500, false))
	s.RunAll()

	if len(b.rx) != 0 {
		t.Fatal("node beyond TX range received a frame")
	}
	if b.busy != 1 {
		t.Fatal("node in CS range should sense carrier")
	}
	if c.busy != 0 || len(c.rx) != 0 {
		t.Fatal("node beyond CS range sensed or received")
	}
}

func TestCollisionAtReceiver(t *testing.T) {
	// Hidden-terminal layout: A and C both reach B but not each other.
	s, ch := newTestChannel(t, 1, DefaultConfig())
	a, b, c := &stubMAC{}, &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	ch.AddRadio(topo.Position{X: 250}, b)
	rc := ch.AddRadio(topo.Position{X: 500 + 100}, c) // 600 m from A: hidden

	p1, p2 := dataPkt(1, 1000), dataPkt(2, 1000)
	air := ch.TxTime(1000, false)
	ra.Transmit(p1, air)
	s.Schedule(air/2, func() { rc.Transmit(p2, air) })
	s.RunAll()

	// B must see exactly one reception attempt (the first frame), marked
	// corrupted; the overlapping frame is never captured.
	if len(b.rx) != 1 {
		t.Fatalf("receiver rx events = %d, want 1", len(b.rx))
	}
	if b.rx[0].ok {
		t.Fatal("overlapping frames were delivered intact")
	}
	_, _, collided, _ := ch.radios[1].Stats()
	if collided != 1 {
		t.Fatalf("collided counter = %d, want 1", collided)
	}
}

func TestInterferenceOnlySignalCorrupts(t *testing.T) {
	// D is 400 m from B: inside CS/interference range, outside RX range.
	// Its signal must corrupt B's ongoing reception from A.
	s, ch := newTestChannel(t, 1, DefaultConfig())
	a, b, d := &stubMAC{}, &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	ch.AddRadio(topo.Position{X: 250}, b)
	rd := ch.AddRadio(topo.Position{X: 650}, d) // 400 m from B, 650 m from A

	air := ch.TxTime(1000, false)
	ra.Transmit(dataPkt(1, 1000), air)
	s.Schedule(air/2, func() { rd.Transmit(dataPkt(2, 1000), air) })
	s.RunAll()

	if len(b.rx) != 1 || b.rx[0].ok {
		t.Fatalf("interference did not corrupt reception: %+v", b.rx)
	}
}

func TestHalfDuplexMissesWhileTransmitting(t *testing.T) {
	s, ch := newTestChannel(t, 1, DefaultConfig())
	a, b := &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	rb := ch.AddRadio(topo.Position{X: 250}, b)

	air := ch.TxTime(1000, false)
	// Both transmit simultaneously: neither receives the other's frame.
	ra.Transmit(dataPkt(1, 1000), air)
	rb.Transmit(dataPkt(2, 1000), air)
	s.RunAll()

	if len(a.rx) != 0 || len(b.rx) != 0 {
		t.Fatalf("half-duplex violated: a=%d b=%d rx events", len(a.rx), len(b.rx))
	}
}

func TestTransmitDuringReceptionDestroysFrame(t *testing.T) {
	s, ch := newTestChannel(t, 1, DefaultConfig())
	a, b := &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	rb := ch.AddRadio(topo.Position{X: 250}, b)

	air := ch.TxTime(1000, false)
	ra.Transmit(dataPkt(1, 1000), air)
	// B starts its own transmission mid-reception.
	s.Schedule(air/2, func() { rb.Transmit(dataPkt(2, 100), ch.TxTime(100, false)) })
	s.RunAll()

	for _, e := range b.rx {
		if e.pkt.UID == 1 {
			t.Fatal("frame delivered despite receiver transmitting")
		}
	}
}

func TestSequentialFramesBothDelivered(t *testing.T) {
	s, ch := newTestChannel(t, 1, DefaultConfig())
	a, b := &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	ch.AddRadio(topo.Position{X: 250}, b)

	air := ch.TxTime(500, false)
	ra.Transmit(dataPkt(1, 500), air)
	s.Schedule(air+sim.Millisecond, func() { ra.Transmit(dataPkt(2, 500), air) })
	s.RunAll()

	if len(b.rx) != 2 || !b.rx[0].ok || !b.rx[1].ok {
		t.Fatalf("sequential frames: %+v", b.rx)
	}
	if b.busy != 2 || b.idle != 2 {
		t.Fatalf("busy/idle transitions = %d/%d, want 2/2", b.busy, b.idle)
	}
}

func TestPacketErrorRateDropsFrames(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PacketErrorRate = 0.5
	s, ch := newTestChannel(t, 42, cfg)
	a, b := &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	ch.AddRadio(topo.Position{X: 250}, b)

	const n = 400
	air := ch.TxTime(100, false)
	for i := 0; i < n; i++ {
		i := i
		s.Schedule(sim.Time(i)*10*sim.Millisecond, func() {
			ra.Transmit(dataPkt(uint64(i), 100), air)
		})
	}
	s.RunAll()

	okCount := 0
	for _, e := range b.rx {
		if e.ok {
			okCount++
		}
	}
	if len(b.rx) != n {
		t.Fatalf("rx events = %d, want %d", len(b.rx), n)
	}
	// Expect roughly half; allow generous slack for a 400-sample draw.
	if okCount < n/2-60 || okCount > n/2+60 {
		t.Fatalf("okCount = %d with PER 0.5 over %d frames", okCount, n)
	}
}

func TestControlFramesExemptFromPacketErrorRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PacketErrorRate = 0.9
	s, ch := newTestChannel(t, 7, cfg)
	a, b := &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	ch.AddRadio(topo.Position{X: 250}, b)

	air := ch.TxTime(14, true)
	for i := 0; i < 50; i++ {
		i := i
		s.Schedule(sim.Time(i)*5*sim.Millisecond, func() {
			ra.Transmit(&packet.Packet{UID: uint64(i), Kind: packet.KindMACControl, Size: 14}, air)
		})
	}
	s.RunAll()

	for _, e := range b.rx {
		if !e.ok {
			t.Fatal("MAC control frame dropped by PacketErrorRate")
		}
	}
	if len(b.rx) != 50 {
		t.Fatalf("control frames delivered = %d, want 50", len(b.rx))
	}
}

func TestBitErrorRateScalesWithSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BitErrorRate = 1e-4
	s, ch := newTestChannel(t, 11, cfg)
	a, b := &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	ch.AddRadio(topo.Position{X: 250}, b)

	// 1500-byte frames: p(err) ~ 1-(1-1e-4)^12000 ~ 0.70.
	const n = 200
	air := ch.TxTime(1500, false)
	for i := 0; i < n; i++ {
		i := i
		s.Schedule(sim.Time(i)*20*sim.Millisecond, func() {
			ra.Transmit(dataPkt(uint64(i), 1500), air)
		})
	}
	s.RunAll()

	bad := 0
	for _, e := range b.rx {
		if !e.ok {
			bad++
		}
	}
	if bad < n/2 {
		t.Fatalf("BER 1e-4 corrupted only %d/%d large frames", bad, n)
	}
}

func TestMobilityChangesConnectivity(t *testing.T) {
	s, ch := newTestChannel(t, 1, DefaultConfig())
	a, b := &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	ch.AddRadio(topo.Position{X: 250}, b)

	air := ch.TxTime(100, false)
	ra.Transmit(dataPkt(1, 100), air)
	s.Schedule(10*sim.Millisecond, func() {
		ch.SetPosition(1, topo.Position{X: 5000}) // move B out of range
		ra.Transmit(dataPkt(2, 100), air)
	})
	s.RunAll()

	if len(b.rx) != 1 || b.rx[0].pkt.UID != 1 {
		t.Fatalf("after moving away, rx = %+v", b.rx)
	}
}

func TestStatsCounters(t *testing.T) {
	s, ch := newTestChannel(t, 1, DefaultConfig())
	a, b := &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	rb := ch.AddRadio(topo.Position{X: 250}, b)

	ra.Transmit(dataPkt(1, 100), ch.TxTime(100, false))
	s.RunAll()

	sent, _, _, _ := ra.Stats()
	_, delivered, _, _ := rb.Stats()
	if sent != 1 || delivered != 1 {
		t.Fatalf("sent=%d delivered=%d, want 1/1", sent, delivered)
	}
	if ra.ID() != 0 || rb.ID() != 1 {
		t.Fatal("radio IDs not assigned in attach order")
	}
	if rb.Position().X != 250 {
		t.Fatal("position accessor wrong")
	}
}

func TestDoubleTransmitPanics(t *testing.T) {
	s, ch := newTestChannel(t, 1, DefaultConfig())
	ra := ch.AddRadio(topo.Position{X: 0}, &stubMAC{})
	ra.Transmit(dataPkt(1, 100), ch.TxTime(100, false))
	defer func() {
		if recover() == nil {
			t.Fatal("double Transmit did not panic")
		}
	}()
	ra.Transmit(dataPkt(2, 100), ch.TxTime(100, false))
	s.RunAll()
}

func TestCaptureStrongerSignalSurvives(t *testing.T) {
	// Receiver at 250 m from the sender; interferer 500 m away (2 hops
	// down a chain). Two-ray r^-4: power ratio 16 >= capture ratio 10,
	// so the reception survives the overlap.
	s, ch := newTestChannel(t, 1, DefaultConfig())
	a, b, c := &stubMAC{}, &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	ch.AddRadio(topo.Position{X: 250}, b)
	rc := ch.AddRadio(topo.Position{X: 750}, c) // 500 m from B

	air := ch.TxTime(1000, false)
	ra.Transmit(dataPkt(1, 1000), air)
	s.Schedule(air/2, func() { rc.Transmit(dataPkt(2, 1000), air) })
	s.RunAll()

	if len(b.rx) != 1 || !b.rx[0].ok {
		t.Fatalf("capture failed: %+v", b.rx)
	}
}

func TestCaptureComparableSignalsCollide(t *testing.T) {
	// Interferer at 350 m from the receiver: ratio (350/250)^4 ~ 3.8 <
	// 10, not capturable.
	s, ch := newTestChannel(t, 1, DefaultConfig())
	a, b, c := &stubMAC{}, &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	ch.AddRadio(topo.Position{X: 250}, b)
	rc := ch.AddRadio(topo.Position{X: 600}, c) // 350 m from B

	air := ch.TxTime(1000, false)
	ra.Transmit(dataPkt(1, 1000), air)
	s.Schedule(air/2, func() { rc.Transmit(dataPkt(2, 1000), air) })
	s.RunAll()

	if len(b.rx) != 1 || b.rx[0].ok {
		t.Fatalf("comparable overlap did not collide: %+v", b.rx)
	}
}

func TestCaptureDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CaptureRatio = 0
	s, ch := newTestChannel(t, 1, cfg)
	a, b, c := &stubMAC{}, &stubMAC{}, &stubMAC{}
	ra := ch.AddRadio(topo.Position{X: 0}, a)
	ch.AddRadio(topo.Position{X: 250}, b)
	rc := ch.AddRadio(topo.Position{X: 750}, c)

	air := ch.TxTime(1000, false)
	ra.Transmit(dataPkt(1, 1000), air)
	s.Schedule(air/2, func() { rc.Transmit(dataPkt(2, 1000), air) })
	s.RunAll()

	if len(b.rx) != 1 || b.rx[0].ok {
		t.Fatal("overlap survived with capture disabled")
	}
}

func TestCaptureValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CaptureRatio = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative capture ratio accepted")
	}
	cfg = DefaultConfig()
	cfg.PathLossExponent = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("capture without path-loss exponent accepted")
	}
}
