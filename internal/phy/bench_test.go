package phy

import (
	"testing"

	"muzha/internal/packet"
	"muzha/internal/sim"
	"muzha/internal/topo"
)

// Medium microbenchmarks: saturated Transmit fan-out through the
// neighbor cache, static and with mobility-driven cache invalidation,
// isolated from MAC/TCP behaviour (benchMAC does nothing). Both report
// events/s — engine events executed per wall-clock second — so the CI
// benchmark gate can compare them against BENCH_sim.json.

// benchMAC is a zero-cost MAC so the benchmark measures only the medium.
type benchMAC struct{}

func (benchMAC) OnCarrierBusy()                 {}
func (benchMAC) OnCarrierIdle()                 {}
func (benchMAC) OnReceive(*packet.Packet, bool) {}
func (benchMAC) OnTxDone(*packet.Packet)        {}

// benchChannel builds a rows x cols grid spaced 200 m apart: with the
// default 550 m carrier-sense range the centre radio fans every frame
// out to over a dozen neighbours.
func benchChannel(b *testing.B, rows, cols int) (*sim.Simulator, *Channel, []*Radio) {
	b.Helper()
	s := sim.New(1)
	ch, err := NewChannel(s, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	radios := make([]*Radio, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			radios = append(radios, ch.AddRadio(topo.Position{X: float64(c) * 200, Y: float64(r) * 200}, benchMAC{}))
		}
	}
	return s, ch, radios
}

// BenchmarkTransmitFanout measures a saturated static-topology transmit:
// one frame from the grid centre reaching every radio in carrier-sense
// range, events drained per iteration. The neighbor cache is built once.
func BenchmarkTransmitFanout(b *testing.B) {
	s, ch, radios := benchChannel(b, 5, 5)
	centre := radios[12]
	pkt := &packet.Packet{Kind: packet.KindData, Size: 1000}
	air := ch.TxTime(1000, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centre.Transmit(pkt, air)
		s.RunAll()
	}
	b.ReportMetric(float64(s.EventsExecuted())/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTransmitMobile is the same fan-out with the transmitter moved
// before every frame, forcing a grid re-bucket and an O(neighbors)
// neighbor-cache rebuild per transmission — the mobility worst case.
func BenchmarkTransmitMobile(b *testing.B) {
	s, ch, radios := benchChannel(b, 5, 5)
	centre := radios[12]
	pkt := &packet.Packet{Kind: packet.KindData, Size: 1000}
	air := ch.TxTime(1000, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.SetPosition(centre.ID(), topo.Position{X: 400 + float64(i%7)*25, Y: 400 + float64(i%5)*25})
		centre.Transmit(pkt, air)
		s.RunAll()
	}
	b.ReportMetric(float64(s.EventsExecuted())/b.Elapsed().Seconds(), "events/s")
}

// TestBenchChannelShape pins the fan-out the benchmarks exercise so a
// future topology tweak cannot silently turn them into no-ops.
func TestBenchChannelShape(t *testing.T) {
	s := sim.New(1)
	ch, err := NewChannel(s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var radios []*Radio
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			radios = append(radios, ch.AddRadio(topo.Position{X: float64(c) * 200, Y: float64(r) * 200}, benchMAC{}))
		}
	}
	centre := radios[12]
	centre.rebuildNeighbors()
	if len(centre.nb) < 12 {
		t.Fatalf("centre radio has %d CS-range neighbours, want >= 12", len(centre.nb))
	}
	for i := 1; i < len(centre.nb); i++ {
		if centre.nb[i-1].r.id >= centre.nb[i].r.id {
			t.Fatalf("neighbor cache not sorted by id at %d: %v >= %v",
				i, centre.nb[i-1].r.id, centre.nb[i].r.id)
		}
	}
}
