package plot

import (
	"encoding/xml"
	"strings"
	"testing"
	"testing/quick"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Throughput vs Hops",
		XLabel: "hops",
		YLabel: "bit/s",
		Series: []Series{
			{Name: "newreno", X: []float64{4, 8, 16}, Y: []float64{318215, 254105, 216729}},
			{Name: "muzha", X: []float64{4, 8, 16}, Y: []float64{339888, 267602, 209332}},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg, err := sampleChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	// Must parse as XML.
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
}

func TestSVGContainsExpectedElements(t *testing.T) {
	svg, err := sampleChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "polyline", "newreno", "muzha",
		"Throughput vs Hops", "hops", "bit/s",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two series, two polylines.
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	c := sampleChart()
	c.Title = `a < b & "c"`
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `a < b &`) {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "a &lt; b &amp;") {
		t.Fatal("escaped title missing")
	}
}

func TestSVGErrors(t *testing.T) {
	if _, err := (&Chart{}).SVG(); err == nil {
		t.Fatal("empty chart accepted")
	}
	c := &Chart{Series: []Series{{Name: "bad", X: []float64{1, 2}, Y: []float64{1}}}}
	if _, err := c.SVG(); err == nil {
		t.Fatal("mismatched series accepted")
	}
	c = &Chart{Series: []Series{{Name: "empty"}}}
	if _, err := c.SVG(); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestSVGDegenerateRanges(t *testing.T) {
	// Single point and constant series must not divide by zero.
	c := &Chart{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{7}}}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("degenerate range produced NaN/Inf coordinates")
	}
}

func TestTicksCoverRange(t *testing.T) {
	ts := ticks(0, 100, 6)
	if len(ts) < 3 || len(ts) > 8 {
		t.Fatalf("ticks(0,100,6) = %v", ts)
	}
	if ts[0] < 0 || ts[len(ts)-1] > 100.001 {
		t.Fatalf("ticks out of range: %v", ts)
	}
}

// Property: ticks are strictly ascending and within [lo, hi] (with float
// slack), for any sane range.
func TestQuickTicks(t *testing.T) {
	f := func(rawLo, rawSpan uint16) bool {
		lo := float64(rawLo)
		span := float64(rawSpan%10000) + 1
		hi := lo + span
		ts := ticks(lo, hi, 6)
		if len(ts) == 0 || len(ts) > 12 {
			return false
		}
		prev := lo - 1
		for _, tk := range ts {
			if tk <= prev || tk < lo-span/1e6 || tk > hi+span/1e6 {
				return false
			}
			prev = tk
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTick(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{2.5, "2.5"},
		{1500, "1.5k"},
		{340000, "340k"},
		{2_000_000, "2M"},
	}
	for _, tt := range tests {
		if got := formatTick(tt.give); got != tt.want {
			t.Errorf("formatTick(%g) = %q, want %q", tt.give, got, tt.want)
		}
	}
}
