// Package plot renders simple SVG line charts with the standard library
// only. It exists so the reproduction can emit figure files directly
// (cmd/muzhaplot) instead of requiring an external plotting stack.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a renderable line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height in pixels; defaults 720x420.
	Width, Height int
}

// palette holds line colours; chosen for contrast on white.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

const (
	marginLeft   = 70.0
	marginRight  = 20.0
	marginTop    = 40.0
	marginBottom = 50.0
)

// SVG renders the chart. It returns an error for empty or malformed
// series.
func (c *Chart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 420
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x values but %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %q is empty", s.Name)
		}
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	// Zero-baseline for magnitude plots; pad degenerate ranges.
	if ymin > 0 {
		ymin = 0
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	plotW := float64(w) - marginLeft - marginRight
	plotH := float64(h) - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return marginTop + plotH - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)

	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`,
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`,
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)

	// Ticks and grid.
	for _, t := range ticks(xmin, xmax, 6) {
		x := px(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`,
			x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`,
			x, marginTop+plotH+16, formatTick(t))
	}
	for _, t := range ticks(ymin, ymax, 5) {
		y := py(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`,
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`,
			marginLeft-6, y+4, formatTick(t))
	}

	// Series.
	for i, s := range c.Series {
		colour := palette[i%len(palette)]
		var pts strings.Builder
		for j := range s.X {
			if j > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", px(s.X[j]), py(s.Y[j]))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`,
			colour, pts.String())
	}

	// Legend.
	lx, ly := marginLeft+plotW-140, marginTop+8.0
	for i, s := range c.Series {
		colour := palette[i%len(palette)]
		y := ly + float64(i)*16
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`,
			lx, y, lx+18, y, colour)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f">%s</text>`, lx+24, y+4, escape(s.Name))
	}

	// Labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="20" text-anchor="middle" font-size="14">%s</text>`,
		marginLeft+plotW/2, escape(c.Title))
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`,
		marginLeft+plotW/2, float64(h)-8, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`,
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	b.WriteString(`</svg>`)
	return b.String(), nil
}

// ticks returns ~n human-friendly tick positions covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for _, mult := range []float64{1, 2, 5, 10} {
		if span/(step*mult) <= float64(n) {
			step *= mult
			break
		}
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/1e6; t += step {
		out = append(out, t)
	}
	return out
}

// formatTick renders a tick label compactly (SI suffix for big values).
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return trimZero(v/1e6) + "M"
	case av >= 1e3:
		return trimZero(v/1e3) + "k"
	default:
		return trimZero(v)
	}
}

func trimZero(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
