// Package packet defines the simulated packet: a flat record combining the
// MAC-, IP- and transport-level header fields a wireless multihop simulator
// needs, plus the TCP Muzha AVBW-S (Available Bandwidth Status) IP option.
//
// Packets carry no payload bytes — only sizes — because the experiments
// measure protocol dynamics, not data content.
package packet

import "fmt"

// NodeID identifies a node. IDs double as IP and MAC addresses; the
// simulator has a single flat address space.
type NodeID int32

// Broadcast is the all-nodes destination address.
const Broadcast NodeID = -1

func (n NodeID) String() string {
	if n == Broadcast {
		return "*"
	}
	return fmt.Sprintf("n%d", int32(n))
}

// Kind discriminates what a packet carries.
type Kind int

const (
	// KindData is a transport-layer segment (TCP data or ACK).
	KindData Kind = iota + 1
	// KindRouting is a routing-protocol message (AODV RREQ/RREP/RERR).
	KindRouting
	// KindMACControl is a MAC control frame (RTS/CTS/ACK); these never
	// enter interface queues.
	KindMACControl
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindRouting:
		return "routing"
	case KindMACControl:
		return "mac-control"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Ctrl identifies a MAC control frame subtype.
type Ctrl int

const (
	// CtrlNone marks non-control frames.
	CtrlNone Ctrl = iota
	// CtrlRTS is a request-to-send frame.
	CtrlRTS
	// CtrlCTS is a clear-to-send frame.
	CtrlCTS
	// CtrlACK is a MAC-level acknowledgement frame.
	CtrlACK
)

func (c Ctrl) String() string {
	switch c {
	case CtrlNone:
		return "none"
	case CtrlRTS:
		return "rts"
	case CtrlCTS:
		return "cts"
	case CtrlACK:
		return "ack"
	default:
		return fmt.Sprintf("ctrl(%d)", int(c))
	}
}

// Header and frame sizes in bytes. The MAC/PHY numbers follow IEEE 802.11
// DCF as modelled by NS-2; the IP/TCP numbers are the classical 20+20.
const (
	IPHeaderSize   = 20
	TCPHeaderSize  = 20
	MACHeaderSize  = 28 // data frame MAC header + FCS
	RTSSize        = 20
	CTSSize        = 14
	MACACKSize     = 14
	SACKBlockBytes = 8 // each SACK block costs 8 bytes of TCP options
)

// AVBWMax is the most permissive Data Rate Adjustment Index. A TCP Muzha
// sender stamps every outgoing packet with this value; each forwarding node
// min-replaces it with its own DRAI (Section 4.4 of the paper).
const AVBWMax = 5

// SACKBlock is one contiguous range of received-but-not-acked data,
// [Start, End) in sequence-number space.
type SACKBlock struct {
	Start, End int64
}

// TCPHeader carries the transport fields the simulation uses. Sequence
// numbers count bytes, as in real TCP, but start at 0 per flow.
type TCPHeader struct {
	FlowID int32 // distinguishes flows; stands in for the port pair
	Seq    int64 // first payload byte of this segment
	Ack    int64 // cumulative ACK: next byte expected
	IsAck  bool  // true for pure ACK segments
	SACK   []SACKBlock

	// Muzha feedback fields, echoed by the receiver (Section 4.4, 4.7).
	Echo MuzhaEcho

	// Timestamp when the segment being acknowledged was sent; used by
	// Vegas for fine-grained RTT measurement (echoed by the sink).
	TSEcho int64
}

// MuzhaEcho is the receiver-to-sender feedback of the router-assisted
// state observed on the forward path.
type MuzhaEcho struct {
	// MRAI is the minimum DRAI seen along the forward path by the data
	// packet this ACK acknowledges. Zero means "no information" (the flow
	// is not Muzha or the path did not stamp the option).
	MRAI int
	// Marked reports whether the acknowledged data packet was marked by a
	// congested router. Dup ACKs carrying Marked=true indicate congestion
	// loss; unmarked dup ACKs indicate random loss (Section 4.7).
	Marked bool
}

// Packet is a simulated frame/datagram. One allocation travels the whole
// stack; layers read and write their own fields.
type Packet struct {
	UID  uint64 // unique per-packet ID assigned at creation
	Kind Kind

	// IP-level fields.
	Src, Dst NodeID
	TTL      int
	Size     int // bytes on the wire at the network layer and above

	// MAC-level fields, rewritten at each hop.
	MACSrc, MACDst NodeID
	// Ctrl is the control-frame subtype for KindMACControl packets.
	Ctrl Ctrl
	// MACDur is the 802.11 duration field in nanoseconds: how long the
	// medium stays reserved after this frame ends. Overhearing nodes set
	// their NAV from it.
	MACDur int64

	// Muzha router-assisted fields (the AVBW-S IP option).
	AVBW       int  // min DRAI along the path so far; 0 = option absent
	CongMarked bool // congestion mark set by routers above threshold

	TCP *TCPHeader

	// Payload holds protocol-specific content (e.g. AODV/DSR messages).
	Payload any

	// SrcRoute is the full node path of a source-routed (DSR) packet;
	// RouteHop indexes the current position (the node about to forward).
	// Empty for table-driven (AODV) routing.
	SrcRoute []NodeID
	RouteHop int

	// SendTime is stamped by the transport sender for RTT bookkeeping.
	SendTime int64
	// EnqueuedAt is stamped by the network layer when the packet enters
	// an interface queue, for queueing-delay measurement. Per-hop state.
	EnqueuedAt int64
}

// Clone returns a deep copy. Broadcast MAC delivery hands each receiver its
// own copy so per-hop mutation (TTL, AVBW) cannot alias.
func (p *Packet) Clone() *Packet {
	q := *p
	if len(p.SrcRoute) > 0 {
		q.SrcRoute = make([]NodeID, len(p.SrcRoute))
		copy(q.SrcRoute, p.SrcRoute)
	}
	if p.TCP != nil {
		tcp := *p.TCP
		if len(p.TCP.SACK) > 0 {
			tcp.SACK = make([]SACKBlock, len(p.TCP.SACK))
			copy(tcp.SACK, p.TCP.SACK)
		}
		q.TCP = &tcp
	}
	if c, ok := p.Payload.(Cloner); ok {
		q.Payload = c.ClonePayload()
	}
	return &q
}

// Cloner lets payloads opt in to deep copying on Clone.
type Cloner interface {
	ClonePayload() any
}

// StampAVBW applies a node's DRAI to the packet's AVBW-S option,
// min-replacing per Section 4.4. Packets without the option (AVBW == 0)
// are left untouched.
func (p *Packet) StampAVBW(drai int) {
	if p.AVBW == 0 {
		return
	}
	if drai < p.AVBW {
		p.AVBW = drai
	}
}

func (p *Packet) String() string {
	switch {
	case p.TCP != nil && p.TCP.IsAck:
		return fmt.Sprintf("pkt#%d ack f%d a=%d %v->%v", p.UID, p.TCP.FlowID, p.TCP.Ack, p.Src, p.Dst)
	case p.TCP != nil:
		return fmt.Sprintf("pkt#%d data f%d s=%d %v->%v", p.UID, p.TCP.FlowID, p.TCP.Seq, p.Src, p.Dst)
	default:
		return fmt.Sprintf("pkt#%d %v %v->%v", p.UID, p.Kind, p.Src, p.Dst)
	}
}

// IDGen hands out unique packet IDs. The zero value is ready to use.
type IDGen struct{ next uint64 }

// Next returns a fresh packet UID.
func (g *IDGen) Next() uint64 {
	g.next++
	return g.next
}
