package packet

import (
	"testing"
	"testing/quick"
)

func TestNodeIDString(t *testing.T) {
	if Broadcast.String() != "*" {
		t.Fatalf("Broadcast.String() = %q", Broadcast.String())
	}
	if NodeID(3).String() != "n3" {
		t.Fatalf("NodeID(3).String() = %q", NodeID(3).String())
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		give Kind
		want string
	}{
		{KindData, "data"},
		{KindRouting, "routing"},
		{KindMACControl, "mac-control"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestStampAVBWMinReplaces(t *testing.T) {
	p := &Packet{AVBW: AVBWMax}
	p.StampAVBW(4)
	if p.AVBW != 4 {
		t.Fatalf("AVBW = %d, want 4", p.AVBW)
	}
	p.StampAVBW(5) // larger value must not overwrite the minimum
	if p.AVBW != 4 {
		t.Fatalf("AVBW = %d after larger stamp, want 4", p.AVBW)
	}
	p.StampAVBW(1)
	if p.AVBW != 1 {
		t.Fatalf("AVBW = %d, want 1", p.AVBW)
	}
}

func TestStampAVBWIgnoredWithoutOption(t *testing.T) {
	p := &Packet{} // non-Muzha packet: option absent
	p.StampAVBW(2)
	if p.AVBW != 0 {
		t.Fatalf("AVBW stamped on packet without option: %d", p.AVBW)
	}
}

func TestCloneDeepCopiesTCP(t *testing.T) {
	orig := &Packet{
		UID: 7,
		TCP: &TCPHeader{
			FlowID: 1,
			Seq:    100,
			SACK:   []SACKBlock{{Start: 200, End: 300}},
		},
	}
	c := orig.Clone()
	c.TCP.Seq = 999
	c.TCP.SACK[0].Start = 0
	if orig.TCP.Seq != 100 {
		t.Fatal("Clone shares TCP header with original")
	}
	if orig.TCP.SACK[0].Start != 200 {
		t.Fatal("Clone shares SACK slice with original")
	}
}

type clonablePayload struct{ n int }

func (c *clonablePayload) ClonePayload() any {
	cp := *c
	return &cp
}

func TestClonePayloadCloner(t *testing.T) {
	orig := &Packet{Payload: &clonablePayload{n: 1}}
	c := orig.Clone()
	c.Payload.(*clonablePayload).n = 2
	if orig.Payload.(*clonablePayload).n != 1 {
		t.Fatal("Cloner payload not deep-copied")
	}
}

func TestCloneNilTCP(t *testing.T) {
	p := &Packet{UID: 1, Kind: KindRouting}
	c := p.Clone()
	if c.TCP != nil || c.UID != 1 {
		t.Fatal("Clone of routing packet corrupted")
	}
}

func TestIDGenUnique(t *testing.T) {
	var g IDGen
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if id == 0 {
			t.Fatal("IDGen produced zero UID")
		}
		if seen[id] {
			t.Fatalf("duplicate UID %d", id)
		}
		seen[id] = true
	}
}

// Property: a sequence of stamps always leaves AVBW at the minimum of the
// initial value and every in-range stamp.
func TestQuickStampAVBWIsMin(t *testing.T) {
	f := func(stamps []uint8) bool {
		p := &Packet{AVBW: AVBWMax}
		min := AVBWMax
		for _, s := range stamps {
			v := int(s%5) + 1 // DRAI levels 1..5
			p.StampAVBW(v)
			if v < min {
				min = v
			}
		}
		return p.AVBW == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPacketString(t *testing.T) {
	data := &Packet{UID: 1, Src: 0, Dst: 4, TCP: &TCPHeader{FlowID: 2, Seq: 1460}}
	if got := data.String(); got != "pkt#1 data f2 s=1460 n0->n4" {
		t.Fatalf("data String = %q", got)
	}
	ack := &Packet{UID: 2, Src: 4, Dst: 0, TCP: &TCPHeader{FlowID: 2, Ack: 2920, IsAck: true}}
	if got := ack.String(); got != "pkt#2 ack f2 a=2920 n4->n0" {
		t.Fatalf("ack String = %q", got)
	}
	rt := &Packet{UID: 3, Kind: KindRouting, Src: 1, Dst: Broadcast}
	if got := rt.String(); got != "pkt#3 routing n1->*" {
		t.Fatalf("routing String = %q", got)
	}
}
