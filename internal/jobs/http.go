package jobs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"muzha"
	"muzha/internal/scenario"
)

// API shape (all JSON):
//
//	POST /v1/jobs            {"config": <muzha.Config>}         -> Job (200 cached/coalesced, 202 queued)
//	POST /v1/scenarios       {"scenario": <scenario.Spec>}      -> Job + spec_hash/summary (same statuses)
//	POST /v1/sweeps          {"configs": [<muzha.Config>, ...]} -> {"jobs": [Job, ...]} (atomic admission)
//	GET  /v1/jobs            -> {"jobs": [Job, ...]}
//	GET  /v1/jobs/{id}       -> Job
//	GET  /v1/jobs/{id}/result -> raw canonical Result bytes (409 until done)
//	GET  /v1/jobs/{id}/stream -> SSE: "progress" events, then one "done" event carrying the Job
//	GET  /v1/stats           -> Stats
//	GET  /v1/healthz         -> {"ok": true}
//
// Backpressure: a full queue or an over-limit client gets 429 with a
// Retry-After header; a draining daemon gets 503. Errors are
// {"error": "..."}.

// maxBodyBytes bounds a submission body; a sweep of a few thousand
// configs fits comfortably.
const maxBodyBytes = 32 << 20

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Snapshot())
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/scenarios", s.handleScenario)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	return mux
}

// clientOf identifies the submitter for per-client limits: the
// X-Muzha-Client header when present, else the remote address.
func clientOf(r *http.Request) string {
	if c := r.Header.Get("X-Muzha-Client"); c != "" {
		return c
	}
	return r.RemoteAddr
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Config json.RawMessage `json:"config"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Config) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`body needs a "config" field`))
		return
	}
	j, status, err := s.submitOne(req.Config, clientOf(r))
	if err != nil {
		s.writeBusyOrError(w, status, err)
		return
	}
	writeJSON(w, status, j)
}

// ScenarioJob is the /v1/scenarios response: the admitted job plus
// the scenario's own identity — its canonical-spec hash and summary —
// so a chaos corpus can correlate daemon jobs back to spec entries.
type ScenarioJob struct {
	Job
	SpecHash string `json:"spec_hash"`
	Summary  string `json:"summary"`
}

// handleScenario admits a declarative scenario spec: strict-parse,
// deterministically generate the Config, then share the /v1/jobs
// admission path — so an identical spec (or an identical Config
// reached any other way) still lands on the cache or coalesces.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Scenario json.RawMessage `json:"scenario"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Scenario) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`body needs a "scenario" field`))
		return
	}
	spec, err := scenario.Parse(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := spec.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specHash, err := spec.Hash()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	canonical, err := json.Marshal(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, status, err := s.submitOne(canonical, clientOf(r))
	if err != nil {
		s.writeBusyOrError(w, status, err)
		return
	}
	writeJSON(w, status, ScenarioJob{Job: j, SpecHash: specHash, Summary: spec.Summary()})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Configs []json.RawMessage `json:"configs"`
	}
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`body needs a non-empty "configs" list`))
		return
	}
	client := clientOf(r)

	// Validate and hash everything before taking the lock, then admit
	// atomically: either every new run fits the queue or none is
	// admitted. Partial sweep admission would leave the client guessing
	// which half of its parameter grid exists.
	type item struct {
		hash      string
		canonical json.RawMessage
	}
	items := make([]item, len(req.Configs))
	for i, raw := range req.Configs {
		var cfg muzha.Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("config %d: %w", i, err))
			return
		}
		if err := cfg.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("config %d: %w", i, err))
			return
		}
		hash, err := cfg.Hash()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("config %d: %w", i, err))
			return
		}
		canonical, err := json.Marshal(cfg)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("config %d: %w", i, err))
			return
		}
		items[i] = item{hash: hash, canonical: canonical}
	}

	s.mu.Lock()
	need := 0
	seen := make(map[string]bool, len(items))
	for _, it := range items {
		if _, hit := s.cache.Get(it.hash); hit {
			continue
		}
		if _, running := s.active[it.hash]; running {
			continue
		}
		if seen[it.hash] {
			continue // duplicate within the sweep coalesces onto one run
		}
		seen[it.hash] = true
		need++
	}
	if s.draining {
		hint := s.retryHintLocked()
		s.mu.Unlock()
		w.Header().Set("Retry-After", hint)
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("daemon is draining"))
		return
	}
	if s.inFlight+need > s.cfg.QueueDepth {
		s.stats.Rejected++
		free := s.cfg.QueueDepth - s.inFlight
		hint := s.retryHintLocked()
		s.mu.Unlock()
		w.Header().Set("Retry-After", hint)
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("sweep needs %d slots but only %d are free", need, free))
		return
	}
	if s.cfg.PerClient > 0 && s.perClient[client]+need > s.cfg.PerClient {
		s.stats.Rejected++
		left := s.cfg.PerClient - s.perClient[client]
		hint := s.retryHintLocked()
		s.mu.Unlock()
		w.Header().Set("Retry-After", hint)
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("sweep needs %d slots but client %q has only %d left",
				need, client, left))
		return
	}
	out := make([]Job, len(items))
	for i, it := range items {
		j, _, err := s.admitLocked(it.hash, it.canonical, client)
		if err != nil {
			// Capacity was checked above; only an internal error lands
			// here. Report it on the job so the sweep response stays
			// positionally aligned with the request.
			j = Job{State: StateFailed, Hash: it.hash, Error: err.Error()}
		}
		out[i] = j
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string][]Job{"jobs": out})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	// Results can be large; the listing carries metadata only.
	list := s.store.List()
	for i := range list {
		list[i].Result = nil
		list[i].Config = nil
	}
	writeJSON(w, http.StatusOK, map[string][]Job{"jobs": list})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	switch j.State {
	case StateDone:
		// Raw cached/encoded bytes, untouched: this is the byte-identity
		// guarantee clients can diff against. The explicit Content-Length
		// lets clients detect a connection cut mid-download.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(j.Result)))
		w.WriteHeader(http.StatusOK)
		w.Write(j.Result)
	case StateFailed:
		writeError(w, http.StatusConflict, fmt.Errorf("job failed [%s]: %s", j.Class, j.Error))
	default:
		w.Header().Set("Retry-After", s.RetryHint())
		writeError(w, http.StatusConflict, fmt.Errorf("job is %s", j.State))
	}
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.store.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	for {
		s.mu.Lock()
		h := s.hubs[id]
		s.mu.Unlock()
		var wake <-chan struct{}
		if h != nil {
			// Grab the wait channel before reading state so an update
			// between the read and the select still wakes us.
			wake = h.wait()
		}
		j, ok := s.store.Get(id)
		if !ok {
			return
		}
		if err := writeSSE(w, "progress", j.Progress); err != nil {
			return
		}
		fl.Flush()
		if j.State.Terminal() || h == nil {
			// Done, failed, or no longer active (re-queued by a drain):
			// emit the terminal event and end the stream.
			writeSSE(w, "done", j)
			fl.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		}
	}
}

func writeSSE(w io.Writer, event string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}

func readJSON(r *http.Request, v any) error {
	defer io.Copy(io.Discard, r.Body)
	return json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
}

// writeBusyOrError writes an error response, attaching the live
// Retry-After hint to backpressure statuses.
func (s *Server) writeBusyOrError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", s.RetryHint())
	}
	writeError(w, status, err)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
