package jobs

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"2", 2 * time.Second, true},
		{" 3 ", 3 * time.Second, true},
		{"0", 0, true},
		{"1.5", 1500 * time.Millisecond, true},
		{"0.5", 500 * time.Millisecond, true},
		{now.Add(4 * time.Second).Format(http.TimeFormat), 4 * time.Second, true},
		// A date already past clamps to zero rather than going negative.
		{now.Add(-10 * time.Second).Format(http.TimeFormat), 0, true},
		{"-1", 0, false},
		{"-1.5", 0, false},
		{"", 0, false},
		{"soon", 0, false},
	}
	for _, c := range cases {
		got, ok := parseRetryAfter(c.in, now)
		if ok != c.ok || got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	fixed := func() float64 { return 0.5 }
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second,
	}
	for i, w := range want {
		if got := b.delay(i, fixed); got != w {
			t.Errorf("delay(%d) = %v, want %v", i, got, w)
		}
	}
	// Shift overflow on absurd attempt counts must still hit the cap.
	if got := b.delay(62, fixed); got != time.Second {
		t.Errorf("delay(62) = %v, want the %v cap", got, time.Second)
	}

	j := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	if got := j.delay(0, func() float64 { return 0 }); got != 75*time.Millisecond {
		t.Errorf("jittered delay at rnd=0 is %v, want 75ms (1 - Jitter/2)", got)
	}
	if got := j.delay(0, func() float64 { return 0.5 }); got != 100*time.Millisecond {
		t.Errorf("jittered delay at rnd=0.5 is %v, want the 100ms nominal", got)
	}
	for i := 0; i < 100; i++ {
		d := j.delay(0, nil) // nil rnd: no jitter applied
		if d != 100*time.Millisecond {
			t.Fatalf("delay with nil rnd = %v, want nominal", d)
		}
	}
}

func TestClientRetriesBusyThenSucceeds(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0.05")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"busy"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"j1","state":"done"}`)
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := &Client{
		BaseURL: ts.URL,
		Retry:   Backoff{Attempts: 5, Base: time.Millisecond, Max: 10 * time.Millisecond},
		sleep: func(ctx context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return nil
		},
		rand: func() float64 { return 0.5 },
	}
	j, err := c.Get(context.Background(), "j1")
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "j1" {
		t.Fatalf("got job %q", j.ID)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("made %d attempts, want 3", got)
	}
	if len(sleeps) != 2 {
		t.Fatalf("slept %d times, want 2", len(sleeps))
	}
	// The daemon's fractional Retry-After (50ms) must stretch the tiny
	// backoff delays, never be ignored.
	for i, d := range sleeps {
		if d < 50*time.Millisecond {
			t.Errorf("sleep %d = %v, want >= the 50ms Retry-After hint", i, d)
		}
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad config"}`)
	}))
	defer ts.Close()

	c := &Client{
		BaseURL: ts.URL,
		Retry:   Backoff{Attempts: 5, Base: time.Millisecond},
		sleep: func(ctx context.Context, d time.Duration) error {
			t.Error("slept before a non-retryable error")
			return nil
		},
	}
	_, err := c.Get(context.Background(), "j1")
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want a 400 RemoteError", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("made %d attempts on a 4xx, want 1", got)
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Retry-After", "0.01")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"queue full"}`)
	}))
	defer ts.Close()

	var slept int
	c := &Client{
		BaseURL: ts.URL,
		Retry:   Backoff{Attempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond},
		sleep: func(ctx context.Context, d time.Duration) error {
			slept++
			return nil
		},
		rand: func() float64 { return 0.5 },
	}
	_, err := c.Get(context.Background(), "j1")
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("err = %v, want BusyError after the budget", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("made %d attempts, want the full budget of 3", got)
	}
	if slept != 2 {
		t.Fatalf("slept %d times, want 2", slept)
	}
}

func TestBusyErrorCarriesParsedRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1.5")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"queue full"}`)
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL} // zero Retry: single attempt
	_, err := c.Get(context.Background(), "j1")
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("err = %v, want BusyError", err)
	}
	if busy.RetryAfter != 1500*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 1.5s from the fractional header", busy.RetryAfter)
	}
}

// TestResultDetectsTruncatedBody serves a response whose body is cut
// short of its Content-Length — the silent-partial-read failure the
// client must turn into ErrTruncated, not a short []byte.
func TestResultDetectsTruncatedBody(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					line, err := br.ReadString('\n')
					if err != nil || line == "\r\n" {
						break
					}
				}
				body := `[1,2`
				fmt.Fprintf(c, "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
					len(body)+64, body)
			}(conn)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := &Client{BaseURL: "http://" + ln.Addr().String()}
	_, err = c.Result(ctx, "j1")
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

// TestResultDetectsCorruptBodyAndRetries serves a body whose length
// matches Content-Length but does not decode; the client must flag it
// truncated/corrupt and spend its retry budget on it.
func TestResultDetectsCorruptBodyAndRetries(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		body := []byte(`{"bad":`)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.Write(body)
	}))
	defer ts.Close()

	c := &Client{
		BaseURL: ts.URL,
		Retry:   Backoff{Attempts: 2, Base: time.Millisecond, Max: time.Millisecond},
		sleep:   func(ctx context.Context, d time.Duration) error { return nil },
		rand:    func() float64 { return 0.5 },
	}
	_, err := c.Result(context.Background(), "j1")
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("made %d attempts, want 2 (corrupt bodies are retryable)", got)
	}
}

// TestRetryHintTracksBacklog exercises the queue-derived Retry-After:
// "1" before any observation, then mean duration scaled by the number
// of full waves ahead of the caller, clamped to [0.5, 60].
func TestRetryHintTracksBacklog(t *testing.T) {
	srv, _ := newTestServer(t, ServerConfig{Workers: 2})
	if got := srv.RetryHint(); got != "1" {
		t.Fatalf("hint before any completion = %q, want the \"1\" fallback", got)
	}

	srv.mu.Lock()
	defer srv.mu.Unlock()
	srv.observeRunLocked(2 * time.Second)
	if srv.meanRun != 2.0 {
		t.Fatalf("first observation set meanRun = %v, want 2.0", srv.meanRun)
	}
	srv.observeRunLocked(time.Second)
	if math.Abs(srv.meanRun-1.8) > 1e-9 {
		t.Fatalf("EWMA after 2s,1s = %v, want 1.8", srv.meanRun)
	}

	// 3 queued + the caller = 2 waves on 2 workers at 2s each.
	srv.meanRun = 2.0
	srv.inFlight = 3
	if got := srv.retryHintLocked(); got != "4.0" {
		t.Fatalf("hint with a 3-deep backlog = %q, want \"4.0\"", got)
	}
	srv.inFlight = 0
	if got := srv.retryHintLocked(); got != "2.0" {
		t.Fatalf("hint with an empty queue = %q, want \"2.0\"", got)
	}
	srv.meanRun = 0.01
	if got := srv.retryHintLocked(); got != "0.5" {
		t.Fatalf("hint for sub-second jobs = %q, want the 0.5 floor", got)
	}
	srv.meanRun = 1e6
	if got := srv.retryHintLocked(); got != "60.0" {
		t.Fatalf("hint for pathological jobs = %q, want the 60 ceiling", got)
	}
	srv.meanRun = 0
}
