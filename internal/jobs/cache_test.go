package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTestCache(t *testing.T, path string, limit CacheLimit) *Cache {
	t.Helper()
	c, err := OpenCache(path, limit)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func val(i int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"v":%d}`, i))
}

func TestCacheEvictsLRUByEntryCap(t *testing.T) {
	c := openTestCache(t, filepath.Join(t.TempDir(), "cache.jsonl"), CacheLimit{MaxEntries: 3})
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("h%d", i), val(i))
	}
	// Touch h0 so h1 becomes the least recently used.
	if _, ok := c.Get("h0"); !ok {
		t.Fatal("h0 missing before eviction")
	}
	c.Put("h3", val(3))
	if _, ok := c.Get("h1"); ok {
		t.Fatal("least-recently-used entry h1 survived the cap")
	}
	for _, h := range []string{"h0", "h2", "h3"} {
		if _, ok := c.Get(h); !ok {
			t.Fatalf("%s evicted out of LRU order", h)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 || st.MaxEntries != 3 {
		t.Fatalf("stats = %+v, want 3 entries / 1 eviction", st)
	}
}

func TestCacheEvictsByByteCap(t *testing.T) {
	c := openTestCache(t, filepath.Join(t.TempDir(), "cache.jsonl"), CacheLimit{MaxBytes: 24})
	c.Put("a", val(1)) // 7 bytes
	c.Put("b", val(2))
	c.Put("c", val(3))
	if c.Len() != 3 {
		t.Fatalf("3 small entries should fit: len=%d", c.Len())
	}
	c.Put("d", val(4)) // 28 bytes total: evict "a"
	if _, ok := c.Get("a"); ok {
		t.Fatal("byte cap did not evict the oldest entry")
	}
	if st := c.Stats(); st.Bytes > 24 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want <=24 bytes / 1 eviction", st)
	}
	// An entry larger than the whole cap still caches (never evict the
	// entry just inserted) and pushes everything else out.
	big := json.RawMessage(`{"v":"` + string(make([]byte, 64)) + `"}`)
	c.Put("huge", big)
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("oversized entry was evicted on insert")
	}
	if c.Len() != 1 {
		t.Fatalf("oversized insert left %d entries, want 1", c.Len())
	}
}

func TestCacheCompactsDeadWeightOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c := openTestCache(t, path, CacheLimit{MaxEntries: 2})
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("h%d", i), val(i))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	grown, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	r := openTestCache(t, path, CacheLimit{MaxEntries: 2})
	if r.Len() != 2 {
		t.Fatalf("reopened cache has %d entries, want the 2 survivors", r.Len())
	}
	for _, h := range []string{"h8", "h9"} {
		if _, ok := r.Get(h); !ok {
			t.Fatalf("most-recent entry %s lost across reopen", h)
		}
	}
	if st := r.Stats(); st.Evictions != 0 {
		t.Fatalf("reopen counted load-time churn as evictions: %+v", st)
	}
	compacted, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Size() >= grown.Size() {
		t.Fatalf("journal not compacted: %d -> %d bytes", grown.Size(), compacted.Size())
	}
}

func TestCacheUnboundedKeepsEverything(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c := openTestCache(t, path, CacheLimit{})
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("h%d", i), val(i))
	}
	if c.Len() != 50 {
		t.Fatalf("unbounded cache evicted: len=%d", c.Len())
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("unbounded cache reports evictions: %+v", st)
	}
}
