package jobs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postScenario(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/scenarios", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestScenarioEndpointRunsAndCaches(t *testing.T) {
	ctx := testCtx(t)
	srv, cli := newTestServer(t, ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const body = `{"scenario": {
		"name": "endpoint-smoke",
		"seed": 5,
		"duration_ms": 2000,
		"topology": {"kind": "chain", "hops": 2},
		"flows": [{"src": 0, "dst": 2, "variant": "muzha"}],
		"stack": {}
	}}`
	resp, out := postScenario(t, ts.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: %d %s", resp.StatusCode, out)
	}
	var sj ScenarioJob
	if err := json.Unmarshal(out, &sj); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if sj.SpecHash == "" || !strings.Contains(sj.Summary, "chain-2hop") {
		t.Fatalf("scenario identity missing: hash=%q summary=%q", sj.SpecHash, sj.Summary)
	}

	j, err := cli.Wait(ctx, sj.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateDone {
		t.Fatalf("scenario job ended %s [%s]: %s", j.State, j.Class, j.Error)
	}

	// The identical spec — with reordered keys — must land on the result
	// cache: same deterministic Config, same hash.
	reordered := `{"scenario": {
		"stack": {},
		"flows": [{"variant": "muzha", "dst": 2, "src": 0}],
		"topology": {"hops": 2, "kind": "chain"},
		"duration_ms": 2000,
		"seed": 5,
		"name": "endpoint-smoke"
	}}`
	resp2, out2 := postScenario(t, ts.URL, reordered)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmission: %d %s", resp2.StatusCode, out2)
	}
	var sj2 ScenarioJob
	if err := json.Unmarshal(out2, &sj2); err != nil {
		t.Fatal(err)
	}
	if !sj2.Cached || sj2.State != StateDone {
		t.Fatalf("reordered duplicate = state %s cached %v, want done from cache", sj2.State, sj2.Cached)
	}
	if sj2.SpecHash != sj.SpecHash {
		t.Fatalf("key order changed the spec hash: %s vs %s", sj2.SpecHash, sj.SpecHash)
	}
	if st := srv.Snapshot(); st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 cache hit", st)
	}
}

func TestScenarioEndpointRejectsBadSpecs(t *testing.T) {
	srv, _ := newTestServer(t, ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := map[string]string{
		"missing scenario field": `{}`,
		"unknown spec field":     `{"scenario": {"seed": 1, "topolgy": {"kind": "chain", "hops": 2}}}`,
		"invalid config":         `{"scenario": {"seed": 1, "topology": {"kind": "chain", "hops": 2}, "flows": []}}`,
	}
	for name, body := range cases {
		resp, out := postScenario(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d %s, want 400", name, resp.StatusCode, out)
		}
	}
	// The typo must be named in the error payload.
	resp, out := postScenario(t, ts.URL, `{"scenario": {"seed": 1, "topolgy": {"kind": "chain"}}}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(out), "topolgy") {
		t.Fatalf("unknown-field error does not name the field: %d %s", resp.StatusCode, out)
	}
}
