package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"muzha"
	"muzha/internal/chaoscov"
	"muzha/internal/harness"
)

// ServerConfig tunes the daemon. Zero values take the documented
// defaults.
type ServerConfig struct {
	// DataDir holds jobs.jsonl (the job store) and cache.jsonl (the
	// result cache). Required.
	DataDir string
	// Workers is the simulation worker count (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds admitted-but-unfinished jobs (queued + running).
	// Past it, submissions get 429 with a Retry-After hint — the queue
	// never grows without bound. Default 64.
	QueueDepth int
	// PerClient bounds one client's queued+running jobs (default 16;
	// negative disables the limit).
	PerClient int
	// Guards applies to jobs that carry no guards of their own. The
	// default arms a 5-minute wall clock and the livelock detector so a
	// pathological submission cannot wedge a worker forever.
	Guards muzha.RunGuards
	// ProgressEvery is the progress snapshot period in engine events
	// (default 65536).
	ProgressEvery uint64
	// RunWorkers sets every job's engine width (Config.Workers): zero
	// runs the classic single-threaded engine, >= 1 the spatial-domain
	// decomposition. It overrides whatever the submission carried —
	// Config.Hash excludes Workers, so one server (and one fleet) must
	// run one engine mode or its result cache would mix classic and
	// decomposed samples of multi-domain scenarios.
	RunWorkers int
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// Runner executes admitted jobs. Nil uses the local harness pool;
	// the fleet coordinator substitutes its lease dispatcher.
	Runner Runner
	// CacheLimit bounds the result cache; least-recently-used results
	// are evicted past the caps. Zero fields are unbounded.
	CacheLimit CacheLimit
	// Peer, when non-nil, is the shared fleet cache tier consulted on a
	// local cache miss before compute and fed fresh local results.
	Peer PeerCache
	// FleetStats, when non-nil, supplies the fleet block of /v1/stats.
	FleetStats func() FleetStats
	// ChaosStats, when non-nil, supplies the chaos block of /v1/stats —
	// a summary of the chaos-corpus journal (muzhad -chaos-corpus).
	ChaosStats func() *chaoscov.Info
}

// Stats is the daemon's /v1/stats payload.
type Stats struct {
	Queued       int    `json:"queued"`
	Running      int    `json:"running"`
	Jobs         int    `json:"jobs"`
	CacheEntries int    `json:"cache_entries"`
	CacheHits    uint64 `json:"cache_hits"`
	// Cache details the result cache's live set, byte footprint, LRU
	// eviction count and configured caps.
	Cache CacheStats `json:"cache"`
	// PeerCacheHits counts jobs satisfied from the shared fleet tier
	// instead of simulating — the "never runs twice anywhere" counter.
	PeerCacheHits uint64 `json:"peer_cache_hits"`
	Coalesced     uint64 `json:"coalesced"`
	Rejected      uint64 `json:"rejected"`
	Completed     uint64 `json:"completed"`
	Failed        uint64 `json:"failed"`
	Requeued      int    `json:"requeued"`
	Draining      bool   `json:"draining"`
	// Fleet is present on coordinators and workers only.
	Fleet *FleetStats `json:"fleet,omitempty"`
	// Chaos summarizes the chaos corpus when one is configured.
	Chaos *chaoscov.Info `json:"chaos,omitempty"`
}

// Server executes submitted simulation jobs on a harness worker pool,
// serves results, and streams progress. See the package comment for the
// cache contract.
type Server struct {
	cfg        ServerConfig
	store      *Store
	cache      *Cache
	runner     Runner
	cancel     chan struct{} // closed when the drain grace expires
	cancelOnce sync.Once

	mu        sync.Mutex
	active    map[string]string // config hash -> in-flight job ID
	perClient map[string]int
	hubs      map[string]*hub
	started   map[string]time.Time // execution start, for the mean-duration hint
	meanRun   float64              // EWMA of completed job wall seconds
	inFlight  int                  // queued + running jobs
	draining  bool
	requeued  int
	stats     Stats
}

// localRunner adapts the harness pool to the Runner interface — the
// default single-node execution backend.
type localRunner struct{ pool *harness.Pool }

func (r localRunner) Start(j RunnerJob, done func(harness.Outcome)) bool {
	return r.pool.TrySubmit(harness.Job{Key: j.ID, Fn: j.Run}, done)
}
func (r localRunner) Running() int { return r.pool.Running() }
func (r localRunner) Close()       { r.pool.Close() }

// NewServer opens the store and cache under cfg.DataDir, re-queues any
// jobs a previous process left unfinished, and starts the worker pool.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("jobs: ServerConfig.DataDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.PerClient == 0 {
		cfg.PerClient = 16
	}
	if cfg.ProgressEvery == 0 {
		cfg.ProgressEvery = 1 << 16
	}
	if (cfg.Guards == muzha.RunGuards{}) {
		cfg.Guards = muzha.RunGuards{WallClock: 5 * time.Minute, LivelockWindow: 5_000_000}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	store, err := OpenStore(filepath.Join(cfg.DataDir, "jobs.jsonl"))
	if err != nil {
		return nil, err
	}
	cache, err := OpenCache(filepath.Join(cfg.DataDir, "cache.jsonl"), cfg.CacheLimit)
	if err != nil {
		store.Close()
		return nil, err
	}

	s := &Server{
		cfg:       cfg,
		store:     store,
		cache:     cache,
		cancel:    make(chan struct{}),
		active:    make(map[string]string),
		perClient: make(map[string]int),
		hubs:      make(map[string]*hub),
		started:   make(map[string]time.Time),
	}
	requeued := store.Requeued()
	if cfg.Runner != nil {
		s.runner = cfg.Runner
	} else {
		// The pool backlog must never be the binding constraint —
		// admission is the inFlight counter — so size it for the worst
		// case: a full queue plus every journal-recovered job.
		s.runner = localRunner{pool: harness.NewPool(cfg.Workers, cfg.QueueDepth+cfg.Workers+len(requeued), harness.Options{})}
	}

	s.mu.Lock()
	for _, id := range requeued {
		j, ok := store.Get(id)
		if !ok {
			continue
		}
		s.enqueueLocked(j)
		s.requeued++
		cfg.Logf("jobs: requeued %s (hash %.12s) from journal", j.ID, j.Hash)
	}
	s.mu.Unlock()
	if n := store.Skipped(); n > 0 {
		cfg.Logf("jobs: store journal: skipped %d unparseable line(s)", n)
	}
	return s, nil
}

// enqueueLocked admits one queued job to the pool. Caller holds s.mu
// and has already performed admission checks.
func (s *Server) enqueueLocked(j Job) {
	s.inFlight++
	s.perClient[j.Client]++
	s.active[j.Hash] = j.ID
	s.hubs[j.ID] = newHub()
	id, hash, client := j.ID, j.Hash, j.Client
	ok := s.runner.Start(
		RunnerJob{ID: id, Hash: j.Hash, Config: j.Config, Run: s.runFn(id)},
		func(o harness.Outcome) { s.complete(id, hash, client, o) },
	)
	if !ok {
		// Cannot happen while admission holds inFlight below the backlog
		// size; fail the job loudly rather than strand it in queued.
		s.inFlight--
		s.decClientLocked(client)
		delete(s.active, hash)
		h := s.hubs[id]
		delete(s.hubs, id)
		jj, _ := s.store.Transition(id, func(j *Job) {
			j.State = StateFailed
			j.Error = "jobs: runner refused submission"
			j.Class = muzha.ClassError
		})
		if h != nil {
			h.finish()
		}
		s.cfg.Logf("jobs: runner refused %s", jj.ID)
	}
}

func (s *Server) decClientLocked(client string) {
	if s.perClient[client]--; s.perClient[client] <= 0 {
		delete(s.perClient, client)
	}
}

// runFn builds the worker closure for one job: decode the stored
// canonical config, attach guards, cancellation and the progress hook,
// run, and encode the result canonically. When a shared fleet tier is
// configured, it is consulted first — a peer that already simulated
// this config answers in one round-trip instead of a full run.
func (s *Server) runFn(id string) func() (any, error) {
	return func() (any, error) {
		j, ok := s.store.Transition(id, func(j *Job) { j.State = StateRunning })
		if !ok {
			return nil, fmt.Errorf("jobs: job %s missing from store", id)
		}
		s.noteStart(id)
		if s.cfg.Peer != nil {
			if b, ok := s.cfg.Peer.Fetch(j.Hash); ok && json.Valid(b) {
				s.mu.Lock()
				s.stats.PeerCacheHits++
				s.mu.Unlock()
				s.store.Transition(id, func(j *Job) { j.Cached = true })
				return json.RawMessage(b), nil
			}
		}
		var cfg muzha.Config
		if err := json.Unmarshal(j.Config, &cfg); err != nil {
			return nil, fmt.Errorf("jobs: decode config of %s: %w", id, err)
		}
		if (cfg.Guards == muzha.RunGuards{}) {
			cfg.Guards = s.cfg.Guards
		}
		// The engine mode is a server policy, applied uniformly: results
		// are cached by Config.Hash, which excludes Workers, so letting
		// submissions pick their own engine would let classic and
		// decomposed samples of the same multi-domain scenario share a
		// cache entry.
		cfg.Workers = s.cfg.RunWorkers
		cfg.Cancel = s.cancel
		cfg.ProgressEvery = s.cfg.ProgressEvery
		cfg.Progress = func(u muzha.ProgressUpdate) {
			p := Progress{SimTimeNs: int64(u.SimTime), Events: u.Events}
			s.store.SetProgress(id, p)
			s.mu.Lock()
			h := s.hubs[id]
			s.mu.Unlock()
			if h != nil {
				h.pulse()
			}
		}
		res, err := muzha.Run(cfg)
		if err != nil {
			return nil, err
		}
		return EncodeResult(res)
	}
}

// complete records a finished job's outcome: cache + done on success,
// failed with its class on error, or back to queued when the run was
// canceled by a drain — the journal then re-runs it on the next start.
func (s *Server) complete(id, hash, client string, o harness.Outcome) {
	s.mu.Lock()
	var j Job
	var publish json.RawMessage
	switch {
	case o.Err == nil:
		b := o.Value.(json.RawMessage)
		s.cache.Put(hash, b)
		j, _ = s.store.Transition(id, func(j *Job) {
			j.State = StateDone
			j.Result = b
		})
		s.stats.Completed++
		if !j.Cached {
			// A fresh local run is news to the fleet; a result that
			// itself came from the shared tier is not.
			publish = b
		}
	case errors.Is(o.Err, harness.ErrCanceled):
		j, _ = s.store.Transition(id, func(j *Job) {
			j.State = StateQueued
			j.Progress = Progress{}
		})
	default:
		j, _ = s.store.Transition(id, func(j *Job) {
			j.State = StateFailed
			j.Error = o.Err.Error()
			j.Class = string(o.Class)
		})
		s.stats.Failed++
	}
	if start, ok := s.started[id]; ok {
		delete(s.started, id)
		if j.State.Terminal() {
			s.observeRunLocked(time.Since(start))
		}
	}
	s.inFlight--
	s.decClientLocked(client)
	delete(s.active, hash)
	h := s.hubs[id]
	delete(s.hubs, id)
	peer := s.cfg.Peer
	s.mu.Unlock()
	if h != nil {
		h.finish()
	}
	if publish != nil && peer != nil {
		// Best-effort and off the completion path: a dead coordinator
		// must not slow down job turnaround (the agent's outbox retries).
		go peer.Publish(hash, publish)
	}
	s.cfg.Logf("jobs: %s -> %s", id, j.State)
}

// noteStart records when a job began executing (locally, or on a fleet
// worker at lease grant) for the mean-duration Retry-After hint.
func (s *Server) noteStart(id string) {
	s.mu.Lock()
	if _, ok := s.started[id]; !ok {
		s.started[id] = time.Now()
	}
	s.mu.Unlock()
}

// observeRunLocked folds one completed job's wall duration into the
// EWMA the Retry-After hint is derived from.
func (s *Server) observeRunLocked(d time.Duration) {
	sec := d.Seconds()
	if s.meanRun <= 0 {
		s.meanRun = sec
	} else {
		s.meanRun = 0.8*s.meanRun + 0.2*sec
	}
}

// submitOne validates, hashes and admits one config. The int is the
// HTTP status: 200 cache hit or coalesced duplicate, 202 admitted,
// 400/429/503 rejected.
func (s *Server) submitOne(raw json.RawMessage, client string) (Job, int, error) {
	var cfg muzha.Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return Job{}, http.StatusBadRequest, err
	}
	if err := cfg.Validate(); err != nil {
		return Job{}, http.StatusBadRequest, err
	}
	hash, err := cfg.Hash()
	if err != nil {
		return Job{}, http.StatusBadRequest, err
	}
	// Store the canonical encoding, not the client's bytes, so the
	// journal and every response carry one stable form.
	canonical, err := json.Marshal(cfg)
	if err != nil {
		return Job{}, http.StatusBadRequest, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admitLocked(hash, canonical, client)
}

func (s *Server) admitLocked(hash string, canonical json.RawMessage, client string) (Job, int, error) {
	if b, ok := s.cache.Get(hash); ok {
		// Cache hit: the job is born done, no simulation runs.
		s.stats.CacheHits++
		j := s.store.NewJob(hash, client, canonical)
		j, _ = s.store.Transition(j.ID, func(j *Job) {
			j.State = StateDone
			j.Cached = true
			j.Result = b
		})
		return j, http.StatusOK, nil
	}
	if id, ok := s.active[hash]; ok {
		// The identical scenario is already queued or running: coalesce
		// onto it instead of paying for a second run.
		s.stats.Coalesced++
		if j, ok := s.store.Get(id); ok {
			return j, http.StatusOK, nil
		}
	}
	if s.draining {
		return Job{}, http.StatusServiceUnavailable, errors.New("daemon is draining")
	}
	if s.inFlight >= s.cfg.QueueDepth {
		s.stats.Rejected++
		return Job{}, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d jobs in flight)", s.inFlight)
	}
	if s.cfg.PerClient > 0 && s.perClient[client] >= s.cfg.PerClient {
		s.stats.Rejected++
		return Job{}, http.StatusTooManyRequests,
			fmt.Errorf("client %q at its limit of %d in-flight jobs", client, s.cfg.PerClient)
	}
	j := s.store.NewJob(hash, client, canonical)
	s.enqueueLocked(j)
	return j, http.StatusAccepted, nil
}

// Snapshot returns current daemon statistics.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Running = s.runner.Running()
	st.Queued = s.inFlight - st.Running
	if st.Queued < 0 {
		st.Queued = 0
	}
	st.Jobs = len(s.store.List())
	st.Cache = s.cache.Stats()
	st.CacheEntries = st.Cache.Entries
	st.Requeued = s.requeued
	st.Draining = s.draining
	if s.cfg.FleetStats != nil {
		f := s.cfg.FleetStats()
		st.Fleet = &f
	}
	if s.cfg.ChaosStats != nil {
		st.Chaos = s.cfg.ChaosStats()
	}
	return st
}

// RetryHint is the Retry-After value sent with 429/503: the estimated
// seconds until a slot frees, derived from the backlog and the observed
// mean job duration. Before any job has completed it falls back to "1".
func (s *Server) RetryHint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryHintLocked()
}

func (s *Server) retryHintLocked() string {
	if s.meanRun <= 0 {
		return "1"
	}
	workers := s.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	queued := s.inFlight - s.runner.Running()
	if queued < 0 {
		queued = 0
	}
	// The next slot frees after the current wave; a queued backlog adds
	// one mean duration per full wave ahead of the caller.
	waves := math.Ceil(float64(queued+1) / float64(workers))
	sec := s.meanRun * waves
	switch {
	case sec < 0.5:
		sec = 0.5
	case sec > 60:
		sec = 60
	}
	return strconv.FormatFloat(sec, 'f', 1, 64)
}

// SetJobPhase flips a non-terminal job between queued and running on
// behalf of an external Runner: the fleet dispatcher marks a job
// running (and by which worker) at lease grant, and back to queued when
// the lease expires and the job is re-sharded. Terminal states are owned
// by complete and never overwritten here.
func (s *Server) SetJobPhase(id string, st State, worker string) {
	if st != StateQueued && st != StateRunning {
		return
	}
	s.store.Transition(id, func(j *Job) {
		if j.State.Terminal() {
			return
		}
		j.State = st
		j.Worker = worker
		if st == StateQueued {
			j.Progress = Progress{}
		}
	})
	if st == StateRunning {
		s.noteStart(id)
	}
}

// CachedResult returns the locally cached canonical result bytes for a
// config hash — the read side of the shared fleet tier.
func (s *Server) CachedResult(hash string) (json.RawMessage, bool) {
	return s.cache.Get(hash)
}

// CacheResult accepts an externally produced result into the cache (a
// worker publish, or a late fleet delivery whose lease already expired).
// Bytes that do not decode are dropped: a truncated upload must not
// poison the tier. Re-putting a hash is harmless — results are a pure
// function of the config.
func (s *Server) CacheResult(hash string, b json.RawMessage) bool {
	if hash == "" || len(b) == 0 || !json.Valid(b) {
		return false
	}
	s.cache.Put(hash, b)
	return true
}

// Execute admits canonical config bytes on behalf of the fleet agent
// and blocks until the job is terminal or ctx ends. Capacity pushback
// surfaces as BusyError so the agent leases less next round instead of
// spinning.
func (s *Server) Execute(ctx context.Context, raw json.RawMessage, client string) (Job, error) {
	j, status, err := s.submitOne(raw, client)
	if err != nil {
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			return Job{}, &BusyError{Status: status, RetryAfter: time.Second, Msg: err.Error()}
		}
		return Job{}, err
	}
	return s.waitTerminal(ctx, j.ID)
}

// waitTerminal blocks until the job reaches a terminal state, waking on
// its hub when one exists and polling otherwise (a job re-queued by a
// drain has no hub until the next start re-admits it).
func (s *Server) waitTerminal(ctx context.Context, id string) (Job, error) {
	for {
		s.mu.Lock()
		h := s.hubs[id]
		s.mu.Unlock()
		var wake <-chan struct{}
		if h != nil {
			// Grab the wait channel before reading state so a completion
			// between the read and the select still wakes us.
			wake = h.wait()
		}
		j, ok := s.store.Get(id)
		if !ok {
			return Job{}, fmt.Errorf("jobs: job %s missing from store", id)
		}
		if j.State.Terminal() {
			return j, nil
		}
		if wake == nil {
			select {
			case <-ctx.Done():
				return j, ctx.Err()
			case <-time.After(50 * time.Millisecond):
			}
			continue
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-wake:
		}
	}
}

// Drain gracefully shuts the server down: stop admitting, let queued
// and running jobs finish for up to grace, then close the shared Cancel
// channel so the engine aborts in-flight runs cooperatively (within one
// guard period). Canceled jobs return to queued in the journal and are
// re-run by the next daemon start. Drain returns once every worker has
// stopped.
func (s *Server) Drain(grace time.Duration) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.runner.Close()
		close(done)
	}()
	if grace <= 0 {
		s.cancelOnce.Do(func() { close(s.cancel) })
		<-done
		return
	}
	select {
	case <-done:
	case <-time.After(grace):
		s.cfg.Logf("jobs: drain grace %v expired, canceling in-flight runs", grace)
		s.cancelOnce.Do(func() { close(s.cancel) })
		<-done
	}
}

// Close releases the store and cache journals. Call after Drain.
func (s *Server) Close() error {
	return errors.Join(s.store.Close(), s.cache.Close())
}

// hub wakes a job's progress streamers. Progress values live in the
// Store; the hub only signals "something changed" by closing and
// replacing its channel, so any number of SSE handlers can wait on it
// without the run's progress callback ever blocking.
type hub struct {
	mu   sync.Mutex
	ch   chan struct{}
	done bool
}

func newHub() *hub { return &hub{ch: make(chan struct{})} }

func (h *hub) pulse() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	close(h.ch)
	h.ch = make(chan struct{})
}

// finish marks the terminal pulse: the channel closes and stays closed.
func (h *hub) finish() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.done {
		h.done = true
		close(h.ch)
	}
}

func (h *hub) wait() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ch
}
