package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreLifecycleAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	a := s.NewJob("aaaa1111bbbb2222", "alice", json.RawMessage(`{"x":1}`))
	b := s.NewJob("cccc3333dddd4444", "bob", json.RawMessage(`{"x":2}`))
	if a.ID == b.ID {
		t.Fatalf("duplicate IDs: %s", a.ID)
	}
	if a.State != StateQueued {
		t.Fatalf("new job state = %s", a.State)
	}
	if _, ok := s.Transition(a.ID, func(j *Job) {
		j.State = StateDone
		j.Result = json.RawMessage(`{"ok":true}`)
	}); !ok {
		t.Fatal("transition missed the job")
	}
	s.SetProgress(b.ID, Progress{SimTimeNs: 5, Events: 9})
	if got, _ := s.Get(b.ID); got.Progress.Events != 9 {
		t.Fatalf("progress = %+v", got.Progress)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reload: last snapshot wins; the done job stays done, the queued one
	// is re-queued (it already was queued — progress is reset, not kept,
	// since in-memory progress is worthless after a restart).
	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ga, _ := s2.Get(a.ID)
	if ga.State != StateDone || string(ga.Result) != `{"ok":true}` {
		t.Fatalf("done job reloaded as %+v", ga)
	}
	gb, _ := s2.Get(b.ID)
	if gb.State != StateQueued || gb.Progress.Events != 0 {
		t.Fatalf("queued job reloaded as %+v", gb)
	}
	req := s2.Requeued()
	if len(req) != 1 || req[0] != b.ID {
		t.Fatalf("requeued = %v, want [%s]", req, b.ID)
	}
	// New IDs must continue past every journaled sequence number.
	c := s2.NewJob("eeee5555ffff6666", "carol", json.RawMessage(`{}`))
	if c.ID == a.ID || c.ID == b.ID {
		t.Fatalf("reloaded store reused ID %s", c.ID)
	}
	if list := s2.List(); len(list) != 3 || list[0].ID != a.ID || list[2].ID != c.ID {
		t.Fatalf("list order broken: %v", list)
	}
}

func TestStoreRecoversRunningJobAndSkipsTruncatedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	running := Job{
		ID:       "j000003-ab12cd34ef56",
		Hash:     "ab12cd34ef56aa",
		Client:   "crash",
		State:    StateRunning,
		Config:   json.RawMessage(`{"seed":7}`),
		Progress: Progress{SimTimeNs: 123, Events: 456},
	}
	line, err := json.Marshal(running)
	if err != nil {
		t.Fatal(err)
	}
	// A SIGKILL mid-append leaves a half-written final line.
	blob := append(line, '\n')
	blob = append(blob, []byte(`{"id":"j000004-trunc`)...)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Skipped() != 1 {
		t.Fatalf("skipped = %d, want 1 (the truncated line)", s.Skipped())
	}
	req := s.Requeued()
	if len(req) != 1 || req[0] != running.ID {
		t.Fatalf("requeued = %v", req)
	}
	j, ok := s.Get(running.ID)
	if !ok || j.State != StateQueued || j.Progress != (Progress{}) {
		t.Fatalf("recovered job = %+v, want queued with zero progress", j)
	}
	if string(j.Config) != `{"seed":7}` {
		t.Fatalf("config lost: %s", j.Config)
	}
	// Sequence numbering resumes past the crashed job's ID.
	if n := s.NewJob("ffff", "x", nil); n.ID <= running.ID {
		t.Fatalf("new ID %s does not advance past %s", n.ID, running.ID)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The requeue itself was journaled: a second crash-free reopen sees
	// the job queued again, not running.
	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j2, _ := s2.Get(running.ID)
	if j2.State != StateQueued {
		t.Fatalf("second reopen state = %s", j2.State)
	}
}
