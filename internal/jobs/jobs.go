// Package jobs is the simulation-as-a-service layer behind the muzhad
// daemon: a job store journaled to JSONL (crash-recoverable), a
// content-addressed result cache keyed by Config.Hash(), an HTTP server
// with bounded-queue admission control and SSE progress streaming, and
// a small client used by `muzhasim -remote`.
//
// The contract that makes the cache sound is determinism: a Config
// fully determines its Result, so the canonical encoding of the Config
// (its Hash) is a complete identity for the canonical encoding of the
// Result. Identical (config, seed) submissions are served from the
// cache byte-for-byte without re-running the simulation.
package jobs

import (
	"encoding/json"

	"muzha"
	"muzha/internal/canon"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: queued -> running -> done|failed. A daemon killed
// mid-job reopens its store with the interrupted job back in queued.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Progress is a running job's latest snapshot, streamed to clients.
type Progress struct {
	// SimTimeNs is the virtual time reached, in nanoseconds.
	SimTimeNs int64 `json:"sim_time_ns"`
	// Events is the number of engine events executed.
	Events uint64 `json:"events"`
}

// Job is one submission's record — the API response body and the
// snapshot the Store journals on every state transition.
type Job struct {
	// ID is the daemon-assigned identifier, e.g. "j000007-1a2b3c4d5e6f".
	ID string `json:"id"`
	// Hash is Config.Hash(), the result-cache key.
	Hash string `json:"hash"`
	// Client identifies the submitter for per-client admission limits.
	Client string `json:"client,omitempty"`
	State  State  `json:"state"`
	// Cached marks a job satisfied from the result cache without running.
	Cached bool `json:"cached,omitempty"`
	// Config is the canonical encoding of the submitted muzha.Config.
	Config json.RawMessage `json:"config,omitempty"`
	// Result is the canonical Result encoding once the job is done. It
	// is byte-identical whether the run was fresh or a cache hit.
	Result json.RawMessage `json:"result,omitempty"`
	// Error and Class describe a failed job (see muzha.Classify).
	Error string `json:"error,omitempty"`
	Class string `json:"class,omitempty"`
	// Progress is the latest in-run snapshot.
	Progress Progress `json:"progress"`
}

// EncodeResult renders a Result in the daemon's canonical form:
// sanitized (non-finite floats zeroed, so encoding cannot fail on a
// degenerate flow) and canonical JSON (sorted keys). Every producer of
// persisted or served results — the daemon's cache and responses,
// `muzhasim -out` — uses this one encoder, which is what makes "cached
// result" and "fresh result" byte-comparable.
func EncodeResult(r *muzha.Result) (json.RawMessage, error) {
	r.Sanitize()
	return canon.JSON(r)
}
