// Package jobs is the simulation-as-a-service layer behind the muzhad
// daemon: a job store journaled to JSONL (crash-recoverable), a
// content-addressed result cache keyed by Config.Hash(), an HTTP server
// with bounded-queue admission control and SSE progress streaming, and
// a small client used by `muzhasim -remote`.
//
// The contract that makes the cache sound is determinism: a Config
// fully determines its Result, so the canonical encoding of the Config
// (its Hash) is a complete identity for the canonical encoding of the
// Result. Identical (config, seed) submissions are served from the
// cache byte-for-byte without re-running the simulation.
package jobs

import (
	"encoding/json"

	"muzha"
	"muzha/internal/canon"
	"muzha/internal/harness"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: queued -> running -> done|failed. A daemon killed
// mid-job reopens its store with the interrupted job back in queued.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Progress is a running job's latest snapshot, streamed to clients.
type Progress struct {
	// SimTimeNs is the virtual time reached, in nanoseconds.
	SimTimeNs int64 `json:"sim_time_ns"`
	// Events is the number of engine events executed.
	Events uint64 `json:"events"`
}

// Job is one submission's record — the API response body and the
// snapshot the Store journals on every state transition.
type Job struct {
	// ID is the daemon-assigned identifier, e.g. "j000007-1a2b3c4d5e6f".
	ID string `json:"id"`
	// Hash is Config.Hash(), the result-cache key.
	Hash string `json:"hash"`
	// Client identifies the submitter for per-client admission limits.
	Client string `json:"client,omitempty"`
	State  State  `json:"state"`
	// Cached marks a job satisfied from the result cache without running
	// — the local cache at admission, or a fleet peer's before compute.
	Cached bool `json:"cached,omitempty"`
	// Worker names the fleet worker a dispatched job is leased to.
	Worker string `json:"worker,omitempty"`
	// Config is the canonical encoding of the submitted muzha.Config.
	Config json.RawMessage `json:"config,omitempty"`
	// Result is the canonical Result encoding once the job is done. It
	// is byte-identical whether the run was fresh or a cache hit.
	Result json.RawMessage `json:"result,omitempty"`
	// Error and Class describe a failed job (see muzha.Classify).
	Error string `json:"error,omitempty"`
	Class string `json:"class,omitempty"`
	// Progress is the latest in-run snapshot.
	Progress Progress `json:"progress"`
}

// RunnerJob is one admitted job as handed to a Runner: its store ID,
// config hash, canonical config bytes, and the closure that executes it
// on the local engine. A remote Runner (the fleet dispatcher) ships
// Config to a worker instead of calling Run.
type RunnerJob struct {
	ID     string
	Hash   string
	Config json.RawMessage
	Run    func() (any, error)
}

// Runner executes admitted jobs on behalf of the Server. The default
// runner is the local harness pool; the fleet coordinator substitutes a
// dispatcher that leases jobs to remote workers. The contract mirrors
// harness.Pool: Start either accepts the job and guarantees done is
// invoked exactly once with its outcome, or returns false without side
// effects; Close stops intake and settles every accepted job (running
// it, or failing it with harness.ErrCanceled so the store re-queues it).
type Runner interface {
	Start(j RunnerJob, done func(harness.Outcome)) bool
	// Running reports how many accepted jobs are executing right now.
	Running() int
	Close()
}

// PeerCache is a shared fleet-wide result-cache tier. A Server
// configured with one consults it after a local cache miss before
// spending compute, and feeds it freshly computed results. Both calls
// are best-effort: Fetch returning false on an unreachable peer simply
// costs a local run, and Publish must not block job completion (the
// fleet agent retries failed publishes from an outbox).
type PeerCache interface {
	Fetch(hash string) (json.RawMessage, bool)
	Publish(hash string, result json.RawMessage)
}

// FleetStats is the fleet block of /v1/stats. A coordinator fills the
// lease-table view; a worker fills the agent view; single-node daemons
// omit the block entirely.
type FleetStats struct {
	// Mode is "coordinator" or "worker".
	Mode string `json:"mode"`

	// Coordinator view of the fleet.
	WorkersSeen  int `json:"workers_seen,omitempty"`
	WorkersAlive int `json:"workers_alive,omitempty"`
	// LeasesActive is the number of jobs currently leased to workers.
	LeasesActive int `json:"leases_active"`
	// LeasesExpired counts leases that timed out (worker killed,
	// partitioned, or wedged); Resharded counts the jobs those leases
	// held being re-queued for another worker.
	LeasesExpired uint64 `json:"leases_expired"`
	Resharded     uint64 `json:"resharded"`
	// Dispatched counts lease grants; CompletedRemote/FailedRemote count
	// worker-delivered outcomes; LateDeliveries counts deliveries for
	// leases the coordinator no longer holds (double delivery, or a
	// delivery after expiry/restart) — accepted idempotently, never run
	// twice observably.
	Dispatched      uint64 `json:"dispatched"`
	CompletedRemote uint64 `json:"completed_remote"`
	FailedRemote    uint64 `json:"failed_remote"`
	LateDeliveries  uint64 `json:"late_deliveries"`
	// ResolvedFromCache counts queued jobs satisfied from the shared
	// cache at lease time instead of being dispatched.
	ResolvedFromCache uint64 `json:"resolved_from_cache"`
	// CacheServed / CachePublished count shared-tier lookups served and
	// worker results accepted into the tier.
	CacheServed    uint64 `json:"cache_served"`
	CachePublished uint64 `json:"cache_published"`

	// Worker (agent) view.
	Registered bool   `json:"registered,omitempty"`
	Leased     uint64 `json:"leased,omitempty"`
	Delivered  uint64 `json:"delivered,omitempty"`
	// OutboxDepth is the number of undelivered completions/publishes
	// waiting for the coordinator to come back.
	OutboxDepth int `json:"outbox_depth,omitempty"`
	// Degraded counts coordinator round-trips that failed — each one is
	// a tick the worker served local traffic without the fleet.
	Degraded uint64 `json:"degraded,omitempty"`
}

// EncodeResult renders a Result in the daemon's canonical form:
// sanitized (non-finite floats zeroed, so encoding cannot fail on a
// degenerate flow) and canonical JSON (sorted keys). Every producer of
// persisted or served results — the daemon's cache and responses,
// `muzhasim -out` — uses this one encoder, which is what makes "cached
// result" and "fresh result" byte-comparable.
func EncodeResult(r *muzha.Result) (json.RawMessage, error) {
	r.Sanitize()
	return canon.JSON(r)
}
