package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"muzha"
)

// Client talks to a muzhad daemon. The zero HTTPClient uses
// http.DefaultClient; streaming requests get no timeout (they are
// ended by the daemon or the context).
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7370".
	BaseURL string
	// ClientID, when set, is sent as X-Muzha-Client so the daemon's
	// per-client limits see one logical submitter across connections.
	ClientID string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Retry is the request retry policy. The zero value makes exactly
	// one attempt, preserving the pre-fleet behavior of surfacing
	// BusyError to the caller. Retrying submissions is safe: admission
	// is keyed by config hash, so a resent request lands on the cache or
	// coalesces onto the in-flight run instead of duplicating work.
	Retry Backoff

	// sleep and rand are test seams for the backoff schedule.
	sleep func(ctx context.Context, d time.Duration) error
	rand  func() float64
}

// Backoff is a jittered exponential retry policy with a budget.
// Attempts is the total try count (<= 1 disables retries); delays grow
// Base, 2*Base, 4*Base, ... capped at Max, and Jitter randomizes each
// delay by ±Jitter/2 of itself so a fleet of clients rejected together
// does not return in lockstep. A Retry-After hint larger than the
// computed delay wins — the daemon knows its own queue.
type Backoff struct {
	Attempts int
	Base     time.Duration
	Max      time.Duration
	Jitter   float64
}

// DefaultBackoff is the policy the fleet agent and muzhasim -remote
// use: 5 attempts, 200ms base, 5s cap, half-width jitter.
func DefaultBackoff() Backoff {
	return Backoff{Attempts: 5, Base: 200 * time.Millisecond, Max: 5 * time.Second, Jitter: 0.5}
}

// delay computes the sleep before retry number attempt (0-based).
func (b Backoff) delay(attempt int, rnd func() float64) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(attempt)
	if d > max || d <= 0 { // d <= 0 guards shift overflow
		d = max
	}
	if b.Jitter > 0 && rnd != nil {
		// Spread across [1-Jitter/2, 1+Jitter/2) of the nominal delay.
		d = time.Duration(float64(d) * (1 - b.Jitter/2 + b.Jitter*rnd()))
	}
	return d
}

// ErrTruncated marks a result fetch whose body was shorter than the
// daemon advertised or did not decode — a connection cut mid-download.
// It is retryable.
var ErrTruncated = errors.New("jobs: truncated or corrupt response body")

// BusyError is returned when the daemon pushes back (HTTP 429/503).
type BusyError struct {
	Status     int
	RetryAfter time.Duration
	Msg        string
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("daemon busy (HTTP %d, retry after %v): %s", e.Status, e.RetryAfter, e.Msg)
}

// RemoteError is any other non-2xx daemon response.
type RemoteError struct {
	Status int
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("daemon error (HTTP %d): %s", e.Status, e.Msg)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) newRequest(ctx context.Context, method, path string, body []byte) (*http.Request, error) {
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.BaseURL, "/")+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.ClientID != "" {
		req.Header.Set("X-Muzha-Client", c.ClientID)
	}
	return req, nil
}

// apiError converts a non-2xx response body into a typed error.
func apiError(resp *http.Response, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		retry := time.Second
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
			retry = d
		}
		return &BusyError{Status: resp.StatusCode, RetryAfter: retry, Msg: msg}
	}
	return &RemoteError{Status: resp.StatusCode, Msg: msg}
}

// parseRetryAfter accepts every Retry-After form a daemon may send:
// integer seconds ("2"), fractional seconds ("1.5" — muzhad's
// queue-derived hints), and an HTTP-date, which yields the delta from
// now (clamped at zero for dates already past).
func parseRetryAfter(s string, now time.Time) (time.Duration, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n < 0 {
			return 0, false
		}
		return time.Duration(n) * time.Second, true
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		if f < 0 {
			return 0, false
		}
		return time.Duration(f * float64(time.Second)), true
	}
	if t, err := http.ParseTime(s); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// retryable reports whether an error is worth another attempt:
// backpressure, transport failures (a restarting daemon), server-side
// 5xx, and truncated downloads. Client mistakes (4xx) and canceled
// contexts are final.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var remote *RemoteError
	if errors.As(err, &remote) {
		return remote.Status >= 500
	}
	// BusyError, url.Error/net transport errors, ErrTruncated.
	return true
}

func (c *Client) sleepFn() func(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep
	}
	return func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
}

func (c *Client) randFn() func() float64 {
	if c.rand != nil {
		return c.rand
	}
	return rand.Float64
}

// withRetry runs fn under the client's backoff policy. The daemon's
// Retry-After hint stretches (never shrinks below) the backoff delay.
func (c *Client) withRetry(ctx context.Context, fn func() error) error {
	attempts := c.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; ; i++ {
		err = fn()
		if err == nil || i+1 >= attempts || !retryable(err) {
			return err
		}
		d := c.Retry.delay(i, c.randFn())
		var busy *BusyError
		if errors.As(err, &busy) && busy.RetryAfter > d {
			d = busy.RetryAfter
		}
		if serr := c.sleepFn()(ctx, d); serr != nil {
			return err
		}
	}
}

func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	return c.withRetry(ctx, func() error { return c.doOnce(ctx, method, path, body, out) })
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	req, err := c.newRequest(ctx, method, path, body)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp, buf.Bytes())
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(buf.Bytes(), out)
}

// Submit sends one config; the returned Job may already be done (cache
// hit) or shared with an identical in-flight submission (coalesced).
func (c *Client) Submit(ctx context.Context, cfg muzha.Config) (Job, error) {
	body, err := json.Marshal(map[string]muzha.Config{"config": cfg})
	if err != nil {
		return Job{}, err
	}
	var j Job
	err = c.do(ctx, http.MethodPost, "/v1/jobs", body, &j)
	return j, err
}

// SubmitSweep sends a batch; admission is atomic — either every
// not-yet-cached config is queued or the daemon returns a BusyError.
func (c *Client) SubmitSweep(ctx context.Context, cfgs []muzha.Config) ([]Job, error) {
	body, err := json.Marshal(map[string][]muzha.Config{"configs": cfgs})
	if err != nil {
		return nil, err
	}
	var out struct {
		Jobs []Job `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/sweeps", body, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Get fetches one job's current record.
func (c *Client) Get(ctx context.Context, id string) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &j)
	return j, err
}

// Result fetches a done job's raw canonical Result bytes. A body
// shorter than the advertised Content-Length or one that does not
// decode — a connection cut mid-download — returns ErrTruncated rather
// than a silently partial result, and is retried under the backoff
// policy.
func (c *Client) Result(ctx context.Context, id string) (json.RawMessage, error) {
	var out json.RawMessage
	err := c.withRetry(ctx, func() error {
		b, err := c.resultOnce(ctx, id)
		out = b
		return err
	})
	return out, err
}

func (c *Client) resultOnce(ctx context.Context, id string) (json.RawMessage, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp, buf.Bytes())
	}
	if resp.ContentLength >= 0 && int64(buf.Len()) != resp.ContentLength {
		return nil, fmt.Errorf("%w: got %d of %d bytes", ErrTruncated, buf.Len(), resp.ContentLength)
	}
	if !json.Valid(buf.Bytes()) {
		return nil, fmt.Errorf("%w: body is not valid JSON", ErrTruncated)
	}
	return buf.Bytes(), nil
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Wait polls until the job is terminal or ctx is done.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Job, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		j, err := c.Get(ctx, id)
		if err != nil {
			return Job{}, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-t.C:
		}
	}
}

// Stream follows a job's SSE progress feed, invoking onProgress per
// snapshot, and returns the terminal Job from the "done" event. A
// stream that ends without a done event (daemon drain) falls back to
// Get.
func (c *Client) Stream(ctx context.Context, id string, onProgress func(Progress)) (Job, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return Job{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	// Streams outlive any sane request timeout; rely on ctx instead.
	hc := *c.httpClient()
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		return Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return Job{}, apiError(resp, buf.Bytes())
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 16<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var p Progress
				if json.Unmarshal([]byte(data), &p) == nil && onProgress != nil {
					onProgress(p)
				}
			case "done":
				var j Job
				if err := json.Unmarshal([]byte(data), &j); err != nil {
					return Job{}, fmt.Errorf("jobs: bad done event: %w", err)
				}
				return j, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Job{}, err
	}
	// Stream ended without a terminal event; ask once more directly.
	return c.Get(ctx, id)
}
