package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"muzha"
)

// Client talks to a muzhad daemon. The zero HTTPClient uses
// http.DefaultClient; streaming requests get no timeout (they are
// ended by the daemon or the context).
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7370".
	BaseURL string
	// ClientID, when set, is sent as X-Muzha-Client so the daemon's
	// per-client limits see one logical submitter across connections.
	ClientID string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
}

// BusyError is returned when the daemon pushes back (HTTP 429/503).
type BusyError struct {
	Status     int
	RetryAfter time.Duration
	Msg        string
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("daemon busy (HTTP %d, retry after %v): %s", e.Status, e.RetryAfter, e.Msg)
}

// RemoteError is any other non-2xx daemon response.
type RemoteError struct {
	Status int
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("daemon error (HTTP %d): %s", e.Status, e.Msg)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) newRequest(ctx context.Context, method, path string, body []byte) (*http.Request, error) {
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.BaseURL, "/")+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.ClientID != "" {
		req.Header.Set("X-Muzha-Client", c.ClientID)
	}
	return req, nil
}

// apiError converts a non-2xx response body into a typed error.
func apiError(resp *http.Response, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		retry := time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				retry = time.Duration(n) * time.Second
			}
		}
		return &BusyError{Status: resp.StatusCode, RetryAfter: retry, Msg: msg}
	}
	return &RemoteError{Status: resp.StatusCode, Msg: msg}
}

func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	req, err := c.newRequest(ctx, method, path, body)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp, buf.Bytes())
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(buf.Bytes(), out)
}

// Submit sends one config; the returned Job may already be done (cache
// hit) or shared with an identical in-flight submission (coalesced).
func (c *Client) Submit(ctx context.Context, cfg muzha.Config) (Job, error) {
	body, err := json.Marshal(map[string]muzha.Config{"config": cfg})
	if err != nil {
		return Job{}, err
	}
	var j Job
	err = c.do(ctx, http.MethodPost, "/v1/jobs", body, &j)
	return j, err
}

// SubmitSweep sends a batch; admission is atomic — either every
// not-yet-cached config is queued or the daemon returns a BusyError.
func (c *Client) SubmitSweep(ctx context.Context, cfgs []muzha.Config) ([]Job, error) {
	body, err := json.Marshal(map[string][]muzha.Config{"configs": cfgs})
	if err != nil {
		return nil, err
	}
	var out struct {
		Jobs []Job `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/sweeps", body, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Get fetches one job's current record.
func (c *Client) Get(ctx context.Context, id string) (Job, error) {
	var j Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &j)
	return j, err
}

// Result fetches a done job's raw canonical Result bytes.
func (c *Client) Result(ctx context.Context, id string) (json.RawMessage, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp, buf.Bytes())
	}
	return buf.Bytes(), nil
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Wait polls until the job is terminal or ctx is done.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Job, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		j, err := c.Get(ctx, id)
		if err != nil {
			return Job{}, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-t.C:
		}
	}
}

// Stream follows a job's SSE progress feed, invoking onProgress per
// snapshot, and returns the terminal Job from the "done" event. A
// stream that ends without a done event (daemon drain) falls back to
// Get.
func (c *Client) Stream(ctx context.Context, id string, onProgress func(Progress)) (Job, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return Job{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	// Streams outlive any sane request timeout; rely on ctx instead.
	hc := *c.httpClient()
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		return Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return Job{}, apiError(resp, buf.Bytes())
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 16<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var p Progress
				if json.Unmarshal([]byte(data), &p) == nil && onProgress != nil {
					onProgress(p)
				}
			case "done":
				var j Job
				if err := json.Unmarshal([]byte(data), &j); err != nil {
					return Job{}, fmt.Errorf("jobs: bad done event: %w", err)
				}
				return j, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Job{}, err
	}
	// Stream ended without a terminal event; ask once more directly.
	return c.Get(ctx, id)
}
