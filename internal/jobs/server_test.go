package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"muzha"
)

func chainConfig(t *testing.T, hops int, d time.Duration, seed int64) muzha.Config {
	t.Helper()
	top, err := muzha.ChainTopology(hops)
	if err != nil {
		t.Fatal(err)
	}
	cfg := muzha.DefaultConfig()
	cfg.Topology = top
	cfg.Duration = d
	cfg.Seed = seed
	cfg.Flows = []muzha.Flow{{Src: 0, Dst: hops, Variant: muzha.Muzha}}
	return cfg
}

// newTestServer starts a daemon over httptest and returns it plus a
// client. Cleanup drains with zero grace (canceling whatever is still
// running) and closes the journals.
func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *Client) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain(0)
		if err := srv.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	})
	return srv, &Client{BaseURL: ts.URL, ClientID: "test"}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSubmitRunAndCacheHitByteIdentical(t *testing.T) {
	ctx := testCtx(t)
	srv, cli := newTestServer(t, ServerConfig{})
	cfg := chainConfig(t, 2, 2*time.Second, 11)

	j1, err := cli.Submit(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if j1.Cached {
		t.Fatal("first submission claims a cache hit")
	}
	j1, err = cli.Wait(ctx, j1.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if j1.State != StateDone {
		t.Fatalf("job ended %s [%s]: %s", j1.State, j1.Class, j1.Error)
	}

	// The duplicate must be served from the cache without re-running:
	// born done, flagged Cached, same bytes.
	j2, err := cli.Submit(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Cached || j2.State != StateDone {
		t.Fatalf("duplicate = state %s cached %v, want done from cache", j2.State, j2.Cached)
	}
	if j2.ID == j1.ID {
		t.Fatal("cache hit reused the original job ID")
	}
	r1, err := cli.Result(ctx, j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cli.Result(ctx, j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) {
		t.Fatal("cached result differs from the original bytes")
	}

	// ...and identical to an uninterrupted local run through the shared
	// encoder. The daemon arms default guards; a completed run is
	// bit-for-bit identical with or without them.
	res, err := muzha.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, want) {
		t.Fatalf("daemon result differs from local run:\ndaemon: %.120s\n local: %.120s", r1, want)
	}

	st := srv.Snapshot()
	if st.CacheHits != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 completed", st)
	}
}

func TestCrashRecoveryRequeuesAndMatchesUninterruptedRun(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	cfg := chainConfig(t, 2, 2*time.Second, 7)
	canonical, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := cfg.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Forge the journal a SIGKILLed daemon leaves behind: a job caught
	// mid-run plus a half-written trailing line.
	crashed := Job{
		ID:     "j000000-" + hash[:12],
		Hash:   hash,
		Client: "crash",
		State:  StateRunning,
		Config: canonical,
	}
	line, err := json.Marshal(crashed)
	if err != nil {
		t.Fatal(err)
	}
	blob := append(line, '\n')
	blob = append(blob, []byte(`{"id":"j000001-hal`)...)
	if err := os.WriteFile(filepath.Join(dir, "jobs.jsonl"), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, cli := newTestServer(t, ServerConfig{DataDir: dir})
	if st := srv.Snapshot(); st.Requeued != 1 {
		t.Fatalf("requeued = %d, want 1", st.Requeued)
	}
	j, err := cli.Wait(ctx, crashed.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateDone {
		t.Fatalf("recovered job ended %s [%s]: %s", j.State, j.Class, j.Error)
	}
	got, err := cli.Result(ctx, crashed.ID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := muzha.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered run differs from the uninterrupted run")
	}
}

func TestQueueFullReturns429WithRetryAfter(t *testing.T) {
	ctx := testCtx(t)
	srv, cli := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 1})
	// A long scenario occupies the only slot; the drain in cleanup
	// cancels it, so the test never pays for the full simulated hour.
	long := chainConfig(t, 4, time.Hour, 1)
	if _, err := cli.Submit(ctx, long); err != nil {
		t.Fatal(err)
	}
	_, err := cli.Submit(ctx, chainConfig(t, 4, time.Hour, 2))
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("err = %v, want BusyError", err)
	}
	if busy.Status != http.StatusTooManyRequests || busy.RetryAfter < time.Second {
		t.Fatalf("busy = %+v, want 429 with Retry-After >= 1s", busy)
	}
	if st := srv.Snapshot(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
}

func TestPerClientLimit(t *testing.T) {
	ctx := testCtx(t)
	_, cli := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 8, PerClient: 1})
	if _, err := cli.Submit(ctx, chainConfig(t, 4, time.Hour, 1)); err != nil {
		t.Fatal(err)
	}
	_, err := cli.Submit(ctx, chainConfig(t, 4, time.Hour, 2))
	var busy *BusyError
	if !errors.As(err, &busy) || busy.Status != http.StatusTooManyRequests {
		t.Fatalf("same client second submit err = %v, want 429", err)
	}
	// Another client still has room.
	other := &Client{BaseURL: cli.BaseURL, ClientID: "other"}
	if _, err := other.Submit(ctx, chainConfig(t, 4, time.Hour, 3)); err != nil {
		t.Fatalf("other client refused: %v", err)
	}
}

func TestSweepAdmissionIsAtomic(t *testing.T) {
	ctx := testCtx(t)
	srv, cli := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 1})
	// Two fresh configs need two slots; only one exists — nothing may be
	// admitted, or a client could never tell which half of its grid ran.
	_, err := cli.SubmitSweep(ctx, []muzha.Config{
		chainConfig(t, 4, time.Hour, 1),
		chainConfig(t, 4, time.Hour, 2),
	})
	var busy *BusyError
	if !errors.As(err, &busy) || busy.Status != http.StatusTooManyRequests {
		t.Fatalf("oversized sweep err = %v, want 429", err)
	}
	if st := srv.Snapshot(); st.Queued+st.Running != 0 {
		t.Fatalf("partial sweep admitted: %+v", st)
	}

	// Duplicates inside one sweep coalesce onto a single slot and job.
	dup := chainConfig(t, 2, time.Second, 3)
	jobsOut, err := cli.SubmitSweep(ctx, []muzha.Config{dup, dup})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobsOut) != 2 || jobsOut[0].ID != jobsOut[1].ID {
		t.Fatalf("sweep duplicates did not coalesce: %+v", jobsOut)
	}
	if _, err := cli.Wait(ctx, jobsOut[0].ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDeliversProgressAndDone(t *testing.T) {
	ctx := testCtx(t)
	_, cli := newTestServer(t, ServerConfig{ProgressEvery: 512})
	j, err := cli.Submit(ctx, chainConfig(t, 2, 2*time.Second, 5))
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Progress
	done, err := cli.Stream(ctx, j.ID, func(p Progress) { snaps = append(snaps, p) })
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("stream ended with state %s [%s]: %s", done.State, done.Class, done.Error)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress events")
	}
	last := snaps[len(snaps)-1]
	if last.Events == 0 || last.SimTimeNs == 0 {
		t.Fatalf("final progress = %+v, want nonzero", last)
	}
}

func TestDrainCancelsRequeuesAndRefuses(t *testing.T) {
	ctx := testCtx(t)
	srv, cli := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 2})
	j, err := cli.Submit(ctx, chainConfig(t, 4, time.Hour, 9))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick it up so the drain has something to
	// cancel.
	for srv.Snapshot().Running == 0 {
		select {
		case <-ctx.Done():
			t.Fatal("job never started")
		case <-time.After(5 * time.Millisecond):
		}
	}
	srv.Drain(10 * time.Millisecond)

	got, ok := srv.store.Get(j.ID)
	if !ok || got.State != StateQueued {
		t.Fatalf("after drain job is %s, want queued for the next start", got.State)
	}
	_, err = cli.Submit(ctx, chainConfig(t, 2, time.Second, 1))
	var busy *BusyError
	if !errors.As(err, &busy) || busy.Status != http.StatusServiceUnavailable {
		t.Fatalf("draining daemon err = %v, want 503", err)
	}
}

func TestSubmitRejectsInvalidConfig(t *testing.T) {
	ctx := testCtx(t)
	_, cli := newTestServer(t, ServerConfig{})
	bad := chainConfig(t, 2, time.Second, 1)
	bad.Flows[0].Dst = 99 // out of range: must be refused at admission
	_, err := cli.Submit(ctx, bad)
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400", err)
	}
}
