package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"muzha/internal/harness"
)

// Store is the daemon's file-backed job table: an append-only JSONL
// journal of Job snapshots, one line per state transition, last
// snapshot wins. Opening a store replays the journal with the harness's
// truncated-line-tolerant scanner, so a SIGKILL mid-write costs at most
// the half-written line; jobs whose last snapshot was queued or running
// are handed back as Requeued() for the daemon to re-run.
type Store struct {
	mu       sync.Mutex
	f        *os.File
	jobs     map[string]*Job
	order    []string // IDs by first appearance, i.e. submission order
	requeued []string
	nextSeq  uint64
	skipped  int
	err      error // first journal write error, latched
}

// OpenStore opens (creating if absent) the job journal at path and
// replays it.
func OpenStore(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open store: %w", err)
	}
	s := &Store{f: f, jobs: make(map[string]*Job)}
	skipped, err := harness.ScanJSONL(f, func(line []byte) bool {
		var j Job
		if err := json.Unmarshal(line, &j); err != nil || j.ID == "" {
			return false
		}
		if _, seen := s.jobs[j.ID]; !seen {
			s.order = append(s.order, j.ID)
		}
		cp := j
		s.jobs[j.ID] = &cp
		if seq, ok := seqOf(j.ID); ok && seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
		return true
	})
	s.skipped = skipped
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: read store: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: seek store: %w", err)
	}
	// Interrupted work — anything not terminal — goes back to the queue.
	// The requeue is journaled so the file reflects what the daemon will
	// actually do, even if it is killed again before the job starts.
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State.Terminal() {
			continue
		}
		j.State = StateQueued
		j.Progress = Progress{}
		s.appendLocked(*j)
		s.requeued = append(s.requeued, id)
	}
	return s, nil
}

// seqOf extracts the numeric sequence from an ID like "j000042-ab12…".
func seqOf(id string) (uint64, bool) {
	if !strings.HasPrefix(id, "j") {
		return 0, false
	}
	num, _, _ := strings.Cut(id[1:], "-")
	seq, err := strconv.ParseUint(num, 10, 64)
	return seq, err == nil
}

// Requeued lists the jobs reset to queued during open, in submission
// order.
func (s *Store) Requeued() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.requeued...)
}

// Skipped reports how many unparseable journal lines open dropped.
func (s *Store) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// NewJob creates and journals a queued job for the given config hash,
// client and canonical config bytes, returning a copy.
func (s *Store) NewJob(hash, client string, cfg json.RawMessage) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	short := hash
	if len(short) > 12 {
		short = short[:12]
	}
	j := &Job{
		ID:     fmt.Sprintf("j%06d-%s", s.nextSeq, short),
		Hash:   hash,
		Client: client,
		State:  StateQueued,
		Config: cfg,
	}
	s.nextSeq++
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.appendLocked(*j)
	return *j
}

// Get returns a copy of the job.
func (s *Store) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns copies of all jobs in submission order.
func (s *Store) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Transition applies mutate to the job under the store lock, journals
// the new snapshot, and returns a copy.
func (s *Store) Transition(id string, mutate func(*Job)) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	mutate(j)
	s.appendLocked(*j)
	return *j, true
}

// SetProgress updates a job's progress snapshot in memory only.
// Progress is advisory and refreshed every few hundred milliseconds of
// wall time; journaling each tick would bloat the file for data that is
// worthless after a restart.
func (s *Store) SetProgress(id string, p Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		j.Progress = p
	}
}

// appendLocked journals one snapshot. The first write error latches —
// the daemon must not die on journal I/O — and surfaces via Err and
// Close.
func (s *Store) appendLocked(j Job) {
	b, err := json.Marshal(j)
	if err != nil {
		if s.err == nil {
			s.err = fmt.Errorf("jobs: marshal snapshot %q: %w", j.ID, err)
		}
		return
	}
	if s.err != nil {
		return
	}
	if _, err := s.f.Write(append(b, '\n')); err != nil {
		s.err = fmt.Errorf("jobs: write store: %w", err)
	}
}

// Err returns the first latched journal write error.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close closes the journal, returning any latched write error so a
// truncated journal is never mistaken for a healthy one.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cerr := s.f.Close()
	if s.err != nil {
		return s.err
	}
	return cerr
}
