package jobs

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"muzha/internal/harness"
)

// Cache is the content-addressed result cache: Config.Hash() -> the
// canonical Result encoding produced by EncodeResult. It persists as a
// JSONL journal with the harness's durability contract — append on
// write, truncated-line-tolerant reload, a daemon killed mid-append
// loses at most that one entry — and is bounded: when an entry or byte
// cap is configured, the least-recently-used results are evicted to
// stay under it, so a long-lived daemon's memory does not grow with
// every distinct scenario it has ever simulated.
//
// Eviction is an in-memory policy; the journal stays append-only
// during operation. Dead weight (evicted, superseded or unparseable
// lines) is compacted away at the next open, keeping the file
// proportional to the live set rather than the daemon's full history.
//
// Only successful results are cached. Failures depend on guard budgets
// and host load (a deadline abort on a slow machine says nothing about
// the scenario), so they are recorded in the job store but never served
// to a later identical submission.
type Cache struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	limit   CacheLimit
	byKey   map[string]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
	evicted uint64
	err     error
}

// CacheLimit bounds the cache; zero fields are unbounded.
type CacheLimit struct {
	// MaxEntries caps the number of cached results.
	MaxEntries int
	// MaxBytes caps the total size of cached result payloads.
	MaxBytes int64
}

// cacheItem is one LRU slot.
type cacheItem struct {
	key string
	val json.RawMessage
}

// CacheStats is the cache block of the daemon's /v1/stats payload.
type CacheStats struct {
	// Entries and Bytes describe the live set.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Evictions counts entries dropped by the LRU policy since open.
	Evictions uint64 `json:"evictions"`
	// MaxEntries and MaxBytes echo the configured caps (0 = unbounded).
	MaxEntries int   `json:"max_entries,omitempty"`
	MaxBytes   int64 `json:"max_bytes,omitempty"`
}

// OpenCache opens (creating if absent) the cache journal at path,
// loads it newest-entry-most-recent, applies the limit, and compacts
// the file when it carries dead lines. A zero limit is unbounded —
// the historical behaviour.
func OpenCache(path string, limit CacheLimit) (*Cache, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open cache: %w", err)
	}
	c := &Cache{
		f:     f,
		path:  path,
		limit: limit,
		byKey: make(map[string]*list.Element),
		lru:   list.New(),
	}
	lines := 0
	_, err = harness.ScanJSONL(f, func(line []byte) bool {
		lines++
		var e harness.Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" || !e.OK || len(e.Value) == 0 {
			return false
		}
		// File order is append order, so each accepted line is the most
		// recent use of its key seen so far.
		c.putLocked(e.Key, e.Value)
		return true
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: read cache: %w", err)
	}
	// Loading counted cap evictions; they describe history, not this
	// process's churn.
	c.evicted = 0
	// Every line beyond the live set — unparseable, superseded by a
	// re-put, or evicted by the cap during load — is dead weight.
	if dead := lines - c.lru.Len(); dead > 0 {
		if err := c.compact(); err != nil {
			f.Close()
			return nil, err
		}
	} else if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: seek cache: %w", err)
	}
	return c, nil
}

// compact atomically rewrites the journal with only the live set (in
// LRU order, oldest first, so a future load reconstructs the same
// recency) and swaps the file handle to the fresh copy.
func (c *Cache) compact() error {
	tmp := c.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: compact cache: %w", err)
	}
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		it := el.Value.(*cacheItem)
		b, err := json.Marshal(harness.Entry{Key: it.key, OK: true, Value: it.val})
		if err != nil {
			nf.Close()
			os.Remove(tmp)
			return fmt.Errorf("jobs: compact cache entry %q: %w", it.key, err)
		}
		if _, err := nf.Write(append(b, '\n')); err != nil {
			nf.Close()
			os.Remove(tmp)
			return fmt.Errorf("jobs: compact cache: %w", err)
		}
	}
	if err := os.Rename(tmp, c.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: compact cache: %w", err)
	}
	c.f.Close()
	c.f = nf
	return nil
}

// Get returns the cached canonical Result bytes for a config hash and
// marks the entry as recently used.
func (c *Cache) Get(hash string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[hash]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// Put records a result, evicting least-recently-used entries if a cap
// is exceeded. Re-putting the same hash refreshes recency; the value
// is a pure function of the hash, so last-write-wins changes nothing.
func (c *Cache) Put(hash string, result json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(hash, result)
	c.appendLocked(hash, result)
}

// putLocked applies the in-memory insert + LRU eviction; shared by Put
// and the load path (which must not write back what it just read).
func (c *Cache) putLocked(hash string, result json.RawMessage) {
	if el, ok := c.byKey[hash]; ok {
		it := el.Value.(*cacheItem)
		c.bytes += int64(len(result)) - int64(len(it.val))
		it.val = result
		c.lru.MoveToFront(el)
	} else {
		c.byKey[hash] = c.lru.PushFront(&cacheItem{key: hash, val: result})
		c.bytes += int64(len(result))
	}
	for c.overLocked() {
		el := c.lru.Back()
		if el == nil || el == c.lru.Front() {
			break // never evict the entry just inserted
		}
		it := c.lru.Remove(el).(*cacheItem)
		delete(c.byKey, it.key)
		c.bytes -= int64(len(it.val))
		c.evicted++
	}
}

func (c *Cache) overLocked() bool {
	if c.limit.MaxEntries > 0 && c.lru.Len() > c.limit.MaxEntries {
		return true
	}
	return c.limit.MaxBytes > 0 && c.bytes > c.limit.MaxBytes
}

// appendLocked journals one entry; the first write error latches — the
// daemon must not die on cache I/O — and surfaces via Err and Close.
func (c *Cache) appendLocked(hash string, result json.RawMessage) {
	b, err := json.Marshal(harness.Entry{Key: hash, OK: true, Value: result})
	if err != nil {
		if c.err == nil {
			c.err = fmt.Errorf("jobs: marshal cache entry %q: %w", hash, err)
		}
		return
	}
	if c.err != nil {
		return
	}
	if _, err := c.f.Write(append(b, '\n')); err != nil {
		c.err = fmt.Errorf("jobs: write cache: %w", err)
	}
}

// Len reports how many results the cache holds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats snapshots the cache for /v1/stats.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:    c.lru.Len(),
		Bytes:      c.bytes,
		Evictions:  c.evicted,
		MaxEntries: c.limit.MaxEntries,
		MaxBytes:   c.limit.MaxBytes,
	}
}

// Err returns the journal's first latched write error.
func (c *Cache) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close flushes and closes the cache journal.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cerr := c.f.Close()
	if c.err != nil {
		return c.err
	}
	return cerr
}
