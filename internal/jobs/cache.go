package jobs

import (
	"encoding/json"

	"muzha/internal/harness"
)

// Cache is the content-addressed result cache: Config.Hash() -> the
// canonical Result encoding produced by EncodeResult. It is a thin veil
// over the harness's JSONL journal, inheriting its append-on-write
// durability and truncated-line-tolerant reload — a daemon killed
// mid-append loses at most that one entry.
//
// Only successful results are cached. Failures depend on guard budgets
// and host load (a deadline abort on a slow machine says nothing about
// the scenario), so they are recorded in the job store but never served
// to a later identical submission.
type Cache struct {
	j *harness.Journal
}

// OpenCache opens (creating if absent) the cache journal at path.
func OpenCache(path string) (*Cache, error) {
	j, err := harness.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	return &Cache{j: j}, nil
}

// Get returns the cached canonical Result bytes for a config hash.
func (c *Cache) Get(hash string) (json.RawMessage, bool) {
	e, ok := c.j.Lookup(hash)
	if !ok || !e.OK || len(e.Value) == 0 {
		return nil, false
	}
	return e.Value, true
}

// Put records a result. Re-putting the same hash is harmless — the
// value is a pure function of the hash, so last-write-wins changes
// nothing.
func (c *Cache) Put(hash string, result json.RawMessage) {
	c.j.Record(harness.Entry{Key: hash, OK: true, Value: result})
}

// Len reports how many results the cache holds.
func (c *Cache) Len() int { return c.j.Len() }

// Err returns the journal's first latched write error.
func (c *Cache) Err() error { return c.j.Err() }

// Close flushes and closes the cache journal.
func (c *Cache) Close() error { return c.j.Close() }
