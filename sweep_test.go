package muzha

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"muzha/internal/harness"
	"muzha/internal/sim"
)

// guardConfig is a small healthy scenario for guard tests.
func guardConfig(t *testing.T) Config {
	t.Helper()
	cfg := chainConfig(t, 3, Muzha)
	cfg.Duration = 2 * time.Second
	return cfg
}

// TestRunGuardEventBudget: a real run past its event budget must abort
// cleanly with ErrEventBudget, not return a partial Result.
func TestRunGuardEventBudget(t *testing.T) {
	cfg := guardConfig(t)
	cfg.Guards = RunGuards{MaxEvents: 5000}
	res, err := Run(cfg)
	if res != nil || !errors.Is(err, ErrEventBudget) {
		t.Fatalf("res=%v err=%v, want ErrEventBudget", res, err)
	}
	if Classify(err) != ClassEventBudget {
		t.Fatalf("Classify = %q", Classify(err))
	}
}

// TestRunGuardDeadline: an unmeetable wall-clock deadline aborts with
// ErrDeadline at the first guard check.
func TestRunGuardDeadline(t *testing.T) {
	cfg := guardConfig(t)
	cfg.Guards = RunGuards{WallClock: time.Nanosecond}
	res, err := Run(cfg)
	if res != nil || !errors.Is(err, ErrDeadline) {
		t.Fatalf("res=%v err=%v, want ErrDeadline", res, err)
	}
}

// TestRunGuardsDoNotPerturbResults: a run that completes under generous
// guards must be bit-for-bit identical to the unguarded run.
func TestRunGuardsDoNotPerturbResults(t *testing.T) {
	plain, err := Run(guardConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := guardConfig(t)
	cfg.Guards = RunGuards{WallClock: 5 * time.Minute, MaxEvents: 1 << 40, LivelockWindow: 5_000_000}
	guarded, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, guarded) {
		t.Fatalf("guards changed a completing run:\nplain:   %+v\nguarded: %+v", plain, guarded)
	}
}

// TestLivelockDetectorTripsOnZeroDelayCycle is the satellite scenario:
// an event that reschedules itself at zero delay spins the engine
// without advancing virtual time, and the watchdog must catch it.
func TestLivelockDetectorTripsOnZeroDelayCycle(t *testing.T) {
	s := sim.New(1)
	wc := harness.WatchdogConfig{LivelockWindow: 10_000}
	s.SetGuard(wc.Interval(), harness.NewWatchdog(
		func() int64 { return int64(s.Now()) }, s.EventsExecuted, wc))
	var spin func()
	spin = func() { s.Schedule(0, spin) }
	s.Schedule(sim.Millisecond, spin)

	s.Run(sim.Second)
	if !errors.Is(s.GuardErr(), ErrLivelock) {
		t.Fatalf("GuardErr = %v, want ErrLivelock", s.GuardErr())
	}
	if s.Now() != sim.Millisecond {
		t.Fatalf("aborted at t=%v, want the livelock instant 1ms", s.Now())
	}
}

// TestSweepClassifiesLivelockBudgetAndPanic is the acceptance scenario:
// one sweep containing a livelocking run, an event-budget blowup and a
// panicking run completes, finishes the healthy job, and classifies all
// three failures correctly in the summary.
func TestSweepClassifiesLivelockBudgetAndPanic(t *testing.T) {
	guardedSim := func(seed int64, wc harness.WatchdogConfig, load func(*sim.Simulator)) func() (any, error) {
		return func() (any, error) {
			s := sim.New(seed)
			s.SetGuard(wc.Interval(), harness.NewWatchdog(
				func() int64 { return int64(s.Now()) }, s.EventsExecuted, wc))
			load(s)
			s.Run(sim.Second)
			if err := s.GuardErr(); err != nil {
				return nil, err
			}
			return s.EventsExecuted(), nil
		}
	}
	healthy := guardConfig(t)
	jobs := []harness.Job{
		{Key: "livelock", Fn: guardedSim(1, harness.WatchdogConfig{LivelockWindow: 5_000}, func(s *sim.Simulator) {
			var spin func()
			spin = func() { s.Schedule(0, spin) }
			s.Schedule(0, spin)
		})},
		{Key: "budget", Fn: guardedSim(2, harness.WatchdogConfig{MaxEvents: 10_000}, func(s *sim.Simulator) {
			var tick func()
			tick = func() { s.Schedule(sim.Nanosecond, tick) }
			s.Schedule(0, tick)
		})},
		{Key: "panic", Fn: func() (any, error) { panic("corrupted event heap") }},
		{Key: "healthy", Fn: func() (any, error) { return Run(healthy) }},
	}

	outs, sum := harness.Execute(jobs, harness.Options{Workers: 4, Replay: true})
	if sum.Failures[harness.ClassLivelock] != 1 ||
		sum.Failures[harness.ClassEventBudget] != 1 ||
		sum.Failures[harness.ClassPanic] != 1 || sum.OK != 1 {
		t.Fatalf("summary misclassified the sweep: %+v", sum)
	}
	for i, want := range []harness.Class{
		harness.ClassLivelock, harness.ClassEventBudget, harness.ClassPanic, harness.ClassOK,
	} {
		if outs[i].Class != want {
			t.Errorf("job %q classified %q, want %q (err=%v)", outs[i].Key, outs[i].Class, want, outs[i].Err)
		}
	}
	if !errors.Is(sum.Worst(), ErrPanic) {
		t.Fatalf("Worst() = %v, want ErrPanic", sum.Worst())
	}
}

// TestChaosSweepParallelMatchesSerial is the acceptance determinism
// gate: per-run Results from a parallel sweep must be
// reflect.DeepEqual to the serial sweep's.
func TestChaosSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short mode")
	}
	opt := ChaosOptions{Seed: 1, Runs: 6, Duration: time.Second}
	serial, err := ChaosSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Sweep.Parallel = 4
	parallel, err := ChaosSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("run counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Scenario != parallel[i].Scenario {
			t.Fatalf("run %d scenarios differ: %q vs %q", i, serial[i].Scenario, parallel[i].Scenario)
		}
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Fatalf("run %d (seed %d) Results differ between serial and parallel sweeps",
				i, serial[i].Seed)
		}
	}
}

// TestChaosSweepRecordsGenerationFailure: a seed whose scenario cannot
// be generated becomes one failed ChaosRun; the rest of the sweep runs.
func TestChaosSweepRecordsGenerationFailure(t *testing.T) {
	orig := chaosScenario
	defer func() { chaosScenario = orig }()
	chaosScenario = func(seed int64, d time.Duration) (Config, string, error) {
		if seed == 2 {
			return Config{}, "", fmt.Errorf("synthetic generation failure for seed %d", seed)
		}
		return orig(seed, d)
	}

	runs, err := ChaosSweep(ChaosOptions{Seed: 1, Runs: 3, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("sweep returned %d runs, want all 3", len(runs))
	}
	if runs[1].Err == nil || !strings.Contains(runs[1].Err.Error(), "synthetic generation failure") {
		t.Fatalf("generation failure not recorded: %+v", runs[1])
	}
	for _, i := range []int{0, 2} {
		if runs[i].Err != nil || runs[i].Result == nil {
			t.Fatalf("healthy seed %d did not run: err=%v", runs[i].Seed, runs[i].Err)
		}
	}
}

// TestChaosSweepJournalResume is the satellite resume test: completed
// seeds are skipped on restart and the merged outcome matches an
// uninterrupted sweep run for run.
func TestChaosSweepJournalResume(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short mode")
	}
	journal := filepath.Join(t.TempDir(), "chaos.jsonl")
	opt := func(runs int, j string) ChaosOptions {
		return ChaosOptions{Seed: 1, Runs: runs, Duration: time.Second,
			Sweep: SweepOptions{Parallel: 2, Journal: j}}
	}

	full, err := ChaosSweep(opt(5, ""))
	if err != nil {
		t.Fatal(err)
	}
	partial, err := ChaosSweep(opt(3, journal))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range partial {
		if r.Resumed {
			t.Fatalf("first journaled sweep reported seed %d resumed", r.Seed)
		}
	}
	merged, err := ChaosSweep(opt(5, journal))
	if err != nil {
		t.Fatal(err)
	}

	for i, r := range merged {
		if wantResumed := i < 3; r.Resumed != wantResumed {
			t.Errorf("run %d resumed=%v, want %v", i, r.Resumed, wantResumed)
		}
		if (r.Err == nil) != (full[i].Err == nil) || r.NonDeterministic != full[i].NonDeterministic {
			t.Errorf("run %d outcome diverged from uninterrupted sweep: %+v vs %+v", i, r, full[i])
		}
		if !reflect.DeepEqual(r.Result, full[i].Result) {
			t.Errorf("run %d (seed %d) Result diverged across the journal round-trip", i, r.Seed)
		}
	}
}

// failingWriter rejects every write, simulating a full disk under a
// packet trace.
type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

// TestRunSurfacesTraceErrorAlongsideRunError is the satellite check: a
// run that aborts must still report its truncated packet trace, so the
// trace is never mistaken for a complete one.
func TestRunSurfacesTraceErrorAlongsideRunError(t *testing.T) {
	cfg := guardConfig(t)
	cfg.PacketTrace = failingWriter{}
	cfg.Guards = RunGuards{MaxEvents: 20_000}
	res, err := Run(cfg)
	if res != nil {
		t.Fatal("partial Result escaped a failed traced run")
	}
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("run error lost: %v", err)
	}
	if !strings.Contains(err.Error(), "packet trace") || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("trace error not surfaced alongside run error: %v", err)
	}
}

// TestThroughputVsHopsParallelMatchesSerial: the experiment driver must
// aggregate identical rows at any worker width.
func TestThroughputVsHopsParallelMatchesSerial(t *testing.T) {
	mk := func(parallel int) ChainSweepConfig {
		return ChainSweepConfig{
			Windows:  []int{4},
			Hops:     []int{2, 3},
			Variants: []Variant{NewReno, Muzha},
			Duration: 2 * time.Second,
			Seeds:    []int64{1, 2},
			Sweep:    SweepOptions{Parallel: parallel},
		}
	}
	serial, err := ThroughputVsHops(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ThroughputVsHops(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("driver rows differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestSweepErrorClassification: SweepError exposes the worst class via
// errors.Is and renders per-class counts.
func TestSweepErrorClassification(t *testing.T) {
	outs := []runOutcome{
		{Result: &Result{}},
		{Err: fmt.Errorf("x: %w", harness.ErrLivelock), Class: ClassLivelock},
		{Err: fmt.Errorf("x: %w", harness.ErrEventBudget), Class: ClassEventBudget},
		{Result: &Result{InvariantViolations: 2}},
	}
	err := sweepError(outs)
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("sweepError = %T", err)
	}
	if se.Total != 4 || se.Failed != 3 {
		t.Fatalf("summary %+v", se)
	}
	if se.Counts[ClassLivelock] != 1 || se.Counts[ClassEventBudget] != 1 || se.Counts[ClassInvariant] != 1 {
		t.Fatalf("counts %v", se.Counts)
	}
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("worst class not exposed: %v", err)
	}
	if sweepError([]runOutcome{{Result: &Result{}}}) != nil {
		t.Fatal("healthy sweep produced an error")
	}
}
