package muzha

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"muzha/internal/stats"
)

// Sample is one point of a result time series.
type Sample struct {
	At    time.Duration
	Value float64
}

// FlowResult carries one flow's transport metrics.
type FlowResult struct {
	ID      int
	Variant Variant
	Src     int
	Dst     int

	// ThroughputBps is average goodput in bit/s from flow start to the
	// end of the run.
	ThroughputBps float64
	// BytesAcked is the cumulatively acknowledged payload.
	BytesAcked int64
	// SegmentsSent counts data segments put on the wire, including
	// retransmissions.
	SegmentsSent uint64
	// Retransmissions counts retransmitted data segments — the paper's
	// Figures 5.11-5.13 metric.
	Retransmissions uint64
	// Timeouts counts RTO expirations.
	Timeouts uint64
	// FastRecoveries counts dup-ACK-triggered recovery episodes.
	FastRecoveries uint64
	// Finished reports whether a bounded (MaxBytes) flow completed.
	Finished bool

	// CwndTrace is the congestion-window time series (segments), when
	// Config.TraceCwnd was set.
	CwndTrace []Sample
	// ThroughputSeries is binned goodput in bit/s, when
	// Config.ThroughputBin was set.
	ThroughputSeries []Sample
}

// BackgroundResult carries one CBR stream's delivery metrics.
type BackgroundResult struct {
	Src, Dst int
	// Sent and Received count datagrams.
	Sent, Received uint64
	// DeliveryRatio is Received/Sent (0 when nothing was sent).
	DeliveryRatio float64
	// MeanDelay is the average one-way datagram delay.
	MeanDelay time.Duration
}

// NodeResult carries one node's network- and MAC-layer counters.
type NodeResult struct {
	ID           int
	Forwarded    uint64 // data packets relayed for other nodes
	QueueDrops   uint64 // IFQ overflow drops
	Marked       uint64 // packets congestion-marked here
	MACRetries   uint64 // MAC retry attempts
	MACDrops     uint64 // frames dropped at MAC retry limit
	LinkFailures uint64 // link failures reported to AODV
	RERRSent     uint64
	Discoveries  uint64
}

// InvariantResult is one run-time assertion's outcome. Always
// assertions must show zero violations on a healthy run; Sometimes
// assertions report coverage (Checks > 0 means the state was reached).
type InvariantResult struct {
	Name string
	Kind string // "always" or "sometimes"
	// Checks counts evaluations (Always) or reaches (Sometimes).
	Checks uint64
	// Violations counts failed Always evaluations.
	Violations uint64
	// Details holds up to a few rendered violation messages, stamped
	// with the virtual time they occurred at.
	Details []string
}

// FaultStats counts the fault transitions injected during the run.
type FaultStats struct {
	Crashes     uint64
	Reboots     uint64
	Blackouts   uint64
	Restores    uint64
	Partitions  uint64
	Heals       uint64
	BurstPhases uint64
}

// Result is the outcome of one simulation run.
type Result struct {
	Flows []FlowResult
	// Background holds one entry per configured CBR stream.
	Background []BackgroundResult
	Nodes      []NodeResult
	// JainIndex is Jain's fairness index over flow throughputs
	// (Figure 5.14's formula).
	JainIndex float64
	// Duration is the simulated time.
	Duration time.Duration
	// Events is the number of simulator events executed (diagnostics).
	Events uint64

	// Invariants holds every run-time assertion's outcome, in
	// registration order.
	Invariants []InvariantResult
	// InvariantViolations totals the Always violations across the run;
	// zero on a healthy run.
	InvariantViolations uint64
	// Faults counts the injected fault transitions.
	Faults FaultStats
}

// AggregateThroughputBps sums all flow throughputs. Non-finite
// per-flow values (the residue of a zero-duration flow) are skipped so
// one degenerate flow cannot poison the aggregate — NaN/Inf would also
// make encoding/json reject the whole Result.
func (r *Result) AggregateThroughputBps() float64 {
	var total float64
	for _, f := range r.Flows {
		total += finiteOr0(f.ThroughputBps)
	}
	return total
}

// finiteOr0 maps NaN and ±Inf to 0. The zero-duration edge cases that
// could produce them (a flow starting at the instant the run ends, an
// empty throughput bin) all mean "nothing was measured", for which 0 is
// the honest value — and unlike NaN/Inf it is encodable as JSON.
func finiteOr0(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// Sanitize replaces every non-finite float in the Result with 0 so the
// Result is always JSON-encodable — encoding/json fails outright on
// NaN/Inf, which would turn one degenerate flow into a daemon response
// error. The result encoders (muzhad responses, muzhasim -out) call
// this before marshalling.
func (r *Result) Sanitize() {
	for i := range r.Flows {
		f := &r.Flows[i]
		f.ThroughputBps = finiteOr0(f.ThroughputBps)
		for j := range f.CwndTrace {
			f.CwndTrace[j].Value = finiteOr0(f.CwndTrace[j].Value)
		}
		for j := range f.ThroughputSeries {
			f.ThroughputSeries[j].Value = finiteOr0(f.ThroughputSeries[j].Value)
		}
	}
	for i := range r.Background {
		r.Background[i].DeliveryRatio = finiteOr0(r.Background[i].DeliveryRatio)
	}
	r.JainIndex = finiteOr0(r.JainIndex)
}

// SometimesCoverage returns the sorted names of the Sometimes
// assertions this run reached — the per-run coverage signal the
// coverage-guided chaos loop steers by. It works on any Result,
// including ones decoded from a sweep journal or the daemon cache.
func (r *Result) SometimesCoverage() []string {
	var out []string
	for _, iv := range r.Invariants {
		if iv.Kind == "sometimes" && iv.Checks > 0 {
			out = append(out, iv.Name)
		}
	}
	sort.Strings(out)
	return out
}

// TotalRetransmissions sums retransmissions over all flows.
func (r *Result) TotalRetransmissions() uint64 {
	var total uint64
	for _, f := range r.Flows {
		total += f.Retransmissions
	}
	return total
}

// String renders a compact human-readable summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run: %v, %d flows, Jain index %.3f\n", r.Duration, len(r.Flows), r.JainIndex)
	for _, f := range r.Flows {
		fmt.Fprintf(&b, "  flow %d %s %d->%d: %.0f bit/s, %d rexmit, %d timeouts\n",
			f.ID, f.Variant, f.Src, f.Dst, f.ThroughputBps, f.Retransmissions, f.Timeouts)
	}
	if r.InvariantViolations > 0 {
		fmt.Fprintf(&b, "  INVARIANT VIOLATIONS: %d\n", r.InvariantViolations)
		for _, iv := range r.Invariants {
			for _, d := range iv.Details {
				fmt.Fprintf(&b, "    %s: %s\n", iv.Name, d)
			}
		}
	}
	return b.String()
}

// InvariantReport renders every assertion outcome, one per line.
func (r *Result) InvariantReport() string {
	var b strings.Builder
	for _, iv := range r.Invariants {
		status := "ok"
		if iv.Kind == "sometimes" {
			status = "unreached"
			if iv.Checks > 0 {
				status = "reached"
			}
		} else if iv.Violations > 0 {
			status = fmt.Sprintf("VIOLATED x%d", iv.Violations)
		}
		fmt.Fprintf(&b, "%-22s %-9s checks=%-8d %s\n", iv.Name, iv.Kind, iv.Checks, status)
		for _, d := range iv.Details {
			fmt.Fprintf(&b, "    %s\n", d)
		}
	}
	return b.String()
}

func flowResult(id int, f Flow, fl *stats.Flow, finished bool) FlowResult {
	out := FlowResult{
		ID:              id,
		Variant:         f.variant(),
		Src:             f.Src,
		Dst:             f.Dst,
		ThroughputBps:   finiteOr0(fl.Throughput()),
		BytesAcked:      fl.BytesAcked,
		SegmentsSent:    fl.SegmentsSent,
		Retransmissions: fl.Retransmissions,
		Timeouts:        fl.Timeouts,
		FastRecoveries:  fl.FastRecoveries,
		Finished:        finished,
	}
	for _, s := range fl.CwndTrace() {
		out.CwndTrace = append(out.CwndTrace, Sample{At: s.T.Duration(), Value: s.V})
	}
	for _, s := range fl.ThroughputSeries() {
		out.ThroughputSeries = append(out.ThroughputSeries, Sample{At: s.T.Duration(), Value: s.V})
	}
	return out
}
