package muzha

import (
	"fmt"
	"time"
)

// This file packages the modernized comparison grid (ROADMAP item 5):
// the paper's DRAI-vs-end-to-end question re-asked against modern
// senders. Where Chapter 5 compares NewReno/SACK/Vegas/Muzha on clean
// static chains, the modern grid pits {NewReno, Vegas, CUBIC, BBR-lite}
// x {router assist on/off} against three worlds — a static chain, a
// random-geometric field and a Manhattan-grid mobility scenario — all
// under Gilbert-Elliott burst loss and a RED bottleneck that ECN-marks
// instead of dropping, the conditions the PAPERS.md MANET studies treat
// as the standard evaluation axis.

// Modern-grid world names.
const (
	// ModernWorldChain is a static 6-hop chain.
	ModernWorldChain = "chain"
	// ModernWorldRGeo is a 24-node random-geometric field with one
	// seeded multi-hop flow pair.
	ModernWorldRGeo = "rgeo"
	// ModernWorldManhattan is a spaced chain whose middle relay roams
	// a Manhattan street grid, periodically stretching the route.
	ModernWorldManhattan = "manhattan"
)

// ModernWorlds lists the comparison-grid worlds in canonical order.
func ModernWorlds() []string {
	return []string{ModernWorldChain, ModernWorldRGeo, ModernWorldManhattan}
}

// ModernGridRow is one cell of the modern comparison grid, averaged
// over the seeds that completed.
type ModernGridRow struct {
	World           string
	Variant         Variant
	RouterAssist    bool
	ThroughputBps   float64
	Retransmissions float64
	Timeouts        float64
	Seeds           int
}

// ModernGridConfig parameterizes ModernComparisonGrid.
type ModernGridConfig struct {
	Variants []Variant
	Worlds   []string
	Duration time.Duration
	Seeds    []int64
	// Window is the advertised window in segments (default 32).
	Window int
	// Sweep supervises the runs (parallel workers, journal, guards).
	Sweep SweepOptions
}

// DefaultModernGrid returns the headline grid: the two strongest
// classical end-to-end senders plus the two modern ones, across all
// three worlds, 15-second runs over three seeds.
func DefaultModernGrid() ModernGridConfig {
	return ModernGridConfig{
		Variants: []Variant{NewReno, Vegas, CUBIC, BBRLite},
		Worlds:   ModernWorlds(),
		Duration: 15 * time.Second,
		Seeds:    []int64{1, 2, 3},
		Window:   32,
	}
}

// modernWorld builds one world's topology, flow endpoints and (for the
// Manhattan world) mobility block. The topology is independent of the
// run seed so every grid cell faces the same layout.
func modernWorld(world string) (Topology, [2]int, *Mobility, error) {
	switch world {
	case ModernWorldChain:
		top, err := ChainTopology(6)
		return top, [2]int{0, 6}, nil, err
	case ModernWorldRGeo:
		// Fixed generation seed: the field is part of the world
		// definition, not of the per-run randomness.
		top, err := RandomGeometricTopology(24, 2000, 2000, 1, 42)
		if err != nil {
			return Topology{}, [2]int{}, nil, err
		}
		fe := top.FlowEndpoints()
		if len(fe) == 0 {
			return Topology{}, [2]int{}, nil, fmt.Errorf("muzha: rgeo world generated no flow pair")
		}
		return top, fe[0], nil, nil
	case ModernWorldManhattan:
		// 180 m spacing leaves slack below the 250 m range, so the
		// roaming relay stretches routes without instantly severing
		// them (the same trick as the mobility golden scenario).
		top, err := ChainTopologySpaced(4, 180)
		if err != nil {
			return Topology{}, [2]int{}, nil, err
		}
		mob := &Mobility{
			Model:       MobilityManhattan,
			Width:       720,
			Height:      360,
			GridSpacing: 180,
			MinSpeed:    1,
			MaxSpeed:    3,
			MobileNodes: []int{2},
		}
		return top, [2]int{0, 4}, mob, nil
	default:
		return Topology{}, [2]int{}, nil, fmt.Errorf("muzha: unknown modern world %q", world)
	}
}

// ModernComparisonGrid runs the modernized Muzha comparison grid and
// returns one row per (world, variant, router-assist), averaged over
// the seeds that completed. Every cell runs under a Gilbert-Elliott
// burst-loss phase covering the middle half of the run and a RED
// bottleneck queue that ECN-marks instead of dropping. The table is
// deterministic: same config, same rows.
func ModernComparisonGrid(grid ModernGridConfig) ([]ModernGridRow, error) {
	if len(grid.Variants) == 0 {
		grid.Variants = DefaultModernGrid().Variants
	}
	if len(grid.Worlds) == 0 {
		grid.Worlds = ModernWorlds()
	}
	if grid.Duration <= 0 {
		grid.Duration = 15 * time.Second
	}
	if len(grid.Seeds) == 0 {
		grid.Seeds = []int64{1}
	}
	if grid.Window <= 0 {
		grid.Window = 32
	}

	assists := []bool{true, false}
	var units []runUnit
	for _, world := range grid.Worlds {
		top, fe, mob, err := modernWorld(world)
		if err != nil {
			return nil, err
		}
		for _, v := range grid.Variants {
			for _, assist := range assists {
				for _, seed := range grid.Seeds {
					cfg := DefaultConfig()
					cfg.Topology = top
					cfg.Duration = grid.Duration
					cfg.Window = grid.Window
					cfg.Seed = seed
					cfg.RouterAssist = assist
					// The assist axis is live for end-to-end senders:
					// with RouterAssist on, every flow becomes a
					// core.DRAIClamped hybrid (router recommendations
					// as a deceleration-only ceiling).
					cfg.DRAIClamp = assist
					cfg.UseRED = true
					cfg.REDMarkECN = true
					cfg.Mobility = mob
					cfg.Flows = []Flow{{Src: fe[0], Dst: fe[1], Variant: v}}
					cfg.Faults = []FaultEvent{{
						Kind:            FaultBurstLoss,
						At:              grid.Duration / 4,
						Duration:        grid.Duration / 2,
						BadLossRate:     0.3,
						MeanBurstFrames: 6,
						MeanGapFrames:   150,
					}}
					units = append(units, runUnit{
						Key: fmt.Sprintf("modern/%s/%s/assist=%t/seed=%d/d=%s",
							world, v, assist, seed, grid.Duration),
						Cfg: cfg,
					})
				}
			}
		}
	}

	outs, err := runPool(units, grid.Sweep, false)
	if err != nil {
		return nil, err
	}

	var rows []ModernGridRow
	i := 0
	for _, world := range grid.Worlds {
		for _, v := range grid.Variants {
			for _, assist := range assists {
				row := ModernGridRow{World: world, Variant: v, RouterAssist: assist}
				for range grid.Seeds {
					if res := outs[i].Result; res != nil {
						row.Seeds++
						row.ThroughputBps += res.Flows[0].ThroughputBps
						row.Retransmissions += float64(res.Flows[0].Retransmissions)
						row.Timeouts += float64(res.Flows[0].Timeouts)
					}
					i++
				}
				if row.Seeds > 0 {
					n := float64(row.Seeds)
					row.ThroughputBps /= n
					row.Retransmissions /= n
					row.Timeouts /= n
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, sweepError(outs)
}
