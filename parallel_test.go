package muzha

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// Parallel-engine proof tests.
//
// Two determinism classes, both pinned here:
//
//   - Fallback identity: every single-domain scenario (all four
//     pre-parallel golden fixtures) must be bit-for-bit identical to
//     the classic engine at ANY worker width, because the decomposed
//     engine detects the single domain and takes the classic path.
//   - Width invariance: multi-domain scenarios must produce the same
//     merged event stream and the same Result at every width >= 1 —
//     worker scheduling must be unobservable.

var testWidths = []int{1, 2, 4, 8}

func TestParallelFallbackIdentical(t *testing.T) {
	for name, cfg := range goldenScenarios(t) {
		if cfg.Workers != 0 {
			continue // multi-domain scenarios are covered below
		}
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			serial := goldenHash(t, cfg)
			for _, w := range testWidths {
				pcfg := cfg
				pcfg.Workers = w
				if got := goldenHash(t, pcfg); got != serial {
					t.Errorf("workers=%d diverged from classic engine: %s vs %s", w, got, serial)
				}
			}
		})
	}
}

func TestParallelWidthInvariance(t *testing.T) {
	for name, cfg := range parallelGoldenScenarios(t) {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			if n := len(planDomains(cfg)); n < 2 {
				t.Fatalf("scenario is not multi-domain (%d domains); the test would prove nothing", n)
			}
			cfg.Workers = 1
			ref := goldenHash(t, cfg)
			refRes, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range testWidths[1:] {
				pcfg := cfg
				pcfg.Workers = w
				if got := goldenHash(t, pcfg); got != ref {
					t.Errorf("workers=%d changed the merged event stream: %s vs %s", w, got, ref)
				}
				res, err := Run(pcfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res, refRes) {
					t.Errorf("workers=%d changed the Result", w)
				}
			}
		})
	}
}

// TestParallelMobilityRepartition proves the conservative footprint
// keeps re-partitioning under SetPosition sound: a mobile node roams
// its whole field across the run (many SetPosition epochs), the static
// islands stay separate domains, and the merged stream is identical at
// every width.
func TestParallelMobilityRepartition(t *testing.T) {
	islands, err := GridIslandsTopology(2, 2, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	fe := islands.FlowEndpoints()
	cfg := DefaultConfig()
	cfg.Topology = islands
	cfg.Duration = 4 * time.Second
	cfg.Window = 8
	cfg.Seed = 9
	cfg.Workers = 1
	cfg.Flows = []Flow{
		{Src: fe[0][0], Dst: fe[0][1], Variant: Muzha},
		{Src: fe[1][0], Dst: fe[1][1], Variant: Muzha},
	}
	// The field spans island 0 with margin; its footprint stays far
	// beyond CSRange of island 1 (which starts at x=2250).
	cfg.Mobility = &Mobility{
		Width: 600, Height: 400,
		MinSpeed: 5, MaxSpeed: 15,
		Pause:       200 * time.Millisecond,
		MobileNodes: []int{1},
	}
	domains := planDomains(cfg)
	if len(domains) != 2 {
		t.Fatalf("expected 2 domains, got %v", domains)
	}
	ref := goldenHash(t, cfg)
	for _, w := range testWidths[1:] {
		pcfg := cfg
		pcfg.Workers = w
		if got := goldenHash(t, pcfg); got != ref {
			t.Errorf("workers=%d diverged under mobility: %s vs %s", w, got, ref)
		}
	}
}

func TestPlanDomainsCouplesFlows(t *testing.T) {
	islands, err := GridIslandsTopology(2, 2, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Topology = islands
	cfg.Duration = time.Second
	// A flow spanning islands must weld them into one domain: its two
	// endpoints need a shared timeline even though no frame can cross.
	cfg.Flows = []Flow{{Src: 0, Dst: 7}}
	if n := len(planDomains(cfg)); n != 1 {
		t.Fatalf("cross-island flow must couple the islands, got %d domains", n)
	}
	cfg.Flows = []Flow{{Src: 0, Dst: 3}}
	if n := len(planDomains(cfg)); n != 2 {
		t.Fatalf("intra-island flow must keep 2 domains, got %d", n)
	}
}

func TestParallelValidatesConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative workers must not validate")
	}
}

// TestParallelProgressAndCancel exercises the observer plumbing of the
// decomposed path: progress snapshots arrive serialized with a
// terminal snapshot carrying the total event count, and a pre-closed
// Cancel aborts every domain.
func TestParallelProgressAndCancel(t *testing.T) {
	islands, err := GridIslandsTopology(2, 2, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	fe := islands.FlowEndpoints()
	cfg := DefaultConfig()
	cfg.Topology = islands
	cfg.Duration = 2 * time.Second
	cfg.Window = 8
	cfg.Workers = 2
	cfg.Flows = []Flow{
		{Src: fe[0][0], Dst: fe[0][1]},
		{Src: fe[1][0], Dst: fe[1][1]},
	}

	var updates []ProgressUpdate
	cfg.Progress = func(u ProgressUpdate) { updates = append(updates, u) }
	cfg.ProgressEvery = 1 << 12
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Fatal("no progress updates from decomposed run")
	}
	last := updates[len(updates)-1]
	if last.Events != res.Events {
		t.Errorf("terminal snapshot events = %d, result has %d", last.Events, res.Events)
	}
	if last.SimTime != cfg.Duration {
		t.Errorf("terminal snapshot sim time = %v, want %v", last.SimTime, cfg.Duration)
	}

	cancel := make(chan struct{})
	close(cancel)
	cfg.Progress = nil
	cfg.Cancel = cancel
	cfg.Guards = RunGuards{LivelockWindow: 1 << 20}
	if _, err := Run(cfg); err == nil {
		t.Fatal("pre-closed Cancel must abort the decomposed run")
	}
}

// TestParallelRaceSweep drives genuinely concurrent multi-domain runs
// (full fault mix, mobility, background traffic) at NumCPU workers so
// `go test -race` patrols the worker pool, the progress aggregation
// and the merge. It also cross-checks width invariance once more on
// the fault-heavy config.
func TestParallelRaceSweep(t *testing.T) {
	islands, err := GridIslandsTopology(4, 2, 2, 1500)
	if err != nil {
		t.Fatal(err)
	}
	fe := islands.FlowEndpoints()
	base := DefaultConfig()
	base.Topology = islands
	base.Duration = 2 * time.Second
	base.Window = 8
	base.Flows = []Flow{
		{Src: fe[0][0], Dst: fe[0][1], Variant: Muzha},
		{Src: fe[1][0], Dst: fe[1][1], Variant: NewReno},
		{Src: fe[2][0], Dst: fe[2][1], Variant: Vegas},
		{Src: fe[3][0], Dst: fe[3][1], Variant: Muzha},
	}
	base.Background = []BackgroundFlow{{Src: 4, Dst: 7, RateBps: 64_000, PacketSize: 256, Start: 500 * time.Millisecond}}
	base.Faults = []FaultEvent{
		{Kind: FaultNodeCrash, At: 600 * time.Millisecond, Duration: 300 * time.Millisecond, Node: 5},
		{Kind: FaultLinkBlackout, At: 800 * time.Millisecond, Duration: 300 * time.Millisecond, LinkA: 8, LinkB: 9},
		{Kind: FaultPartition, At: time.Second, Duration: 200 * time.Millisecond, Groups: [][]int{{0, 1}, {2, 3}}},
		{Kind: FaultBurstLoss, At: 300 * time.Millisecond, Duration: time.Second, BadLossRate: 0.3},
	}
	base.Mobility = &Mobility{
		Width: 400, Height: 300,
		MinSpeed: 1, MaxSpeed: 10,
		Pause:       time.Second,
		MobileNodes: []int{2},
	}

	width := runtime.NumCPU()
	if width < 2 {
		width = 2
	}
	var ref *Result
	for seed := int64(1); seed <= 3; seed++ {
		cfg := base
		cfg.Seed = seed
		cfg.Workers = width
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if seed == 1 {
			cfg.Workers = 1
			ref, err = Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, ref) {
				t.Errorf("seed 1: workers=%d result differs from workers=1", width)
			}
		}
		if res.Faults.Crashes == 0 || res.Faults.BurstPhases == 0 {
			t.Errorf("seed %d: fault mix not exercised: %+v", seed, res.Faults)
		}
	}
}

// TestSubSeedDistinct guards the per-domain seed derivation: domains of
// one run, and the same domain across neighboring run seeds, must get
// distinct RNG streams.
func TestSubSeedDistinct(t *testing.T) {
	seen := make(map[int64]string)
	for seed := int64(0); seed < 8; seed++ {
		for d := 0; d < 8; d++ {
			s := subSeed(seed, d)
			key := fmt.Sprintf("seed=%d domain=%d", seed, d)
			if prev, ok := seen[s]; ok {
				t.Fatalf("subSeed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
