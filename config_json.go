package muzha

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"muzha/internal/canon"
	"muzha/internal/packet"
	"muzha/internal/topo"
)

// This file gives Config a stable wire form: canonical JSON (sorted
// keys, explicit defaults, numbers verbatim) plus a content hash over
// it. The encoding is what a remote client ships to the muzhad daemon,
// and the hash is the daemon's result-cache key — two submissions with
// the same Hash describe the same simulation and may share a Result.
//
// Three kinds of field are deliberately excluded from the wire form
// because they are local observers, not part of the scenario:
// PacketTrace (an io.Writer), Progress/ProgressEvery (callbacks) and
// Cancel (a channel). Guards ARE carried on the wire — a remote job
// keeps its budgets — but are excluded from Hash: a run that completes
// is bit-for-bit identical with or without guards, so configurations
// differing only in guard budgets may share a cached Result.

// topologyWire is the serialized node layout. Positions and flow
// endpoints fully determine a topology, so any Topology — including
// random and mobility-modified ones — round-trips exactly.
type topologyWire struct {
	Name          string             `json:"name"`
	Positions     []topo.Position    `json:"positions"`
	FlowEndpoints [][2]packet.NodeID `json:"flow_endpoints"`
}

// MarshalJSON encodes the topology as its name, positions and
// conventional flow endpoints. A zero Topology encodes as null.
func (t Topology) MarshalJSON() ([]byte, error) {
	if t.inner == nil {
		return []byte("null"), nil
	}
	return json.Marshal(topologyWire{
		Name:          t.inner.Name,
		Positions:     t.inner.Positions,
		FlowEndpoints: t.inner.FlowEndpoints,
	})
}

// UnmarshalJSON reconstructs the topology from its wire form.
func (t *Topology) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		t.inner = nil
		return nil
	}
	var w topologyWire
	if err := json.Unmarshal(b, &w); err != nil {
		return fmt.Errorf("muzha: topology: %w", err)
	}
	t.inner = &topo.Topology{
		Name:          w.Name,
		Positions:     w.Positions,
		FlowEndpoints: w.FlowEndpoints,
	}
	return nil
}

// configWire mirrors Config's serializable fields. Every field is
// always emitted (no omitempty), so defaults are explicit in the
// encoding and adding a field changes every hash at once instead of
// silently colliding old and new configs. Durations encode as
// nanosecond integers.
type configWire struct {
	Topology                Topology         `json:"topology"`
	Flows                   []Flow           `json:"flows"`
	Duration                int64            `json:"duration_ns"`
	Seed                    int64            `json:"seed"`
	MSS                     int              `json:"mss"`
	Window                  int              `json:"window"`
	DelayedAck              int64            `json:"delayed_ack_ns"`
	QueueLimit              int              `json:"queue_limit"`
	UseRED                  bool             `json:"use_red"`
	REDMarkECN              bool             `json:"red_mark_ecn"`
	REDMinTh                int              `json:"red_min_th"`
	REDMaxTh                int              `json:"red_max_th"`
	Pacing                  bool             `json:"pacing"`
	PacketErrorRate         float64          `json:"packet_error_rate"`
	BitErrorRate            float64          `json:"bit_error_rate"`
	ResidualLossRate        float64          `json:"residual_loss_rate"`
	DisableRTSCTS           bool             `json:"disable_rts_cts"`
	UseDSR                  bool             `json:"use_dsr"`
	ExpandingRing           bool             `json:"expanding_ring"`
	RouterAssist            bool             `json:"router_assist"`
	DRAI                    DRAIPolicy       `json:"drai"`
	MuzhaLossDiscrimination bool             `json:"muzha_loss_discrimination"`
	DRAIClamp               bool             `json:"drai_clamp"`
	ThroughputBin           int64            `json:"throughput_bin_ns"`
	TraceCwnd               bool             `json:"trace_cwnd"`
	TraceCap                int              `json:"trace_cap"`
	TraceFlowLimit          int              `json:"trace_flow_limit"`
	Background              []BackgroundFlow `json:"background"`
	Mobility                *Mobility        `json:"mobility"`
	Faults                  []FaultEvent     `json:"faults"`
	Guards                  RunGuards        `json:"guards"`
	Workers                 int              `json:"workers"`
}

// MarshalJSON emits the canonical wire encoding: sorted keys, explicit
// defaults, observer fields (PacketTrace, Progress, Cancel) omitted.
func (c Config) MarshalJSON() ([]byte, error) {
	return canon.JSON(configWire{
		Topology:                c.Topology,
		Flows:                   c.Flows,
		Duration:                int64(c.Duration),
		Seed:                    c.Seed,
		MSS:                     c.MSS,
		Window:                  c.Window,
		DelayedAck:              int64(c.DelayedAck),
		QueueLimit:              c.QueueLimit,
		UseRED:                  c.UseRED,
		REDMarkECN:              c.REDMarkECN,
		REDMinTh:                c.REDMinTh,
		REDMaxTh:                c.REDMaxTh,
		Pacing:                  c.Pacing,
		PacketErrorRate:         c.PacketErrorRate,
		BitErrorRate:            c.BitErrorRate,
		ResidualLossRate:        c.ResidualLossRate,
		DisableRTSCTS:           c.DisableRTSCTS,
		UseDSR:                  c.UseDSR,
		ExpandingRing:           c.ExpandingRing,
		RouterAssist:            c.RouterAssist,
		DRAI:                    c.DRAI,
		MuzhaLossDiscrimination: c.MuzhaLossDiscrimination,
		ThroughputBin:           int64(c.ThroughputBin),
		TraceCwnd:               c.TraceCwnd,
		TraceCap:                c.TraceCap,
		TraceFlowLimit:          c.TraceFlowLimit,
		Background:              c.Background,
		Mobility:                c.Mobility,
		Faults:                  c.Faults,
		Guards:                  c.Guards,
		Workers:                 c.Workers,
	})
}

// UnmarshalJSON decodes the wire encoding. Observer fields come back
// zero; a daemon attaches its own trace writers and progress hooks.
func (c *Config) UnmarshalJSON(b []byte) error {
	var w configWire
	if err := json.Unmarshal(b, &w); err != nil {
		return fmt.Errorf("muzha: config: %w", err)
	}
	*c = Config{
		Topology:                w.Topology,
		Flows:                   w.Flows,
		Duration:                durationNs(w.Duration),
		Seed:                    w.Seed,
		MSS:                     w.MSS,
		Window:                  w.Window,
		DelayedAck:              durationNs(w.DelayedAck),
		QueueLimit:              w.QueueLimit,
		UseRED:                  w.UseRED,
		REDMarkECN:              w.REDMarkECN,
		REDMinTh:                w.REDMinTh,
		REDMaxTh:                w.REDMaxTh,
		Pacing:                  w.Pacing,
		PacketErrorRate:         w.PacketErrorRate,
		BitErrorRate:            w.BitErrorRate,
		ResidualLossRate:        w.ResidualLossRate,
		DisableRTSCTS:           w.DisableRTSCTS,
		UseDSR:                  w.UseDSR,
		ExpandingRing:           w.ExpandingRing,
		RouterAssist:            w.RouterAssist,
		DRAI:                    w.DRAI,
		MuzhaLossDiscrimination: w.MuzhaLossDiscrimination,
		DRAIClamp:               w.DRAIClamp,
		ThroughputBin:           durationNs(w.ThroughputBin),
		TraceCwnd:               w.TraceCwnd,
		TraceCap:                w.TraceCap,
		TraceFlowLimit:          w.TraceFlowLimit,
		Background:              w.Background,
		Mobility:                w.Mobility,
		Faults:                  w.Faults,
		Guards:                  w.Guards,
		Workers:                 w.Workers,
	}
	return nil
}

// Hash returns the content hash identifying this scenario: the SHA-256
// of the canonical JSON encoding with Guards and Workers zeroed, as
// lowercase hex. It is THE result-cache key of the muzhad daemon —
// identical (config, seed) submissions hash identically, so their
// Results are interchangeable; Seed is part of Config, hence part of
// the hash. Observer fields (PacketTrace, Progress, Cancel) and guard
// budgets do not affect a completed run's Result and are excluded.
// Workers is excluded too: the decomposed engine's output is identical
// at every width >= 1, and the daemon applies one engine mode
// server-side (see muzhad -run-workers) so a cache never mixes classic
// and decomposed results for multi-domain scenarios.
func (c Config) Hash() (string, error) {
	c.Guards = RunGuards{}
	c.Workers = 0
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("muzha: hash config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ShortHash returns an FNV-1a 64-bit digest of the full Hash, as 16 hex
// characters — compact enough for job IDs and log lines. Collisions are
// plausible at scale, so it must never key a cache; that is Hash's job.
func (c Config) ShortHash() (string, error) {
	full, err := c.Hash()
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write([]byte(full))
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// durationNs converts wire nanoseconds back to a time.Duration.
func durationNs(ns int64) time.Duration { return time.Duration(ns) }
