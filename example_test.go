package muzha_test

import (
	"fmt"
	"time"

	"muzha"
)

// ExampleRun reproduces the paper's basic scenario: one TCP Muzha flow
// over the 4-hop chain of Figure 5.1.
func ExampleRun() {
	topology, err := muzha.ChainTopology(4)
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg := muzha.DefaultConfig() // Table 5.1 parameters
	cfg.Topology = topology
	cfg.Duration = 10 * time.Second
	cfg.Window = 8
	cfg.Flows = []muzha.Flow{{Src: 0, Dst: 4, Variant: muzha.Muzha}}

	res, err := muzha.Run(cfg) // deterministic in cfg.Seed
	if err != nil {
		fmt.Println(err)
		return
	}
	f := res.Flows[0]
	fmt.Printf("delivered %d bytes with %d retransmissions\n",
		f.BytesAcked, f.Retransmissions)
	// Output:
	// delivered 410260 bytes with 1 retransmissions
}

// ExampleCoexistenceFairness reproduces one row of Simulation 3A: two
// crossing flows sharing the centre of a cross topology.
func ExampleCoexistenceFairness() {
	rows, err := muzha.CoexistenceFairness(
		[]int{4},
		[][2]muzha.Variant{{muzha.NewReno, muzha.Muzha}},
		10*time.Second,
		[]int64{1},
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	r := rows[0]
	fmt.Printf("%s+%s on the %d-hop cross: Jain index in (0,1]: %v\n",
		r.Variants[0], r.Variants[1], r.Hops, r.JainIndex > 0 && r.JainIndex <= 1)
	// Output:
	// newreno+muzha on the 4-hop cross: Jain index in (0,1]: true
}

// ExampleChainTopology shows the Figure 5.1 layout helper.
func ExampleChainTopology() {
	topology, _ := muzha.ChainTopology(4)
	fmt.Println(topology.Name(), topology.Nodes(), "nodes, flow", topology.FlowEndpoints()[0])
	// Output:
	// chain-4hop 5 nodes, flow [0 4]
}
