package muzha

import (
	"errors"
	"fmt"
	"sort"

	"muzha/internal/app"
	"muzha/internal/core"
	"muzha/internal/fault"
	"muzha/internal/harness"
	"muzha/internal/invariant"
	"muzha/internal/node"
	"muzha/internal/packet"
	"muzha/internal/phy"
	"muzha/internal/sim"
	"muzha/internal/stats"
	"muzha/internal/tcp"
	"muzha/internal/topo"
	"muzha/internal/trace"
)

// loopScanPeriod is how often the run-time route-loop-freedom invariant
// walks the AODV next-hop tables.
const loopScanPeriod = 200 * sim.Millisecond

// defaultProgressEvery is the Config.Progress callback period in events
// when ProgressEvery is zero — roughly a few snapshots per simulated
// second of a saturated chain.
const defaultProgressEvery = 1 << 16

// chainGuards folds several guard functions into the engine's single
// guard slot; the first error wins.
func chainGuards(fns []func() error) func() error {
	if len(fns) == 1 {
		return fns[0]
	}
	return func() error {
		for _, fn := range fns {
			if err := fn(); err != nil {
				return err
			}
		}
		return nil
	}
}

// Run executes one scenario deterministically and returns its metrics.
// Engine panics (a corrupted event heap, a radio double-transmit) are
// recovered and returned as errors wrapping ErrPanic with the virtual
// time and seed, so one broken scenario cannot take down a sweep or the
// fuzzer. Config.Guards bounds the run's wall-clock time, event count
// and progress; a tripped guard aborts cleanly with ErrDeadline,
// ErrEventBudget or ErrLivelock.
//
// Config.Workers zero runs the classic single-threaded engine; any
// positive value runs the spatial-domain decomposition (see
// Config.Workers and runDecomposed), whose output is identical at
// every width.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Resolve the summary-only trace decision once, against the global
	// flow count: the decomposed engine splits flows across domains, so
	// deciding per sub-run would disagree with the classic engine.
	limit := cfg.TraceFlowLimit
	if limit == 0 {
		limit = DefaultTraceFlowLimit
	}
	cfg.summaryTraces = limit > 0 && len(cfg.Flows) > limit
	if cfg.Workers > 0 {
		return runDecomposed(cfg)
	}
	return run(cfg)
}

// run is the classic single-threaded engine. It assumes cfg has been
// validated — the decomposed engine calls it with per-domain
// sub-configs that are deliberately looser than user configs (a domain
// may carry zero flows).
func run(cfg Config) (res *Result, err error) {
	s := sim.New(cfg.Seed)
	hook := cfg.eventHook
	if cfg.Progress != nil {
		// Progress rides the event-hook observer: a counter per event and
		// a callback every ProgressEvery events. The hook observes the
		// schedule without touching it, so enabling progress cannot change
		// a run's outcome.
		every := cfg.ProgressEvery
		if every == 0 {
			every = defaultProgressEvery
		}
		prev, progress := hook, cfg.Progress
		var count uint64
		hook = func(at sim.Time, seq uint64) {
			if prev != nil {
				prev(at, seq)
			}
			count++
			if count%every == 0 {
				progress(ProgressUpdate{SimTime: at.Duration(), Events: count})
			}
		}
	}
	if hook != nil {
		s.SetEventHook(hook)
	}
	var traceWriter *trace.TextWriter
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("muzha: %w at t=%v seed=%d: %v", harness.ErrPanic, s.Now(), cfg.Seed, r)
		}
		// A truncated packet trace must never be mistaken for a complete
		// one: surface the writer's latched error on every return path,
		// joined to the run error when there is one.
		if traceWriter == nil || traceWriter.Err() == nil {
			return
		}
		res = nil
		terr := fmt.Errorf("muzha: packet trace: %w", traceWriter.Err())
		if err != nil {
			err = errors.Join(err, terr)
		} else {
			err = terr
		}
	}()

	phyCfg := phy.DefaultConfig()
	phyCfg.PacketErrorRate = cfg.PacketErrorRate
	phyCfg.BitErrorRate = cfg.BitErrorRate
	ch, err := phy.NewChannel(s, phyCfg)
	if err != nil {
		return nil, err
	}

	nodeCfg := node.DefaultConfig()
	nodeCfg.QueueLimit = cfg.QueueLimit
	nodeCfg.UseRED = cfg.UseRED
	if cfg.UseRED {
		nodeCfg.RED.MinTh = float64(cfg.QueueLimit) / 4
		nodeCfg.RED.MaxTh = float64(cfg.QueueLimit) * 3 / 4
		if cfg.REDMinTh > 0 {
			nodeCfg.RED.MinTh = float64(cfg.REDMinTh)
		}
		if cfg.REDMaxTh > 0 {
			nodeCfg.RED.MaxTh = float64(cfg.REDMaxTh)
		}
		nodeCfg.RED.MaxP = 0.1
		nodeCfg.RED.Weight = 0.002
		nodeCfg.RED.MarkInsteadOfDrop = cfg.REDMarkECN
	}
	if cfg.DisableRTSCTS {
		nodeCfg.MAC.RTSThreshold = 1 << 30
	}
	nodeCfg.ResidualLossRate = cfg.ResidualLossRate
	if cfg.UseDSR {
		nodeCfg.Protocol = node.RoutingDSR
	}
	nodeCfg.AODV.ExpandingRing = cfg.ExpandingRing
	if cfg.PacketTrace != nil {
		traceWriter = trace.NewTextWriter(cfg.PacketTrace)
		nodeCfg.Trace = traceWriter
	}
	if cfg.RouterAssist {
		p := cfg.DRAI.toCore()
		nodeCfg.DRAI = &p
	} else {
		nodeCfg.DRAI = nil
	}

	// Run-time invariant checking is always on: the checks are counter
	// increments on the hot path and their report lands in the Result.
	checker := invariant.New(s.Now)
	ledger := invariant.NewLedger(checker.Always("packet-conservation"))
	nodeCfg.Invariants = checker
	nodeCfg.Ledger = ledger

	var ids packet.IDGen
	tp := cfg.Topology.inner
	nodes := make([]*node.Node, tp.N())
	for i, pos := range tp.Positions {
		n, err := node.New(s, ch, pos, packet.NodeID(i), &ids, nodeCfg)
		if err != nil {
			return nil, fmt.Errorf("muzha: node %d: %w", i, err)
		}
		nodes[i] = n
	}

	if cfg.Mobility != nil {
		switch cfg.Mobility.Model {
		case MobilityManhattan:
			m, err := topo.NewManhattan(s, ch, topo.ManhattanConfig{
				Width:            cfg.Mobility.Width,
				Height:           cfg.Mobility.Height,
				Spacing:          cfg.Mobility.GridSpacing,
				MinSpeed:         cfg.Mobility.MinSpeed,
				MaxSpeed:         cfg.Mobility.MaxSpeed,
				MobileNodes:      cfg.Mobility.MobileNodes,
				InitialPositions: tp.Positions,
			})
			if err != nil {
				return nil, err
			}
			m.Start()
		default:
			w, err := topo.NewWaypoint(s, ch, topo.WaypointConfig{
				Width:            cfg.Mobility.Width,
				Height:           cfg.Mobility.Height,
				MinSpeed:         cfg.Mobility.MinSpeed,
				MaxSpeed:         cfg.Mobility.MaxSpeed,
				Pause:            sim.FromDuration(cfg.Mobility.Pause),
				MobileNodes:      cfg.Mobility.MobileNodes,
				InitialPositions: tp.Positions,
			})
			if err != nil {
				return nil, err
			}
			w.Start()
		}
	}

	duration := sim.FromDuration(cfg.Duration)
	flowStats := make([]*stats.Flow, len(cfg.Flows))
	senders := make([]*tcp.Sender, len(cfg.Flows))
	for i, f := range cfg.Flows {
		i, f := i, f
		flowID := int32(i + 1)

		bin := sim.FromDuration(cfg.ThroughputBin)
		if cfg.summaryTraces {
			// Summary-only rows keep scalar counters but no series;
			// disabling the recorders here (not just nil-ing the result)
			// means a 1000-flow run pays no trace memory at all.
			bin = 0
		}
		fl := stats.NewFlow(i+1, string(f.variant()), bin)
		fl.SetTraceCap(cfg.TraceCap)
		if cfg.summaryTraces || !cfg.TraceCwnd {
			fl.DisableCwnd()
		}
		flowStats[i] = fl

		window := f.Window
		if window == 0 {
			window = cfg.Window
		}
		senderCfg := tcp.SenderConfig{
			FlowID:           flowID,
			Dst:              nodeID(f.Dst),
			MSS:              cfg.MSS,
			AdvertisedWindow: window,
			MaxBytes:         f.MaxBytes,
			Stats:            fl,
			Invariants:       checker,
			Pace:             cfg.Pacing,
		}

		srcNode := nodes[f.Src]
		var v tcp.Variant
		switch f.variant() {
		case Muzha:
			m := core.NewMuzha()
			m.MarkedMeansCongestion = cfg.MuzhaLossDiscrimination
			senderCfg.StampAVBW = true
			v = m
		case Tahoe:
			v = tcp.NewTahoe()
		case Reno:
			v = tcp.NewReno2()
		case SACK:
			v = tcp.NewSACK()
		case Vegas:
			v = tcp.NewVegas()
		case Veno:
			v = tcp.NewVeno()
		case Westwood:
			v = tcp.NewWestwood()
		case Jersey:
			v = tcp.NewJersey()
		case ECNNewReno:
			v = tcp.NewECNNewReno()
		case CUBIC:
			v = tcp.NewCUBIC()
		case BBRLite:
			v = tcp.NewBBRLite()
		default:
			v = tcp.NewNewReno()
		}
		if cfg.DRAIClamp && cfg.RouterAssist && f.variant() != Muzha {
			// Router-assisted hybrid: the flow's data packets carry the
			// AVBW-S option and the echoed recommendation caps the
			// window (deceleration only; see core.DRAIClamped).
			senderCfg.StampAVBW = true
			v = core.NewDRAIClamped(v)
		}
		snd, err := tcp.NewSender(s, srcNode.Send, senderCfg, v)
		if err != nil {
			return nil, fmt.Errorf("muzha: flow %d: %w", i, err)
		}
		senders[i] = snd
		if err := srcNode.Attach(snd); err != nil {
			return nil, err
		}

		dstNode := nodes[f.Dst]
		sink := tcp.NewSink(s, dstNode.Send, tcp.SinkConfig{
			FlowID:      flowID,
			Peer:        nodeID(f.Src),
			SACKEnabled: f.variant() == SACK,
			DelayedAck:  sim.FromDuration(cfg.DelayedAck),
			Invariants:  checker,
		})
		if err := dstNode.Attach(sink); err != nil {
			return nil, err
		}

		s.At(sim.FromDuration(f.Start), snd.Start)
	}

	type bgPair struct {
		src  *app.CBR
		sink *app.CBRSink
	}
	bgs := make([]bgPair, len(cfg.Background))
	for i, b := range cfg.Background {
		// Background flow IDs live above the TCP flows'.
		flowID := int32(len(cfg.Flows) + i + 1)
		size := b.PacketSize
		if size <= 0 {
			size = 512
		}
		src, err := app.NewCBR(s, nodes[b.Src].Send, app.CBRConfig{
			FlowID:     flowID,
			Dst:        nodeID(b.Dst),
			RateBps:    b.RateBps,
			PacketSize: size,
			Jitter:     0.1,
		})
		if err != nil {
			return nil, fmt.Errorf("muzha: background flow %d: %w", i, err)
		}
		if err := nodes[b.Src].Attach(src); err != nil {
			return nil, err
		}
		sink := app.NewCBRSink(s, flowID)
		if err := nodes[b.Dst].Attach(sink); err != nil {
			return nil, err
		}
		bgs[i] = bgPair{src: src, sink: sink}
		s.At(sim.FromDuration(b.Start), src.Start)
	}

	// Fault injection: the schedule was validated by cfg.validate().
	faultEvents, err := cfg.faultSchedule()
	if err != nil {
		return nil, err
	}
	controls := make([]fault.NodeControl, len(nodes))
	for i, n := range nodes {
		controls[i] = n
	}
	injector, err := fault.NewInjector(s, controls, ch, faultEvents)
	if err != nil {
		return nil, err
	}
	// Per-kind Sometimes assertions refine the single "fault-injected"
	// signal into a coverage dimension the chaos fuzzer can steer by:
	// a corpus that has crashed nodes but never partitioned the network
	// shows it. Registered in a fixed order for a deterministic report.
	someFault := checker.Sometimes("fault-injected")
	someCrash := checker.Sometimes("fault-node-crash")
	someBlackout := checker.Sometimes("fault-link-blackout")
	somePartition := checker.Sometimes("fault-partition")
	someBurst := checker.Sometimes("fault-burst-loss")
	someFinished := checker.Sometimes("flow-finished")
	injector.OnFire = func(e fault.Event, _ bool) {
		someFault.Reach()
		switch e.Kind {
		case fault.NodeCrash:
			someCrash.Reach()
		case fault.LinkBlackout:
			someBlackout.Reach()
		case fault.Partition:
			somePartition.Reach()
		case fault.BurstLoss:
			someBurst.Reach()
		}
	}
	injector.Start()

	// Periodic route-loop-freedom scan over the AODV next-hop tables.
	// DSR carries complete source routes, so there is no per-hop table
	// to walk.
	if !cfg.UseDSR {
		loopInv := checker.Always("route-loop-free")
		// The scratch maps persist across scans (cleared, not
		// reallocated): at 1000 nodes a fresh map-of-maps every 200 ms of
		// virtual time dominated the allocation profile.
		perDst := make(map[int32]map[int32]int32)
		var dsts []int32
		var scan func()
		scan = func() {
			for _, m := range perDst {
				clear(m)
			}
			for _, n := range nodes {
				from := int32(n.ID())
				for dst, nh := range n.NextHops() {
					m := perDst[int32(dst)]
					if m == nil {
						m = make(map[int32]int32)
						perDst[int32(dst)] = m
					}
					m[from] = int32(nh)
				}
			}
			dsts = dsts[:0]
			for dst, m := range perDst {
				if len(m) > 0 {
					dsts = append(dsts, dst)
				}
			}
			sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
			for _, dst := range dsts {
				invariant.LoopFree(loopInv, dst, perDst[dst])
			}
			s.Schedule(loopScanPeriod, scan)
		}
		s.Schedule(loopScanPeriod, scan)
	}

	// Arm the run guards last so the watchdog's wall clock starts at the
	// first event, not at setup. Cancellation shares the guard tick: the
	// engine polls the Cancel channel every guard period, so a close is
	// noticed within ~1024 events.
	var guards []func() error
	interval := uint64(0)
	if g := cfg.Guards; g.enabled() {
		wc := harness.WatchdogConfig{
			WallClock:      g.WallClock,
			MaxEvents:      g.MaxEvents,
			LivelockWindow: g.LivelockWindow,
			CheckEvery:     g.CheckEvery,
		}
		interval = wc.Interval()
		guards = append(guards, harness.NewWatchdog(
			func() int64 { return int64(s.Now()) }, s.EventsExecuted, wc))
	}
	if cancel := cfg.Cancel; cancel != nil {
		guards = append(guards, func() error {
			select {
			case <-cancel:
				return fmt.Errorf("%w at t=%v", harness.ErrCanceled, s.Now())
			default:
				return nil
			}
		})
	}
	if len(guards) > 0 {
		s.SetGuard(interval, chainGuards(guards))
	}

	s.Run(duration)

	if cfg.Progress != nil {
		// Final snapshot so a streaming client always sees the terminal
		// state, even for runs shorter than one progress period.
		cfg.Progress(ProgressUpdate{SimTime: s.Now().Duration(), Events: s.EventsExecuted()})
	}

	if gerr := s.GuardErr(); gerr != nil {
		return nil, fmt.Errorf("muzha: run aborted at t=%v after %d events (seed %d): %w",
			s.Now(), s.EventsExecuted(), cfg.Seed, gerr)
	}

	res = &Result{Duration: cfg.Duration, Events: s.EventsExecuted()}
	throughputs := make([]float64, len(cfg.Flows))
	for i, f := range cfg.Flows {
		fl := flowStats[i]
		fl.End = duration
		fr := flowResult(i+1, f, fl, senders[i].Finished())
		if fr.Finished {
			someFinished.Reach()
		}
		if !cfg.TraceCwnd {
			fr.CwndTrace = nil
		}
		if cfg.summaryTraces {
			// Summary-only rows: scalar metrics survive (throughput,
			// retransmissions, Jain inputs), series are dropped.
			fr.CwndTrace, fr.ThroughputSeries = nil, nil
		}
		res.Flows = append(res.Flows, fr)
		throughputs[i] = fr.ThroughputBps
	}
	res.JainIndex = stats.JainIndex(throughputs)

	for i, b := range cfg.Background {
		sent := bgs[i].src.Sent()
		recv := bgs[i].sink.Received()
		br := BackgroundResult{
			Src: b.Src, Dst: b.Dst,
			Sent: sent, Received: recv,
			MeanDelay: bgs[i].sink.MeanDelay().Duration(),
		}
		if sent > 0 {
			br.DeliveryRatio = float64(recv) / float64(sent)
		}
		res.Background = append(res.Background, br)
	}

	for i, n := range nodes {
		ns := n.Stats()
		ms := n.MACStats()
		rs := n.RouterStats()
		res.Nodes = append(res.Nodes, NodeResult{
			ID:           i,
			Forwarded:    ns.Forwarded,
			QueueDrops:   ns.QueueDrops,
			Marked:       ns.Marked,
			MACRetries:   ms.Retries,
			MACDrops:     ms.Drops,
			LinkFailures: rs.LinkFailures,
			RERRSent:     rs.RERRSent,
			Discoveries:  rs.Discoveries,
		})
	}

	for _, iv := range checker.Report() {
		res.Invariants = append(res.Invariants, InvariantResult{
			Name:       iv.Name,
			Kind:       iv.Kind,
			Checks:     iv.Checks,
			Violations: iv.Violations,
			Details:    iv.Details,
		})
	}
	res.InvariantViolations = checker.Violations()
	fs := injector.Stats()
	res.Faults = FaultStats{
		Crashes:     fs.Crashes,
		Reboots:     fs.Reboots,
		Blackouts:   fs.Blackouts,
		Restores:    fs.Restores,
		Partitions:  fs.Partitions,
		Heals:       fs.Heals,
		BurstPhases: fs.BurstPhases,
	}
	return res, nil
}
