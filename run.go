package muzha

import (
	"fmt"

	"muzha/internal/app"
	"muzha/internal/core"
	"muzha/internal/node"
	"muzha/internal/packet"
	"muzha/internal/phy"
	"muzha/internal/sim"
	"muzha/internal/stats"
	"muzha/internal/tcp"
	"muzha/internal/topo"
	"muzha/internal/trace"
)

// Run executes one scenario deterministically and returns its metrics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	s := sim.New(cfg.Seed)

	phyCfg := phy.DefaultConfig()
	phyCfg.PacketErrorRate = cfg.PacketErrorRate
	phyCfg.BitErrorRate = cfg.BitErrorRate
	ch, err := phy.NewChannel(s, phyCfg)
	if err != nil {
		return nil, err
	}

	nodeCfg := node.DefaultConfig()
	nodeCfg.QueueLimit = cfg.QueueLimit
	nodeCfg.UseRED = cfg.UseRED
	if cfg.UseRED {
		nodeCfg.RED.MinTh = float64(cfg.QueueLimit) / 4
		nodeCfg.RED.MaxTh = float64(cfg.QueueLimit) * 3 / 4
		nodeCfg.RED.MaxP = 0.1
		nodeCfg.RED.Weight = 0.002
	}
	if cfg.DisableRTSCTS {
		nodeCfg.MAC.RTSThreshold = 1 << 30
	}
	nodeCfg.ResidualLossRate = cfg.ResidualLossRate
	if cfg.UseDSR {
		nodeCfg.Protocol = node.RoutingDSR
	}
	var traceWriter *trace.TextWriter
	if cfg.PacketTrace != nil {
		traceWriter = trace.NewTextWriter(cfg.PacketTrace)
		nodeCfg.Trace = traceWriter
	}
	if cfg.RouterAssist {
		p := cfg.DRAI.toCore()
		nodeCfg.DRAI = &p
	} else {
		nodeCfg.DRAI = nil
	}

	var ids packet.IDGen
	tp := cfg.Topology.inner
	nodes := make([]*node.Node, tp.N())
	for i, pos := range tp.Positions {
		n, err := node.New(s, ch, pos, packet.NodeID(i), &ids, nodeCfg)
		if err != nil {
			return nil, fmt.Errorf("muzha: node %d: %w", i, err)
		}
		nodes[i] = n
	}

	if cfg.Mobility != nil {
		w, err := topo.NewWaypoint(s, ch, topo.WaypointConfig{
			Width:            cfg.Mobility.Width,
			Height:           cfg.Mobility.Height,
			MinSpeed:         cfg.Mobility.MinSpeed,
			MaxSpeed:         cfg.Mobility.MaxSpeed,
			Pause:            sim.FromDuration(cfg.Mobility.Pause),
			MobileNodes:      cfg.Mobility.MobileNodes,
			InitialPositions: tp.Positions,
		})
		if err != nil {
			return nil, err
		}
		w.Start()
	}

	duration := sim.FromDuration(cfg.Duration)
	flowStats := make([]*stats.Flow, len(cfg.Flows))
	senders := make([]*tcp.Sender, len(cfg.Flows))
	for i, f := range cfg.Flows {
		i, f := i, f
		flowID := int32(i + 1)

		bin := sim.FromDuration(cfg.ThroughputBin)
		fl := stats.NewFlow(i+1, string(f.variant()), bin)
		flowStats[i] = fl

		window := f.Window
		if window == 0 {
			window = cfg.Window
		}
		senderCfg := tcp.SenderConfig{
			FlowID:           flowID,
			Dst:              nodeID(f.Dst),
			MSS:              cfg.MSS,
			AdvertisedWindow: window,
			MaxBytes:         f.MaxBytes,
			Stats:            fl,
		}

		srcNode := nodes[f.Src]
		var snd *tcp.Sender
		switch f.variant() {
		case Muzha:
			m := core.NewMuzha()
			m.MarkedMeansCongestion = cfg.MuzhaLossDiscrimination
			senderCfg.StampAVBW = true
			snd, err = tcp.NewSender(s, srcNode.Send, senderCfg, m)
		case Tahoe:
			snd, err = tcp.NewSender(s, srcNode.Send, senderCfg, tcp.NewTahoe())
		case Reno:
			snd, err = tcp.NewSender(s, srcNode.Send, senderCfg, tcp.NewReno2())
		case SACK:
			snd, err = tcp.NewSender(s, srcNode.Send, senderCfg, tcp.NewSACK())
		case Vegas:
			snd, err = tcp.NewSender(s, srcNode.Send, senderCfg, tcp.NewVegas())
		case Veno:
			snd, err = tcp.NewSender(s, srcNode.Send, senderCfg, tcp.NewVeno())
		case Westwood:
			snd, err = tcp.NewSender(s, srcNode.Send, senderCfg, tcp.NewWestwood())
		case Jersey:
			snd, err = tcp.NewSender(s, srcNode.Send, senderCfg, tcp.NewJersey())
		case ECNNewReno:
			snd, err = tcp.NewSender(s, srcNode.Send, senderCfg, tcp.NewECNNewReno())
		default:
			snd, err = tcp.NewSender(s, srcNode.Send, senderCfg, tcp.NewNewReno())
		}
		if err != nil {
			return nil, fmt.Errorf("muzha: flow %d: %w", i, err)
		}
		senders[i] = snd
		if err := srcNode.Attach(snd); err != nil {
			return nil, err
		}

		dstNode := nodes[f.Dst]
		sink := tcp.NewSink(s, dstNode.Send, tcp.SinkConfig{
			FlowID:      flowID,
			Peer:        nodeID(f.Src),
			SACKEnabled: f.variant() == SACK,
			DelayedAck:  sim.FromDuration(cfg.DelayedAck),
		})
		if err := dstNode.Attach(sink); err != nil {
			return nil, err
		}

		s.At(sim.FromDuration(f.Start), snd.Start)
	}

	type bgPair struct {
		src  *app.CBR
		sink *app.CBRSink
	}
	bgs := make([]bgPair, len(cfg.Background))
	for i, b := range cfg.Background {
		// Background flow IDs live above the TCP flows'.
		flowID := int32(len(cfg.Flows) + i + 1)
		size := b.PacketSize
		if size <= 0 {
			size = 512
		}
		src, err := app.NewCBR(s, nodes[b.Src].Send, app.CBRConfig{
			FlowID:     flowID,
			Dst:        nodeID(b.Dst),
			RateBps:    b.RateBps,
			PacketSize: size,
			Jitter:     0.1,
		})
		if err != nil {
			return nil, fmt.Errorf("muzha: background flow %d: %w", i, err)
		}
		if err := nodes[b.Src].Attach(src); err != nil {
			return nil, err
		}
		sink := app.NewCBRSink(s, flowID)
		if err := nodes[b.Dst].Attach(sink); err != nil {
			return nil, err
		}
		bgs[i] = bgPair{src: src, sink: sink}
		s.At(sim.FromDuration(b.Start), src.Start)
	}

	s.Run(duration)

	if traceWriter != nil && traceWriter.Err() != nil {
		return nil, fmt.Errorf("muzha: packet trace: %w", traceWriter.Err())
	}

	res := &Result{Duration: cfg.Duration, Events: s.EventsExecuted()}
	throughputs := make([]float64, len(cfg.Flows))
	for i, f := range cfg.Flows {
		fl := flowStats[i]
		fl.End = duration
		fr := flowResult(i+1, f, fl, senders[i].Finished())
		if !cfg.TraceCwnd {
			fr.CwndTrace = nil
		}
		res.Flows = append(res.Flows, fr)
		throughputs[i] = fr.ThroughputBps
	}
	res.JainIndex = stats.JainIndex(throughputs)

	for i, b := range cfg.Background {
		sent := bgs[i].src.Sent()
		recv := bgs[i].sink.Received()
		br := BackgroundResult{
			Src: b.Src, Dst: b.Dst,
			Sent: sent, Received: recv,
			MeanDelay: bgs[i].sink.MeanDelay().Duration(),
		}
		if sent > 0 {
			br.DeliveryRatio = float64(recv) / float64(sent)
		}
		res.Background = append(res.Background, br)
	}

	for i, n := range nodes {
		ns := n.Stats()
		ms := n.MACStats()
		rs := n.RouterStats()
		res.Nodes = append(res.Nodes, NodeResult{
			ID:           i,
			Forwarded:    ns.Forwarded,
			QueueDrops:   ns.QueueDrops,
			Marked:       ns.Marked,
			MACRetries:   ms.Retries,
			MACDrops:     ms.Drops,
			LinkFailures: rs.LinkFailures,
			RERRSent:     rs.RERRSent,
			Discoveries:  rs.Discoveries,
		})
	}
	return res, nil
}
