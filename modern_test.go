package muzha

import (
	"reflect"
	"testing"
	"time"
)

// modernTestGrid is a reduced grid sized for unit-test wall-clock: two
// senders (one classical, one model-based) over the chain and Manhattan
// worlds, one seed, short runs.
func modernTestGrid() ModernGridConfig {
	return ModernGridConfig{
		Variants: []Variant{CUBIC, BBRLite},
		Worlds:   []string{ModernWorldChain, ModernWorldManhattan},
		Duration: 2 * time.Second,
		Seeds:    []int64{1},
		Window:   16,
	}
}

// TestModernGridDeterministic runs the reduced grid twice and demands
// row-for-row identical tables: the grid must be a pure function of its
// config, including the Manhattan mobility world and the paced sender.
func TestModernGridDeterministic(t *testing.T) {
	first, err := ModernComparisonGrid(modernTestGrid())
	if err != nil {
		t.Fatal(err)
	}
	second, err := ModernComparisonGrid(modernTestGrid())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("grid not deterministic:\nfirst:  %+v\nsecond: %+v", first, second)
	}

	wantRows := 2 * 2 * 2 // worlds x variants x assist
	if len(first) != wantRows {
		t.Fatalf("grid produced %d rows, want %d", len(first), wantRows)
	}
	for _, row := range first {
		if row.Seeds != 1 {
			t.Fatalf("cell %s/%s lost its seed: %+v", row.World, row.Variant, row)
		}
		if row.ThroughputBps <= 0 {
			t.Fatalf("cell %s/%s moved no data: %+v", row.World, row.Variant, row)
		}
	}
}

func TestModernGridRejectsUnknownWorld(t *testing.T) {
	grid := modernTestGrid()
	grid.Worlds = []string{"atlantis"}
	if _, err := ModernComparisonGrid(grid); err == nil {
		t.Fatal("unknown world accepted")
	}
}

// TestPacingWidthInvariance extends the parallel-engine determinism
// contract to the new scheduling seams: a multi-domain world running
// paced CUBIC, BBR-lite and an auto-paced NewReno must produce the
// identical merged event stream and Result at every worker width.
func TestPacingWidthInvariance(t *testing.T) {
	islands, err := GridIslandsTopology(3, 2, 3, 1200)
	if err != nil {
		t.Fatal(err)
	}
	fe := islands.FlowEndpoints()
	cfg := DefaultConfig()
	cfg.Topology = islands
	cfg.Duration = 2 * time.Second
	cfg.Window = 8
	cfg.Workers = 1
	cfg.Pacing = true
	cfg.Flows = []Flow{
		{Src: fe[0][0], Dst: fe[0][1], Variant: CUBIC},
		{Src: fe[1][0], Dst: fe[1][1], Variant: BBRLite},
		{Src: fe[2][0], Dst: fe[2][1], Variant: NewReno},
	}
	if n := len(planDomains(cfg)); n < 2 {
		t.Fatalf("scenario is not multi-domain (%d domains); the test would prove nothing", n)
	}

	ref := goldenHash(t, cfg)
	refRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		pcfg := cfg
		pcfg.Workers = w
		if got := goldenHash(t, pcfg); got != ref {
			t.Errorf("workers=%d changed the paced event stream: %s vs %s", w, got, ref)
		}
		res, err := Run(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, refRes) {
			t.Errorf("workers=%d changed the paced Result", w)
		}
	}
}

// TestPacingChangesSchedulingOnlyWhenOn pins the tentpole's
// compatibility contract from the positive side: the same scenario with
// and without Config.Pacing produces different event streams (the knob
// does something), while two pacing-off runs reproduce each other (the
// default path is untouched).
func TestPacingChangesSchedulingOnlyWhenOn(t *testing.T) {
	top, err := ChainTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Topology = top
	cfg.Duration = 2 * time.Second
	cfg.Flows = []Flow{{Src: 0, Dst: 4, Variant: NewReno}}

	off1 := goldenHash(t, cfg)
	off2 := goldenHash(t, cfg)
	if off1 != off2 {
		t.Fatalf("pacing-off runs diverged: %s vs %s", off1, off2)
	}
	paced := cfg
	paced.Pacing = true
	if on := goldenHash(t, paced); on == off1 {
		t.Fatal("enabling pacing left the event stream untouched; the knob is dead")
	}
}
