package muzha

// The benchmark harness regenerates every table and figure of the paper's
// Chapter 5 evaluation, printing the same rows/series the paper plots.
// Absolute values differ from the authors' NS-2.29 testbed; the
// qualitative shape (who wins, by roughly what factor, where crossovers
// fall) is the reproduction target — see EXPERIMENTS.md.
//
// Run with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Output rows are emitted once per benchmark regardless of b.N.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"muzha/internal/core"
	"muzha/internal/packet"
)

// printOnce gates the row output so -benchtime multipliers don't repeat
// tables.
func printOnce(b *testing.B, i int, f func()) {
	if i == 0 {
		f()
	}
	_ = b
}

// BenchmarkFig5_2to5_7_CwndTrace regenerates Figures 5.2-5.7: the change
// of congestion window size for a single flow over 4-, 8- and 16-hop
// chains, 0-10 s.
func BenchmarkFig5_2to5_7_CwndTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		traces, err := CwndTraces([]int{4, 8, 16}, []Variant{NewReno, SACK, Vegas, Muzha}, 10*time.Second, 1)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			for _, tr := range traces {
				samples := SampleTrace(tr.Trace, 500*time.Millisecond, 10*time.Second)
				fmt.Printf("fig5.2-5.7 hops=%d variant=%s cwnd@0.5s:", tr.Hops, tr.Variant)
				for _, s := range samples {
					fmt.Printf(" %.1f", s.Value)
				}
				fmt.Println()
			}
		})
	}
}

// BenchmarkFig5_8to5_10_Throughput regenerates Figures 5.8-5.10:
// throughput vs number of hops for window_ = 4, 8, 32.
func BenchmarkFig5_8to5_10_Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := ThroughputVsHops(DefaultChainSweep())
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			for _, r := range rows {
				fmt.Printf("fig5.8-5.10 window=%d hops=%d variant=%-8s throughput_bps=%.0f\n",
					r.Window, r.Hops, r.Variant, r.ThroughputBps)
			}
		})
	}
}

// BenchmarkFig5_11to5_13_Retransmissions regenerates Figures 5.11-5.13:
// retransmissions vs number of hops for window_ = 4, 8, 32 (same sweep as
// the throughput figures; separated so each figure has its own target).
func BenchmarkFig5_11to5_13_Retransmissions(b *testing.B) {
	sweep := DefaultChainSweep()
	for i := 0; i < b.N; i++ {
		rows, err := ThroughputVsHops(sweep)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			for _, r := range rows {
				fmt.Printf("fig5.11-5.13 window=%d hops=%d variant=%-8s retransmissions=%.1f timeouts=%.1f\n",
					r.Window, r.Hops, r.Variant, r.Retransmissions, r.Timeouts)
			}
		})
	}
}

// BenchmarkFig5_14to5_18_Fairness regenerates Simulation 3A (Figures
// 5.15-5.18 with the Figure 5.14 Jain index): coexisting flows on 4-, 6-
// and 8-hop cross topologies.
func BenchmarkFig5_14to5_18_Fairness(b *testing.B) {
	pairs := [][2]Variant{{NewReno, Vegas}, {NewReno, Muzha}, {Muzha, Muzha}}
	for i := 0; i < b.N; i++ {
		rows, err := CoexistenceFairness([]int{4, 6, 8}, pairs, 50*time.Second, []int64{1, 2, 3, 4, 5, 6, 7, 8})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			for _, r := range rows {
				fmt.Printf("fig5.16-5.18 hops=%d %s+%s: flow1=%.0f flow2=%.0f jain=%.3f\n",
					r.Hops, r.Variants[0], r.Variants[1],
					r.ThroughputBps[0], r.ThroughputBps[1], r.JainIndex)
			}
		})
	}
}

// BenchmarkFig5_19to5_22_Dynamics regenerates Simulation 3B (Figures
// 5.19-5.22): throughput dynamics of three staggered same-variant flows.
func BenchmarkFig5_19to5_22_Dynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := ThroughputDynamics([]Variant{Muzha, NewReno, SACK, Vegas}, 30*time.Second, time.Second, 1)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			for _, dr := range results {
				for fi, series := range dr.Series {
					fmt.Printf("fig5.19-5.22 variant=%-8s flow=%d kbps@1s:", dr.Variant, fi+1)
					for _, s := range series {
						fmt.Printf(" %.0f", s.Value/1000)
					}
					fmt.Println()
				}
			}
		})
	}
}

// BenchmarkTable5_2_DRAIFormula prints the DRAI action table (Table 5.2)
// as implemented, exercising ApplyDRAI for each level.
func BenchmarkTable5_2_DRAIFormula(b *testing.B) {
	names := map[int]string{
		5: "aggressive acceleration",
		4: "moderate acceleration",
		3: "stabilizing",
		2: "moderate deceleration",
		1: "aggressive deceleration",
	}
	for i := 0; i < b.N; i++ {
		printOnce(b, i, func() {
			const w = 8.0
			for level := 5; level >= 1; level-- {
				fmt.Printf("table5.2 DRAI=%d (%s): cwnd %g -> %g\n",
					level, names[level], w, core.ApplyDRAI(w, level))
			}
		})
	}
}

// BenchmarkTable4_1_MuzhaControl exercises the four Table 4.1 events on a
// live chain and prints the observed sender responses.
func BenchmarkTable4_1_MuzhaControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		top, err := ChainTopology(4)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Topology = top
		cfg.Duration = 30 * time.Second
		cfg.Window = 8
		cfg.PacketErrorRate = 0.01 // exercise random-loss handling too
		cfg.Flows = []Flow{{Src: 0, Dst: 4, Variant: Muzha}}
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, func() {
			f := res.Flows[0]
			fmt.Printf("table4.1 muzha with 1%% random loss: %0.f bit/s, %d fast-recoveries, %d timeouts, %d rexmit\n",
				f.ThroughputBps, f.FastRecoveries, f.Timeouts, f.Retransmissions)
		})
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

func ablationChainRun(b *testing.B, mutate func(*Config)) FlowResult {
	b.Helper()
	top, err := ChainTopology(4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Topology = top
	cfg.Duration = 30 * time.Second
	cfg.Window = 8
	cfg.Flows = []Flow{{Src: 0, Dst: 4, Variant: Muzha}}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.Flows[0]
}

// BenchmarkAblationDRAILevels compares quantization depths: the paper's
// five levels vs a coarse three-level policy vs an ECN-like binary policy
// (the "extreme case" of Section 4.6).
func BenchmarkAblationDRAILevels(b *testing.B) {
	policies := []struct {
		name   string
		policy DRAIPolicy
	}{
		{"5-level", DefaultDRAIPolicy()},
		{"3-level", ThreeLevelDRAIPolicy()},
		{"binary", BinaryDRAIPolicy(0.04)},
	}
	for i := 0; i < b.N; i++ {
		for _, p := range policies {
			p := p
			f := ablationChainRun(b, func(c *Config) { c.DRAI = p.policy })
			printOnce(b, i, func() {
				fmt.Printf("ablation.drai-levels %-8s throughput=%.0f rexmit=%d timeouts=%d\n",
					p.name, f.ThroughputBps, f.Retransmissions, f.Timeouts)
			})
		}
	}
}

// BenchmarkAblationChannelGate compares the queue-only default DRAI
// policy against the channel-utilization-gated variant.
func BenchmarkAblationChannelGate(b *testing.B) {
	policies := []struct {
		name   string
		policy DRAIPolicy
	}{
		{"queue-only", DefaultDRAIPolicy()},
		{"channel-gated", ChannelAwareDRAIPolicy()},
	}
	for i := 0; i < b.N; i++ {
		for _, p := range policies {
			p := p
			f := ablationChainRun(b, func(c *Config) { c.DRAI = p.policy })
			printOnce(b, i, func() {
				fmt.Printf("ablation.channel-gate %-13s throughput=%.0f rexmit=%d timeouts=%d\n",
					p.name, f.ThroughputBps, f.Retransmissions, f.Timeouts)
			})
		}
	}
}

// BenchmarkAblationDelayDRAI compares the default queue-length DRAI with
// the delay-aware variant (the thesis' future-work refinement).
func BenchmarkAblationDelayDRAI(b *testing.B) {
	policies := []struct {
		name   string
		policy DRAIPolicy
	}{
		{"queue-only", DefaultDRAIPolicy()},
		{"delay-aware", DelayAwareDRAIPolicy()},
	}
	for i := 0; i < b.N; i++ {
		for _, p := range policies {
			p := p
			f := ablationChainRun(b, func(c *Config) { c.DRAI = p.policy })
			printOnce(b, i, func() {
				fmt.Printf("ablation.delay-drai %-11s throughput=%.0f rexmit=%d timeouts=%d\n",
					p.name, f.ThroughputBps, f.Retransmissions, f.Timeouts)
			})
		}
	}
}

// BenchmarkAblationMarkThreshold sweeps the congestion-marking level.
func BenchmarkAblationMarkThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, level := range []int{1, 2, 3} {
			level := level
			f := ablationChainRun(b, func(c *Config) {
				p := DefaultDRAIPolicy()
				p.MarkLevel = level
				c.DRAI = p
				c.ResidualLossRate = 0.01
			})
			printOnce(b, i, func() {
				fmt.Printf("ablation.mark-level level<=%d throughput=%.0f rexmit=%d timeouts=%d\n",
					level, f.ThroughputBps, f.Retransmissions, f.Timeouts)
			})
		}
	}
}

// BenchmarkAblationQueueDiscipline compares the paper's drop-tail IFQ
// against RED.
func BenchmarkAblationQueueDiscipline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, red := range []bool{false, true} {
			red := red
			f := ablationChainRun(b, func(c *Config) { c.UseRED = red })
			printOnce(b, i, func() {
				name := "droptail"
				if red {
					name = "red"
				}
				fmt.Printf("ablation.queue %-8s throughput=%.0f rexmit=%d\n", name, f.ThroughputBps, f.Retransmissions)
			})
		}
	}
}

// BenchmarkAblationRTSCTS compares RTS/CTS-protected against unprotected
// data frames.
func BenchmarkAblationRTSCTS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, disable := range []bool{false, true} {
			disable := disable
			f := ablationChainRun(b, func(c *Config) { c.DisableRTSCTS = disable })
			printOnce(b, i, func() {
				name := "rts-cts"
				if disable {
					name = "no-rts"
				}
				fmt.Printf("ablation.rtscts %-8s throughput=%.0f rexmit=%d\n", name, f.ThroughputBps, f.Retransmissions)
			})
		}
	}
}

// BenchmarkAblationLossDiscrimination measures the value of the Section
// 4.7 marked/unmarked dup-ACK classification under injected random loss.
func BenchmarkAblationLossDiscrimination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, per := range []float64{0, 0.01, 0.02} {
			for _, disc := range []bool{true, false} {
				per, disc := per, disc
				f := ablationChainRun(b, func(c *Config) {
					c.ResidualLossRate = per
					c.MuzhaLossDiscrimination = disc
				})
				printOnce(b, i, func() {
					fmt.Printf("ablation.discrimination residual=%.2f enabled=%-5v throughput=%.0f rexmit=%d timeouts=%d\n",
						per, disc, f.ThroughputBps, f.Retransmissions, f.Timeouts)
				})
			}
		}
	}
}

// BenchmarkAblationRoutingProtocol compares the paper's AODV substrate
// against DSR source routing under the same Muzha flow.
func BenchmarkAblationRoutingProtocol(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, useDSR := range []bool{false, true} {
			useDSR := useDSR
			f := ablationChainRun(b, func(c *Config) { c.UseDSR = useDSR })
			printOnce(b, i, func() {
				name := "aodv"
				if useDSR {
					name = "dsr"
				}
				fmt.Printf("ablation.routing %-5s throughput=%.0f rexmit=%d timeouts=%d\n",
					name, f.ThroughputBps, f.Retransmissions, f.Timeouts)
			})
		}
	}
}

// BenchmarkRelatedWorkComparison runs the Chapter 3 related-work
// protocols head-to-head with Muzha and NewReno on the 4-hop chain: the
// end-to-end estimators (Veno, Westwood), the router-assisted baselines
// (Jersey's ABE+CW, ECN-reactive NewReno) and the paper's contribution.
func BenchmarkRelatedWorkComparison(b *testing.B) {
	variants := []Variant{NewReno, Veno, Westwood, Jersey, ECNNewReno, Muzha}
	for i := 0; i < b.N; i++ {
		for _, v := range variants {
			v := v
			var thr, rex float64
			const nseeds = 3
			for seed := int64(1); seed <= nseeds; seed++ {
				top, err := ChainTopology(4)
				if err != nil {
					b.Fatal(err)
				}
				cfg := DefaultConfig()
				cfg.Topology = top
				cfg.Duration = 30 * time.Second
				cfg.Window = 8
				cfg.Seed = seed
				cfg.Flows = []Flow{{Src: 0, Dst: 4, Variant: v}}
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				thr += res.Flows[0].ThroughputBps / nseeds
				rex += float64(res.Flows[0].Retransmissions) / nseeds
			}
			printOnce(b, i, func() {
				fmt.Printf("relatedwork %-12s throughput=%.0f rexmit=%.1f\n", v, thr, rex)
			})
		}
	}
}

// BenchmarkExtensionBackgroundTraffic measures how each variant degrades
// when an unreactive CBR stream crosses its chain — an extension beyond
// the paper's background-traffic-free setup.
func BenchmarkExtensionBackgroundTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, v := range []Variant{NewReno, Vegas, Muzha} {
			for _, rate := range []float64{0, 100_000, 200_000} {
				v, rate := v, rate
				top, err := ChainTopology(4)
				if err != nil {
					b.Fatal(err)
				}
				cfg := DefaultConfig()
				cfg.Topology = top
				cfg.Duration = 30 * time.Second
				cfg.Window = 8
				cfg.Flows = []Flow{{Src: 0, Dst: 4, Variant: v}}
				if rate > 0 {
					cfg.Background = []BackgroundFlow{{Src: 4, Dst: 0, RateBps: rate}}
				}
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				printOnce(b, i, func() {
					ratio := 0.0
					if len(res.Background) > 0 {
						ratio = res.Background[0].DeliveryRatio
					}
					fmt.Printf("extension.background %-8s cbr=%.0fkbps tcp=%.0f cbr_delivery=%.2f\n",
						v, rate/1000, res.Flows[0].ThroughputBps, ratio)
				})
			}
		}
	}
}

// BenchmarkExtensionMobility measures each variant under the thesis'
// deferred mobility scenario: node 2 of the 4-hop chain roams at
// pedestrian-to-vehicle speeds, periodically severing the only path.
func BenchmarkExtensionMobility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, v := range []Variant{NewReno, Vegas, Muzha} {
			v := v
			var thr, disc float64
			const nseeds = 3
			for seed := int64(1); seed <= nseeds; seed++ {
				// 180 m spacing leaves roaming slack; the 800x200 field
				// keeps the relay mostly reachable with intermittent
				// breaks near the corners.
				top, err := ChainTopologySpaced(4, 180)
				if err != nil {
					b.Fatal(err)
				}
				cfg := DefaultConfig()
				cfg.Topology = top
				cfg.Duration = 60 * time.Second
				cfg.Window = 8
				cfg.Seed = seed
				cfg.Flows = []Flow{{Src: 0, Dst: 4, Variant: v}}
				cfg.Mobility = &Mobility{
					Width: 800, Height: 200,
					MinSpeed: 2, MaxSpeed: 10,
					Pause:       5 * time.Second,
					MobileNodes: []int{2},
				}
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				thr += res.Flows[0].ThroughputBps / nseeds
				for _, n := range res.Nodes {
					disc += float64(n.Discoveries) / nseeds
				}
			}
			printOnce(b, i, func() {
				fmt.Printf("extension.mobility %-8s throughput=%.0f discoveries=%.1f\n", v, thr, disc)
			})
		}
	}
}

// BenchmarkScenario4HopChain is a plain performance benchmark of the
// simulator itself: events per second for a saturated 4-hop chain.
func BenchmarkScenario4HopChain(b *testing.B) {
	top, err := ChainTopology(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Topology = top
		cfg.Duration = 5 * time.Second
		cfg.Window = 8
		cfg.Seed = int64(i + 1)
		cfg.Flows = []Flow{{Src: 0, Dst: 4, Variant: Muzha}}
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// benchWidths enumerates the engine configurations of the parallel
// scaling benchmarks: the frozen classic engine, then the decomposed
// engine at 1, 2, 4 and NumCPU workers. workers=1 is the decomposed
// engine's serial reference (identical output at every width), so
// serial-vs-workers=1 isolates decomposition overhead and
// workers=N/workers=1 is the pure scaling ratio.
func benchWidths() []struct {
	name    string
	workers int
} {
	return []struct {
		name    string
		workers int
	}{
		{"serial", 0},
		{"workers=1", 1},
		{"workers=2", 2},
		{"workers=4", 4},
		{"workers=max", runtime.NumCPU()},
	}
}

// benchScenarioWidths runs cfg at every engine width as sub-benchmarks
// reporting events/s.
func benchScenarioWidths(b *testing.B, cfg Config) {
	for _, w := range benchWidths() {
		w := w
		b.Run(w.name, func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				run := cfg
				run.Seed = int64(i + 1)
				run.Workers = w.workers
				res, err := Run(run)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkScenarioGrid is the multi-domain scaling workload: eight
// 5x5 grid islands (200 nodes) separated beyond carrier-sense range,
// one saturated corner-to-corner Muzha flow per island. Every island
// is an independent interaction domain, so the decomposed engine gets
// eight-way parallelism to chew on.
func BenchmarkScenarioGrid(b *testing.B) {
	top, err := GridIslandsTopology(8, 5, 5, 1500)
	if err != nil {
		b.Fatal(err)
	}
	fe := top.FlowEndpoints()
	cfg := DefaultConfig()
	cfg.Topology = top
	cfg.Duration = 2 * time.Second
	cfg.Window = 8
	cfg.Flows = make([]Flow, len(fe))
	for i, e := range fe {
		cfg.Flows[i] = Flow{Src: e[0], Dst: e[1], Variant: Muzha}
	}
	benchScenarioWidths(b, cfg)
}

// BenchmarkScenarioLargeRandom scatters 300 nodes over a 12x12 km
// field — hundreds of nodes, natural multi-domain structure — and runs
// one flow per sizable CSRange component between TX-connected
// endpoints, so traffic actually moves instead of stalling in route
// discovery.
func BenchmarkScenarioLargeRandom(b *testing.B) {
	top, err := RandomTopology(300, 12_000, 12_000, 42)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Topology = top
	cfg.Duration = 2 * time.Second
	cfg.Window = 8
	cfg.Flows = randomComponentFlows(b, cfg, 12)
	benchScenarioWidths(b, cfg)
}

// BenchmarkScenario1000Node is the node-scale gate: 16 islands of 8x8
// grid (1024 nodes) with 8 seeded intra-island flows each (128 flows,
// summary-only traces since 128 > DefaultTraceFlowLimit), AODV
// expanding-ring discovery on, bounded by the event-budget guard. The
// decomposed engine gets sixteen-way parallelism; the committed
// events/s and allocs/op baselines in BENCH_sim.json catch node-scale
// regressions via cmd/benchgate.
func BenchmarkScenario1000Node(b *testing.B) {
	top, err := GridIslandsFlowsTopology(16, 8, 8, 1500, 8, 42)
	if err != nil {
		b.Fatal(err)
	}
	fe := top.FlowEndpoints()
	cfg := DefaultConfig()
	cfg.Topology = top
	cfg.Duration = 3 * time.Second
	cfg.Window = 8
	cfg.ExpandingRing = true
	cfg.Guards.MaxEvents = 20_000_000 // the run takes ~5.3M; tripping means a blowup
	cfg.Flows = make([]Flow, len(fe))
	for i, e := range fe {
		cfg.Flows[i] = Flow{Src: e[0], Dst: e[1], Variant: Muzha}
	}
	if len(cfg.Flows) < 100 || top.Nodes() < 1000 {
		b.Fatalf("workload shrank: %d nodes, %d flows", top.Nodes(), len(cfg.Flows))
	}
	benchScenarioWidths(b, cfg)
}

// randomComponentFlows picks up to maxFlows deterministic flows for a
// random topology: for each interaction domain (largest first would be
// unstable — domain order is by smallest node), a flow from the
// domain's first node to its farthest TX-reachable member. Domains too
// small or with no reachable pair contribute nothing.
func randomComponentFlows(b *testing.B, cfg Config, maxFlows int) []Flow {
	b.Helper()
	tp := cfg.Topology.inner
	var flows []Flow
	for _, dom := range planDomains(cfg) {
		if len(dom) < 3 || len(flows) >= maxFlows {
			continue
		}
		src := dom[0]
		dst, best := -1, 0
		for _, cand := range dom[1:] {
			if h := tp.HopDistance(packet.NodeID(src), packet.NodeID(cand), 250); h > best {
				best, dst = h, cand
			}
		}
		if dst >= 0 {
			flows = append(flows, Flow{Src: src, Dst: dst, Variant: Muzha})
		}
	}
	if len(flows) == 0 {
		b.Fatal("random topology yielded no usable flows; change the seed")
	}
	return flows
}
