package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPlotCwndWritesSVGs(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-exp", "dynamics"}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 4 {
		t.Fatalf("SVG files = %d, want 4 dynamics figures", len(matches))
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("output is not SVG")
	}
}

func TestPlotRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
