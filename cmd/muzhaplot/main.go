// Command muzhaplot regenerates the paper's figures as SVG files.
//
// Usage:
//
//	muzhaplot -out figures              # all figure families
//	muzhaplot -out figures -exp cwnd    # only Figures 5.2-5.7
//
// Figures written:
//
//	fig5.2-5.7_cwnd_<h>hop.svg          congestion window traces
//	fig5.8-5.10_throughput_w<w>.svg     throughput vs hops
//	fig5.11-5.13_retransmissions_w<w>.svg
//	fig5.19-5.22_dynamics_<variant>.svg throughput dynamics
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"muzha"
	"muzha/internal/plot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "muzhaplot:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("muzhaplot", flag.ContinueOnError)
	var (
		out  = fs.String("out", "figures", "output directory for SVG files")
		exp  = fs.String("exp", "all", "figure family: cwnd | throughput | dynamics | all")
		seed = fs.Int64("seed", 1, "base random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	variants := []muzha.Variant{muzha.NewReno, muzha.SACK, muzha.Vegas, muzha.Muzha}
	all := *exp == "all"
	if all || *exp == "cwnd" {
		if err := plotCwnd(*out, variants, *seed); err != nil {
			return err
		}
	}
	if all || *exp == "throughput" {
		if err := plotThroughput(*out, variants, *seed); err != nil {
			return err
		}
	}
	if all || *exp == "dynamics" {
		if err := plotDynamics(*out, variants, *seed); err != nil {
			return err
		}
	}
	return nil
}

func writeChart(dir, name string, c *plot.Chart) error {
	svg, err := c.SVG()
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func plotCwnd(dir string, variants []muzha.Variant, seed int64) error {
	hops := []int{4, 8, 16}
	traces, err := muzha.CwndTraces(hops, variants, 10*time.Second, seed)
	if err != nil {
		return err
	}
	for _, h := range hops {
		chart := &plot.Chart{
			Title:  fmt.Sprintf("Change of Congestion Window Size (%d-hop chain)", h),
			XLabel: "time (s)",
			YLabel: "cwnd (segments)",
		}
		for _, tr := range traces {
			if tr.Hops != h {
				continue
			}
			s := plot.Series{Name: string(tr.Variant)}
			for _, p := range muzha.SampleTrace(tr.Trace, 100*time.Millisecond, 10*time.Second) {
				s.X = append(s.X, p.At.Seconds())
				s.Y = append(s.Y, p.Value)
			}
			chart.Series = append(chart.Series, s)
		}
		if err := writeChart(dir, fmt.Sprintf("fig5.2-5.7_cwnd_%dhop.svg", h), chart); err != nil {
			return err
		}
	}
	return nil
}

func plotThroughput(dir string, variants []muzha.Variant, seed int64) error {
	sweep := muzha.DefaultChainSweep()
	sweep.Variants = variants
	sweep.Seeds = []int64{seed, seed + 1, seed + 2}
	rows, err := muzha.ThroughputVsHops(sweep)
	if err != nil {
		return err
	}
	for _, w := range sweep.Windows {
		thr := &plot.Chart{
			Title:  fmt.Sprintf("Throughput vs Number of Hops (window_=%d)", w),
			XLabel: "hops",
			YLabel: "throughput (bit/s)",
		}
		rex := &plot.Chart{
			Title:  fmt.Sprintf("Retransmissions vs Number of Hops (window_=%d)", w),
			XLabel: "hops",
			YLabel: "retransmitted segments",
		}
		for _, v := range variants {
			st := plot.Series{Name: string(v)}
			sr := plot.Series{Name: string(v)}
			for _, r := range rows {
				if r.Window != w || r.Variant != v {
					continue
				}
				st.X = append(st.X, float64(r.Hops))
				st.Y = append(st.Y, r.ThroughputBps)
				sr.X = append(sr.X, float64(r.Hops))
				sr.Y = append(sr.Y, r.Retransmissions)
			}
			thr.Series = append(thr.Series, st)
			rex.Series = append(rex.Series, sr)
		}
		if err := writeChart(dir, fmt.Sprintf("fig5.8-5.10_throughput_w%d.svg", w), thr); err != nil {
			return err
		}
		if err := writeChart(dir, fmt.Sprintf("fig5.11-5.13_retransmissions_w%d.svg", w), rex); err != nil {
			return err
		}
	}
	return nil
}

func plotDynamics(dir string, variants []muzha.Variant, seed int64) error {
	results, err := muzha.ThroughputDynamics(variants, 30*time.Second, time.Second, seed)
	if err != nil {
		return err
	}
	for _, dr := range results {
		chart := &plot.Chart{
			Title:  fmt.Sprintf("Throughput Dynamics, three %s flows", dr.Variant),
			XLabel: "time (s)",
			YLabel: "throughput (bit/s)",
		}
		for fi, series := range dr.Series {
			s := plot.Series{Name: fmt.Sprintf("flow %d", fi+1)}
			for _, p := range series {
				s.X = append(s.X, p.At.Seconds())
				s.Y = append(s.Y, p.Value)
			}
			chart.Series = append(chart.Series, s)
		}
		if err := writeChart(dir, fmt.Sprintf("fig5.19-5.22_dynamics_%s.svg", dr.Variant), chart); err != nil {
			return err
		}
	}
	return nil
}
