package main

import (
	"strings"
	"testing"
)

func TestQuickReportRenders(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TCP Muzha reproduction report",
		"## Simulation 2",
		"## Simulation 3A",
		"## Section 4.7",
		"| hops | variant |",
		"- [",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Every claim line must be PASS or FAIL, nothing else.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "- [") {
			if !strings.HasPrefix(line, "- [PASS]") && !strings.HasPrefix(line, "- [FAIL]") {
				t.Fatalf("malformed claim line: %q", line)
			}
		}
	}
}

func TestReportRejectsBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
