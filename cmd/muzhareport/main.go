// Command muzhareport reruns the paper's headline experiments and emits
// a markdown report that checks each reproduced claim, pass/fail. It is
// the self-auditing companion to EXPERIMENTS.md.
//
//	muzhareport            # full 30 s runs, 3 seeds (minutes)
//	muzhareport -quick     # reduced runs for smoke-testing (seconds)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"muzha"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "muzhareport:", err)
		os.Exit(1)
	}
}

type params struct {
	duration time.Duration
	fairDur  time.Duration
	seeds    []int64
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("muzhareport", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced durations and one seed (smoke test)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := params{duration: 30 * time.Second, fairDur: 50 * time.Second, seeds: []int64{1, 2, 3}}
	if *quick {
		p = params{duration: 5 * time.Second, fairDur: 5 * time.Second, seeds: []int64{1}}
	}

	fmt.Fprintln(out, "# TCP Muzha reproduction report")
	fmt.Fprintln(out)
	fmt.Fprintf(out, "Runs: %v (fairness %v), seeds %v.\n\n", p.duration, p.fairDur, p.seeds)

	if err := reportThroughput(out, p); err != nil {
		return err
	}
	if err := reportFairness(out, p); err != nil {
		return err
	}
	return reportRandomLoss(out, p)
}

func check(out io.Writer, ok bool, claim string) {
	mark := "PASS"
	if !ok {
		mark = "FAIL"
	}
	fmt.Fprintf(out, "- [%s] %s\n", mark, claim)
}

func reportThroughput(out io.Writer, p params) error {
	rows, err := muzha.ThroughputVsHops(muzha.ChainSweepConfig{
		Windows:  []int{8},
		Hops:     []int{4, 8, 16},
		Variants: []muzha.Variant{muzha.NewReno, muzha.SACK, muzha.Vegas, muzha.Muzha},
		Duration: p.duration,
		Seeds:    p.seeds,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "## Simulation 2: throughput and retransmissions (window_=8)")
	fmt.Fprintln(out)
	fmt.Fprintln(out, "| hops | variant | throughput (bit/s) | retransmissions |")
	fmt.Fprintln(out, "|---|---|---|---|")
	get := func(h int, v muzha.Variant) muzha.ChainRow {
		for _, r := range rows {
			if r.Hops == h && r.Variant == v {
				return r
			}
		}
		return muzha.ChainRow{}
	}
	for _, r := range rows {
		fmt.Fprintf(out, "| %d | %s | %.0f | %.1f |\n", r.Hops, r.Variant, r.ThroughputBps, r.Retransmissions)
	}
	fmt.Fprintln(out)

	m4, n4 := get(4, muzha.Muzha), get(4, muzha.NewReno)
	m8, n8 := get(8, muzha.Muzha), get(8, muzha.NewReno)
	v4, v16 := get(4, muzha.Vegas), get(16, muzha.Vegas)
	n16 := get(16, muzha.NewReno)
	check(out, m4.ThroughputBps > n4.ThroughputBps,
		"Muzha outperforms NewReno at 4 hops (paper: +5-10%)")
	check(out, m8.ThroughputBps > n8.ThroughputBps,
		"Muzha outperforms NewReno at 8 hops")
	check(out, m4.Retransmissions < n4.Retransmissions,
		"Muzha retransmits less than NewReno at 4 hops")
	check(out, v4.ThroughputBps >= m4.ThroughputBps*0.95,
		"Vegas is competitive on short chains (paper: best below 8 hops)")
	check(out, v16.ThroughputBps < n16.ThroughputBps*1.05,
		"Vegas loses its edge on long chains")
	fmt.Fprintln(out)
	return nil
}

func reportFairness(out io.Writer, p params) error {
	pairs := [][2]muzha.Variant{{muzha.NewReno, muzha.Vegas}, {muzha.NewReno, muzha.Muzha}}
	rows, err := muzha.CoexistenceFairness([]int{6}, pairs, p.fairDur, p.seeds)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "## Simulation 3A: coexistence fairness (6-hop cross)")
	fmt.Fprintln(out)
	fmt.Fprintln(out, "| pairing | flow 1 (bit/s) | flow 2 (bit/s) | Jain index |")
	fmt.Fprintln(out, "|---|---|---|---|")
	var jainVegas, jainMuzha float64
	for _, r := range rows {
		fmt.Fprintf(out, "| %s + %s | %.0f | %.0f | %.3f |\n",
			r.Variants[0], r.Variants[1], r.ThroughputBps[0], r.ThroughputBps[1], r.JainIndex)
		switch r.Variants[1] {
		case muzha.Vegas:
			jainVegas = r.JainIndex
		case muzha.Muzha:
			jainMuzha = r.JainIndex
		}
	}
	fmt.Fprintln(out)
	check(out, jainMuzha > jainVegas,
		"NewReno+Muzha shares more fairly than NewReno+Vegas (paper: Muzha achieves fair sharing)")
	fmt.Fprintln(out)
	return nil
}

func reportRandomLoss(out io.Writer, p params) error {
	fmt.Fprintln(out, "## Section 4.7: random-loss discrimination (4-hop chain, 2% residual loss)")
	fmt.Fprintln(out)
	top, err := muzha.ChainTopology(4)
	if err != nil {
		return err
	}
	measure := func(v muzha.Variant, discriminate bool) (float64, error) {
		var thr float64
		for _, seed := range p.seeds {
			cfg := muzha.DefaultConfig()
			cfg.Topology = top
			cfg.Duration = p.duration
			cfg.Window = 8
			cfg.Seed = seed
			cfg.ResidualLossRate = 0.02
			cfg.MuzhaLossDiscrimination = discriminate
			cfg.Flows = []muzha.Flow{{Src: 0, Dst: 4, Variant: v}}
			res, err := muzha.Run(cfg)
			if err != nil {
				return 0, err
			}
			thr += res.Flows[0].ThroughputBps / float64(len(p.seeds))
		}
		return thr, nil
	}
	muzhaOn, err := measure(muzha.Muzha, true)
	if err != nil {
		return err
	}
	muzhaOff, err := measure(muzha.Muzha, false)
	if err != nil {
		return err
	}
	reno, err := measure(muzha.NewReno, true)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "| sender | throughput (bit/s) |")
	fmt.Fprintln(out, "|---|---|")
	fmt.Fprintf(out, "| muzha (discrimination on) | %.0f |\n", muzhaOn)
	fmt.Fprintf(out, "| muzha (discrimination off) | %.0f |\n", muzhaOff)
	fmt.Fprintf(out, "| newreno | %.0f |\n", reno)
	fmt.Fprintln(out)
	check(out, muzhaOn > reno,
		"Muzha beats NewReno under random loss (paper: avoids needless window reduction)")
	check(out, muzhaOn >= muzhaOff,
		"Discrimination does not hurt under random loss")
	return nil
}
