package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: muzha
BenchmarkScenario4HopChain-8   	     150	   7926718 ns/op	   9995234 events/s	 1550411 B/op	   55509 allocs/op
BenchmarkEventChurn-8          	12000000	      94.28 ns/op	  10634547 events/s	       0 B/op	       0 allocs/op
PASS
ok  	muzha	3.1s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	chain, ok := got["BenchmarkScenario4HopChain"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if chain.EventsPerS != 9995234 || chain.AllocsPerOp != 55509 || chain.Iters != 150 {
		t.Fatalf("chain = %+v", chain)
	}
	if got["BenchmarkEventChurn"].NsPerOp != 94.28 {
		t.Fatalf("churn = %+v", got["BenchmarkEventChurn"])
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := map[string]result{"BenchmarkX": {EventsPerS: 1000, AllocsPerOp: 100}}
	var sb strings.Builder

	// 10% down: within the 20% tolerance.
	ok := map[string]result{"BenchmarkX": {EventsPerS: 900, AllocsPerOp: 100, Iters: 500}}
	if f := compare(base, ok, 0.20, 1.5, &sb); len(f) != 0 {
		t.Fatalf("10%% regression failed the gate: %v", f)
	}

	// 30% down: must fail.
	bad := map[string]result{"BenchmarkX": {EventsPerS: 700, AllocsPerOp: 100, Iters: 500}}
	if f := compare(base, bad, 0.20, 1.5, &sb); len(f) != 1 {
		t.Fatalf("30%% regression passed the gate: %v", f)
	}

	// Alloc blow-up fails, but only at real iteration counts.
	allocs := map[string]result{"BenchmarkX": {EventsPerS: 1000, AllocsPerOp: 200, Iters: 500}}
	if f := compare(base, allocs, 0.20, 1.5, &sb); len(f) != 1 {
		t.Fatalf("2x allocs passed the gate: %v", f)
	}
	primed := map[string]result{"BenchmarkX": {EventsPerS: 1000, AllocsPerOp: 200, Iters: 1}}
	if f := compare(base, primed, 0.20, 1.5, &sb); len(f) != 0 {
		t.Fatalf("setup-dominated allocs at 1 iteration failed the gate: %v", f)
	}

	// Baseline entry missing from input is a skip, not a failure.
	if f := compare(base, map[string]result{}, 0.20, 1.5, &sb); len(f) != 0 {
		t.Fatalf("missing benchmark failed the gate: %v", f)
	}
}

func TestCompareAllocCeiling(t *testing.T) {
	base := map[string]result{"BenchmarkBig": {EventsPerS: 1000, AllocsPerOp: 100, MaxAllocsPerOp: 150}}
	var sb strings.Builder

	// Under the ceiling passes even at one iteration (where the
	// ratio-vs-baseline check is skipped as setup-dominated).
	ok := map[string]result{"BenchmarkBig": {EventsPerS: 1000, AllocsPerOp: 140, Iters: 1}}
	if f := compare(base, ok, 0.20, 1.5, &sb); len(f) != 0 {
		t.Fatalf("allocs under the ceiling failed the gate: %v", f)
	}

	// Over the ceiling fails at any iteration count.
	bad := map[string]result{"BenchmarkBig": {EventsPerS: 1000, AllocsPerOp: 151, Iters: 1}}
	if f := compare(base, bad, 0.20, 1.5, &sb); len(f) != 1 {
		t.Fatalf("allocs over the ceiling passed the gate: %v", f)
	}
}

func TestUpdatePreservesAllocCeiling(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_sim.json")
	if err := os.WriteFile(basePath, []byte(`{"benchmarks":
		{"BenchmarkScenario4HopChain": {"events_per_s": 1, "max_allocs_per_op": 70000}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	benchOut := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(benchOut, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-baseline", basePath, "-update", benchOut}, &sb); err != nil {
		t.Fatal(err)
	}
	updated, err := readBaseline(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if got := updated.Benchmarks["BenchmarkScenario4HopChain"].MaxAllocsPerOp; got != 70000 {
		t.Fatalf("-update dropped the allocs ceiling: got %v, want 70000", got)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	benchOut := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(benchOut, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "BENCH_sim.json")
	if err := os.WriteFile(basePath, []byte(`{
		"history": {"pre_refactor": {"BenchmarkScenario4HopChain": {"ns_per_op": 17434308, "events_per_s": 4478095}}},
		"benchmarks": {"BenchmarkScenario4HopChain": {"ns_per_op": 8000000, "events_per_s": 10000000, "allocs_per_op": 56000}}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := run([]string{"-baseline", basePath, benchOut}, &sb); err != nil {
		t.Fatalf("gate failed on matching numbers: %v\n%s", err, sb.String())
	}

	// A baseline far above the measured numbers must fail.
	if err := os.WriteFile(basePath, []byte(`{"benchmarks":
		{"BenchmarkScenario4HopChain": {"events_per_s": 99000000}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-baseline", basePath, benchOut}, &sb); err == nil {
		t.Fatal("gate passed a 10x regression")
	}

	// -update rewrites benchmarks but preserves history.
	if err := os.WriteFile(basePath, []byte(`{
		"history": {"pre_refactor": {"BenchmarkScenario4HopChain": {"ns_per_op": 17434308}}},
		"benchmarks": {}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-baseline", basePath, "-update", benchOut}, &sb); err != nil {
		t.Fatal(err)
	}
	updated, err := readBaseline(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(updated.Benchmarks) != 2 {
		t.Fatalf("update wrote %d benchmarks, want 2", len(updated.Benchmarks))
	}
	if updated.History["pre_refactor"]["BenchmarkScenario4HopChain"].NsPerOp != 17434308 {
		t.Fatal("update clobbered history")
	}
	// And the freshly updated baseline must gate-pass its own input.
	if err := run([]string{"-baseline", basePath, benchOut}, &sb); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
}

const sampleScaling = `goos: linux
BenchmarkScenarioGrid/serial-8      	      10	 110251725 ns/op	   5845512 events/s
BenchmarkScenarioGrid/workers=1-8   	      10	  73446045 ns/op	   5000000 events/s
BenchmarkScenarioGrid/workers=2-8   	      10	  70574377 ns/op	   9000000 events/s
BenchmarkScenarioGrid/workers=4-8   	      10	  66750198 ns/op	  19000000 events/s
BenchmarkScenarioGrid/workers=max-8 	      10	  69665269 ns/op	  20000000 events/s
PASS
`

func TestScalingCurve(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleScaling))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := scalingCurve("BenchmarkScenarioGrid", got, 0, "workers=4", &out); err != nil {
		t.Fatal(err)
	}
	txt := out.String()
	for _, want := range []string{"workers=4", "speedup 3.80x", "serial", "speedup 1.00x"} {
		if !strings.Contains(txt, want) {
			t.Errorf("curve output missing %q:\n%s", want, txt)
		}
	}
	// Gate passes at 1.8x (speedup is 3.8x)...
	if err := scalingCurve("BenchmarkScenarioGrid", got, 1.8, "workers=4", &out); err != nil {
		t.Errorf("gate at 1.8x should pass: %v", err)
	}
	// ...and fails when the bar is above the measured ratio.
	if err := scalingCurve("BenchmarkScenarioGrid", got, 4.0, "workers=4", &out); err == nil {
		t.Error("gate at 4.0x should fail")
	}
	// Missing reference width is an error, not a zero division.
	if err := scalingCurve("BenchmarkNope", got, 0, "workers=4", &out); err == nil {
		t.Error("unknown family should error")
	}
}
