// Command benchgate is the CI benchmark-regression gate.
//
// It parses `go test -bench` output (from a file argument or stdin),
// compares every benchmark that also appears in the committed baseline
// BENCH_sim.json, and exits non-zero when throughput regressed:
//
//	go test -run '^$' -bench Scenario -benchtime 2s . | go run ./cmd/benchgate -baseline BENCH_sim.json
//
// The gate is deliberately narrow so it stays trustworthy on shared CI
// runners:
//
//   - events/s (the custom metric every gated benchmark reports) must
//     not drop more than -max-regress (default 20%) below baseline.
//   - allocs/op must not exceed -max-alloc-ratio (default 1.5x) the
//     baseline. Allocation counts are deterministic, but fixed setup
//     costs (pool priming) dominate at tiny iteration counts, so the
//     check is skipped when the benchmark ran fewer than 100 iterations.
//   - a baseline entry may carry "max_allocs_per_op", a hand-committed
//     absolute ceiling gated even at one iteration — the memory gate
//     for expensive node-scale benchmarks CI only smokes once.
//   - ns/op is reported but never gated: wall-clock noise on shared
//     runners would make it flaky.
//
// With -update the tool instead rewrites the baseline's "benchmarks"
// section from the parsed output, preserving the "history" section.
// scripts/bench.sh wires the two modes together.
//
// With -scaling <family> the tool prints the parallel scaling curve of
// a width-swept benchmark (sub-benchmarks named <family>/serial and
// <family>/workers=N): events/s per width and the speedup relative to
// workers=1. The curve is informational by default — shared CI runners
// may have any core count — but -min-speedup N gates the -speedup-at
// width for dedicated multicore runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark's parsed (or baseline) numbers.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	EventsPerS  float64 `json:"events_per_s,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Iters       int     `json:"iters,omitempty"`
	// MaxAllocsPerOp is a hand-committed absolute allocs/op ceiling,
	// gated even at one iteration (allocation counts are deterministic,
	// so set it with enough headroom to absorb fixed setup costs). Zero
	// disables it. -update carries it over from the old baseline.
	MaxAllocsPerOp float64 `json:"max_allocs_per_op,omitempty"`
}

// baseline mirrors BENCH_sim.json: a current "benchmarks" section the
// gate compares against, plus a free-form "history" of earlier runs
// (e.g. the pre-refactor numbers) that -update must not clobber.
type baseline struct {
	Note       string                       `json:"note,omitempty"`
	Command    string                       `json:"command,omitempty"`
	History    map[string]map[string]result `json:"history,omitempty"`
	Benchmarks map[string]result            `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		baselinePath  = fs.String("baseline", "BENCH_sim.json", "baseline file to compare against (or rewrite with -update)")
		maxRegress    = fs.Float64("max-regress", 0.20, "maximum tolerated fractional events/s regression")
		maxAllocRatio = fs.Float64("max-alloc-ratio", 1.5, "maximum tolerated allocs/op ratio vs baseline")
		update        = fs.Bool("update", false, "rewrite the baseline's benchmarks section from the input instead of comparing")
		scaling       = fs.String("scaling", "", "print the parallel scaling curve of this benchmark family (sub-benchmarks <family>/serial, <family>/workers=N) instead of gating")
		minSpeedup    = fs.Float64("min-speedup", 0, "with -scaling: fail unless the -speedup-at width reaches this speedup over workers=1 (only meaningful on dedicated multicore runners)")
		speedupAt     = fs.String("speedup-at", "workers=4", "with -scaling: the width -min-speedup checks")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	in := os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	if *scaling != "" {
		return scalingCurve(*scaling, got, *minSpeedup, *speedupAt, out)
	}
	if *update {
		return writeBaseline(*baselinePath, got, out)
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		return err
	}
	failures := compare(base.Benchmarks, got, *maxRegress, *maxAllocRatio, out)
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed: %s", len(failures), strings.Join(failures, "; "))
	}
	fmt.Fprintln(out, "benchgate: all benchmarks within tolerance")
	return nil
}

// parseBench extracts benchmark results from `go test -bench` output.
// Lines look like:
//
//	BenchmarkScenario4HopChain-8  150  7926718 ns/op  9995234 events/s  1550411 B/op  55509 allocs/op
//
// The GOMAXPROCS suffix (-8) is stripped so baselines are portable
// across machines.
func parseBench(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		res := result{Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "events/s":
				res.EventsPerS = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		// Sub-benchmarks of the same name (e.g. ablation variants)
		// would overwrite each other; the gated set has unique names.
		out[name] = res
	}
	return out, sc.Err()
}

func readBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// compare checks every baseline benchmark present in got and returns
// the names that fail the gate. Baseline entries missing from the input
// are reported but do not fail: CI may gate only a subset per run.
func compare(base, got map[string]result, maxRegress, maxAllocRatio float64, out io.Writer) []string {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	for _, name := range names {
		b := base[name]
		g, ok := got[name]
		if !ok {
			fmt.Fprintf(out, "skip  %-28s not in input\n", name)
			continue
		}
		status := "ok"
		if b.EventsPerS > 0 && g.EventsPerS < b.EventsPerS*(1-maxRegress) {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s events/s %.0f < %.0f-%d%%",
				name, g.EventsPerS, b.EventsPerS, int(maxRegress*100)))
		}
		if g.Iters >= 100 && b.AllocsPerOp > 0 && g.AllocsPerOp > b.AllocsPerOp*maxAllocRatio {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s allocs/op %.0f > %.1fx baseline %.0f",
				name, g.AllocsPerOp, maxAllocRatio, b.AllocsPerOp))
		}
		if b.MaxAllocsPerOp > 0 && g.AllocsPerOp > b.MaxAllocsPerOp {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s allocs/op %.0f > ceiling %.0f",
				name, g.AllocsPerOp, b.MaxAllocsPerOp))
		}
		fmt.Fprintf(out, "%-5s %-28s events/s %12.0f (baseline %12.0f)  allocs/op %7.0f (baseline %7.0f)\n",
			status, name, g.EventsPerS, b.EventsPerS, g.AllocsPerOp, b.AllocsPerOp)
	}
	return failures
}

// scalingCurve prints every <family>/<width> entry's events/s and its
// speedup relative to <family>/workers=1, in a fixed width order, and
// optionally gates one width's speedup.
func scalingCurve(family string, got map[string]result, minSpeedup float64, speedupAt string, out io.Writer) error {
	ref, ok := got[family+"/workers=1"]
	if !ok || ref.EventsPerS <= 0 {
		return fmt.Errorf("scaling: input has no %s/workers=1 events/s", family)
	}
	// Fixed display order; any extra widths in the input follow sorted.
	widths := []string{"serial", "workers=1", "workers=2", "workers=4", "workers=max"}
	seen := make(map[string]bool, len(widths))
	for _, w := range widths {
		seen[w] = true
	}
	for name := range got {
		if w, ok := strings.CutPrefix(name, family+"/"); ok && !seen[w] {
			widths = append(widths, w)
			seen[w] = true
		}
	}
	sort.Strings(widths[5:])

	var gated *result
	for _, w := range widths {
		g, ok := got[family+"/"+w]
		if !ok {
			continue
		}
		fmt.Fprintf(out, "%s/%-12s events/s %12.0f  speedup %.2fx\n",
			family, w, g.EventsPerS, g.EventsPerS/ref.EventsPerS)
		if w == speedupAt {
			g := g
			gated = &g
		}
	}
	if minSpeedup > 0 {
		if gated == nil {
			return fmt.Errorf("scaling: input has no %s/%s to gate", family, speedupAt)
		}
		if sp := gated.EventsPerS / ref.EventsPerS; sp < minSpeedup {
			return fmt.Errorf("scaling: %s/%s speedup %.2fx below required %.2fx", family, speedupAt, sp, minSpeedup)
		}
	}
	return nil
}

// writeBaseline rewrites the benchmarks section of the baseline file
// from got, preserving note/command/history if the file already exists.
func writeBaseline(path string, got map[string]result, out io.Writer) error {
	b := &baseline{}
	if old, err := readBaseline(path); err == nil {
		b = old
	} else if !os.IsNotExist(err) {
		return err
	}
	// Ceilings are hand-committed policy, not measurements: carry them
	// over so a routine -update cannot silently drop the gate.
	for name, old := range b.Benchmarks {
		if g, ok := got[name]; ok && old.MaxAllocsPerOp > 0 {
			g.MaxAllocsPerOp = old.MaxAllocsPerOp
			got[name] = g
		}
	}
	b.Benchmarks = got
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "benchgate: wrote %d benchmark(s) to %s\n", len(got), path)
	return nil
}
